// Command cachetop is the fleet inspector: it scrapes every node's
// /metrics and /debug/spans endpoints, stitches the pulled span groups into
// complete cross-node request traces, and renders either a refreshing
// terminal dashboard or machine-readable JSON snapshots.
//
// Watch a local three-node fleet:
//
//	cachetop -nodes http://127.0.0.1:8001,http://127.0.0.1:8002,http://127.0.0.1:8003
//
// One JSON snapshot (for scripts and CI):
//
//	cachetop -nodes http://127.0.0.1:8001,http://127.0.0.1:8002 -once -json
//
// Span scraping is cursor-based: each refresh pulls only the spans recorded
// since the previous pull, so a long-running cachetop costs each node a
// bounded read per interval regardless of traffic.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"beyondcache/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cachetop:", err)
		os.Exit(1)
	}
}

// PeerView is one node's view of one peer: metadata queue depth, breaker
// position, and how stale that peer's hint batches arrive.
type PeerView struct {
	Peer         string  `json:"peer"`
	QueueDepth   float64 `json:"queue_depth"`
	BreakerState float64 `json:"breaker_state"`
	// HintLag* summarize beyondcache_hint_propagation_seconds for batches
	// received FROM this peer: over the refresh interval when a previous
	// scrape exists (snapshot Diff), cumulative on the first scrape.
	HintLagCount int64   `json:"hint_lag_count"`
	HintLagP50Ms float64 `json:"hint_lag_p50_ms"`
	HintLagP99Ms float64 `json:"hint_lag_p99_ms"`
}

// NodeView is one node's scraped state.
type NodeView struct {
	URL   string `json:"url"`
	Node  string `json:"node"`
	Error string `json:"error,omitempty"`

	Fetches             float64    `json:"fetches"`
	HitRatio            float64    `json:"hit_ratio"`
	PendingRecords      float64    `json:"pending_records"`
	DirectoryLagObjects float64    `json:"directory_lag_objects"`
	SpansRecorded       float64    `json:"spans_recorded"`
	TracesSampled       float64    `json:"traces_sampled"`
	SpansLost           uint64     `json:"spans_lost"`
	Peers               []PeerView `json:"peers,omitempty"`
}

// TraceView is one assembled cross-node trace.
type TraceView struct {
	TraceID string `json:"trace_id"`
	Sources int    `json:"sources"`
	// Rendered is the indented span tree (node;OUTCOME lines).
	Rendered string `json:"rendered"`
}

// Snapshot is one full inspection round, the -json output document.
type Snapshot struct {
	Nodes  []NodeView  `json:"nodes"`
	Traces []TraceView `json:"traces"`
}

// spanRetain bounds how many pulled spans the inspector retains per node
// between refreshes; older spans age out of assembly first.
const spanRetain = 8192

// scraper holds the per-node scrape state that persists across refreshes.
type scraper struct {
	client  *http.Client
	nodes   []string
	cursors map[string]uint64
	spans   map[string][]obs.Span
	lost    map[string]uint64
	prev    map[string]*obs.Exposition
	labels  map[string]string // node URL -> reported label
}

func newScraper(nodes []string) *scraper {
	return &scraper{
		client:  &http.Client{Timeout: 5 * time.Second},
		nodes:   nodes,
		cursors: make(map[string]uint64),
		spans:   make(map[string][]obs.Span),
		lost:    make(map[string]uint64),
		prev:    make(map[string]*obs.Exposition),
		labels:  make(map[string]string),
	}
}

// get fetches one URL's body.
func (s *scraper) get(url string) ([]byte, http.Header, error) {
	resp, err := s.client.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return body, resp.Header, nil
}

// value reads one sample, defaulting to 0 when absent.
func value(p *obs.Exposition, name string, labels ...obs.Label) float64 {
	v, _ := p.Value(name, labels...)
	return v
}

// scrapeNode refreshes one node's metrics and spans, returning its view.
func (s *scraper) scrapeNode(base string) NodeView {
	view := NodeView{URL: base, Node: s.labels[base]}
	body, _, err := s.get(base + "/metrics")
	if err != nil {
		view.Error = err.Error()
		return view
	}
	p, err := obs.ParseExposition(string(body))
	if err != nil {
		view.Error = err.Error()
		return view
	}

	if info := p.Family("beyondcache_node_info"); info != nil && len(info.Series) > 0 {
		view.Node = info.Series[0].Labels["name"]
		s.labels[base] = view.Node
	}
	local := value(p, "beyondcache_fetch_total", obs.L("outcome", "local"))
	remote := value(p, "beyondcache_fetch_total", obs.L("outcome", "remote"))
	miss := value(p, "beyondcache_fetch_total", obs.L("outcome", "miss"))
	view.Fetches = local + remote + miss
	if view.Fetches > 0 {
		view.HitRatio = (local + remote) / view.Fetches
	}
	view.PendingRecords = value(p, "beyondcache_hint_pending_records")
	view.DirectoryLagObjects = value(p, "beyondcache_hint_directory_lag_objects")
	view.SpansRecorded = value(p, "beyondcache_spans_recorded_total")
	view.TracesSampled = value(p, "beyondcache_traces_sampled_total")

	// Per-peer rows: every peer with a sender queue, joined with its
	// breaker and hint-lag series.
	prevLag := map[string]obs.HistogramSnapshot{}
	if pp := s.prev[base]; pp != nil {
		for _, h := range pp.HistogramsOf("beyondcache_hint_propagation_seconds") {
			if peer := h.Labels["peer"]; peer != "" {
				prevLag[peer] = h.Snapshot
			}
		}
	}
	lag := map[string]obs.HistogramSnapshot{}
	for _, h := range p.HistogramsOf("beyondcache_hint_propagation_seconds") {
		if peer := h.Labels["peer"]; peer != "" {
			lag[peer] = h.Snapshot
		}
	}
	peers := map[string]bool{}
	if f := p.Family("beyondcache_hint_queue_depth"); f != nil {
		for _, series := range f.Series {
			if peer := series.Labels["peer"]; peer != "" {
				peers[peer] = true
			}
		}
	}
	for peer := range lag {
		peers[peer] = true
	}
	names := make([]string, 0, len(peers))
	for peer := range peers {
		names = append(names, peer)
	}
	sort.Strings(names)
	for _, peer := range names {
		pv := PeerView{
			Peer:         peer,
			QueueDepth:   value(p, "beyondcache_hint_queue_depth", obs.L("peer", peer)),
			BreakerState: value(p, "beyondcache_breaker_state", obs.L("peer", peer)),
		}
		if snap, ok := lag[peer]; ok {
			window := snap
			if before, ok := prevLag[peer]; ok {
				if d, err := snap.Diff(before); err == nil && d.Count() > 0 {
					window = d
				}
			}
			pv.HintLagCount = window.Count()
			if pv.HintLagCount > 0 {
				pv.HintLagP50Ms = float64(window.Quantile(0.50)) / float64(time.Millisecond)
				pv.HintLagP99Ms = float64(window.Quantile(0.99)) / float64(time.Millisecond)
			}
		}
		view.Peers = append(view.Peers, pv)
	}
	s.prev[base] = p

	// Incremental span pull from this node's cursor.
	u := base + "/debug/spans"
	if c := s.cursors[base]; c > 0 {
		u += "?since=" + strconv.FormatUint(c, 10)
	}
	body, hdr, err := s.get(u)
	if err != nil {
		view.Error = "spans: " + err.Error()
		return view
	}
	pulled, err := obs.DecodeSpans(body)
	if err != nil {
		view.Error = "spans: " + err.Error()
		return view
	}
	if next, err := strconv.ParseUint(hdr.Get("X-Span-Cursor"), 10, 64); err == nil {
		s.cursors[base] = next
	}
	if lost, err := strconv.ParseUint(hdr.Get("X-Span-Lost"), 10, 64); err == nil {
		s.lost[base] += lost
	}
	view.SpansLost = s.lost[base]
	kept := append(s.spans[base], pulled...)
	if len(kept) > spanRetain {
		kept = kept[len(kept)-spanRetain:]
	}
	s.spans[base] = kept
	return view
}

// hostPort strips the scheme from a base URL.
func hostPort(u string) string {
	u = strings.TrimPrefix(u, "http://")
	u = strings.TrimPrefix(u, "https://")
	return strings.TrimSuffix(u, "/")
}

// snapshot runs one full inspection round.
func (s *scraper) snapshot(maxTraces int, timings bool) Snapshot {
	var snap Snapshot
	for _, base := range s.nodes {
		snap.Nodes = append(snap.Nodes, s.scrapeNode(base))
	}

	// Assemble every retained span group into cross-node trees, renaming
	// each node's dial address to its reported label so traces read the
	// same no matter which port the fleet came up on.
	rename := map[string]string{}
	var sources []obs.SpanSource
	for i, base := range s.nodes {
		label := snap.Nodes[i].Node
		if label == "" {
			label = hostPort(base)
		}
		rename[hostPort(base)] = label
		sources = append(sources, obs.SpanSource{
			Label:    label,
			HostPort: hostPort(base),
			Spans:    s.spans[base],
		})
	}
	trees := obs.Assemble(sources)
	if maxTraces > 0 && len(trees) > maxTraces {
		trees = trees[len(trees)-maxTraces:]
	}
	for _, tree := range trees {
		snap.Traces = append(snap.Traces, TraceView{
			TraceID:  strconv.FormatUint(tree.TraceID, 16),
			Sources:  tree.Sources,
			Rendered: tree.Render(rename, timings),
		})
	}
	return snap
}

// render writes the dashboard form of a snapshot.
func render(out io.Writer, snap Snapshot, clear bool) {
	if clear {
		fmt.Fprint(out, "\x1b[2J\x1b[H")
	}
	fmt.Fprintf(out, "cachetop — %d nodes, %d assembled traces\n\n", len(snap.Nodes), len(snap.Traces))
	fmt.Fprintf(out, "%-12s %8s %7s %8s %8s %9s %9s\n",
		"NODE", "FETCHES", "HIT%", "PENDING", "DIRLAG", "SPANS", "LOST")
	for _, n := range snap.Nodes {
		name := n.Node
		if name == "" {
			name = hostPort(n.URL)
		}
		if n.Error != "" {
			fmt.Fprintf(out, "%-12s DOWN: %s\n", name, n.Error)
			continue
		}
		fmt.Fprintf(out, "%-12s %8.0f %6.1f%% %8.0f %8.0f %9.0f %9d\n",
			name, n.Fetches, n.HitRatio*100, n.PendingRecords,
			n.DirectoryLagObjects, n.SpansRecorded, n.SpansLost)
		for _, p := range n.Peers {
			state := [...]string{"closed", "OPEN", "half"}[int(p.BreakerState)%3]
			lag := "-"
			if p.HintLagCount > 0 {
				lag = fmt.Sprintf("p50 %.1fms p99 %.1fms (n=%d)", p.HintLagP50Ms, p.HintLagP99Ms, p.HintLagCount)
			}
			fmt.Fprintf(out, "  -> %-21s q=%-5.0f brk=%-6s lag %s\n", p.Peer, p.QueueDepth, state, lag)
		}
	}
	if len(snap.Traces) > 0 {
		fmt.Fprintf(out, "\nTRACES\n")
		for _, tr := range snap.Traces {
			fmt.Fprintf(out, "%s", tr.Rendered)
		}
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cachetop", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		nodes    = fs.String("nodes", "", "comma-separated node base URLs (required)")
		interval = fs.Duration("interval", 2*time.Second, "refresh interval")
		once     = fs.Bool("once", false, "take one snapshot and exit")
		asJSON   = fs.Bool("json", false, "emit JSON snapshots instead of the dashboard")
		traces   = fs.Int("traces", 16, "max assembled traces per snapshot (0: unlimited)")
		timings  = fs.Bool("timings", false, "include span start/duration in rendered traces")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var targets []string
	for _, n := range strings.Split(*nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			targets = append(targets, strings.TrimSuffix(n, "/"))
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("-nodes is required")
	}

	s := newScraper(targets)
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	for {
		snap := s.snapshot(*traces, *timings)
		if *asJSON {
			if err := enc.Encode(snap); err != nil {
				return err
			}
		} else {
			render(out, snap, !*once)
		}
		if *once {
			return nil
		}
		time.Sleep(*interval)
	}
}
