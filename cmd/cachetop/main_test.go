package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"beyondcache/internal/cluster"
	"beyondcache/internal/faults"
	"beyondcache/internal/obs"
)

// TestFleetObservabilitySmoke is the CI fleet-observability smoke: a live
// 3-node fleet with one blackholed link (node-0 -> node-2) driven through a
// hedged-miss / breaker sequence and a cross-node remote hit, then
// inspected with `cachetop -once -json`. It asserts the snapshot contains
// at least one assembled cross-node trace, at least one trace showing a
// hedge or breaker branch, and that the metadata-freshness plane diverges
// the way the fault should make it: node-1 sees finite hint-propagation
// lag from node-0 while node-2 (behind the blackhole) sees none.
func TestFleetObservabilitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping live-fleet smoke in -short mode")
	}
	const interval = time.Second

	origin := cluster.NewOrigin(256)
	if err := origin.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer origin.Close()

	// node-0 gets a prebuilt outbound injector so the test can blackhole
	// one of its links once peer ports are known.
	inj, err := faults.New("", 1)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(i int, inj *faults.Injector) *cluster.Node {
		n, err := cluster.NewNode(cluster.NodeConfig{
			Name:           fmt.Sprintf("obs-%d", i),
			OriginURL:      origin.URL(),
			UpdateInterval: interval,
			TraceSample:    1,
			PeerTimeout:    500 * time.Millisecond,
			HedgeBudget:    20 * time.Millisecond,
			Seed:           int64(i) + 1,
			Faults:         inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		return n
	}
	n0 := mk(0, inj)
	defer n0.Close()
	n1 := mk(1, nil)
	defer n1.Close()
	n2 := mk(2, nil)
	defer n2.Close()
	nodes := []*cluster.Node{n0, n1, n2}
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				a.AddPeer(b.URL())
			}
		}
	}

	// Blackhole node-0's link to node-2 only; heal it before the deferred
	// Closes so node-0's final flush doesn't burn the retry budget.
	if err := inj.SetSpec(hostPort(n2.URL()) + ":blackhole"); err != nil {
		t.Fatal(err)
	}
	defer inj.SetSpec("")

	// Warm objects on node-2 and announce them. node-2's links are all
	// healthy, so a synchronous flush is fast; node-0's own Flush would
	// block on the blackholed sender, so this test never calls it —
	// node-0's deliveries ride its periodic batcher.
	client := &http.Client{Timeout: 10 * time.Second}
	urls := make([]string, 6)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://origin.example/obj-%d", i)
		if _, err := cluster.FetchFrom(client, n2.URL(), urls[i]); err != nil {
			t.Fatal(err)
		}
	}
	n2.Flush()

	// node-0 now holds hints pointing at node-2: each fetch probes the
	// blackholed link, hedges to the origin (PEER-ABANDON), and feeds the
	// breaker a failure once the probe times out. The second round runs
	// after the probes resolve, so the breaker can open into BREAKER-SKIP.
	branch := func(hops []obs.Hop) string {
		for _, h := range hops {
			if h.Outcome == "PEER-ABANDON" || h.Outcome == "BREAKER-SKIP" {
				return h.Outcome
			}
		}
		return ""
	}
	branches := map[string]bool{}
	for round, batch := range [][]string{urls[:4], urls[4:]} {
		if round == 1 {
			time.Sleep(700 * time.Millisecond) // let the round-0 probes time out
		}
		for _, u := range batch {
			res, err := cluster.FetchFrom(client, n0.URL(), u)
			if err != nil {
				t.Fatal(err)
			}
			if b := branch(res.Hops); b != "" {
				branches[b] = true
			}
		}
	}
	if len(branches) == 0 {
		t.Fatal("no fetch from node-0 took a hedge or breaker branch")
	}

	// Cross-node trace: node-1's hints (delivered by node-2's flush) send
	// it to node-2 for a remote hit.
	res, err := cluster.FetchFrom(client, n1.URL(), urls[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Remote() {
		t.Fatalf("node-1 fetch served %q, want REMOTE", res.How)
	}

	// node-0 cached the hedged objects, so its batcher announces them to
	// node-1 over the healthy link within ~1.5x the interval. Poll node-1's
	// metrics until the propagation-lag histogram has an observation from
	// node-0.
	lagCount := func(base, peer string) int64 {
		resp, err := client.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		p, err := obs.ParseExposition(string(body))
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range p.HistogramsOf("beyondcache_hint_propagation_seconds") {
			if h.Labels["peer"] == peer {
				return h.Snapshot.Count()
			}
		}
		return 0
	}
	deadline := time.Now().Add(10 * time.Second)
	for lagCount(n1.URL(), hostPort(n0.URL())) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("node-1 never recorded hint-propagation lag from node-0")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// One cachetop snapshot over the whole fleet.
	var buf bytes.Buffer
	targets := strings.Join([]string{n0.URL(), n1.URL(), n2.URL()}, ",")
	if err := run([]string{"-nodes", targets, "-once", "-json", "-traces", "0"}, &buf); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, buf.String())
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, buf.String())
	}
	if len(snap.Nodes) != 3 {
		t.Fatalf("snapshot has %d nodes, want 3", len(snap.Nodes))
	}
	for _, n := range snap.Nodes {
		if n.Error != "" {
			t.Fatalf("node %s scrape failed: %s", n.URL, n.Error)
		}
	}

	// At least one genuinely cross-node trace, and at least one trace
	// showing the hedge/breaker branch node-0 took.
	var crossNode, branched bool
	for _, tr := range snap.Traces {
		if tr.Sources >= 2 {
			crossNode = true
		}
		if strings.Contains(tr.Rendered, "PEER-ABANDON") || strings.Contains(tr.Rendered, "BREAKER-SKIP") {
			branched = true
		}
	}
	if !crossNode {
		t.Error("no assembled trace has spans from 2+ nodes")
	}
	if !branched {
		t.Error("no assembled trace shows a PEER-ABANDON or BREAKER-SKIP branch")
	}

	// Freshness divergence: node-1 measured finite lag from node-0 (p99
	// within 2x the batch interval); node-2, behind the blackhole, saw
	// nothing from node-0 at all.
	peerView := func(nodeName, peer string) (PeerView, bool) {
		for _, n := range snap.Nodes {
			if n.Node != nodeName {
				continue
			}
			for _, p := range n.Peers {
				if p.Peer == peer {
					return p, true
				}
			}
		}
		return PeerView{}, false
	}
	from0 := hostPort(n0.URL())
	pv, ok := peerView("obs-1", from0)
	if !ok || pv.HintLagCount < 1 {
		t.Errorf("obs-1 has no hint-lag observations from node-0: %+v (found %v)", pv, ok)
	}
	if maxMs := 2 * float64(interval/time.Millisecond); pv.HintLagP99Ms <= 0 || pv.HintLagP99Ms > maxMs {
		t.Errorf("obs-1 hint-lag p99 from node-0 = %.1fms, want (0, %.0fms]", pv.HintLagP99Ms, maxMs)
	}
	if pv, ok := peerView("obs-2", from0); ok && pv.HintLagCount != 0 {
		t.Errorf("obs-2 recorded %d hint-lag observations from blackholed node-0, want 0", pv.HintLagCount)
	}
}
