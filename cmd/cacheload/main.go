// Command cacheload drives wire-level load scenarios against the hint-cache
// fleet: an open-loop, coordinated-omission-safe HTTP load generator plus
// the fault-scenario matrix shipped in internal/loadgen/scenarios.
//
// Usage:
//
//	cacheload -list
//	cacheload -show flash-crowd
//	cacheload -scenario flash-crowd -v
//	cacheload -scenario all -out BENCH_load.json
//	cacheload -file my.scenario -workers 128
//	cacheload -scenario diurnal-ramp -targets http://h1:8001,http://h2:8001
//
// Each scenario parses into a deterministic request schedule (fixed seed ⇒
// byte-identical schedule), boots an in-process fleet (or targets a running
// one with -targets), replays the schedule paced by intended arrival times,
// applies the scenario's fault/origin/invalidation timeline mid-run, and
// judges the recorded client-side latencies against the scenario's
// acceptance bounds. Exit status is non-zero if any bound fails.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"beyondcache/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cacheload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cacheload", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		list     = fs.Bool("list", false, "list the shipped scenarios and exit")
		show     = fs.String("show", "", "print a shipped scenario's canonical spec and exit")
		scenario = fs.String("scenario", "all", "shipped scenario to run, or \"all\"")
		file     = fs.String("file", "", "run a scenario file instead of a shipped scenario")
		outPath  = fs.String("out", "", "write a BENCH_load.json document to this path")
		targets  = fs.String("targets", "", "comma-separated node base URLs of an already-running fleet (default: boot an in-process fleet per scenario)")
		workers  = fs.Int("workers", 0, "override the scenario's driver worker count")
		verbose  = fs.Bool("v", false, "log schedule, event, and bound progress")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, name := range loadgen.BuiltinNames() {
			fmt.Fprintln(out, name)
		}
		return nil
	}
	if *show != "" {
		sc, err := loadgen.Builtin(*show)
		if err != nil {
			return err
		}
		fmt.Fprint(out, sc.Format())
		return nil
	}

	var scenarios []*loadgen.Scenario
	switch {
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		sc, err := loadgen.Parse(string(data))
		if err != nil {
			return err
		}
		scenarios = append(scenarios, sc)
	case *scenario == "all":
		all, err := loadgen.Builtins()
		if err != nil {
			return err
		}
		scenarios = all
	default:
		sc, err := loadgen.Builtin(*scenario)
		if err != nil {
			return err
		}
		scenarios = append(scenarios, sc)
	}

	opt := loadgen.RunOptions{Workers: *workers}
	if *targets != "" {
		for _, tgt := range strings.Split(*targets, ",") {
			if tgt = strings.TrimSpace(tgt); tgt != "" {
				opt.Targets = append(opt.Targets, tgt)
			}
		}
	}
	if *verbose {
		opt.Logf = func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		}
	}

	var rows []loadgen.BenchRow
	failed := 0
	for _, sc := range scenarios {
		rep, err := loadgen.Run(sc, opt)
		if err != nil {
			return fmt.Errorf("%s: %w", sc.Name, err)
		}
		row := rep.Row()
		rows = append(rows, row)
		printRow(out, row)
		if !rep.Pass {
			failed++
		}
	}

	if *outPath != "" {
		if err := loadgen.WriteBenchFile(*outPath, rows); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d rows to %s\n", len(rows), *outPath)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed their acceptance bounds", failed, len(scenarios))
	}
	return nil
}

// printRow renders one scenario's verdict, a summary line, and its bounds.
func printRow(out io.Writer, row loadgen.BenchRow) {
	verdict := "PASS"
	if !row.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(out, "%s %s: %d req (%d err) in %.1fs, %.0f req/s/node, hit %.3f, p50 %.2fms p95 %.2fms p99 %.2fms\n",
		verdict, row.Scenario, row.Requests, row.Errors, row.WallSeconds,
		row.ReqPerSecPerNode, row.HitRate, row.P50Ms, row.P95Ms, row.P99Ms)
	for _, b := range row.Bounds {
		mark := "ok"
		if !b.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(out, "  %-4s %s (actual %.4g)\n", mark, b.Expr, b.Actual)
	}
}
