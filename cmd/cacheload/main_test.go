package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListAndShow(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"flash-crowd", "diurnal-ramp", "regional-partition", "origin-brownout", "invalidation-storm"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("-list output missing %s:\n%s", want, sb.String())
		}
	}

	sb.Reset()
	if err := run([]string{"-show", "flash-crowd"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "name flash-crowd") || !strings.Contains(sb.String(), "accept p99_ratio spike steady <= 3") {
		t.Fatalf("-show output not canonical:\n%s", sb.String())
	}

	if err := run([]string{"-show", "nope"}, &sb); err == nil {
		t.Fatal("-show accepted an unknown scenario")
	}
	if err := run([]string{"-scenario", "nope"}, &sb); err == nil {
		t.Fatal("-scenario accepted an unknown scenario")
	}
}

// TestRunScenarioFile drives a tiny scenario end to end through the CLI —
// in-process fleet, bench file out — and checks the artifact parses.
func TestRunScenarioFile(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping live-fleet CLI test in -short mode")
	}
	dir := t.TempDir()
	spec := filepath.Join(dir, "tiny.scenario")
	bench := filepath.Join(dir, "BENCH_load.json")
	err := os.WriteFile(spec, []byte(`
name tiny
profile DEC
nodes 2
seed 1
warmup 20
workers 8
origin-latency 2ms
phase only 1s rate=40
accept error_rate <= 0.1
`), 0o644)
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := run([]string{"-file", spec, "-out", bench}, &sb); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "PASS tiny:") {
		t.Fatalf("missing verdict line:\n%s", sb.String())
	}

	data, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Description string `json:"description"`
		Rows        []struct {
			Scenario       string `json:"scenario"`
			ScheduleSHA256 string `json:"schedule_sha256"`
			Pass           bool   `json:"pass"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Rows) != 1 || doc.Rows[0].Scenario != "tiny" || !doc.Rows[0].Pass || len(doc.Rows[0].ScheduleSHA256) != 64 {
		t.Fatalf("bench document malformed: %+v", doc)
	}
}
