package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"beyondcache/internal/trace"
)

func TestRunWritesTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.trace")
	err := run([]string{"-trace", "Berkeley", "-requests", "50", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reqs, err := trace.ReadAll(trace.NewTextReader(f))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 50 {
		t.Errorf("wrote %d requests, want 50", len(reqs))
	}
}

func TestRunSeedChangesOutput(t *testing.T) {
	gen := func(seed string) string {
		out := filepath.Join(t.TempDir(), "s.trace")
		if err := run([]string{"-trace", "DEC", "-requests", "30", "-seed", seed, "-out", out}); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a, b := gen("1"), gen("2")
	// Headers differ only in the comment; strip it.
	aa := a[strings.Index(a, "\n"):]
	bb := b[strings.Index(b, "\n"):]
	if aa == bb {
		t.Error("different seeds produced identical traces")
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	if err := run([]string{"-trace", "unknown"}); err == nil {
		t.Error("unknown trace accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-trace", "DEC", "-out", "/nonexistent-dir/x/y"}); err == nil {
		t.Error("unwritable output accepted")
	}
}
