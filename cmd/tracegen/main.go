// Command tracegen emits a synthetic proxy trace in the library's text
// format (one request per line: seq timeNanos client object size version
// flags).
//
// Usage:
//
//	tracegen -trace DEC -scale 0.005 > dec.trace
//	tracegen -trace Prodigy -requests 100000 -out prodigy.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"beyondcache/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		name     = fs.String("trace", "DEC", "workload: DEC, Berkeley, or Prodigy")
		scale    = fs.Float64("scale", float64(trace.ScaleSmall), "fraction of published trace size")
		requests = fs.Int64("requests", 0, "override request count (0 = per scale)")
		seed     = fs.Int64("seed", 0, "override the profile seed (0 = default)")
		out      = fs.String("out", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var p trace.Profile
	switch strings.ToLower(*name) {
	case "dec":
		p = trace.DECProfile(trace.Scale(*scale))
	case "berkeley":
		p = trace.BerkeleyProfile(trace.Scale(*scale))
	case "prodigy":
		p = trace.ProdigyProfile(trace.Scale(*scale))
	default:
		return fmt.Errorf("unknown trace %q (want DEC, Berkeley, or Prodigy)", *name)
	}
	if *requests > 0 {
		p.Requests = *requests
	}
	if *seed != 0 {
		p.Seed = *seed
	}

	g, err := trace.NewGenerator(p)
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintf(w, "# %s trace, scale %g: %d requests, %d distinct URLs, %d clients, %.3f days\n",
		p.Name, *scale, p.Requests, p.DistinctURLs, p.Clients, p.Days)
	n, err := trace.WriteText(w, g)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d requests\n", n)
	return nil
}
