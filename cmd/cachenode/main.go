// Command cachenode runs one node of the networked hint-cache prototype, or
// (with -origin) the synthetic origin server the nodes fetch misses from.
//
// A three-node fleet on one machine:
//
//	cachenode -origin -listen 127.0.0.1:8000 &
//	cachenode -listen 127.0.0.1:8001 -origin-url http://127.0.0.1:8000 \
//	          -peers http://127.0.0.1:8002,http://127.0.0.1:8003 &
//	cachenode -listen 127.0.0.1:8002 -origin-url http://127.0.0.1:8000 \
//	          -peers http://127.0.0.1:8001,http://127.0.0.1:8003 &
//	cachenode -listen 127.0.0.1:8003 -origin-url http://127.0.0.1:8000 \
//	          -peers http://127.0.0.1:8001,http://127.0.0.1:8002 &
//
// Then fetch through any node:
//
//	curl 'http://127.0.0.1:8001/fetch?url=http://example.com/page'
//
// The X-Cache response header reports LOCAL, REMOTE (direct cache-to-cache
// transfer), or MISS (origin fetch).
//
// With -update-targets, hint batches go to the listed metadata relays
// instead of being broadcast to every peer (the paper's hint hierarchy);
// data transfers remain direct either way.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux; served only behind -debug-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"beyondcache/internal/cluster"
	"beyondcache/internal/resilience"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, func() { <-stop }); err != nil {
		fmt.Fprintln(os.Stderr, "cachenode:", err)
		os.Exit(1)
	}
}

// run starts the configured server, calls wait, then shuts down. Split out
// of main so tests can drive it with their own wait function.
func run(args []string, out io.Writer, wait func()) error {
	fs := flag.NewFlagSet("cachenode", flag.ContinueOnError)
	var (
		listen      = fs.String("listen", "127.0.0.1:0", "address to listen on")
		originMode  = fs.Bool("origin", false, "run as the origin server instead of a cache node")
		originURL   = fs.String("origin-url", "", "origin server base URL (cache nodes)")
		peers       = fs.String("peers", "", "comma-separated peer base URLs")
		updateTo    = fs.String("update-targets", "", "comma-separated metadata relay URLs (default: broadcast to peers)")
		name        = fs.String("name", "", "node name for stats (default: listen address)")
		cacheBytes  = fs.Int64("cache-bytes", 64<<20, "object cache capacity in bytes")
		cacheShards = fs.Int("cache-shards", 0, "object cache shard count, rounded up to a power of two (0: sized from GOMAXPROCS)")
		cacheDir    = fs.String("cache-dir", "", "directory for the persistent disk tier; evictions spill here and the population is recovered and re-advertised on boot (off when empty)")
		diskCap     = fs.Int64("disk-capacity", 0, "disk tier capacity in bytes; overflow evicts least-recently-read objects (0: unbounded; requires -cache-dir)")
		spillQueue  = fs.Int("spill-queue", 0, "bounded write-behind spill queue, in evicted objects; overflow drops oldest (0: 1024 default)")
		compressMin = fs.Int64("compress-min", 0, "deflate spilled objects of at least this many bytes, kept only when smaller (0: never compress)")
		recWorkers  = fs.Int("recovery-workers", 0, "concurrent verify-on-read workers for the boot recovery scan (0: 4 default)")
		hintEntries = fs.Int("hint-entries", 65536, "hint table entries (16 bytes each)")
		hintStripes = fs.Int("hint-stripes", 0, "hint table lock stripes, rounded up to a power of two (0: sized from GOMAXPROCS)")
		interval    = fs.Duration("update-interval", time.Second, "mean hint batch interval")
		hintQueue   = fs.Int("hint-queue", 0, "pending and per-peer hint queue capacity in records; overflow drops oldest informs first (0: 8192 default)")
		digWorkers  = fs.Int("digest-workers", 0, "concurrent peer digest pulls in digest mode (0: 4 default)")
		digests     = fs.Bool("digests", false, "exchange Bloom-filter cache digests instead of exact hint records")
		digDelta    = fs.Bool("digest-delta", true, "pull cursor-based digest deltas (ops since last pull) instead of full snapshots every round")
		wireComp    = fs.Bool("wire-compress", false, "flate-compress metadata frames (hint batches, digests) past 256 bytes")
		hintPart    = fs.Bool("hint-partition", false, "partition the hint directory across the fleet: each object's hints live on a Plaxton-routed owner set instead of every node (DESIGN.md \u00a714)")
		hintReps    = fs.Int("hint-replicas", 0, "owner-set size R per object in partitioned mode (0: 2 default)")
		objectSize  = fs.Int64("object-size", 8<<10, "origin default object size")
		traceSample = fs.Float64("trace-sample", 0, "fraction of fetches recorded in /debug/traces (0: node default of 1/64, >=1: all, <0: none)")
		spanRing    = fs.Int("span-ring", 0, "structured-span ring capacity behind /debug/spans, rounded up to a power of two (0: 4096 default)")
		debugAddr   = fs.String("debug-addr", "", "optional address for a net/http/pprof debug listener (off when empty)")

		inject       = fs.String("inject", "", `outbound fault spec, e.g. "127.0.0.1:8002:latency=200ms,errrate=0.1;*:droprate=0.01" (see internal/faults)`)
		injectIn     = fs.String("inject-inbound", "", "inbound fault spec: this node misbehaving as seen by its clients (rules match the node's own address)")
		faultSeed    = fs.Int64("fault-seed", 0, "seed for injected-fault randomness")
		hedgeBudget  = fs.Duration("hedge-budget", 0, "how long a hinted peer may stay silent before the origin is raced (0: 50ms default, negative: disable hedging)")
		peerTimeout  = fs.Duration("peer-timeout", 0, "deadline for one cache-to-cache probe (0: 2s default)")
		originTO     = fs.Duration("origin-timeout", 0, "deadline for one origin fetch (0: 10s default)")
		brkWindow    = fs.Int("breaker-window", 0, "per-peer breaker outcome window (0: 10)")
		brkThreshold = fs.Float64("breaker-threshold", 0, "windowed failure rate that opens a peer's breaker (0: 0.5; >1 disables breaking)")
		brkCooldown  = fs.Duration("breaker-cooldown", 0, "how long an open breaker refuses before half-open probes (0: 5s)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *debugAddr != "" {
		stopDebug, err := serveDebug(*debugAddr, out)
		if err != nil {
			return err
		}
		defer stopDebug()
	}

	if *originMode {
		o := cluster.NewOrigin(*objectSize)
		if err := o.Start(*listen); err != nil {
			return err
		}
		fmt.Fprintf(out, "origin serving on %s\n", o.URL())
		wait()
		return o.Close()
	}

	if *originURL == "" {
		return fmt.Errorf("-origin-url is required for cache nodes")
	}
	if *hintPart && *updateTo != "" {
		return fmt.Errorf("-hint-partition routes hint batches by object ownership and cannot be combined with -update-targets relays")
	}
	n, err := cluster.NewNode(cluster.NodeConfig{
		Name:            *name,
		CacheBytes:      *cacheBytes,
		CacheShards:     *cacheShards,
		CacheDir:        *cacheDir,
		DiskCapacity:    *diskCap,
		SpillQueue:      *spillQueue,
		CompressMin:     *compressMin,
		RecoveryWorkers: *recWorkers,
		HintEntries:     *hintEntries,
		HintStripes:     *hintStripes,
		OriginURL:       *originURL,
		UpdateInterval:  *interval,
		HintQueue:       *hintQueue,
		DigestWorkers:   *digWorkers,
		UseDigests:      *digests,
		DigestFull:      !*digDelta,
		WireCompress:    *wireComp,
		HintPartition:   *hintPart,
		HintReplicas:    *hintReps,
		TraceSample:     *traceSample,
		SpanRing:        *spanRing,
		PeerTimeout:     *peerTimeout,
		OriginTimeout:   *originTO,
		HedgeBudget:     *hedgeBudget,
		Breaker: resilience.BreakerConfig{
			Window:           *brkWindow,
			FailureThreshold: *brkThreshold,
			Cooldown:         *brkCooldown,
		},
		FaultSpec:        *inject,
		FaultSeed:        *faultSeed,
		InboundFaultSpec: *injectIn,
	})
	if err != nil {
		return err
	}
	if *inject != "" || *injectIn != "" {
		fmt.Fprintf(out, "chaos enabled (outbound %q, inbound %q, seed %d)\n", *inject, *injectIn, *faultSeed)
	}
	if err := n.Start(*listen); err != nil {
		return err
	}
	peerURLs, err := normalizeTargets(*peers, "-peers", n.Addr())
	if err != nil {
		_ = n.Close()
		return err
	}
	relayURLs, err := normalizeTargets(*updateTo, "-update-targets", n.Addr())
	if err != nil {
		_ = n.Close()
		return err
	}
	for _, p := range peerURLs {
		n.AddPeer(p)
	}
	for _, u := range relayURLs {
		n.AddUpdateTarget(u)
	}
	npeers := len(peerURLs)
	fmt.Fprintf(out, "cache node serving on %s (origin %s, %d peers)\n",
		n.URL(), *originURL, npeers)
	wait()
	return n.Close()
}

// normalizeTargets splits a comma-separated URL list, trims whitespace,
// drops empty entries, dedupes (first occurrence wins, compared on the
// host:port behind any scheme and trailing slash), and rejects the node's
// own listen address — a node feeding hints or probes back to itself is
// always a misconfiguration and in partitioned mode would double-count the
// local machine in the overlay.
func normalizeTargets(list, kind, self string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	for _, raw := range strings.Split(list, ",") {
		u := strings.TrimSpace(raw)
		if u == "" {
			continue
		}
		key := strings.TrimSuffix(u, "/")
		key = strings.TrimPrefix(key, "http://")
		key = strings.TrimPrefix(key, "https://")
		if self != "" && key == self {
			return nil, fmt.Errorf("%s includes this node's own listen address %s", kind, self)
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, u)
	}
	return out, nil
}

// serveDebug binds net/http/pprof (via DefaultServeMux) on addr. Opt-in
// only: profiling endpoints stay off the node's public listener so exposing
// /fetch never exposes heap dumps.
func serveDebug(addr string, out io.Writer) (stop func(), err error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug listen: %w", err)
	}
	srv := &http.Server{Handler: http.DefaultServeMux, ReadHeaderTimeout: 5 * time.Second}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(lis)
	}()
	fmt.Fprintf(out, "debug (pprof) serving on http://%s/debug/pprof/\n", lis.Addr())
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		if srv.Shutdown(ctx) != nil {
			_ = srv.Close()
		}
		<-done
	}, nil
}
