package main

import (
	"bytes"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"beyondcache/internal/cluster"
)

// startDaemon runs the command with a controllable wait, returning the base
// URL it printed (the last "serving on" line, the main listener) and a
// stopper. With -debug-addr the debug listener's URL comes first; use
// startDaemonAll to see both.
func startDaemon(t *testing.T, args []string) (url string, stop func()) {
	t.Helper()
	urls, stop := startDaemonAll(t, args)
	return urls[len(urls)-1], stop
}

// startDaemonAll is startDaemon returning every printed listener URL in
// print order.
func startDaemonAll(t *testing.T, args []string) (urls []string, stop func()) {
	t.Helper()
	var out bytes.Buffer
	release := make(chan struct{})
	done := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		done <- run(args, &out, func() {
			close(started)
			<-release
		})
	}()
	select {
	case <-started:
	case err := <-done:
		t.Fatalf("daemon exited early: %v (output %q)", err, out.String())
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not start")
	}
	for _, m := range regexp.MustCompile(`serving on (http://\S+)`).FindAllStringSubmatch(out.String(), -1) {
		urls = append(urls, m[1])
	}
	if len(urls) == 0 {
		t.Fatalf("no URL in output %q", out.String())
	}
	return urls, func() {
		close(release)
		if err := <-done; err != nil {
			t.Errorf("daemon shutdown: %v", err)
		}
	}
}

func TestOriginAndNodeEndToEnd(t *testing.T) {
	originURL, stopOrigin := startDaemon(t, []string{"-origin", "-object-size", "2048"})
	defer stopOrigin()
	nodeURL, stopNode := startDaemon(t, []string{"-origin-url", originURL})
	defer stopNode()

	client := &http.Client{Timeout: 5 * time.Second}
	res, err := cluster.FetchFrom(client, nodeURL, "http://example.com/cli")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Miss() || res.Bytes != 2048 {
		t.Fatalf("first fetch = %+v, want 2048-byte MISS", res)
	}
	res, err = cluster.FetchFrom(client, nodeURL, "http://example.com/cli")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Local() {
		t.Fatalf("second fetch = %+v, want LOCAL", res)
	}
}

// TestDebugAndMetricsEndpoints boots a node with -debug-addr and checks the
// two observability surfaces: pprof on the private debug listener, and the
// Prometheus exposition on the public one.
func TestDebugAndMetricsEndpoints(t *testing.T) {
	originURL, stopOrigin := startDaemon(t, []string{"-origin"})
	defer stopOrigin()
	urls, stopNode := startDaemonAll(t, []string{
		"-origin-url", originURL, "-debug-addr", "127.0.0.1:0", "-trace-sample", "1"})
	defer stopNode()
	if len(urls) != 2 {
		t.Fatalf("want debug + node URLs, got %v", urls)
	}
	debugURL, nodeURL := urls[0], urls[1]

	client := &http.Client{Timeout: 5 * time.Second}
	if _, err := cluster.FetchFrom(client, nodeURL, "http://example.com/dbg"); err != nil {
		t.Fatal(err)
	}
	for url, wantBody := range map[string]string{
		debugURL:                  "Types of profiles available", // pprof index (already /debug/pprof/)
		nodeURL + "/metrics":      "beyondcache_fetch_total",
		nodeURL + "/debug/traces": `"hops"`,
	} {
		resp, err := client.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", url, resp.StatusCode)
		}
		if !strings.Contains(string(body), wantBody) {
			t.Errorf("GET %s: body lacks %q", url, wantBody)
		}
	}
}

func TestNodeRequiresOrigin(t *testing.T) {
	err := run([]string{}, &bytes.Buffer{}, func() {})
	if err == nil || !strings.Contains(err.Error(), "origin-url") {
		t.Errorf("missing origin not rejected: %v", err)
	}
}

func TestBadFlagsRejected(t *testing.T) {
	if err := run([]string{"-bogus"}, &bytes.Buffer{}, func() {}); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-origin", "-listen", "999.999.999.999:1"}, &bytes.Buffer{}, func() {}); err == nil {
		t.Error("unlistenable address accepted")
	}
}
