package main

import (
	"bytes"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"beyondcache/internal/cluster"
)

// startDaemon runs the command with a controllable wait, returning the base
// URL it printed and a stopper.
func startDaemon(t *testing.T, args []string) (url string, stop func()) {
	t.Helper()
	var out bytes.Buffer
	release := make(chan struct{})
	done := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		done <- run(args, &out, func() {
			close(started)
			<-release
		})
	}()
	select {
	case <-started:
	case err := <-done:
		t.Fatalf("daemon exited early: %v (output %q)", err, out.String())
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not start")
	}
	m := regexp.MustCompile(`serving on (http://\S+)`).FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no URL in output %q", out.String())
	}
	return m[1], func() {
		close(release)
		if err := <-done; err != nil {
			t.Errorf("daemon shutdown: %v", err)
		}
	}
}

func TestOriginAndNodeEndToEnd(t *testing.T) {
	originURL, stopOrigin := startDaemon(t, []string{"-origin", "-object-size", "2048"})
	defer stopOrigin()
	nodeURL, stopNode := startDaemon(t, []string{"-origin-url", originURL})
	defer stopNode()

	client := &http.Client{Timeout: 5 * time.Second}
	res, err := cluster.FetchFrom(client, nodeURL, "http://example.com/cli")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Miss() || res.Bytes != 2048 {
		t.Fatalf("first fetch = %+v, want 2048-byte MISS", res)
	}
	res, err = cluster.FetchFrom(client, nodeURL, "http://example.com/cli")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Local() {
		t.Fatalf("second fetch = %+v, want LOCAL", res)
	}
}

func TestNodeRequiresOrigin(t *testing.T) {
	err := run([]string{}, &bytes.Buffer{}, func() {})
	if err == nil || !strings.Contains(err.Error(), "origin-url") {
		t.Errorf("missing origin not rejected: %v", err)
	}
}

func TestBadFlagsRejected(t *testing.T) {
	if err := run([]string{"-bogus"}, &bytes.Buffer{}, func() {}); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-origin", "-listen", "999.999.999.999:1"}, &bytes.Buffer{}, func() {}); err == nil {
		t.Error("unlistenable address accepted")
	}
}
