package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"beyondcache/internal/cluster"
)

// startDaemon runs the command with a controllable wait, returning the base
// URL it printed (the last "serving on" line, the main listener) and a
// stopper. With -debug-addr the debug listener's URL comes first; use
// startDaemonAll to see both.
func startDaemon(t *testing.T, args []string) (url string, stop func()) {
	t.Helper()
	urls, stop := startDaemonAll(t, args)
	return urls[len(urls)-1], stop
}

// startDaemonAll is startDaemon returning every printed listener URL in
// print order.
func startDaemonAll(t *testing.T, args []string) (urls []string, stop func()) {
	t.Helper()
	var out bytes.Buffer
	release := make(chan struct{})
	done := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		done <- run(args, &out, func() {
			close(started)
			<-release
		})
	}()
	select {
	case <-started:
	case err := <-done:
		t.Fatalf("daemon exited early: %v (output %q)", err, out.String())
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not start")
	}
	for _, m := range regexp.MustCompile(`serving on (http://\S+)`).FindAllStringSubmatch(out.String(), -1) {
		urls = append(urls, m[1])
	}
	if len(urls) == 0 {
		t.Fatalf("no URL in output %q", out.String())
	}
	return urls, func() {
		close(release)
		if err := <-done; err != nil {
			t.Errorf("daemon shutdown: %v", err)
		}
	}
}

func TestOriginAndNodeEndToEnd(t *testing.T) {
	originURL, stopOrigin := startDaemon(t, []string{"-origin", "-object-size", "2048"})
	defer stopOrigin()
	nodeURL, stopNode := startDaemon(t, []string{"-origin-url", originURL})
	defer stopNode()

	client := &http.Client{Timeout: 5 * time.Second}
	res, err := cluster.FetchFrom(client, nodeURL, "http://example.com/cli")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Miss() || res.Bytes != 2048 {
		t.Fatalf("first fetch = %+v, want 2048-byte MISS", res)
	}
	res, err = cluster.FetchFrom(client, nodeURL, "http://example.com/cli")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Local() {
		t.Fatalf("second fetch = %+v, want LOCAL", res)
	}
}

// TestDebugAndMetricsEndpoints boots a node with -debug-addr and checks the
// two observability surfaces: pprof on the private debug listener, and the
// Prometheus exposition on the public one.
func TestDebugAndMetricsEndpoints(t *testing.T) {
	originURL, stopOrigin := startDaemon(t, []string{"-origin"})
	defer stopOrigin()
	urls, stopNode := startDaemonAll(t, []string{
		"-origin-url", originURL, "-debug-addr", "127.0.0.1:0", "-trace-sample", "1"})
	defer stopNode()
	if len(urls) != 2 {
		t.Fatalf("want debug + node URLs, got %v", urls)
	}
	debugURL, nodeURL := urls[0], urls[1]

	client := &http.Client{Timeout: 5 * time.Second}
	if _, err := cluster.FetchFrom(client, nodeURL, "http://example.com/dbg"); err != nil {
		t.Fatal(err)
	}
	for url, wantBody := range map[string]string{
		debugURL:                  "Types of profiles available", // pprof index (already /debug/pprof/)
		nodeURL + "/metrics":      "beyondcache_fetch_total",
		nodeURL + "/debug/traces": `"hops"`,
	} {
		resp, err := client.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", url, resp.StatusCode)
		}
		if !strings.Contains(string(body), wantBody) {
			t.Errorf("GET %s: body lacks %q", url, wantBody)
		}
	}
}

func TestNodeRequiresOrigin(t *testing.T) {
	err := run([]string{}, &bytes.Buffer{}, func() {})
	if err == nil || !strings.Contains(err.Error(), "origin-url") {
		t.Errorf("missing origin not rejected: %v", err)
	}
}

func TestBadFlagsRejected(t *testing.T) {
	if err := run([]string{"-bogus"}, &bytes.Buffer{}, func() {}); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-origin", "-listen", "999.999.999.999:1"}, &bytes.Buffer{}, func() {}); err == nil {
		t.Error("unlistenable address accepted")
	}
}

func TestNormalizeTargets(t *testing.T) {
	got, err := normalizeTargets(
		" http://a:1 ,, http://b:2/ ,http://a:1, b:2 , https://c:3", "-peers", "")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:1", "http://b:2/", "https://c:3"}
	if len(got) != len(want) {
		t.Fatalf("normalizeTargets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("normalizeTargets = %v, want %v", got, want)
		}
	}

	if _, err := normalizeTargets("http://x:1,http://127.0.0.1:9999", "-peers", "127.0.0.1:9999"); err == nil {
		t.Error("own listen address accepted")
	} else if !strings.Contains(err.Error(), "own listen address") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestPartitionRejectsUpdateTargets(t *testing.T) {
	err := run([]string{
		"-origin-url", "http://127.0.0.1:1",
		"-hint-partition", "-update-targets", "http://127.0.0.1:2",
	}, &bytes.Buffer{}, func() {})
	if err == nil || !strings.Contains(err.Error(), "update-targets") {
		t.Errorf("partition + relays not rejected: %v", err)
	}
}

// freeAddr reserves an ephemeral port and releases it, so two nodes can be
// started with each other's address on the command line.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestPartitionedPairEndToEnd boots two partitioned nodes peered at each
// other; after node A fills an object and hints flush, node B's fetch must
// land REMOTE via either its local directory partition or the object's
// hint home.
func TestPartitionedPairEndToEnd(t *testing.T) {
	originURL, stopOrigin := startDaemon(t, []string{"-origin"})
	defer stopOrigin()
	addrA, addrB := freeAddr(t), freeAddr(t)
	aURL, stopA := startDaemon(t, []string{
		"-origin-url", originURL, "-hint-partition", "-update-interval", "50ms",
		"-listen", addrA, "-peers", "http://" + addrB})
	defer stopA()
	_, stopB := startDaemon(t, []string{
		"-origin-url", originURL, "-hint-partition", "-update-interval", "50ms",
		"-listen", addrB, "-peers", "http://" + addrA})
	defer stopB()
	client := &http.Client{Timeout: 5 * time.Second}
	bURL := "http://" + addrB

	// A fresh object per attempt: once B misses to the origin it holds the
	// object itself and every later fetch of the same URL is LOCAL.
	var last cluster.FetchResult
	for i := 0; i < 20; i++ {
		url := fmt.Sprintf("http://example.com/pp-%d", i)
		if _, err := cluster.FetchFrom(client, aURL, url); err != nil {
			t.Fatal(err)
		}
		time.Sleep(250 * time.Millisecond) // several 50ms flush intervals
		res, err := cluster.FetchFrom(client, bURL, url)
		if err != nil {
			t.Fatal(err)
		}
		if res.Remote() {
			return
		}
		last = res
	}
	t.Fatalf("fetch from B never went REMOTE (last %+v)", last)
}
