// Command cachesim regenerates the paper's tables and figures from the
// trace-driven simulators.
//
// Usage:
//
//	cachesim -list
//	cachesim -exp fig8 -scale 0.005
//	cachesim -exp all -parallel 4
//
// Each experiment prints the same rows/series the paper reports. The -scale
// flag sets the fraction of the published trace sizes to generate (the
// virtual clock is compressed by the same factor, so rates and delays stay
// comparable to the paper's). The -parallel flag bounds how many simulation
// cells run concurrently inside each experiment; output is byte-identical
// at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"beyondcache/internal/experiments"
	"beyondcache/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	// Batch simulation trades memory headroom for throughput: a higher GC
	// target cuts collector time ~10% on the full suite. GOGC still wins
	// if the operator sets it explicitly.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(300)
	}
	fs := flag.NewFlagSet("cachesim", flag.ContinueOnError)
	var (
		exp        = fs.String("exp", "all", "experiment id, or \"all\"")
		scale      = fs.Float64("scale", float64(trace.ScaleSmall), "fraction of published trace size")
		list       = fs.Bool("list", false, "list experiment ids and exit")
		parallel   = fs.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulation cells per experiment")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-8s %s\n", id, title)
		}
		return nil
	}
	if *scale <= 0 || *scale > 1 {
		return fmt.Errorf("scale must be in (0, 1], got %g", *scale)
	}
	if *parallel < 1 {
		return fmt.Errorf("parallel must be >= 1, got %d", *parallel)
	}
	opts := experiments.Options{Scale: trace.Scale(*scale), Parallel: *parallel}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		if _, ok := experiments.Title(id); !ok {
			return fmt.Errorf("unknown experiment %q; use -list", id)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cachesim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "cachesim: memprofile:", err)
			}
		}()
	}

	// Experiments run one after another — each parallelizes its own cells,
	// and all of them share the memoized materialized traces — so reports
	// print in a stable order.
	for _, id := range ids {
		out, err := runOne(id, opts)
		if err != nil {
			return err
		}
		fmt.Print(out)
	}
	return nil
}

// runOne executes one experiment and formats its report.
func runOne(id string, opts experiments.Options) (string, error) {
	title, _ := experiments.Title(id)
	start := time.Now()
	res, err := experiments.Run(id, opts)
	if err != nil {
		return "", fmt.Errorf("%s: %w", id, err)
	}
	return fmt.Sprintf("=== %s ===\n%s\n(%s in %v)\n\n",
		title, res.Render(), id, time.Since(start).Round(time.Millisecond)), nil
}
