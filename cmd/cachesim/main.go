// Command cachesim regenerates the paper's tables and figures from the
// trace-driven simulators.
//
// Usage:
//
//	cachesim -list
//	cachesim -exp fig8 -scale 0.005
//	cachesim -exp all
//
// Each experiment prints the same rows/series the paper reports. The -scale
// flag sets the fraction of the published trace sizes to generate (the
// virtual clock is compressed by the same factor, so rates and delays stay
// comparable to the paper's).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"beyondcache/internal/experiments"
	"beyondcache/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cachesim", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment id, or \"all\"")
		scale    = fs.Float64("scale", float64(trace.ScaleSmall), "fraction of published trace size")
		list     = fs.Bool("list", false, "list experiment ids and exit")
		parallel = fs.Bool("parallel", false, "run independent experiments concurrently")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-8s %s\n", id, title)
		}
		return nil
	}
	if *scale <= 0 || *scale > 1 {
		return fmt.Errorf("scale must be in (0, 1], got %g", *scale)
	}
	opts := experiments.Options{Scale: trace.Scale(*scale)}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		if _, ok := experiments.Title(id); !ok {
			return fmt.Errorf("unknown experiment %q; use -list", id)
		}
	}
	if *parallel {
		return runParallel(ids, opts)
	}
	for _, id := range ids {
		out, err := runOne(id, opts)
		if err != nil {
			return err
		}
		fmt.Print(out)
	}
	return nil
}

// runOne executes one experiment and formats its report.
func runOne(id string, opts experiments.Options) (string, error) {
	title, _ := experiments.Title(id)
	start := time.Now()
	res, err := experiments.Run(id, opts)
	if err != nil {
		return "", fmt.Errorf("%s: %w", id, err)
	}
	return fmt.Sprintf("=== %s ===\n%s\n(%s in %v)\n\n",
		title, res.Render(), id, time.Since(start).Round(time.Millisecond)), nil
}

// runParallel executes independent experiments concurrently but prints
// their reports in the original order.
func runParallel(ids []string, opts experiments.Options) error {
	type outcome struct {
		out string
		err error
	}
	results := make([]chan outcome, len(ids))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, id := range ids {
		results[i] = make(chan outcome, 1)
		go func(id string, ch chan outcome) {
			sem <- struct{}{}
			defer func() { <-sem }()
			out, err := runOne(id, opts)
			ch <- outcome{out: out, err: err}
		}(id, results[i])
	}
	var firstErr error
	for _, ch := range results {
		o := <-ch
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		fmt.Print(o.out)
	}
	return firstErr
}
