package main

import (
	"os"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list failed: %v", err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// table3 is analytic and instant.
	if err := run([]string{"-exp", "table3"}); err != nil {
		t.Fatalf("-exp table3 failed: %v", err)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	if err := run([]string{"-exp", "nonsense"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-scale", "0"}); err == nil {
		t.Error("scale 0 accepted")
	}
	if err := run([]string{"-scale", "1.5"}); err == nil {
		t.Error("scale > 1 accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunParallel(t *testing.T) {
	if err := run([]string{"-exp", "table3", "-parallel", "2"}); err != nil {
		t.Fatalf("-parallel 2 failed: %v", err)
	}
	if err := run([]string{"-exp", "table3", "-parallel", "0"}); err == nil {
		t.Error("parallel 0 accepted")
	}
	if err := run([]string{"-exp", "table3", "-parallel", "-3"}); err == nil {
		t.Error("negative parallel accepted")
	}
}

func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := dir + "/cpu.pprof"
	mem := dir + "/mem.pprof"
	if err := run([]string{"-exp", "table3", "-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatalf("profiling run failed: %v", err)
	}
	for _, f := range []string{cpu, mem} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", f)
		}
	}
}

func TestMainSmoke(t *testing.T) {
	// Exercise the experiment path at a tiny scale via run (not main, to
	// keep the process alive).
	if err := run([]string{"-exp", "fig3", "-scale", "0.001"}); err != nil {
		t.Fatalf("fig3 failed: %v", err)
	}
	_ = os.Stdout
}
