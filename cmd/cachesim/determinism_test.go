package main

import (
	"runtime"
	"sync"
	"testing"

	"beyondcache/internal/experiments"
	"beyondcache/internal/trace"
)

// The simulators are seeded and must stay deterministic: the same
// seed/scale yields byte-identical Render() output run after run, whether
// experiments execute serially or concurrently (the -parallel path). This
// guards the sharded concurrency layer in internal/cache and
// internal/hintcache against nondeterminism leaking into the simulators,
// which deliberately keep using the single-threaded structures.

// determinismIDs is a cheap cross-section: trace-driven simulation, hint
// tables, ICP extension, and workload characterization.
var determinismIDs = []string{"table4", "fig3", "fig5", "icp"}

func determinismOpts() experiments.Options {
	return experiments.Options{Scale: trace.Scale(0.001)}
}

// renderOnce runs one experiment and returns its rendered report.
func renderOnce(t *testing.T, id string) string {
	t.Helper()
	return renderWith(t, id, determinismOpts())
}

func renderWith(t *testing.T, id string, o experiments.Options) string {
	t.Helper()
	res, err := experiments.Run(id, o)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return res.Render()
}

func TestExperimentsDeterministicSerial(t *testing.T) {
	for _, id := range determinismIDs {
		first := renderOnce(t, id)
		second := renderOnce(t, id)
		if first != second {
			t.Errorf("%s: two serial runs with the same seed/scale differ:\n--- first\n%s\n--- second\n%s",
				id, first, second)
		}
	}
}

func TestExperimentsDeterministicParallel(t *testing.T) {
	// Serial goldens first.
	golden := make(map[string]string, len(determinismIDs))
	for _, id := range determinismIDs {
		golden[id] = renderOnce(t, id)
	}

	// Now the cachesim -parallel execution shape: every experiment on its
	// own goroutine, gated by a GOMAXPROCS-sized semaphore, twice over to
	// catch scheduling-order sensitivity.
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for round := 0; round < 2; round++ {
		for _, id := range determinismIDs {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if got := renderOnce(t, id); got != golden[id] {
					t.Errorf("%s: concurrent run differs from serial golden", id)
				}
			}(id)
		}
	}
	wg.Wait()
}

// TestExperimentsParallelCellsByteIdentical pins the -parallel contract:
// running an experiment's cells on one worker or many must render the same
// bytes, because results merge in enumeration order.
func TestExperimentsParallelCellsByteIdentical(t *testing.T) {
	ids := append([]string{"fig8", "fig4", "load", "allpolicies"}, determinismIDs...)
	for _, id := range ids {
		serial := determinismOpts()
		serial.Parallel = 1
		wide := determinismOpts()
		wide.Parallel = 8
		if a, b := renderWith(t, id, serial), renderWith(t, id, wide); a != b {
			t.Errorf("%s: -parallel 1 and -parallel 8 outputs differ:\n--- serial\n%s\n--- parallel\n%s", id, a, b)
		}
	}
}
