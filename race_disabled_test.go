//go:build !race

package beyondcache_test

const raceEnabled = false
