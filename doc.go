// Package beyondcache reproduces "Beyond Hierarchies: Design Considerations
// for Distributed Caching on the Internet" (Tewari, Dahlin, Vin, Kay; ICDCS
// 1999 / UTCS TR98-04): a distributed web-cache architecture that separates
// data paths from metadata paths using compact location hints, plus push
// caching algorithms that move data near future readers.
//
// The library lives under internal/ (core facade, trace generators, cache
// and hint-cache data structures, Plaxton tree embedding, network cost
// models, policy simulators, push algorithms, a networked prototype) with
// executables under cmd/ and runnable examples under examples/. The
// root-level benchmarks (bench_test.go) regenerate every table and figure
// of the paper's evaluation; see DESIGN.md and EXPERIMENTS.md.
package beyondcache
