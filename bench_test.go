// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per experiment), microbenchmarks of the core data
// structures (the prototype's 4.3us in-memory / 10.8ms on-disk hint lookup,
// Section 3.2.1), end-to-end simulator throughput, and ablations of the
// design choices DESIGN.md calls out.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks run at a very small trace scale per iteration;
// use cmd/cachesim for full-resolution output.
package beyondcache_test

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	neturl "net/url"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"beyondcache/internal/cache"
	"beyondcache/internal/cluster"
	"beyondcache/internal/core"
	"beyondcache/internal/experiments"
	"beyondcache/internal/hintcache"
	"beyondcache/internal/hints"
	"beyondcache/internal/netmodel"
	"beyondcache/internal/plaxton"
	"beyondcache/internal/push"
	"beyondcache/internal/sim"
	"beyondcache/internal/trace"
)

// benchScale keeps one experiment iteration under a second.
const benchScale = trace.Scale(0.001)

func benchOpts() experiments.Options {
	return experiments.Options{Scale: benchScale}
}

// runExperiment is the shared driver for the per-figure benchmarks.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if res.Render() == "" {
			b.Fatal("empty render")
		}
	}
}

// --- One benchmark per table and figure ------------------------------------

func BenchmarkFigure1(b *testing.B)  { runExperiment(b, "fig1") }
func BenchmarkTable3(b *testing.B)   { runExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)   { runExperiment(b, "table4") }
func BenchmarkFigure2(b *testing.B)  { runExperiment(b, "fig2") }
func BenchmarkFigure3(b *testing.B)  { runExperiment(b, "fig3") }
func BenchmarkFigure5(b *testing.B)  { runExperiment(b, "fig5") }
func BenchmarkFigure6(b *testing.B)  { runExperiment(b, "fig6") }
func BenchmarkTable5(b *testing.B)   { runExperiment(b, "table5") }
func BenchmarkFigure8(b *testing.B)  { runExperiment(b, "fig8") }
func BenchmarkTable6(b *testing.B)   { runExperiment(b, "table6") }
func BenchmarkFigure10(b *testing.B) { runExperiment(b, "fig10") }
func BenchmarkFigure11(b *testing.B) { runExperiment(b, "fig11") }
func BenchmarkFigure4(b *testing.B)  { runExperiment(b, "fig4") }

// Extension experiments (the paper's qualitative arguments, quantified).
func BenchmarkExtICP(b *testing.B)         { runExperiment(b, "icp") }
func BenchmarkExtPlaxton(b *testing.B)     { runExperiment(b, "plaxton") }
func BenchmarkExtConsistency(b *testing.B) { runExperiment(b, "consistency") }
func BenchmarkExtReplacement(b *testing.B) { runExperiment(b, "replacement") }
func BenchmarkExtCrawl(b *testing.B)       { runExperiment(b, "crawl") }
func BenchmarkExtLoad(b *testing.B)        { runExperiment(b, "load") }
func BenchmarkExtDigests(b *testing.B)     { runExperiment(b, "digests") }
func BenchmarkExtAllPolicies(b *testing.B) { runExperiment(b, "allpolicies") }

// --- Prototype microbenchmarks (Section 3.2.1) ------------------------------

// BenchmarkHintLookupMem measures the in-memory hint lookup the paper
// reports at 4.3 microseconds on 1998 hardware.
func BenchmarkHintLookupMem(b *testing.B) {
	c := hintcache.NewMem(1<<20, 4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1<<19; i++ {
		if err := c.Insert(rng.Uint64(), uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
	keys := make([]uint64, 4096)
	rng = rand.New(rand.NewSource(1))
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(keys[i%len(keys)])
	}
}

// BenchmarkHintLookupFile measures the file-backed lookup (one pread per
// set), the paper's 10.8ms disk-fault case modulo four decades of storage
// progress.
func BenchmarkHintLookupFile(b *testing.B) {
	path := filepath.Join(b.TempDir(), "hints.dat")
	fs, err := hintcache.NewFileStore(path, 1<<18, 4)
	if err != nil {
		b.Fatal(err)
	}
	c := hintcache.New(fs)
	defer c.Close()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1<<16; i++ {
		if err := c.Insert(rng.Uint64(), uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
	keys := make([]uint64, 4096)
	rng = rand.New(rand.NewSource(1))
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(keys[i%len(keys)])
	}
}

// BenchmarkHintLookupFronted measures the file-backed store behind the
// Section 3.2.1 front-end cache. On a random-key stream it matches the
// plain file store — empirically confirming the paper's own doubt that
// "any arrangement of a hint cache will yield good memory locality because
// the stream of references to the hint cache exhibits poor locality".
// Update-heavy streams with repeated sets are where the front cache pays.
func BenchmarkHintLookupFronted(b *testing.B) {
	path := filepath.Join(b.TempDir(), "hints.dat")
	fs, err := hintcache.NewFileStore(path, 1<<18, 4)
	if err != nil {
		b.Fatal(err)
	}
	c := hintcache.New(hintcache.NewFrontStore(fs, 1<<14))
	defer c.Close()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1<<16; i++ {
		if err := c.Insert(rng.Uint64(), uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
	keys := make([]uint64, 4096)
	rng = rand.New(rand.NewSource(1))
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(keys[i%len(keys)])
	}
}

// BenchmarkHintInsert measures hint installation (the update-apply path).
func BenchmarkHintInsert(b *testing.B) {
	c := hintcache.NewMem(1<<20, 4)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Insert(rng.Uint64(), uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUpdateCodec measures the 20-byte wire record encode/decode.
func BenchmarkUpdateCodec(b *testing.B) {
	batch := make([]hintcache.Update, 128)
	for i := range batch {
		batch[i] = hintcache.Update{Action: hintcache.ActionInform, URLHash: uint64(i) + 1, Machine: 7}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg := hintcache.EncodeUpdates(batch)
		if _, err := hintcache.DecodeUpdates(msg); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(batch) * hintcache.UpdateSize))
}

// --- Simulator throughput ----------------------------------------------------

// benchRequests pre-generates a workload once.
func benchRequests(b *testing.B) []trace.Request {
	b.Helper()
	p := trace.DECProfile(benchScale)
	reqs, err := trace.ReadAll(trace.MustGenerator(p))
	if err != nil {
		b.Fatal(err)
	}
	return reqs
}

func BenchmarkHierarchyProcess(b *testing.B) {
	reqs := benchRequests(b)
	sys, err := core.NewSystem(core.Config{Policy: core.PolicyHierarchy, Model: netmodel.NewTestbed()})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Process(reqs[i%len(reqs)])
	}
}

func BenchmarkHintsProcess(b *testing.B) {
	reqs := benchRequests(b)
	sys, err := core.NewSystem(core.Config{Policy: core.PolicyHints, Model: netmodel.NewTestbed()})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Process(reqs[i%len(reqs)])
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	p := trace.DECProfile(benchScale)
	g := trace.MustGenerator(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Next(); err != nil {
			g = trace.MustGenerator(p)
		}
	}
}

// --- Ablations of the design choices DESIGN.md calls out --------------------

// BenchmarkAblationHintWays sweeps hint-table associativity, reporting the
// global hit ratio each achieves at a fixed table size. Justifies the
// prototype's 4-way choice.
func BenchmarkAblationHintWays(b *testing.B) {
	p := trace.DECProfile(benchScale)
	entries := hintcache.EntriesForBytes(64 << 10)
	for _, ways := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ways=%d", ways), func(b *testing.B) {
			var hit float64
			for i := 0; i < b.N; i++ {
				h, err := hints.New(hints.Config{
					Model:       netmodel.NewTestbed(),
					HintEntries: entries,
					HintWays:    ways,
					Warmup:      p.Warmup(),
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(trace.MustGenerator(p), h); err != nil {
					b.Fatal(err)
				}
				hit = h.HitRatio()
			}
			b.ReportMetric(hit, "hitratio")
		})
	}
}

// BenchmarkAblationPlaxtonArity sweeps the metadata-tree arity, reporting
// the mean path length updates traverse (wider trees are flatter but each
// parent serves more children).
func BenchmarkAblationPlaxtonArity(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	nodes := make([]plaxton.Node, 64)
	used := map[uint64]bool{}
	for i := range nodes {
		id := rng.Uint64()
		for used[id] {
			id = rng.Uint64()
		}
		used[id] = true
		nodes[i] = plaxton.Node{ID: id}
	}
	dist := func(a, c int) float64 {
		d := a - c
		if d < 0 {
			d = -d
		}
		return float64(d)
	}
	for _, bits := range []uint{1, 2, 4} {
		b.Run(fmt.Sprintf("arity=%d", 1<<bits), func(b *testing.B) {
			nw, err := plaxton.New(nodes, bits, dist)
			if err != nil {
				b.Fatal(err)
			}
			var pathLen float64
			var samples int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				obj := rng.Uint64()
				p := nw.Path(obj, i%len(nodes))
				pathLen += float64(len(p))
				samples++
			}
			b.ReportMetric(pathLen/float64(samples), "pathlen")
		})
	}
}

// BenchmarkAblationSpeculativeEviction compares the repository's
// speculative-second-class eviction (pushes can never displace demand data)
// against plain LRU treatment of pushed copies, reporting the mean response
// time each yields under push-all.
func BenchmarkAblationSpeculativeEviction(b *testing.B) {
	p := trace.DECProfile(benchScale)
	fullCap := int64(5) << 30
	capBytes := int64(float64(fullCap) * float64(benchScale))
	for _, plain := range []bool{false, true} {
		name := "speculative-second-class"
		if plain {
			name = "plain-lru"
		}
		b.Run(name, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				rep := runPushAll(b, p, capBytes, plain)
				mean = float64(rep.MeanResponse.Milliseconds())
			}
			b.ReportMetric(mean, "mean_ms")
		})
	}
}

func runPushAll(b *testing.B, p trace.Profile, capBytes int64, plainLRU bool) core.Report {
	b.Helper()
	sys, err := core.NewSystem(core.Config{
		Policy:       core.PolicyHintsPush,
		PushStrategy: push.HierAll,
		Model:        netmodel.NewRousskovMax(),
		L1Capacity:   capBytes,
		Warmup:       p.Warmup(),
		Seed:         1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if plainLRU {
		sys.Hints().SetEvictDemandFirst(true)
	}
	rep, err := sys.Run(trace.MustGenerator(p))
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// --- Concurrency: lock striping and singleflight ----------------------------

// BenchmarkShardedCacheParallel measures concurrent throughput of the
// lock-striped object cache against the same structure collapsed to a single
// shard (one lock). Run with -cpu to see the scaling curve.
func BenchmarkShardedCacheParallel(b *testing.B) {
	const (
		objects = 4096
		objSize = 512
	)
	body := make([]byte, objSize)
	for _, shards := range []int{1, 0} {
		name := "shards=1"
		if shards == 0 {
			name = "shards=default"
		}
		b.Run(name, func(b *testing.B) {
			s := cache.NewSharded(shards, int64(objects*objSize*2))
			for i := 0; i < objects; i++ {
				s.Put(cache.Object{ID: uint64(i) + 1, Size: objSize, Version: 1}, body)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(1))
				for pb.Next() {
					id := uint64(rng.Intn(objects)) + 1
					if rng.Intn(10) == 0 {
						s.Put(cache.Object{ID: id, Size: objSize, Version: 1}, body)
					} else {
						s.Get(id)
					}
				}
			})
		})
	}
}

// nullResponseWriter is an allocation-free http.ResponseWriter: the
// benchmarks reuse one per goroutine so that measured time is the node's
// fetch path, not recorder allocation and GC sweep.
type nullResponseWriter struct {
	h    http.Header
	code int
}

func (w *nullResponseWriter) Header() http.Header         { return w.h }
func (w *nullResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nullResponseWriter) WriteHeader(code int)        { w.code = code }

// benchNodeFetch drives a node's /fetch handler in-process (no sockets).
// wrap lets the baseline reintroduce a single global mutex around every
// request — the lock-convoy design the refactor removed. Two workloads:
//
//	hits:     prewarmed working set, every request a local hit. Measures the
//	          CPU cost of the probe path; needs real cores to show striping.
//	coldmiss: every request a distinct cold object against an origin with
//	          500us latency. Measures the paper's "do not slow down misses"
//	          property: misses must overlap, not queue behind one lock, so
//	          the convoy shows even on a single-CPU host.
func benchNodeFetch(b *testing.B, mode string, cfg cluster.NodeConfig, wrap func(http.Handler) http.Handler) {
	b.Helper()
	origin := cluster.NewOrigin(1024)
	osrv := httptest.NewServer(origin.Handler())
	defer osrv.Close()
	cfg.OriginURL = osrv.URL
	cfg.UpdateInterval = time.Hour
	cfg.Seed = 1
	n, err := cluster.NewNode(cfg)
	if err != nil {
		b.Fatal(err)
	}
	n.Bind("http://bench.node.invalid:80")
	defer n.Close()

	h := n.Handler()
	if wrap != nil {
		h = wrap(h)
	}
	const objects = 512
	paths := make([]string, objects)
	for i := range paths {
		paths[i] = "/fetch?url=" + neturl.QueryEscape(fmt.Sprintf("http://example.com/bench/%d", i))
	}
	if mode == "hits" {
		for _, p := range paths { // prewarm: every timed request is a local hit
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, p, nil))
			if rec.Code != http.StatusOK {
				b.Fatalf("prewarm status %d", rec.Code)
			}
		}
	} else {
		origin.SetLatency(500 * time.Microsecond)
	}
	var seq atomic.Int64 // distinct cold URL per op across all goroutines
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Per-goroutine pre-built requests and a reusable writer keep the
		// hit loop allocation-free; the handler never mutates the request.
		reqs := make([]*http.Request, objects)
		for i := range reqs {
			reqs[i] = httptest.NewRequest(http.MethodGet, paths[i], nil)
		}
		w := &nullResponseWriter{h: make(http.Header)}
		rng := rand.New(rand.NewSource(1))
		for pb.Next() {
			req := reqs[rng.Intn(objects)]
			if mode == "coldmiss" {
				req = httptest.NewRequest(http.MethodGet, "/fetch?url="+neturl.QueryEscape(
					fmt.Sprintf("http://example.com/cold/%d", seq.Add(1))), nil)
			}
			w.code = 0
			h.ServeHTTP(w, req)
			if w.code != 0 && w.code != http.StatusOK {
				b.Errorf("status %d", w.code)
				return
			}
		}
	})
}

// BenchmarkNodeFetchParallel compares three lockings of the node fetch path
// under the two workloads benchNodeFetch describes:
//
//	global-mutex: every request serialized behind one mutex — the single-lock
//	              baseline, where one lock guards cache, hints, and stats;
//	one-shard:    the new code with striping disabled (one cache shard, one
//	              hint stripe), isolating the win from atomics + singleflight;
//	sharded:      the new code at its defaults.
func BenchmarkNodeFetchParallel(b *testing.B) {
	for _, mode := range []string{"hits", "coldmiss"} {
		b.Run(mode, func(b *testing.B) {
			b.Run("global-mutex", func(b *testing.B) {
				var mu sync.Mutex
				benchNodeFetch(b, mode, cluster.NodeConfig{Name: "bench"},
					func(h http.Handler) http.Handler {
						return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
							mu.Lock()
							defer mu.Unlock()
							h.ServeHTTP(w, r)
						})
					})
			})
			b.Run("one-shard", func(b *testing.B) {
				benchNodeFetch(b, mode, cluster.NodeConfig{Name: "bench", CacheShards: 1, HintStripes: 1}, nil)
			})
			b.Run("sharded", func(b *testing.B) {
				benchNodeFetch(b, mode, cluster.NodeConfig{Name: "bench"}, nil)
			})
		})
	}
}

// BenchmarkNodeFetchSpans measures what structured-span recording costs the
// prewarmed hit path at the three sampling settings: recording disabled
// (TraceSample < 0), the 1/64 default, and every request sampled. The
// guard this backs (BENCH_obs.json): an unsampled request must record
// nothing and allocate nothing — off and default must stay within noise of
// the BenchmarkNodeFetchParallel/hits/sharded baseline — and even
// sample=all must stay within a few percent of it.
func BenchmarkNodeFetchSpans(b *testing.B) {
	for _, c := range []struct {
		name   string
		sample float64
	}{
		{"sample=off", -1},
		{"sample=default", 0},
		{"sample=all", 1},
	} {
		b.Run(c.name, func(b *testing.B) {
			benchNodeFetch(b, "hits", cluster.NodeConfig{Name: "bench", TraceSample: c.sample}, nil)
		})
	}
}

// BenchmarkAblationDirectoryVsHints reports the speedup of local hint
// caches over a centralized directory (the design's core bet: metadata
// lookups must not cost a network round trip).
func BenchmarkAblationDirectoryVsHints(b *testing.B) {
	p := trace.DECProfile(benchScale)
	run := func(policy core.Policy) core.Report {
		sys, err := core.NewSystem(core.Config{
			Policy: policy,
			Model:  netmodel.NewTestbed(),
			Warmup: p.Warmup(),
		})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := sys.Run(trace.MustGenerator(p))
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		dir := run(core.PolicyDirectory)
		hint := run(core.PolicyHints)
		speedup = core.Speedup(dir, hint)
	}
	b.ReportMetric(speedup, "speedup")
}
