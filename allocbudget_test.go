// The hit-path allocation budget, as a test instead of a human reading
// benchmark output: the prewarmed local-hit path must stay within the
// baseline BENCH_obs.json records (9 allocs/op, ~181 B/op) — and it must
// stay there with a persistent disk tier configured, since the disk probe
// belongs to the miss path only.
package beyondcache_test

import (
	"encoding/json"
	"os"
	"testing"

	"beyondcache/internal/cluster"
)

// obsBaseline is the slice of BENCH_obs.json this guard reads: the recorded
// hit-path cost that later work must not regress.
type obsBaseline struct {
	Baseline struct {
		BytesPerOp  int64 `json:"bytes_per_op"`
		AllocsPerOp int64 `json:"allocs_per_op"`
	} `json:"baseline"`
}

// TestHitPathAllocBudget re-measures the prewarmed hit path (the same
// harness as BenchmarkNodeFetchParallel/hits) against the BENCH_obs.json
// baseline, on a memory-only node and on one carrying a disk tier. Allocs
// are exact; bytes get 25% headroom for size-class noise.
func TestHitPathAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("skipping benchmark-backed guard in short mode")
	}
	data, err := os.ReadFile("BENCH_obs.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc obsBaseline
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Baseline.AllocsPerOp <= 0 || doc.Baseline.BytesPerOp <= 0 {
		t.Fatalf("BENCH_obs.json baseline is empty: %+v", doc.Baseline)
	}

	for _, c := range []struct {
		name string
		cfg  cluster.NodeConfig
	}{
		{"memory-only", cluster.NodeConfig{Name: "bench"}},
		{"disk-tier", cluster.NodeConfig{Name: "bench", CacheDir: t.TempDir()}},
	} {
		t.Run(c.name, func(t *testing.T) {
			res := testing.Benchmark(func(b *testing.B) {
				benchNodeFetch(b, "hits", c.cfg, nil)
			})
			allocs, bytes := res.AllocsPerOp(), res.AllocedBytesPerOp()
			t.Logf("hit path: %d allocs/op, %d B/op (budget %d allocs, %d B)",
				allocs, bytes, doc.Baseline.AllocsPerOp, doc.Baseline.BytesPerOp)
			if allocs > doc.Baseline.AllocsPerOp {
				t.Errorf("hit path allocates %d/op, budget is %d/op", allocs, doc.Baseline.AllocsPerOp)
			}
			if limit := doc.Baseline.BytesPerOp * 5 / 4; bytes > limit {
				t.Errorf("hit path allocates %d B/op, budget is %d B/op (+25%%)", bytes, limit)
			}
		})
	}
}
