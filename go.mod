module beyondcache

go 1.22
