package overlay

import (
	"fmt"
	"math/rand"
	"testing"
)

func newOverlay(t *testing.T, replicas int) *Overlay {
	t.Helper()
	o, err := New(4, replicas)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func join(t *testing.T, o *Overlay, ids ...uint64) {
	t.Helper()
	for _, id := range ids {
		o.Join(id, fmt.Sprintf("http://127.0.0.1:%d", 10000+id%50000))
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 2); err == nil {
		t.Fatal("bits 0 accepted")
	}
	if _, err := New(4, 0); err == nil {
		t.Fatal("replicas 0 accepted")
	}
	if _, err := New(4, MaxReplicas+1); err == nil {
		t.Fatal("oversized replicas accepted")
	}
}

func TestEmptyViewIsTotal(t *testing.T) {
	o := newOverlay(t, 2)
	v := o.View()
	if v.Size() != 0 || v.Version() != 0 {
		t.Fatalf("empty view: size=%d version=%d", v.Size(), v.Version())
	}
	var buf [MaxReplicas]uint64
	if owners := v.Owners(12345, buf[:0]); len(owners) != 0 {
		t.Fatalf("empty view produced owners %v", owners)
	}
	if v.IsOwner(1, 2) || v.Contains(3) {
		t.Fatal("empty view claims membership")
	}
}

func TestOwnersSizeAndLiveness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	o := newOverlay(t, 3)
	live := map[uint64]bool{}
	for i := 0; i < 12; i++ {
		id := rng.Uint64()
		join(t, o, id)
		live[id] = true
	}
	v := o.View()
	if v.Size() != 12 {
		t.Fatalf("size %d, want 12", v.Size())
	}
	var buf [MaxReplicas]uint64
	for i := 0; i < 200; i++ {
		obj := rng.Uint64()
		owners := v.Owners(obj, buf[:0])
		if len(owners) != 3 {
			t.Fatalf("object %#x: %d owners, want 3", obj, len(owners))
		}
		seen := map[uint64]bool{}
		for _, m := range owners {
			if !live[m] {
				t.Fatalf("object %#x: dead owner %#x", obj, m)
			}
			if seen[m] {
				t.Fatalf("object %#x: duplicate owner %#x", obj, m)
			}
			seen[m] = true
			if !v.IsOwner(obj, m) {
				t.Fatalf("IsOwner disagrees with Owners for %#x/%#x", obj, m)
			}
		}
	}
}

func TestOwnersClampToMembership(t *testing.T) {
	o := newOverlay(t, 4)
	join(t, o, 11, 22)
	var buf [MaxReplicas]uint64
	owners := o.View().Owners(999, buf[:0])
	if len(owners) != 2 {
		t.Fatalf("%d owners from a 2-member overlay at R=4, want 2", len(owners))
	}
}

func TestJoinLeaveVersioning(t *testing.T) {
	o := newOverlay(t, 2)
	if !o.Join(7, "http://a") {
		t.Fatal("first join reported no change")
	}
	v1 := o.View()
	if o.Join(7, "http://a") {
		t.Fatal("idempotent join reported change")
	}
	if o.View().Version() != v1.Version() {
		t.Fatal("no-op join bumped version")
	}
	if o.Join(0, "http://zero") {
		t.Fatal("zero ID joined")
	}
	if !o.Join(7, "http://b") {
		t.Fatal("address change reported no change")
	}
	if !o.Leave(7) {
		t.Fatal("leave of member reported no change")
	}
	if o.Leave(7) {
		t.Fatal("leave of non-member reported change")
	}
	if o.View().Size() != 0 {
		t.Fatal("members remain after final leave")
	}
}

// TestChurnMovesBoundedShare is the partitioning claim end to end: one
// node leaving a 16-member overlay moves only the share of objects the
// dead node owned (≈ R/N), and every surviving owner assignment stays on
// live members.
func TestChurnMovesBoundedShare(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	o := newOverlay(t, 2)
	ids := make([]uint64, 16)
	for i := range ids {
		ids[i] = rng.Uint64()
		join(t, o, ids[i])
	}
	before := o.View()
	victim := ids[5]
	o.Leave(victim)
	after := o.View()

	objects := make([]uint64, 2000)
	for i := range objects {
		objects[i] = rng.Uint64()
	}
	moved := 0
	for _, obj := range objects {
		if !SameOwners(before, after, obj) {
			moved++
		}
		if after.IsOwner(obj, victim) {
			t.Fatalf("dead node %#x still owns object %#x", victim, obj)
		}
	}
	// The victim owned ~R/N = 2/16 of the ring positions; surrogate
	// reshuffling can move a few more. A kill must never re-home most of
	// the directory.
	if frac := float64(moved) / float64(len(objects)); frac > 0.5 {
		t.Fatalf("one leave moved %.1f%% of objects", 100*frac)
	}
	if moved == 0 {
		t.Fatal("leave moved nothing — victim owned no objects?")
	}
	if ch, total := Diff(before, after); total == 0 || ch == 0 {
		t.Fatalf("Diff(before, after) = (%d, %d), want nonzero churn", ch, total)
	}
	// No membership change → identical views → zero diff gate holds.
	if ch, total := Diff(after, o.View()); ch != 0 || total == 0 {
		t.Fatalf("Diff of identical views = (%d, %d)", ch, total)
	}
}

func TestViewsAgreeAcrossBuildOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ids := make([]uint64, 10)
	for i := range ids {
		ids[i] = rng.Uint64()
	}
	a := newOverlay(t, 2)
	b := newOverlay(t, 2)
	join(t, a, ids...)
	for i := len(ids) - 1; i >= 0; i-- {
		join(t, b, ids[i])
	}
	// Different join orders (and hence different incremental Add chains)
	// must yield the same owner assignment — that is what lets every node
	// derive routing locally.
	var abuf, bbuf [MaxReplicas]uint64
	for i := 0; i < 500; i++ {
		obj := rng.Uint64()
		ao := a.View().Owners(obj, abuf[:0])
		bo := b.View().Owners(obj, bbuf[:0])
		if len(ao) != len(bo) {
			t.Fatalf("owner counts differ for %#x: %v vs %v", obj, ao, bo)
		}
		for k := range ao {
			if ao[k] != bo[k] {
				t.Fatalf("owner sets differ for %#x: %v vs %v", obj, ao, bo)
			}
		}
	}
}
