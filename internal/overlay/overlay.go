// Package overlay maintains the cluster's live hint-routing plane: the
// set of nodes currently believed alive, the Plaxton embedding derived
// from their hashed addresses (internal/plaxton), and the owner set every
// object ID routes to. The partitioned hint directory (DESIGN.md §14)
// stores each object's hint records only at its owners — the object's
// Plaxton root plus R-1 successors on the sorted machine-ID ring — so
// per-node directory memory and update fanout are O(R/N) of the broadcast
// design's.
//
// Membership mutates through Overlay (Join/Leave); routing reads go
// through the immutable View it publishes, so lookups on the miss path
// never take the membership lock.
package overlay

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"beyondcache/internal/plaxton"
)

// MaxReplicas bounds the owner-set size R so owner lookups can use
// fixed-size stack scratch.
const MaxReplicas = 8

// Member is one live node: its machine ID (hintcache.HashMachine of the
// listen address) and base URL.
type Member struct {
	ID   uint64
	Addr string
}

// View is an immutable snapshot of the routing plane at one membership
// version. All methods are safe for concurrent use and never block.
type View struct {
	nw       *plaxton.Network
	sorted   []uint64 // live machine IDs, ascending — the replica ring
	replicas int
	version  uint64
}

// Version returns the membership generation this view was built from.
// Versions increase with every membership change; equal versions mean an
// identical view.
func (v *View) Version() uint64 { return v.version }

// Size returns the live-member count.
func (v *View) Size() int { return len(v.sorted) }

// Members returns the live machine IDs, ascending.
func (v *View) Members() []uint64 { return append([]uint64(nil), v.sorted...) }

// Network exposes the underlying embedding for churn accounting
// (plaxton.TableDiff); nil for an empty view.
func (v *View) Network() *plaxton.Network { return v.nw }

// Contains reports whether id is a live member.
func (v *View) Contains(id uint64) bool {
	i := sort.Search(len(v.sorted), func(i int) bool { return v.sorted[i] >= id })
	return i < len(v.sorted) && v.sorted[i] == id
}

// Owners appends object's owner set onto dst and returns it: the object's
// Plaxton root first, then its successors on the sorted-ID ring, R members
// total (fewer when the membership is smaller than R). Empty for an empty
// view. dst lets callers reuse stack scratch ([MaxReplicas]uint64).
func (v *View) Owners(object uint64, dst []uint64) []uint64 {
	dst = dst[:0]
	if v == nil || v.nw == nil {
		return dst
	}
	rootID := v.nw.Node(v.nw.Root(object)).ID
	p := sort.Search(len(v.sorted), func(i int) bool { return v.sorted[i] >= rootID })
	if p == len(v.sorted) {
		p = 0
	}
	r := v.replicas
	if r > len(v.sorted) {
		r = len(v.sorted)
	}
	for k := 0; k < r; k++ {
		dst = append(dst, v.sorted[(p+k)%len(v.sorted)])
	}
	return dst
}

// IsOwner reports whether member is in object's owner set.
func (v *View) IsOwner(object, member uint64) bool {
	var buf [MaxReplicas]uint64
	for _, m := range v.Owners(object, buf[:0]) {
		if m == member {
			return true
		}
	}
	return false
}

// SameOwners reports whether object's owner set is identical in a and b —
// the re-homing predicate: an object whose owners did not move needs no
// re-announcement.
func SameOwners(a, b *View, object uint64) bool {
	var ab, bb [MaxReplicas]uint64
	ao := a.Owners(object, ab[:0])
	bo := b.Owners(object, bb[:0])
	if len(ao) != len(bo) {
		return false
	}
	for i := range ao {
		if ao[i] != bo[i] {
			return false
		}
	}
	return true
}

// Diff counts routing-table entries that changed between two views'
// embeddings over their shared nodes; (0, 0) when either view is empty.
// A zero changed count with a nonzero total proves no owner set moved, so
// re-homing can be skipped outright.
func Diff(a, b *View) (changed, total int) {
	if a == nil || b == nil || a.nw == nil || b.nw == nil {
		return 0, 0
	}
	return plaxton.TableDiff(a.nw, b.nw)
}

// Overlay derives routing views from membership events. Join and Leave
// serialize on an internal lock; View is a lock-free atomic load.
type Overlay struct {
	bits     uint
	replicas int

	mu      sync.Mutex
	members map[uint64]string // machine ID -> base URL, alive only
	version uint64
	view    atomic.Pointer[View]
}

// New builds an empty overlay. bits is the Plaxton digit width; replicas
// is the owner-set size R, in [1, MaxReplicas].
func New(bits uint, replicas int) (*Overlay, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("overlay: bits must be in [1,16], got %d", bits)
	}
	if replicas < 1 || replicas > MaxReplicas {
		return nil, fmt.Errorf("overlay: replicas must be in [1,%d], got %d", MaxReplicas, replicas)
	}
	o := &Overlay{bits: bits, replicas: replicas, members: make(map[uint64]string)}
	o.view.Store(&View{replicas: replicas})
	return o, nil
}

// View returns the current routing view.
func (o *Overlay) View() *View { return o.view.Load() }

// Join adds (or re-adds) a live member, reporting whether membership
// changed. A zero ID is ignored (zero is hintcache's reserved non-ID).
func (o *Overlay) Join(id uint64, addr string) bool {
	if id == 0 {
		return false
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if cur, known := o.members[id]; known && cur == addr {
		return false
	}
	o.members[id] = addr
	o.rebuildLocked(plaxton.Node{ID: id, Addr: addr}, 0)
	return true
}

// Leave removes a member, reporting whether it was present.
func (o *Overlay) Leave(id uint64) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, known := o.members[id]; !known {
		return false
	}
	delete(o.members, id)
	o.rebuildLocked(plaxton.Node{}, id)
	return true
}

// rebuildLocked publishes a new view after a membership change, riding the
// embedding's incremental Add/Remove path when possible and falling back
// to a full rebuild (first member, re-join under a new address).
func (o *Overlay) rebuildLocked(join plaxton.Node, leave uint64) {
	o.version++
	v := &View{replicas: o.replicas, version: o.version}
	defer o.view.Store(v)
	if len(o.members) == 0 {
		return
	}

	var nw *plaxton.Network
	var err error
	if prev := o.view.Load().nw; prev != nil {
		switch {
		case join.ID != 0:
			if _, exists := prev.Index(join.ID); !exists {
				nw, err = prev.AddNode(join)
			}
		case leave != 0:
			nw, err = prev.RemoveNodeID(leave)
		}
	}
	if nw == nil || err != nil {
		nodes := make([]plaxton.Node, 0, len(o.members))
		for id, addr := range o.members {
			nodes = append(nodes, plaxton.Node{ID: id, Addr: addr})
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
		// Cannot fail: IDs are map keys (unique, nonzero) and bits was
		// validated in New.
		nw, _ = plaxton.NewHashed(nodes, o.bits)
	}
	v.nw = nw
	v.sorted = make([]uint64, 0, len(o.members))
	for id := range o.members {
		v.sorted = append(v.sorted, id)
	}
	sort.Slice(v.sorted, func(i, j int) bool { return v.sorted[i] < v.sorted[j] })
}
