package cache

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestDenseMatchesMapIndex drives a map-indexed and a dense-indexed LRU
// through the same randomized operation sequence and requires identical
// observable behavior at every step: the index structure must be purely an
// implementation detail.
func TestDenseMatchesMapIndex(t *testing.T) {
	const (
		capacity = 64 << 10
		idSpace  = 512
		ops      = 20000
	)
	m := NewLRU(capacity)
	d := NewDenseLRU(capacity)
	var mEv, dEv []uint64
	m.OnEvict(func(o Object) { mEv = append(mEv, o.ID) })
	d.OnEvict(func(o Object) { dEv = append(dEv, o.ID) })

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < ops; i++ {
		id := uint64(rng.Intn(idSpace))
		obj := Object{ID: id, Size: int64(rng.Intn(4096) + 1), Version: int64(rng.Intn(3))}
		switch rng.Intn(8) {
		case 0, 1, 2:
			if got, want := d.Put(obj), m.Put(obj); got != want {
				t.Fatalf("op %d: Put(%d) = %v, map says %v", i, id, want, got)
			}
		case 3:
			if got, want := d.PutSpeculative(obj), m.PutSpeculative(obj); got != want {
				t.Fatalf("op %d: PutSpeculative(%d) mismatch", i, id)
			}
		case 4:
			go1, ok1 := m.Get(id)
			go2, ok2 := d.Get(id)
			if ok1 != ok2 || go1 != go2 {
				t.Fatalf("op %d: Get(%d) = %v,%v vs %v,%v", i, id, go2, ok2, go1, ok1)
			}
		case 5:
			v := int64(rng.Intn(3))
			go1, ok1 := m.GetVersion(id, v)
			go2, ok2 := d.GetVersion(id, v)
			if ok1 != ok2 || go1 != go2 {
				t.Fatalf("op %d: GetVersion(%d,%d) mismatch", i, id, v)
			}
		case 6:
			if got, want := d.Remove(id), m.Remove(id); got != want {
				t.Fatalf("op %d: Remove(%d) = %v, map says %v", i, id, got, want)
			}
		case 7:
			m.Age(id)
			d.Age(id)
		}
		if m.Used() != d.Used() || m.Len() != d.Len() {
			t.Fatalf("op %d: used/len diverged: map %d/%d dense %d/%d",
				i, m.Used(), m.Len(), d.Used(), d.Len())
		}
	}
	if !reflect.DeepEqual(m.Objects(), d.Objects()) {
		t.Fatal("final Objects() snapshots differ")
	}
	if !reflect.DeepEqual(mEv, dEv) {
		t.Fatalf("eviction sequences differ: map %d events, dense %d", len(mEv), len(dEv))
	}
	if m.Evictions() != d.Evictions() || m.Inserts() != d.Inserts() {
		t.Fatalf("counters differ: evictions %d/%d inserts %d/%d",
			m.Evictions(), d.Evictions(), m.Inserts(), d.Inserts())
	}
}

// TestDenseIDBoundaries exercises correctness at the flat table's growth
// boundaries and across the overflow threshold: IDs at or above
// maxDenseSlots must spill to the overflow map rather than allocate the
// whole ID space below them.
func TestDenseIDBoundaries(t *testing.T) {
	c := NewDenseLRU(0)
	ids := []uint64{0, 1023, 1024, 1025, 10240,
		maxDenseSlots - 1, maxDenseSlots, maxDenseSlots + 1, 1 << 30}
	for _, id := range ids {
		if !c.Put(Object{ID: id, Size: 1}) {
			t.Fatalf("Put(%d) failed", id)
		}
	}
	for _, id := range ids {
		if _, ok := c.Peek(id); !ok {
			t.Fatalf("Peek(%d) missed", id)
		}
	}
	if c.Len() != len(ids) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(ids))
	}
	for _, id := range ids {
		if !c.Remove(id) {
			t.Fatalf("Remove(%d) failed", id)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after removing all", c.Len())
	}
}

// TestEntryRecycling asserts removed entries are reused rather than
// reallocated (the slab-backed freelist that caps simulation allocation
// rate): a removed entry goes to the head of the freelist and the next
// insert pops it.
func TestEntryRecycling(t *testing.T) {
	c := NewDenseLRU(0)
	c.Put(Object{ID: 1, Size: 10})
	c.Remove(1)
	if c.free == nil {
		t.Fatal("removed entry not on freelist")
	}
	recycled := c.free
	rest := recycled.next
	c.Put(Object{ID: 2, Size: 20})
	if c.lookup(2) != recycled {
		t.Fatal("insert did not reuse the recycled entry")
	}
	if c.free != rest {
		t.Fatal("freelist head should advance past the reused entry")
	}
}
