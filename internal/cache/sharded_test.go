package cache

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestShardedRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {17, 32},
	} {
		if got := NewSharded(tc.in, 0).Shards(); got != tc.want {
			t.Errorf("NewSharded(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
	if got := NewSharded(0, 0).Shards(); got < 8 {
		t.Errorf("default shard count = %d, want >= 8", got)
	}
}

func TestShardedPutGetRemove(t *testing.T) {
	s := NewSharded(4, 0)
	body := []byte("hello")
	if !s.Put(Object{ID: 1, Size: 5, Version: 1}, body) {
		t.Fatal("Put rejected")
	}
	obj, got, ok := s.Get(1)
	if !ok || obj.Version != 1 || string(got) != "hello" {
		t.Fatalf("Get = %+v %q %v", obj, got, ok)
	}
	if !s.Contains(1) || s.Len() != 1 || s.Used() != 5 {
		t.Errorf("Contains/Len/Used = %v/%d/%d", s.Contains(1), s.Len(), s.Used())
	}
	if !s.Remove(1) {
		t.Fatal("Remove missed")
	}
	if _, _, ok := s.Get(1); ok {
		t.Error("object survives Remove")
	}
	if s.Remove(1) {
		t.Error("second Remove reported success")
	}
}

func TestShardedPutNewerRefusesDowngrade(t *testing.T) {
	s := NewSharded(4, 0)
	s.Put(Object{ID: 7, Size: 2, Version: 3}, []byte("v3"))
	if !s.PutNewer(Object{ID: 7, Size: 2, Version: 1}, []byte("v1")) {
		t.Fatal("PutNewer returned false despite a newer cached copy")
	}
	obj, body, _ := s.Get(7)
	if obj.Version != 3 || string(body) != "v3" {
		t.Errorf("downgrade clobbered newer copy: %+v %q", obj, body)
	}
	if !s.PutNewer(Object{ID: 7, Size: 2, Version: 5}, []byte("v5")) {
		t.Fatal("PutNewer rejected upgrade")
	}
	obj, body, _ = s.Get(7)
	if obj.Version != 5 || string(body) != "v5" {
		t.Errorf("upgrade not applied: %+v %q", obj, body)
	}
}

func TestShardedEvictionDropsBodyAndFiresCallback(t *testing.T) {
	// One shard so capacity pressure is deterministic.
	s := NewSharded(1, 10)
	var evicted []uint64
	var bodies []string
	s.OnEvict(func(o Object, body []byte) {
		evicted = append(evicted, o.ID)
		bodies = append(bodies, string(body))
	})
	s.Put(Object{ID: 1, Size: 6, Version: 1}, []byte("aaaaaa"))
	s.Put(Object{ID: 2, Size: 6, Version: 1}, []byte("bbbbbb"))
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("evicted = %v, want [1]", evicted)
	}
	if bodies[0] != "aaaaaa" {
		t.Errorf("evicted body = %q, want the object's body", bodies[0])
	}
	if _, _, ok := s.Get(1); ok {
		t.Error("evicted object still served")
	}
	st := s.Stats()
	if st.Inserts != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestShardedEvictionCallbackRunsOutsideShardLock pins the write-behind
// contract: the eviction callback fires with no shard lock held, so it may
// block (a spill-queue enqueue) or call back into the cache. Before the
// fix this deadlocked — sync.Mutex is not reentrant — because the callback
// ran inside the evicting shard's critical section.
func TestShardedEvictionCallbackRunsOutsideShardLock(t *testing.T) {
	s := NewSharded(1, 10)
	reentered := 0
	s.OnEvict(func(o Object, body []byte) {
		// Call back into the evicted object's own shard (1 shard = the
		// same lock the eviction was triggered under).
		if s.Contains(o.ID) {
			t.Errorf("evicted object %d still present during callback", o.ID)
		}
		s.Peek(o.ID)
		reentered++
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Put(Object{ID: 1, Size: 6, Version: 1}, []byte("aaaaaa"))
		s.Put(Object{ID: 2, Size: 6, Version: 1}, []byte("bbbbbb")) // evicts 1
		s.Remove(2)                                                 // explicit removal fires too
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("eviction callback deadlocked: still running under the shard lock")
	}
	if reentered != 2 {
		t.Errorf("callback fired %d times, want 2", reentered)
	}
}

// TestShardedDiscardSkipsCallback pins the purge seam: Discard removes the
// object and its body without firing the eviction callback.
func TestShardedDiscardSkipsCallback(t *testing.T) {
	s := NewSharded(4, 0)
	fired := false
	s.OnEvict(func(Object, []byte) { fired = true })
	s.Put(Object{ID: 9, Size: 3, Version: 1}, []byte("xyz"))
	if !s.Discard(9) {
		t.Fatal("Discard missed a present object")
	}
	if fired {
		t.Error("Discard fired the eviction callback")
	}
	if s.Contains(9) {
		t.Error("object survives Discard")
	}
	if s.Discard(9) {
		t.Error("second Discard reported success")
	}
}

func TestShardedCapacitySplitsAcrossShards(t *testing.T) {
	s := NewSharded(4, 4096)
	if got := s.Capacity(); got != 4096 {
		t.Errorf("Capacity = %d, want 4096", got)
	}
	if got := NewSharded(4, 0).Capacity(); got != 0 {
		t.Errorf("unbounded Capacity = %d, want 0", got)
	}
}

func TestShardedObjectsSnapshot(t *testing.T) {
	s := NewSharded(8, 0)
	for i := uint64(1); i <= 20; i++ {
		s.Put(Object{ID: i, Size: 1, Version: 1}, nil)
	}
	objs := s.Objects()
	if len(objs) != 20 {
		t.Fatalf("snapshot has %d objects, want 20", len(objs))
	}
	seen := map[uint64]bool{}
	for _, o := range objs {
		seen[o.ID] = true
	}
	for i := uint64(1); i <= 20; i++ {
		if !seen[i] {
			t.Errorf("object %d missing from snapshot", i)
		}
	}
}

// TestShardedConcurrentMixedOps is the -race workout: readers, writers, and
// removers hammering overlapping IDs.
func TestShardedConcurrentMixedOps(t *testing.T) {
	s := NewSharded(8, 1<<20)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := uint64(i % 64)
				switch (w + i) % 3 {
				case 0:
					s.Put(Object{ID: id, Size: 100, Version: int64(i)}, []byte(fmt.Sprintf("b%d", i)))
				case 1:
					if obj, body, ok := s.Get(id); ok && body == nil && obj.Size != 0 {
						t.Errorf("object %d served without body", id)
					}
				case 2:
					s.Remove(id)
				}
			}
		}(w)
	}
	wg.Wait()
	// Counters and byte accounting stay coherent.
	if s.Used() < 0 {
		t.Errorf("negative Used: %d", s.Used())
	}
	if s.Len() > 64 {
		t.Errorf("Len = %d, want <= 64", s.Len())
	}
}
