package cache

import (
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	c := NewLRU(100)
	c.Put(Object{ID: 1, Size: 10, Version: 1})
	got, ok := c.Get(1)
	if !ok || got.Size != 10 || got.Version != 1 {
		t.Fatalf("Get(1) = %+v, %v", got, ok)
	}
	if _, ok := c.Get(2); ok {
		t.Error("Get(2) hit on empty slot")
	}
	if c.Used() != 10 || c.Len() != 1 {
		t.Errorf("used=%d len=%d, want 10, 1", c.Used(), c.Len())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRU(30)
	c.Put(Object{ID: 1, Size: 10})
	c.Put(Object{ID: 2, Size: 10})
	c.Put(Object{ID: 3, Size: 10})
	// Touch 1 so 2 becomes LRU.
	c.Get(1)
	c.Put(Object{ID: 4, Size: 10})
	if c.Contains(2) {
		t.Error("object 2 should have been evicted (LRU)")
	}
	for _, id := range []uint64{1, 3, 4} {
		if !c.Contains(id) {
			t.Errorf("object %d unexpectedly evicted", id)
		}
	}
}

func TestEvictionCallback(t *testing.T) {
	c := NewLRU(20)
	var evicted []uint64
	c.OnEvict(func(o Object) { evicted = append(evicted, o.ID) })
	c.Put(Object{ID: 1, Size: 10})
	c.Put(Object{ID: 2, Size: 10})
	c.Put(Object{ID: 3, Size: 10}) // evicts 1
	c.Remove(2)                    // explicit
	if len(evicted) != 2 || evicted[0] != 1 || evicted[1] != 2 {
		t.Errorf("evicted = %v, want [1 2]", evicted)
	}
	if c.Evictions() != 2 {
		t.Errorf("Evictions() = %d, want 2", c.Evictions())
	}
}

func TestOversizedObjectRejected(t *testing.T) {
	c := NewLRU(10)
	if c.Put(Object{ID: 1, Size: 11}) {
		t.Error("oversized Put reported success")
	}
	if c.Contains(1) || c.Used() != 0 {
		t.Error("oversized object was cached")
	}
}

func TestRefreshSameIDAdjustsBytes(t *testing.T) {
	c := NewLRU(100)
	c.Put(Object{ID: 1, Size: 10, Version: 1})
	c.Put(Object{ID: 1, Size: 40, Version: 2})
	if c.Used() != 40 || c.Len() != 1 {
		t.Errorf("used=%d len=%d, want 40, 1", c.Used(), c.Len())
	}
	got, _ := c.Get(1)
	if got.Version != 2 {
		t.Errorf("version = %d, want 2", got.Version)
	}
}

func TestGetVersionInvalidatesStale(t *testing.T) {
	c := NewLRU(100)
	c.Put(Object{ID: 1, Size: 10, Version: 1})
	if _, ok := c.GetVersion(1, 2); ok {
		t.Error("stale version served")
	}
	if c.Contains(1) {
		t.Error("stale copy not invalidated")
	}
	c.Put(Object{ID: 2, Size: 10, Version: 5})
	if _, ok := c.GetVersion(2, 5); !ok {
		t.Error("current version missed")
	}
	if _, ok := c.GetVersion(2, 4); !ok {
		t.Error("newer-than-requested version missed")
	}
}

func TestInfiniteCapacity(t *testing.T) {
	c := NewLRU(0)
	for i := uint64(0); i < 1000; i++ {
		c.Put(Object{ID: i, Size: 1 << 20})
	}
	if c.Len() != 1000 {
		t.Errorf("len = %d, want 1000 (no eviction when unbounded)", c.Len())
	}
	if c.Evictions() != 0 {
		t.Errorf("evictions = %d, want 0", c.Evictions())
	}
}

func TestPinnedObjectsFreeAndUnevictable(t *testing.T) {
	c := NewLRU(20)
	c.PutPinned(Object{ID: 100, Size: 1 << 30})
	if c.Used() != 0 {
		t.Errorf("pinned object charged %d bytes", c.Used())
	}
	c.Put(Object{ID: 1, Size: 10})
	c.Put(Object{ID: 2, Size: 10})
	c.Put(Object{ID: 3, Size: 10}) // evicts 1, never 100
	if !c.Contains(100) {
		t.Error("pinned object evicted")
	}
	if c.Contains(1) {
		t.Error("LRU unpinned object survived")
	}
}

func TestAgeDemotes(t *testing.T) {
	c := NewLRU(30)
	c.Put(Object{ID: 1, Size: 10})
	c.Put(Object{ID: 2, Size: 10})
	c.Put(Object{ID: 3, Size: 10})
	// 1 is currently LRU; age 3 so it becomes the eviction victim instead.
	c.Age(3)
	c.Put(Object{ID: 4, Size: 10})
	if c.Contains(3) {
		t.Error("aged object survived eviction")
	}
	if !c.Contains(1) {
		t.Error("object 1 evicted despite aging of 3")
	}
	// Aging a missing ID must be a no-op.
	c.Age(999)
}

func TestRemoveQuietNoCallback(t *testing.T) {
	c := NewLRU(100)
	fired := false
	c.OnEvict(func(Object) { fired = true })
	c.Put(Object{ID: 1, Size: 10})
	if !c.RemoveQuiet(1) {
		t.Fatal("RemoveQuiet missed present object")
	}
	if fired {
		t.Error("RemoveQuiet fired the eviction callback")
	}
	if c.RemoveQuiet(1) {
		t.Error("RemoveQuiet hit on absent object")
	}
}

func TestObjectsMRUOrder(t *testing.T) {
	c := NewLRU(0)
	c.Put(Object{ID: 1, Size: 1})
	c.Put(Object{ID: 2, Size: 1})
	c.Put(Object{ID: 3, Size: 1})
	c.Get(1)
	objs := c.Objects()
	want := []uint64{1, 3, 2}
	if len(objs) != 3 {
		t.Fatalf("len = %d, want 3", len(objs))
	}
	for i, w := range want {
		if objs[i].ID != w {
			t.Errorf("objs[%d].ID = %d, want %d", i, objs[i].ID, w)
		}
	}
}

func TestPeekDoesNotPromote(t *testing.T) {
	c := NewLRU(20)
	c.Put(Object{ID: 1, Size: 10})
	c.Put(Object{ID: 2, Size: 10})
	c.Peek(1) // must NOT promote 1
	c.Put(Object{ID: 3, Size: 10})
	if c.Contains(1) {
		t.Error("Peek promoted object 1")
	}
}

// TestCapacityInvariantQuick drives random operations and checks the core
// invariants: used <= capacity (when bounded), used equals the sum of
// unpinned sizes, and the index matches the list.
func TestCapacityInvariantQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		const capBytes = 500
		c := NewLRU(capBytes)
		for _, op := range ops {
			id := uint64(op % 50)
			size := int64(op%97) + 1
			switch op % 4 {
			case 0, 1:
				c.Put(Object{ID: id, Size: size})
			case 2:
				c.Get(id)
			case 3:
				c.Remove(id)
			}
			if c.Used() > capBytes {
				return false
			}
			var sum int64
			n := 0
			for _, o := range c.Objects() {
				sum += o.Size
				n++
			}
			if sum != c.Used() || n != c.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
