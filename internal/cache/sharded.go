package cache

import (
	"runtime"
	"sync"
)

// Sharded is a lock-striped concurrent object cache: N independent LRU
// shards, each guarded by its own mutex and holding an equal slice of the
// total byte budget. Object IDs are hashed to shards, so concurrent requests
// for unrelated objects proceed without contention — the concurrency layer
// the networked prototype needs while the single-threaded LRU stays as-is
// for the simulators.
//
// Unlike LRU, Sharded also stores each object's body alongside its metadata
// so that a lookup returns both under one shard lock (the networked node
// must never serve an object's metadata with another version's bytes). A
// nil body is allowed for callers that only track metadata.
//
// Because the byte budget is partitioned, an object larger than one shard's
// slice (capacity/shards) is not cacheable even if the whole cache could
// hold it; with realistic shard counts and web-object sizes this is the
// standard sharded-cache trade-off.
type Sharded struct {
	shards []cacheShard
	mask   uint64
	// onEvict is the user eviction callback; fired OUTSIDE the shard lock
	// (see OnEvict). Set once before the cache is shared.
	onEvict func(Object, []byte)
}

// cacheShard pads each shard to its own cache lines so that shard locks do
// not false-share.
type cacheShard struct {
	mu     sync.Mutex
	lru    *LRU
	bodies map[uint64][]byte
	// evicted accumulates this call's evictions under the shard lock; the
	// mutating operation drains it after unlocking and fires the user
	// callback lock-free.
	evicted []evictedObject
	_       [24]byte
}

// evictedObject pairs an evicted object with the body it held.
type evictedObject struct {
	obj  Object
	body []byte
}

// NewSharded builds a sharded cache with the given shard count (rounded up
// to a power of two; <= 0 picks a default sized to GOMAXPROCS) over a total
// byte capacity (<= 0 means unbounded, like NewLRU).
func NewSharded(shards int, capacity int64) *Sharded {
	if shards <= 0 {
		shards = 2 * runtime.GOMAXPROCS(0)
		if shards < 8 {
			shards = 8
		}
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := capacity
	if capacity > 0 {
		perShard = capacity / int64(n)
		if perShard < 1 {
			perShard = 1
		}
	}
	s := &Sharded{
		shards: make([]cacheShard, n),
		mask:   uint64(n - 1),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.lru = NewLRU(perShard)
		sh.bodies = make(map[uint64][]byte)
		// The inner LRU callback runs with the shard lock held: it only
		// moves the eviction (object + body) onto the shard's pending
		// list and cleans the body map. The user callback fires later,
		// outside the lock — see OnEvict.
		sh.lru.OnEvict(func(o Object) {
			body := sh.bodies[o.ID]
			delete(sh.bodies, o.ID)
			if s.onEvict != nil {
				sh.evicted = append(sh.evicted, evictedObject{obj: o, body: body})
			}
		})
	}
	return s
}

// shardFor mixes the ID before reducing so that dense IDs spread evenly.
func (s *Sharded) shardFor(id uint64) *cacheShard {
	h := id * 0x9e3779b97f4a7c15
	return &s.shards[(h>>32)&s.mask]
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// OnEvict registers fn to run whenever an object leaves the cache due to
// capacity pressure or explicit removal (Discard excepted), together with
// the body the cache held for it (nil for metadata-only entries).
//
// Guarantee: the callback fires AFTER the object's shard lock has been
// released and BEFORE the mutating call (Put, PutNewer, Remove) returns, in
// eviction order. It may therefore block — e.g. on a spill-queue enqueue —
// and may call back into the cache without deadlocking (see the locking
// hierarchy in DESIGN.md §6). The flip side of running unlocked: by the
// time the callback observes an eviction, a concurrent goroutine may
// already have re-inserted the object, so callbacks must treat evictions
// as advisory, not as the cache's current state.
//
// OnEvict must be called before the cache is shared across goroutines.
func (s *Sharded) OnEvict(fn func(Object, []byte)) {
	s.onEvict = fn
}

// takeEvicted drains the shard's pending evictions. Callers hold the shard
// lock.
func (sh *cacheShard) takeEvicted() []evictedObject {
	if len(sh.evicted) == 0 {
		return nil
	}
	ev := sh.evicted
	sh.evicted = nil
	return ev
}

// fire runs the user eviction callback over a drained pending list. Called
// with no locks held.
func (s *Sharded) fire(evicted []evictedObject) {
	if s.onEvict == nil {
		return
	}
	for _, e := range evicted {
		s.onEvict(e.obj, e.body)
	}
}

// Get returns the object and its body, promoting it to most-recently-used.
func (s *Sharded) Get(id uint64) (Object, []byte, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	obj, ok := sh.lru.Get(id)
	if !ok {
		return Object{}, nil, false
	}
	return obj, sh.bodies[id], true
}

// Peek returns the object without touching recency.
func (s *Sharded) Peek(id uint64) (Object, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.lru.Peek(id)
}

// Contains reports whether the object is cached, without touching recency.
func (s *Sharded) Contains(id uint64) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.lru.Contains(id)
}

// Put inserts or refreshes an object and its body, evicting within the
// object's shard as needed. It reports whether the object is cached
// afterwards.
func (s *Sharded) Put(obj Object, body []byte) bool {
	sh := s.shardFor(obj.ID)
	sh.mu.Lock()
	ok := sh.putLocked(obj, body)
	evicted := sh.takeEvicted()
	sh.mu.Unlock()
	s.fire(evicted)
	return ok
}

// PutNewer is Put except that it refuses to replace a cached copy with an
// older version: if the cached version is already >= obj.Version, the cache
// is left untouched. Concurrent fills racing with invalidations use this so
// a slow fetch of an old version can never clobber a fresher copy — the
// "no stale version is ever served" guarantee of the stress tests. It
// reports whether a copy at version >= obj.Version is cached afterwards.
func (s *Sharded) PutNewer(obj Object, body []byte) bool {
	sh := s.shardFor(obj.ID)
	sh.mu.Lock()
	if cur, ok := sh.lru.Peek(obj.ID); ok && cur.Version >= obj.Version {
		sh.mu.Unlock()
		return true
	}
	ok := sh.putLocked(obj, body)
	evicted := sh.takeEvicted()
	sh.mu.Unlock()
	s.fire(evicted)
	return ok
}

func (sh *cacheShard) putLocked(obj Object, body []byte) bool {
	if !sh.lru.Put(obj) {
		return false
	}
	if body != nil {
		sh.bodies[obj.ID] = body
	}
	return true
}

// Remove deletes an object, firing the eviction callback (outside the
// shard lock, like any eviction). It reports whether the object was
// present.
func (s *Sharded) Remove(id uint64) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	ok := sh.lru.Remove(id)
	evicted := sh.takeEvicted()
	sh.mu.Unlock()
	s.fire(evicted)
	return ok
}

// Discard deletes an object WITHOUT firing the eviction callback — the
// caller takes responsibility for whatever bookkeeping the callback would
// have done. The node's purge path uses this: a purged object must not be
// spilled to the disk tier by its own removal. It reports whether the
// object was present.
func (s *Sharded) Discard(id uint64) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	ok := sh.lru.RemoveQuiet(id)
	if ok {
		delete(sh.bodies, id)
	}
	sh.mu.Unlock()
	return ok
}

// Len returns the total number of cached objects across shards.
func (s *Sharded) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// Used returns the bytes charged against capacity across shards.
func (s *Sharded) Used() int64 {
	var used int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		used += sh.lru.Used()
		sh.mu.Unlock()
	}
	return used
}

// Capacity returns the total configured byte capacity (<= 0 means
// unbounded).
func (s *Sharded) Capacity() int64 {
	var total int64
	for i := range s.shards {
		c := s.shards[i].lru.Capacity()
		if c <= 0 {
			return 0
		}
		total += c
	}
	return total
}

// Objects returns a snapshot of cached objects. Shards are visited in
// order, each under its own lock; the snapshot is consistent per shard but
// not across shards (fine for digest rebuilds, which tolerate staleness by
// design).
func (s *Sharded) Objects() []Object {
	var out []Object
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out = append(out, sh.lru.Objects()...)
		sh.mu.Unlock()
	}
	return out
}

// ShardedStats aggregates per-shard counters.
type ShardedStats struct {
	Inserts   int64
	Evictions int64
}

// Stats sums the per-shard counters.
func (s *Sharded) Stats() ShardedStats {
	var st ShardedStats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st.Inserts += sh.lru.Inserts()
		st.Evictions += sh.lru.Evictions()
		sh.mu.Unlock()
	}
	return st
}

// ShardStats describes one shard's live state and counters, for per-shard
// gauges (a skewed eviction distribution across shards is how hash-stripe
// imbalance shows up in production).
type ShardStats struct {
	Entries   int
	Used      int64
	Inserts   int64
	Evictions int64
}

// PerShard snapshots every shard, in shard order. Each shard is consistent
// under its own lock; the slice is not a cross-shard atomic snapshot.
func (s *Sharded) PerShard() []ShardStats {
	out := make([]ShardStats, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out[i] = ShardStats{
			Entries:   sh.lru.Len(),
			Used:      sh.lru.Used(),
			Inserts:   sh.lru.Inserts(),
			Evictions: sh.lru.Evictions(),
		}
		sh.mu.Unlock()
	}
	return out
}
