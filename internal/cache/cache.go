// Package cache implements the byte-capacity LRU object cache used by every
// cache node in the system: the data caches at each level of the traditional
// hierarchy, the L1 proxy caches of the hint architecture, and the networked
// prototype nodes.
//
// The cache tracks object versions so that callers can implement the paper's
// strong-consistency assumption (Section 2.2.1): a cached copy whose version
// is older than the requested version is treated as invalid (a communication
// miss) rather than served stale.
//
// Entries come in three classes. Demand entries are objects a client
// actually requested. Speculative entries were push-cached (Section 4) and
// are second-class: they are evicted before any demand entry and convert to
// demand on their first reference, so speculation can never displace data
// with demonstrated value. Pinned entries model the push-ideal bound's free
// replicas: they charge no capacity and are never evicted for space.
package cache

import (
	"fmt"
)

// Object is a cached item. Size is the number of bytes the object charges
// against the cache capacity; Version identifies the object's content
// generation.
type Object struct {
	ID      uint64
	Size    int64
	Version int64
}

// class identifies an entry's standing in the cache.
type class int8

const (
	classDemand class = iota
	classSpeculative
	classPinned
)

// entry is an intrusive doubly-linked LRU list node.
type entry struct {
	obj        Object
	prev, next *entry
	class      class
}

// lruList is one intrusive list; head is MRU, tail is LRU.
type lruList struct {
	head, tail *entry
}

func (l *lruList) pushFront(e *entry) {
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

func (l *lruList) pushBack(e *entry) {
	e.next = nil
	e.prev = l.tail
	if l.tail != nil {
		l.tail.next = e
	}
	l.tail = e
	if l.head == nil {
		l.head = e
	}
}

func (l *lruList) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// maxDenseSlots bounds the flat table at 8M slots (64 MB of pointers). IDs
// at or above it are not "dense" by any reasonable reading of the contract
// and spill to a map, so a stray huge ID degrades gracefully instead of
// allocating the whole ID space.
const maxDenseSlots = 1 << 23

// denseIndex maps dense small-integer object IDs to entries through a flat
// doubling slice, replacing the hash map for workloads (the trace
// simulators) whose IDs are popularity ranks in [0, DistinctURLs). One
// bounds check and one load per lookup — this sits on the simulator's
// hottest path.
type denseIndex struct {
	slots    []*entry
	overflow map[uint64]*entry
}

func (d *denseIndex) get(id uint64) *entry {
	if id < uint64(len(d.slots)) {
		return d.slots[id]
	}
	if id < maxDenseSlots {
		return nil
	}
	return d.overflow[id]
}

func (d *denseIndex) set(id uint64, e *entry) {
	if id >= maxDenseSlots {
		if d.overflow == nil {
			d.overflow = make(map[uint64]*entry)
		}
		d.overflow[id] = e
		return
	}
	if id >= uint64(len(d.slots)) {
		n := uint64(1024)
		for n <= id {
			n *= 2
		}
		grown := make([]*entry, n)
		copy(grown, d.slots)
		d.slots = grown
	}
	d.slots[id] = e
}

func (d *denseIndex) del(id uint64) {
	if id < uint64(len(d.slots)) {
		d.slots[id] = nil
		return
	}
	if id >= maxDenseSlots {
		delete(d.overflow, id)
	}
}

// LRU is a byte-capacity LRU cache of Objects. A non-positive capacity means
// infinite (nothing is ever evicted for space). LRU is not safe for
// concurrent use; wrap it if sharing across goroutines.
type LRU struct {
	capacity int64
	used     int64
	count    int
	index    map[uint64]*entry // hash index (nil when dense-indexed)
	dense    *denseIndex       // paged dense index (nil when map-indexed)
	free     *entry            // freelist of recycled entries, chained via next
	demand   lruList           // demand + pinned entries
	spec     lruList           // speculative (pushed) entries
	onEvict  func(Object)

	// EvictDemandFirst flips the eviction preference so speculative
	// entries are treated exactly like demand entries (single logical
	// pool, speculative still tracked). Used by the ablation benchmarks;
	// leave false for the paper's behavior.
	EvictDemandFirst bool

	// statistics
	evictions int64
	inserts   int64
}

// NewLRU returns a cache bounded to capacity bytes; capacity <= 0 means
// unbounded. The index is a hash map, suitable for arbitrary (sparse or
// hashed) object IDs — the networked prototype's case.
func NewLRU(capacity int64) *LRU {
	return &LRU{
		capacity: capacity,
		index:    make(map[uint64]*entry),
	}
}

// NewDenseLRU returns a cache indexed by a paged dense array instead of a
// hash map. Use it when object IDs are dense small integers (the trace
// simulators' popularity ranks): lookups become two array loads, removing
// the map hashing that dominates simulation profiles. Semantics are
// identical to NewLRU.
func NewDenseLRU(capacity int64) *LRU {
	return &LRU{
		capacity: capacity,
		dense:    &denseIndex{},
	}
}

// lookup finds the entry for id in whichever index is configured.
func (c *LRU) lookup(id uint64) *entry {
	if c.dense != nil {
		return c.dense.get(id)
	}
	return c.index[id]
}

// setIndex installs e under id.
func (c *LRU) setIndex(id uint64, e *entry) {
	if c.dense != nil {
		c.dense.set(id, e)
		return
	}
	c.index[id] = e
}

// delIndex removes id from the index.
func (c *LRU) delIndex(id uint64) {
	if c.dense != nil {
		c.dense.del(id)
		return
	}
	delete(c.index, id)
}

// entrySlabLen is how many entries a freelist refill allocates at once.
// Slabs keep hot entries contiguous and cut the per-insert allocation that
// dominated the profile to one allocation per 256 inserts.
const entrySlabLen = 256

// newEntry pops a recycled entry, refilling the freelist from a fresh slab
// when empty. Entries are never moved or freed individually, so interior
// pointers into a slab stay valid for the cache's lifetime.
func (c *LRU) newEntry(obj Object, cl class) *entry {
	if c.free == nil {
		slab := make([]entry, entrySlabLen)
		for i := range slab {
			slab[i].next = c.free
			c.free = &slab[i]
		}
	}
	e := c.free
	c.free = e.next
	e.obj = obj
	e.prev, e.next = nil, nil
	e.class = cl
	return e
}

// OnEvict registers fn to run whenever an object leaves the cache due to
// capacity pressure or explicit removal (not on version-replacing updates of
// the same object). Passing nil clears the callback.
func (c *LRU) OnEvict(fn func(Object)) { c.onEvict = fn }

// Capacity returns the configured byte capacity (<= 0 means infinite).
func (c *LRU) Capacity() int64 { return c.capacity }

// Used returns the bytes currently charged against capacity.
func (c *LRU) Used() int64 { return c.used }

// Len returns the number of cached objects (pinned included).
func (c *LRU) Len() int { return c.count }

// Evictions returns the number of capacity/explicit evictions so far.
func (c *LRU) Evictions() int64 { return c.evictions }

// Inserts returns the number of Put operations that added a new object.
func (c *LRU) Inserts() int64 { return c.inserts }

// listOf returns the list an entry belongs to.
func (c *LRU) listOf(e *entry) *lruList {
	if e.class == classSpeculative {
		return &c.spec
	}
	return &c.demand
}

// promote makes e a most-recently-used demand entry (referencing a
// speculative entry converts it).
func (c *LRU) promote(e *entry) {
	l := c.listOf(e)
	l.unlink(e)
	if e.class == classSpeculative {
		e.class = classDemand
	}
	c.demand.pushFront(e)
}

// Get returns the object and promotes it to most-recently-used demand.
func (c *LRU) Get(id uint64) (Object, bool) {
	e := c.lookup(id)
	if e == nil {
		return Object{}, false
	}
	c.promote(e)
	return e.obj, true
}

// Peek returns the object without touching recency or class.
func (c *LRU) Peek(id uint64) (Object, bool) {
	e := c.lookup(id)
	if e == nil {
		return Object{}, false
	}
	return e.obj, true
}

// Contains reports whether the object is cached, without touching recency.
func (c *LRU) Contains(id uint64) bool {
	return c.lookup(id) != nil
}

// IsSpeculative reports whether the cached copy (if any) is speculative.
func (c *LRU) IsSpeculative(id uint64) bool {
	e := c.lookup(id)
	return e != nil && e.class == classSpeculative
}

// GetVersion returns the object only if its cached version is >= version;
// otherwise it invalidates any stale copy and reports a miss. This is the
// strong-consistency read the simulators use: stale data is never served.
func (c *LRU) GetVersion(id uint64, version int64) (Object, bool) {
	e := c.lookup(id)
	if e == nil {
		return Object{}, false
	}
	if e.obj.Version < version {
		c.removeEntry(e, true)
		return Object{}, false
	}
	c.promote(e)
	return e.obj, true
}

// Put inserts or refreshes an object as a demand entry and promotes it,
// evicting other entries as needed (speculative first). Objects larger than
// the whole capacity are not cached. It reports whether the object is
// cached afterwards.
func (c *LRU) Put(obj Object) bool {
	return c.put(obj, classDemand)
}

// PutSpeculative inserts an object as a speculative (push-cached) entry. If
// a demand copy of the same ID exists it is refreshed in place and keeps
// demand standing. Speculative entries charge capacity but lose every
// eviction contest against demand entries.
func (c *LRU) PutSpeculative(obj Object) bool {
	return c.put(obj, classSpeculative)
}

// PutPinned inserts an object that does not charge capacity and cannot be
// evicted for space. The push-ideal bound uses this to model replicas that
// are free by construction (Section 4.1.1).
func (c *LRU) PutPinned(obj Object) bool {
	return c.put(obj, classPinned)
}

func (c *LRU) put(obj Object, cl class) bool {
	if obj.Size < 0 {
		panic(fmt.Sprintf("cache: negative object size %d", obj.Size))
	}
	if e := c.lookup(obj.ID); e != nil {
		// Refresh in place; adjust the charged bytes. A speculative
		// put never downgrades an existing demand entry.
		if cl == classSpeculative && e.class == classDemand {
			cl = classDemand
		}
		if e.class != classPinned {
			c.used -= e.obj.Size
		}
		c.listOf(e).unlink(e)
		e.obj = obj
		e.class = cl
		if cl != classPinned {
			c.used += obj.Size
		}
		c.listOf(e).pushFront(e)
		c.evictForSpace(e)
		return c.lookup(obj.ID) != nil
	}
	if cl != classPinned && c.capacity > 0 && obj.Size > c.capacity {
		return false
	}
	e := c.newEntry(obj, cl)
	c.setIndex(obj.ID, e)
	c.count++
	c.listOf(e).pushFront(e)
	if cl != classPinned {
		c.used += obj.Size
	}
	c.inserts++
	c.evictForSpace(e)
	return c.lookup(obj.ID) != nil
}

// Remove deletes an object, firing the eviction callback. It reports whether
// the object was present.
func (c *LRU) Remove(id uint64) bool {
	e := c.lookup(id)
	if e == nil {
		return false
	}
	c.removeEntry(e, true)
	return true
}

// RemoveQuiet deletes an object without firing the eviction callback or
// counting an eviction. Used when the caller already accounts for the
// removal (e.g. replacing a stale version during a push).
func (c *LRU) RemoveQuiet(id uint64) bool {
	e := c.lookup(id)
	if e == nil {
		return false
	}
	c.removeEntry(e, false)
	return true
}

// Age demotes an object to the LRU end of its class without removing it.
// The update push algorithm uses this to "age" objects that are updated
// many times without being read (Section 4.1.2).
func (c *LRU) Age(id uint64) {
	e := c.lookup(id)
	if e == nil {
		return
	}
	l := c.listOf(e)
	l.unlink(e)
	l.pushBack(e)
}

// Objects returns a snapshot of cached objects: demand entries in MRU-to-LRU
// order, followed by speculative entries in MRU-to-LRU order.
func (c *LRU) Objects() []Object {
	out := make([]Object, 0, c.count)
	for e := c.demand.head; e != nil; e = e.next {
		out = append(out, e.obj)
	}
	for e := c.spec.head; e != nil; e = e.next {
		out = append(out, e.obj)
	}
	return out
}

// victim picks the next entry to evict: the speculative LRU if any (unless
// EvictDemandFirst disabled the preference), else the demand LRU, skipping
// pinned entries and keep. When the entry being kept is itself speculative,
// only other speculative entries are eligible: a push may never displace
// demand-fetched data.
func (c *LRU) victim(keep *entry) *entry {
	specOnly := keep != nil && keep.class == classSpeculative && !c.EvictDemandFirst
	if !c.EvictDemandFirst {
		if v := c.spec.tail; v != nil && v != keep {
			return v
		}
	}
	if specOnly {
		return nil
	}
	// Scan demand from LRU end, skipping pinned entries and keep. With
	// EvictDemandFirst, speculative entries are considered at equal
	// standing by falling through to the spec tail afterwards.
	for v := c.demand.tail; v != nil; v = v.prev {
		if v.class != classPinned && v != keep {
			return v
		}
	}
	if v := c.spec.tail; v != nil && v != keep {
		return v
	}
	return nil
}

// evictForSpace evicts entries until used fits capacity. keep, if non-nil,
// is the entry just inserted: if even after evicting everything else it does
// not fit, keep itself is evicted.
func (c *LRU) evictForSpace(keep *entry) {
	if c.capacity <= 0 {
		return
	}
	for c.used > c.capacity {
		v := c.victim(keep)
		if v == nil {
			if keep != nil && keep.class != classPinned && c.used > c.capacity {
				c.removeEntry(keep, true)
			}
			return
		}
		c.removeEntry(v, true)
	}
}

func (c *LRU) removeEntry(e *entry, notify bool) {
	c.listOf(e).unlink(e)
	c.delIndex(e.obj.ID)
	c.count--
	if e.class != classPinned {
		c.used -= e.obj.Size
	}
	if notify {
		c.evictions++
		if c.onEvict != nil {
			c.onEvict(e.obj)
		}
	}
	// Recycle after the callback: e is already unlinked and unindexed, so
	// re-entrant cache operations from the callback cannot observe it.
	e.obj = Object{}
	e.next = c.free
	e.prev = nil
	c.free = e
}
