package cache

import "testing"

func TestSpeculativeEvictedBeforeDemand(t *testing.T) {
	c := NewLRU(30)
	c.Put(Object{ID: 1, Size: 10})
	c.Put(Object{ID: 2, Size: 10})
	c.PutSpeculative(Object{ID: 3, Size: 10})
	// Cache full. A new demand object must evict the speculative entry,
	// not the older demand entries.
	c.Put(Object{ID: 4, Size: 10})
	if c.Contains(3) {
		t.Error("speculative entry survived while demand entries were protected")
	}
	if !c.Contains(1) || !c.Contains(2) || !c.Contains(4) {
		t.Error("demand entry evicted before speculative entry")
	}
}

func TestSpeculativePromotesOnReference(t *testing.T) {
	c := NewLRU(30)
	c.PutSpeculative(Object{ID: 1, Size: 10})
	if !c.IsSpeculative(1) {
		t.Fatal("entry not marked speculative")
	}
	// Referencing it converts it to demand standing.
	if _, ok := c.Get(1); !ok {
		t.Fatal("speculative entry not readable")
	}
	if c.IsSpeculative(1) {
		t.Error("referenced entry still speculative")
	}
	// Now it outlives new speculative entries under pressure.
	c.PutSpeculative(Object{ID: 2, Size: 10})
	c.PutSpeculative(Object{ID: 3, Size: 10})
	c.PutSpeculative(Object{ID: 4, Size: 10}) // evicts a speculative one
	if !c.Contains(1) {
		t.Error("promoted entry evicted before speculative ones")
	}
}

func TestSpeculativeGetVersionPromotes(t *testing.T) {
	c := NewLRU(0)
	c.PutSpeculative(Object{ID: 1, Size: 10, Version: 3})
	if _, ok := c.GetVersion(1, 3); !ok {
		t.Fatal("GetVersion missed speculative entry")
	}
	if c.IsSpeculative(1) {
		t.Error("GetVersion did not promote")
	}
}

func TestSpeculativeDoesNotDowngradeDemand(t *testing.T) {
	c := NewLRU(0)
	c.Put(Object{ID: 1, Size: 10, Version: 1})
	c.PutSpeculative(Object{ID: 1, Size: 10, Version: 2})
	if c.IsSpeculative(1) {
		t.Error("speculative refresh downgraded a demand entry")
	}
	got, _ := c.Peek(1)
	if got.Version != 2 {
		t.Errorf("version = %d, want refreshed to 2", got.Version)
	}
}

func TestSpeculativeEvictsWithinClassLRU(t *testing.T) {
	c := NewLRU(30)
	c.PutSpeculative(Object{ID: 1, Size: 10})
	c.PutSpeculative(Object{ID: 2, Size: 10})
	c.PutSpeculative(Object{ID: 3, Size: 10})
	c.PutSpeculative(Object{ID: 4, Size: 10}) // evicts 1 (spec LRU)
	if c.Contains(1) {
		t.Error("speculative LRU not evicted first")
	}
	for _, id := range []uint64{2, 3, 4} {
		if !c.Contains(id) {
			t.Errorf("speculative entry %d wrongly evicted", id)
		}
	}
}

func TestOversizedSpeculativeSelfEvicts(t *testing.T) {
	c := NewLRU(30)
	c.Put(Object{ID: 1, Size: 10})
	// A speculative object bigger than remaining slack must not displace
	// demand data; it is dropped instead (possibly after consuming all
	// speculative slack).
	ok := c.PutSpeculative(Object{ID: 2, Size: 25})
	if ok || c.Contains(2) {
		t.Error("oversized speculative entry displaced demand data")
	}
	if !c.Contains(1) {
		t.Error("demand entry evicted by speculative insert")
	}
}

func TestEvictDemandFirstAblation(t *testing.T) {
	c := NewLRU(30)
	c.EvictDemandFirst = true
	c.Put(Object{ID: 1, Size: 10})
	c.Put(Object{ID: 2, Size: 10})
	c.PutSpeculative(Object{ID: 3, Size: 10})
	// With the preference disabled, eviction order is plain global LRU
	// over the demand list first: object 1 is the demand LRU.
	c.Put(Object{ID: 4, Size: 10})
	if c.Contains(1) {
		t.Error("with EvictDemandFirst, demand LRU should be evicted")
	}
	if !c.Contains(3) {
		t.Error("speculative entry evicted despite EvictDemandFirst")
	}
}

func TestObjectsIncludesSpeculative(t *testing.T) {
	c := NewLRU(0)
	c.Put(Object{ID: 1, Size: 1})
	c.PutSpeculative(Object{ID: 2, Size: 1})
	objs := c.Objects()
	if len(objs) != 2 {
		t.Fatalf("Objects() returned %d entries, want 2", len(objs))
	}
	if objs[0].ID != 1 || objs[1].ID != 2 {
		t.Errorf("order = %v, want demand then speculative", objs)
	}
}
