package loadgen

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	neturl "net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"beyondcache/internal/obs"
)

// DriverConfig parameterizes an open-loop run.
type DriverConfig struct {
	// Targets are the node base URLs; request i goes to
	// Targets[Clients[i] % len(Targets)], the same client→node mapping the
	// simulators and Fleet.Replay use.
	Targets []string
	// Workers bounds concurrent in-flight requests (<= 0 means 64). The
	// driver stays open-loop regardless: latency is measured from each
	// request's INTENDED arrival time, so when every worker is wedged
	// behind a stalled server, the queueing delay of the requests that
	// could not be issued on time still lands in the recorded latencies —
	// a closed-loop driver would silently omit it (coordinated omission).
	Workers int
	// Client issues the requests (nil builds a tuned loopback client).
	Client *http.Client
	// NumPhases sizes the per-phase result slots (<= 0 derives it from
	// the schedule's max phase index).
	NumPhases int
	// AdvanceVersion, when non-nil, is invoked before issuing a request
	// whose scheduled version exceeds anything yet seen for its object —
	// exactly once per (object, version) step, serialized per object. The
	// runner uses it to bump the origin and purge stale copies (the
	// strong-consistency validation mode).
	AdvanceVersion func(url string, from, to int64)
}

// PhaseResult aggregates one phase's client-side measurements.
type PhaseResult struct {
	Requests int64
	Errors   int64
	Local    int64
	Remote   int64
	Miss     int64
	Bytes    int64
	Hist     obs.HistogramSnapshot
}

// HitRate returns the fraction of the phase's successful requests served
// from any cache.
func (p PhaseResult) HitRate() float64 {
	served := p.Local + p.Remote + p.Miss
	if served == 0 {
		return 0
	}
	return float64(p.Local+p.Remote) / float64(served)
}

// ErrorRate returns the fraction of the phase's requests that failed.
func (p PhaseResult) ErrorRate() float64 {
	if p.Requests == 0 {
		return 0
	}
	return float64(p.Errors) / float64(p.Requests)
}

// Result aggregates a full run: per-phase slices plus the merged totals.
type Result struct {
	Wall    time.Duration
	Overall PhaseResult
	Phases  []PhaseResult
}

// workerStats is one worker's private accumulation — no sharing on the
// request path; merged (via obs.Histogram.Merge) when the run ends.
type workerStats struct {
	phases []PhaseResult
	hists  []*obs.Histogram
}

func newWorkerStats(numPhases int) *workerStats {
	w := &workerStats{
		phases: make([]PhaseResult, numPhases),
		hists:  make([]*obs.Histogram, numPhases),
	}
	for i := range w.hists {
		w.hists[i] = obs.NewHistogram(nil)
	}
	return w
}

// versionGate serializes origin version advances per object.
type versionGate struct {
	mu   sync.Mutex
	seen map[uint64]int64
}

// advance reports the version step to apply for obj (from, to) and records
// it, or ok=false when another request already advanced past v.
func (g *versionGate) advance(obj uint64, v int64) (from int64, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	cur := g.seen[obj]
	if v <= cur {
		return 0, false
	}
	g.seen[obj] = v
	return cur, true
}

// newLoadClient builds the driver's HTTP client: a deep idle pool per
// target (every worker hammers the same few hosts) and generous timeouts —
// the scenario bounds judge latency, the driver just measures it.
func newLoadClient() *http.Client {
	return &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   2 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			MaxIdleConns:        512,
			MaxIdleConnsPerHost: 128,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

// RunSchedule replays the schedule open-loop. It returns when every
// scheduled request has completed (or errored), or with ctx's error if the
// context ends first.
func RunSchedule(ctx context.Context, sched *Schedule, cfg DriverConfig) (*Result, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("loadgen: driver needs at least one target")
	}
	if sched.Len() == 0 {
		return nil, fmt.Errorf("loadgen: empty schedule")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 64
	}
	if workers > sched.Len() {
		workers = sched.Len()
	}
	numPhases := cfg.NumPhases
	if numPhases <= 0 {
		for _, p := range sched.Phases {
			if int(p)+1 > numPhases {
				numPhases = int(p) + 1
			}
		}
	}
	client := cfg.Client
	if client == nil {
		client = newLoadClient()
	}
	gate := &versionGate{seen: make(map[uint64]int64)}

	var next atomic.Int64
	stats := make([]*workerStats, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ws := newWorkerStats(numPhases)
		stats[w] = ws
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= sched.Len() {
					return
				}
				if ctx.Err() != nil {
					return
				}
				intended := start.Add(sched.Offsets[i])
				if d := time.Until(intended); d > 0 {
					select {
					case <-time.After(d):
					case <-ctx.Done():
						return
					}
				}
				issueOne(ctx, client, cfg, gate, sched, i, intended, ws)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &Result{Wall: time.Since(start), Phases: make([]PhaseResult, numPhases)}
	overallHist := obs.NewHistogram(nil)
	phaseHists := make([]*obs.Histogram, numPhases)
	for i := range phaseHists {
		phaseHists[i] = obs.NewHistogram(nil)
	}
	for _, ws := range stats {
		for pi := range ws.phases {
			p := &res.Phases[pi]
			q := ws.phases[pi]
			p.Requests += q.Requests
			p.Errors += q.Errors
			p.Local += q.Local
			p.Remote += q.Remote
			p.Miss += q.Miss
			p.Bytes += q.Bytes
			snap := ws.hists[pi].Snapshot()
			if err := phaseHists[pi].Merge(snap); err != nil {
				return nil, err
			}
			if err := overallHist.Merge(snap); err != nil {
				return nil, err
			}
		}
	}
	for pi := range res.Phases {
		res.Phases[pi].Hist = phaseHists[pi].Snapshot()
		o := &res.Overall
		p := res.Phases[pi]
		o.Requests += p.Requests
		o.Errors += p.Errors
		o.Local += p.Local
		o.Remote += p.Remote
		o.Miss += p.Miss
		o.Bytes += p.Bytes
	}
	res.Overall.Hist = overallHist.Snapshot()
	return res, nil
}

// issueOne sends request i and records its outcome into ws. The recorded
// latency runs from the request's intended arrival, not from the moment a
// worker got around to issuing it.
func issueOne(ctx context.Context, client *http.Client, cfg DriverConfig, gate *versionGate, sched *Schedule, i int, intended time.Time, ws *workerStats) {
	pi := int(sched.Phases[i])
	p := &ws.phases[pi]
	p.Requests++

	url := sched.URL(i)
	if cfg.AdvanceVersion != nil && sched.Versions[i] > 0 {
		if from, ok := gate.advance(sched.Objects[i], sched.Versions[i]); ok {
			cfg.AdvanceVersion(url, from, sched.Versions[i])
		}
	}
	target := cfg.Targets[int(sched.Clients[i])%len(cfg.Targets)]

	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		target+"/fetch?url="+neturl.QueryEscape(url), nil)
	if err != nil {
		p.Errors++
		ws.hists[pi].Observe(time.Since(intended))
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		p.Errors++
		ws.hists[pi].Observe(time.Since(intended))
		return
	}
	n, _ := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	lat := time.Since(intended)
	ws.hists[pi].Observe(lat)
	if resp.StatusCode != http.StatusOK {
		p.Errors++
		return
	}
	p.Bytes += n
	switch how := resp.Header.Get("X-Cache"); {
	case strings.HasPrefix(how, "LOCAL"):
		p.Local++
	case how == "REMOTE":
		p.Remote++
	default:
		p.Miss++
	}
}
