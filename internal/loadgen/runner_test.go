package loadgen

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// smokeScenario is the CI load-smoke configuration: the flash-crowd shape
// shortened and slowed so it finishes in ~4s on one core under -race, with
// the same acceptance structure as the shipped scenario.
const smokeScenario = `
name flash-crowd-smoke
profile DEC
nodes 3
seed 42
warmup 100
workers 32
origin-latency 10ms

phase steady 1500ms rate=60
phase spike 1s rate=200 hotset=32 hotalpha=1.1 hotfrac=0.9
phase recover 1s rate=60

accept error_rate <= 0.05
accept hit_rate >= 0.05
accept p99 <= 2s
`

// TestLoadSmokeFlashCrowd boots a 3-node in-process fleet and drives the
// shortened flash crowd end to end — the CI smoke. It asserts the run's
// acceptance bounds hold and that the resulting bench row survives a
// BENCH_load.json write/read round trip.
func TestLoadSmokeFlashCrowd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping live-fleet smoke in -short mode")
	}
	sc := mustParse(t, smokeScenario)
	rep, err := Run(sc, RunOptions{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Overall.Requests == 0 {
		t.Fatal("smoke issued no requests")
	}
	if len(rep.Bounds) != 3 {
		t.Fatalf("evaluated %d bounds, want 3", len(rep.Bounds))
	}
	for _, b := range rep.Bounds {
		if !b.Pass {
			t.Errorf("bound %q failed: actual %g", b.Bound.Expr(), b.Actual)
		}
	}
	if !rep.Pass {
		t.Fatal("smoke run failed its acceptance bounds")
	}
	// The spike phase must actually spike: more arrivals than steady
	// despite being shorter.
	phases := rep.Result.Phases
	if len(phases) != 3 || phases[1].Requests <= phases[0].Requests {
		t.Fatalf("spike did not spike: %+v", phases)
	}

	// The in-process fleet is always scrapable, so the observability
	// section must be present, and the run's hint traffic must have left
	// propagation-lag observations behind.
	if rep.Obs == nil {
		t.Fatal("run report has no observability section")
	}
	if rep.Obs.HintPropagationCount < 1 {
		t.Errorf("hint propagation count = %d, want >= 1", rep.Obs.HintPropagationCount)
	}
	if rep.Obs.HintPropagationCount > 0 && rep.Obs.HintPropagationP99Ms <= 0 {
		t.Errorf("hint propagation p99 = %vms with %d observations",
			rep.Obs.HintPropagationP99Ms, rep.Obs.HintPropagationCount)
	}

	// BENCH row schema round trip.
	row := rep.Row()
	if row.Scenario != "flash-crowd-smoke" || row.ScheduleSHA256 != rep.Fingerprint || len(row.Phases) != 3 {
		t.Fatalf("bench row malformed: %+v", row)
	}
	if row.Obs == nil {
		t.Fatal("bench row lost the observability section")
	}
	path := filepath.Join(t.TempDir(), "BENCH_load.json")
	if err := WriteBenchFile(path, []BenchRow{row}); err != nil {
		t.Fatal(err)
	}
	doc, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Description == "" || len(doc.Rows) != 1 {
		t.Fatalf("bench file malformed: %+v", doc)
	}
	if !reflect.DeepEqual(doc.Rows[0], row) {
		t.Fatalf("bench row changed across write/read:\n%+v\nvs\n%+v", doc.Rows[0], row)
	}
}

// TestRunnerAppliesEventTimeline runs a compressed scenario exercising all
// three event kinds — a partition that heals, an origin latency step, and a
// mass invalidation — and checks the run completes with the fault plane's
// effects visible (errors stay bounded because hedged origin fallback
// absorbs the partition).
func TestRunnerAppliesEventTimeline(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping live-fleet test in -short mode")
	}
	sc := mustParse(t, `
name events
profile DEC
nodes 2
seed 5
warmup 50
workers 16
origin-latency 5ms

phase a 1s rate=50 hotset=16
phase b 1s rate=50 hotset=16
phase c 1s rate=50 hotset=16

fault 1s node-1:partition
heal 2s
origin-at 1s 40ms
origin-at 2s 5ms
invalidate 2s 16

accept error_rate <= 0.2
`)
	rep, err := Run(sc, RunOptions{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Overall.Requests == 0 {
		t.Fatal("no requests issued")
	}
	if !rep.Pass {
		t.Fatalf("error bound failed: %+v", rep.Bounds)
	}
}

func TestRunnerRejectsEventsAgainstExternalTargets(t *testing.T) {
	sc := mustParse(t, `
name ext
profile DEC
nodes 1
phase p 1s rate=10
fault 0s node-0:partition
`)
	_, err := Run(sc, RunOptions{Targets: []string{"http://127.0.0.1:1"}})
	if err == nil || !strings.Contains(err.Error(), "external targets") {
		t.Fatalf("want external-targets error, got %v", err)
	}
}

func TestEvalBoundMetrics(t *testing.T) {
	sc := mustParse(t, `
name eb
profile DEC
nodes 1
phase a 1s rate=10
phase b 1s rate=10
`)
	mk := func(lat time.Duration, n int) PhaseResult {
		p := PhaseResult{Requests: int64(n), Local: int64(n)}
		h := newWorkerStats(1)
		for i := 0; i < n; i++ {
			h.hists[0].Observe(lat)
		}
		p.Hist = h.hists[0].Snapshot()
		return p
	}
	res := &Result{
		Phases: []PhaseResult{mk(2*time.Millisecond, 100), mk(64*time.Millisecond, 100)},
	}
	res.Overall = mk(2*time.Millisecond, 200)

	cases := []struct {
		expr string
		lo   float64
		hi   float64
	}{
		{"p99 a <= 1s", 0.001, 0.01},       // ~2ms, bucketed
		{"p99 b <= 1s", 0.03, 0.2},         // ~64ms, bucketed
		{"p99_ratio b a <= 100", 5, 100},   // ~32x
		{"hit_rate a >= 0", 0.99, 1.01},    // all local
		{"error_rate b <= 1", -0.01, 0.01}, // none
		{"reqps a >= 0", 99, 101},          // 100 over 1s
	}
	for _, c := range cases {
		b, err := parseBound(strings.Fields(c.expr))
		if err != nil {
			t.Fatalf("%s: %v", c.expr, err)
		}
		got, err := evalBound(sc, res, b)
		if err != nil {
			t.Fatalf("%s: %v", c.expr, err)
		}
		if got < c.lo || got > c.hi {
			t.Errorf("%s: actual %g outside [%g, %g]", c.expr, got, c.lo, c.hi)
		}
	}

	// Unknown phase in a bound must error, not panic.
	bad, err := parseBound(strings.Fields("p99 zz <= 1s"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := evalBound(sc, res, bad); err == nil {
		t.Fatal("evalBound accepted an unknown phase")
	}
}
