package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// BenchPhase is one phase's measurements in a bench row.
type BenchPhase struct {
	Name      string  `json:"name"`
	Requests  int64   `json:"requests"`
	ReqPerSec float64 `json:"req_per_sec"`
	HitRate   float64 `json:"hit_rate"`
	ErrorRate float64 `json:"error_rate"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// BenchRestart is one restart event's disk-recovery outcome in a bench row.
type BenchRestart struct {
	Node             int     `json:"node"`
	AtSeconds        float64 `json:"at_seconds"`
	RecoveredObjects int     `json:"recovered_objects"`
	RecoveredBytes   int64   `json:"recovered_bytes"`
	RecoveryMs       float64 `json:"recovery_ms"`
}

// BenchBound is one evaluated acceptance bound.
type BenchBound struct {
	Expr   string  `json:"expr"`
	Actual float64 `json:"actual"`
	Pass   bool    `json:"pass"`
}

// BenchRow is one scenario's result row in BENCH_load.json.
type BenchRow struct {
	Scenario         string       `json:"scenario"`
	Profile          string       `json:"profile"`
	Nodes            int          `json:"nodes"`
	Seed             int64        `json:"seed"`
	ScheduleSHA256   string       `json:"schedule_sha256"`
	Requests         int64        `json:"requests"`
	Errors           int64        `json:"errors"`
	WallSeconds      float64      `json:"wall_seconds"`
	ReqPerSecPerNode float64      `json:"req_per_sec_per_node"`
	HitRate          float64      `json:"hit_rate"`
	P50Ms            float64      `json:"p50_ms"`
	P95Ms            float64      `json:"p95_ms"`
	P99Ms            float64      `json:"p99_ms"`
	Phases           []BenchPhase `json:"phases"`
	Bounds           []BenchBound `json:"bounds"`
	// Restarts records mid-run node restarts and what their boot recovery
	// scans brought back from the disk tier.
	Restarts []BenchRestart `json:"restarts,omitempty"`
	// Obs carries the run's observability deltas (hint-propagation lag,
	// span/trace volume, end-of-run directory lag); absent when the fleet
	// could not be scraped.
	Obs  *BenchObs `json:"obs,omitempty"`
	Pass bool      `json:"pass"`
}

// BenchFile is the BENCH_load.json document: a description plus one row
// per scenario, matching the repo's other BENCH_* artifacts.
type BenchFile struct {
	Description string     `json:"description"`
	Rows        []BenchRow `json:"rows"`
}

// ms converts a duration to fractional milliseconds for JSON.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Row flattens a run report into its bench row.
func (r *RunReport) Row() BenchRow {
	res := r.Result
	span := r.Scenario.Span().Seconds()
	row := BenchRow{
		Scenario:       r.Scenario.Name,
		Profile:        r.Scenario.Profile,
		Nodes:          r.Scenario.Nodes,
		Seed:           r.Scenario.Seed,
		ScheduleSHA256: r.Fingerprint,
		Requests:       res.Overall.Requests,
		Errors:         res.Overall.Errors,
		WallSeconds:    res.Wall.Seconds(),
		HitRate:        res.Overall.HitRate(),
		P50Ms:          ms(res.Overall.Hist.Quantile(0.50)),
		P95Ms:          ms(res.Overall.Hist.Quantile(0.95)),
		P99Ms:          ms(res.Overall.Hist.Quantile(0.99)),
		Obs:            r.Obs,
		Pass:           r.Pass,
	}
	if span > 0 && r.Scenario.Nodes > 0 {
		row.ReqPerSecPerNode = float64(res.Overall.Requests) / span / float64(r.Scenario.Nodes)
	}
	for pi, p := range res.Phases {
		name := fmt.Sprintf("phase-%d", pi)
		dur := span
		if pi < len(r.Scenario.Phases) {
			name = r.Scenario.Phases[pi].Name
			dur = r.Scenario.Phases[pi].Dur.Seconds()
		}
		bp := BenchPhase{
			Name:      name,
			Requests:  p.Requests,
			HitRate:   p.HitRate(),
			ErrorRate: p.ErrorRate(),
			P50Ms:     ms(p.Hist.Quantile(0.50)),
			P95Ms:     ms(p.Hist.Quantile(0.95)),
			P99Ms:     ms(p.Hist.Quantile(0.99)),
		}
		if dur > 0 {
			bp.ReqPerSec = float64(p.Requests) / dur
		}
		row.Phases = append(row.Phases, bp)
	}
	for _, b := range r.Bounds {
		row.Bounds = append(row.Bounds, BenchBound{Expr: b.Bound.Expr(), Actual: b.Actual, Pass: b.Pass})
	}
	for _, rs := range r.Restarts {
		row.Restarts = append(row.Restarts, BenchRestart{
			Node:             rs.Node,
			AtSeconds:        rs.At.Seconds(),
			RecoveredObjects: rs.Objects,
			RecoveredBytes:   rs.Bytes,
			RecoveryMs:       ms(rs.Duration),
		})
	}
	return row
}

// benchDescription heads every BENCH_load.json this package writes.
const benchDescription = "Wire-level load scenarios (cmd/cacheload): open-loop, coordinated-omission-safe replay against a live fleet; one row per scenario with client-side latency quantiles and acceptance-bound verdicts."

// WriteBenchFile writes rows as a BENCH_load.json document.
func WriteBenchFile(path string, rows []BenchRow) error {
	doc := BenchFile{Description: benchDescription, Rows: rows}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchFile parses a BENCH_load.json document.
func ReadBenchFile(path string) (BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchFile{}, err
	}
	var doc BenchFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return BenchFile{}, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	return doc, nil
}
