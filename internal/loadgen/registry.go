package loadgen

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

// The shipped scenario matrix. Each file is a declarative text spec (see
// Parse) with its own acceptance bounds; cmd/cacheload runs them all by
// default and EXPERIMENTS.md documents what each one models.
//
//go:embed scenarios/*.scenario
var scenarioFS embed.FS

// BuiltinNames lists the shipped scenarios, sorted.
func BuiltinNames() []string {
	entries, err := scenarioFS.ReadDir("scenarios")
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".scenario"))
	}
	sort.Strings(names)
	return names
}

// Builtin parses the named shipped scenario.
func Builtin(name string) (*Scenario, error) {
	data, err := scenarioFS.ReadFile("scenarios/" + name + ".scenario")
	if err != nil {
		return nil, fmt.Errorf("loadgen: unknown builtin scenario %q (have %s)",
			name, strings.Join(BuiltinNames(), ", "))
	}
	sc, err := Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("loadgen: builtin %q: %w", name, err)
	}
	if sc.Name != name {
		return nil, fmt.Errorf("loadgen: builtin file %q names itself %q", name, sc.Name)
	}
	return sc, nil
}

// Builtins parses the whole shipped matrix, in name order.
func Builtins() ([]*Scenario, error) {
	var out []*Scenario
	for _, name := range BuiltinNames() {
		sc, err := Builtin(name)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}
