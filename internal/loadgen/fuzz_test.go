package loadgen

import (
	"reflect"
	"testing"
)

// FuzzScenarioParse checks the two properties the scenario plane relies on
// (mirroring the digest wire-format fuzz target):
//
//  1. Parse never panics on arbitrary text — it may only error — so a bad
//     scenario file cannot take down cmd/cacheload.
//  2. Any scenario Parse accepts renders to a canonical Format whose
//     re-parse is the identical scenario and whose re-render is the
//     identical text (Format is a fixed point).
func FuzzScenarioParse(f *testing.F) {
	f.Add(testScenarioText)
	for _, name := range BuiltinNames() {
		if sc, err := Builtin(name); err == nil {
			f.Add(sc.Format())
		}
	}
	f.Add("name x\nprofile DEC\nnodes 1\nphase p 1s rate=1")
	f.Add("name x\nprofile Berkeley\nnodes 2\npacing trace\nduration 2s\nrequests 100")
	f.Add("phase p 1s rate=1e300\nname \x00")
	f.Add("accept p99_ratio a b <= 1\nfault -1s x:partition")

	f.Fuzz(func(t *testing.T, text string) {
		sc, err := Parse(text)
		if err != nil {
			return
		}
		canon := sc.Format()
		sc2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\ninput: %q\ncanonical: %q", err, text, canon)
		}
		if !reflect.DeepEqual(sc, sc2) {
			t.Fatalf("canonical round trip changed the scenario\ninput: %q\ncanonical: %q", text, canon)
		}
		if canon2 := sc2.Format(); canon2 != canon {
			t.Fatalf("Format is not a fixed point: %q vs %q", canon, canon2)
		}
	})
}
