package loadgen

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

const testScenarioText = `
# comment line
name demo
profile DEC
nodes 3
seed 42
warmup 10          # trailing comment
origin-latency 5ms
hedge-budget 40ms

phase steady 2s rate=50
phase spike 1s rate=200..400 hotset=16 hotalpha=1.2 hotfrac=0.8
phase recover 1s rate=50

fault 2s node-1:partition
heal 3s
origin-at 2500ms 80ms
invalidate 3500ms 8

accept p99_ratio spike steady <= 3
accept p99 spike <= 500ms
accept hit_rate >= 0.1
accept error_rate steady <= 0.01
accept reqps >= 40
`

func TestParseScenario(t *testing.T) {
	sc, err := Parse(testScenarioText)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "demo" || sc.Profile != "DEC" || sc.Nodes != 3 || sc.Seed != 42 {
		t.Fatalf("header fields wrong: %+v", sc)
	}
	if sc.Warmup != 10 || sc.OriginLatency != 5*time.Millisecond || sc.HedgeBudget != 40*time.Millisecond {
		t.Fatalf("tuning fields wrong: %+v", sc)
	}
	if len(sc.Phases) != 3 {
		t.Fatalf("want 3 phases, got %d", len(sc.Phases))
	}
	spike := sc.Phases[1]
	if spike.Rate != 200 || spike.RateEnd != 400 || spike.HotSet != 16 || spike.HotAlpha != 1.2 || spike.HotFrac != 0.8 {
		t.Fatalf("spike phase wrong: %+v", spike)
	}
	if len(sc.Faults) != 2 || sc.Faults[0].Spec != "node-1:partition" || sc.Faults[1].Spec != "" {
		t.Fatalf("faults wrong: %+v", sc.Faults)
	}
	if len(sc.OriginEvents) != 1 || sc.OriginEvents[0].Latency != 80*time.Millisecond {
		t.Fatalf("origin events wrong: %+v", sc.OriginEvents)
	}
	if len(sc.Invalidates) != 1 || sc.Invalidates[0].Count != 8 {
		t.Fatalf("invalidates wrong: %+v", sc.Invalidates)
	}
	if len(sc.Bounds) != 5 {
		t.Fatalf("want 5 bounds, got %d", len(sc.Bounds))
	}
	if got := sc.Bounds[0].Expr(); got != "p99_ratio spike steady <= 3" {
		t.Fatalf("bound expr = %q", got)
	}
	if sc.Span() != 4*time.Second {
		t.Fatalf("span = %v", sc.Span())
	}
	if got := sc.sortedEventOffsets(); len(got) != 4 || got[0] != 2*time.Second || got[3] != 3500*time.Millisecond {
		t.Fatalf("event offsets = %v", got)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	sc, err := Parse(testScenarioText)
	if err != nil {
		t.Fatal(err)
	}
	text := sc.Format()
	sc2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse of Format output: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(sc, sc2) {
		t.Fatalf("round trip changed the scenario:\n%+v\nvs\n%+v", sc, sc2)
	}
	if text2 := sc2.Format(); text2 != text {
		t.Fatalf("Format not canonical:\n%q\nvs\n%q", text, text2)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct{ name, text, wantErr string }{
		{"empty", "", "needs a name"},
		{"no profile", "name x\nnodes 1\nphase p 1s rate=1", "profile required"},
		{"bad profile", "name x\nprofile NCSA\nnodes 1\nphase p 1s rate=1", "unknown profile"},
		{"no phases", "name x\nprofile DEC\nnodes 1", "at least one phase"},
		{"zero rate", "name x\nprofile DEC\nnodes 1\nphase p 1s", "rate > 0"},
		{"dup key", "name x\nname y\nprofile DEC\nnodes 1\nphase p 1s rate=1", "duplicate"},
		{"dup phase", "name x\nprofile DEC\nnodes 1\nphase p 1s rate=1\nphase p 1s rate=1", "duplicate phase"},
		{"unknown keyword", "name x\nprofile DEC\nnodes 1\nphase p 1s rate=1\nbogus 1", "unknown keyword"},
		{"late fault", "name x\nprofile DEC\nnodes 1\nphase p 1s rate=1\nfault 2s a:partition", "outside the run window"},
		{"bad fault spec", "name x\nprofile DEC\nnodes 1\nphase p 1s rate=1\nfault 0s garbage", "want target:opts"},
		{"bad bound metric", "name x\nprofile DEC\nnodes 1\nphase p 1s rate=1\naccept p42 <= 1s", "unknown metric"},
		{"bound unknown phase", "name x\nprofile DEC\nnodes 1\nphase p 1s rate=1\naccept p99 q <= 1s", "unknown phase"},
		{"bound bad op", "name x\nprofile DEC\nnodes 1\nphase p 1s rate=1\naccept p99 == 1s", "bad op"},
		{"ratio arity", "name x\nprofile DEC\nnodes 1\nphase p 1s rate=1\naccept p99_ratio p <= 2", "2 phase args"},
		{"duration bound", "name x\nprofile DEC\nnodes 1\nphase p 1s rate=1\naccept p99 <= 0.5", "duration threshold"},
		{"trace with rate", "name x\nprofile DEC\nnodes 1\npacing trace\nduration 1s\nphase p 1s rate=5", "ignores rates"},
		{"trace no duration", "name x\nprofile DEC\nnodes 1\npacing trace", "needs a duration"},
		{"bad scale", "name x\nprofile DEC\nnodes 1\nscale 2\nphase p 1s rate=1", "outside [0,1]"},
		{"negative invalidate", "name x\nprofile DEC\nnodes 1\nphase p 1s rate=1\ninvalidate 0s -3", "must be positive"},
		{"partition replicas", "name x\nprofile DEC\nnodes 2\nhint-partition 9\nphase p 1s rate=1", "outside [0,8]"},
		{"kill bad node", "name x\nprofile DEC\nnodes 2\nphase p 1s rate=1\nkill 0s 5", "of a 2-node fleet"},
		{"kill late", "name x\nprofile DEC\nnodes 2\nphase p 1s rate=1\nkill 2s 0", "outside the run window"},
		{"kill twice", "name x\nprofile DEC\nnodes 2\nphase p 1s rate=1\nkill 0s 0\nkill 1s 0", "killed twice"},
		{"kill all", "name x\nprofile DEC\nnodes 2\nphase p 1s rate=1\nkill 0s 0\nkill 0s 1", "whole 2-node fleet"},
		{"kill plus restart", "name x\nprofile DEC\nnodes 3\nphase p 1s rate=1\nkill 0s 0\nrestart 0s 1", "cannot combine"},
		{"kill plus invalidate", "name x\nprofile DEC\nnodes 3\nphase p 1s rate=1\nkill 0s 0\ninvalidate 0s 2", "cannot combine"},
	}
	for _, c := range cases {
		_, err := Parse(c.text)
		if err == nil {
			t.Errorf("%s: Parse accepted invalid input", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

func TestBuiltinMatrix(t *testing.T) {
	names := BuiltinNames()
	want := []string{"diurnal-ramp", "flash-crowd", "invalidation-storm", "origin-brownout", "partition-node-loss", "regional-partition", "restart-recovery"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("builtin names = %v, want %v", names, want)
	}
	scs, err := Builtins()
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scs {
		if len(sc.Bounds) == 0 {
			t.Errorf("builtin %s ships no acceptance bounds", sc.Name)
		}
		// Every builtin must round-trip through its canonical form.
		rt, err := Parse(sc.Format())
		if err != nil {
			t.Errorf("builtin %s: canonical form does not re-parse: %v", sc.Name, err)
		} else if !reflect.DeepEqual(sc, rt) {
			t.Errorf("builtin %s: canonical round trip changed the scenario", sc.Name)
		}
	}
	if _, err := Builtin("no-such-scenario"); err == nil {
		t.Fatal("Builtin accepted an unknown name")
	}
}
