package loadgen

import (
	"math"
	"testing"

	"beyondcache/internal/core"
	"beyondcache/internal/sim"
	"beyondcache/internal/trace"
)

// simRequests reconstructs the exact request stream the driver issues —
// same objects, clients, sizes, and versions in the same order — as a
// trace the simulator can consume. Building it from the Schedule rather
// than re-reading the profile guarantees both sides see identical input
// even though the schedule skips uncachable requests.
func simRequests(sched *Schedule) []trace.Request {
	reqs := make([]trace.Request, sched.Len())
	for i := range reqs {
		reqs[i] = trace.Request{
			Seq:     int64(i),
			Time:    sched.Offsets[i],
			Client:  int(sched.Clients[i]),
			Object:  sched.Objects[i],
			Size:    sched.Sizes[i],
			Version: sched.Versions[i],
		}
	}
	return reqs
}

// TestMeasuredVsSimulatedDEC is the validation experiment: replay the DEC
// profile, trace-paced and strongly consistent, against a live 3-node
// fleet, and run the identical request stream through the hint-policy
// simulator with a matching 3-L1 topology (both map client→cache as
// client mod 3). The live hit rate must land inside a tolerance band of
// the simulator's prediction — the wire-level prototype and the
// discrete simulator describe the same system.
func TestMeasuredVsSimulatedDEC(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping live-fleet validation in -short mode")
	}
	sc := mustParse(t, `
name dec-validate
profile DEC
nodes 3
seed 17
pacing trace
duration 4s
requests 900
workers 32
strong-consistency true
origin-latency 2ms
update-interval 25ms
`)
	sched := mustSchedule(t, sc)

	// Simulator side: same stream, same client→L1 mapping.
	sys, err := core.NewSystem(core.Config{
		Policy:   core.PolicyHints,
		Topology: sim.Topology{NumL1: sc.Nodes, ClientsPerL1: 256, L1PerL2: sc.Nodes},
	})
	if err != nil {
		t.Fatal(err)
	}
	simRep, err := sys.Run(trace.NewSliceReader(simRequests(sched)))
	if err != nil {
		t.Fatal(err)
	}

	// Live side.
	liveRep, err := Run(sc, RunOptions{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	live := liveRep.Result.Overall
	if live.Errors != 0 {
		t.Fatalf("live run had %d errors", live.Errors)
	}
	if live.Requests != int64(sched.Len()) {
		t.Fatalf("live run issued %d of %d requests", live.Requests, sched.Len())
	}

	liveHit := live.HitRate()
	simHit := simRep.HitRatio
	t.Logf("hit rate: live %.4f (local %d, remote %d, miss %d) vs simulated %.4f",
		liveHit, live.Local, live.Remote, live.Miss, simHit)

	// Tolerance: the simulator's hint plane propagates instantly and its
	// caches are unbounded, while the live fleet pays real metadata
	// latency — so the live rate may trail the prediction, but the two
	// must clearly describe the same system. The stream's simulated hit
	// rate is ~0.28 and the observed live gap is ~0.01; a band of ±0.12
	// catches a wiring error (wrong client mapping, broken invalidation,
	// dead metadata plane) while tolerating the propagation gap.
	const tolerance = 0.12
	if diff := math.Abs(liveHit - simHit); diff > tolerance {
		t.Fatalf("live hit rate %.4f vs simulated %.4f: |diff| %.4f exceeds tolerance %.2f",
			liveHit, simHit, diff, tolerance)
	}

	// Local hit rates must agree too: both sides shard clients the same
	// way, so a mismatch here means the mapping diverged even if the
	// overall rates happen to align.
	liveLocal := float64(live.Local) / float64(live.Local+live.Remote+live.Miss)
	t.Logf("local hit rate: live %.4f vs simulated %.4f", liveLocal, simRep.LocalHitRatio)
	if diff := math.Abs(liveLocal - simRep.LocalHitRatio); diff > tolerance {
		t.Fatalf("local hit rate diverged: live %.4f vs simulated %.4f", liveLocal, simRep.LocalHitRatio)
	}
}
