package loadgen

import (
	"bytes"
	"testing"
	"time"
)

func mustParse(t *testing.T, text string) *Scenario {
	t.Helper()
	sc, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func mustSchedule(t *testing.T, sc *Scenario) *Schedule {
	t.Helper()
	sched, err := BuildSchedule(sc)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

// TestScheduleDeterministic pins the acceptance criterion: a fixed seed
// yields a byte-identical request schedule, for every shipped scenario.
func TestScheduleDeterministic(t *testing.T) {
	scs, err := Builtins()
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scs {
		a := mustSchedule(t, sc)
		b := mustSchedule(t, sc)
		ab, err := a.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		bb, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab, bb) {
			t.Fatalf("%s: same seed produced different schedules (%d vs %d bytes)", sc.Name, len(ab), len(bb))
		}
		fa, err := a.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		fb, _ := b.Fingerprint()
		if fa != fb {
			t.Fatalf("%s: fingerprints differ: %s vs %s", sc.Name, fa, fb)
		}

		// A different seed must change the schedule: reseed and rebuild.
		reseeded := *sc
		reseeded.Seed = sc.Seed + 1
		fc, err := mustSchedule(t, &reseeded).Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if fc == fa {
			t.Fatalf("%s: seed change did not change the schedule", sc.Name)
		}
	}
}

func TestPoissonScheduleShape(t *testing.T) {
	sc := mustParse(t, `
name shape
profile DEC
nodes 3
seed 9
phase steady 2s rate=50
phase spike 1s rate=200 hotset=8 hotfrac=1
phase ramp 2s rate=10..100
`)
	sched := mustSchedule(t, sc)

	last := time.Duration(-1)
	counts := make([]int, 3)
	for i := 0; i < sched.Len(); i++ {
		off := sched.Offsets[i]
		if off < last {
			t.Fatalf("offsets not monotonic at %d: %v after %v", i, off, last)
		}
		last = off
		if off < 0 || off > sc.Span() {
			t.Fatalf("offset %v outside run window %v", off, sc.Span())
		}
		pi := int(sched.Phases[i])
		if pi > 2 {
			t.Fatalf("request %d has phase %d", i, pi)
		}
		counts[pi]++
		start := sc.phaseStart(pi)
		if off < start || off > start+sc.Phases[pi].Dur {
			t.Fatalf("request %d (phase %s) at %v outside its phase window", i, sc.Phases[pi].Name, off)
		}
		if pi == 1 && sched.Objects[i] >= 8 {
			t.Fatalf("spike request %d hit object %d outside the hot set", i, sched.Objects[i])
		}
		if sched.Sizes[i] <= 0 {
			t.Fatalf("request %d has size %d", i, sched.Sizes[i])
		}
	}
	// Expected counts: 100, 200, 110; Poisson noise is a few sigma at most.
	expect := []int{100, 200, 110}
	for pi, want := range expect {
		got := counts[pi]
		if got < want/2 || got > want*2 {
			t.Fatalf("phase %d has %d arrivals, want ~%d", pi, got, want)
		}
	}
}

func TestRampScheduleLeansLate(t *testing.T) {
	sc := mustParse(t, `
name ramp
profile DEC
nodes 1
seed 4
phase up 4s rate=10..200
`)
	sched := mustSchedule(t, sc)
	var early, late int
	for _, off := range sched.Offsets {
		if off < 2*time.Second {
			early++
		} else {
			late++
		}
	}
	// Rate ramps 10→200, so the second half must hold well over half the
	// arrivals (expected ~147 vs ~62).
	if late <= early {
		t.Fatalf("ramp not ramping: %d early vs %d late arrivals", early, late)
	}
}

func TestTraceScheduleShape(t *testing.T) {
	sc := mustParse(t, `
name tr
profile DEC
nodes 2
seed 3
pacing trace
duration 2s
requests 500
`)
	sched := mustSchedule(t, sc)
	if sched.Len() == 0 || sched.Len() > 500 {
		t.Fatalf("trace schedule has %d requests", sched.Len())
	}
	last := time.Duration(-1)
	for i := 0; i < sched.Len(); i++ {
		off := sched.Offsets[i]
		if off < last || off > 2*time.Second {
			t.Fatalf("bad offset %v at %d (prev %v)", off, i, last)
		}
		last = off
		if sched.Phases[i] != 0 {
			t.Fatalf("trace pacing must map everything to phase 0, got %d", sched.Phases[i])
		}
	}
	// Deterministic here too.
	fa, err := sched.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := mustSchedule(t, sc).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Fatal("trace schedule not deterministic")
	}
}

func TestScheduleRejectsAbsurdRates(t *testing.T) {
	sc := mustParse(t, `
name huge
profile DEC
nodes 1
phase p 10s rate=10000000
`)
	if _, err := BuildSchedule(sc); err == nil {
		t.Fatal("BuildSchedule accepted a schedule beyond the request cap")
	}
}

// TestScheduleWireRoundTrip pins the framed schedule codec: Unmarshal of
// Marshal reproduces every column exactly (checked via re-marshal byte
// equality plus spot fields), and truncated or mislabeled frames are
// rejected.
func TestScheduleWireRoundTrip(t *testing.T) {
	sc := mustParse(t, `
name roundtrip
profile DEC
nodes 1
phase warm 2s rate=40
phase hot 2s rate=60 hotset=16
`)
	orig := mustSchedule(t, sc)
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Schedule
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("decoded %d requests, want %d", got.Len(), orig.Len())
	}
	redata, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(redata, data) {
		t.Fatal("re-marshal of decoded schedule differs from the original bytes")
	}
	last := orig.Len() - 1
	if got.Offsets[last] != orig.Offsets[last] || got.Objects[last] != orig.Objects[last] ||
		got.Clients[last] != orig.Clients[last] || got.Sizes[last] != orig.Sizes[last] ||
		got.Versions[last] != orig.Versions[last] || got.Phases[last] != orig.Phases[last] {
		t.Fatal("decoded columns diverge from the original schedule")
	}

	var bad Schedule
	if err := bad.UnmarshalBinary(data[:len(data)-1]); err == nil {
		t.Fatal("UnmarshalBinary accepted a truncated frame")
	}
	if err := bad.UnmarshalBinary(append([]byte(nil), data[:0]...)); err == nil {
		t.Fatal("UnmarshalBinary accepted an empty buffer")
	}
}
