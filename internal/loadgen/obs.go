package loadgen

import (
	"net/http"
	"time"

	"beyondcache/internal/obs"
	"beyondcache/internal/wire"
)

// BenchObs is the per-scenario observability section of a bench row: what
// the metadata-freshness and tracing planes recorded while the scenario
// ran. It is measured by scraping every node's /metrics right before and
// right after the measured window and diffing the parsed histograms — the
// same snapshot arithmetic cachetop uses live, so the bench artifact and
// the inspector can never disagree about what a run looked like.
type BenchObs struct {
	// HintPropagation* summarize beyondcache_hint_propagation_seconds
	// (hint-batch age at receipt) across every node over the window.
	HintPropagationCount int64   `json:"hint_propagation_count"`
	HintPropagationP50Ms float64 `json:"hint_propagation_p50_ms"`
	HintPropagationP99Ms float64 `json:"hint_propagation_p99_ms"`
	// SpansRecorded and TracesSampled total the tracing plane's output
	// over the window (structured spans and /debug/traces entries).
	SpansRecorded int64 `json:"spans_recorded"`
	TracesSampled int64 `json:"traces_sampled"`
	// DirectoryLagObjects sums the fleet's directory lag gauges at the end
	// of the run: updates still enqueued but undelivered when load stopped.
	DirectoryLagObjects float64 `json:"directory_lag_objects"`
}

// obsScrapeClient bounds one observability scrape; a node that cannot
// answer in this window is skipped rather than stalling the run report.
var obsScrapeClient = &http.Client{Timeout: 5 * time.Second}

// captureExpos scrapes and parses every target's /metrics. A slot is nil
// when that node's scrape failed; summarizeObs skips those pairs. One body
// buffer is reused across targets (wire.ReadAllInto), so a sweep reads
// every exposition through a single allocation that grows to the largest
// body.
func captureExpos(targets []string) []*obs.Exposition {
	out := make([]*obs.Exposition, len(targets))
	var body []byte
	for i, base := range targets {
		resp, err := obsScrapeClient.Get(base + "/metrics")
		if err != nil {
			continue
		}
		body, err = wire.ReadAllInto(body[:0], resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		if p, err := obs.ParseExposition(string(body)); err == nil {
			out[i] = p
		}
	}
	return out
}

// aggregateOf returns a family's unlabeled (aggregate) histogram snapshot.
func aggregateOf(p *obs.Exposition, family string) (obs.HistogramSnapshot, bool) {
	for _, h := range p.HistogramsOf(family) {
		if len(h.Labels) == 0 {
			return h.Snapshot, true
		}
	}
	return obs.HistogramSnapshot{}, false
}

// summarizeObs folds two capture rounds into the bench row's observability
// section, or nil when no node was scrapable on both sides.
func summarizeObs(before, after []*obs.Exposition) *BenchObs {
	var o BenchObs
	var lag *obs.Histogram
	pairs := 0
	for i := range after {
		if i >= len(before) || before[i] == nil || after[i] == nil {
			continue
		}
		pairs++
		if b, okB := aggregateOf(before[i], "beyondcache_hint_propagation_seconds"); okB {
			if a, okA := aggregateOf(after[i], "beyondcache_hint_propagation_seconds"); okA {
				if d, err := a.Diff(b); err == nil {
					if lag == nil {
						lag = obs.NewHistogram(d.Bounds)
					}
					// Bounds all come from the same family; a mismatch
					// (mid-run binary swap) just drops this node's share.
					_ = lag.Merge(d)
				}
			}
		}
		counter := func(name string) int64 {
			a, _ := after[i].Value(name)
			b, _ := before[i].Value(name)
			return int64(a - b)
		}
		o.SpansRecorded += counter("beyondcache_spans_recorded_total")
		o.TracesSampled += counter("beyondcache_traces_sampled_total")
		if v, ok := after[i].Value("beyondcache_hint_directory_lag_objects"); ok {
			o.DirectoryLagObjects += v
		}
	}
	if pairs == 0 {
		return nil
	}
	if lag != nil {
		o.HintPropagationCount = lag.Count()
		o.HintPropagationP50Ms = ms(lag.Quantile(0.50))
		o.HintPropagationP99Ms = ms(lag.Quantile(0.99))
	}
	return &o
}
