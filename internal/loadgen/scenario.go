// Package loadgen is the wire-level load plane of the prototype: an
// open-loop, coordinated-omission-safe HTTP load driver that replays the
// paper's synthetic workloads against a live cache fleet, and a scenario
// matrix on top of it — flash crowds, diurnal ramps, partitions that heal,
// origin brownouts, and mass-invalidation storms — each written as a small
// declarative text spec with acceptance bounds.
//
// The pieces compose like the rest of the repository: scenarios parse into
// a deterministic request Schedule (fixed seed ⇒ byte-identical schedule),
// the Driver replays the schedule against node /fetch endpoints pacing by
// intended arrival time (never by response completion, so a stalled server
// cannot hide queueing delay from the recorded latencies), per-phase
// latencies land in the same obs.Histogram the nodes export on /metrics,
// and the Runner boots an internal/cluster fleet, applies the scenario's
// fault/origin/invalidate timeline mid-run via the internal/faults DSL, and
// emits one BENCH_load.json row per scenario.
package loadgen

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Phase is one contiguous window of a scenario's arrival process. Arrivals
// within a phase are Poisson at Rate (ramping linearly to RateEnd when it
// differs). A hot-set phase redirects HotFrac of its arrivals onto the
// HotSet most popular objects with Zipf skew HotAlpha — the flash-crowd
// shape: a rate spike concentrated on few objects.
type Phase struct {
	// Name labels the phase in reports and acceptance bounds.
	Name string
	// Dur is the phase's wall-clock length.
	Dur time.Duration
	// Rate is the arrival rate in requests/second at phase start; RateEnd,
	// when positive and different, ramps the rate linearly across the
	// phase (diurnal ramps). RateEnd == 0 means constant Rate.
	Rate    float64
	RateEnd float64
	// HotSet > 0 concentrates the phase on the HotSet most popular objects
	// (object IDs are popularity ranks); HotAlpha is the Zipf skew of
	// draws inside the hot set (default 1.0); HotFrac is the fraction of
	// arrivals redirected onto it (default 1.0).
	HotSet   int
	HotAlpha float64
	HotFrac  float64
}

// FaultEvent re-specs the fleet's fault plane At after the run starts. The
// spec is the internal/faults DSL with node names ("node-1") and "origin"
// as targets; the runner rewrites them to live host:port addresses. An
// empty spec heals everything.
type FaultEvent struct {
	At   time.Duration
	Spec string
}

// OriginEvent changes the origin's artificial service latency At after the
// run starts (origin brownout and recovery).
type OriginEvent struct {
	At      time.Duration
	Latency time.Duration
}

// InvalidateEvent bumps the origin version of the Count most popular
// objects At after the run starts and purges every cached copy — a
// mass-invalidation storm.
type InvalidateEvent struct {
	At    time.Duration
	Count int
}

// KillEvent shuts fleet node Node down At after the run starts and leaves
// it down for the rest of the run — the crash a partitioned hint directory
// (hint-partition) must detect and re-home around while load continues.
// Requests the driver routes at the dead node fail and are recorded like
// any other error.
type KillEvent struct {
	At   time.Duration
	Node int
}

// RestartEvent stops fleet node Node At after the run starts and boots a
// replacement on the same address — and, with disk-tier enabled, the same
// cache directory, so the replacement recovers its population from disk and
// republishes it into the hint plane while load continues.
type RestartEvent struct {
	At   time.Duration
	Node int
}

// Bound is one acceptance bound over the run's measured results:
//
//	accept <metric> [phase...] <=|>= <value>
//
// Metrics: p50/p95/p99 (one optional phase arg; durations), p99_ratio
// (two phase args; dimensionless), hit_rate / error_rate (one optional
// phase arg; fractions), reqps (one optional phase arg; requests/second).
type Bound struct {
	Metric string
	Args   []string
	Op     string // "<=" or ">="
	// Value is the threshold; duration-valued metrics store seconds.
	Value float64
	// IsDur records that Value was written as a duration, for Format.
	IsDur bool
}

// Expr renders the bound in spec syntax.
func (b Bound) Expr() string {
	var sb strings.Builder
	sb.WriteString(b.Metric)
	for _, a := range b.Args {
		sb.WriteByte(' ')
		sb.WriteString(a)
	}
	sb.WriteByte(' ')
	sb.WriteString(b.Op)
	sb.WriteByte(' ')
	if b.IsDur {
		sb.WriteString(time.Duration(b.Value * float64(time.Second)).String())
	} else {
		sb.WriteString(strconv.FormatFloat(b.Value, 'g', -1, 64))
	}
	return sb.String()
}

// Scenario is one parsed load scenario.
type Scenario struct {
	// Name labels the scenario (bench rows, CLI selection).
	Name string
	// Profile picks the workload the request stream is drawn from: "DEC",
	// "Berkeley", or "Prodigy". Scale scales the published trace size
	// (object population, client count); the request COUNT comes from the
	// phases' rates, not the profile.
	Profile string
	Scale   float64
	// Nodes is the fleet size.
	Nodes int
	// Seed fixes all schedule randomness (arrivals, hot-set draws).
	Seed int64
	// Workers bounds the driver's concurrent in-flight requests (0 = 64).
	Workers int
	// Pacing selects the arrival process: "poisson" (default) derives
	// arrivals from the phases' rates; "trace" rescales the profile's own
	// virtual timestamps onto Duration (the measured-vs-simulated
	// validation mode) and requires exactly one phase with no rate.
	Pacing string
	// Duration is the wall window for trace pacing (unused for poisson).
	Duration time.Duration
	// Requests trims the trace to its first N requests (trace pacing).
	Requests int
	// StrongConsistency makes the driver advance origin versions along
	// the trace and purge stale copies, emulating the simulator's
	// invalidation-based consistency (validation mode).
	StrongConsistency bool
	// OriginLatency is the origin's baseline artificial service latency.
	OriginLatency time.Duration
	// HedgeBudget passes through to every node (0 = node default 50ms,
	// the "hedging enabled" configuration; negative disables hedging).
	HedgeBudget time.Duration
	// UpdateInterval is the fleet's metadata exchange interval (0 = 100ms).
	UpdateInterval time.Duration
	// CacheBytes and HintEntries bound each node (0 = node defaults).
	CacheBytes  int64
	HintEntries int
	// HintPartition > 0 switches the fleet to the partitioned hint
	// directory (Plaxton-routed hint homes, DESIGN.md §14) with an
	// owner-set size of HintPartition replicas per object; 0 keeps the
	// default full broadcast.
	HintPartition int
	// DiskTier gives every node a persistent disk tier in a run-scoped
	// temporary directory: memory evictions spill to disk, and a restart
	// event's replacement node recovers the population from it.
	DiskTier bool
	// Warmup issues the first N schedule requests closed-loop and
	// unrecorded before the measured run, pre-filling caches.
	Warmup int

	Phases       []Phase
	Faults       []FaultEvent
	OriginEvents []OriginEvent
	Invalidates  []InvalidateEvent
	Restarts     []RestartEvent
	Kills        []KillEvent
	Bounds       []Bound
}

// Span returns the measured run's wall window: the phase durations summed
// (poisson pacing) or Duration (trace pacing).
func (s *Scenario) Span() time.Duration {
	if s.Pacing == "trace" {
		return s.Duration
	}
	var d time.Duration
	for _, p := range s.Phases {
		d += p.Dur
	}
	return d
}

// PhaseIndex returns the index of the named phase, or -1.
func (s *Scenario) PhaseIndex(name string) int {
	for i, p := range s.Phases {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// phaseStart returns the wall offset at which phase i begins.
func (s *Scenario) phaseStart(i int) time.Duration {
	var d time.Duration
	for _, p := range s.Phases[:i] {
		d += p.Dur
	}
	return d
}

// boundMetrics lists the accepted bound metrics and their phase-arg counts
// (-1 = zero or one arg).
var boundMetrics = map[string]int{
	"p50": -1, "p95": -1, "p99": -1,
	"p99_ratio": 2,
	"hit_rate":  -1, "error_rate": -1, "reqps": -1,
}

// durationMetric reports whether a metric's threshold is a duration.
func durationMetric(m string) bool {
	return m == "p50" || m == "p95" || m == "p99"
}

// Parse reads a scenario from its text form. The format is line-oriented:
// '#' starts a comment, blank lines are skipped, and each line is a
// keyword followed by space-separated fields (see the scenarios/ directory
// for the matrix this repo ships). Parse validates cross-field constraints
// so a scenario that parses is runnable.
func Parse(text string) (*Scenario, error) {
	sc := &Scenario{}
	seen := map[string]bool{}
	for ln, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		key, args := fields[0], fields[1:]
		// Singleton keys may appear once; phase/fault/origin-at/invalidate/
		// accept accumulate.
		switch key {
		case "phase", "fault", "heal", "origin-at", "invalidate", "restart", "kill", "accept":
		default:
			if seen[key] {
				return nil, fmt.Errorf("loadgen: line %d: duplicate %q", ln+1, key)
			}
			seen[key] = true
		}
		var err error
		switch key {
		case "name":
			err = oneWord(args, &sc.Name)
		case "profile":
			err = oneWord(args, &sc.Profile)
		case "pacing":
			err = oneWord(args, &sc.Pacing)
		case "scale":
			err = oneFloat(args, &sc.Scale)
		case "nodes":
			err = oneInt(args, &sc.Nodes)
		case "seed":
			var v int
			if err = oneInt(args, &v); err == nil {
				sc.Seed = int64(v)
			}
		case "workers":
			err = oneInt(args, &sc.Workers)
		case "requests":
			err = oneInt(args, &sc.Requests)
		case "warmup":
			err = oneInt(args, &sc.Warmup)
		case "duration":
			err = oneDur(args, &sc.Duration)
		case "origin-latency":
			err = oneDur(args, &sc.OriginLatency)
		case "hedge-budget":
			err = oneDur(args, &sc.HedgeBudget)
		case "update-interval":
			err = oneDur(args, &sc.UpdateInterval)
		case "cache-bytes":
			var v int
			if err = oneInt(args, &v); err == nil {
				sc.CacheBytes = int64(v)
			}
		case "hint-entries":
			err = oneInt(args, &sc.HintEntries)
		case "hint-partition":
			err = oneInt(args, &sc.HintPartition)
		case "disk-tier":
			var w string
			if err = oneWord(args, &w); err == nil {
				switch w {
				case "true":
					sc.DiskTier = true
				case "false":
				default:
					err = fmt.Errorf("want true or false, got %q", w)
				}
			}
		case "strong-consistency":
			var w string
			if err = oneWord(args, &w); err == nil {
				switch w {
				case "true":
					sc.StrongConsistency = true
				case "false":
				default:
					err = fmt.Errorf("want true or false, got %q", w)
				}
			}
		case "phase":
			var p Phase
			if p, err = parsePhase(args); err == nil {
				if sc.PhaseIndex(p.Name) >= 0 {
					err = fmt.Errorf("duplicate phase %q", p.Name)
				} else {
					sc.Phases = append(sc.Phases, p)
				}
			}
		case "fault":
			if len(args) < 2 {
				err = fmt.Errorf("want: fault <offset> <spec>")
				break
			}
			var at time.Duration
			if at, err = time.ParseDuration(args[0]); err != nil {
				break
			}
			sc.Faults = append(sc.Faults, FaultEvent{At: at, Spec: strings.Join(args[1:], " ")})
		case "heal":
			var at time.Duration
			if at, err = oneDurVal(args); err == nil {
				sc.Faults = append(sc.Faults, FaultEvent{At: at})
			}
		case "origin-at":
			if len(args) != 2 {
				err = fmt.Errorf("want: origin-at <offset> <latency>")
				break
			}
			var ev OriginEvent
			if ev.At, err = time.ParseDuration(args[0]); err != nil {
				break
			}
			if ev.Latency, err = time.ParseDuration(args[1]); err != nil {
				break
			}
			sc.OriginEvents = append(sc.OriginEvents, ev)
		case "invalidate":
			if len(args) != 2 {
				err = fmt.Errorf("want: invalidate <offset> <count>")
				break
			}
			var ev InvalidateEvent
			if ev.At, err = time.ParseDuration(args[0]); err != nil {
				break
			}
			if ev.Count, err = strconv.Atoi(args[1]); err != nil {
				break
			}
			if ev.Count <= 0 {
				err = fmt.Errorf("invalidate count must be positive, got %d", ev.Count)
				break
			}
			sc.Invalidates = append(sc.Invalidates, ev)
		case "restart":
			if len(args) != 2 {
				err = fmt.Errorf("want: restart <offset> <node>")
				break
			}
			var ev RestartEvent
			if ev.At, err = time.ParseDuration(args[0]); err != nil {
				break
			}
			if ev.Node, err = strconv.Atoi(args[1]); err != nil {
				break
			}
			sc.Restarts = append(sc.Restarts, ev)
		case "kill":
			if len(args) != 2 {
				err = fmt.Errorf("want: kill <offset> <node>")
				break
			}
			var ev KillEvent
			if ev.At, err = time.ParseDuration(args[0]); err != nil {
				break
			}
			if ev.Node, err = strconv.Atoi(args[1]); err != nil {
				break
			}
			sc.Kills = append(sc.Kills, ev)
		case "accept":
			var b Bound
			if b, err = parseBound(args); err == nil {
				sc.Bounds = append(sc.Bounds, b)
			}
		default:
			err = fmt.Errorf("unknown keyword %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("loadgen: line %d (%s): %w", ln+1, key, err)
		}
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// parsePhase parses "name dur [rate=R | rate=R..R2] [hotset=N]
// [hotalpha=F] [hotfrac=F]".
func parsePhase(args []string) (Phase, error) {
	if len(args) < 2 {
		return Phase{}, fmt.Errorf("want: phase <name> <dur> [opts]")
	}
	p := Phase{Name: args[0]}
	if !wordOK(p.Name) {
		return Phase{}, fmt.Errorf("bad phase name %q", p.Name)
	}
	var err error
	if p.Dur, err = time.ParseDuration(args[1]); err != nil {
		return Phase{}, err
	}
	if p.Dur <= 0 {
		return Phase{}, fmt.Errorf("phase %q duration must be positive", p.Name)
	}
	for _, opt := range args[2:] {
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			return Phase{}, fmt.Errorf("phase option %q: want key=value", opt)
		}
		switch key {
		case "rate":
			lo, hi, ramp := strings.Cut(val, "..")
			if p.Rate, err = parseFinite(lo); err != nil {
				return Phase{}, fmt.Errorf("rate: %w", err)
			}
			if ramp {
				if p.RateEnd, err = parseFinite(hi); err != nil {
					return Phase{}, fmt.Errorf("rate end: %w", err)
				}
			}
		case "hotset":
			if p.HotSet, err = strconv.Atoi(val); err != nil {
				return Phase{}, fmt.Errorf("hotset: %w", err)
			}
		case "hotalpha":
			if p.HotAlpha, err = parseFinite(val); err != nil {
				return Phase{}, fmt.Errorf("hotalpha: %w", err)
			}
		case "hotfrac":
			if p.HotFrac, err = parseFinite(val); err != nil {
				return Phase{}, fmt.Errorf("hotfrac: %w", err)
			}
		default:
			return Phase{}, fmt.Errorf("unknown phase option %q", key)
		}
	}
	return p, nil
}

// parseBound parses "<metric> [args...] <op> <value>".
func parseBound(args []string) (Bound, error) {
	if len(args) < 3 {
		return Bound{}, fmt.Errorf("want: accept <metric> [phase...] <= <value>")
	}
	b := Bound{Metric: args[0], Args: args[1 : len(args)-2], Op: args[len(args)-2]}
	if len(b.Args) == 0 {
		b.Args = nil // canonical: Format/Parse round-trips to the same value
	}
	want, ok := boundMetrics[b.Metric]
	if !ok {
		return Bound{}, fmt.Errorf("unknown metric %q", b.Metric)
	}
	if want >= 0 && len(b.Args) != want {
		return Bound{}, fmt.Errorf("metric %s wants %d phase args, got %d", b.Metric, want, len(b.Args))
	}
	if want < 0 && len(b.Args) > 1 {
		return Bound{}, fmt.Errorf("metric %s wants at most one phase arg, got %d", b.Metric, len(b.Args))
	}
	for _, a := range b.Args {
		if !wordOK(a) {
			return Bound{}, fmt.Errorf("bad phase arg %q", a)
		}
	}
	if b.Op != "<=" && b.Op != ">=" {
		return Bound{}, fmt.Errorf("bad op %q (want <= or >=)", b.Op)
	}
	raw := args[len(args)-1]
	if durationMetric(b.Metric) {
		d, err := time.ParseDuration(raw)
		if err != nil {
			return Bound{}, fmt.Errorf("metric %s wants a duration threshold: %w", b.Metric, err)
		}
		if d < 0 {
			return Bound{}, fmt.Errorf("metric %s threshold must be >= 0", b.Metric)
		}
		b.Value = d.Seconds()
		b.IsDur = true
	} else {
		v, err := parseFinite(raw)
		if err != nil {
			return Bound{}, fmt.Errorf("threshold: %w", err)
		}
		b.Value = v
	}
	return b, nil
}

// Validate reports the first cross-field error, or nil.
func (s *Scenario) Validate() error {
	if !wordOK(s.Name) {
		return fmt.Errorf("loadgen: scenario needs a name")
	}
	switch s.Profile {
	case "DEC", "Berkeley", "Prodigy":
	case "":
		return fmt.Errorf("loadgen: %s: profile required (DEC, Berkeley, or Prodigy)", s.Name)
	default:
		return fmt.Errorf("loadgen: %s: unknown profile %q", s.Name, s.Profile)
	}
	if s.Scale < 0 || s.Scale > 1 {
		return fmt.Errorf("loadgen: %s: scale %g outside [0,1]", s.Name, s.Scale)
	}
	if s.Nodes <= 0 {
		return fmt.Errorf("loadgen: %s: nodes must be positive", s.Name)
	}
	if s.Workers < 0 || s.Requests < 0 || s.Warmup < 0 || s.HintEntries < 0 || s.CacheBytes < 0 {
		return fmt.Errorf("loadgen: %s: negative counts", s.Name)
	}
	if s.OriginLatency < 0 || s.UpdateInterval < 0 || s.Duration < 0 {
		return fmt.Errorf("loadgen: %s: negative durations", s.Name)
	}
	if s.HintPartition < 0 || s.HintPartition > 8 {
		return fmt.Errorf("loadgen: %s: hint-partition %d outside [0,8] replicas", s.Name, s.HintPartition)
	}
	if len(s.Phases) > 255 {
		return fmt.Errorf("loadgen: %s: at most 255 phases", s.Name)
	}
	switch s.Pacing {
	case "", "poisson":
		if len(s.Phases) == 0 {
			return fmt.Errorf("loadgen: %s: poisson pacing needs at least one phase", s.Name)
		}
		for _, p := range s.Phases {
			if p.Rate <= 0 {
				return fmt.Errorf("loadgen: %s: phase %q needs rate > 0", s.Name, p.Name)
			}
			if p.RateEnd < 0 {
				return fmt.Errorf("loadgen: %s: phase %q rate end must be >= 0", s.Name, p.Name)
			}
			if p.HotSet < 0 || p.HotAlpha < 0 {
				return fmt.Errorf("loadgen: %s: phase %q hot-set params must be >= 0", s.Name, p.Name)
			}
			if p.HotFrac < 0 || p.HotFrac > 1 {
				return fmt.Errorf("loadgen: %s: phase %q hotfrac outside [0,1]", s.Name, p.Name)
			}
		}
	case "trace":
		if s.Duration <= 0 {
			return fmt.Errorf("loadgen: %s: trace pacing needs a duration", s.Name)
		}
		if len(s.Phases) > 1 {
			return fmt.Errorf("loadgen: %s: trace pacing takes at most one phase", s.Name)
		}
		for _, p := range s.Phases {
			if p.Rate != 0 || p.RateEnd != 0 || p.HotSet != 0 {
				return fmt.Errorf("loadgen: %s: trace pacing ignores rates and hot sets; drop them", s.Name)
			}
		}
	default:
		return fmt.Errorf("loadgen: %s: unknown pacing %q (want poisson or trace)", s.Name, s.Pacing)
	}
	span := s.Span()
	for _, e := range s.Faults {
		if e.At < 0 || e.At > span {
			return fmt.Errorf("loadgen: %s: fault offset %v outside the run window %v", s.Name, e.At, span)
		}
		if _, err := parseFaultsSpec(e.Spec); err != nil {
			return fmt.Errorf("loadgen: %s: %w", s.Name, err)
		}
	}
	for _, e := range s.OriginEvents {
		if e.At < 0 || e.At > span {
			return fmt.Errorf("loadgen: %s: origin-at offset %v outside the run window %v", s.Name, e.At, span)
		}
		if e.Latency < 0 {
			return fmt.Errorf("loadgen: %s: origin-at latency must be >= 0", s.Name)
		}
	}
	for _, e := range s.Invalidates {
		if e.At < 0 || e.At > span {
			return fmt.Errorf("loadgen: %s: invalidate offset %v outside the run window %v", s.Name, e.At, span)
		}
	}
	for _, e := range s.Restarts {
		if e.At < 0 || e.At > span {
			return fmt.Errorf("loadgen: %s: restart offset %v outside the run window %v", s.Name, e.At, span)
		}
		if e.Node < 0 || e.Node >= s.Nodes {
			return fmt.Errorf("loadgen: %s: restart names node %d of a %d-node fleet", s.Name, e.Node, s.Nodes)
		}
	}
	if len(s.Restarts) > 0 && (len(s.Invalidates) > 0 || len(s.Faults) > 0 || s.StrongConsistency) {
		// A restart swaps the fleet's node slot mid-run; the purge fan-out
		// behind invalidations/strong consistency and the fault re-spec
		// walk that slot concurrently.
		return fmt.Errorf("loadgen: %s: restart events cannot combine with fault or invalidation events or strong consistency", s.Name)
	}
	killed := map[int]bool{}
	for _, e := range s.Kills {
		if e.At < 0 || e.At > span {
			return fmt.Errorf("loadgen: %s: kill offset %v outside the run window %v", s.Name, e.At, span)
		}
		if e.Node < 0 || e.Node >= s.Nodes {
			return fmt.Errorf("loadgen: %s: kill names node %d of a %d-node fleet", s.Name, e.Node, s.Nodes)
		}
		if killed[e.Node] {
			return fmt.Errorf("loadgen: %s: node %d killed twice", s.Name, e.Node)
		}
		killed[e.Node] = true
	}
	if len(s.Kills) > 0 && (len(s.Restarts) > 0 || len(s.Invalidates) > 0 || s.StrongConsistency) {
		// A killed node stays dead: the purge fan-out behind invalidations
		// and strong consistency would error against it, and a restart of
		// the same fleet races the kill bookkeeping.
		return fmt.Errorf("loadgen: %s: kill events cannot combine with restart or invalidation events or strong consistency", s.Name)
	}
	if len(s.Kills) >= s.Nodes {
		return fmt.Errorf("loadgen: %s: kill events would take down the whole %d-node fleet", s.Name, s.Nodes)
	}
	for _, b := range s.Bounds {
		for _, a := range b.Args {
			if s.PhaseIndex(a) < 0 {
				return fmt.Errorf("loadgen: %s: bound %q names unknown phase %q", s.Name, b.Expr(), a)
			}
		}
	}
	return nil
}

// Format renders the scenario back to its canonical text form. Parsing the
// result yields an identical scenario (the fuzz target pins this).
func (s *Scenario) Format() string {
	var sb strings.Builder
	line := func(key string, vals ...string) {
		sb.WriteString(key)
		for _, v := range vals {
			sb.WriteByte(' ')
			sb.WriteString(v)
		}
		sb.WriteByte('\n')
	}
	line("name", s.Name)
	line("profile", s.Profile)
	if s.Scale != 0 {
		line("scale", strconv.FormatFloat(s.Scale, 'g', -1, 64))
	}
	line("nodes", strconv.Itoa(s.Nodes))
	line("seed", strconv.FormatInt(s.Seed, 10))
	if s.Workers != 0 {
		line("workers", strconv.Itoa(s.Workers))
	}
	if s.Pacing != "" {
		line("pacing", s.Pacing)
	}
	if s.Duration != 0 {
		line("duration", s.Duration.String())
	}
	if s.Requests != 0 {
		line("requests", strconv.Itoa(s.Requests))
	}
	if s.Warmup != 0 {
		line("warmup", strconv.Itoa(s.Warmup))
	}
	if s.StrongConsistency {
		line("strong-consistency", "true")
	}
	if s.OriginLatency != 0 {
		line("origin-latency", s.OriginLatency.String())
	}
	if s.HedgeBudget != 0 {
		line("hedge-budget", s.HedgeBudget.String())
	}
	if s.UpdateInterval != 0 {
		line("update-interval", s.UpdateInterval.String())
	}
	if s.CacheBytes != 0 {
		line("cache-bytes", strconv.FormatInt(s.CacheBytes, 10))
	}
	if s.HintEntries != 0 {
		line("hint-entries", strconv.Itoa(s.HintEntries))
	}
	if s.HintPartition != 0 {
		line("hint-partition", strconv.Itoa(s.HintPartition))
	}
	if s.DiskTier {
		line("disk-tier", "true")
	}
	for _, p := range s.Phases {
		vals := []string{p.Name, p.Dur.String()}
		if p.Rate != 0 {
			r := "rate=" + strconv.FormatFloat(p.Rate, 'g', -1, 64)
			if p.RateEnd != 0 {
				r += ".." + strconv.FormatFloat(p.RateEnd, 'g', -1, 64)
			}
			vals = append(vals, r)
		}
		if p.HotSet != 0 {
			vals = append(vals, "hotset="+strconv.Itoa(p.HotSet))
		}
		if p.HotAlpha != 0 {
			vals = append(vals, "hotalpha="+strconv.FormatFloat(p.HotAlpha, 'g', -1, 64))
		}
		if p.HotFrac != 0 {
			vals = append(vals, "hotfrac="+strconv.FormatFloat(p.HotFrac, 'g', -1, 64))
		}
		line("phase", vals...)
	}
	for _, e := range s.Faults {
		if e.Spec == "" {
			line("heal", e.At.String())
		} else {
			line("fault", e.At.String(), e.Spec)
		}
	}
	for _, e := range s.OriginEvents {
		line("origin-at", e.At.String(), e.Latency.String())
	}
	for _, e := range s.Invalidates {
		line("invalidate", e.At.String(), strconv.Itoa(e.Count))
	}
	for _, e := range s.Restarts {
		line("restart", e.At.String(), strconv.Itoa(e.Node))
	}
	for _, e := range s.Kills {
		line("kill", e.At.String(), strconv.Itoa(e.Node))
	}
	for _, b := range s.Bounds {
		line("accept", b.Expr())
	}
	return sb.String()
}

// wordOK reports whether s is a bare identifier-ish word: non-empty,
// printable, no whitespace, '#', or '='.
func wordOK(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r <= ' ' || r == '#' || r == '=' || r > '~' {
			return false
		}
	}
	return true
}

func oneWord(args []string, dst *string) error {
	if len(args) != 1 || !wordOK(args[0]) {
		return fmt.Errorf("want one word, got %q", strings.Join(args, " "))
	}
	*dst = args[0]
	return nil
}

func oneInt(args []string, dst *int) error {
	if len(args) != 1 {
		return fmt.Errorf("want one integer, got %q", strings.Join(args, " "))
	}
	v, err := strconv.Atoi(args[0])
	if err != nil {
		return err
	}
	*dst = v
	return nil
}

func oneFloat(args []string, dst *float64) error {
	if len(args) != 1 {
		return fmt.Errorf("want one number, got %q", strings.Join(args, " "))
	}
	v, err := parseFinite(args[0])
	if err != nil {
		return err
	}
	*dst = v
	return nil
}

// parseFinite parses a float but rejects NaN and infinities: no scenario
// field means anything with them, and NaN never compares equal to itself,
// which would break the canonical Parse/Format round trip.
func parseFinite(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %q", s)
	}
	return v, nil
}

func oneDur(args []string, dst *time.Duration) error {
	v, err := oneDurVal(args)
	if err != nil {
		return err
	}
	*dst = v
	return nil
}

func oneDurVal(args []string) (time.Duration, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("want one duration, got %q", strings.Join(args, " "))
	}
	return time.ParseDuration(args[0])
}

// sortedEventOffsets returns every timed event's offset, ordered — handy
// for tests and docs.
func (s *Scenario) sortedEventOffsets() []time.Duration {
	var out []time.Duration
	for _, e := range s.Faults {
		out = append(out, e.At)
	}
	for _, e := range s.OriginEvents {
		out = append(out, e.At)
	}
	for _, e := range s.Invalidates {
		out = append(out, e.At)
	}
	for _, e := range s.Restarts {
		out = append(out, e.At)
	}
	for _, e := range s.Kills {
		out = append(out, e.At)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
