package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"beyondcache/internal/obs"
)

// uniformSchedule builds n requests spaced evenly by step, all phase 0.
func uniformSchedule(n int, step time.Duration) *Schedule {
	s := &Schedule{
		Offsets:  make([]time.Duration, n),
		Phases:   make([]uint8, n),
		Objects:  make([]uint64, n),
		Clients:  make([]int32, n),
		Sizes:    make([]int64, n),
		Versions: make([]int64, n),
	}
	for i := 0; i < n; i++ {
		s.Offsets[i] = time.Duration(i) * step
		s.Objects[i] = uint64(i % 32)
		s.Clients[i] = int32(i)
		s.Sizes[i] = 100
		s.Versions[i] = 1
	}
	return s
}

// countAtLeast sums the histogram samples whose bucket lies entirely at or
// above min (i.e. the bucket's lower bound >= min) — a conservative count
// of observations >= min.
func countAtLeast(h obs.HistogramSnapshot, min time.Duration) int64 {
	var n int64
	for i, c := range h.Counts {
		// Bucket i covers (Bounds[i-1], Bounds[i]]; the overflow bucket
		// starts above the last bound.
		if i > 0 && h.Bounds[i-1] >= min {
			n += c
		}
	}
	return n
}

// TestCoordinatedOmissionNotHidden is the regression test for the driver's
// core property. The server stalls every in-flight request for a window
// mid-run; with only a few workers, a closed-loop driver would record the
// stall on just those few requests and measure everything issued afterwards
// as fast. The open-loop driver measures from intended arrival instead, so
// all the requests whose send was delayed by the stall must surface the
// queueing delay in the recorded latencies.
func TestCoordinatedOmissionNotHidden(t *testing.T) {
	var stalled atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if stalled.Load() {
			time.Sleep(250 * time.Millisecond)
		}
		w.Header().Set("X-Cache", "LOCAL")
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	const n = 600
	sched := uniformSchedule(n, time.Millisecond) // 600ms span
	const workers = 4

	go func() {
		time.Sleep(50 * time.Millisecond)
		stalled.Store(true)
		time.Sleep(250 * time.Millisecond)
		stalled.Store(false)
	}()

	res, err := RunSchedule(context.Background(), sched, DriverConfig{
		Targets: []string{srv.URL},
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall.Requests != n {
		t.Fatalf("issued %d of %d requests", res.Overall.Requests, n)
	}
	if res.Overall.Errors != 0 {
		t.Fatalf("%d errors", res.Overall.Errors)
	}

	// Roughly 250 intended arrivals fall inside the stall window but only
	// `workers` requests can be in flight, so the rest queue and their
	// recorded latency must include the wait. A closed-loop driver would
	// show at most ~2*workers samples over 100ms; require far more than
	// that could ever produce.
	slow := countAtLeast(res.Overall.Hist, 100*time.Millisecond)
	if slow < 10*workers {
		t.Fatalf("only %d samples >= 100ms; the stall's queueing delay was hidden (coordinated omission)", slow)
	}
	if p99 := res.Overall.Hist.Quantile(0.99); p99 < 100*time.Millisecond {
		t.Fatalf("p99 %v does not reflect the stall", p99)
	}
}

func TestDriverClassifiesAndPartitionsPhases(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch hits.Add(1) % 3 {
		case 0:
			w.Header().Set("X-Cache", "LOCAL hint")
		case 1:
			w.Header().Set("X-Cache", "REMOTE")
		default:
			w.Header().Set("X-Cache", "MISS")
		}
		w.Write([]byte("x"))
	}))
	defer srv.Close()

	sched := uniformSchedule(90, 100*time.Microsecond)
	for i := 45; i < 90; i++ {
		sched.Phases[i] = 1
	}
	res, err := RunSchedule(context.Background(), sched, DriverConfig{
		Targets:   []string{srv.URL},
		Workers:   8,
		NumPhases: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 2 || res.Phases[0].Requests != 45 || res.Phases[1].Requests != 45 {
		t.Fatalf("phase partition wrong: %+v", res.Phases)
	}
	o := res.Overall
	if o.Local+o.Remote+o.Miss != 90 || o.Local != 30 || o.Remote != 30 || o.Miss != 30 {
		t.Fatalf("classification wrong: local=%d remote=%d miss=%d", o.Local, o.Remote, o.Miss)
	}
	if got := o.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit rate = %v, want 2/3", got)
	}
	if o.Bytes != 90 {
		t.Fatalf("bytes = %d", o.Bytes)
	}
	if o.Hist.Count() != 90 {
		t.Fatalf("histogram holds %d samples", o.Hist.Count())
	}
}

func TestDriverCountsErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()

	sched := uniformSchedule(20, 0)
	res, err := RunSchedule(context.Background(), sched, DriverConfig{Targets: []string{srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall.Errors != 20 {
		t.Fatalf("errors = %d, want 20", res.Overall.Errors)
	}
	if got := res.Overall.ErrorRate(); got != 1 {
		t.Fatalf("error rate = %v", got)
	}
	// Failed requests still contribute latency samples: a driver that
	// drops them would understate tail latency under faults.
	if res.Overall.Hist.Count() != 20 {
		t.Fatalf("histogram holds %d samples, want 20", res.Overall.Hist.Count())
	}
}

func TestDriverAdvancesVersionsOncePerStep(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Cache", "LOCAL")
		w.Write([]byte("x"))
	}))
	defer srv.Close()

	sched := uniformSchedule(40, 0)
	for i := range sched.Objects {
		sched.Objects[i] = 7 // one object, forty requests
		sched.Versions[i] = 1
	}
	sched.Versions[20] = 3 // modified once mid-trace

	var calls atomic.Int64
	var lastFrom, lastTo atomic.Int64
	_, err := RunSchedule(context.Background(), sched, DriverConfig{
		Targets: []string{srv.URL},
		Workers: 1, // single worker: the advance sequence is deterministic
		AdvanceVersion: func(url string, from, to int64) {
			calls.Add(1)
			lastFrom.Store(from)
			lastTo.Store(to)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly two advances: 0→1 on first sight, then (1)→3 — never one per
	// request, no matter how many workers race.
	if calls.Load() != 2 {
		t.Fatalf("AdvanceVersion called %d times, want 2", calls.Load())
	}
	if lastFrom.Load() != 1 || lastTo.Load() != 3 {
		t.Fatalf("last advance %d->%d, want 1->3", lastFrom.Load(), lastTo.Load())
	}
}

func TestRunScheduleRejectsBadInput(t *testing.T) {
	if _, err := RunSchedule(context.Background(), uniformSchedule(1, 0), DriverConfig{}); err == nil {
		t.Fatal("accepted empty target list")
	}
	if _, err := RunSchedule(context.Background(), &Schedule{}, DriverConfig{Targets: []string{"http://x"}}); err == nil {
		t.Fatal("accepted empty schedule")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSchedule(ctx, uniformSchedule(10, time.Second), DriverConfig{Targets: []string{"http://x"}}); err == nil {
		t.Fatal("cancelled context did not abort the run")
	}
}
