package loadgen

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"beyondcache/internal/cluster"
	"beyondcache/internal/faults"
	"beyondcache/internal/trace"
)

// RunOptions tunes a scenario run.
type RunOptions struct {
	// Targets, when non-empty, drives an already-running external fleet
	// instead of booting an in-process one. Scenarios with fault, origin,
	// or invalidate events need the in-process fleet (the runner cannot
	// reach an external fleet's fault plane) and refuse external targets.
	Targets []string
	// Workers overrides the scenario's worker count when positive.
	Workers int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// BoundResult is one evaluated acceptance bound.
type BoundResult struct {
	Bound  Bound
	Actual float64
	Pass   bool
}

// RestartResult is one executed restart event's recovery outcome: what the
// replacement node found on disk and how long the boot scan took.
type RestartResult struct {
	Node     int
	At       time.Duration
	Objects  int
	Bytes    int64
	Duration time.Duration
}

// RunReport is a completed scenario run.
type RunReport struct {
	Scenario    *Scenario
	Fingerprint string
	Result      *Result
	Bounds      []BoundResult
	// Obs is the observability section diffed from before/after /metrics
	// scrapes of every node, or nil when no node could be scraped.
	Obs *BenchObs
	// Restarts records each restart event's disk-recovery outcome, in
	// execution order.
	Restarts []RestartResult
	// Pass is true when every bound held.
	Pass bool
}

// Run executes one scenario end to end: build the deterministic schedule,
// boot (or attach to) the fleet, replay open-loop while the event timeline
// breaks and heals things, then evaluate the acceptance bounds.
func Run(sc *Scenario, opt RunOptions) (*RunReport, error) {
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	sched, err := BuildSchedule(sc)
	if err != nil {
		return nil, err
	}
	fp, err := sched.Fingerprint()
	if err != nil {
		return nil, err
	}
	logf("%s: schedule %d requests over %v (sha256 %s...)", sc.Name, sched.Len(), sc.Span(), fp[:12])

	hasEvents := len(sc.Faults)+len(sc.OriginEvents)+len(sc.Invalidates)+len(sc.Restarts)+len(sc.Kills) > 0
	var fleet *cluster.Fleet
	targets := opt.Targets
	if len(targets) == 0 {
		inj, err := faults.New("", sc.Seed)
		if err != nil {
			return nil, err
		}
		interval := sc.UpdateInterval
		if interval == 0 {
			interval = 100 * time.Millisecond
		}
		var cacheDirs []string
		if sc.DiskTier {
			root, err := os.MkdirTemp("", "cacheload-disk-")
			if err != nil {
				return nil, fmt.Errorf("loadgen: %s: disk tier: %w", sc.Name, err)
			}
			defer os.RemoveAll(root)
			for i := 0; i < sc.Nodes; i++ {
				cacheDirs = append(cacheDirs, filepath.Join(root, fmt.Sprintf("node-%d", i)))
			}
		}
		fleet, err = cluster.StartFleet(cluster.FleetConfig{
			Nodes:          sc.Nodes,
			CacheBytes:     sc.CacheBytes,
			HintEntries:    sc.HintEntries,
			UpdateInterval: interval,
			HedgeBudget:    sc.HedgeBudget,
			HintPartition:  sc.HintPartition > 0,
			HintReplicas:   sc.HintPartition,
			Faults:         inj,
			CacheDirs:      cacheDirs,
		})
		if err != nil {
			return nil, err
		}
		defer fleet.Close()
		fleet.Origin.SetLatency(sc.OriginLatency)
		targets = fleet.NodeURLs()
		primeOrigin(fleet, sched)
	} else if hasEvents || sc.StrongConsistency {
		return nil, fmt.Errorf("loadgen: %s: fault/origin/invalidate events and strong consistency need the in-process fleet, not external targets", sc.Name)
	}

	cfg := DriverConfig{
		Targets:   targets,
		Workers:   sc.Workers,
		NumPhases: max(len(sc.Phases), 1),
	}
	if opt.Workers > 0 {
		cfg.Workers = opt.Workers
	}
	if sc.StrongConsistency {
		cfg.AdvanceVersion = advanceVersionFunc(fleet)
	}

	if sc.Warmup > 0 {
		warm(cfg, sched, sc.Warmup)
		if fleet != nil {
			fleet.FlushAll()
		}
		logf("%s: warmed %d requests", sc.Name, min(sc.Warmup, sched.Len()))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var errMu sync.Mutex
	var eventsErr error
	var eventsDone sync.WaitGroup
	if len(sc.Faults) > 0 {
		events := make([]faults.TimelineEvent, 0, len(sc.Faults))
		for _, e := range sc.Faults {
			events = append(events, faults.TimelineEvent{At: e.At, Spec: expandTargets(e.Spec, fleet)})
		}
		tl, err := faults.NewTimeline(events)
		if err != nil {
			return nil, err
		}
		eventsDone.Add(1)
		go func() {
			defer eventsDone.Done()
			if err := tl.Run(ctx, func(spec string) error {
				logf("%s: fault: %s", sc.Name, specLabel(spec))
				return fleet.SetFaultSpec(spec)
			}); err != nil && ctx.Err() == nil {
				errMu.Lock()
				eventsErr = err
				errMu.Unlock()
			}
		}()
	}
	if len(sc.OriginEvents)+len(sc.Invalidates) > 0 {
		eventsDone.Add(1)
		go func() {
			defer eventsDone.Done()
			runOriginEvents(ctx, fleet, sc, logf)
		}()
	}
	var restartMu sync.Mutex
	var restarts []RestartResult
	if len(sc.Restarts) > 0 {
		eventsDone.Add(1)
		go func() {
			defer eventsDone.Done()
			if err := runRestarts(ctx, fleet, sc, logf, func(r RestartResult) {
				restartMu.Lock()
				restarts = append(restarts, r)
				restartMu.Unlock()
			}); err != nil && ctx.Err() == nil {
				errMu.Lock()
				if eventsErr == nil {
					eventsErr = err
				}
				errMu.Unlock()
			}
		}()
	}

	if len(sc.Kills) > 0 {
		eventsDone.Add(1)
		go func() {
			defer eventsDone.Done()
			if err := runKills(ctx, fleet, sc, logf); err != nil && ctx.Err() == nil {
				errMu.Lock()
				if eventsErr == nil {
					eventsErr = err
				}
				errMu.Unlock()
			}
		}()
	}

	// Bracket the measured window with /metrics captures (warmup traffic is
	// already behind us) so the report can carry the run's observability
	// deltas alongside its client-side latencies.
	obsBefore := captureExpos(targets)
	res, err := RunSchedule(ctx, sched, cfg)
	cancel()
	eventsDone.Wait()
	if err != nil {
		return nil, err
	}
	if eventsErr != nil {
		return nil, fmt.Errorf("loadgen: %s: event timeline: %w", sc.Name, eventsErr)
	}
	obsAfter := captureExpos(targets)

	rep := &RunReport{Scenario: sc, Fingerprint: fp, Result: res, Obs: summarizeObs(obsBefore, obsAfter), Restarts: restarts, Pass: true}
	for _, b := range sc.Bounds {
		actual, err := evalBound(sc, res, b)
		if err != nil {
			return nil, err
		}
		pass := actual <= b.Value
		if b.Op == ">=" {
			pass = actual >= b.Value
		}
		rep.Bounds = append(rep.Bounds, BoundResult{Bound: b, Actual: actual, Pass: pass})
		rep.Pass = rep.Pass && pass
		logf("%s: bound %q: actual %.4g -> %v", sc.Name, b.Expr(), actual, pass)
	}
	return rep, nil
}

// primeOrigin fixes every scheduled object's origin body size before the
// run, so first fetches transfer the workload's sizes rather than the
// origin default.
func primeOrigin(fleet *cluster.Fleet, sched *Schedule) {
	seen := make(map[uint64]struct{}, sched.Len()/4)
	for i := 0; i < sched.Len(); i++ {
		obj := sched.Objects[i]
		if _, ok := seen[obj]; ok {
			continue
		}
		seen[obj] = struct{}{}
		fleet.Origin.SetSize(sched.URL(i), sched.Sizes[i])
	}
}

// advanceVersionFunc mirrors Fleet.Replay's version bookkeeping: advance
// the origin to the scheduled version and purge stale cached copies (the
// simulators' invalidation-based consistency).
func advanceVersionFunc(fleet *cluster.Fleet) func(url string, from, to int64) {
	if fleet == nil {
		return nil
	}
	return func(url string, from, to int64) {
		start := from
		if start < 1 {
			start = 1
		}
		for v := start; v < to; v++ {
			fleet.Origin.Bump(url)
		}
		if from != 0 {
			fleet.PurgeAll(url)
		}
	}
}

// warm issues the schedule's first n requests closed-loop (paced only by
// completions, unrecorded) to pre-fill caches before the measured run.
func warm(cfg DriverConfig, sched *Schedule, n int) {
	if n > sched.Len() {
		n = sched.Len()
	}
	head := &Schedule{
		Offsets:  make([]time.Duration, n), // all zero: no pacing, issue ASAP
		Phases:   make([]uint8, n),
		Objects:  sched.Objects[:n],
		Clients:  sched.Clients[:n],
		Sizes:    sched.Sizes[:n],
		Versions: sched.Versions[:n],
	}
	wcfg := cfg
	wcfg.NumPhases = 1
	wcfg.AdvanceVersion = nil // warmup never advances versions
	if wcfg.Workers <= 0 || wcfg.Workers > 16 {
		wcfg.Workers = 16
	}
	// Result and errors intentionally dropped: warmup is unmeasured.
	_, _ = RunSchedule(context.Background(), head, wcfg)
}

// originEvent is one origin-plane timeline entry: either a latency change
// (invalidate < 0) or a hot-set invalidation of `invalidate` objects.
type originEvent struct {
	at         time.Duration
	latency    time.Duration
	invalidate int
}

// runOriginEvents walks the scenario's origin-latency and invalidation
// events in offset order, sleeping to each one. These events cannot fail
// (they were validated with the scenario), so the loop returns nothing.
func runOriginEvents(ctx context.Context, fleet *cluster.Fleet, sc *Scenario, logf func(string, ...any)) {
	events := make([]originEvent, 0, len(sc.OriginEvents)+len(sc.Invalidates))
	for _, e := range sc.OriginEvents {
		events = append(events, originEvent{at: e.At, latency: e.Latency, invalidate: -1})
	}
	for _, e := range sc.Invalidates {
		events = append(events, originEvent{at: e.At, invalidate: e.Count})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })
	start := time.Now()
	for _, e := range events {
		if d := e.at - time.Since(start); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return
			}
		}
		if ctx.Err() != nil {
			return
		}
		if e.invalidate < 0 {
			logf("%s: origin latency -> %v", sc.Name, e.latency)
			fleet.Origin.SetLatency(e.latency)
		} else {
			logf("%s: invalidating %d hottest objects", sc.Name, e.invalidate)
			invalidateHotSet(fleet, e.invalidate)
		}
	}
}

// runRestarts walks the scenario's restart events in offset order, sleeping
// to each one, restarting the named node in place, and waiting out its boot
// recovery scan before reporting the result. Load keeps flowing while the
// node is down; the driver records the window's failures like any other.
func runRestarts(ctx context.Context, fleet *cluster.Fleet, sc *Scenario, logf func(string, ...any), record func(RestartResult)) error {
	events := append([]RestartEvent(nil), sc.Restarts...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	start := time.Now()
	for _, e := range events {
		if d := e.At - time.Since(start); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil
			}
		}
		if ctx.Err() != nil {
			return nil
		}
		logf("%s: restarting node %d", sc.Name, e.Node)
		if err := fleet.RestartNode(e.Node); err != nil {
			return fmt.Errorf("restart node %d: %w", e.Node, err)
		}
		fleet.Nodes[e.Node].WaitRecovery()
		rec := fleet.Nodes[e.Node].RecoveryStats()
		logf("%s: node %d recovered %d objects (%d bytes) in %v",
			sc.Name, e.Node, rec.Objects, rec.Bytes, rec.Duration)
		record(RestartResult{Node: e.Node, At: e.At, Objects: rec.Objects, Bytes: rec.Bytes, Duration: rec.Duration})
	}
	return nil
}

// runKills walks the scenario's kill events in offset order, sleeping to
// each one and taking the named node down for good. Load keeps flowing:
// requests pointed at the dead node fail and are recorded, and a
// partitioned fleet re-homes the dead node's directory share.
func runKills(ctx context.Context, fleet *cluster.Fleet, sc *Scenario, logf func(string, ...any)) error {
	events := append([]KillEvent(nil), sc.Kills...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	start := time.Now()
	for _, e := range events {
		if d := e.At - time.Since(start); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil
			}
		}
		if ctx.Err() != nil {
			return nil
		}
		logf("%s: killing node %d", sc.Name, e.Node)
		if err := fleet.KillNode(e.Node); err != nil {
			return fmt.Errorf("kill node %d: %w", e.Node, err)
		}
	}
	return nil
}

// invalidateHotSet bumps and purges the count most popular objects
// (object IDs are popularity ranks), fanning out over a few goroutines so
// a big storm applies in a bounded burst rather than a slow trickle.
func invalidateHotSet(fleet *cluster.Fleet, count int) {
	const fanout = 8
	var wg sync.WaitGroup
	for w := 0; w < fanout; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rank := w; rank < count; rank += fanout {
				url := trace.ObjectURL(uint64(rank))
				fleet.Origin.Bump(url)
				fleet.PurgeAll(url)
			}
		}(w)
	}
	wg.Wait()
}

// expandTargets rewrites symbolic fault targets — "node-<i>" and "origin"
// — to the fleet's live host:port addresses. Longer node names replace
// first so "node-1" never clobbers "node-12"'s prefix.
func expandTargets(spec string, fleet *cluster.Fleet) string {
	type sub struct{ from, to string }
	subs := make([]sub, 0, len(fleet.Nodes)+1)
	for i, u := range fleet.NodeURLs() {
		subs = append(subs, sub{fmt.Sprintf("node-%d", i), hostPort(u)})
	}
	subs = append(subs, sub{"origin", hostPort(fleet.Origin.URL())})
	sort.Slice(subs, func(i, j int) bool { return len(subs[i].from) > len(subs[j].from) })
	for _, s := range subs {
		spec = strings.ReplaceAll(spec, s.from, s.to)
	}
	return spec
}

// hostPort strips the scheme from a base URL.
func hostPort(u string) string {
	u = strings.TrimPrefix(u, "http://")
	return strings.TrimSuffix(u, "/")
}

// specLabel compresses an event spec for progress logs.
func specLabel(spec string) string {
	if spec == "" {
		return "heal (clear fault spec)"
	}
	return spec
}

// evalBound extracts a bound's measured value from the run result.
func evalBound(sc *Scenario, res *Result, b Bound) (float64, error) {
	phaseOf := func(args []string) (PhaseResult, time.Duration, error) {
		if len(args) == 0 {
			return res.Overall, sc.Span(), nil
		}
		i := sc.PhaseIndex(args[0])
		if i < 0 || i >= len(res.Phases) {
			return PhaseResult{}, 0, fmt.Errorf("loadgen: bound %q: unknown phase %q", b.Expr(), args[0])
		}
		return res.Phases[i], sc.Phases[i].Dur, nil
	}
	quantile := func(p PhaseResult, q float64) float64 {
		return p.Hist.Quantile(q).Seconds()
	}
	switch b.Metric {
	case "p50", "p95", "p99":
		p, _, err := phaseOf(b.Args)
		if err != nil {
			return 0, err
		}
		q := map[string]float64{"p50": 0.50, "p95": 0.95, "p99": 0.99}[b.Metric]
		return quantile(p, q), nil
	case "p99_ratio":
		a, _, err := phaseOf(b.Args[:1])
		if err != nil {
			return 0, err
		}
		c, _, err := phaseOf(b.Args[1:])
		if err != nil {
			return 0, err
		}
		den := quantile(c, 0.99)
		if den == 0 {
			return 0, fmt.Errorf("loadgen: bound %q: reference phase %q recorded no latency", b.Expr(), b.Args[1])
		}
		return quantile(a, 0.99) / den, nil
	case "hit_rate":
		p, _, err := phaseOf(b.Args)
		if err != nil {
			return 0, err
		}
		return p.HitRate(), nil
	case "error_rate":
		p, _, err := phaseOf(b.Args)
		if err != nil {
			return 0, err
		}
		return p.ErrorRate(), nil
	case "reqps":
		p, dur, err := phaseOf(b.Args)
		if err != nil {
			return 0, err
		}
		if dur <= 0 {
			return 0, fmt.Errorf("loadgen: bound %q: zero-duration window", b.Expr())
		}
		return float64(p.Requests) / dur.Seconds(), nil
	default:
		return 0, fmt.Errorf("loadgen: unknown bound metric %q", b.Metric)
	}
}
