package loadgen

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"
	"time"

	"beyondcache/internal/faults"
	"beyondcache/internal/trace"
	"beyondcache/internal/wire"
)

// defaultScale is the workload scale used when a scenario omits one: small
// enough that schedule materialization is instant, large enough that the
// object population dwarfs any hot set.
const defaultScale = 0.001

// maxScheduleRequests is a sanity cap on schedule size: a scenario whose
// phase rates imply more arrivals than this is a typo, not a plan.
const maxScheduleRequests = 5_000_000

// Schedule is a fully materialized open-loop request plan: request i is
// issued at start+Offsets[i], carries the object/client/size/version of the
// workload draw, and is accounted to phase Phases[i]. Schedules are built
// deterministically from (scenario, seed) — the same inputs yield
// byte-identical MarshalBinary output, which tests pin — and are read-only
// during a run, so any number of driver workers can share one.
type Schedule struct {
	// Offsets are intended arrival times from run start, non-decreasing.
	Offsets []time.Duration
	// Phases[i] is the index into the scenario's phase list.
	Phases []uint8
	// Objects, Clients, Sizes, Versions are the workload draws.
	Objects  []uint64
	Clients  []int32
	Sizes    []int64
	Versions []int64
}

// Len returns the number of scheduled requests.
func (s *Schedule) Len() int { return len(s.Offsets) }

// Span returns the last intended arrival offset (0 for an empty schedule).
func (s *Schedule) Span() time.Duration {
	if len(s.Offsets) == 0 {
		return 0
	}
	return s.Offsets[len(s.Offsets)-1]
}

// URL renders request i's fetch URL.
func (s *Schedule) URL(i int) string { return trace.ObjectURL(s.Objects[i]) }

// parseFaultsSpec validates a scenario fault spec. Targets are free-form
// (node names, "origin", "*"), so the shared DSL parser covers it; the
// runner rewrites symbolic targets to live addresses before applying.
func parseFaultsSpec(spec string) ([]faults.Rule, error) {
	return faults.ParseSpec(spec)
}

// profileFor builds the trace profile a scenario draws from. requests, when
// positive, overrides the profile's request count.
func profileFor(sc *Scenario, requests int) (trace.Profile, error) {
	scale := sc.Scale
	if scale == 0 {
		scale = defaultScale
	}
	var p trace.Profile
	switch sc.Profile {
	case "DEC":
		p = trace.DECProfile(trace.Scale(scale))
	case "Berkeley":
		p = trace.BerkeleyProfile(trace.Scale(scale))
	case "Prodigy":
		p = trace.ProdigyProfile(trace.Scale(scale))
	default:
		return trace.Profile{}, fmt.Errorf("loadgen: unknown profile %q", sc.Profile)
	}
	if requests > 0 {
		p.Requests = int64(requests)
	}
	// The schedule replays requests in trace order but paces them itself,
	// so the profile's own warmup window is meaningless here.
	p.WarmupDays = 0
	p.Seed += sc.Seed // distinct scenario seeds draw distinct streams
	return p, nil
}

// BuildSchedule materializes a scenario into its request plan. All
// randomness flows from the scenario's seed: one source for the arrival
// process, an independent one for hot-set draws, so adding a hot set to a
// phase does not perturb arrival times.
func BuildSchedule(sc *Scenario) (*Schedule, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.Pacing == "trace" {
		return buildTraceSchedule(sc)
	}
	return buildPoissonSchedule(sc)
}

// buildPoissonSchedule derives arrivals from the phases' rates and draws
// request content from the profile's generated stream, optionally
// redirected onto a hot set.
func buildPoissonSchedule(sc *Scenario) (*Schedule, error) {
	// Pass 1: the arrival process. Poisson arrivals at the phase's
	// (possibly ramping) rate: each gap is Exp(1)/rate(t).
	arrRng := rand.New(rand.NewSource(sc.Seed))
	s := &Schedule{}
	for pi, p := range sc.Phases {
		start, end := sc.phaseStart(pi), sc.phaseStart(pi)+p.Dur
		t := start
		for {
			r := p.Rate
			if p.RateEnd > 0 && p.RateEnd != p.Rate {
				frac := float64(t-start) / float64(p.Dur)
				r = p.Rate + (p.RateEnd-p.Rate)*frac
			}
			t += time.Duration(arrRng.ExpFloat64() / r * float64(time.Second))
			if t >= end {
				break
			}
			s.Offsets = append(s.Offsets, t)
			s.Phases = append(s.Phases, uint8(pi))
			if len(s.Offsets) > maxScheduleRequests {
				return nil, fmt.Errorf("loadgen: %s: schedule exceeds %d requests", sc.Name, maxScheduleRequests)
			}
		}
	}
	if len(s.Offsets) == 0 {
		return nil, fmt.Errorf("loadgen: %s: phase rates produce an empty schedule", sc.Name)
	}

	// Pass 2: request content. The profile's stream is drawn in order,
	// skipping uncachable/error entries (the load driver only measures
	// cachable fetches, like the simulators' replay); hot-set phases
	// redirect a fraction of draws onto the most popular ranks.
	need := len(s.Offsets)
	prof, err := profileFor(sc, traceHeadroom(need, sc))
	if err != nil {
		return nil, err
	}
	m, err := trace.MaterializedFor(prof)
	if err != nil {
		return nil, err
	}
	hotRng := rand.New(rand.NewSource(sc.Seed + 1))
	zipfs := make(map[int]*trace.Zipf) // one sampler per hot phase
	for pi, p := range sc.Phases {
		if p.HotSet > 0 {
			alpha := p.HotAlpha
			if alpha == 0 {
				alpha = 1.0
			}
			zipfs[pi] = trace.NewZipf(p.HotSet, alpha)
		}
	}
	s.Objects = make([]uint64, need)
	s.Clients = make([]int32, need)
	s.Sizes = make([]int64, need)
	s.Versions = make([]int64, need)
	firstSize := make(map[uint64]int64)
	lastVersion := make(map[uint64]int64)
	cur := m.Reader()
	for i := 0; i < need; i++ {
		req, err := nextCachable(cur, m)
		if err != nil {
			return nil, fmt.Errorf("loadgen: %s: %w", sc.Name, err)
		}
		if _, ok := firstSize[req.Object]; !ok {
			firstSize[req.Object] = req.Size
		}
		lastVersion[req.Object] = req.Version
		obj, size, version := req.Object, firstSize[req.Object], req.Version
		p := sc.Phases[s.Phases[i]]
		if z := zipfs[int(s.Phases[i])]; z != nil {
			frac := p.HotFrac
			if frac == 0 {
				frac = 1.0
			}
			if hotRng.Float64() < frac {
				obj = uint64(z.Sample(hotRng))
				if sz, ok := firstSize[obj]; ok {
					size = sz
				} else {
					size = prof.MedianSize
					firstSize[obj] = size
				}
				if version = lastVersion[obj]; version == 0 {
					version = 1
					lastVersion[obj] = 1
				}
			}
		}
		s.Objects[i] = obj
		s.Clients[i] = int32(req.Client)
		s.Sizes[i] = size
		s.Versions[i] = version
	}
	return s, nil
}

// traceHeadroom sizes the materialized trace so that drawing `need`
// cachable requests cannot exhaust it: the uncachable/error fractions are
// inflated with margin.
func traceHeadroom(need int, sc *Scenario) int {
	frac := 1.0
	switch sc.Profile {
	case "DEC":
		frac = 1 - 0.06 - 0.02
	case "Berkeley":
		frac = 1 - 0.13 - 0.03
	case "Prodigy":
		frac = 1 - 0.11 - 0.03
	}
	n := int(math.Ceil(float64(need)/frac*1.25)) + 512
	return n + sc.Warmup
}

// nextCachable advances the cursor past uncachable/error entries, wrapping
// to the start if the trace runs dry (headroom makes wrap rare; wrapping
// keeps the build total rather than failing a long scenario).
func nextCachable(cur *trace.Cursor, m *trace.Materialized) (trace.Request, error) {
	for tries := 0; tries < 2; tries++ {
		for {
			req, err := cur.Next()
			if err != nil {
				break
			}
			if req.Cachable() {
				return req, nil
			}
		}
		cur.Reset()
	}
	return trace.Request{}, fmt.Errorf("trace has no cachable requests")
}

// buildTraceSchedule replays the profile's own stream, rescaling its
// virtual timestamps onto the scenario's duration — the faithful mode the
// measured-vs-simulated validation uses.
func buildTraceSchedule(sc *Scenario) (*Schedule, error) {
	prof, err := profileFor(sc, sc.Requests)
	if err != nil {
		return nil, err
	}
	m, err := trace.MaterializedFor(prof)
	if err != nil {
		return nil, err
	}
	paced, err := trace.NewPaced(m, sc.Duration)
	if err != nil {
		return nil, err
	}
	s := &Schedule{}
	for i := 0; i < paced.Len(); i++ {
		req := paced.At(i)
		if !req.Cachable() {
			continue
		}
		s.Offsets = append(s.Offsets, paced.Offset(i))
		s.Phases = append(s.Phases, 0)
		s.Objects = append(s.Objects, req.Object)
		s.Clients = append(s.Clients, int32(req.Client))
		s.Sizes = append(s.Sizes, req.Size)
		s.Versions = append(s.Versions, req.Version)
	}
	if s.Len() == 0 {
		return nil, fmt.Errorf("loadgen: %s: trace has no cachable requests", sc.Name)
	}
	return s, nil
}

// scheduleVersion versions the schedule payload inside its wire frame.
const scheduleVersion = 1

// MarshalBinary renders the schedule as one KindSchedule wire frame whose
// payload is deterministic little-endian bytes: format version, count,
// then the six columns in order. Equal schedules marshal to equal bytes —
// the determinism tests and the bench row's schedule fingerprint rely on
// it. The columns are appended in place between BeginFrame and
// FinishFrame, so the record stream is encoded exactly once with no
// intermediate payload buffer.
func (s *Schedule) MarshalBinary() ([]byte, error) {
	n := s.Len()
	if len(s.Phases) != n || len(s.Objects) != n || len(s.Clients) != n ||
		len(s.Sizes) != n || len(s.Versions) != n {
		return nil, fmt.Errorf("loadgen: ragged schedule columns")
	}
	size := wire.HeaderSize + 4 + 8 + n*(8+1+8+4+8+8)
	out, start := wire.BeginFrame(make([]byte, 0, size), wire.KindSchedule)
	out = binary.LittleEndian.AppendUint32(out, scheduleVersion)
	out = binary.LittleEndian.AppendUint64(out, uint64(n))
	for _, v := range s.Offsets {
		out = binary.LittleEndian.AppendUint64(out, uint64(v))
	}
	out = append(out, s.Phases...)
	for _, v := range s.Objects {
		out = binary.LittleEndian.AppendUint64(out, v)
	}
	for _, v := range s.Clients {
		out = binary.LittleEndian.AppendUint32(out, uint32(v))
	}
	for _, v := range s.Sizes {
		out = binary.LittleEndian.AppendUint64(out, uint64(v))
	}
	for _, v := range s.Versions {
		out = binary.LittleEndian.AppendUint64(out, uint64(v))
	}
	return wire.FinishFrame(out, start), nil
}

// UnmarshalBinary decodes a marshaled schedule, replacing the receiver's
// contents.
func (s *Schedule) UnmarshalBinary(data []byte) error {
	f, rest, err := wire.Decode(data)
	if err != nil {
		return fmt.Errorf("loadgen: schedule frame: %w", err)
	}
	if len(rest) != 0 {
		return fmt.Errorf("loadgen: %d trailing bytes after schedule frame", len(rest))
	}
	if f.Kind != wire.KindSchedule {
		return fmt.Errorf("loadgen: unexpected frame kind %s", f.Kind)
	}
	p, err := f.Payload(nil)
	if err != nil {
		return fmt.Errorf("loadgen: schedule payload: %w", err)
	}
	if len(p) < 12 {
		return fmt.Errorf("loadgen: schedule payload too short (%d bytes)", len(p))
	}
	if v := binary.LittleEndian.Uint32(p[0:4]); v != scheduleVersion {
		return fmt.Errorf("loadgen: unsupported schedule version %d", v)
	}
	count := binary.LittleEndian.Uint64(p[4:12])
	const perRecord = 8 + 1 + 8 + 4 + 8 + 8
	if count > uint64(maxScheduleRequests) || uint64(len(p)) != 12+count*perRecord {
		return fmt.Errorf("loadgen: schedule payload %d bytes does not match %d records", len(p), count)
	}
	n := int(count)
	p = p[12:]
	s.Offsets = make([]time.Duration, n)
	for i := range s.Offsets {
		s.Offsets[i] = time.Duration(binary.LittleEndian.Uint64(p[i*8:]))
	}
	p = p[n*8:]
	s.Phases = append([]uint8(nil), p[:n]...)
	p = p[n:]
	s.Objects = make([]uint64, n)
	for i := range s.Objects {
		s.Objects[i] = binary.LittleEndian.Uint64(p[i*8:])
	}
	p = p[n*8:]
	s.Clients = make([]int32, n)
	for i := range s.Clients {
		s.Clients[i] = int32(binary.LittleEndian.Uint32(p[i*4:]))
	}
	p = p[n*4:]
	s.Sizes = make([]int64, n)
	for i := range s.Sizes {
		s.Sizes[i] = int64(binary.LittleEndian.Uint64(p[i*8:]))
	}
	p = p[n*8:]
	s.Versions = make([]int64, n)
	for i := range s.Versions {
		s.Versions[i] = int64(binary.LittleEndian.Uint64(p[i*8:]))
	}
	return nil
}

// Fingerprint returns the hex SHA-256 of the schedule's binary form: the
// run's identity for bench rows and cross-run comparison.
func (s *Schedule) Fingerprint() (string, error) {
	b, err := s.MarshalBinary()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
