package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"beyondcache/internal/digest"
	"beyondcache/internal/faults"
	"beyondcache/internal/hintcache"
	"beyondcache/internal/resilience"
	"beyondcache/internal/wire"
)

// Run with -bench-cluster-out to measure the metadata plane before/after
// the per-peer sender pipeline and write the comparison JSON there:
//
//	go test ./internal/cluster -run TestRecordClusterBench \
//	    -bench-cluster-out ../../BENCH_cluster.json
var benchClusterOut = flag.String("bench-cluster-out", "", "write the cluster metadata-plane bench JSON to this path")

// updateSink is a stub /updates receiver: it decodes every delivered batch
// and records the updates, the wire bytes, and the arrival time of each
// batch.
type updateSink struct {
	srv *httptest.Server

	mu      sync.Mutex
	recs    []hintcache.Update
	wire    int64
	arrived []time.Time
}

func newUpdateSink(t testing.TB) *updateSink {
	t.Helper()
	s := &updateSink{}
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Senders frame batches (KindHintBatch); accept raw record bodies
		// too, as a real node does.
		records, _, _, err := unframeUpdates(body, int64(len(body)), nil)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		us, err := hintcache.DecodeUpdates(records)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		now := time.Now()
		s.mu.Lock()
		s.wire += int64(len(body))
		s.recs = append(s.recs, us...)
		s.arrived = append(s.arrived, now)
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	}))
	t.Cleanup(s.srv.Close)
	return s
}

func (s *updateSink) records() []hintcache.Update {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]hintcache.Update(nil), s.recs...)
}

func (s *updateSink) wireBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wire
}

func (s *updateSink) reset() {
	s.mu.Lock()
	s.recs, s.arrived, s.wire = nil, nil, 0
	s.mu.Unlock()
}

// firstArrival blocks until the sink has received at least one batch (or
// the deadline passes) and returns the first batch's arrival time.
func (s *updateSink) firstArrival(t testing.TB, deadline time.Duration) time.Time {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		s.mu.Lock()
		if len(s.arrived) > 0 {
			at := s.arrived[0]
			s.mu.Unlock()
			return at
		}
		s.mu.Unlock()
		if time.Now().After(stop) {
			t.Fatalf("sink %s received nothing within %v", s.srv.URL, deadline)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// newMetaNode boots a node over httptest for metadata-plane tests. The
// origin URL points nowhere: these tests never fetch objects.
func newMetaNode(t testing.TB, cfg NodeConfig) *Node {
	t.Helper()
	if cfg.OriginURL == "" {
		cfg.OriginURL = "http://127.0.0.1:1"
	}
	if cfg.UpdateInterval == 0 {
		cfg.UpdateInterval = time.Hour // tests flush explicitly
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(n.Handler())
	n.Bind(srv.URL)
	t.Cleanup(func() {
		if err := n.Close(); err != nil {
			t.Errorf("node close: %v", err)
		}
		srv.Close()
	})
	return n
}

// TestFlushCoalescesOverWire drives the full pipeline: repeated informs for
// one object dedupe and an inform-then-invalidate collapses to the
// invalidate, so one round delivers one record per touched object.
func TestFlushCoalescesOverWire(t *testing.T) {
	sink := newUpdateSink(t)
	n := newMetaNode(t, NodeConfig{Name: "coalesce"})
	n.AddUpdateTarget(sink.srv.URL)

	n.queueInform(1)
	n.enqueueLocal(hintcache.Update{Action: hintcache.ActionInvalidate, URLHash: 1, Machine: n.machineID})
	n.queueInform(2)
	n.queueInform(2)
	n.queueInform(2)
	n.Flush()

	got := sink.records()
	want := []hintcache.Update{
		{Action: hintcache.ActionInvalidate, URLHash: 1, Machine: n.machineID},
		{Action: hintcache.ActionInform, URLHash: 2, Machine: n.machineID},
	}
	if len(got) != len(want) {
		t.Fatalf("sink received %d records %v, want %d (coalesced)", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	st := n.Stats()
	if st.Coalesced != 3 {
		t.Errorf("Coalesced = %d, want 3 (one invalidate collapse + two inform dedupes)", st.Coalesced)
	}
	if st.UpdatesSent != 2 {
		t.Errorf("UpdatesSent = %d, want 2", st.UpdatesSent)
	}
	if wb := sink.wireBytes(); wb != wire.HeaderSize+2*hintcache.UpdateSize {
		t.Errorf("wire bytes = %d, want %d (frame header + 2 records)", wb, wire.HeaderSize+2*hintcache.UpdateSize)
	}
}

// TestPendingQueueBounded checks satellite 1: the node-level pending queue
// is capped, overflow drops the oldest informs first, and drops are
// counted.
func TestPendingQueueBounded(t *testing.T) {
	n := newMetaNode(t, NodeConfig{Name: "bounded", HintQueue: 4})
	for h := uint64(1); h <= 6; h++ {
		n.queueInform(h)
	}
	if st := n.Stats(); st.PendingDropped != 2 {
		t.Errorf("PendingDropped = %d, want 2", st.PendingDropped)
	}
	if got := n.pend.len(); got != 4 {
		t.Errorf("pending queue holds %d records, want 4", got)
	}
}

// TestUpdatesOversizeRejected checks satellite 2 on both receivers: a body
// over the limit draws 413 whole instead of being truncated mid-record,
// and the node counts the reject.
func TestUpdatesOversizeRejected(t *testing.T) {
	n := newMetaNode(t, NodeConfig{Name: "oversize"}) // default limit: 1 MB
	big := bytes.Repeat([]byte{0}, 1<<20+hintcache.UpdateSize)
	resp, err := http.Post(n.URL()+"/updates", "application/octet-stream", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("node oversized POST /updates = %d, want 413", resp.StatusCode)
	}
	if st := n.Stats(); st.OversizeRejects != 1 {
		t.Errorf("OversizeRejects = %d, want 1", st.OversizeRejects)
	}

	// A batch that exactly fits the limit still decodes (no shearing).
	fit := make([]hintcache.Update, 8)
	for i := range fit {
		fit[i] = hintcache.Update{Action: hintcache.ActionInform, URLHash: uint64(i) + 1, Machine: 42}
	}
	resp, err = http.Post(n.URL()+"/updates", "application/octet-stream", bytes.NewReader(hintcache.EncodeUpdates(fit)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("node valid POST /updates = %d, want 204", resp.StatusCode)
	}

	relay := NewRelay("r")
	rs := httptest.NewServer(relay.Handler())
	defer rs.Close()
	resp, err = http.Post(rs.URL+"/updates", "application/octet-stream", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("relay oversized POST /updates = %d, want 413", resp.StatusCode)
	}
}

// TestDigestPullChecksStatusFirst checks satellite 3: a non-200 digest
// response is an error without the body being decoded, and the peer's
// digest stays absent.
func TestDigestPullChecksStatusFirst(t *testing.T) {
	errSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "digest rebuild failed", http.StatusInternalServerError)
	}))
	defer errSrv.Close()

	n := newMetaNode(t, NodeConfig{Name: "status-first", UseDigests: true})
	n.AddPeer(errSrv.URL)
	n.PullDigests()

	st := n.Stats()
	if st.DigestsPulled != 0 {
		t.Errorf("DigestsPulled = %d, want 0", st.DigestsPulled)
	}
	if st.SendErrors != 1 {
		t.Errorf("SendErrors = %d, want 1", st.SendErrors)
	}
	if peer := n.digestPeer(1); peer != "" {
		t.Errorf("digestPeer after failed pull = %q, want none", peer)
	}
}

// TestDigestPullsRunConcurrently boots four slow digest peers and checks
// that one pull round costs roughly the slowest peer, not the sum.
func TestDigestPullsRunConcurrently(t *testing.T) {
	const delay = 300 * time.Millisecond
	own, err := digest.NewCountingForCapacity(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := own.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	frame := wire.AppendFrame(nil, wire.KindDigestFull, payload, 0)
	n := newMetaNode(t, NodeConfig{Name: "parallel-pull", UseDigests: true, DigestWorkers: 4})
	for i := 0; i < 4; i++ {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(delay)
			w.Write(frame)
		}))
		t.Cleanup(srv.Close)
		n.AddPeer(srv.URL)
	}

	start := time.Now()
	n.PullDigests()
	elapsed := time.Since(start)

	if st := n.Stats(); st.DigestsPulled != 4 {
		t.Errorf("DigestsPulled = %d, want 4", st.DigestsPulled)
	}
	// Serial pulls would cost 4 x delay = 1.2s; allow generous headroom
	// over one delay for scheduling noise.
	if elapsed > 3*delay {
		t.Errorf("PullDigests took %v for 4 peers at %v each, want concurrent (< %v)", elapsed, delay, 3*delay)
	}
}

// TestChaosMetadataPlaneIsolation is the per-peer isolation contract: with
// one of four update targets blackholed, the three healthy targets must
// receive a queued hint within 2x the batch interval — the sick target's
// retry budget burns on its own sender. After healing, the blackholed
// target receives the batch too (the in-flight retries deliver it).
func TestChaosMetadataPlaneIsolation(t *testing.T) {
	const interval = 200 * time.Millisecond
	sinks := make([]*updateSink, 4)
	for i := range sinks {
		sinks[i] = newUpdateSink(t)
	}
	inj, err := faults.New(hostPortOf(sinks[0].srv.URL)+":blackhole", 1)
	if err != nil {
		t.Fatal(err)
	}
	n := newMetaNode(t, NodeConfig{
		Name:           "isolation",
		UpdateInterval: interval,
		Faults:         inj,
	})
	t.Cleanup(func() { _ = inj.SetSpec("") }) // heal before the close-time flush
	for _, s := range sinks {
		n.AddUpdateTarget(s.srv.URL)
	}

	n.queueInform(42)
	start := time.Now()
	n.flushAsync()

	for i, s := range sinks[1:] {
		at := s.firstArrival(t, 2*interval)
		if d := at.Sub(start); d > 2*interval {
			t.Errorf("healthy sink %d received the hint after %v, want within %v", i+1, d, 2*interval)
		}
	}

	// Heal: the blackholed sender is mid-retry; its queued batch must
	// still arrive (first attempt times out after metadataTimeout, the
	// next one succeeds).
	if err := inj.SetSpec(""); err != nil {
		t.Fatal(err)
	}
	sinks[0].firstArrival(t, 2*metadataTimeout+2*time.Second)

	if got := sinks[1].records(); len(got) != 1 || got[0].URLHash != 42 {
		t.Errorf("healthy sink records = %v, want exactly the queued inform", got)
	}
}

// TestRecordClusterBench measures the metadata plane before (the serial
// flush loop, emulated faithfully) and after (the per-peer sender
// pipeline) and writes the comparison to -bench-cluster-out. Skipped
// unless the flag is set; the committed BENCH_cluster.json is its output.
func TestRecordClusterBench(t *testing.T) {
	if *benchClusterOut == "" {
		t.Skip("set -bench-cluster-out to record the cluster bench")
	}
	const (
		targets     = 4
		interval    = 200 * time.Millisecond
		events      = 4096
		distinct    = 512
		ingestIters = 500
	)

	// --- Flush fan-out with one blackholed target among four. ---
	sinks := make([]*updateSink, targets)
	for i := range sinks {
		sinks[i] = newUpdateSink(t)
	}
	maxHealthyArrival := func(t0 time.Time) time.Duration {
		var worst time.Duration
		for _, s := range sinks[1:] {
			if d := s.firstArrival(t, time.Second).Sub(t0); d > worst {
				worst = d
			}
		}
		return worst
	}

	// Before: the pre-pipeline serial loop — one POST per target in
	// order, each with 3 attempts under the metadata timeout, the
	// blackholed target first (the worst case the old code admitted).
	inj, err := faults.New(hostPortOf(sinks[0].srv.URL)+":blackhole", 1)
	if err != nil {
		t.Fatal(err)
	}
	client := newClient(nil, inj)
	backoff := resilience.NewBackoff(25*time.Millisecond, 200*time.Millisecond, 2, 1)
	body := hintcache.EncodeUpdates([]hintcache.Update{{Action: hintcache.ActionInform, URLHash: 99, Machine: 7}})
	serialStart := time.Now()
	for _, s := range sinks {
		_, _ = backoff.Retry(context.Background(), 3, func() error {
			ctx, cancel := context.WithTimeout(context.Background(), metadataTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.srv.URL+"/updates", bytes.NewReader(body))
			if err != nil {
				return err
			}
			resp, err := client.Do(req)
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil
		})
	}
	serialRound := time.Since(serialStart)
	serialHealthy := maxHealthyArrival(serialStart)
	for _, s := range sinks {
		s.reset()
	}

	// After: the sender pipeline, same fault.
	pinj, err := faults.New(hostPortOf(sinks[0].srv.URL)+":blackhole", 2)
	if err != nil {
		t.Fatal(err)
	}
	n := newMetaNode(t, NodeConfig{Name: "bench-fanout", UpdateInterval: interval, Faults: pinj})
	t.Cleanup(func() { _ = pinj.SetSpec("") })
	for _, s := range sinks {
		n.AddUpdateTarget(s.srv.URL)
	}
	n.queueInform(99)
	pipeStart := time.Now()
	n.Flush() // synchronous: returns once every sender delivered or abandoned
	pipeRound := time.Since(pipeStart)
	pipeHealthy := maxHealthyArrival(pipeStart)
	if pipeHealthy > 2*interval {
		t.Errorf("pipeline healthy delivery %v exceeds 2x interval %v", pipeHealthy, 2*interval)
	}

	// --- Wire bytes per round under a hot-set workload. ---
	wireSink := newUpdateSink(t)
	wn := newMetaNode(t, NodeConfig{Name: "bench-wire"})
	wn.AddUpdateTarget(wireSink.srv.URL)
	for i := 0; i < events; i++ {
		wn.queueInform(uint64(i%distinct) + 1)
	}
	wn.Flush()
	wireAfter := wireSink.wireBytes()
	wireBefore := int64(events) * hintcache.UpdateSize // one record per event, no coalescing

	// --- Ingest throughput through POST /updates handling. ---
	in := newMetaNode(t, NodeConfig{Name: "bench-ingest"})
	batch := make([]hintcache.Update, events)
	for i := range batch {
		batch[i] = hintcache.Update{Action: hintcache.ActionInform, URLHash: uint64(i) + 1, Machine: 0xABCD}
	}
	msg := hintcache.EncodeUpdates(batch)

	// Before: the pre-pipeline handler body — fresh ReadAll, fresh
	// DecodeUpdates allocation, one table lock per record.
	oldHandler := func(w http.ResponseWriter, r *http.Request) {
		m, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, "read body", http.StatusBadRequest)
			return
		}
		us, err := hintcache.DecodeUpdates(m)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for _, u := range us {
			if u.Machine == in.machineID {
				continue
			}
			_ = in.hints.Apply(u)
		}
		w.WriteHeader(http.StatusNoContent)
	}
	measure := func(h http.HandlerFunc) float64 {
		start := time.Now()
		for i := 0; i < ingestIters; i++ {
			req := httptest.NewRequest(http.MethodPost, "/updates", bytes.NewReader(msg))
			h(httptest.NewRecorder(), req)
		}
		return float64(ingestIters*events) / time.Since(start).Seconds()
	}
	ingestBefore := measure(oldHandler)
	ingestAfter := measure(in.handleUpdates)

	out := struct {
		Description               string  `json:"description"`
		Targets                   int     `json:"targets"`
		Blackholed                int     `json:"blackholed_targets"`
		IntervalMs                float64 `json:"batch_interval_ms"`
		SerialHealthyDeliveryMs   float64 `json:"serial_healthy_delivery_ms"`
		SerialRoundMs             float64 `json:"serial_round_ms"`
		PipelineHealthyDeliveryMs float64 `json:"pipeline_healthy_delivery_ms"`
		PipelineRoundMs           float64 `json:"pipeline_round_ms"`
		IngestBatchRecords        int     `json:"ingest_batch_records"`
		SerialIngestPerSec        float64 `json:"serial_ingest_updates_per_sec"`
		PipelineIngestPerSec      float64 `json:"pipeline_ingest_updates_per_sec"`
		HotSetEvents              int     `json:"hot_set_events"`
		HotSetDistinct            int     `json:"hot_set_distinct_objects"`
		SerialWireBytesPerRound   int64   `json:"serial_wire_bytes_per_round"`
		PipelineWireBytesPerRound int64   `json:"pipeline_wire_bytes_per_round"`
	}{
		Description:               "Metadata plane with one blackholed target among 4: serial flush loop (before) vs per-peer sender pipeline (after); /updates ingest throughput; wire bytes per round under a hot-set workload.",
		Targets:                   targets,
		Blackholed:                1,
		IntervalMs:                float64(interval.Milliseconds()),
		SerialHealthyDeliveryMs:   float64(serialHealthy.Microseconds()) / 1000,
		SerialRoundMs:             float64(serialRound.Microseconds()) / 1000,
		PipelineHealthyDeliveryMs: float64(pipeHealthy.Microseconds()) / 1000,
		PipelineRoundMs:           float64(pipeRound.Microseconds()) / 1000,
		IngestBatchRecords:        events,
		SerialIngestPerSec:        ingestBefore,
		PipelineIngestPerSec:      ingestAfter,
		HotSetEvents:              events,
		HotSetDistinct:            distinct,
		SerialWireBytesPerRound:   wireBefore,
		PipelineWireBytesPerRound: wireAfter,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchClusterOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", *benchClusterOut, data)
}
