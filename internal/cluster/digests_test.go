package cluster

import (
	"testing"
	"time"

	"beyondcache/internal/trace"
)

func startDigestFleet(t *testing.T, nodes int) *Fleet {
	t.Helper()
	f, err := StartFleet(FleetConfig{
		Nodes:          nodes,
		UpdateInterval: time.Hour, // tests pull digests explicitly
		UseDigests:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := f.Close(); err != nil {
			t.Errorf("fleet close: %v", err)
		}
	})
	return f
}

func TestDigestFleetRemoteHit(t *testing.T) {
	f := startDigestFleet(t, 3)
	const url = "http://example.com/dig"
	if _, err := f.Fetch(0, url); err != nil {
		t.Fatal(err)
	}
	// Before any digest pull, node 1 misses to the origin.
	res, err := f.Fetch(1, url)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Miss() {
		t.Fatalf("pre-pull fetch = %+v, want MISS", res)
	}
	// Pull digests fleet-wide: node 2 now resolves to a peer copy.
	f.FlushAll()
	res, err = f.Fetch(2, url)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Remote() {
		t.Fatalf("post-pull fetch = %+v, want REMOTE", res)
	}
	if f.Nodes[2].Stats().DigestsPulled == 0 {
		t.Error("no digests pulled")
	}
}

func TestDigestStalenessFalsePositiveOverWire(t *testing.T) {
	f := startDigestFleet(t, 2)
	const url = "http://example.com/staledig"
	if _, err := f.Fetch(0, url); err != nil {
		t.Fatal(err)
	}
	f.FlushAll() // node 1's copy of node 0's digest includes the object
	// Node 0 drops the object; node 1's digest snapshot is now stale
	// (digests cannot advertise deletions until the next pull).
	if err := f.Purge(0, url); err != nil {
		t.Fatal(err)
	}
	res, err := f.Fetch(1, url)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Miss() || !res.StaleHint() {
		t.Fatalf("fetch with stale digest = %+v, want MISS,STALE-HINT", res)
	}
	if f.Nodes[1].Stats().FalsePositives != 1 {
		t.Errorf("false positives = %d, want 1", f.Nodes[1].Stats().FalsePositives)
	}
	// After a fresh pull the stale entry is gone: purge node 1's own
	// fallback copy first, then the fetch is a clean miss.
	if err := f.Purge(1, url); err != nil {
		t.Fatal(err)
	}
	f.FlushAll()
	res, err = f.Fetch(1, url)
	if err != nil {
		t.Fatal(err)
	}
	if res.StaleHint() {
		t.Errorf("digest still stale after re-pull: %+v", res)
	}
}

func TestDigestFleetReplay(t *testing.T) {
	f := startDigestFleet(t, 4)
	p := trace.DECProfile(trace.ScaleSmall)
	p.Requests = 1000
	p.DistinctURLs = 200
	p.Clients = 32
	p.MaxSize = 64 << 10
	stats, err := f.Replay(trace.MustGenerator(p), ReplayConfig{FlushEvery: 25, StrongConsistency: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RemoteHits == 0 {
		t.Error("digest fleet produced no cache-to-cache hits")
	}
	if stats.HitRatio() <= 0.2 {
		t.Errorf("hit ratio %.3f too low", stats.HitRatio())
	}
}

func TestDigestEndpointDisabledInHintMode(t *testing.T) {
	f := startFleet(t, 1, FleetConfig{})
	resp, err := f.client.Get(f.Nodes[0].URL() + "/digest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("hint-mode /digest returned %d, want 404", resp.StatusCode)
	}
}
