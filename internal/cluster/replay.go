package cluster

import (
	"fmt"
	"io"
	"net/http"
	neturl "net/url"

	"beyondcache/internal/trace"
)

// ReplayStats aggregates the outcomes of a trace replay against a fleet.
type ReplayStats struct {
	Requests   int64
	LocalHits  int64
	RemoteHits int64
	Misses     int64
	StaleHints int64
	Skipped    int64 // uncachable/error requests, not replayed
}

// HitRatio returns the fraction of replayed requests served from a cache.
func (s ReplayStats) HitRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.LocalHits+s.RemoteHits) / float64(s.Requests)
}

// ReplayConfig tunes Replay.
type ReplayConfig struct {
	// FlushEvery forces a fleet-wide hint flush after every N requests
	// (0 leaves propagation to the background batchers).
	FlushEvery int
	// StrongConsistency purges every cached copy when an object's
	// version advances, emulating the simulators' invalidation-based
	// consistency. Without it the prototype serves what it has (weak
	// consistency, like stock Squid).
	StrongConsistency bool
}

// Replay drives the fleet with a trace over real sockets: each request's
// client maps round-robin to a node, the origin is primed with the
// request's object size and version, and the node's /fetch endpoint
// services it. Error and uncachable requests are skipped, as in the
// simulations.
func (f *Fleet) Replay(r trace.Reader, cfg ReplayConfig) (ReplayStats, error) {
	var stats ReplayStats
	versions := make(map[uint64]int64)
	sized := make(map[uint64]struct{})
	for {
		req, err := r.Next()
		if err == io.EOF {
			return stats, nil
		}
		if err != nil {
			return stats, fmt.Errorf("replay: %w", err)
		}
		if !req.Cachable() {
			stats.Skipped++
			continue
		}
		url := req.URL()
		if _, ok := sized[req.Object]; !ok {
			f.Origin.SetSize(url, req.Size)
			sized[req.Object] = struct{}{}
		}
		// Advance the origin's version to match the trace, purging
		// stale copies under strong consistency.
		if prev := versions[req.Object]; req.Version > prev {
			for v := prev; v < req.Version-1; v++ {
				f.Origin.Bump(url)
			}
			if prev != 0 {
				f.Origin.Bump(url)
				if cfg.StrongConsistency {
					f.PurgeAll(url)
				}
			}
			versions[req.Object] = req.Version
		}

		node := req.Client % len(f.Nodes)
		res, err := f.Fetch(node, url)
		if err != nil {
			return stats, fmt.Errorf("replay request %d: %w", req.Seq, err)
		}
		stats.Requests++
		switch {
		case res.Local():
			stats.LocalHits++
		case res.Remote():
			stats.RemoteHits++
		default:
			stats.Misses++
			if res.StaleHint() {
				stats.StaleHints++
			}
		}
		if cfg.FlushEvery > 0 && stats.Requests%int64(cfg.FlushEvery) == 0 {
			f.FlushAll()
		}
	}
}

// PurgeAll drops every node's copy of a URL, ignoring nodes that do not
// have one.
func (f *Fleet) PurgeAll(url string) {
	for _, n := range f.Nodes {
		resp, err := f.client.Post(n.URL()+"/purge?url="+neturl.QueryEscape(url), "", nil)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		_ = resp.StatusCode == http.StatusNotFound // absent copies are fine
	}
}
