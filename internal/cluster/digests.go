package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"beyondcache/internal/digest"
	"beyondcache/internal/hintcache"
	"beyondcache/internal/wire"
)

// Digest support for the prototype: instead of exchanging exact 20-byte
// hint updates, nodes can periodically pull each other's cache digests (the
// Summary Cache / Squid Cache Digests scheme). The digest plane is
// incremental end to end:
//
//   - The node's own digest is a counting Bloom filter maintained in place
//     by digestTrack on every residency transition — GET /digest never
//     walks the cache. Each transition is also journaled, and full
//     snapshots are served from a generation-stamped cached frame that is
//     only re-marshaled when the journal head has moved (concurrent scrape
//     stampedes coalesce onto one build via a singleflight).
//   - Pullers present their journal cursor as ?since=; the owner answers
//     with just the membership ops past it (KindDigestDelta) when the
//     journal still holds them and the delta is smaller than a full
//     snapshot, falling back to the full frame (KindDigestFull) otherwise.
//     Replaying ops is deterministic, so a delta-maintained peer copy is
//     byte-identical to the owner's filter — metadata bytes per round are
//     proportional to churn, not cache size.
//
// Locking: all digest state (own filter, resident set, journal, peer
// copies, cursors, snapshot cache) lives under digestMu. digestTrack and
// delta application take it in write mode; probes and cached-snapshot
// serves take it in read mode.

// wireCompressMin is the frame-compression threshold when
// NodeConfig.WireCompress is on: payloads below it ship raw.
const wireCompressMin = 256

// frameCompressMin resolves the node's compression threshold for metadata
// frames (0 disables compression in wire.AppendFrame).
func (n *Node) frameCompressMin() int {
	if n.cfg.WireCompress {
		return wireCompressMin
	}
	return 0
}

// digestTrack feeds one cache residency transition into the incremental
// digest plane. It is a no-op outside digest mode. The exact resident set
// dedupes non-transitions (a version refresh of an already-resident object
// informs again without the object ever leaving), so the filter and the
// journal see each object enter and leave exactly once per actual
// transition. Counter saturation triggers an immediate rebuild from the
// exact set, which invalidates every outstanding delta cursor.
func (n *Node) digestTrack(urlHash uint64, present bool) {
	if n.own == nil {
		return
	}
	n.digestMu.Lock()
	defer n.digestMu.Unlock()
	if present {
		if _, ok := n.ownPresent[urlHash]; ok {
			return
		}
		n.ownPresent[urlHash] = struct{}{}
		n.own.Add(urlHash)
		n.journal.Append(digest.Op{ID: urlHash})
	} else {
		if _, ok := n.ownPresent[urlHash]; !ok {
			return
		}
		delete(n.ownPresent, urlHash)
		n.own.Remove(urlHash)
		n.journal.Append(digest.Op{ID: urlHash, Remove: true})
	}
	if n.own.Unsound() {
		n.rebuildDigestLocked()
	}
}

// rebuildDigestLocked rebuilds the own digest from the exact resident set
// and invalidates the journal: every outstanding cursor now forces a full
// transfer. Called under digestMu in write mode. Map iteration order is
// nondeterministic, but saturating adds commute, so any order produces the
// same counters.
func (n *Node) rebuildDigestLocked() {
	n.own.Reset()
	for id := range n.ownPresent {
		n.own.Add(id)
	}
	n.journal.Invalidate()
	n.snapValid = false
	n.stats.digestRebuilds.Add(1)
}

// digestSnap is one generation-stamped snapshot frame: the cursor a serve
// advertises MUST be the generation the frame was encoded at, so the two
// travel together through the cache and the singleflight.
type digestSnap struct {
	frame []byte
	gen   uint64
}

// digestSnapshotFrame returns the framed full-snapshot encoding of the own
// digest plus the journal generation it encodes (the client's next delta
// cursor), rebuilding the cached frame only when the generation has moved.
// Concurrent callers coalesce onto one marshal. The returned slice is
// immutable: each build allocates a fresh frame, so a served reference
// stays valid across later rebuilds.
func (n *Node) digestSnapshotFrame() ([]byte, uint64) {
	n.digestMu.RLock()
	if n.snapValid && n.snapGen == n.journal.Head() {
		s := digestSnap{frame: n.snapFrame, gen: n.snapGen}
		n.digestMu.RUnlock()
		return s.frame, s.gen
	}
	n.digestMu.RUnlock()

	out, _ := n.digestFlight.do("snapshot", func() digestSnap {
		n.digestMu.RLock()
		if n.snapValid && n.snapGen == n.journal.Head() {
			// Another builder won between our check and the flight.
			s := digestSnap{frame: n.snapFrame, gen: n.snapGen}
			n.digestMu.RUnlock()
			return s
		}
		gen := n.journal.Head()
		payload := n.own.AppendBinary(make([]byte, 0, wire.HeaderSize+int(n.own.SizeBytes())+16))
		n.digestMu.RUnlock()

		n.snapBuilds.Add(1)
		frame := wire.AppendFrame(nil, wire.KindDigestFull, payload, n.frameCompressMin())

		n.digestMu.Lock()
		// A build raced with concurrent churn iff the head moved while we
		// marshaled; the stale frame is still internally consistent (it
		// matches generation gen), so cache it only if nothing newer
		// exists.
		if !n.snapValid || n.snapGen <= gen {
			n.snapGen = gen
			n.snapValid = true
			n.snapFrame = frame
		}
		n.digestMu.Unlock()
		return digestSnap{frame: frame, gen: gen}
	})
	return out.frame, out.gen
}

// handleDigest serves GET /digest: the node's current contents summary as
// one wire frame — a delta of membership ops when the client's ?since=
// cursor is still journaled and the delta is the smaller transfer, the
// full counting-filter snapshot otherwise.
func (n *Node) handleDigest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	if !n.cfg.UseDigests {
		http.Error(w, "digests disabled", http.StatusNotFound)
		return
	}
	start := time.Now()
	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		var err error
		since, err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad since cursor", http.StatusBadRequest)
			return
		}
	}

	// The advertised cursor is captured under the same lock that encoded
	// the frame: a head read taken afterwards could attribute ops journaled
	// during the gap to this response without delivering them, silently
	// diverging the puller's delta-maintained replica.
	var frame []byte
	var head uint64
	var delta bool
	if since > 0 {
		frame, head, delta = n.digestDeltaFrame(since)
	}
	if !delta {
		frame, head = n.digestSnapshotFrame()
	}

	// Stamp the response with its generation sequence and wall clock so
	// the puller can measure how stale each pulled digest grows between
	// exchanges (the digest twin of the hint batch's X-Hint-Batch stamp),
	// plus the journal cursor for the puller's next delta request.
	stamp := hintcache.Stamp{Seq: n.digestSeq.Add(1), UnixNs: time.Now().UnixNano()}
	hdr := w.Header()
	hdr.Set(headerDigestGenerated, stamp.HeaderValue())
	hdr.Set(headerDigestCursor, strconv.FormatUint(head, 10))
	hdr.Set("Content-Type", "application/octet-stream")
	w.Write(frame)

	if delta {
		n.stats.digestServesDelta.Add(1)
		n.stats.digestServeBytesDelta.Add(int64(len(frame)))
	} else {
		n.stats.digestServesFull.Add(1)
		n.stats.digestServeBytesFull.Add(int64(len(frame)))
	}
	n.hist.digestServe.Observe(time.Since(start))
}

// digestDeltaBufPool recycles the op-payload scratch of delta serves.
var digestDeltaBufPool = sync.Pool{New: func() any { return new([]byte) }}

// digestDeltaFrame encodes the membership ops since the given cursor as a
// KindDigestDelta frame, plus the journal head observed under the same
// lock (the cursor the serve must advertise — exactly the last op the
// frame carries). ok is false — and the caller serves a full snapshot
// instead — when the cursor has aged out of the journal (counted as a
// cursor loss) or when the delta would not beat the full transfer.
func (n *Node) digestDeltaFrame(since uint64) (frame []byte, head uint64, ok bool) {
	bufp := digestDeltaBufPool.Get().(*[]byte)
	defer digestDeltaBufPool.Put(bufp)

	n.digestMu.RLock()
	ops, served := n.journal.AppendSince((*bufp)[:0], since)
	head = n.journal.Head()
	snapSize := int(n.own.SizeBytes())
	n.digestMu.RUnlock()
	*bufp = ops[:0]
	if !served {
		n.stats.digestCursorLost.Add(1)
		return nil, 0, false
	}
	if len(ops) >= snapSize {
		// More churn than filter: the full snapshot is the cheaper (and
		// cacheable) transfer. The cursor itself was fine — not a loss.
		return nil, 0, false
	}
	return wire.AppendFrame(nil, wire.KindDigestDelta, ops, n.frameCompressMin()), head, true
}

// digestBodyLimit bounds one pulled digest's wire size (stored frame and
// declared payload alike).
const digestBodyLimit = 8 << 20

// digestSource is one peer to pull a digest from.
type digestSource struct {
	id  uint64
	url string
}

// digestPullScratch is one worker's reusable buffers: the HTTP body, the
// inflate scratch, and the decoded-op slice. Reusing them across a
// worker's pulls keeps a round from allocating per peer.
type digestPullScratch struct {
	body    []byte
	payload []byte
	ops     []digest.Op
}

// PullDigests fetches every peer's digest now. The batcher calls it
// periodically in digest mode; tests call it directly. Pulls fan out over
// a bounded worker pool (NodeConfig.DigestWorkers), so one round costs
// roughly the slowest peer rather than the sum of all peers, and a sick
// peer burning its retry budget delays only the worker holding it.
func (n *Node) PullDigests() {
	n.peerMu.RLock()
	peers := make([]digestSource, 0, len(n.peers))
	for _, id := range n.peerOrder {
		peers = append(peers, digestSource{id: id, url: n.peers[id]})
	}
	n.peerMu.RUnlock()
	if len(peers) == 0 {
		return
	}

	workers := n.digestWorkers
	if workers > len(peers) {
		workers = len(peers)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch digestPullScratch
			for {
				i := int(next.Add(1)) - 1
				if i >= len(peers) {
					return
				}
				n.pullDigest(peers[i], &scratch)
			}
		}()
	}
	wg.Wait()
}

// pullDigest fetches one peer's digest, retrying under jittered backoff (a
// pull is an idempotent read) before leaving the old digest stale until the
// next exchange. In delta mode the request presents the cursor from the
// last exchange; the peer answers with either the ops since (applied in
// place) or a full snapshot (decoded into the existing filter's storage).
func (n *Node) pullDigest(p digestSource, scratch *digestPullScratch) {
	// Snapshot the cursor for the request. Full mode never sends one, and
	// neither does a first pull (no filter to patch yet).
	var since uint64
	if !n.cfg.DigestFull {
		n.digestMu.RLock()
		if _, ok := n.peerDigests[p.id]; ok {
			since = n.peerCursor[p.id]
		}
		n.digestMu.RUnlock()
	}
	reqURL := p.url + "/digest"
	if since > 0 {
		reqURL += "?since=" + strconv.FormatUint(since, 10)
	}

	var genNs int64
	var cursor uint64
	var frame wire.Frame
	var legacy bool
	retries, err := n.backoff.Retry(context.Background(), 3, func() error {
		ctx, cancel := context.WithTimeout(context.Background(), metadataTimeout)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, reqURL, nil)
		if err != nil {
			return err
		}
		resp, err := n.client.Do(req)
		if err != nil {
			return err
		}
		if st, ok := hintcache.ParseStamp(resp.Header.Get(headerDigestGenerated)); ok {
			genNs = st.UnixNs
		}
		cursor, _ = strconv.ParseUint(resp.Header.Get(headerDigestCursor), 10, 64)
		if resp.StatusCode != http.StatusOK {
			// Check the status before touching the body so an error
			// page is never slurped at full digest size; drain a token
			// amount for connection reuse and give up on this attempt.
			io.CopyN(io.Discard, resp.Body, 4<<10)
			resp.Body.Close()
			return fmt.Errorf("digest pull: status %d", resp.StatusCode)
		}
		scratch.body, err = wire.ReadAllInto(scratch.body[:0], io.LimitReader(resp.Body, digestBodyLimit))
		resp.Body.Close()
		if err != nil {
			return err
		}
		// A peer that predates the wire plane serves raw Bloom-filter
		// bytes with no frame header (their first byte is a filter bit
		// count, never 'b'); keep pulling from it during a rolling
		// upgrade instead of erroring until the fleet converges.
		legacy = !wire.IsFrame(scratch.body)
		if legacy {
			frame = wire.Frame{}
			return nil
		}
		frame, _, err = wire.Decode(scratch.body)
		return err
	})
	n.stats.retries.Add(int64(retries))
	if err != nil {
		n.stats.sendErrors.Add(1)
		return
	}
	if legacy {
		if err := n.applyLegacyDigest(p.id, scratch.body); err != nil {
			n.stats.sendErrors.Add(1)
			return
		}
	} else {
		if frame.RawLen > digestBodyLimit {
			n.stats.sendErrors.Add(1)
			return
		}
		payload, err := frame.Payload(scratch.payload[:0])
		if err != nil {
			n.stats.sendErrors.Add(1)
			return
		}
		if frame.Compressed {
			scratch.payload = payload[:0]
		}
		if err := n.applyDigestResponse(p.id, frame.Kind, payload, cursor, scratch); err != nil {
			n.stats.sendErrors.Add(1)
			return
		}
	}
	now := time.Now().UnixNano()
	if genNs == 0 {
		// Peer without a generation stamp: fall back to the pull time, so
		// staleness still measures the exchange interval.
		genNs = now
	}
	n.digestMu.Lock()
	prev := n.digestGen[p.id]
	n.digestGen[p.id] = genNs
	n.digestMu.Unlock()
	if prev != 0 {
		// The snapshot this pull replaces was generated at prev; it has
		// been the node's view of this peer ever since — that age is the
		// digest staleness the paper's summary-scheme tradeoff pays.
		n.digestStale.Observe(hostPortOf(p.url), time.Duration(now-prev))
	}
	n.stats.digestsPulled.Add(1)
}

// applyDigestResponse installs one pulled digest frame: a full snapshot
// replaces (reusing the existing filter's storage when shapes match) and a
// delta patches in place. The peer's next-pull cursor advances either way.
func (n *Node) applyDigestResponse(peerID uint64, kind wire.Kind, payload []byte, cursor uint64, scratch *digestPullScratch) error {
	switch kind {
	case wire.KindDigestFull:
		n.digestMu.Lock()
		defer n.digestMu.Unlock()
		f, ok := n.peerDigests[peerID]
		if !ok {
			f = &digest.Counting{}
			n.peerDigests[peerID] = f
		}
		if err := f.UnmarshalBinary(payload); err != nil {
			delete(n.peerDigests, peerID)
			delete(n.peerCursor, peerID)
			return err
		}
		n.peerCursor[peerID] = cursor
		return nil

	case wire.KindDigestDelta:
		ops, err := digest.AppendDecodedOps(scratch.ops[:0], payload)
		scratch.ops = ops[:0]
		if err != nil {
			return err
		}
		n.digestMu.Lock()
		defer n.digestMu.Unlock()
		f, ok := n.peerDigests[peerID]
		if !ok {
			// A delta with no base to patch: drop the cursor so the next
			// pull fetches a full snapshot.
			delete(n.peerCursor, peerID)
			return fmt.Errorf("digest delta for unknown peer filter")
		}
		for _, op := range ops {
			f.Apply(op)
		}
		n.peerCursor[peerID] = cursor
		n.stats.digestDeltaOps.Add(int64(len(ops)))
		return nil

	default:
		return fmt.Errorf("unexpected digest frame kind %s", kind)
	}
}

// applyLegacyDigest installs a pre-framing digest body: raw plain-filter
// bits from a peer that predates the wire plane, widened into the peer's
// counting slot (which probes identically). Legacy peers journal nothing,
// so the cursor resets and every pull from them stays a full fetch until
// the peer upgrades.
func (n *Node) applyLegacyDigest(peerID uint64, body []byte) error {
	n.digestMu.Lock()
	defer n.digestMu.Unlock()
	f, ok := n.peerDigests[peerID]
	if !ok {
		f = &digest.Counting{}
		n.peerDigests[peerID] = f
	}
	if err := f.UnmarshalFilter(body); err != nil {
		delete(n.peerDigests, peerID)
		delete(n.peerCursor, peerID)
		return err
	}
	n.peerCursor[peerID] = 0
	return nil
}

// digestPeer returns the base URL of the first peer whose digest claims the
// object, or "" if none does.
func (n *Node) digestPeer(urlHash uint64) string {
	n.peerMu.RLock()
	order := make([]uint64, len(n.peerOrder))
	copy(order, n.peerOrder)
	n.peerMu.RUnlock()

	var found uint64
	n.digestMu.RLock()
	for _, id := range order {
		if f, ok := n.peerDigests[id]; ok && f.MayContain(urlHash) {
			found = id
			break
		}
	}
	n.digestMu.RUnlock()
	if found == 0 {
		return ""
	}
	n.peerMu.RLock()
	defer n.peerMu.RUnlock()
	return n.peers[found]
}

// validateDigestConfig applies digest-mode defaults.
func validateDigestConfig(cfg *NodeConfig) error {
	if !cfg.UseDigests {
		return nil
	}
	if cfg.DigestCapacity <= 0 {
		cfg.DigestCapacity = 8192
	}
	if cfg.DigestBitsPerEntry <= 0 {
		cfg.DigestBitsPerEntry = 8
	}
	if cfg.DigestBitsPerEntry > 64 {
		return fmt.Errorf("cluster: digest bits/entry %g implausibly large", cfg.DigestBitsPerEntry)
	}
	return nil
}
