package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"beyondcache/internal/digest"
	"beyondcache/internal/hintcache"
)

// Digest support for the prototype: instead of exchanging exact 20-byte
// hint updates, nodes can periodically pull each other's Bloom-filter cache
// digests (the Summary Cache / Squid Cache Digests scheme). A node's own
// digest is rebuilt from its true cache contents on demand, so a freshly
// pulled digest is accurate; it then goes stale until the next exchange.
//
// Locking: the node's own digest is mutated (reset + rebuilt) and marshaled
// under digestMu in write mode; pulled peer digests are immutable once
// decoded, so probes only need digestMu in read mode to fetch the pointer.

// digestBytes rebuilds the node's digest from a snapshot of its cache
// contents and returns the wire encoding.
func (n *Node) digestBytes() ([]byte, error) {
	objs := n.data.Objects()
	n.digestMu.Lock()
	defer n.digestMu.Unlock()
	f := n.ownDigest
	f.Reset()
	for _, o := range objs {
		f.Add(o.ID)
	}
	return f.MarshalBinary()
}

// handleDigest serves GET /digest: the node's current contents summary.
func (n *Node) handleDigest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	if !n.cfg.UseDigests {
		http.Error(w, "digests disabled", http.StatusNotFound)
		return
	}
	data, err := n.digestBytes()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// Stamp the snapshot with its generation sequence and wall clock so
	// the puller can measure how stale each pulled digest grows between
	// exchanges (the digest twin of the hint batch's X-Hint-Batch stamp).
	stamp := hintcache.Stamp{Seq: n.digestSeq.Add(1), UnixNs: time.Now().UnixNano()}
	w.Header().Set(headerDigestGenerated, stamp.HeaderValue())
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// digestBodyLimit bounds one pulled digest's wire size.
const digestBodyLimit = 8 << 20

// digestSource is one peer to pull a digest from.
type digestSource struct {
	id  uint64
	url string
}

// PullDigests fetches every peer's digest now. The batcher calls it
// periodically in digest mode; tests call it directly. Pulls fan out over
// a bounded worker pool (NodeConfig.DigestWorkers), so one round costs
// roughly the slowest peer rather than the sum of all peers, and a sick
// peer burning its retry budget delays only the worker holding it. Each
// worker reuses one read buffer across its pulls (digest.Decode copies out
// of it), so a round does not allocate per peer.
func (n *Node) PullDigests() {
	n.peerMu.RLock()
	peers := make([]digestSource, 0, len(n.peers))
	for _, id := range n.peerOrder {
		peers = append(peers, digestSource{id: id, url: n.peers[id]})
	}
	n.peerMu.RUnlock()
	if len(peers) == 0 {
		return
	}

	workers := n.digestWorkers
	if workers > len(peers) {
		workers = len(peers)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []byte
			for {
				i := int(next.Add(1)) - 1
				if i >= len(peers) {
					return
				}
				buf = n.pullDigest(peers[i], buf)
			}
		}()
	}
	wg.Wait()
}

// pullDigest fetches one peer's digest, retrying under jittered backoff (a
// pull is an idempotent read) before leaving the old digest stale until the
// next exchange. buf is the worker's reusable read buffer; the possibly
// regrown buffer is returned for the next pull.
func (n *Node) pullDigest(p digestSource, buf []byte) []byte {
	var f *digest.Filter
	var genNs int64
	retries, err := n.backoff.Retry(context.Background(), 3, func() error {
		ctx, cancel := context.WithTimeout(context.Background(), metadataTimeout)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/digest", nil)
		if err != nil {
			return err
		}
		resp, err := n.client.Do(req)
		if err != nil {
			return err
		}
		if st, ok := hintcache.ParseStamp(resp.Header.Get(headerDigestGenerated)); ok {
			genNs = st.UnixNs
		}
		if resp.StatusCode != http.StatusOK {
			// Check the status before touching the body so an error
			// page is never slurped at full digest size; drain a token
			// amount for connection reuse and give up on this attempt.
			io.CopyN(io.Discard, resp.Body, 4<<10)
			resp.Body.Close()
			return fmt.Errorf("digest pull: status %d", resp.StatusCode)
		}
		buf, err = readAllInto(buf[:0], io.LimitReader(resp.Body, digestBodyLimit))
		resp.Body.Close()
		if err != nil {
			return err
		}
		f, err = digest.Decode(buf)
		return err
	})
	n.stats.retries.Add(int64(retries))
	if err != nil {
		n.stats.sendErrors.Add(1)
		return buf
	}
	now := time.Now().UnixNano()
	if genNs == 0 {
		// Peer without a generation stamp: fall back to the pull time, so
		// staleness still measures the exchange interval.
		genNs = now
	}
	n.digestMu.Lock()
	prev := n.digestGen[p.id]
	n.digestGen[p.id] = genNs
	n.peerDigests[p.id] = f
	n.digestMu.Unlock()
	if prev != 0 {
		// The snapshot this pull replaces was generated at prev; it has
		// been the node's view of this peer ever since — that age is the
		// digest staleness the paper's summary-scheme tradeoff pays.
		n.digestStale.Observe(hostPortOf(p.url), time.Duration(now-prev))
	}
	n.stats.digestsPulled.Add(1)
	return buf
}

// readAllInto reads r to EOF into buf, reusing buf's capacity and growing
// it only when the payload outgrows it. The filled slice is returned.
func readAllInto(buf []byte, r io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		nn, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+nn]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// digestPeer returns the base URL of the first peer whose digest claims the
// object, or "" if none does. Peer digests are immutable after decode, so
// the probe itself runs outside any lock.
func (n *Node) digestPeer(urlHash uint64) string {
	n.peerMu.RLock()
	order := make([]uint64, len(n.peerOrder))
	copy(order, n.peerOrder)
	n.peerMu.RUnlock()

	var found uint64
	n.digestMu.RLock()
	for _, id := range order {
		if f, ok := n.peerDigests[id]; ok && f.MayContain(urlHash) {
			found = id
			break
		}
	}
	n.digestMu.RUnlock()
	if found == 0 {
		return ""
	}
	n.peerMu.RLock()
	defer n.peerMu.RUnlock()
	return n.peers[found]
}

// validateDigestConfig applies digest-mode defaults.
func validateDigestConfig(cfg *NodeConfig) error {
	if !cfg.UseDigests {
		return nil
	}
	if cfg.DigestCapacity <= 0 {
		cfg.DigestCapacity = 8192
	}
	if cfg.DigestBitsPerEntry <= 0 {
		cfg.DigestBitsPerEntry = 8
	}
	if cfg.DigestBitsPerEntry > 64 {
		return fmt.Errorf("cluster: digest bits/entry %g implausibly large", cfg.DigestBitsPerEntry)
	}
	return nil
}
