package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"

	"beyondcache/internal/digest"
)

// Digest support for the prototype: instead of exchanging exact 20-byte
// hint updates, nodes can periodically pull each other's Bloom-filter cache
// digests (the Summary Cache / Squid Cache Digests scheme). A node's own
// digest is rebuilt from its true cache contents on demand, so a freshly
// pulled digest is accurate; it then goes stale until the next exchange.
//
// Locking: the node's own digest is mutated (reset + rebuilt) and marshaled
// under digestMu in write mode; pulled peer digests are immutable once
// decoded, so probes only need digestMu in read mode to fetch the pointer.

// digestBytes rebuilds the node's digest from a snapshot of its cache
// contents and returns the wire encoding.
func (n *Node) digestBytes() ([]byte, error) {
	objs := n.data.Objects()
	n.digestMu.Lock()
	defer n.digestMu.Unlock()
	f := n.ownDigest
	f.Reset()
	for _, o := range objs {
		f.Add(o.ID)
	}
	return f.MarshalBinary()
}

// handleDigest serves GET /digest: the node's current contents summary.
func (n *Node) handleDigest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	if !n.cfg.UseDigests {
		http.Error(w, "digests disabled", http.StatusNotFound)
		return
	}
	data, err := n.digestBytes()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// PullDigests fetches every peer's digest now. The batcher calls it
// periodically in digest mode; tests call it directly.
func (n *Node) PullDigests() {
	type peer struct {
		id  uint64
		url string
	}
	n.peerMu.RLock()
	peers := make([]peer, 0, len(n.peers))
	for id, u := range n.peers {
		peers = append(peers, peer{id: id, url: u})
	}
	n.peerMu.RUnlock()

	for _, p := range peers {
		// Digest pulls are idempotent reads, so a failed pull retries
		// under jittered backoff before the peer's digest is left stale
		// until the next exchange.
		var f *digest.Filter
		retries, err := n.backoff.Retry(context.Background(), 3, func() error {
			ctx, cancel := context.WithTimeout(context.Background(), metadataTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/digest", nil)
			if err != nil {
				return err
			}
			resp, err := n.client.Do(req)
			if err != nil {
				return err
			}
			data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
			resp.Body.Close()
			if err != nil {
				return err
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("digest pull: status %d", resp.StatusCode)
			}
			f, err = digest.Decode(data)
			return err
		})
		n.stats.retries.Add(int64(retries))
		if err != nil {
			n.stats.sendErrors.Add(1)
			continue
		}
		n.digestMu.Lock()
		n.peerDigests[p.id] = f
		n.digestMu.Unlock()
		n.stats.digestsPulled.Add(1)
	}
}

// digestPeer returns the base URL of the first peer whose digest claims the
// object, or "" if none does. Peer digests are immutable after decode, so
// the probe itself runs outside any lock.
func (n *Node) digestPeer(urlHash uint64) string {
	n.peerMu.RLock()
	order := make([]uint64, len(n.peerOrder))
	copy(order, n.peerOrder)
	n.peerMu.RUnlock()

	var found uint64
	n.digestMu.RLock()
	for _, id := range order {
		if f, ok := n.peerDigests[id]; ok && f.MayContain(urlHash) {
			found = id
			break
		}
	}
	n.digestMu.RUnlock()
	if found == 0 {
		return ""
	}
	n.peerMu.RLock()
	defer n.peerMu.RUnlock()
	return n.peers[found]
}

// validateDigestConfig applies digest-mode defaults.
func validateDigestConfig(cfg *NodeConfig) error {
	if !cfg.UseDigests {
		return nil
	}
	if cfg.DigestCapacity <= 0 {
		cfg.DigestCapacity = 8192
	}
	if cfg.DigestBitsPerEntry <= 0 {
		cfg.DigestBitsPerEntry = 8
	}
	if cfg.DigestBitsPerEntry > 64 {
		return fmt.Errorf("cluster: digest bits/entry %g implausibly large", cfg.DigestBitsPerEntry)
	}
	return nil
}
