package cluster

import (
	"fmt"
	"io"
	"net/http"

	"beyondcache/internal/digest"
)

// Digest support for the prototype: instead of exchanging exact 20-byte
// hint updates, nodes can periodically pull each other's Bloom-filter cache
// digests (the Summary Cache / Squid Cache Digests scheme). A node's own
// digest is rebuilt from its true cache contents on demand, so a freshly
// pulled digest is accurate; it then goes stale until the next exchange.

// rebuildDigestLocked regenerates the node's digest from its cache
// contents. Callers must hold n.mu.
func (n *Node) rebuildDigestLocked() *digest.Filter {
	f := n.ownDigest
	f.Reset()
	for _, o := range n.data.Objects() {
		f.Add(o.ID)
	}
	return f
}

// handleDigest serves GET /digest: the node's current contents summary.
func (n *Node) handleDigest(w http.ResponseWriter, r *http.Request) {
	if !n.cfg.UseDigests {
		http.Error(w, "digests disabled", http.StatusNotFound)
		return
	}
	n.mu.Lock()
	data, err := n.rebuildDigestLocked().MarshalBinary()
	n.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// PullDigests fetches every peer's digest now. The batcher calls it
// periodically in digest mode; tests call it directly.
func (n *Node) PullDigests() {
	n.mu.Lock()
	type peer struct {
		id  uint64
		url string
	}
	peers := make([]peer, 0, len(n.peers))
	for id, u := range n.peers {
		peers = append(peers, peer{id: id, url: u})
	}
	n.mu.Unlock()

	for _, p := range peers {
		resp, err := n.client.Get(p.url + "/digest")
		if err != nil {
			n.mu.Lock()
			n.stats.SendErrors++
			n.mu.Unlock()
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			n.mu.Lock()
			n.stats.SendErrors++
			n.mu.Unlock()
			continue
		}
		f, err := digest.Decode(data)
		if err != nil {
			n.mu.Lock()
			n.stats.SendErrors++
			n.mu.Unlock()
			continue
		}
		n.mu.Lock()
		n.peerDigests[p.id] = f
		n.stats.DigestsPulled++
		n.mu.Unlock()
	}
}

// digestPeerLocked returns the first peer whose digest claims the object.
// Callers must hold n.mu.
func (n *Node) digestPeerLocked(urlHash uint64) string {
	for _, id := range n.peerOrder {
		if f, ok := n.peerDigests[id]; ok && f.MayContain(urlHash) {
			return n.peers[id]
		}
	}
	return ""
}

// validateDigestConfig applies digest-mode defaults.
func validateDigestConfig(cfg *NodeConfig) error {
	if !cfg.UseDigests {
		return nil
	}
	if cfg.DigestCapacity <= 0 {
		cfg.DigestCapacity = 8192
	}
	if cfg.DigestBitsPerEntry <= 0 {
		cfg.DigestBitsPerEntry = 8
	}
	if cfg.DigestBitsPerEntry > 64 {
		return fmt.Errorf("cluster: digest bits/entry %g implausibly large", cfg.DigestBitsPerEntry)
	}
	return nil
}
