package cluster

import (
	"sync"
	"time"

	"beyondcache/internal/hintcache"
)

// pendq is a bounded, coalescing queue of pending hint updates. It backs
// both the node-level pending queue (updates awaiting the next batch round)
// and each per-peer sender queue (updates awaiting that peer's next send).
//
// Coalescing: the queue holds at most one record per URL hash. A second
// update for the same object overwrites the first in place — inform after
// inform dedupes, inform followed by invalidate collapses to the
// invalidate, and invalidate followed by a re-fill's inform collapses to
// the inform. The receiver applies records independently, so sending only
// the last action per object is observationally equivalent to sending the
// whole history, and the wire batch shrinks to one 20-byte record per
// object per round instead of one per event (the paper's principle 2: the
// metadata path must stay cheap).
//
// Bounding: when the queue is full, the oldest inform is dropped first —
// informs are advisory (a lost inform costs a possible remote hit), while
// invalidates protect correctness-adjacent freshness (a lost invalidate
// leaves a stale hint to mislead a peer), so invalidates are preserved over
// informs. Only when the queue is all invalidates is the oldest invalidate
// dropped. Drops are counted so backpressure is visible in /metrics.
// Freshness: the queue remembers the wall clock of the oldest enqueue it
// currently holds (oldestNs). drain hands that stamp out alongside the
// records so the sender can mark the batch with its true age; receivers
// turn the mark into a hint-propagation-lag observation. Eviction does
// not advance the stamp (an evicted oldest record leaves the reported age
// slightly pessimistic), which keeps the bookkeeping one int64.
type pendq struct {
	mu  sync.Mutex
	cap int // max records; <= 0 means unbounded

	order    []uint64 // URL hashes in arrival order, oldest first
	m        map[uint64]pendRec
	oldestNs int64 // wall clock of the oldest held enqueue; 0 when empty
}

// pendRec is the queue's view of one object's latest pending action.
type pendRec struct {
	action  hintcache.Action
	machine uint64
}

func newPendq(capRecords int) *pendq {
	return &pendq{cap: capRecords, m: make(map[uint64]pendRec)}
}

// add folds one update into the queue. It reports whether the update
// coalesced onto an existing record and whether an older record was
// dropped to make room.
func (q *pendq) add(u hintcache.Update) (coalesced, dropped bool) {
	q.mu.Lock()
	if q.oldestNs == 0 {
		q.oldestNs = time.Now().UnixNano()
	}
	coalesced, dropped = q.addLocked(u)
	q.mu.Unlock()
	return coalesced, dropped
}

// addBatch folds a batch under one lock acquisition, returning how many
// records coalesced and how many were dropped for room. stampNs is the
// batch's own oldest-enqueue stamp (0 for none); the queue keeps the
// minimum of its stamp and the batch's, so re-queued records never look
// fresher than they are.
func (q *pendq) addBatch(batch []hintcache.Update, stampNs int64) (coalesced, dropped int) {
	q.mu.Lock()
	if stampNs != 0 && (q.oldestNs == 0 || stampNs < q.oldestNs) {
		q.oldestNs = stampNs
	} else if q.oldestNs == 0 && len(batch) > 0 {
		q.oldestNs = time.Now().UnixNano()
	}
	for _, u := range batch {
		c, d := q.addLocked(u)
		if c {
			coalesced++
		}
		if d {
			dropped++
		}
	}
	q.mu.Unlock()
	return coalesced, dropped
}

func (q *pendq) addLocked(u hintcache.Update) (coalesced, dropped bool) {
	if _, ok := q.m[u.URLHash]; ok {
		// Last action wins; the record keeps its queue position.
		q.m[u.URLHash] = pendRec{action: u.Action, machine: u.Machine}
		return true, false
	}
	if q.cap > 0 && len(q.order) >= q.cap {
		q.evictLocked()
		dropped = true
	}
	q.order = append(q.order, u.URLHash)
	q.m[u.URLHash] = pendRec{action: u.Action, machine: u.Machine}
	return false, dropped
}

// evictLocked removes the oldest inform, or the oldest record outright when
// the queue holds only invalidates.
func (q *pendq) evictLocked() {
	victim := 0
	for i, h := range q.order {
		if q.m[h].action == hintcache.ActionInform {
			victim = i
			break
		}
	}
	delete(q.m, q.order[victim])
	copy(q.order[victim:], q.order[victim+1:])
	q.order = q.order[:len(q.order)-1]
}

// drain appends every queued record, oldest first, onto dst and empties
// the queue, returning the drained records' oldest-enqueue stamp (0 when
// the queue was empty). The queue's internal storage is retained for
// reuse.
func (q *pendq) drain(dst []hintcache.Update) ([]hintcache.Update, int64) {
	q.mu.Lock()
	for _, h := range q.order {
		r := q.m[h]
		dst = append(dst, hintcache.Update{Action: r.action, URLHash: h, Machine: r.machine})
	}
	q.order = q.order[:0]
	clear(q.m)
	stamp := q.oldestNs
	q.oldestNs = 0
	q.mu.Unlock()
	return dst, stamp
}

// len returns the queued record count.
func (q *pendq) len() int {
	q.mu.Lock()
	n := len(q.order)
	q.mu.Unlock()
	return n
}
