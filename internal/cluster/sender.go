package cluster

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"beyondcache/internal/hintcache"
	"beyondcache/internal/wire"
)

// peerSender owns the hint-update pipeline to one target: a bounded
// coalescing queue fed by distribute, drained by a dedicated goroutine that
// encodes and POSTs batches under the per-attempt metadata timeout with
// jittered backoff retries. Because every target has its own sender, a slow
// or blackholed peer burns its retry budget on its own goroutine while the
// other senders deliver at full speed — the serial flush loop's
// head-of-line blocking (one sick peer delaying every healthy peer behind
// it by up to the whole retry budget) becomes a per-peer property.
//
// Generations make the asynchronous pipeline awaitable: enqueue stamps the
// queue with a new seq, the loop records done = the seq it observed before
// draining, and wait blocks until done catches up. Flush distributes a
// batch and waits on every sender, so the synchronous contract tests rely
// on (delivery attempted before Flush returns) survives the rebuild.
type peerSender struct {
	n      *Node
	target string // base URL

	q *pendq
	// dropped counts records this sender's queue bound discarded; depth
	// and drops surface per peer in /metrics.
	dropped atomic.Int64
	// batchSeq numbers the batches actually sent to this target; it rides
	// the X-Hint-Batch stamp so the receiver can see delivery gaps.
	batchSeq atomic.Int64

	mu      sync.Mutex
	cond    *sync.Cond
	seq     int64 // generation of the newest enqueued work
	done    int64 // generation the loop has finished (sent or abandoned)
	stopped bool

	notify chan struct{}
	stop   chan struct{}
	exited chan struct{}
}

// newPeerSender builds and starts a sender for one target.
func newPeerSender(n *Node, target string, queueCap int) *peerSender {
	s := &peerSender{
		n:      n,
		target: target,
		q:      newPendq(queueCap),
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		exited: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.loop()
	return s
}

// enqueue folds a batch into the sender's queue (carrying the batch's
// oldest-enqueue stamp forward) and returns the generation to wait on for
// its delivery.
func (s *peerSender) enqueue(batch []hintcache.Update, stampNs int64) int64 {
	_, dropped := s.q.addBatch(batch, stampNs)
	if dropped > 0 {
		s.dropped.Add(int64(dropped))
		s.n.stats.queueDropped.Add(int64(dropped))
	}
	s.mu.Lock()
	s.seq++
	seq := s.seq
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return seq
}

// currentSeq returns the newest generation without enqueueing anything —
// what an empty flush waits on to act as a delivery barrier.
func (s *peerSender) currentSeq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// wait blocks until generation seq has been sent or abandoned (or the
// sender is stopped).
func (s *peerSender) wait(seq int64) {
	s.mu.Lock()
	for s.done < seq && !s.stopped {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// shutdown stops the loop and waits for it to exit. Pending records are
// abandoned (Close runs a final synchronous flush before shutting senders
// down, so anything queued in normal operation has already been attempted).
func (s *peerSender) shutdown() {
	close(s.stop)
	<-s.exited
}

// loop drains and sends until stopped. The scratch batch and wire buffer
// are loop-owned and reused across rounds, so steady-state sending does not
// allocate per round.
func (s *peerSender) loop() {
	defer func() {
		s.mu.Lock()
		s.stopped = true
		s.cond.Broadcast()
		s.mu.Unlock()
		close(s.exited)
	}()
	var scratch []hintcache.Update
	var recs, frame []byte
	for {
		select {
		case <-s.stop:
			return
		case <-s.notify:
		}
		for {
			s.mu.Lock()
			target := s.seq
			s.mu.Unlock()
			var stampNs int64
			scratch, stampNs = s.q.drain(scratch[:0])
			if len(scratch) > 0 {
				recs = recs[:0]
				for _, u := range scratch {
					recs = hintcache.AppendUpdate(recs, u)
				}
				// One frame per batch: the records ride as a KindHintBatch
				// payload, optionally flate-compressed past the threshold.
				frame = wire.AppendFrame(frame[:0], wire.KindHintBatch, recs, s.n.frameCompressMin())
				s.send(frame, len(scratch), stampNs)
			}
			s.mu.Lock()
			if s.done < target {
				s.done = target
			}
			more := s.seq > s.done
			s.cond.Broadcast()
			s.mu.Unlock()
			if !more {
				break
			}
		}
	}
}

// send POSTs one encoded batch, retrying under jittered backoff (hint
// batches are idempotent — the table applies them by record). Failure past
// the retry budget abandons the batch for this target, exactly as the
// serial flush did; the node's counters and the per-target fan-out
// histogram record the outcome.
func (s *peerSender) send(body []byte, records int, stampNs int64) {
	n := s.n
	start := time.Now()
	stamp := ""
	if stampNs > 0 {
		stamp = hintcache.Stamp{Seq: s.batchSeq.Add(1), UnixNs: stampNs}.HeaderValue()
	}
	retries, err := n.backoff.Retry(context.Background(), 3, func() error {
		ctx, cancel := context.WithTimeout(context.Background(), metadataTimeout)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.target+"/updates", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.Header.Set("X-Relay-From", n.URL())
		if stamp != "" {
			req.Header.Set(headerHintBatch, stamp)
		}
		resp, err := n.client.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil
	})
	n.stats.retries.Add(int64(retries))
	// Delivery outcomes double as membership liveness evidence in
	// partition mode (noteSendOutcome is a no-op otherwise): a target that
	// burned the whole retry budget counts one failed contact.
	n.noteSendOutcome(s.target, err == nil)
	if err != nil {
		n.stats.sendErrors.Add(1)
		return
	}
	n.stats.batchesSent.Add(1)
	n.stats.updatesSent.Add(int64(records))
	if n.partitioned() {
		n.stats.wireHintBytesPart.Add(int64(len(body)))
	} else {
		n.stats.wireHintBytes.Add(int64(len(body)))
	}
	n.hist.fanout.Observe(time.Since(start))
}
