package cluster

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	neturl "net/url"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"beyondcache/internal/faults"
	"beyondcache/internal/resilience"
)

// Chaos integration tests: the fault-injection layer (internal/faults)
// driving the resilience machinery (internal/resilience) through the real
// node handlers. Every test here runs with injected faults somewhere on the
// wire and asserts the client-visible contract the paper's principles
// demand: a stale or dead hint must never make a request slower than going
// straight to the origin, and must never fail a request the origin could
// have served.

// benchResilienceOut, when set, makes TestRecordResilienceBench measure the
// blackholed-peer miss path and write the comparison JSON there:
//
//	go test ./internal/cluster -run TestRecordResilienceBench \
//	    -bench-resilience-out ../../BENCH_resilience.json
var benchResilienceOut = flag.String("bench-resilience-out", "", "write the resilience bench JSON to this path")

// chaosFleet is a testFleet whose nodes are built by the caller's config
// hook, so chaos tests can set fault specs, hedge budgets, and breaker
// shapes per test.
func newChaosFleet(t *testing.T, n int, tweak func(i int, cfg *NodeConfig)) *testFleet {
	t.Helper()
	f := &testFleet{
		origin: NewOrigin(256),
		client: &http.Client{Timeout: 10 * time.Second},
	}
	f.originS = httptest.NewServer(f.origin.Handler())
	t.Cleanup(f.originS.Close)
	for i := 0; i < n; i++ {
		cfg := NodeConfig{
			Name:           fmt.Sprintf("chaos-%d", i),
			OriginURL:      f.originS.URL,
			UpdateInterval: time.Hour,
			Seed:           int64(i) + 1,
		}
		if tweak != nil {
			tweak(i, &cfg)
		}
		node, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(node.Handler())
		node.Bind(srv.URL)
		f.nodes = append(f.nodes, node)
		f.servers = append(f.servers, srv)
		t.Cleanup(func() {
			if err := node.Close(); err != nil {
				t.Errorf("node close: %v", err)
			}
			srv.Close()
		})
	}
	for _, a := range f.nodes {
		for _, b := range f.nodes {
			if a != b {
				a.AddPeer(b.URL())
			}
		}
	}
	return f
}

// prime caches urls at node i and flushes, so every other node holds hints
// pointing there.
func (f *testFleet) prime(t *testing.T, node int, urls []string) {
	t.Helper()
	for _, u := range urls {
		if _, _, _, err := f.fetch(node, u); err != nil {
			t.Fatalf("prime %s: %v", u, err)
		}
	}
	f.flushAll()
}

// noBreaker disables breaking (threshold > 1 can never be reached), so a
// test exercises the hedge path on every request.
var noBreaker = resilience.BreakerConfig{FailureThreshold: 2}

func urlsN(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://chaos.example/%s-%d", prefix, i)
	}
	return out
}

func p99(durations []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)*99/100]
}

// TestChaosHedgedMissLatencyBudget is the subsystem's acceptance test: with
// one hinted peer blackholed, the hedged miss path's p99 must stay within
// 2x the direct-origin p99 (the paper's "do not slow down misses" held
// under a dead peer). The breaker is disabled so every request truly pays
// the hedge, not a breaker skip.
func TestChaosHedgedMissLatencyBudget(t *testing.T) {
	const originLatency = 30 * time.Millisecond
	const budget = 15 * time.Millisecond
	const samples = 30

	var peerHost string
	f := newChaosFleet(t, 2, func(i int, cfg *NodeConfig) {
		cfg.Breaker = noBreaker
		cfg.HedgeBudget = budget
		if i == 0 {
			// The spec targets node 1's host:port, rewritten below once
			// the servers exist; start with a placeholder injector.
			inj, err := faults.New("", 1)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Faults = inj
		}
	})
	f.origin.SetLatency(originLatency)

	hinted := urlsN("hedged", samples)
	f.prime(t, 1, hinted)
	peerHost = hostPortOf(f.nodes[1].URL())
	if err := f.nodes[0].FaultInjector().SetSpec(peerHost + ":blackhole"); err != nil {
		t.Fatal(err)
	}
	// Heal before teardown so the close-time flush isn't blackholed.
	t.Cleanup(func() { _ = f.nodes[0].FaultInjector().SetSpec("") })

	// Direct-origin baseline: URLs nothing holds a hint for.
	var direct []time.Duration
	for _, u := range urlsN("direct", samples) {
		start := time.Now()
		how, _, _, err := f.fetch(0, u)
		if err != nil {
			t.Fatalf("direct fetch: %v", err)
		}
		if how != "MISS" {
			t.Fatalf("direct fetch served %q, want MISS", how)
		}
		direct = append(direct, time.Since(start))
	}

	// Hedged path: every URL's hint points at the blackholed peer.
	var hedged []time.Duration
	for _, u := range hinted {
		start := time.Now()
		how, _, _, err := f.fetch(0, u)
		if err != nil {
			t.Fatalf("hedged fetch: %v", err)
		}
		if how != "MISS,HEDGE" {
			t.Fatalf("hedged fetch served %q, want MISS,HEDGE", how)
		}
		hedged = append(hedged, time.Since(start))
	}

	directP99, hedgedP99 := p99(direct), p99(hedged)
	t.Logf("direct p99 %v, hedged p99 %v (budget %v)", directP99, hedgedP99, budget)
	if hedgedP99 > 2*directP99 {
		t.Errorf("hedged miss p99 %v exceeds 2x direct-origin p99 %v: a dead peer is slowing down misses", hedgedP99, directP99)
	}

	st := f.nodes[0].Stats()
	if st.HedgesStarted < samples || st.HedgeOriginWins < samples {
		t.Errorf("stats = %+v, want >= %d hedges started and origin wins", st, samples)
	}
}

// TestChaosBreakerOpensAndSkips drives a blackholed peer until its breaker
// opens, asserts later requests skip the peer without paying the hedge
// budget (BREAKER-SKIP hop, plain MISS), then heals the fault and checks
// the half-open probe closes the breaker again.
func TestChaosBreakerOpensAndSkips(t *testing.T) {
	const cooldown = 200 * time.Millisecond
	f := newChaosFleet(t, 2, func(i int, cfg *NodeConfig) {
		cfg.HedgeBudget = 10 * time.Millisecond
		cfg.Breaker = resilience.BreakerConfig{
			Window:           4,
			FailureThreshold: 0.5,
			MinSamples:       2,
			Cooldown:         cooldown,
		}
		if i == 0 {
			inj, err := faults.New("", 1)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Faults = inj
		}
	})

	hinted := urlsN("breaker", 8)
	f.prime(t, 1, hinted)
	peerURL := f.nodes[1].URL()
	if err := f.nodes[0].FaultInjector().SetSpec(hostPortOf(peerURL) + ":blackhole"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = f.nodes[0].FaultInjector().SetSpec("") })

	// Two hedged losses open the breaker (window 4, min 2, threshold .5).
	for _, u := range hinted[:2] {
		how, _, _, err := f.fetch(0, u)
		if err != nil {
			t.Fatal(err)
		}
		if how != "MISS,HEDGE" {
			t.Fatalf("pre-trip fetch served %q, want MISS,HEDGE", how)
		}
	}
	if st := f.nodes[0].Breakers()[peerURL]; st.State != resilience.Open {
		t.Fatalf("breaker state after losses = %v, want open", st.State)
	}

	// While open: the hinted peer is skipped outright — no hedge wait,
	// a BREAKER-SKIP hop in the trace, plain MISS to the client.
	res, err := FetchFrom(f.client, f.nodes[0].URL(), hinted[2])
	if err != nil {
		t.Fatal(err)
	}
	if res.How != "MISS" {
		t.Errorf("breaker-open fetch served %q, want MISS", res.How)
	}
	found := false
	for _, h := range res.Hops {
		if h.Outcome == "BREAKER-SKIP" {
			found = true
		}
	}
	if !found {
		t.Errorf("no BREAKER-SKIP hop in trace %v", res.Hops)
	}
	if st := f.nodes[0].Stats(); st.BreakerSkips == 0 {
		t.Errorf("stats = %+v, want breaker skips > 0", st)
	}

	// Heal the network and wait out the cooldown: the next hinted fetch
	// is the half-open probe, succeeds as a cache-to-cache transfer, and
	// closes the breaker.
	if err := f.nodes[0].FaultInjector().SetSpec(""); err != nil {
		t.Fatal(err)
	}
	time.Sleep(cooldown + 50*time.Millisecond)
	how, _, _, err := f.fetch(0, hinted[3])
	if err != nil {
		t.Fatal(err)
	}
	if how != "REMOTE" {
		t.Errorf("post-heal fetch served %q, want REMOTE", how)
	}
	if st := f.nodes[0].Breakers()[peerURL]; st.State != resilience.Closed {
		t.Errorf("breaker state after successful probe = %v, want closed", st.State)
	}
}

// TestChaosFlappingPeerNeverFailsClient flaps the path to the hinted peer
// down and up while a client fetches through the front node: every request
// must succeed regardless of which phase it lands in — peer failures
// surface only as outcome taxonomy (REMOTE vs MISS variants), never as
// client errors.
func TestChaosFlappingPeerNeverFailsClient(t *testing.T) {
	f := newChaosFleet(t, 2, func(i int, cfg *NodeConfig) {
		cfg.Breaker = noBreaker
		cfg.HedgeBudget = 10 * time.Millisecond
		if i == 0 {
			inj, err := faults.New("", 1)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Faults = inj
		}
	})

	hinted := urlsN("flap", 30)
	f.prime(t, 1, hinted)
	if err := f.nodes[0].FaultInjector().SetSpec(hostPortOf(f.nodes[1].URL()) + ":flap=20ms/20ms"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = f.nodes[0].FaultInjector().SetSpec("") })

	outcomes := map[string]int{}
	for _, u := range hinted {
		how, _, _, err := f.fetch(0, u)
		if err != nil {
			t.Fatalf("fetch during flapping: %v", err)
		}
		outcomes[how]++
		time.Sleep(3 * time.Millisecond) // walk across flap phases
	}
	t.Logf("outcomes under flapping: %v", outcomes)
	for how := range outcomes {
		if how != "REMOTE" && !strings.HasPrefix(how, "MISS") {
			t.Errorf("unexpected outcome %q under flapping", how)
		}
	}
}

// TestPeerDeathHintDemotion kills a peer outright (its server is gone, not
// just faulted) and checks the stale hint is paid once and then demoted:
// the first fetch falls through to the origin as MISS,STALE-HINT, and after
// a purge the refetch is a clean MISS — the dead peer's hint no longer
// exists to mislead anyone.
func TestPeerDeathHintDemotion(t *testing.T) {
	f := newChaosFleet(t, 2, nil)
	const url = "http://chaos.example/dead-peer"
	f.prime(t, 1, []string{url})

	// Kill node 1 for real: refused connections, not injected faults.
	if err := f.nodes[1].Close(); err != nil {
		t.Fatal(err)
	}
	f.servers[1].Close()

	how, _, _, err := f.fetch(0, url)
	if err != nil {
		t.Fatalf("fetch with dead hinted peer: %v", err)
	}
	if how != "MISS,STALE-HINT" {
		t.Errorf("first fetch served %q, want MISS,STALE-HINT", how)
	}
	if st := f.nodes[0].Stats(); st.FalsePositives != 1 {
		t.Errorf("stats = %+v, want exactly one false positive", st)
	}

	// Drop the now-cached copy; the refetch must go straight to the
	// origin — the hint was demoted, not retried.
	if err := f.purge(0, url); err != nil {
		t.Fatal(err)
	}
	how, _, _, err = f.fetch(0, url)
	if err != nil {
		t.Fatal(err)
	}
	if how != "MISS" {
		t.Errorf("post-demotion fetch served %q, want MISS (hint should be gone)", how)
	}
}

// TestEndpointMethodGuards locks read-only endpoints to GET and mutation
// endpoints to POST: the wrong verb gets 405, never a handler side effect.
func TestEndpointMethodGuards(t *testing.T) {
	f := newChaosFleet(t, 1, nil)
	base := f.nodes[0].URL()
	q := "?url=" + neturl.QueryEscape("http://chaos.example/guard")

	getOnly := []string{"/metrics", "/debug/traces", "/stats", "/fetch" + q, "/object" + q, "/digest"}
	for _, path := range getOnly {
		resp, err := f.client.Post(base+path, "", nil)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", path, resp.StatusCode)
		}
	}

	for _, path := range []string{"/updates", "/purge" + q} {
		req, err := http.NewRequest(http.MethodGet, base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := f.client.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s = %d, want 405", path, resp.StatusCode)
		}
	}
}

// TestRecordResilienceBench measures the blackholed-peer miss path three
// ways — direct origin (no hint), hedging disabled (sequential peer
// timeout then origin), and hedging on — and writes the p50/p99 comparison
// to -bench-resilience-out. Skipped unless the flag is set; the committed
// BENCH_resilience.json is its output.
func TestRecordResilienceBench(t *testing.T) {
	if *benchResilienceOut == "" {
		t.Skip("set -bench-resilience-out to record the resilience bench")
	}
	const (
		originLatency = 30 * time.Millisecond
		peerTimeout   = 250 * time.Millisecond
		budget        = 20 * time.Millisecond
		samples       = 40
	)

	measure := func(hedge time.Duration, prefix string) (miss []time.Duration) {
		f := newChaosFleet(t, 2, func(i int, cfg *NodeConfig) {
			cfg.Breaker = noBreaker
			cfg.HedgeBudget = hedge
			cfg.PeerTimeout = peerTimeout
			if i == 0 {
				inj, err := faults.New("", 1)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Faults = inj
			}
		})
		f.origin.SetLatency(originLatency)
		hinted := urlsN(prefix, samples)
		f.prime(t, 1, hinted)
		if err := f.nodes[0].FaultInjector().SetSpec(hostPortOf(f.nodes[1].URL()) + ":blackhole"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = f.nodes[0].FaultInjector().SetSpec("") })
		for _, u := range hinted {
			start := time.Now()
			if _, _, _, err := f.fetch(0, u); err != nil {
				t.Fatal(err)
			}
			miss = append(miss, time.Since(start))
		}
		return miss
	}

	direct := func() (miss []time.Duration) {
		f := newChaosFleet(t, 1, nil)
		f.origin.SetLatency(originLatency)
		for _, u := range urlsN("bench-direct", samples) {
			start := time.Now()
			if _, _, _, err := f.fetch(0, u); err != nil {
				t.Fatal(err)
			}
			miss = append(miss, time.Since(start))
		}
		return miss
	}()

	seq := measure(-1, "bench-seq")          // hedge off: peer timeout, then origin
	hedged := measure(budget, "bench-hedge") // hedge on

	type row struct {
		P50Ms float64 `json:"p50_ms"`
		P99Ms float64 `json:"p99_ms"`
	}
	mk := func(d []time.Duration) row {
		sorted := append([]time.Duration(nil), d...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return row{
			P50Ms: float64(sorted[len(sorted)/2].Microseconds()) / 1000,
			P99Ms: float64(p99(d).Microseconds()) / 1000,
		}
	}
	out := struct {
		Description     string  `json:"description"`
		Samples         int     `json:"samples"`
		OriginLatencyMs float64 `json:"origin_latency_ms"`
		PeerTimeoutMs   float64 `json:"peer_timeout_ms"`
		HedgeBudgetMs   float64 `json:"hedge_budget_ms"`
		DirectOrigin    row     `json:"direct_origin"`
		HedgeOff        row     `json:"blackholed_peer_hedge_off"`
		HedgeOn         row     `json:"blackholed_peer_hedge_on"`
	}{
		Description:     "Miss-path latency with the hinted peer blackholed: direct origin vs sequential (hedge off) vs hedged race.",
		Samples:         samples,
		OriginLatencyMs: float64(originLatency.Milliseconds()),
		PeerTimeoutMs:   float64(peerTimeout.Milliseconds()),
		HedgeBudgetMs:   float64(budget.Milliseconds()),
		DirectOrigin:    mk(direct),
		HedgeOff:        mk(seq),
		HedgeOn:         mk(hedged),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchResilienceOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", *benchResilienceOut, data)
}
