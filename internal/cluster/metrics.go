package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"

	"beyondcache/internal/faults"
	"beyondcache/internal/obs"
	"beyondcache/internal/resilience"
	"beyondcache/internal/store"
)

// Prometheus text-format /metrics endpoints for the three server kinds of
// the prototype (Node, Origin, Relay). The exposition is hand-rolled on top
// of internal/obs — no client library, matching the repository's
// zero-dependency stance. Metric names are frozen by the golden list in
// testdata/metric_names.golden; renaming one is an interface change and
// must update that file deliberately.

// contentTypeExpo is the Prometheus text exposition content type.
const contentTypeExpo = "text/plain; version=0.0.4; charset=utf-8"

// expoGET guards a metrics-style endpoint: only GET is allowed.
func expoGET(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

// writeExpo serves a built exposition.
func writeExpo(w http.ResponseWriter, e *obs.Expo) {
	w.Header().Set("Content-Type", contentTypeExpo)
	io.WriteString(w, e.String())
}

// Metrics builds the node's full exposition: request counters by outcome,
// hint-protocol counters, hint-table counters, latency histograms per
// outcome class, and cache/hint-table occupancy gauges (including
// per-shard eviction series).
func (n *Node) Metrics() *obs.Expo {
	e := obs.NewExpo()
	st := n.stats.snapshot()
	e.Counter("beyondcache_fetch_total",
		"Successful /fetch requests by terminal outcome class.",
		st.LocalHits, obs.L("outcome", "local"))
	e.Counter("beyondcache_fetch_total", "", st.RemoteHits, obs.L("outcome", "remote"))
	e.Counter("beyondcache_fetch_total", "", st.Misses, obs.L("outcome", "miss"))
	e.Counter("beyondcache_fetch_coalesced_total",
		"Subset of local hits served by sharing another request's in-flight fill.",
		st.CoalescedHits)
	e.Counter("beyondcache_fetch_false_positives_total",
		"Stale hints and digest false positives: peer probes paid before the origin.",
		st.FalsePositives)
	e.Counter("beyondcache_peer_serves_total",
		"Objects served to peers over /object.", st.PeerServes)
	e.Counter("beyondcache_peer_rejects_total",
		"Peer /object probes rejected because the object was not cached.", st.PeerRejects)
	e.Counter("beyondcache_hint_updates_sent_total",
		"Hint updates sent (updates x targets reached).", st.UpdatesSent)
	e.Counter("beyondcache_hint_updates_received_total",
		"Hint updates received over /updates.", st.UpdatesReceived)
	e.Counter("beyondcache_hint_batches_sent_total",
		"Hint-update batch POSTs completed.", st.BatchesSent)
	e.Counter("beyondcache_hint_send_errors_total",
		"Hint-update batch POSTs that failed.", st.SendErrors)
	e.Counter("beyondcache_digest_pulls_total",
		"Peer digest pulls completed (digest mode).", st.DigestsPulled)

	// Incremental digest plane: serve modes, delta-proportional bytes,
	// cursor losses, saturation rebuilds, and framed hint-batch wire bytes
	// (see DESIGN.md §13).
	e.Counter("beyondcache_digest_serves_total",
		"GET /digest responses by transfer mode.",
		st.DigestServesFull, obs.L("mode", "full"))
	e.Counter("beyondcache_digest_serves_total", "",
		st.DigestServesDelta, obs.L("mode", "delta"))
	e.Counter("beyondcache_digest_serve_bytes_total",
		"Frame bytes shipped by GET /digest responses, by transfer mode.",
		st.DigestServeBytesFull, obs.L("mode", "full"))
	e.Counter("beyondcache_digest_serve_bytes_total", "",
		st.DigestServeBytesDelta, obs.L("mode", "delta"))
	e.Counter("beyondcache_digest_cursor_lost_total",
		"Delta digest requests whose cursor had aged out of the journal (full snapshot served instead).",
		st.DigestCursorLost)
	e.Counter("beyondcache_digest_rebuilds_total",
		"Own-digest rebuilds forced by counting-filter saturation.",
		st.DigestRebuilds)
	e.Counter("beyondcache_digest_delta_ops_total",
		"Membership ops applied from pulled digest deltas.",
		st.DigestDeltaOps)
	e.Counter("beyondcache_hint_wire_bytes_total",
		"Framed hint-batch bytes successfully POSTed to /updates targets, by routing mode.",
		st.WireHintBytes, obs.L("mode", "broadcast"))
	e.Counter("beyondcache_hint_wire_bytes_total", "",
		st.WireHintBytesPartitioned, obs.L("mode", "partitioned"))

	// Partitioned hint directory (DESIGN.md §14). Families are emitted in
	// every mode (zero-valued under broadcast) so the /metrics surface is
	// mode-independent.
	e.Counter("beyondcache_hint_home_hops_total",
		"Hint-home consults taken on the miss path, by outcome.",
		st.HintHomeHits, obs.L("outcome", "hit"))
	e.Counter("beyondcache_hint_home_hops_total", "",
		st.HintHomeMisses, obs.L("outcome", "miss"))
	e.Counter("beyondcache_hint_home_hops_total", "",
		st.HintHomeErrors, obs.L("outcome", "error"))
	e.Counter("beyondcache_hint_home_serves_total",
		"GET /hinthome consults served as a hint home, by outcome.",
		st.HintHomeServes, obs.L("outcome", "hit"))
	e.Counter("beyondcache_hint_home_serves_total", "",
		st.HintHomeServeMisses, obs.L("outcome", "miss"))
	e.Counter("beyondcache_hint_rehome_objects_total",
		"Re-homing work units: records re-announced, forwarded, or dropped because their owner set changed.",
		st.RehomedObjects)
	var partitionObjects, overlayMembers float64
	if n.partitioned() {
		partitionObjects = float64(n.hints.Occupied())
		overlayMembers = float64(n.overlay.View().Size())
	}
	e.Gauge("beyondcache_hint_directory_partition_objects",
		"Directory records held as a hint home (0 in broadcast mode).", partitionObjects)
	e.Gauge("beyondcache_overlay_members",
		"Live members in the hint-routing overlay (0 in broadcast mode).", overlayMembers)

	// Metadata-plane pipeline: coalescing, queue bounds, and oversize
	// rejects (see DESIGN.md §10).
	e.Counter("beyondcache_hint_coalesced_total",
		"Pending hint updates folded onto an existing record for the same object before send.",
		st.Coalesced)
	e.Counter("beyondcache_hint_pending_dropped_total",
		"Records dropped by the bounded node-level pending queue (oldest informs first).",
		st.PendingDropped)
	e.Gauge("beyondcache_hint_pending_records",
		"Hint updates queued for the next batch round.", float64(n.pend.len()))
	e.Counter("beyondcache_updates_oversize_total",
		"POST /updates bodies refused with 413 for exceeding the size limit.",
		st.OversizeRejects)

	// Resilience: breaker activity, hedged races, and metadata retries.
	e.Counter("beyondcache_breaker_skips_total",
		"Peer probes skipped outright because the peer's breaker was open.",
		st.BreakerSkips)
	e.Counter("beyondcache_hedges_started_total",
		"Races where the origin fetch launched while the hinted peer was still silent.",
		st.HedgesStarted)
	e.Counter("beyondcache_hedges_total",
		"Resolved hedged races by winner.",
		st.HedgeOriginWins, obs.L("winner", "origin"))
	e.Counter("beyondcache_hedges_total", "", st.HedgePeerWins, obs.L("winner", "peer"))
	e.Counter("beyondcache_retries_total",
		"Metadata-path re-attempts (hint-batch POSTs, digest pulls) spent after a failure.",
		st.Retries)

	// Per-peer breaker families. Breakers are created eagerly in AddPeer,
	// so every peer reports from the first scrape. The aggregate open
	// gauge is emitted even with no peers so the family always exists.
	breakers := n.breakers.Snapshot()
	peerNames := make([]string, 0, len(breakers))
	for peer := range breakers {
		peerNames = append(peerNames, peer)
	}
	sort.Strings(peerNames)
	open := 0
	for _, peer := range peerNames {
		bs := breakers[peer]
		if bs.State != resilience.Closed {
			open++
		}
		label := obs.L("peer", hostPortOf(peer))
		e.Gauge("beyondcache_breaker_state",
			"Per-peer breaker position: 0 closed, 1 open, 2 half-open.",
			float64(bs.State), label)
		e.Counter("beyondcache_breaker_transitions_total",
			"Per-peer breaker state changes.", bs.Transitions, label)
		e.Counter("beyondcache_breaker_refusals_total",
			"Per-peer requests refused while the breaker was open or probing.", bs.Refusals, label)
	}
	e.Gauge("beyondcache_breakers_open",
		"Peers whose breaker is currently not closed.", float64(open))

	// Per-peer sender queues. Senders are created eagerly alongside the
	// breakers (AddPeer/AddUpdateTarget), so every target reports from
	// the first scrape.
	n.peerMu.RLock()
	targets := make([]string, 0, len(n.senders))
	for t := range n.senders {
		targets = append(targets, t)
	}
	senders := make(map[string]*peerSender, len(n.senders))
	for t, s := range n.senders {
		senders[t] = s
	}
	n.peerMu.RUnlock()
	sort.Strings(targets)
	maxQueued := 0
	for _, t := range targets {
		s := senders[t]
		depth := s.q.len()
		if depth > maxQueued {
			maxQueued = depth
		}
		label := obs.L("peer", hostPortOf(t))
		e.Gauge("beyondcache_hint_queue_depth",
			"Records waiting in the per-peer sender queue.", float64(depth), label)
		e.Counter("beyondcache_hint_queue_dropped_total",
			"Records dropped from the per-peer sender queue under backpressure (oldest informs first).",
			s.dropped.Load(), label)
	}

	// Metadata freshness (DESIGN.md §11). The aggregate (unlabeled) series
	// of each histogram family exists from the first scrape; per-peer series
	// appear once that peer has contributed an observation. Directory lag is
	// the node's view of how far its peers' hint directories trail reality:
	// records still pending the next batch round plus the deepest per-peer
	// sender backlog.
	e.Histogram("beyondcache_hint_propagation_seconds",
		"Age of hint batches at receipt: receiver wall clock minus the batch's oldest-enqueue stamp, by sending peer.",
		n.hintLag.All().Snapshot())
	n.hintLag.Each(func(label string, s obs.HistogramSnapshot) {
		e.Histogram("beyondcache_hint_propagation_seconds", "", s, obs.L("peer", label))
	})
	e.Histogram("beyondcache_digest_staleness_seconds",
		"Age of the peer digest each pull replaces: time since that snapshot was generated, by peer.",
		n.digestStale.All().Snapshot())
	n.digestStale.Each(func(label string, s obs.HistogramSnapshot) {
		e.Histogram("beyondcache_digest_staleness_seconds", "", s, obs.L("peer", label))
	})
	e.Gauge("beyondcache_hint_directory_lag_objects",
		"Updates enqueued locally but not yet delivered to every peer: pending records plus the deepest sender queue.",
		float64(n.pend.len()+maxQueued))

	// Injected-fault counters, one series per fault kind; all zero (but
	// present) when the node runs without a fault spec.
	var fc faults.Counts
	if n.inj != nil {
		fc = n.inj.Counts()
	}
	e.Counter("beyondcache_faults_injected_total",
		"Faults injected into outbound requests by the chaos layer, by kind.",
		fc.Latency, obs.L("kind", "latency"))
	e.Counter("beyondcache_faults_injected_total", "", fc.Errors, obs.L("kind", "error"))
	e.Counter("beyondcache_faults_injected_total", "", fc.Drops, obs.L("kind", "drop"))
	e.Counter("beyondcache_faults_injected_total", "", fc.Hangs, obs.L("kind", "hang"))
	e.Counter("beyondcache_faults_injected_total", "", fc.Flaps, obs.L("kind", "flap"))

	hs := n.hints.Stats()
	e.Counter("beyondcache_hint_lookups_total", "Hint-table probes.", hs.Lookups)
	e.Counter("beyondcache_hint_hits_total", "Hint-table probes that found a record.", hs.Hits)
	e.Counter("beyondcache_hint_inserts_total", "Hint-table inserts.", hs.Inserts)
	e.Counter("beyondcache_hint_evictions_total", "Hint records evicted by set pressure.", hs.Evictions)
	e.Counter("beyondcache_hint_deletes_total", "Hint records deleted by invalidations.", hs.Deletes)
	e.Counter("beyondcache_hint_conflicts_total", "Hint inserts that displaced a live record.", hs.Conflicts)
	e.Counter("beyondcache_hint_nonowner_rejected_total",
		"Hint inserts refused by the ownership filter (object not homed here).", hs.FilterRejects)

	e.Histogram("beyondcache_fetch_duration_seconds",
		"Client-facing /fetch latency by terminal outcome class.",
		n.hist.local.Snapshot(), obs.L("outcome", "LOCAL"))
	e.Histogram("beyondcache_fetch_duration_seconds", "",
		n.hist.localDisk.Snapshot(), obs.L("outcome", "LOCAL-DISK"))
	e.Histogram("beyondcache_fetch_duration_seconds", "",
		n.hist.coalesced.Snapshot(), obs.L("outcome", "LOCAL,COALESCED"))
	e.Histogram("beyondcache_fetch_duration_seconds", "",
		n.hist.remote.Snapshot(), obs.L("outcome", "REMOTE"))
	e.Histogram("beyondcache_fetch_duration_seconds", "",
		n.hist.miss.Snapshot(), obs.L("outcome", "MISS"))
	e.Histogram("beyondcache_false_positive_probe_seconds",
		"Wasted peer-probe time paid before falling through to the origin.",
		n.hist.falsePositive.Snapshot())
	e.Histogram("beyondcache_hint_flush_seconds",
		"Duration of one hint-batch flush round across all targets.",
		n.hist.flush.Snapshot())
	e.Histogram("beyondcache_hint_fanout_seconds",
		"Per-target hint-batch delivery time (one sender's successful POST, retries included).",
		n.hist.fanout.Snapshot())
	e.Histogram("beyondcache_peer_serve_seconds",
		"Time to serve a cached object to a peer over /object.",
		n.hist.peerServe.Snapshot())
	e.Histogram("beyondcache_digest_serve_seconds",
		"Time to serve GET /digest (cached full snapshot or delta encode).",
		n.hist.digestServe.Snapshot())

	e.Gauge("beyondcache_cache_bytes_used",
		"Bytes charged against the object cache's capacity.", float64(n.data.Used()))
	e.Gauge("beyondcache_cache_bytes_capacity",
		"Configured object-cache capacity in bytes.", float64(n.data.Capacity()))
	e.Gauge("beyondcache_cache_entries",
		"Objects resident in the cache.", float64(n.data.Len()))
	e.Gauge("beyondcache_cache_shards",
		"Lock-stripe count of the object cache.", float64(n.data.Shards()))
	for i, sh := range n.data.PerShard() {
		shard := obs.L("shard", strconv.Itoa(i))
		e.Counter("beyondcache_cache_shard_evictions_total",
			"Capacity evictions per cache shard.", sh.Evictions, shard)
	}
	cs := n.data.Stats()
	e.Counter("beyondcache_cache_inserts_total",
		"Object-cache inserts across shards.", cs.Inserts)
	e.Counter("beyondcache_cache_evictions_total",
		"Object-cache capacity evictions across shards.", cs.Evictions)

	// Disk tier (DESIGN.md §12). Every family is emitted — zero-valued —
	// even for memory-only nodes, so the /metrics surface is identical
	// across the fleet and dashboards need no existence checks.
	var ds store.Stats
	var ss store.SpillStats
	var promotions int64
	if n.tier != nil {
		ds = n.tier.DiskStats()
		ss = n.tier.SpillStats()
		promotions = n.tier.Promotions()
	}
	n.recoveryMu.Lock()
	rec := n.recovery
	n.recoveryMu.Unlock()
	e.Counter("beyondcache_fetch_disk_hits_total",
		"Subset of local /fetch hits served from the disk tier (X-Cache LOCAL-DISK).",
		st.DiskHits)
	e.Counter("beyondcache_store_disk_hits_total",
		"Disk-tier reads that passed verification and served an object.", ds.Hits)
	e.Counter("beyondcache_store_disk_misses_total",
		"Disk-tier probes that found no valid object.", ds.Misses)
	e.Counter("beyondcache_store_puts_total",
		"Objects written to the disk tier.", ds.Puts)
	e.Counter("beyondcache_store_put_skipped_total",
		"Disk writes skipped because the same or a newer version was already stored.",
		ds.PutSkipped)
	e.Counter("beyondcache_store_evictions_total",
		"Objects evicted from the disk tier by capacity pressure.", ds.Evictions)
	e.Counter("beyondcache_store_verify_failures_total",
		"Object files quarantined after failing header or body-checksum verification.",
		ds.VerifyFailures)
	e.Counter("beyondcache_store_compressed_total",
		"Bodies stored flate-compressed (at least CompressMin bytes and actually shrank).",
		ds.Compressed)
	e.Counter("beyondcache_store_promotions_total",
		"Disk hits promoted back into the memory tier.", promotions)
	e.Gauge("beyondcache_store_disk_objects",
		"Objects indexed in the disk tier.", float64(ds.Objects))
	e.Gauge("beyondcache_store_disk_bytes_used",
		"On-disk bytes (object headers included) charged against the disk capacity.",
		float64(ds.UsedBytes))
	e.Gauge("beyondcache_store_disk_bytes_capacity",
		"Configured disk-tier capacity in bytes (0 = unbounded).", float64(ds.Capacity))
	e.Gauge("beyondcache_store_spill_queue_depth",
		"Evicted objects waiting in the write-behind queue.", float64(ss.Depth))
	e.Counter("beyondcache_store_spilled_total",
		"Evicted objects written through to disk by the write-behind worker.", ss.Spilled)
	e.Counter("beyondcache_store_spill_coalesced_total",
		"Evictions folded onto an already-queued spill of the same object.", ss.Coalesced)
	e.Counter("beyondcache_store_spill_dropped_total",
		"Evictions that never reached disk, by reason; each drop left both tiers and queued an invalidate.",
		ss.Drops, obs.L("reason", "overflow"))
	e.Counter("beyondcache_store_spill_dropped_total", "",
		ss.Errors, obs.L("reason", "write-error"))
	e.Gauge("beyondcache_store_recovery_duration_seconds",
		"Wall time of the boot recovery scan (0 until it finishes).",
		rec.Duration.Seconds())
	e.Gauge("beyondcache_store_recovery_objects",
		"Valid objects recovered and republished by the boot scan.", float64(rec.Objects))
	e.Counter("beyondcache_store_recovery_tmp_removed_total",
		"Orphaned tmp files (crash mid-write) removed by the boot recovery scan.",
		int64(rec.TmpRemoved))
	e.Counter("beyondcache_store_recovery_quarantined_total",
		"Files quarantined by the boot recovery scan for invalid or truncated headers.",
		int64(rec.Quarantined))

	e.Gauge("beyondcache_hint_table_entries",
		"Hint-table slot count.", float64(n.hints.Entries()))
	e.Gauge("beyondcache_hint_table_occupied",
		"Hint-table slots holding a live record.", float64(n.hints.Occupied()))
	e.Gauge("beyondcache_hint_table_bytes",
		"Hint-table size in bytes (16 per slot).", float64(n.hints.SizeBytes()))

	e.Counter("beyondcache_traces_sampled_total",
		"Requests whose full trace was recorded in the /debug/traces ring.",
		n.traces.Sampled())
	e.Counter("beyondcache_spans_recorded_total",
		"Structured spans recorded in the /debug/spans ring.",
		n.spans.Recorded())
	e.Gauge("beyondcache_node_info",
		"Constant 1; the name label identifies the node.", 1, obs.L("name", n.label()))
	return e
}

// handleMetrics serves GET /metrics in Prometheus text format.
func (n *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !expoGET(w, r) {
		return
	}
	writeExpo(w, n.Metrics())
}

// tracesMaxN caps how many traces one /debug/traces response returns; it
// doubles as the default when no ?n= is given (the ring itself is smaller
// in every stock configuration).
const tracesMaxN = 1024

// handleTraces serves GET /debug/traces: the sampled-trace ring as JSON,
// oldest first, plus the effective sample rate so a reader knows how much
// traffic the ring represents. ?n= trims the response to the newest n
// traces (capped at tracesMaxN).
func (n *Node) handleTraces(w http.ResponseWriter, r *http.Request) {
	if !expoGET(w, r) {
		return
	}
	limit := tracesMaxN
	if v := r.URL.Query().Get("n"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p <= 0 {
			http.Error(w, "n must be a positive integer", http.StatusBadRequest)
			return
		}
		if p < limit {
			limit = p
		}
	}
	traces := n.traces.Snapshot()
	if len(traces) > limit {
		traces = traces[len(traces)-limit:]
	}
	payload := struct {
		Node       string      `json:"node"`
		SampleRate float64     `json:"sampleRate"`
		Sampled    int64       `json:"sampled"`
		Traces     []obs.Trace `json:"traces"`
	}{
		Node:       n.label(),
		SampleRate: n.sampler.Rate(),
		Sampled:    n.traces.Sampled(),
		Traces:     traces,
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(payload); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// spansMaxPull caps how many spans one /debug/spans response carries; it is
// also the default when no ?limit= is given. A scraper that is far behind
// simply polls again with the returned cursor.
const spansMaxPull = 4096

// handleSpans serves GET /debug/spans: the structured-span ring in its
// binary wire encoding (internal/obs AppendSpan records), oldest first from
// the ?since= cursor. The response carries the scrape state in headers —
// X-Span-Cursor is the value to pass as ?since= next time, X-Span-Lost
// counts spans the ring overwrote before this scrape reached them, and
// X-Span-Node names the serving node so an inspector can label the spans'
// source without a second request.
func (n *Node) handleSpans(w http.ResponseWriter, r *http.Request) {
	if !expoGET(w, r) {
		return
	}
	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		p, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "since must be an unsigned integer", http.StatusBadRequest)
			return
		}
		since = p
	}
	limit := spansMaxPull
	if v := r.URL.Query().Get("limit"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p <= 0 {
			http.Error(w, "limit must be a positive integer", http.StatusBadRequest)
			return
		}
		if p < limit {
			limit = p
		}
	}
	spans, next, lost := n.spans.Since(since, limit)
	w.Header().Set("X-Span-Node", n.label())
	w.Header().Set("X-Span-Cursor", strconv.FormatUint(next, 10))
	w.Header().Set("X-Span-Lost", strconv.FormatUint(lost, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(obs.AppendSpans(nil, spans))
}

// Metrics builds the origin's exposition.
func (o *Origin) Metrics() *obs.Expo {
	e := obs.NewExpo()
	o.mu.Lock()
	fetches := o.fetches
	bumped := len(o.versions)
	o.mu.Unlock()
	e.Counter("beyondcache_origin_fetches_total",
		"Object requests the origin has served.", fetches)
	e.Gauge("beyondcache_origin_bumped_objects",
		"URLs whose version has been bumped at least once.", float64(bumped))
	e.Histogram("beyondcache_origin_serve_seconds",
		"Origin /obj service time, including the configured artificial latency.",
		o.serveHist.Snapshot())
	return e
}

func (o *Origin) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !expoGET(w, r) {
		return
	}
	writeExpo(w, o.Metrics())
}

// Metrics builds the relay's exposition.
func (r *Relay) Metrics() *obs.Expo {
	e := obs.NewExpo()
	r.mu.RLock()
	subs := len(r.subscribers)
	r.mu.RUnlock()
	e.Counter("beyondcache_relay_updates_received_total",
		"Hint updates received for forwarding.", r.received.Load())
	e.Counter("beyondcache_relay_updates_forwarded_total",
		"Hint-update deliveries made (updates x subscribers reached).", r.forwarded.Load())
	e.Counter("beyondcache_relay_retries_total",
		"Forward re-attempts spent after a failed delivery.", r.retries.Load())
	e.Gauge("beyondcache_relay_subscribers",
		"Registered forwarding targets.", float64(subs))
	e.Histogram("beyondcache_relay_forward_seconds",
		"Time to fan one batch out to all subscribers.", r.forwardHist.Snapshot())
	return e
}

func (r *Relay) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if !expoGET(w, req) {
		return
	}
	writeExpo(w, r.Metrics())
}
