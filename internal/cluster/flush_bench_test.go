package cluster

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"beyondcache/internal/hintcache"
)

// BenchmarkFlushFanout measures one coalesced flush round to four update
// targets: 4096 hot-set events over 512 distinct objects are queued and
// delivered per iteration. It doubles as the coalescing regression check —
// each target may see at most one record per distinct object per round.
// CI runs it once (-benchtime=1x) as a smoke test.
func BenchmarkFlushFanout(b *testing.B) {
	const (
		targets  = 4
		events   = 4096
		distinct = 512
	)
	var sinks [targets]*updateSink
	for i := range sinks {
		sinks[i] = newUpdateSink(b)
	}
	n := newMetaNode(b, NodeConfig{Name: "bench-flush"})
	for _, s := range sinks {
		n.AddUpdateTarget(s.srv.URL)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for e := 0; e < events; e++ {
			n.queueInform(uint64(e%distinct) + 1)
		}
		n.Flush()
	}
	b.StopTimer()
	for i, s := range sinks {
		if got := len(s.records()); got > b.N*distinct {
			b.Fatalf("sink %d received %d records over %d rounds, want <= %d (coalescing broken)",
				i, got, b.N, b.N*distinct)
		}
	}
}

// BenchmarkUpdatesIngest measures POST /updates handling throughput: one
// pre-encoded 4096-record batch per iteration through the real handler
// (pooled body buffer, pooled decode scratch, batched hint apply).
func BenchmarkUpdatesIngest(b *testing.B) {
	const records = 4096
	n := newMetaNode(b, NodeConfig{Name: "bench-ingest"})
	batch := make([]hintcache.Update, records)
	for i := range batch {
		batch[i] = hintcache.Update{Action: hintcache.ActionInform, URLHash: uint64(i) + 1, Machine: 0xABCD}
	}
	msg := hintcache.EncodeUpdates(batch)
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/updates", bytes.NewReader(msg))
		rec := httptest.NewRecorder()
		n.handleUpdates(rec, req)
		if rec.Code != http.StatusNoContent {
			b.Fatalf("handleUpdates = %d, want 204", rec.Code)
		}
	}
}
