package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	neturl "net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"beyondcache/internal/cache"
	"beyondcache/internal/digest"
	"beyondcache/internal/faults"
	"beyondcache/internal/hintcache"
	"beyondcache/internal/obs"
	"beyondcache/internal/overlay"
	"beyondcache/internal/resilience"
	"beyondcache/internal/store"
	"beyondcache/internal/wire"
)

// Protocol headers.
const (
	// headerVersion carries the object's version.
	headerVersion = "X-Object-Version"
	// headerCache reports how a /fetch was served: LOCAL, LOCAL-DISK
	// (served from the persistent tier and promoted), REMOTE, or MISS
	// (origin fetch), optionally suffixed with ",STALE-HINT" when a
	// false positive was paid first, ",HEDGE" when the origin outran a
	// silent hinted peer, or "LOCAL,COALESCED" when the request shared
	// another request's in-flight fill.
	headerCache = "X-Cache"
	// headerRequestID identifies one client request; generated on entry
	// if the client did not send one, echoed on the response either way.
	headerRequestID = "X-Request-Id"
	// headerTrace carries the hop-annotated trace chain on /fetch
	// responses: "|"-separated obs.Hop segments, upstream hops first,
	// the serving node's terminal hop (whose outcome equals X-Cache)
	// last. See internal/obs and DESIGN.md §7.
	headerTrace = "X-Trace"
	// headerTraceHop is how an upstream server (a peer's /object, the
	// origin's /obj) hands its own self-timed hop segment to the
	// fetching node, which splices it into the chain.
	headerTraceHop = "X-Trace-Hop"
	// headerTraceSampled marks an upstream request as part of a sampled
	// trace: the fetching node forwards its X-Request-Id plus this flag,
	// and the peer records its own span group under the same trace ID so
	// a fleet scraper can assemble the complete cross-node tree.
	headerTraceSampled = "X-Trace-Sampled"
	// headerHintBatch stamps a hint-batch POST with the sender's batch
	// sequence and the oldest enqueue wall clock it carries
	// (hintcache.Stamp); receivers turn it into per-peer
	// hint-propagation-lag observations.
	headerHintBatch = "X-Hint-Batch"
	// headerDigestGenerated stamps a /digest response with the snapshot's
	// generation sequence and wall clock; pullers turn it into
	// digest-staleness observations.
	headerDigestGenerated = "X-Digest-Generated"
	// headerDigestCursor carries the digest journal's head sequence on a
	// /digest response: the cursor the puller presents as ?since= on its
	// next pull to receive only the membership ops it has not seen. The
	// delta twin of /debug/spans' X-Span-Cursor.
	headerDigestCursor = "X-Digest-Cursor"
)

// NodeConfig parameterizes a cache node.
type NodeConfig struct {
	// Name labels the node in logs and stats.
	Name string
	// CacheBytes bounds the object cache (<= 0 means 64 MB).
	CacheBytes int64
	// CacheShards is the lock-stripe count of the object cache (rounded
	// up to a power of two; <= 0 picks a default sized to GOMAXPROCS).
	// One shard serializes all object accesses behind a single mutex —
	// the pre-sharding behavior, kept for benchmarks.
	CacheShards int
	// HintEntries and HintWays shape the hint table (defaults 65536 x 4).
	HintEntries int
	HintWays    int
	// HintStripes is the lock-stripe count of the hint table (rounded up
	// to a power of two; <= 0 picks a default sized to GOMAXPROCS).
	HintStripes int
	// OriginURL is the origin server's base URL.
	OriginURL string
	// UpdateInterval is the mean delay between hint-update batches. The
	// actual period is randomized uniformly in [0.5, 1.5] x interval to
	// avoid synchronization effects (Section 3.2 cites Floyd & Jacobson).
	// Zero means 1 second. In digest mode it is the digest pull interval.
	UpdateInterval time.Duration
	// HintQueue bounds the pending hint queues in records (<= 0 means
	// 8192): both the node-level queue feeding the batcher and each
	// per-peer sender queue. Overflow drops the oldest informs first
	// (invalidates are preserved) and is counted in /metrics. It also
	// sizes the /updates body limit (HintQueue x 20 bytes, floor 1 MB).
	HintQueue int
	// DigestWorkers bounds concurrent peer digest pulls in digest mode
	// (<= 0 means 4).
	DigestWorkers int
	// Seed feeds the update-interval jitter.
	Seed int64

	// UseDigests switches the node from exact hint records to pulling
	// Bloom-filter cache digests from its peers (the Summary Cache /
	// Squid Cache Digests alternative). DigestCapacity and
	// DigestBitsPerEntry size each digest (defaults 8192 entries x 8
	// bits).
	UseDigests         bool
	DigestCapacity     int
	DigestBitsPerEntry float64
	// DigestFull disables cursor-based delta pulls: every pull transfers
	// the complete digest, the pre-delta behavior. The zero value (delta
	// pulls on) is the default — pullers present their journal cursor and
	// receive only the membership ops since, falling back to a full
	// transfer when the cursor has aged out of the owner's journal.
	DigestFull bool
	// WireCompress flate-compresses metadata frames (hint batches, digest
	// snapshots and deltas) that reach wireCompressMin bytes. Off by
	// default: the framing layer is zero-copy either way, and most
	// metadata payloads are small or incompressible.
	WireCompress bool

	// HintPartition partitions the hint directory over the fleet: instead
	// of broadcasting every hint record to every peer, each object's
	// records route to its owner set — the object's Plaxton root plus
	// ring successors over the live membership (internal/overlay) — so
	// per-node directory memory and update fanout are O(R/N). The miss
	// path consults the local directory first and then the object's hint
	// home (one extra breaker-gated, hedged hop). Off keeps the broadcast
	// behavior. Mutually exclusive with UseDigests (digests are already a
	// non-directory design). See DESIGN.md §14.
	HintPartition bool
	// HintReplicas is the owner-set size R in partition mode (<= 0 means
	// 2, capped at overlay.MaxReplicas).
	HintReplicas int

	// PeerTimeout bounds one cache-to-cache probe (<= 0 means 2s). A
	// hinted peer that cannot produce the object inside this deadline
	// is treated as failed — a hint must never cost more than this.
	PeerTimeout time.Duration
	// OriginTimeout bounds one origin fetch (<= 0 means 10s).
	OriginTimeout time.Duration
	// HedgeBudget is how long a hinted peer may stay silent before the
	// origin fetch is started in parallel and the two race (the hedged
	// miss path; the paper: cache-to-cache transfer must beat origin or
	// be abandoned). 0 means the 50ms default; negative disables
	// hedging, restoring the sequential peer-then-origin path.
	HedgeBudget time.Duration
	// Breaker parameterizes the per-peer circuit breakers (zero value
	// picks the resilience defaults: 10-outcome window, 0.5 failure
	// threshold, 3 min samples, 5s cooldown).
	Breaker resilience.BreakerConfig

	// FaultSpec is a fault-DSL spec (internal/faults) applied to every
	// outbound request; FaultSeed seeds its randomness. Faults, when
	// non-nil, supplies a prebuilt injector instead (tests pin its
	// clock). Empty/nil means no injected faults.
	FaultSpec string
	FaultSeed int64
	Faults    *faults.Injector
	// InboundFaultSpec injects faults on the serving side instead: this
	// node misbehaving as seen by its clients and peers (rules match the
	// node's own label). InboundFaults supplies a prebuilt injector.
	InboundFaultSpec string
	InboundFaults    *faults.Injector
	// Transport overrides the shared tuned transport underneath the
	// fault layer (tests).
	Transport http.RoundTripper

	// TraceSample is the fraction of /fetch requests whose full trace is
	// recorded in the /debug/traces ring: 0 picks the default (1/64),
	// anything >= 1 records every request, negative disables ring
	// capture. The X-Trace response header is unconditional — sampling
	// only gates the in-memory ring.
	TraceSample float64
	// TraceRing bounds the /debug/traces ring (<= 0 means 256 traces).
	TraceRing int
	// SpanRing bounds the structured-span ring behind /debug/spans,
	// rounded up to a power of two (<= 0 means 4096 spans). Sampling
	// (TraceSample) gates span recording exactly as it gates the trace
	// ring: unsampled requests record nothing and allocate nothing.
	SpanRing int

	// CacheDir enables the persistent disk tier: memory evictions spill
	// (write-behind) into a content-addressed store under this directory,
	// misses probe it before peers or the origin, and on boot a recovery
	// scan republishes the surviving population into the hint plane.
	// Empty keeps the node memory-only. See DESIGN.md §12.
	CacheDir string
	// DiskCapacity bounds the disk tier's on-disk footprint in bytes
	// (<= 0 means unbounded).
	DiskCapacity int64
	// SpillQueue bounds the write-behind queue in objects (<= 0 means
	// 1024). Overflow drops the oldest queued eviction — which then left
	// both tiers, so an invalidate hint is queued for it.
	SpillQueue int
	// CompressMin flate-compresses spilled bodies of at least this many
	// bytes (<= 0 disables compression).
	CompressMin int64
	// RecoveryWorkers bounds the boot recovery scan's worker pool (<= 0
	// means 4).
	RecoveryWorkers int
}

// Stats counts node activity.
type Stats struct {
	LocalHits      int64 `json:"localHits"`
	RemoteHits     int64 `json:"remoteHits"`
	Misses         int64 `json:"misses"`
	FalsePositives int64 `json:"falsePositives"`
	// CoalescedHits is the subset of LocalHits that were served by
	// sharing another request's in-flight fill (the singleflight path)
	// instead of probing the cache themselves. LocalHits + RemoteHits +
	// Misses still accounts for every successful /fetch.
	CoalescedHits int64 `json:"coalescedHits"`
	// DiskHits is the subset of LocalHits served from the disk tier
	// (X-Cache LOCAL-DISK) and promoted back into memory on the way out.
	DiskHits        int64 `json:"diskHits"`
	PeerServes      int64 `json:"peerServes"`
	PeerRejects     int64 `json:"peerRejects"`
	UpdatesSent     int64 `json:"updatesSent"`
	UpdatesReceived int64 `json:"updatesReceived"`
	BatchesSent     int64 `json:"batchesSent"`
	SendErrors      int64 `json:"sendErrors"`
	DigestsPulled   int64 `json:"digestsPulled"`
	// BreakerSkips counts peer probes skipped outright because the
	// peer's circuit breaker was open — requests that went straight to
	// the origin without waiting out a timeout on a known-bad peer.
	BreakerSkips int64 `json:"breakerSkips"`
	// HedgesStarted counts races where the origin fetch was launched
	// while the hinted peer was still silent past the hedge budget;
	// HedgeOriginWins/HedgePeerWins split them by who answered first.
	HedgesStarted   int64 `json:"hedgesStarted"`
	HedgeOriginWins int64 `json:"hedgeOriginWins"`
	HedgePeerWins   int64 `json:"hedgePeerWins"`
	// Retries counts metadata-path re-attempts (hint-batch POSTs and
	// digest pulls) spent after a failure.
	Retries int64 `json:"retries"`
	// Coalesced counts pending hint updates folded onto an existing
	// record for the same object before being sent (repeated informs
	// dedupe; inform-then-invalidate collapses to the invalidate).
	Coalesced int64 `json:"coalesced"`
	// PendingDropped counts records the bounded node-level pending queue
	// discarded under overflow (oldest informs first); QueueDropped is
	// the same for the per-peer sender queues, summed across peers.
	PendingDropped int64 `json:"pendingDropped"`
	QueueDropped   int64 `json:"queueDropped"`
	// OversizeRejects counts POST /updates bodies refused with 413 for
	// exceeding the size limit.
	OversizeRejects int64 `json:"oversizeRejects"`
	// DigestServesFull / DigestServesDelta split GET /digest responses by
	// transfer mode, and DigestServeBytesFull / DigestServeBytesDelta
	// count the frame bytes each mode shipped — the delta-proportional
	// metadata claim is the ratio of these.
	DigestServesFull      int64 `json:"digestServesFull"`
	DigestServesDelta     int64 `json:"digestServesDelta"`
	DigestServeBytesFull  int64 `json:"digestServeBytesFull"`
	DigestServeBytesDelta int64 `json:"digestServeBytesDelta"`
	// DigestCursorLost counts delta requests whose cursor had aged out of
	// the journal (the peer got a full snapshot instead); DigestRebuilds
	// counts own-digest rebuilds forced by counter saturation;
	// DigestDeltaOps counts membership ops applied from pulled deltas.
	DigestCursorLost int64 `json:"digestCursorLost"`
	DigestRebuilds   int64 `json:"digestRebuilds"`
	DigestDeltaOps   int64 `json:"digestDeltaOps"`
	// WireHintBytes counts framed hint-batch bytes successfully POSTed to
	// /updates targets (after optional compression — actual wire bytes).
	// In partition mode the same bytes land in WireHintBytesPartitioned
	// instead, so the two modes' wire costs stay separately comparable.
	WireHintBytes            int64 `json:"wireHintBytes"`
	WireHintBytesPartitioned int64 `json:"wireHintBytesPartitioned"`
	// HintHomeHits/Misses/Errors classify hint-home consults on the miss
	// path (partition mode): the home named a live holder / answered "no
	// holder" / failed or timed out. HintHomeServes/ServeMisses are the
	// serving side of GET /hinthome.
	HintHomeHits        int64 `json:"hintHomeHits"`
	HintHomeMisses      int64 `json:"hintHomeMisses"`
	HintHomeErrors      int64 `json:"hintHomeErrors"`
	HintHomeServes      int64 `json:"hintHomeServes"`
	HintHomeServeMisses int64 `json:"hintHomeServeMisses"`
	// RehomedObjects counts re-homing work units: records re-announced,
	// forwarded, or dropped because their owner set changed with
	// membership (proportional to churn, not directory size).
	RehomedObjects int64 `json:"rehomedObjects"`
}

// counters is the node's live (concurrently updated) form of Stats.
type counters struct {
	localHits       atomic.Int64
	remoteHits      atomic.Int64
	misses          atomic.Int64
	falsePositives  atomic.Int64
	coalescedHits   atomic.Int64
	diskHits        atomic.Int64
	peerServes      atomic.Int64
	peerRejects     atomic.Int64
	updatesSent     atomic.Int64
	updatesReceived atomic.Int64
	batchesSent     atomic.Int64
	sendErrors      atomic.Int64
	digestsPulled   atomic.Int64
	breakerSkips    atomic.Int64
	hedgesStarted   atomic.Int64
	hedgeOriginWins atomic.Int64
	hedgePeerWins   atomic.Int64
	retries         atomic.Int64
	coalesced       atomic.Int64
	pendingDropped  atomic.Int64
	queueDropped    atomic.Int64
	oversizeRejects atomic.Int64

	digestServesFull      atomic.Int64
	digestServesDelta     atomic.Int64
	digestServeBytesFull  atomic.Int64
	digestServeBytesDelta atomic.Int64
	digestCursorLost      atomic.Int64
	digestRebuilds        atomic.Int64
	digestDeltaOps        atomic.Int64
	wireHintBytes         atomic.Int64
	wireHintBytesPart     atomic.Int64

	hintHomeHits        atomic.Int64
	hintHomeMisses      atomic.Int64
	hintHomeErrors      atomic.Int64
	hintHomeServes      atomic.Int64
	hintHomeServeMisses atomic.Int64
	rehomeObjects       atomic.Int64
}

// nodeHists are the node's latency histograms: client-facing fetch time per
// outcome class, plus the internal latencies the paper's design principles
// are stated in terms of — the wasted false-positive peer probe, the
// hint-batch flush round, and the peer-serve (/object) path.
type nodeHists struct {
	local         *obs.Histogram // X-Cache LOCAL
	localDisk     *obs.Histogram // X-Cache LOCAL-DISK (disk-tier hit)
	coalesced     *obs.Histogram // X-Cache "LOCAL,COALESCED"
	remote        *obs.Histogram // X-Cache REMOTE
	miss          *obs.Histogram // X-Cache MISS and "MISS,STALE-HINT"
	falsePositive *obs.Histogram // failed peer probe paid before origin
	flush         *obs.Histogram // one flush round (slowest target's delivery)
	fanout        *obs.Histogram // one sender's successful batch POST
	peerServe     *obs.Histogram // serving /object to a peer
	digestServe   *obs.Histogram // serving GET /digest (full or delta)
}

func newNodeHists() nodeHists {
	return nodeHists{
		local:         obs.NewHistogram(nil),
		localDisk:     obs.NewHistogram(nil),
		coalesced:     obs.NewHistogram(nil),
		remote:        obs.NewHistogram(nil),
		miss:          obs.NewHistogram(nil),
		falsePositive: obs.NewHistogram(nil),
		flush:         obs.NewHistogram(nil),
		fanout:        obs.NewHistogram(nil),
		peerServe:     obs.NewHistogram(nil),
		digestServe:   obs.NewHistogram(nil),
	}
}

// observeFetch files one client-facing fetch under its outcome class.
func (h *nodeHists) observeFetch(how string, d time.Duration) {
	switch how {
	case "LOCAL":
		h.local.Observe(d)
	case "LOCAL-DISK":
		h.localDisk.Observe(d)
	case "LOCAL,COALESCED":
		h.coalesced.Observe(d)
	case "REMOTE":
		h.remote.Observe(d)
	default: // MISS, MISS,STALE-HINT, MISS,HEDGE
		h.miss.Observe(d)
	}
}

// snapshot copies the counters into an externally visible Stats.
func (c *counters) snapshot() Stats {
	return Stats{
		LocalHits:       c.localHits.Load(),
		RemoteHits:      c.remoteHits.Load(),
		Misses:          c.misses.Load(),
		FalsePositives:  c.falsePositives.Load(),
		CoalescedHits:   c.coalescedHits.Load(),
		DiskHits:        c.diskHits.Load(),
		PeerServes:      c.peerServes.Load(),
		PeerRejects:     c.peerRejects.Load(),
		UpdatesSent:     c.updatesSent.Load(),
		UpdatesReceived: c.updatesReceived.Load(),
		BatchesSent:     c.batchesSent.Load(),
		SendErrors:      c.sendErrors.Load(),
		DigestsPulled:   c.digestsPulled.Load(),
		BreakerSkips:    c.breakerSkips.Load(),
		HedgesStarted:   c.hedgesStarted.Load(),
		HedgeOriginWins: c.hedgeOriginWins.Load(),
		HedgePeerWins:   c.hedgePeerWins.Load(),
		Retries:         c.retries.Load(),
		Coalesced:       c.coalesced.Load(),
		PendingDropped:  c.pendingDropped.Load(),
		QueueDropped:    c.queueDropped.Load(),
		OversizeRejects: c.oversizeRejects.Load(),

		DigestServesFull:      c.digestServesFull.Load(),
		DigestServesDelta:     c.digestServesDelta.Load(),
		DigestServeBytesFull:  c.digestServeBytesFull.Load(),
		DigestServeBytesDelta: c.digestServeBytesDelta.Load(),
		DigestCursorLost:      c.digestCursorLost.Load(),
		DigestRebuilds:        c.digestRebuilds.Load(),
		DigestDeltaOps:        c.digestDeltaOps.Load(),
		WireHintBytes:         c.wireHintBytes.Load(),

		WireHintBytesPartitioned: c.wireHintBytesPart.Load(),
		HintHomeHits:             c.hintHomeHits.Load(),
		HintHomeMisses:           c.hintHomeMisses.Load(),
		HintHomeErrors:           c.hintHomeErrors.Load(),
		HintHomeServes:           c.hintHomeServes.Load(),
		HintHomeServeMisses:      c.hintHomeServeMisses.Load(),
		RehomedObjects:           c.rehomeObjects.Load(),
	}
}

// Node is one proxy cache in the prototype. There is no node-wide lock:
// object state lives in a lock-striped cache, hint state in a lock-striped
// table, and everything else behind small purpose-scoped mutexes, so
// concurrent /fetch streams for unrelated objects never serialize and one
// slow origin fetch cannot stall an unrelated hit (the paper's "do not slow
// down misses" applied to the implementation itself). See DESIGN.md for the
// locking hierarchy.
type Node struct {
	cfg NodeConfig

	// data is the sharded object cache: metadata and bodies under
	// per-shard locks.
	data *cache.Sharded
	// tier is the persistent disk tier (nil without CacheDir): memory
	// evictions spill into it, fill() probes it before peers or the
	// origin, and its involuntary drops queue invalidate hints.
	tier *store.Tier
	// recoveryMu guards recovery, the boot scan's result; recoveryDone
	// closes once the scan (a no-op without a tier) has finished.
	recoveryMu   sync.Mutex
	recovery     store.RecoverStats
	recoveryDone chan struct{}
	// hints is the striped concurrent hint table.
	hints *hintcache.Striped
	// flights collapses duplicate in-flight fills per URL.
	flights flightGroup[fetchOutcome]

	// pend is the bounded coalescing queue of hint updates awaiting the
	// next batch round (at most one record per object; see pendq).
	pend *pendq

	// peerMu guards the peer table, update-target list, and sender table.
	peerMu sync.RWMutex
	peers  map[uint64]string // machine ID -> base URL
	// peerOrder fixes a deterministic scan order for digest lookups.
	peerOrder []uint64
	updates   []string // update targets; empty means all peers
	// senders holds one running peerSender per known target (peers and
	// update targets), keyed by base URL and created eagerly so /metrics
	// exposes every queue from the first scrape.
	senders map[string]*peerSender

	// overlay is the partitioned hint directory's live routing plane (nil
	// in broadcast mode); mbr tracks the per-peer liveness evidence that
	// feeds it; homedView is the membership view the directory was last
	// re-homed against — syncMembership compares it to the overlay's
	// current view and runs one incremental re-homing pass per version
	// step. See members.go.
	overlay   *overlay.Overlay
	mbr       membership
	homedView atomic.Pointer[overlay.View]

	// digestMu guards the digest state (own and pulled). The node's own
	// digest is a counting filter maintained incrementally: digestTrack
	// converts every cache residency transition into an add/remove against
	// own plus a journal entry, so GET /digest never rebuilds from cache
	// contents. ownPresent is the exact resident set backing it — the
	// dedup layer (refreshes of an already-resident object are not
	// transitions) and the rebuild source when a counter saturates.
	// digestGen remembers each peer digest's generation wall clock (from
	// its X-Digest-Generated stamp) so the next pull can observe how stale
	// the snapshot it replaces had become; peerCursor is the journal
	// cursor to present on the next delta pull from each peer.
	digestMu    sync.RWMutex
	own         *digest.Counting
	ownPresent  map[uint64]struct{}
	journal     *digest.Journal
	peerDigests map[uint64]*digest.Counting
	peerCursor  map[uint64]uint64
	digestGen   map[uint64]int64
	// snapGen/snapFrame cache the framed full-snapshot encoding at journal
	// generation snapGen (snapValid distinguishes a cached empty-journal
	// snapshot from no cache); digestFlight coalesces concurrent snapshot
	// builds so a scrape stampede marshals once. snapBuilds counts builds
	// (read by the coalescing test).
	snapGen      uint64
	snapValid    bool
	snapFrame    []byte
	digestFlight flightGroup[digestSnap]
	snapBuilds   atomic.Int64
	// digestSeq numbers the digest snapshots this node serves.
	digestSeq atomic.Int64

	stats counters
	hist  nodeHists

	// hintLag records, per sending peer, how old a hint batch's oldest
	// record was on arrival (the live hint-propagation-lag signal);
	// digestStale records, per pulled peer, how stale each digest
	// snapshot had grown when its replacement arrived.
	hintLag     *obs.HistogramVec
	digestStale *obs.HistogramVec

	// traces is the bounded ring behind /debug/traces; spans is the
	// lock-free structured-span ring behind /debug/spans (same sampling
	// decision feeds both). sampler decides which requests are recorded.
	// reqSeq numbers generated request IDs.
	traces  *obs.TraceRing
	spans   *obs.SpanRing
	sampler *obs.Sampler
	reqSeq  atomic.Int64

	// rngMu guards the jitter source used by the batch loop.
	rngMu sync.Mutex
	rng   *rand.Rand

	// breakers holds one circuit breaker per peer (keyed by base URL),
	// created eagerly in AddPeer; backoff paces metadata-path retries;
	// inj is the outbound fault injector (nil without chaos). The
	// resolved per-hop budgets live beside them.
	breakers      *resilience.BreakerSet
	backoff       *resilience.Backoff
	inj           *faults.Injector
	inboundInj    *faults.Injector
	peerTimeout   time.Duration
	originTimeout time.Duration
	hedgeBudget   time.Duration
	digestWorkers int
	// updatesLimit bounds a POST /updates body (bytes); larger bodies
	// are refused with 413 instead of silently truncated.
	updatesLimit int64

	machineID uint64
	// nodeLabel names the node in hop segments and request IDs: the
	// configured Name, or the listen address once Start/Bind fixes it.
	nodeLabel string
	extURL    string // set by Bind; empty when Start owns the listener
	lis       net.Listener
	srv       *http.Server
	client    *http.Client

	stopBatch chan struct{}
	batchDone chan struct{}
	srvDone   chan struct{}
	closeOnce sync.Once
}

// NewNode builds a node; call Start (or Handler plus Bind) to begin
// serving.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.OriginURL == "" {
		return nil, fmt.Errorf("cluster: node %q: OriginURL required", cfg.Name)
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.HintEntries <= 0 {
		cfg.HintEntries = 65536
	}
	if cfg.HintWays <= 0 {
		cfg.HintWays = 4
	}
	if cfg.UpdateInterval <= 0 {
		cfg.UpdateInterval = time.Second
	}
	if cfg.HintQueue <= 0 {
		cfg.HintQueue = 8192
	}
	if cfg.DigestWorkers <= 0 {
		cfg.DigestWorkers = 4
	}
	if err := validateDigestConfig(&cfg); err != nil {
		return nil, err
	}
	if cfg.HintReplicas <= 0 {
		cfg.HintReplicas = 2
	}
	if cfg.HintReplicas > overlay.MaxReplicas {
		cfg.HintReplicas = overlay.MaxReplicas
	}
	if cfg.HintPartition && cfg.UseDigests {
		return nil, fmt.Errorf("cluster: node %q: HintPartition and UseDigests are mutually exclusive (digests already replace the hint directory)", cfg.Name)
	}
	sample := cfg.TraceSample
	if sample == 0 {
		// Default: every 64th request. Cheap enough for the hit path
		// (ring adds take a mutex) while keeping /debug/traces fresh.
		sample = 1.0 / 64
	}
	inj := cfg.Faults
	if inj == nil && cfg.FaultSpec != "" {
		var err error
		if inj, err = faults.New(cfg.FaultSpec, cfg.FaultSeed); err != nil {
			return nil, fmt.Errorf("cluster: node %q: %w", cfg.Name, err)
		}
	}
	inboundInj := cfg.InboundFaults
	if inboundInj == nil && cfg.InboundFaultSpec != "" {
		var err error
		if inboundInj, err = faults.New(cfg.InboundFaultSpec, cfg.FaultSeed+1); err != nil {
			return nil, fmt.Errorf("cluster: node %q: %w", cfg.Name, err)
		}
	}
	peerTimeout := cfg.PeerTimeout
	if peerTimeout <= 0 {
		peerTimeout = 2 * time.Second
	}
	originTimeout := cfg.OriginTimeout
	if originTimeout <= 0 {
		originTimeout = 10 * time.Second
	}
	hedgeBudget := cfg.HedgeBudget
	if hedgeBudget == 0 {
		hedgeBudget = 50 * time.Millisecond
	}
	updatesLimit := int64(cfg.HintQueue) * hintcache.UpdateSize
	if updatesLimit < 1<<20 {
		updatesLimit = 1 << 20
	}
	n := &Node{
		cfg:           cfg,
		data:          cache.NewSharded(cfg.CacheShards, cfg.CacheBytes),
		hints:         hintcache.NewStriped(cfg.HintEntries, cfg.HintWays, cfg.HintStripes),
		hist:          newNodeHists(),
		hintLag:       obs.NewHistogramVec(nil),
		digestStale:   obs.NewHistogramVec(nil),
		traces:        obs.NewTraceRing(cfg.TraceRing),
		spans:         obs.NewSpanRing(cfg.SpanRing),
		sampler:       obs.NewSampler(sample),
		pend:          newPendq(cfg.HintQueue),
		peers:         make(map[uint64]string),
		senders:       make(map[string]*peerSender),
		nodeLabel:     cfg.Name,
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		breakers:      resilience.NewBreakerSet(cfg.Breaker),
		backoff:       resilience.NewBackoff(25*time.Millisecond, 200*time.Millisecond, 2, cfg.Seed+1),
		inj:           inj,
		inboundInj:    inboundInj,
		peerTimeout:   peerTimeout,
		originTimeout: originTimeout,
		hedgeBudget:   hedgeBudget,
		digestWorkers: cfg.DigestWorkers,
		updatesLimit:  updatesLimit,
		client:        newClient(cfg.Transport, inj),
		stopBatch:     make(chan struct{}),
		batchDone:     make(chan struct{}),
		srvDone:       make(chan struct{}),
		recoveryDone:  make(chan struct{}),
	}
	if cfg.CacheDir != "" {
		st, err := store.Open(cfg.CacheDir, store.Options{
			Capacity:    cfg.DiskCapacity,
			CompressMin: cfg.CompressMin,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: node %q: %w", cfg.Name, err)
		}
		// An object that involuntarily leaves BOTH tiers — spill-queue
		// overflow, failed spill write, disk eviction, quarantine — is no
		// longer locally resident, so its hints must be withdrawn.
		n.tier = store.NewTier(n.data, st, cfg.SpillQueue, func(o cache.Object) {
			n.queueInvalidate(o.ID)
		})
	}
	if cfg.HintPartition {
		ov, err := overlay.New(overlayBits, cfg.HintReplicas)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %q: %w", cfg.Name, err)
		}
		n.overlay = ov
		n.mbr.fails = make(map[string]int)
		n.mbr.contact = make(map[string]uint64)
	}
	if cfg.UseDigests {
		own, err := digest.NewCountingForCapacity(cfg.DigestCapacity, cfg.DigestBitsPerEntry)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %q: %w", cfg.Name, err)
		}
		n.own = own
		n.ownPresent = make(map[uint64]struct{})
		jcap := cfg.DigestCapacity
		if jcap < 1024 {
			jcap = 1024
		}
		n.journal = digest.NewJournal(jcap)
		n.peerDigests = make(map[uint64]*digest.Counting)
		n.peerCursor = make(map[uint64]uint64)
		n.digestGen = make(map[uint64]int64)
	}
	// Capacity evictions either spill to the disk tier (hints stay valid:
	// the object is still locally resident) or, memory-only, advertise
	// non-presence. The callback runs AFTER the shard lock is released
	// (see cache.Sharded.OnEvict), so a blocking spill enqueue never
	// holds a shard lock.
	n.data.OnEvict(func(o cache.Object, body []byte) {
		if n.tier != nil {
			n.tier.Spill(o, body)
			return
		}
		n.queueInvalidate(o.ID)
	})
	return n, nil
}

// enqueueLocal folds one locally generated update into the pending queue,
// counting coalesces and bound-overflow drops.
func (n *Node) enqueueLocal(u hintcache.Update) {
	coalesced, dropped := n.pend.add(u)
	if coalesced {
		n.stats.coalesced.Add(1)
	}
	if dropped {
		n.stats.pendingDropped.Add(1)
	}
}

// Handler returns the node's HTTP handler. Most callers use Start, which
// serves the handler from the node's own listener; tests that want to serve
// the node from an httptest.Server mount this handler there and call Bind
// with the server's URL.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fetch", n.handleFetch)
	mux.HandleFunc("/object", n.handleObject)
	mux.HandleFunc("/updates", n.handleUpdates)
	mux.HandleFunc("/purge", n.handlePurge)
	mux.HandleFunc("/stats", n.handleStats)
	mux.HandleFunc("/metrics", n.handleMetrics)
	mux.HandleFunc("/debug/traces", n.handleTraces)
	mux.HandleFunc("/debug/spans", n.handleSpans)
	mux.HandleFunc("/digest", n.handleDigest)
	mux.HandleFunc("/hinthome", n.handleHintHome)
	mux.HandleFunc("/ping", n.handlePing)
	if n.inboundInj == nil {
		return mux
	}
	// Server-side chaos: the middleware matches rules against the node's
	// label, resolved per request because Start/Bind fix it after Handler
	// may already have been called.
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		faults.Middleware(n.inboundInj, n.label(), mux).ServeHTTP(w, r)
	})
}

// Start listens on addr ("127.0.0.1:0" for ephemeral) and starts the update
// batcher.
func (n *Node) Start(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: node %q listen: %w", n.cfg.Name, err)
	}
	n.lis = lis
	n.machineID = hintcache.HashMachine(lis.Addr().String())
	if n.nodeLabel == "" {
		n.nodeLabel = lis.Addr().String()
	}
	n.initOverlay()

	n.srv = &http.Server{
		Handler:           n.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       30 * time.Second,
	}
	go func() {
		defer close(n.srvDone)
		_ = n.srv.Serve(lis)
	}()
	go n.batchLoop()
	go n.recoverDisk()
	return nil
}

// Bind registers the node's externally served base URL and starts the
// update batcher. Use it instead of Start when the caller owns the HTTP
// server (an httptest.Server wrapping Handler, typically). Call Close as
// usual; it stops the batcher and leaves the caller's server alone.
func (n *Node) Bind(baseURL string) {
	n.extURL = baseURL
	n.machineID = hintcache.HashMachine(hostPortOf(baseURL))
	if n.nodeLabel == "" {
		n.nodeLabel = hostPortOf(baseURL)
	}
	n.initOverlay()
	go n.batchLoop()
	go n.recoverDisk()
}

// recoverDisk is the boot-time disk recovery: rebuild the on-disk index
// (removing orphaned tmp files, quarantining files with invalid headers)
// and republish every recovered object into the hint plane through the
// pending queue, then flush so peers re-learn a restarted node's contents
// within one update interval instead of waiting out a cold start. Runs
// after Start/Bind fixes machineID — the informs must carry it. Recovered
// objects become visible to fill() incrementally as the scan proceeds.
func (n *Node) recoverDisk() {
	defer close(n.recoveryDone)
	if n.tier == nil {
		return
	}
	st := n.tier.Recover(n.cfg.RecoveryWorkers, func(o cache.Object) {
		n.queueInform(o.ID)
	})
	n.recoveryMu.Lock()
	n.recovery = st
	n.recoveryMu.Unlock()
	if st.Objects > 0 {
		n.flushAsync()
	}
}

// WaitRecovery blocks until the boot disk-recovery scan has finished. It
// returns immediately for memory-only nodes. Must be called after Start or
// Bind.
func (n *Node) WaitRecovery() { <-n.recoveryDone }

// RecoveryStats returns the boot recovery scan's result (zero value until
// the scan finishes).
func (n *Node) RecoveryStats() store.RecoverStats {
	n.recoveryMu.Lock()
	defer n.recoveryMu.Unlock()
	return n.recovery
}

// label names the node in hop segments and request IDs.
func (n *Node) label() string {
	if n.nodeLabel != "" {
		return n.nodeLabel
	}
	return "node"
}

// newRequestID mints a node-unique request identifier. The scratch array
// keeps the append chain off the heap; only the final string allocates.
func (n *Node) newRequestID() string {
	var buf [48]byte
	b := append(buf[:0], n.label()...)
	b = append(b, '-')
	b = strconv.AppendInt(b, n.reqSeq.Add(1), 16)
	return string(b)
}

// Addr returns the node's listening address.
func (n *Node) Addr() string {
	if n.lis == nil {
		return ""
	}
	return n.lis.Addr().String()
}

// URL returns the node's base URL.
func (n *Node) URL() string {
	if n.extURL != "" {
		return n.extURL
	}
	return "http://" + n.Addr()
}

// MachineID returns the node's 8-byte machine identifier.
func (n *Node) MachineID() uint64 { return n.machineID }

// AddPeer registers a peer node by base URL ("http://host:port"). Hint
// updates are broadcast to all peers, and hints pointing at a peer are
// resolved through this table.
func (n *Node) AddPeer(baseURL string) {
	hostport := hostPortOf(baseURL)
	id := hintcache.HashMachine(hostport)
	n.peerMu.Lock()
	defer n.peerMu.Unlock()
	if _, known := n.peers[id]; !known {
		n.peerOrder = append(n.peerOrder, id)
	}
	n.peers[id] = baseURL
	// Eagerly create the peer's breaker and sender so /metrics exposes
	// their state from the first scrape, not the first failure or flush.
	n.breakers.Get(baseURL)
	n.senderLocked(baseURL)
}

// senderLocked returns the running sender for a target, creating it on
// first sight. Callers hold peerMu in write mode.
func (n *Node) senderLocked(baseURL string) *peerSender {
	s, ok := n.senders[baseURL]
	if !ok {
		s = newPeerSender(n, baseURL, n.cfg.HintQueue)
		n.senders[baseURL] = s
	}
	return s
}

// AddUpdateTarget directs hint-update batches to baseURL (a metadata relay
// or parent) instead of broadcasting to every peer. Data-path peer
// resolution (AddPeer) is unaffected: transfers remain direct cache-to-
// cache regardless of how metadata travels (the paper's core separation).
func (n *Node) AddUpdateTarget(baseURL string) {
	n.peerMu.Lock()
	defer n.peerMu.Unlock()
	n.updates = append(n.updates, baseURL)
	n.senderLocked(baseURL)
}

// hostPortOf strips an "http://" prefix.
func hostPortOf(baseURL string) string {
	const prefix = "http://"
	if len(baseURL) > len(prefix) && baseURL[:len(prefix)] == prefix {
		return baseURL[len(prefix):]
	}
	return baseURL
}

// Close stops the batcher (flushing once) and shuts the server down. Close
// is idempotent. It must only be called after Start or Bind.
func (n *Node) Close() error {
	var err error
	n.closeOnce.Do(func() {
		// Wait out the boot recovery scan first: its republish rides the
		// hint plane, which shuts down below, and a restart test reusing
		// the same cache dir must not race a still-running scan.
		<-n.recoveryDone
		if n.tier != nil {
			// Drain the write-behind queue so the directory survives
			// the restart intact.
			n.tier.Close()
		}
		close(n.stopBatch)
		<-n.batchDone
		// The batcher's final synchronous flush has completed; stop the
		// per-peer senders (anything still queued on a failing target
		// has already burned its retry budget).
		n.peerMu.RLock()
		senders := make([]*peerSender, 0, len(n.senders))
		for _, s := range n.senders {
			senders = append(senders, s)
		}
		n.peerMu.RUnlock()
		for _, s := range senders {
			s.shutdown()
		}
		if n.srv == nil {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		err = n.srv.Shutdown(ctx)
		if err != nil {
			// A connection stuck between states can hold Shutdown
			// open indefinitely; force-close stragglers. This is
			// not an application error.
			_ = n.srv.Close()
			err = nil
		}
		<-n.srvDone
	})
	return err
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	return n.stats.snapshot()
}

// HintStats returns the hint table's counters.
func (n *Node) HintStats() hintcache.Stats {
	return n.hints.Stats()
}

// Breakers snapshots every per-peer circuit breaker, keyed by peer base
// URL.
func (n *Node) Breakers() map[string]resilience.BreakerStats {
	return n.breakers.Snapshot()
}

// FaultInjector returns the node's outbound fault injector, or nil when
// the node runs without chaos. Tests and demos use it to break and heal
// targets mid-run (Injector.SetSpec).
func (n *Node) FaultInjector() *faults.Injector { return n.inj }

// batchLoop periodically flushes pending hint updates to all peers, with a
// randomized period to avoid synchronization. Periodic rounds distribute to
// the per-peer senders without waiting for delivery — a target burning its
// retry budget never delays the next round, so healthy peers keep receiving
// hints at the configured interval. The final round on shutdown is
// synchronous so Close does not abandon queued updates untried.
func (n *Node) batchLoop() {
	defer close(n.batchDone)
	for {
		interval := n.jitteredInterval()
		select {
		case <-n.stopBatch:
			n.exchange()
			return
		case <-time.After(interval):
			if n.cfg.UseDigests {
				n.PullDigests()
			} else {
				n.flushAsync()
			}
		}
	}
}

func (n *Node) jitteredInterval() time.Duration {
	n.rngMu.Lock()
	f := 0.5 + n.rng.Float64()
	n.rngMu.Unlock()
	return time.Duration(float64(n.cfg.UpdateInterval) * f)
}

// exchange performs one metadata round: hint-update flush, or digest pull.
func (n *Node) exchange() {
	if n.cfg.UseDigests {
		n.PullDigests()
		return
	}
	n.Flush()
}

// distribute drains the pending queue and hands the batch to every
// target's sender. It returns the senders together with the generation to
// wait on for this round's delivery, plus the record count. With an empty
// batch nothing is enqueued; the returned generations make waiting a
// barrier on whatever the senders already had in flight.
//
// In partition mode the round starts with a membership sync (so any
// re-homing informs it enqueues ride this same round) and records route to
// their owner sets instead of broadcasting.
func (n *Node) distribute() (senders []*peerSender, seqs []int64, records int) {
	if n.partitioned() {
		n.syncMembership()
		batch, stampNs := n.pend.drain(nil)
		return n.distributePartitioned(batch, stampNs)
	}
	batch, stampNs := n.pend.drain(nil)

	n.peerMu.RLock()
	if len(n.updates) > 0 {
		for _, t := range n.updates {
			senders = append(senders, n.senders[t])
		}
	} else {
		for _, id := range n.peerOrder {
			senders = append(senders, n.senders[n.peers[id]])
		}
	}
	n.peerMu.RUnlock()

	seqs = make([]int64, len(senders))
	for i, s := range senders {
		if len(batch) > 0 {
			seqs[i] = s.enqueue(batch, stampNs)
		} else {
			seqs[i] = s.currentSeq()
		}
	}
	return senders, seqs, len(batch)
}

// Flush sends all pending hint updates to every peer immediately and waits
// until each target's sender has delivered (or abandoned) them. It is also
// called by the batcher's final round; tests call it directly to avoid
// sleeping. The fan-out is concurrent — one sender per target — so a round
// costs the slowest target, not the sum of all targets. Rounds that
// actually send something are timed into the flush histogram (empty rounds
// would swamp it with no-ops).
func (n *Node) Flush() {
	start := time.Now()
	senders, seqs, records := n.distribute()
	for i, s := range senders {
		s.wait(seqs[i])
	}
	if records > 0 && len(senders) > 0 {
		n.hist.flush.Observe(time.Since(start))
	}
}

// flushAsync distributes the pending batch to the senders without waiting
// for delivery — the batcher's periodic round. A goroutine waits out the
// round solely to time it into the flush histogram.
func (n *Node) flushAsync() {
	start := time.Now()
	senders, seqs, records := n.distribute()
	if records == 0 || len(senders) == 0 {
		return
	}
	go func() {
		for i, s := range senders {
			s.wait(seqs[i])
		}
		n.hist.flush.Observe(time.Since(start))
	}()
}

// queueInform records a local copy and schedules its advertisement, and
// feeds the residency transition into the incremental digest.
func (n *Node) queueInform(urlHash uint64) {
	n.digestTrack(urlHash, true)
	n.enqueueLocal(hintcache.Update{
		Action:  hintcache.ActionInform,
		URLHash: urlHash,
		Machine: n.machineID,
	})
}

// queueInvalidate withdraws an object's advertisement — the object left
// every local tier — and feeds the departure into the incremental digest.
func (n *Node) queueInvalidate(urlHash uint64) {
	n.digestTrack(urlHash, false)
	n.enqueueLocal(hintcache.Update{
		Action:  hintcache.ActionInvalidate,
		URLHash: urlHash,
		Machine: n.machineID,
	})
}

// store caches a fetched object. PutNewer refuses version downgrades, so a
// fill that raced with an invalidation and a fresher refill can never
// clobber the newer copy.
func (n *Node) store(urlHash uint64, version int64, body []byte) {
	if n.data.PutNewer(cache.Object{ID: urlHash, Size: int64(len(body)), Version: version}, body) {
		n.queueInform(urlHash)
	}
}

// queryURL extracts the "url" query parameter. Equivalent to
// r.URL.Query().Get("url") without materializing the full url.Values map —
// every object-path request (/fetch, /object, /purge) pays this parse.
func queryURL(r *http.Request) string {
	q := r.URL.RawQuery
	for q != "" {
		var pair string
		pair, q, _ = strings.Cut(q, "&")
		if v, ok := strings.CutPrefix(pair, "url="); ok {
			u, err := neturl.QueryUnescape(v)
			if err != nil {
				return ""
			}
			return u
		}
	}
	return ""
}

// handleFetch is the client-facing entry point: GET /fetch?url=U.
//
// The hot path takes exactly one shard lock (the local-hit probe); misses
// go through the singleflight group, so any number of concurrent requests
// for one uncached object cost a single peer/origin fetch while requests
// for other objects proceed untouched.
func (n *Node) handleFetch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	url := queryURL(r)
	if url == "" {
		http.Error(w, "missing url parameter", http.StatusBadRequest)
		return
	}
	start := time.Now()
	var reqID string
	if v := r.Header[headerRequestID]; len(v) > 0 && v[0] != "" {
		reqID = v[0]
	} else {
		reqID = n.newRequestID()
	}
	// The sampling decision is made on entry so the whole request shares
	// it: a sampled request's upstream fetches forward the request ID and
	// sampled flag, letting the contacted peer record its own span group
	// under the same trace ID. Unsampled requests record nothing.
	sampled := n.sampler.Sample()
	h := hintcache.HashURL(url)

	// Local cache.
	if obj, body, ok := n.data.Get(h); ok {
		n.stats.localHits.Add(1)
		n.finishFetch(w, reqID, url, start, "LOCAL", obj.Version, body, nil, sampled)
		return
	}

	out, shared := n.flights.do(url, func() fetchOutcome { return n.fill(h, url, reqID, sampled) })
	if out.err != nil {
		http.Error(w, fmt.Sprintf("origin fetch: %v", out.err), http.StatusBadGateway)
		return
	}
	how := out.how
	if shared {
		// Served by the leader's fill without any fetch of our own: a
		// local hit on the in-flight result.
		n.stats.localHits.Add(1)
		n.stats.coalescedHits.Add(1)
		how = "LOCAL,COALESCED"
	}
	n.finishFetch(w, reqID, url, start, how, out.version, out.body, out.hops, sampled)
}

// finishFetch completes a successful /fetch: it observes the outcome
// histogram, appends the node's terminal hop to the upstream chain (waiters
// sharing a fill each get their own copy — out.hops is shared across every
// coalesced request), records the structured span group and the trace if
// sampled, and serves the object with the trace headers. The terminal hop's
// outcome is the X-Cache value and the X-Trace header is rendered from the
// same hop data the spans are built from, so the three views can never
// disagree. Recording happens before the response is written: a client
// holding the response can immediately pull its spans from /debug/spans.
func (n *Node) finishFetch(w http.ResponseWriter, reqID, url string, start time.Time, how string, version int64, body []byte, upstream []obs.Hop, sampled bool) {
	elapsed := time.Since(start)
	n.hist.observeFetch(how, elapsed)
	term := obs.Hop{Node: n.label(), Outcome: how, Elapsed: elapsed}
	if sampled {
		// The span group and combined hop slice are built only for
		// sampled requests; the unsampled majority never allocates.
		n.spans.AddGroup(obs.SpansFromHops(obs.TraceID(reqID), upstream, term))
		hops := make([]obs.Hop, 0, len(upstream)+1)
		hops = append(hops, upstream...)
		hops = append(hops, term)
		n.traces.Add(obs.Trace{ID: reqID, URL: url, Outcome: how, Start: start, Total: elapsed, Hops: hops})
	}
	// The header keys are pre-canonicalized constants: direct map
	// assignment skips Set's canonicalization scan on the hot path.
	hdr := w.Header()
	hdr[headerRequestID] = []string{reqID}
	hdr[headerTrace] = []string{obs.FormatChain(upstream, term)}
	serveObject(w, how, version, body)
}

// fill resolves a cache miss as the singleflight leader: peer transfer if a
// hint or digest points somewhere (raced against the origin under the hedge
// budget), origin otherwise. Leader-side stats are counted here so waiters
// sharing the outcome do not double-count them.
func (n *Node) fill(h uint64, url, reqID string, sampled bool) fetchOutcome {
	// Re-check the cache: the object may have been filled between the
	// caller's miss and winning flight leadership.
	if obj, body, ok := n.data.Get(h); ok {
		n.stats.localHits.Add(1)
		return fetchOutcome{how: "LOCAL", version: obj.Version, body: body}
	}

	// Disk tier: a spilled object is still a local hit — promoted back
	// into memory by the read — just a slower one. Probing here keeps
	// the memory-tier hot path (handleFetch) untouched: only flight
	// leaders, already off the fast path, pay the disk lookup.
	if n.tier != nil {
		if obj, body, ok := n.tier.Get(h); ok {
			n.stats.localHits.Add(1)
			n.stats.diskHits.Add(1)
			return fetchOutcome{how: "LOCAL-DISK", version: obj.Version, body: body}
		}
	}

	// Local metadata lookup (the find-nearest command). Misses are
	// detected locally in broadcast and digest modes: no hint or digest
	// match means go straight to the origin. In partition mode a local
	// miss is only authoritative when this node is one of the object's
	// hint homes; otherwise the home is consulted — one extra hop, hedged
	// against the origin so it can never slow the miss down.
	var peerURL string
	var holder uint64
	if n.cfg.UseDigests {
		peerURL = n.digestPeer(h)
	} else if machine, ok := n.hints.Lookup(h); ok && machine != n.machineID {
		holder = machine
		n.peerMu.RLock()
		peerURL = n.peers[machine]
		n.peerMu.RUnlock()
	} else if !ok && n.partitioned() {
		if homeURL := n.hintHomeFor(h); homeURL != "" {
			return n.fillViaHome(h, url, reqID, homeURL, sampled)
		}
	}

	var hops []obs.Hop
	if peerURL != "" {
		br := n.breakers.Get(peerURL)
		if br.Allow() {
			return n.fillRaced(h, url, reqID, peerURL, holder, br, sampled)
		}
		// The peer's breaker is open: a known-bad peer must not cost
		// this request anything. Straight to the origin, hint kept —
		// the half-open probe will revalidate the peer later.
		n.stats.breakerSkips.Add(1)
		hops = append(hops, obs.Hop{Node: hostPortOf(peerURL), Outcome: "BREAKER-SKIP"})
	}

	ctx, cancel := context.WithTimeout(context.Background(), n.originTimeout)
	defer cancel()
	got, err := n.fetchOrigin(ctx, url, reqID, sampled)
	if err != nil {
		return fetchOutcome{err: err}
	}
	hops = append(hops, got.hops...)
	n.store(h, got.version, got.body)
	n.stats.misses.Add(1)
	return fetchOutcome{how: "MISS", version: got.version, body: got.body, hops: hops}
}

// fillRaced resolves a miss whose hint points at peerURL. The peer probe
// runs under its own deadline; if it stays silent past the hedge budget
// the origin fetch starts in parallel and the first success wins (a
// negative budget keeps the pre-resilience sequential path). Either way a
// failed or abandoned peer demotes the hint and feeds the breaker, so a
// dead peer's hints stop costing anything — the paper's principles 1–2
// enforced under faults: a stale hint must never make a request slower
// than going straight to the origin.
func (n *Node) fillRaced(h uint64, url, reqID, peerURL string, holder uint64, br *resilience.Breaker, sampled bool) fetchOutcome {
	peerHost := hostPortOf(peerURL)
	probeStart := time.Now()
	// The probe's elapsed time is written by the primary goroutine and
	// read by this one only after the race reports the primary done
	// (atomic to cover the abandoned-primary case).
	var probeNS atomic.Int64
	primary := func(ctx context.Context) (fetched, error) {
		pctx, cancel := context.WithTimeout(ctx, n.peerTimeout)
		defer cancel()
		got, err := n.fetchPeer(pctx, peerURL, url, reqID, sampled)
		probeNS.Store(int64(time.Since(probeStart)))
		return got, err
	}
	fallback := func(ctx context.Context) (fetched, error) {
		octx, cancel := context.WithTimeout(ctx, n.originTimeout)
		defer cancel()
		return n.fetchOrigin(octx, url, reqID, sampled)
	}
	r := resilience.Race(context.Background(), n.hedgeBudget, primary, fallback)
	if r.Hedged {
		n.stats.hedgesStarted.Add(1)
	}
	switch r.Winner {
	case resilience.PrimaryWon:
		br.Record(true)
		if r.Hedged {
			n.stats.hedgePeerWins.Add(1)
		}
		n.store(h, r.Value.version, r.Value.body)
		n.stats.remoteHits.Add(1)
		return fetchOutcome{how: "REMOTE", version: r.Value.version, body: r.Value.body, hops: r.Value.hops}

	case resilience.FallbackWon:
		// The peer never answered inside the budget and the origin beat
		// it: abandon the transfer, demote the hint, mark the peer
		// unhealthy so later requests skip it.
		br.Record(false)
		n.stats.hedgeOriginWins.Add(1)
		n.demoteHint(h, holder)
		probe := time.Since(probeStart)
		n.hist.falsePositive.Observe(probe)
		hops := append([]obs.Hop{{Node: peerHost, Outcome: "PEER-ABANDON", Elapsed: probe}}, r.Value.hops...)
		n.store(h, r.Value.version, r.Value.body)
		n.stats.misses.Add(1)
		return fetchOutcome{how: "MISS,HEDGE", version: r.Value.version, body: r.Value.body, hops: hops}

	case resilience.FallbackAfterPrimary:
		// Stale hint or digest false positive: the peer definitively
		// rejected (or errored) and the origin served. Pay the wasted
		// probe, drop the exact hint (digests cannot delete), never
		// search further (Section 3.1.1).
		br.Record(false)
		if r.Hedged {
			n.stats.hedgeOriginWins.Add(1)
		}
		n.demoteHint(h, holder)
		probe := time.Duration(probeNS.Load())
		n.hist.falsePositive.Observe(probe)
		n.stats.falsePositives.Add(1)
		hops := append([]obs.Hop{{Node: peerHost, Outcome: "PEER-REJECT", Elapsed: probe}}, r.Value.hops...)
		n.store(h, r.Value.version, r.Value.body)
		n.stats.misses.Add(1)
		return fetchOutcome{how: "MISS,STALE-HINT", version: r.Value.version, body: r.Value.body, hops: hops}

	default: // BothFailed
		br.Record(false)
		return fetchOutcome{err: fmt.Errorf("peer: %v; origin: %w", r.PrimaryErr, r.Err)}
	}
}

// demoteHint drops the exact hint for h (digest mode has nothing to
// delete — the stale bit ages out at the next digest pull). In partition
// mode the authoritative record lives at the object's hint homes, so a
// routed machine-matched invalidate withdraws the stale record there too;
// machine-matched so a home that already learned of a fresher holder
// keeps it.
func (n *Node) demoteHint(h, machine uint64) {
	if n.cfg.UseDigests {
		return
	}
	n.hints.Delete(h, 0)
	if n.partitioned() && machine != 0 {
		n.enqueueLocal(hintcache.Update{
			Action:  hintcache.ActionInvalidate,
			URLHash: h,
			Machine: machine,
		})
	}
}

// handleObject is the cache-to-cache path: GET /object?url=U serves only
// locally cached data.
func (n *Node) handleObject(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	url := queryURL(r)
	if url == "" {
		http.Error(w, "missing url parameter", http.StatusBadRequest)
		return
	}
	start := time.Now()
	h := hintcache.HashURL(url)
	obj, body, ok := n.data.Get(h)
	if !ok && n.tier != nil {
		// The hint that led the peer here may point at a spilled (or
		// just-recovered) object: still locally cached, just on disk.
		obj, body, ok = n.tier.Get(h)
	}
	if !ok {
		n.stats.peerRejects.Add(1)
		elapsed := time.Since(start)
		n.recordPeerSpan(r, "PEER-REJECT", elapsed)
		w.Header().Set(headerTraceHop,
			obs.Hop{Node: n.label(), Outcome: "PEER-REJECT", Elapsed: elapsed}.Segment())
		http.Error(w, "not cached", http.StatusNotFound)
		return
	}
	n.stats.peerServes.Add(1)
	elapsed := time.Since(start)
	n.hist.peerServe.Observe(elapsed)
	n.recordPeerSpan(r, "PEER-SERVE", elapsed)
	w.Header().Set(headerTraceHop,
		obs.Hop{Node: n.label(), Outcome: "PEER-SERVE", Elapsed: elapsed}.Segment())
	serveObject(w, "PEER", obj.Version, body)
}

// recordPeerSpan records this node's side of a cache-to-cache transfer as
// a single-span group under the fetching node's trace ID, but only when
// the fetcher marked the request sampled — the unsampled majority of peer
// serves records nothing.
func (n *Node) recordPeerSpan(r *http.Request, outcome string, elapsed time.Duration) {
	if r.Header.Get(headerTraceSampled) == "" {
		return
	}
	reqID := r.Header.Get(headerRequestID)
	if reqID == "" {
		return
	}
	n.spans.Add(obs.Span{
		TraceID:  obs.TraceID(reqID),
		Index:    0,
		Parent:   obs.SpanRoot,
		Node:     n.label(),
		Outcome:  outcome,
		Duration: elapsed,
	})
}

// updatesBodyPool, updatesScratchPool, and updatesPayloadPool recycle the
// body buffer, the decoded-update scratch slice, and the frame-payload
// inflate scratch of the /updates ingest path, so a steady stream of hint
// batches does not allocate per request.
var (
	updatesBodyPool    = sync.Pool{New: func() any { return new(bytes.Buffer) }}
	updatesScratchPool = sync.Pool{New: func() any { return new([]hintcache.Update) }}
	updatesPayloadPool = sync.Pool{New: func() any { return new([]byte) }}
)

// unframeUpdates extracts the hint-record payload from a POST /updates
// body: either a single KindHintBatch frame (the framed wire plane) or a
// bare record concatenation (the legacy encoding — raw records start with
// an action byte 0x01/0x02, frames with 'b', so the two are unambiguous).
// limit bounds the decoded record bytes; scratch is the caller's pooled
// inflate buffer, returned possibly regrown. On error the returned status
// is the HTTP response code (413 for oversize, 400 otherwise).
func unframeUpdates(msg []byte, limit int64, scratch []byte) (records []byte, _ []byte, status int, err error) {
	if !wire.IsFrame(msg) {
		if int64(len(msg)) > limit {
			return nil, scratch, http.StatusRequestEntityTooLarge,
				fmt.Errorf("body %d bytes exceeds limit %d", len(msg), limit)
		}
		return msg, scratch, 0, nil
	}
	f, rest, err := wire.Decode(msg)
	if err != nil {
		return nil, scratch, http.StatusBadRequest, err
	}
	if len(rest) != 0 {
		return nil, scratch, http.StatusBadRequest,
			fmt.Errorf("%d trailing bytes after frame", len(rest))
	}
	if f.Kind != wire.KindHintBatch {
		return nil, scratch, http.StatusBadRequest,
			fmt.Errorf("unexpected frame kind %s", f.Kind)
	}
	// The declared raw length is checked before inflating so a compressed
	// bomb cannot expand past the limit.
	if int64(f.RawLen) > limit {
		return nil, scratch, http.StatusRequestEntityTooLarge,
			fmt.Errorf("frame payload %d bytes exceeds limit %d", f.RawLen, limit)
	}
	payload, err := f.Payload(scratch[:0])
	if err != nil {
		return nil, scratch, http.StatusBadRequest, err
	}
	if f.Compressed {
		scratch = payload
	}
	return payload, scratch, 0, nil
}

// readUpdatesBody reads a POST /updates body into buf, enforcing limit. A
// body that exceeds the limit is refused whole — the old behavior of
// silently truncating at the limit could shear a 20-byte record mid-encode
// and reject an otherwise valid batch as garbage. On error it returns the
// HTTP status to respond with (413 for oversize, 400 otherwise).
func readUpdatesBody(buf *bytes.Buffer, r *http.Request, limit int64) (status int, err error) {
	if r.ContentLength > limit {
		return http.StatusRequestEntityTooLarge,
			fmt.Errorf("body %d bytes exceeds limit %d", r.ContentLength, limit)
	}
	// Read one byte past the limit so an unannounced oversized body is
	// distinguishable from one that exactly fits.
	if _, err := buf.ReadFrom(io.LimitReader(r.Body, limit+1)); err != nil {
		return http.StatusBadRequest, fmt.Errorf("read body: %w", err)
	}
	if int64(buf.Len()) > limit {
		return http.StatusRequestEntityTooLarge,
			fmt.Errorf("body exceeds limit %d", limit)
	}
	return 0, nil
}

// handleUpdates ingests a batch of hint updates: POST /updates. The body
// limit is sized from the hint-queue cap (a batch can never legitimately
// exceed one full queue), records from this node are filtered out (our own
// copies are tracked by the data cache), and the rest apply through
// ApplyBatch, which takes each hint-table stripe lock once per batch
// instead of once per record.
func (n *Node) handleUpdates(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	buf := updatesBodyPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer updatesBodyPool.Put(buf)
	// The body limit admits one frame header over the record limit; the
	// record bytes themselves (raw or declared by the frame) are held to
	// updatesLimit by unframeUpdates.
	if status, err := readUpdatesBody(buf, r, n.updatesLimit+wire.HeaderSize); err != nil {
		if status == http.StatusRequestEntityTooLarge {
			n.stats.oversizeRejects.Add(1)
		}
		http.Error(w, err.Error(), status)
		return
	}
	payloadBuf := updatesPayloadPool.Get().(*[]byte)
	defer updatesPayloadPool.Put(payloadBuf)
	msg, pb, status, err := unframeUpdates(buf.Bytes(), n.updatesLimit, *payloadBuf)
	*payloadBuf = pb
	if err != nil {
		if status == http.StatusRequestEntityTooLarge {
			n.stats.oversizeRejects.Add(1)
		}
		http.Error(w, err.Error(), status)
		return
	}
	scratch := updatesScratchPool.Get().(*[]hintcache.Update)
	defer updatesScratchPool.Put(scratch)
	updates, err := hintcache.AppendDecodedUpdates((*scratch)[:0], msg)
	*scratch = updates[:0]
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	total := len(updates)
	kept := updates[:0]
	for _, u := range updates {
		if u.Machine == n.machineID {
			continue
		}
		kept = append(kept, u)
	}
	_ = n.hints.ApplyBatch(kept)
	n.stats.updatesReceived.Add(int64(total))
	// Freshness telemetry: the sender (or the relay forwarding for it)
	// stamped the batch with its oldest enqueue wall clock; the difference
	// to our clock is how stale these hints already were on arrival.
	if st, ok := hintcache.ParseStamp(r.Header.Get(headerHintBatch)); ok {
		if from := r.Header.Get("X-Relay-From"); from != "" {
			n.hintLag.Observe(hostPortOf(from), time.Since(time.Unix(0, st.UnixNs)))
		}
	}
	// An inbound batch is a sign of life from its sender: feed the
	// membership tracker so a revived peer rejoins the routing plane
	// without waiting out a probe round.
	n.noteInboundContact(r.Header.Get("X-Relay-From"))
	w.WriteHeader(http.StatusNoContent)
}

// handlePurge drops the local copy of a URL: POST /purge?url=U. The
// resulting invalidate propagates with the next batch.
func (n *Node) handlePurge(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	url := queryURL(r)
	if url == "" {
		http.Error(w, "missing url parameter", http.StatusBadRequest)
		return
	}
	h := hintcache.HashURL(url)
	// Discard, not Remove: a purged object must leave BOTH tiers without
	// the eviction callback spilling it back to disk. The purge owns the
	// resulting invalidate.
	removed := n.data.Discard(h)
	if n.tier != nil && n.tier.Discard(h) {
		removed = true
	}
	if !removed {
		http.Error(w, "not cached", http.StatusNotFound)
		return
	}
	n.queueInvalidate(h)
	w.WriteHeader(http.StatusNoContent)
}

// handleStats serves GET /stats as JSON.
func (n *Node) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	payload := struct {
		Name string `json:"name"`
		Stats
	}{Name: n.cfg.Name, Stats: n.Stats()}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(payload); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// fetched is one successful upstream fetch (peer or origin).
type fetched struct {
	version int64
	body    []byte
	hops    []obs.Hop
}

// fetchGet performs one upstream GET under ctx and decodes the object plus
// the upstream's self-timed hop segment. Sampled requests forward the
// request ID and the sampled flag so the upstream can record its own span
// group under the same trace ID.
func (n *Node) fetchGet(ctx context.Context, reqURL, reqID string, sampled bool) (int64, []byte, []obs.Hop, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, reqURL, nil)
	if err != nil {
		return 0, nil, nil, err
	}
	if sampled {
		req.Header[headerRequestID] = []string{reqID}
		req.Header[headerTraceSampled] = []string{"1"}
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, nil, nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	version, body, err := readObject(resp)
	if err != nil {
		return 0, nil, nil, err
	}
	var hops []obs.Hop
	if h, ok := obs.ParseSegment(resp.Header.Get(headerTraceHop)); ok {
		hops = append(hops, h)
	}
	return version, body, hops, nil
}

// fetchPeer performs a cache-to-cache transfer. On success it returns the
// hop chain for the transfer: the peer's self-timed serve segment (from its
// X-Trace-Hop header) followed by this node's round-trip measurement — the
// difference between the two is time on the wire. ctx carries the per-hop
// peer deadline (and, on the hedged path, the race's abandon signal).
func (n *Node) fetchPeer(ctx context.Context, peerURL, url, reqID string, sampled bool) (fetched, error) {
	start := time.Now()
	version, body, hops, err := n.fetchGet(ctx, peerURL+"/object?url="+neturl.QueryEscape(url), reqID, sampled)
	if err != nil {
		return fetched{}, fmt.Errorf("peer fetch: %w", err)
	}
	hops = append(hops, obs.Hop{Node: hostPortOf(peerURL), Outcome: "PEER", Elapsed: time.Since(start)})
	return fetched{version: version, body: body, hops: hops}, nil
}

// fetchOrigin fetches from the origin server, returning the origin's
// self-timed serve segment (when present) plus the measured round trip.
func (n *Node) fetchOrigin(ctx context.Context, url, reqID string, sampled bool) (fetched, error) {
	start := time.Now()
	version, body, hops, err := n.fetchGet(ctx, n.cfg.OriginURL+"/obj?url="+neturl.QueryEscape(url), reqID, sampled)
	if err != nil {
		return fetched{}, fmt.Errorf("origin fetch: %w", err)
	}
	hops = append(hops, obs.Hop{Node: "origin", Outcome: "ORIGIN", Elapsed: time.Since(start)})
	return fetched{version: version, body: body, hops: hops}, nil
}

func readObject(resp *http.Response) (int64, []byte, error) {
	version, err := strconv.ParseInt(resp.Header.Get(headerVersion), 10, 64)
	if err != nil {
		return 0, nil, fmt.Errorf("bad %s header: %w", headerVersion, err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, fmt.Errorf("read body: %w", err)
	}
	return version, body, nil
}

func serveObject(w http.ResponseWriter, how string, version int64, body []byte) {
	// Direct map assignment with canonical keys (see finishFetch).
	hdr := w.Header()
	hdr[headerCache] = []string{how}
	hdr[headerVersion] = []string{strconv.FormatInt(version, 10)}
	hdr["Content-Length"] = []string{strconv.Itoa(len(body))}
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}
