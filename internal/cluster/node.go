package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	neturl "net/url"
	"strconv"
	"sync"
	"time"

	"beyondcache/internal/cache"
	"beyondcache/internal/digest"
	"beyondcache/internal/hintcache"
)

// Protocol headers.
const (
	// headerVersion carries the object's version.
	headerVersion = "X-Object-Version"
	// headerCache reports how a /fetch was served: LOCAL, REMOTE, or
	// MISS (origin fetch), optionally suffixed with ",STALE-HINT" when a
	// false positive was paid first.
	headerCache = "X-Cache"
)

// NodeConfig parameterizes a cache node.
type NodeConfig struct {
	// Name labels the node in logs and stats.
	Name string
	// CacheBytes bounds the object cache (<= 0 means 64 MB).
	CacheBytes int64
	// HintEntries and HintWays shape the hint table (defaults 65536 x 4).
	HintEntries int
	HintWays    int
	// OriginURL is the origin server's base URL.
	OriginURL string
	// UpdateInterval is the mean delay between hint-update batches. The
	// actual period is randomized uniformly in [0.5, 1.5] x interval to
	// avoid synchronization effects (Section 3.2 cites Floyd & Jacobson).
	// Zero means 1 second. In digest mode it is the digest pull interval.
	UpdateInterval time.Duration
	// Seed feeds the update-interval jitter.
	Seed int64

	// UseDigests switches the node from exact hint records to pulling
	// Bloom-filter cache digests from its peers (the Summary Cache /
	// Squid Cache Digests alternative). DigestCapacity and
	// DigestBitsPerEntry size each digest (defaults 8192 entries x 8
	// bits).
	UseDigests         bool
	DigestCapacity     int
	DigestBitsPerEntry float64
}

// Stats counts node activity.
type Stats struct {
	LocalHits       int64 `json:"localHits"`
	RemoteHits      int64 `json:"remoteHits"`
	Misses          int64 `json:"misses"`
	FalsePositives  int64 `json:"falsePositives"`
	PeerServes      int64 `json:"peerServes"`
	PeerRejects     int64 `json:"peerRejects"`
	UpdatesSent     int64 `json:"updatesSent"`
	UpdatesReceived int64 `json:"updatesReceived"`
	BatchesSent     int64 `json:"batchesSent"`
	SendErrors      int64 `json:"sendErrors"`
	DigestsPulled   int64 `json:"digestsPulled"`
}

// Node is one proxy cache in the prototype.
type Node struct {
	cfg NodeConfig

	mu     sync.Mutex
	data   *cache.LRU
	bodies map[uint64][]byte
	hints  *hintcache.Cache
	peers  map[uint64]string // machine ID -> base URL
	// peerOrder fixes a deterministic scan order for digest lookups.
	peerOrder   []uint64
	peerDigests map[uint64]*digest.Filter
	ownDigest   *digest.Filter
	updates     []string // update targets; empty means all peers
	pending     []hintcache.Update
	stats       Stats
	rng         *rand.Rand

	machineID uint64
	lis       net.Listener
	srv       *http.Server
	client    *http.Client

	stopBatch chan struct{}
	batchDone chan struct{}
	srvDone   chan struct{}
	closeOnce sync.Once
}

// NewNode builds a node; call Start to begin serving.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.OriginURL == "" {
		return nil, fmt.Errorf("cluster: node %q: OriginURL required", cfg.Name)
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.HintEntries <= 0 {
		cfg.HintEntries = 65536
	}
	if cfg.HintWays <= 0 {
		cfg.HintWays = 4
	}
	if cfg.UpdateInterval <= 0 {
		cfg.UpdateInterval = time.Second
	}
	if err := validateDigestConfig(&cfg); err != nil {
		return nil, err
	}
	n := &Node{
		cfg:       cfg,
		data:      cache.NewLRU(cfg.CacheBytes),
		bodies:    make(map[uint64][]byte),
		hints:     hintcache.NewMem(cfg.HintEntries, cfg.HintWays),
		peers:     make(map[uint64]string),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		client:    &http.Client{Timeout: 10 * time.Second},
		stopBatch: make(chan struct{}),
		batchDone: make(chan struct{}),
		srvDone:   make(chan struct{}),
	}
	if cfg.UseDigests {
		own, err := digest.NewForCapacity(cfg.DigestCapacity, cfg.DigestBitsPerEntry)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %q: %w", cfg.Name, err)
		}
		n.ownDigest = own
		n.peerDigests = make(map[uint64]*digest.Filter)
	}
	// Capacity evictions advertise non-presence (the prototype's
	// invalidate command). The callback runs under n.mu because all
	// cache mutations happen there.
	n.data.OnEvict(func(o cache.Object) {
		delete(n.bodies, o.ID)
		n.pending = append(n.pending, hintcache.Update{
			Action:  hintcache.ActionInvalidate,
			URLHash: o.ID,
			Machine: n.machineID,
		})
	})
	return n, nil
}

// Start listens on addr ("127.0.0.1:0" for ephemeral) and starts the update
// batcher.
func (n *Node) Start(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: node %q listen: %w", n.cfg.Name, err)
	}
	n.lis = lis
	n.machineID = hintcache.HashMachine(lis.Addr().String())

	mux := http.NewServeMux()
	mux.HandleFunc("/fetch", n.handleFetch)
	mux.HandleFunc("/object", n.handleObject)
	mux.HandleFunc("/updates", n.handleUpdates)
	mux.HandleFunc("/purge", n.handlePurge)
	mux.HandleFunc("/stats", n.handleStats)
	mux.HandleFunc("/digest", n.handleDigest)
	n.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       30 * time.Second,
	}
	go func() {
		defer close(n.srvDone)
		_ = n.srv.Serve(lis)
	}()
	go n.batchLoop()
	return nil
}

// Addr returns the node's listening address.
func (n *Node) Addr() string {
	if n.lis == nil {
		return ""
	}
	return n.lis.Addr().String()
}

// URL returns the node's base URL.
func (n *Node) URL() string { return "http://" + n.Addr() }

// MachineID returns the node's 8-byte machine identifier.
func (n *Node) MachineID() uint64 { return n.machineID }

// AddPeer registers a peer node by base URL ("http://host:port"). Hint
// updates are broadcast to all peers, and hints pointing at a peer are
// resolved through this table.
func (n *Node) AddPeer(baseURL string) {
	hostport := hostPortOf(baseURL)
	id := hintcache.HashMachine(hostport)
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, known := n.peers[id]; !known {
		n.peerOrder = append(n.peerOrder, id)
	}
	n.peers[id] = baseURL
}

// AddUpdateTarget directs hint-update batches to baseURL (a metadata relay
// or parent) instead of broadcasting to every peer. Data-path peer
// resolution (AddPeer) is unaffected: transfers remain direct cache-to-
// cache regardless of how metadata travels (the paper's core separation).
func (n *Node) AddUpdateTarget(baseURL string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.updates = append(n.updates, baseURL)
}

// hostPortOf strips an "http://" prefix.
func hostPortOf(baseURL string) string {
	const prefix = "http://"
	if len(baseURL) > len(prefix) && baseURL[:len(prefix)] == prefix {
		return baseURL[len(prefix):]
	}
	return baseURL
}

// Close stops the batcher (flushing once) and shuts the server down. Close
// is idempotent.
func (n *Node) Close() error {
	var err error
	n.closeOnce.Do(func() {
		close(n.stopBatch)
		<-n.batchDone
		if n.srv == nil {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		err = n.srv.Shutdown(ctx)
		if err != nil {
			// A connection stuck between states can hold Shutdown
			// open indefinitely; force-close stragglers. This is
			// not an application error.
			_ = n.srv.Close()
			err = nil
		}
		<-n.srvDone
	})
	return err
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// HintStats returns the hint table's counters.
func (n *Node) HintStats() hintcache.Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hints.Stats()
}

// batchLoop periodically flushes pending hint updates to all peers, with a
// randomized period to avoid synchronization.
func (n *Node) batchLoop() {
	defer close(n.batchDone)
	for {
		interval := n.jitteredInterval()
		select {
		case <-n.stopBatch:
			n.exchange()
			return
		case <-time.After(interval):
			n.exchange()
		}
	}
}

func (n *Node) jitteredInterval() time.Duration {
	n.mu.Lock()
	f := 0.5 + n.rng.Float64()
	n.mu.Unlock()
	return time.Duration(float64(n.cfg.UpdateInterval) * f)
}

// exchange performs one metadata round: hint-update flush, or digest pull.
func (n *Node) exchange() {
	if n.cfg.UseDigests {
		n.PullDigests()
		return
	}
	n.Flush()
}

// Flush sends all pending hint updates to every peer immediately. It is
// also called by the batcher; tests call it directly to avoid sleeping.
func (n *Node) Flush() {
	n.mu.Lock()
	batch := n.pending
	n.pending = nil
	var targets []string
	if len(n.updates) > 0 {
		targets = append(targets, n.updates...)
	} else {
		for _, u := range n.peers {
			targets = append(targets, u)
		}
	}
	n.mu.Unlock()
	if len(batch) == 0 || len(targets) == 0 {
		return
	}
	body := hintcache.EncodeUpdates(batch)
	for _, t := range targets {
		req, err := http.NewRequest(http.MethodPost, t+"/updates", bytes.NewReader(body))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.Header.Set("X-Relay-From", n.URL())
		resp, err := n.client.Do(req)
		if err != nil {
			n.mu.Lock()
			n.stats.SendErrors++
			n.mu.Unlock()
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		n.mu.Lock()
		n.stats.BatchesSent++
		n.stats.UpdatesSent += int64(len(batch))
		n.mu.Unlock()
	}
}

// queueInform records a local copy and schedules its advertisement.
// Callers must hold n.mu.
func (n *Node) queueInformLocked(urlHash uint64) {
	n.pending = append(n.pending, hintcache.Update{
		Action:  hintcache.ActionInform,
		URLHash: urlHash,
		Machine: n.machineID,
	})
}

// storeLocked caches a fetched object. Callers must hold n.mu.
func (n *Node) storeLocked(urlHash uint64, version int64, body []byte) {
	if n.data.Put(cache.Object{ID: urlHash, Size: int64(len(body)), Version: version}) {
		n.bodies[urlHash] = body
		n.queueInformLocked(urlHash)
	}
}

// handleFetch is the client-facing entry point: GET /fetch?url=U.
func (n *Node) handleFetch(w http.ResponseWriter, r *http.Request) {
	url := r.URL.Query().Get("url")
	if url == "" {
		http.Error(w, "missing url parameter", http.StatusBadRequest)
		return
	}
	h := hintcache.HashURL(url)

	// Local cache.
	n.mu.Lock()
	if obj, ok := n.data.Get(h); ok {
		body := n.bodies[h]
		n.stats.LocalHits++
		n.mu.Unlock()
		serveObject(w, "LOCAL", obj.Version, body)
		return
	}
	// Local metadata lookup (the find-nearest command). Misses are
	// detected locally: no hint or digest match means go straight to the
	// origin.
	var peerURL string
	if n.cfg.UseDigests {
		peerURL = n.digestPeerLocked(h)
	} else if machine, ok := n.hints.Lookup(h); ok && machine != n.machineID {
		peerURL = n.peers[machine]
	}
	n.mu.Unlock()

	stale := false
	if peerURL != "" {
		version, body, err := n.fetchPeer(peerURL, url)
		if err == nil {
			n.mu.Lock()
			n.storeLocked(h, version, body)
			n.stats.RemoteHits++
			n.mu.Unlock()
			serveObject(w, "REMOTE", version, body)
			return
		}
		// Stale hint or digest false positive: pay the wasted probe,
		// drop the exact hint (digests cannot delete), fall through to
		// the origin (never search further, Section 3.1.1).
		stale = true
		n.mu.Lock()
		n.stats.FalsePositives++
		if !n.cfg.UseDigests {
			n.hints.Delete(h, 0)
		}
		n.mu.Unlock()
	}

	version, body, err := n.fetchOrigin(url)
	if err != nil {
		http.Error(w, fmt.Sprintf("origin fetch: %v", err), http.StatusBadGateway)
		return
	}
	n.mu.Lock()
	n.storeLocked(h, version, body)
	n.stats.Misses++
	n.mu.Unlock()
	how := "MISS"
	if stale {
		how = "MISS,STALE-HINT"
	}
	serveObject(w, how, version, body)
}

// handleObject is the cache-to-cache path: GET /object?url=U serves only
// locally cached data.
func (n *Node) handleObject(w http.ResponseWriter, r *http.Request) {
	url := r.URL.Query().Get("url")
	if url == "" {
		http.Error(w, "missing url parameter", http.StatusBadRequest)
		return
	}
	h := hintcache.HashURL(url)
	n.mu.Lock()
	obj, ok := n.data.Get(h)
	var body []byte
	if ok {
		body = n.bodies[h]
		n.stats.PeerServes++
	} else {
		n.stats.PeerRejects++
	}
	n.mu.Unlock()
	if !ok {
		http.Error(w, "not cached", http.StatusNotFound)
		return
	}
	serveObject(w, "PEER", obj.Version, body)
}

// handleUpdates ingests a batch of hint updates: POST /updates.
func (n *Node) handleUpdates(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	msg, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, "read body", http.StatusBadRequest)
		return
	}
	updates, err := hintcache.DecodeUpdates(msg)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	n.mu.Lock()
	for _, u := range updates {
		if u.Machine == n.machineID {
			continue // our own copies are tracked by the data cache
		}
		_ = n.hints.Apply(u)
	}
	n.stats.UpdatesReceived += int64(len(updates))
	n.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// handlePurge drops the local copy of a URL: POST /purge?url=U. The
// resulting invalidate propagates with the next batch.
func (n *Node) handlePurge(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	url := r.URL.Query().Get("url")
	if url == "" {
		http.Error(w, "missing url parameter", http.StatusBadRequest)
		return
	}
	h := hintcache.HashURL(url)
	n.mu.Lock()
	removed := n.data.Remove(h) // fires the eviction callback
	n.mu.Unlock()
	if !removed {
		http.Error(w, "not cached", http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleStats serves GET /stats as JSON.
func (n *Node) handleStats(w http.ResponseWriter, r *http.Request) {
	payload := struct {
		Name string `json:"name"`
		Stats
	}{Name: n.cfg.Name, Stats: n.Stats()}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(payload); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// fetchPeer performs a cache-to-cache transfer.
func (n *Node) fetchPeer(peerURL, url string) (int64, []byte, error) {
	resp, err := n.client.Get(peerURL + "/object?url=" + neturl.QueryEscape(url))
	if err != nil {
		return 0, nil, fmt.Errorf("peer fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, nil, fmt.Errorf("peer fetch: status %d", resp.StatusCode)
	}
	return readObject(resp)
}

// fetchOrigin fetches from the origin server.
func (n *Node) fetchOrigin(url string) (int64, []byte, error) {
	resp, err := n.client.Get(n.cfg.OriginURL + "/obj?url=" + neturl.QueryEscape(url))
	if err != nil {
		return 0, nil, fmt.Errorf("origin fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, nil, fmt.Errorf("origin fetch: status %d", resp.StatusCode)
	}
	return readObject(resp)
}

func readObject(resp *http.Response) (int64, []byte, error) {
	version, err := strconv.ParseInt(resp.Header.Get(headerVersion), 10, 64)
	if err != nil {
		return 0, nil, fmt.Errorf("bad %s header: %w", headerVersion, err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, fmt.Errorf("read body: %w", err)
	}
	return version, body, nil
}

func serveObject(w http.ResponseWriter, how string, version int64, body []byte) {
	w.Header().Set(headerCache, how)
	w.Header().Set(headerVersion, strconv.FormatInt(version, 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}
