package cluster

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

func startRelay(t *testing.T) *Relay {
	t.Helper()
	r := NewRelay("test")
	if err := r.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := r.Close(); err != nil {
			t.Errorf("relay close: %v", err)
		}
	})
	return r
}

func TestRelayRejectsGarbage(t *testing.T) {
	r := startRelay(t)
	client := &http.Client{Timeout: 5 * time.Second}

	resp, err := client.Post(r.URL()+"/updates", "application/octet-stream",
		strings.NewReader("seventeen bytes!!"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage got %d, want 400", resp.StatusCode)
	}

	resp, err = client.Get(r.URL() + "/updates")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET got %d, want 405", resp.StatusCode)
	}
	if r.Received() != 0 || r.Forwarded() != 0 {
		t.Error("rejected traffic was counted")
	}
}

func TestRelayCloseIdempotent(t *testing.T) {
	r := NewRelay("idem")
	if err := r.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if r.Addr() == "" {
		t.Error("Addr lost after close")
	}
}

func TestRelaySkipsDeadSubscriber(t *testing.T) {
	// A relay with one dead subscriber still forwards to live ones.
	r := startRelay(t)
	f := startFleet(t, 1, FleetConfig{})
	r.Subscribe("http://127.0.0.1:1") // dead
	r.Subscribe(f.Nodes[0].URL())

	// Send a valid single-update batch straight to the relay.
	body := validUpdateBatch(t)
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Post(r.URL()+"/updates", "application/octet-stream", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("relay post got %d", resp.StatusCode)
	}
	if r.Received() != 1 {
		t.Errorf("received = %d, want 1", r.Received())
	}
	// Forwarded counts only successful deliveries: the live node.
	if r.Forwarded() != 1 {
		t.Errorf("forwarded = %d, want 1 (dead subscriber skipped)", r.Forwarded())
	}
	if f.Nodes[0].Stats().UpdatesReceived != 1 {
		t.Errorf("live node received %d updates, want 1", f.Nodes[0].Stats().UpdatesReceived)
	}
}

// validUpdateBatch builds one wire-format inform update.
func validUpdateBatch(t *testing.T) []byte {
	t.Helper()
	b := make([]byte, 20)
	b[0] = 1  // ActionInform, little-endian uint32
	b[4] = 9  // URL hash
	b[12] = 3 // machine
	return b
}
