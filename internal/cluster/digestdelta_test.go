package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"beyondcache/internal/digest"
	"beyondcache/internal/hintcache"
	"beyondcache/internal/wire"
)

// digestGet performs GET /digest (optionally with a ?since= cursor) against
// a node's real HTTP listener and returns the decoded frame, its wire size,
// and the journal cursor the node stamped on the response.
func digestGet(t *testing.T, n *Node, since uint64) (frame wire.Frame, payload []byte, wireBytes int, cursor uint64) {
	t.Helper()
	url := n.URL() + "/digest"
	if since > 0 {
		url += "?since=" + strconv.FormatUint(since, 10)
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /digest status %d: %s", resp.StatusCode, body)
	}
	cursor, err = strconv.ParseUint(resp.Header.Get(headerDigestCursor), 10, 64)
	if err != nil {
		t.Fatalf("bad %s header: %v", headerDigestCursor, err)
	}
	frame, rest, err := wire.Decode(body)
	if err != nil {
		t.Fatalf("decode digest frame: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("digest response has %d trailing bytes after the frame", len(rest))
	}
	payload, err = frame.Payload(nil)
	if err != nil {
		t.Fatalf("digest frame payload: %v", err)
	}
	return frame, payload, len(body), cursor
}

// TestDigestDeltaBytesBound is the wire-bench smoke the CI runs on every
// push: at 64Ki resident objects and 1% churn, one delta round must cost at
// most 10% of a full snapshot transfer (the issue's acceptance bound; the
// actual ratio is ~2%).
func TestDigestDeltaBytesBound(t *testing.T) {
	const objects = 64 << 10
	n := newMetaNode(t, NodeConfig{Name: "delta-bound", UseDigests: true, DigestCapacity: objects})
	for i := uint64(1); i <= objects; i++ {
		n.digestTrack(i, true)
	}

	fullFrame, _, fullBytes, cursor := digestGet(t, n, 0)
	if fullFrame.Kind != wire.KindDigestFull {
		t.Fatalf("first pull kind = %s, want %s", fullFrame.Kind, wire.KindDigestFull)
	}

	// 1% churn: evict 1%/2 of the resident set and admit as many new
	// objects, so adds+removes together touch 1% of the population.
	const churn = objects / 100 / 2
	for i := uint64(1); i <= churn; i++ {
		n.digestTrack(i, false)
		n.digestTrack(objects+i, true)
	}

	deltaFrame, payload, deltaBytes, _ := digestGet(t, n, cursor)
	if deltaFrame.Kind != wire.KindDigestDelta {
		t.Fatalf("churn pull kind = %s, want %s", deltaFrame.Kind, wire.KindDigestDelta)
	}
	if wantOps := 2 * churn; len(payload) != wantOps*9 {
		t.Errorf("delta payload = %d bytes, want %d ops * 9", len(payload), wantOps)
	}
	if 10*deltaBytes > fullBytes {
		t.Errorf("delta round = %d bytes, full snapshot = %d: delta exceeds the 10%% bound", deltaBytes, fullBytes)
	}

	st := n.Stats()
	if st.DigestServesFull != 1 || st.DigestServesDelta != 1 {
		t.Errorf("serves full=%d delta=%d, want 1/1", st.DigestServesFull, st.DigestServesDelta)
	}
	if st.DigestServeBytesDelta != int64(deltaBytes) || st.DigestServeBytesFull != int64(fullBytes) {
		t.Errorf("serve byte counters full=%d delta=%d, want %d/%d",
			st.DigestServeBytesFull, st.DigestServeBytesDelta, fullBytes, deltaBytes)
	}
	if st.DigestCursorLost != 0 {
		t.Errorf("cursor losses = %d, want 0", st.DigestCursorLost)
	}
}

// TestDigestDeltaFleetEquivalence checks the replication invariant over the
// real wire: after a full pull and then a delta pull, the puller's copy of
// the owner's digest is byte-identical to the owner's own filter — applying
// the journaled ops reproduces the counters exactly, removals included.
func TestDigestDeltaFleetEquivalence(t *testing.T) {
	f := startDigestFleet(t, 2)
	for i := 0; i < 48; i++ {
		if _, err := f.Fetch(0, fmt.Sprintf("http://example.com/eq/%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	f.FlushAll() // first exchange: full snapshots (no cursor yet)

	// Churn on the owner: new admissions and a few deletions.
	for i := 48; i < 64; i++ {
		if _, err := f.Fetch(0, fmt.Sprintf("http://example.com/eq/%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if err := f.Purge(0, fmt.Sprintf("http://example.com/eq/%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	f.FlushAll() // second exchange: cursor-based deltas

	owner, puller := f.Nodes[0], f.Nodes[1]
	if ops := puller.Stats().DigestDeltaOps; ops == 0 {
		t.Fatal("second exchange applied no delta ops (pull fell back to a full snapshot)")
	}
	owner.digestMu.RLock()
	want := owner.own.AppendBinary(nil)
	owner.digestMu.RUnlock()

	puller.digestMu.RLock()
	if len(puller.peerDigests) != 1 {
		puller.digestMu.RUnlock()
		t.Fatalf("puller tracks %d peer digests, want 1", len(puller.peerDigests))
	}
	var got []byte
	for _, copyOf := range puller.peerDigests {
		got = copyOf.AppendBinary(nil)
	}
	puller.digestMu.RUnlock()

	if !bytes.Equal(got, want) {
		t.Errorf("delta-maintained peer copy diverged from owner filter (%d vs %d bytes)", len(got), len(want))
	}
}

// TestDigestCursorLossFallsBackToFull ages a cursor out of the journal ring
// and checks the owner detects the loss, serves a full snapshot, and counts
// it.
func TestDigestCursorLossFallsBackToFull(t *testing.T) {
	// DigestCapacity 16 floors the journal at 1024 slots.
	n := newMetaNode(t, NodeConfig{Name: "cursor-loss", UseDigests: true, DigestCapacity: 16})
	n.digestTrack(1, true)
	_, _, _, cursor := digestGet(t, n, 0)

	// Push more ops than the ring holds; the early cursor ages out. Track
	// add+remove pairs so the tiny filter never saturates into a rebuild.
	for i := uint64(2); i <= 602; i++ {
		n.digestTrack(i, true)
		n.digestTrack(i, false)
	}
	frame, _, _, _ := digestGet(t, n, cursor)
	if frame.Kind != wire.KindDigestFull {
		t.Fatalf("post-overflow pull kind = %s, want %s (full fallback)", frame.Kind, wire.KindDigestFull)
	}
	if st := n.Stats(); st.DigestCursorLost != 1 {
		t.Errorf("cursor losses = %d, want 1", st.DigestCursorLost)
	}
}

// TestDigestDeltaLargerThanSnapshotServesFull: when more ops are journaled
// past the cursor than the filter itself occupies, the full snapshot is the
// cheaper transfer — served without charging a cursor loss (the cursor was
// fine).
func TestDigestDeltaLargerThanSnapshotServesFull(t *testing.T) {
	// Capacity 16 at 8 bits/entry: a 140-byte snapshot; 16 journaled ops
	// (144 bytes) already exceed it.
	n := newMetaNode(t, NodeConfig{Name: "delta-beats-full", UseDigests: true, DigestCapacity: 16})
	n.digestTrack(1, true)
	_, _, _, cursor := digestGet(t, n, 0)

	for i := uint64(2); i <= 40; i++ {
		n.digestTrack(i, true)
		n.digestTrack(i, false)
	}
	frame, _, _, _ := digestGet(t, n, cursor)
	if frame.Kind != wire.KindDigestFull {
		t.Fatalf("oversized-delta pull kind = %s, want %s", frame.Kind, wire.KindDigestFull)
	}
	st := n.Stats()
	if st.DigestCursorLost != 0 {
		t.Errorf("cursor losses = %d, want 0 (cursor was valid, delta just too big)", st.DigestCursorLost)
	}
	if st.DigestServesFull != 2 {
		t.Errorf("full serves = %d, want 2", st.DigestServesFull)
	}
}

// TestDigestServeCoalesces fires a stampede of concurrent GET /digest
// requests and checks exactly one snapshot marshal ran: the rest either
// joined the singleflight or read the cached generation-stamped frame.
func TestDigestServeCoalesces(t *testing.T) {
	n := newMetaNode(t, NodeConfig{Name: "serve-coalesce", UseDigests: true})
	for i := uint64(1); i <= 2048; i++ {
		n.digestTrack(i, true)
	}

	const scrapers = 16
	var wg sync.WaitGroup
	frames := make([][]byte, scrapers)
	for i := 0; i < scrapers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(n.URL() + "/digest")
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			frames[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()

	if builds := n.snapBuilds.Load(); builds != 1 {
		t.Errorf("snapshot builds = %d, want 1 (stampede must coalesce)", builds)
	}
	for i := 1; i < scrapers; i++ {
		if !bytes.Equal(frames[i], frames[0]) {
			t.Fatalf("scraper %d got a different frame than scraper 0", i)
		}
	}

	// The cache invalidates when the journal moves: one more transition,
	// one more build.
	n.digestTrack(3000, true)
	digestGet(t, n, 0)
	if builds := n.snapBuilds.Load(); builds != 2 {
		t.Errorf("snapshot builds after churn = %d, want 2", builds)
	}
}

// TestDigestCursorAtomicWithFrame hammers the journal with churn while a
// puller replays serves against a local replica, checking two things on
// every response: the advertised X-Digest-Cursor matches the ops the frame
// actually carries (head == since + ops), and — once the churn quiesces —
// the delta-maintained replica is byte-identical to the owner's filter. A
// cursor read outside the lock that encoded the frame attributes ops
// journaled in the gap to the response without delivering them, so the
// replica silently diverges.
func TestDigestCursorAtomicWithFrame(t *testing.T) {
	n := newMetaNode(t, NodeConfig{Name: "cursor-atomic", UseDigests: true, DigestCapacity: 64 << 10})
	for i := uint64(1); i <= 1024; i++ {
		n.digestTrack(i, true)
	}

	// Serve through the handler directly (no real HTTP round trip), so the
	// serve path runs tens of thousands of times against live churn.
	serve := func(since uint64) (wire.Frame, []byte, uint64) {
		t.Helper()
		url := "/digest"
		if since > 0 {
			url += "?since=" + strconv.FormatUint(since, 10)
		}
		rec := httptest.NewRecorder()
		n.handleDigest(rec, httptest.NewRequest(http.MethodGet, url, nil))
		resp := rec.Result()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status %d: %s", url, resp.StatusCode, body)
		}
		cursor, err := strconv.ParseUint(resp.Header.Get(headerDigestCursor), 10, 64)
		if err != nil {
			t.Fatalf("bad %s header: %v", headerDigestCursor, err)
		}
		frame, _, err := wire.Decode(body)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := frame.Payload(nil)
		if err != nil {
			t.Fatal(err)
		}
		return frame, payload, cursor
	}

	replica := &digest.Counting{}
	frame, payload, cursor := serve(0)
	if frame.Kind != wire.KindDigestFull {
		t.Fatalf("first serve kind = %s, want %s", frame.Kind, wire.KindDigestFull)
	}
	if err := replica.UnmarshalBinary(payload); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1 << 20); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			n.digestTrack(i, true)
			n.digestTrack(i, false)
		}
	}()

	apply := func(round int, kind wire.Kind, payload []byte, since, next uint64) {
		t.Helper()
		switch kind {
		case wire.KindDigestDelta:
			ops, err := digest.AppendDecodedOps(nil, payload)
			if err != nil {
				t.Fatal(err)
			}
			if next != since+uint64(len(ops)) {
				t.Fatalf("round %d: since %d + %d ops delivered, but response advertises cursor %d (%d ops skipped)",
					round, since, len(ops), next, next-since-uint64(len(ops)))
			}
			for _, op := range ops {
				replica.Apply(op)
			}
		case wire.KindDigestFull:
			if err := replica.UnmarshalBinary(payload); err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("round %d: unexpected frame kind %s", round, kind)
		}
	}

	for round := 1; round <= 20000; round++ {
		frame, payload, next := serve(cursor)
		apply(round, frame.Kind, payload, cursor, next)
		cursor = next
	}
	close(stop)
	wg.Wait()

	// Churn has quiesced: one more pull drains the tail, after which the
	// replica must match the owner bit for bit — any op a skewed cursor
	// skipped shows up here as a counter mismatch.
	frame, payload, next := serve(cursor)
	apply(-1, frame.Kind, payload, cursor, next)

	n.digestMu.RLock()
	want := n.own.AppendBinary(nil)
	n.digestMu.RUnlock()
	if got := replica.AppendBinary(nil); !bytes.Equal(got, want) {
		t.Error("replayed replica diverged from the owner filter")
	}
}

// TestDigestLegacyPeerFallback points a puller at a peer that predates the
// wire plane — its GET /digest serves raw plain-filter bytes with no frame
// header — and checks the pull still lands during a rolling upgrade: the
// bits widen into the counting slot and probe identically, and the cursor
// stays zero (legacy peers journal nothing to resume from).
func TestDigestLegacyPeerFallback(t *testing.T) {
	legacy, err := digest.NewForCapacity(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 32; i++ {
		legacy.Add(i)
	}
	body, err := legacy.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.RawQuery != "" {
			t.Errorf("legacy peer got query %q, want none (nothing to resume)", r.URL.RawQuery)
		}
		w.Write(body)
	}))
	defer peer.Close()

	n := newMetaNode(t, NodeConfig{Name: "legacy-pull", UseDigests: true})
	n.AddPeer(peer.URL)
	n.PullDigests()
	n.PullDigests() // the re-pull must also be cursorless

	st := n.Stats()
	if st.SendErrors != 0 {
		t.Fatalf("send errors = %d, want 0 (legacy body must not be treated as a bad frame)", st.SendErrors)
	}
	if st.DigestsPulled != 2 {
		t.Fatalf("digests pulled = %d, want 2", st.DigestsPulled)
	}

	peerID := hintcache.HashMachine(hostPortOf(peer.URL))
	n.digestMu.RLock()
	f, ok := n.peerDigests[peerID]
	cursor := n.peerCursor[peerID]
	n.digestMu.RUnlock()
	if !ok {
		t.Fatal("no peer digest installed from the legacy body")
	}
	if cursor != 0 {
		t.Errorf("peer cursor = %d, want 0 for a legacy peer", cursor)
	}
	for i := uint64(1); i <= 4096; i++ {
		if f.MayContain(i) != legacy.MayContain(i) {
			t.Fatalf("widened copy disagrees with the source filter on id %d", i)
		}
	}
}

// TestWireCompressDigestRoundTrip runs a full+delta exchange with frame
// compression on and checks the compressed full snapshot both shrinks on
// the wire and decodes to the identical filter.
func TestWireCompressDigestRoundTrip(t *testing.T) {
	n := newMetaNode(t, NodeConfig{Name: "wire-comp", UseDigests: true, WireCompress: true, DigestCapacity: 4096})
	for i := uint64(1); i <= 512; i++ {
		n.digestTrack(i, true)
	}
	frame, payload, wireBytes, _ := digestGet(t, n, 0)
	if !frame.Compressed {
		t.Fatal("full snapshot frame not compressed despite WireCompress")
	}
	if wireBytes >= int(frame.RawLen) {
		t.Errorf("compressed frame %d bytes >= raw payload %d", wireBytes, frame.RawLen)
	}
	n.digestMu.RLock()
	want := n.own.AppendBinary(nil)
	n.digestMu.RUnlock()
	if !bytes.Equal(payload, want) {
		t.Error("decompressed digest payload differs from the owner filter")
	}
}
