package cluster

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// startFleet boots a small fleet with a long batch interval (tests flush
// explicitly) and registers cleanup.
func startFleet(t *testing.T, nodes int, cfg FleetConfig) *Fleet {
	t.Helper()
	cfg.Nodes = nodes
	if cfg.UpdateInterval == 0 {
		cfg.UpdateInterval = time.Hour // tests drive Flush explicitly
	}
	f, err := StartFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := f.Close(); err != nil {
			t.Errorf("fleet close: %v", err)
		}
	})
	return f
}

func TestFleetValidation(t *testing.T) {
	if _, err := StartFleet(FleetConfig{Nodes: 0}); err == nil {
		t.Error("zero-node fleet accepted")
	}
	if _, err := NewNode(NodeConfig{}); err == nil {
		t.Error("node without origin accepted")
	}
}

func TestMissThenLocalHit(t *testing.T) {
	f := startFleet(t, 2, FleetConfig{ObjectSize: 4096})
	res, err := f.Fetch(0, "http://example.com/a")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Miss() || res.Bytes != 4096 {
		t.Fatalf("first fetch = %+v, want 4096-byte MISS", res)
	}
	res, err = f.Fetch(0, "http://example.com/a")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Local() {
		t.Fatalf("second fetch = %+v, want LOCAL", res)
	}
	st := f.Nodes[0].Stats()
	if st.Misses != 1 || st.LocalHits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHintPropagationEnablesRemoteHit(t *testing.T) {
	f := startFleet(t, 3, FleetConfig{})
	const url = "http://example.com/shared"
	if _, err := f.Fetch(0, url); err != nil {
		t.Fatal(err)
	}
	// Before hints propagate, node 1 must go to the origin (misses are
	// detected locally; the system never searches on a hint miss).
	res, err := f.Fetch(1, url)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Miss() {
		t.Fatalf("pre-propagation fetch = %+v, want MISS", res)
	}
	// Propagate hints; node 2 now fetches cache-to-cache.
	f.FlushAll()
	res, err = f.Fetch(2, url)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Remote() {
		t.Fatalf("post-propagation fetch = %+v, want REMOTE", res)
	}
	// Someone served a peer.
	total := int64(0)
	for _, n := range f.Nodes {
		total += n.Stats().PeerServes
	}
	if total != 1 {
		t.Errorf("peer serves = %d, want 1", total)
	}
}

func TestStaleHintFallsThroughToOrigin(t *testing.T) {
	f := startFleet(t, 2, FleetConfig{})
	const url = "http://example.com/stale"
	if _, err := f.Fetch(0, url); err != nil {
		t.Fatal(err)
	}
	f.FlushAll() // node 1 learns node 0 has it
	// Node 0 drops its copy; the invalidate is NOT yet flushed, so node
	// 1's hint is stale.
	if err := f.Purge(0, url); err != nil {
		t.Fatal(err)
	}
	res, err := f.Fetch(1, url)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Miss() || !res.StaleHint() {
		t.Fatalf("fetch with stale hint = %+v, want MISS,STALE-HINT", res)
	}
	st := f.Nodes[1].Stats()
	if st.FalsePositives != 1 {
		t.Errorf("false positives = %d, want 1", st.FalsePositives)
	}
	if f.Nodes[0].Stats().PeerRejects != 1 {
		t.Errorf("peer rejects = %d, want 1", f.Nodes[0].Stats().PeerRejects)
	}
	// The stale hint was dropped: the next fetch goes straight to the
	// origin with no wasted probe. (Node 1 cached the object when it
	// fell through, so ask node 1 for a *different* view: purge first.)
	if err := f.Purge(1, url); err != nil {
		t.Fatal(err)
	}
	res, err = f.Fetch(1, url)
	if err != nil {
		t.Fatal(err)
	}
	if res.StaleHint() {
		t.Errorf("stale hint not dropped after false positive: %+v", res)
	}
}

func TestInvalidatePropagates(t *testing.T) {
	f := startFleet(t, 2, FleetConfig{})
	const url = "http://example.com/inv"
	if _, err := f.Fetch(0, url); err != nil {
		t.Fatal(err)
	}
	f.FlushAll()
	if err := f.Purge(0, url); err != nil {
		t.Fatal(err)
	}
	f.FlushAll() // invalidate reaches node 1
	res, err := f.Fetch(1, url)
	if err != nil {
		t.Fatal(err)
	}
	// Clean miss: no stale-hint probe.
	if !res.Miss() || res.StaleHint() {
		t.Fatalf("fetch after invalidate = %+v, want clean MISS", res)
	}
}

func TestVersionBumpVisibleThroughCacheBypass(t *testing.T) {
	f := startFleet(t, 1, FleetConfig{})
	const url = "http://example.com/v"
	res, err := f.Fetch(0, url)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 {
		t.Fatalf("initial version = %d, want 1", res.Version)
	}
	f.Origin.Bump(url)
	// The cached copy still serves (the prototype, like Squid, provides
	// weak consistency between origin updates and caches).
	res, _ = f.Fetch(0, url)
	if res.Version != 1 || !res.Local() {
		t.Fatalf("cached fetch = %+v, want LOCAL v1", res)
	}
	// After a purge the new version is fetched.
	if err := f.Purge(0, url); err != nil {
		t.Fatal(err)
	}
	res, _ = f.Fetch(0, url)
	if res.Version != 2 {
		t.Fatalf("post-bump fetch version = %d, want 2", res.Version)
	}
}

func TestCapacityEvictionAdvertisesInvalidate(t *testing.T) {
	// Cache fits one 4 KB object; fetching a second evicts the first and
	// must queue an invalidate that reaches peers on flush.
	f := startFleet(t, 2, FleetConfig{CacheBytes: 6144, ObjectSize: 4096})
	if _, err := f.Fetch(0, "http://example.com/one"); err != nil {
		t.Fatal(err)
	}
	f.FlushAll()
	if _, err := f.Fetch(0, "http://example.com/two"); err != nil {
		t.Fatal(err)
	}
	f.FlushAll()
	// Node 1's hint for /one must be gone: clean miss, no stale probe.
	res, err := f.Fetch(1, "http://example.com/one")
	if err != nil {
		t.Fatal(err)
	}
	if res.StaleHint() {
		t.Errorf("eviction invalidate did not propagate: %+v", res)
	}
}

func TestUpdatesEndpointRejectsGarbage(t *testing.T) {
	f := startFleet(t, 1, FleetConfig{})
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Post(f.Nodes[0].URL()+"/updates", "application/octet-stream",
		strings.NewReader("not a multiple of twenty"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage updates accepted with status %d", resp.StatusCode)
	}
	// GET is rejected too.
	resp, err = client.Get(f.Nodes[0].URL() + "/updates")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /updates got %d, want 405", resp.StatusCode)
	}
}

func TestMissingURLParameterRejected(t *testing.T) {
	f := startFleet(t, 1, FleetConfig{})
	client := &http.Client{Timeout: 5 * time.Second}
	for _, path := range []string{"/fetch", "/object"} {
		resp, err := client.Get(f.Nodes[0].URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s without url got %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	f := startFleet(t, 1, FleetConfig{})
	if _, err := f.Fetch(0, "http://example.com/s"); err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(f.Nodes[0].URL() + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, `"misses":1`) {
		t.Errorf("stats body missing miss count: %s", body)
	}
}

func TestDeterministicBodies(t *testing.T) {
	f := startFleet(t, 2, FleetConfig{ObjectSize: 1000})
	a, err := f.Fetch(0, "http://example.com/det")
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Fetch(1, "http://example.com/det")
	if err != nil {
		t.Fatal(err)
	}
	if a.Bytes != b.Bytes || a.Version != b.Version {
		t.Errorf("bodies differ across nodes: %+v vs %+v", a, b)
	}
}

func TestConcurrentFetches(t *testing.T) {
	f := startFleet(t, 4, FleetConfig{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				url := fmt.Sprintf("http://example.com/c%d", i%4)
				if _, err := f.Fetch((w+i)%4, url); err != nil {
					errs <- err
					return
				}
				if w == 0 && i == 3 {
					f.FlushAll()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// All fetches accounted for across nodes.
	var total int64
	for _, n := range f.Nodes {
		st := n.Stats()
		total += st.LocalHits + st.RemoteHits + st.Misses
	}
	if total != 64 {
		t.Errorf("accounted fetches = %d, want 64", total)
	}
}

func TestBackgroundBatcherDeliversWithoutFlush(t *testing.T) {
	// Use a short real interval and wait for propagation.
	f := startFleet(t, 2, FleetConfig{UpdateInterval: 20 * time.Millisecond})
	const url = "http://example.com/bg"
	if _, err := f.Fetch(0, url); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		res, err := f.Fetch(1, url)
		if err != nil {
			t.Fatal(err)
		}
		if res.Remote() || res.Local() {
			return // hint arrived via the background batcher
		}
		// Node 1 cached it on the miss; purge so the next try can be a
		// remote hit once the hint lands.
		if err := f.Purge(1, url); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("hint never propagated via background batcher")
}
