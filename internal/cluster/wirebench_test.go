package cluster

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"testing"
	"time"

	"beyondcache/internal/digest"
	"beyondcache/internal/wire"
)

// Run with -bench-wire-out to measure the wire plane (delta-proportional
// digest transfer, snapshot-cached serve latency, zero-alloc marshal, frame
// compression) and write the JSON artifact there:
//
//	go test ./internal/cluster -run TestRecordWireBench \
//	    -bench-wire-out ../../BENCH_wire.json
var benchWireOut = flag.String("bench-wire-out", "", "write the wire-plane bench JSON to this path")

// discardResponseWriter swallows the response body so serve-latency samples
// measure the handler (cursor parse, journal check, cached-frame lookup,
// counter updates) rather than buffer growth in a recorder.
type discardResponseWriter struct{ h http.Header }

func (d *discardResponseWriter) Header() http.Header {
	if d.h == nil {
		d.h = make(http.Header)
	}
	return d.h
}
func (d *discardResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardResponseWriter) WriteHeader(int)             {}

// quantileUs picks the q-quantile of sorted duration samples, in microseconds.
func quantileUs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i].Nanoseconds()) / 1e3
}

// wireServePoint is one population size's GET /digest serve-latency summary.
type wireServePoint struct {
	Objects      int     `json:"objects"`
	SnapshotKiB  float64 `json:"snapshot_kib"`
	FullP50Us    float64 `json:"full_serve_p50_us"`
	FullP99Us    float64 `json:"full_serve_p99_us"`
	DeltaP50Us   float64 `json:"delta_serve_p50_us"`
	DeltaP99Us   float64 `json:"delta_serve_p99_us"`
	SnapBuilds   int64   `json:"snapshot_builds"`
	ServesSample int     `json:"serves_sampled"`
}

func TestRecordWireBench(t *testing.T) {
	if *benchWireOut == "" {
		t.Skip("run with -bench-wire-out to record the wire-plane bench")
	}

	// --- Delta proportionality: 64Ki objects, 1% churn per round. ---
	const objects = 64 << 10
	n := newMetaNode(t, NodeConfig{Name: "wire-bench", UseDigests: true, DigestCapacity: objects})
	for i := uint64(1); i <= objects; i++ {
		n.digestTrack(i, true)
	}
	_, _, fullBytes, cursor := digestGet(t, n, 0)
	const churn = objects / 100 / 2
	for i := uint64(1); i <= churn; i++ {
		n.digestTrack(i, false)
		n.digestTrack(objects+i, true)
	}
	_, _, deltaBytes, _ := digestGet(t, n, cursor)

	// --- Serve latency across population sizes. The snapshot cache makes
	// the full-serve path O(1) past the first build, so p99 should stay
	// flat 4Ki -> 64Ki instead of scaling with a per-request rebuild. ---
	const samples = 2000
	var servePoints []wireServePoint
	for _, size := range []int{4 << 10, 16 << 10, 64 << 10} {
		node := newMetaNode(t, NodeConfig{
			Name: fmt.Sprintf("wire-bench-%d", size), UseDigests: true, DigestCapacity: size,
		})
		for i := uint64(1); i <= uint64(size); i++ {
			node.digestTrack(i, true)
		}
		node.digestMu.RLock()
		snapKiB := float64(node.own.SizeBytes()) / 1024
		node.digestMu.RUnlock()

		measure := func(since uint64) []time.Duration {
			target := "/digest"
			if since > 0 {
				target += fmt.Sprintf("?since=%d", since)
			}
			out := make([]time.Duration, samples)
			for i := range out {
				req := httptest.NewRequest(http.MethodGet, target, nil)
				start := time.Now()
				node.handleDigest(&discardResponseWriter{}, req)
				out[i] = time.Since(start)
			}
			sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
			return out
		}
		full := measure(0)
		// One journaled op past the cursor: the steady delta-serve path.
		_, _, _, cur := digestGet(t, node, 0)
		node.digestTrack(uint64(size)+1, true)
		delta := measure(cur)

		servePoints = append(servePoints, wireServePoint{
			Objects:      size,
			SnapshotKiB:  snapKiB,
			FullP50Us:    quantileUs(full, 0.50),
			FullP99Us:    quantileUs(full, 0.99),
			DeltaP50Us:   quantileUs(delta, 0.50),
			DeltaP99Us:   quantileUs(delta, 0.99),
			SnapBuilds:   node.snapBuilds.Load(),
			ServesSample: samples,
		})
	}

	// --- Append-based marshal: allocs and time per full-filter encode. ---
	f, err := digest.NewForCapacity(objects, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= objects; i++ {
		f.Add(i)
	}
	buf := make([]byte, 0, f.SizeBytes()+64)
	marshalAllocs := testing.AllocsPerRun(100, func() { buf = f.AppendBinary(buf[:0]) })
	const marshalIters = 200
	start := time.Now()
	for i := 0; i < marshalIters; i++ {
		buf = f.AppendBinary(buf[:0])
	}
	marshalUs := float64(time.Since(start).Microseconds()) / marshalIters

	// --- Frame compression: a populated counting filter's snapshot raw vs
	// flate (WireCompress). Sparse counter bytes compress well. ---
	n.digestMu.RLock()
	payload := n.own.AppendBinary(nil)
	n.digestMu.RUnlock()
	rawFrame := wire.AppendFrame(nil, wire.KindDigestFull, payload, 0)
	compFrame := wire.AppendFrame(nil, wire.KindDigestFull, payload, wireCompressMin)

	out := struct {
		Description      string           `json:"description"`
		Objects          int              `json:"objects"`
		ChurnFraction    float64          `json:"churn_fraction"`
		FullBytes        int              `json:"full_snapshot_bytes"`
		DeltaBytes       int              `json:"delta_round_bytes"`
		DeltaOverFull    float64          `json:"delta_over_full_ratio"`
		Serve            []wireServePoint `json:"digest_serve"`
		MarshalAllocs    float64          `json:"filter_marshal_allocs_per_op"`
		MarshalUs        float64          `json:"filter_marshal_us_per_op"`
		FrameRawBytes    int              `json:"snapshot_frame_raw_bytes"`
		FrameFlateBytes  int              `json:"snapshot_frame_flate_bytes"`
		FlateOverRaw     float64          `json:"flate_over_raw_ratio"`
		FrameHeaderBytes int              `json:"frame_header_bytes"`
	}{
		Description:      "Wire plane: delta digest bytes vs full snapshot at 1% churn; GET /digest serve latency (cached snapshot + delta paths, body writes discarded) across population sizes; append-based filter marshal; flate frame compression.",
		Objects:          objects,
		ChurnFraction:    0.01,
		FullBytes:        fullBytes,
		DeltaBytes:       deltaBytes,
		DeltaOverFull:    float64(deltaBytes) / float64(fullBytes),
		Serve:            servePoints,
		MarshalAllocs:    marshalAllocs,
		MarshalUs:        marshalUs,
		FrameRawBytes:    len(rawFrame),
		FrameFlateBytes:  len(compFrame),
		FlateOverRaw:     float64(len(compFrame)) / float64(len(rawFrame)),
		FrameHeaderBytes: wire.HeaderSize,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchWireOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", *benchWireOut, data)
}
