package cluster

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	neturl "net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"beyondcache/internal/obs"
)

// updateGolden rewrites testdata golden files instead of comparing.
var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// obsFleet is a testFleet whose nodes trace every request (TraceSample 1),
// so /debug/traces assertions are deterministic. Optional mutators adjust
// each node's config before construction (the golden test gives one node a
// disk tier, for example).
func newObsFleet(t *testing.T, n int, muts ...func(i int, cfg *NodeConfig)) *testFleet {
	t.Helper()
	f := &testFleet{
		origin: NewOrigin(1024),
		client: &http.Client{Timeout: 10 * time.Second},
	}
	f.originS = httptest.NewServer(f.origin.Handler())
	t.Cleanup(f.originS.Close)
	for i := 0; i < n; i++ {
		cfg := NodeConfig{
			Name:           fmt.Sprintf("obs-%d", i),
			OriginURL:      f.originS.URL,
			UpdateInterval: time.Hour,
			Seed:           int64(i) + 1,
			TraceSample:    1,
		}
		for _, mut := range muts {
			mut(i, &cfg)
		}
		node, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(node.Handler())
		node.Bind(srv.URL)
		f.nodes = append(f.nodes, node)
		f.servers = append(f.servers, srv)
		t.Cleanup(func() {
			if err := node.Close(); err != nil {
				t.Errorf("node close: %v", err)
			}
			srv.Close()
		})
	}
	for _, a := range f.nodes {
		for _, b := range f.nodes {
			if a != b {
				a.AddPeer(b.URL())
			}
		}
	}
	return f
}

// tracedFetch fetches and returns the response headers alongside the body.
func tracedFetch(t *testing.T, f *testFleet, node int, url string) (how string, hops []obs.Hop, reqID string) {
	t.Helper()
	resp, err := f.client.Get(f.nodes[node].URL() + "/fetch?url=" + neturl.QueryEscape(url))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch status %d", resp.StatusCode)
	}
	how = resp.Header.Get(headerCache)
	reqID = resp.Header.Get(headerRequestID)
	hops = obs.ParseHops(resp.Header.Get(headerTrace))
	if reqID == "" {
		t.Error("response missing X-Request-Id")
	}
	if len(hops) == 0 {
		t.Fatalf("response missing X-Trace (X-Cache %s)", how)
	}
	// The acceptance invariant: the trace's terminal hop agrees with
	// X-Cache, and names the serving node.
	term := hops[len(hops)-1]
	if term.Outcome != how {
		t.Errorf("terminal hop outcome %q != X-Cache %q (chain %v)", term.Outcome, how, hops)
	}
	if want := f.nodes[node].label(); term.Node != want {
		t.Errorf("terminal hop node %q, want %q", term.Node, want)
	}
	return how, hops, reqID
}

// scrape parses one node-ish /metrics endpoint.
func scrape(t *testing.T, client *http.Client, base string) *obs.Exposition {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != contentTypeExpo {
		t.Errorf("/metrics Content-Type %q, want %q", ct, contentTypeExpo)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	p, err := obs.ParseExposition(string(body))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}
	return p
}

// histConsistent checks every histogram family's invariants: cumulative
// buckets are monotone, the +Inf bucket equals _count, and _sum is present.
func histConsistent(t *testing.T, p *obs.Exposition) {
	t.Helper()
	for _, f := range p.Families {
		if f.Type != "histogram" {
			continue
		}
		// Group bucket series by their non-le label set.
		type agg struct {
			inf, count float64
			hasSum     bool
			last       float64
			ordered    bool
		}
		groups := map[string]*agg{}
		keyOf := func(labels map[string]string) string {
			var parts []string
			for k, v := range labels {
				if k != "le" {
					parts = append(parts, k+"="+v)
				}
			}
			sort.Strings(parts)
			return strings.Join(parts, ",")
		}
		for _, s := range f.Series {
			g := groups[keyOf(s.Labels)]
			if g == nil {
				g = &agg{ordered: true}
				groups[keyOf(s.Labels)] = g
			}
			switch {
			case strings.HasSuffix(s.Name, "_bucket"):
				if s.Value < g.last {
					g.ordered = false
				}
				g.last = s.Value
				if s.Labels["le"] == "+Inf" {
					g.inf = s.Value
				}
			case strings.HasSuffix(s.Name, "_count"):
				g.count = s.Value
			case strings.HasSuffix(s.Name, "_sum"):
				g.hasSum = true
			}
		}
		for key, g := range groups {
			if !g.ordered {
				t.Errorf("%s{%s}: cumulative buckets not monotone", f.Name, key)
			}
			if g.inf != g.count {
				t.Errorf("%s{%s}: +Inf bucket %v != _count %v", f.Name, key, g.inf, g.count)
			}
			if !g.hasSum {
				t.Errorf("%s{%s}: no _sum series", f.Name, key)
			}
		}
	}
}

// TestFleetObservabilityEndToEnd drives a 3-node fleet through every
// outcome class, then checks the trace headers, /metrics exposition, and
// /debug/traces ring against each other.
func TestFleetObservabilityEndToEnd(t *testing.T) {
	f := newObsFleet(t, 3)
	f.origin.SetLatency(5 * time.Millisecond)

	// MISS then LOCAL on node 0.
	if how, hops, _ := tracedFetch(t, f, 0, "http://example.com/a"); true {
		if how != "MISS" {
			t.Errorf("first fetch X-Cache %q, want MISS", how)
		}
		// A miss chain includes the origin's self-reported hop and the
		// node's measured ORIGIN round trip before the terminal hop.
		var outcomes []string
		for _, h := range hops {
			outcomes = append(outcomes, h.Outcome)
		}
		chain := strings.Join(outcomes, " ")
		if !strings.Contains(chain, "ORIGIN-SERVE") || !strings.Contains(chain, "ORIGIN") {
			t.Errorf("miss chain lacks origin hops: %v", hops)
		}
	}
	if how, hops, _ := tracedFetch(t, f, 0, "http://example.com/a"); how != "LOCAL" {
		t.Errorf("second fetch X-Cache %q, want LOCAL", how)
	} else if len(hops) != 1 {
		t.Errorf("local hit should have exactly the terminal hop: %v", hops)
	}

	// REMOTE on node 1 after hints propagate.
	f.flushAll()
	if how, hops, _ := tracedFetch(t, f, 1, "http://example.com/a"); how != "REMOTE" {
		t.Errorf("peer fetch X-Cache %q, want REMOTE", how)
	} else {
		var chain []string
		for _, h := range hops {
			chain = append(chain, h.Outcome)
		}
		joined := strings.Join(chain, " ")
		if !strings.Contains(joined, "PEER-SERVE") || !strings.Contains(joined, "PEER") {
			t.Errorf("remote chain lacks peer hops: %v", hops)
		}
	}

	// Coalescing: hammer one cold URL concurrently; the origin's 5ms
	// latency holds the singleflight window open.
	var wg sync.WaitGroup
	var mu sync.Mutex
	outcomes := map[string]int{}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := f.client.Get(f.nodes[2].URL() + "/fetch?url=" + neturl.QueryEscape("http://example.com/cold"))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			how := resp.Header.Get(headerCache)
			hops := obs.ParseHops(resp.Header.Get(headerTrace))
			resp.Body.Close()
			mu.Lock()
			outcomes[how]++
			mu.Unlock()
			if len(hops) == 0 || hops[len(hops)-1].Outcome != how {
				t.Errorf("coalesced fetch: terminal hop %v disagrees with X-Cache %q", hops, how)
			}
		}()
	}
	wg.Wait()
	if outcomes["MISS"] != 1 {
		t.Errorf("want exactly one true MISS for the cold URL, got %v", outcomes)
	}

	// First scrape of every server.
	first := make([]*obs.Exposition, len(f.nodes))
	for i := range f.nodes {
		first[i] = scrape(t, f.client, f.nodes[i].URL())
		histConsistent(t, first[i])
		if got := len(first[i].FamilyNames()); got < 15 {
			t.Errorf("node %d exposes %d families, want >= 15", i, got)
		}
	}

	// Node 0 served one MISS and one LOCAL; node 2 served the cold URL.
	if v, ok := first[0].Value("beyondcache_fetch_total", obs.L("outcome", "local")); !ok || v != 1 {
		t.Errorf("node 0 local fetches = %v, %v; want 1", v, ok)
	}
	if v, ok := first[0].Value("beyondcache_fetch_total", obs.L("outcome", "miss")); !ok || v != 1 {
		t.Errorf("node 0 miss fetches = %v, %v; want 1", v, ok)
	}
	if v, ok := first[1].Value("beyondcache_fetch_total", obs.L("outcome", "remote")); !ok || v != 1 {
		t.Errorf("node 1 remote fetches = %v, %v; want 1", v, ok)
	}
	coal, _ := first[2].Value("beyondcache_fetch_coalesced_total")
	if want := float64(outcomes["LOCAL,COALESCED"]); coal != want {
		t.Errorf("node 2 coalesced counter %v, want %v", coal, want)
	}

	// Fetch-duration histogram counts must equal the fetch counters.
	for i, p := range first {
		st := f.nodes[i].stats.snapshot()
		var total float64
		for _, s := range p.Family("beyondcache_fetch_duration_seconds").Series {
			if strings.HasSuffix(s.Name, "_count") {
				total += s.Value
			}
		}
		if want := float64(st.LocalHits + st.RemoteHits + st.Misses); total != want {
			t.Errorf("node %d histogram count %v != outcome counters %v", i, total, want)
		}
	}

	// More traffic, then a second scrape: counters must be monotone.
	for i := 0; i < 4; i++ {
		tracedFetch(t, f, 0, "http://example.com/a")
	}
	second := scrape(t, f.client, f.nodes[0].URL())
	histConsistent(t, second)
	for _, fam := range first[0].Families {
		if fam.Type != "counter" {
			continue
		}
		for _, s := range fam.Series {
			var labels []obs.Label
			for k, v := range s.Labels {
				labels = append(labels, obs.L(k, v))
			}
			after, ok := second.Value(s.Name, labels...)
			if !ok {
				t.Errorf("counter %s vanished between scrapes", s.Name)
				continue
			}
			if after < s.Value {
				t.Errorf("counter %s went backwards: %v -> %v", s.Name, s.Value, after)
			}
		}
	}
	if v, ok := second.Value("beyondcache_fetch_total", obs.L("outcome", "local")); !ok || v != 5 {
		t.Errorf("node 0 local after re-fetches = %v, want 5", v)
	}

	// The origin and a relay expose their own expositions.
	originExpo := scrape(t, f.client, f.originS.URL)
	histConsistent(t, originExpo)
	if v, ok := originExpo.Value("beyondcache_origin_fetches_total"); !ok || v < 2 {
		t.Errorf("origin fetches = %v, %v; want >= 2", v, ok)
	}

	relay := NewRelay("relay-test")
	relayS := httptest.NewServer(relay.Handler())
	defer relayS.Close()
	relayExpo := scrape(t, f.client, relayS.URL)
	histConsistent(t, relayExpo)
	if _, ok := relayExpo.Value("beyondcache_relay_updates_received_total"); !ok {
		t.Error("relay exposition missing updates counter")
	}

	// /debug/traces: sampling is 1-in-1, so every request is in the ring.
	resp, err := f.client.Get(f.nodes[0].URL() + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Node       string      `json:"node"`
		SampleRate float64     `json:"sampleRate"`
		Sampled    int64       `json:"sampled"`
		Traces     []obs.Trace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatalf("/debug/traces is not JSON: %v", err)
	}
	if payload.Node != "obs-0" || payload.SampleRate != 1 {
		t.Errorf("trace payload header wrong: %+v", payload)
	}
	if payload.Sampled != 6 || len(payload.Traces) != 6 {
		t.Errorf("node 0 served 6 fetches; ring has sampled=%d len=%d", payload.Sampled, len(payload.Traces))
	}
	for _, tr := range payload.Traces {
		if tr.ID == "" || tr.URL == "" || len(tr.Hops) == 0 {
			t.Errorf("incomplete trace: %+v", tr)
			continue
		}
		if term := tr.Hops[len(tr.Hops)-1]; term.Outcome != tr.Outcome {
			t.Errorf("trace outcome %q != terminal hop %q", tr.Outcome, term.Outcome)
		}
	}
}

// TestMetricNamesGolden freezes the metric families every server kind
// exposes. If this fails you renamed or removed a metric: that is an
// interface change — update testdata/metric_names.golden in the same commit,
// deliberately. Run with -update to regenerate.
func TestMetricNamesGolden(t *testing.T) {
	// Two nodes, so the per-peer breaker families (created eagerly in
	// AddPeer) appear in the exposition and stay frozen. Node 0 gets a
	// disk tier squeezed so one fetch evicts the last — the store/spill
	// families are scraped from a fleet that has actually spilled.
	f := newObsFleet(t, 2, func(i int, cfg *NodeConfig) {
		if i == 0 {
			cfg.CacheDir = t.TempDir()
			cfg.CacheBytes = 1500 // origin bodies are 1024 B: two never fit
			cfg.CacheShards = 1
		}
	})
	tracedFetch(t, f, 0, "http://example.com/g") // populate per-outcome series
	tracedFetch(t, f, 0, "http://example.com/h") // evicts g -> spill to disk
	f.nodes[0].WaitRecovery()
	f.nodes[0].tier.Flush()
	if spilled := f.nodes[0].tier.SpillStats().Spilled; spilled < 1 {
		t.Fatalf("golden fleet spilled %d objects, want >= 1", spilled)
	}
	relay := NewRelay("golden")

	names := map[string]bool{}
	for _, e := range []*obs.Expo{f.nodes[0].Metrics(), f.origin.Metrics(), relay.Metrics()} {
		for _, name := range e.FamilyNames() {
			names[name] = true
		}
	}
	var got []string
	for name := range names {
		got = append(got, name)
	}
	sort.Strings(got)

	golden := filepath.Join("testdata", "metric_names.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(strings.Join(got, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	want := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(got) != len(want) {
		t.Fatalf("metric family drift: %d families, golden has %d\ngot:  %v\nwant: %v",
			len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("metric family drift at %d: got %q, golden %q", i, got[i], want[i])
		}
	}
}
