package cluster

// Partitioned hint directory (DESIGN.md §14).
//
// Broadcast mode replicates the full hint directory on every node: O(total
// objects) memory and O(N) fanout per update. Partition mode instead
// derives a Plaxton embedding over the hashed addresses of the LIVE
// membership (internal/overlay) and routes each object's hint records to
// its owner set — the object's Plaxton root plus R-1 ring successors — so
// each node holds and receives only its O(R/N) share. The price is one
// extra metadata hop on the miss path when the missing node is not itself
// an owner (the HINT-HOME consult), paid under the same breaker and hedge
// discipline as any peer call so it can never slow a miss below the
// straight-to-origin baseline.
//
// Membership is maintained from liveness evidence the node already
// generates — successful hint-batch deliveries, inbound batches, breaker
// state — topped up with cheap GET /ping probes for peers that were silent
// a whole flush round. A membership change re-homes incrementally: only
// objects whose owner set actually moved are re-announced or forwarded,
// with plaxton.TableDiff gating the scan outright when nothing moved.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"beyondcache/internal/hintcache"
	"beyondcache/internal/obs"
	"beyondcache/internal/overlay"
	"beyondcache/internal/resilience"
)

const (
	// overlayBits is the Plaxton digit width of the hint-routing plane
	// (16-ary trees): at prototype fleet sizes a couple of digit levels
	// resolve every object root.
	overlayBits = 4
	// deadAfterFails marks a peer dead for hint routing after this many
	// consecutive failed contacts. Each failed contact already burned a
	// full delivery retry budget or a probe, so two means a killed node
	// leaves the routing plane within two flush rounds while one unlucky
	// probe never triggers a re-homing storm.
	deadAfterFails = 2
	// pingTimeout bounds one liveness probe; pingFanout bounds how many
	// run concurrently per membership sync.
	pingTimeout = 300 * time.Millisecond
	pingFanout  = 8
)

// membership accumulates per-peer liveness evidence between membership
// syncs. Keys are target base URLs (the same keys the sender and breaker
// tables use). gen counts sync rounds: a peer whose last good contact is
// older than the previous round gets probed.
type membership struct {
	mu      sync.Mutex
	fails   map[string]int    // consecutive failed contacts
	contact map[string]uint64 // sync gen of last good contact
	gen     uint64
}

// partitioned reports whether this node runs the partitioned hint
// directory.
func (n *Node) partitioned() bool { return n.overlay != nil }

// initOverlay seeds the routing plane with the node itself once Start or
// Bind has fixed its machine ID. The first membership sync folds the peer
// table in (and runs the resulting re-homing pass, which is what lets a
// restarted node's boot-recovered residents re-announce to their homes).
func (n *Node) initOverlay() {
	if !n.partitioned() {
		return
	}
	n.overlay.Join(n.machineID, n.URL())
	n.homedView.Store(n.overlay.View())
	// Ownership admission: the directory only stores records for objects
	// this node is currently a home of. Records for everything else are
	// refused at insert (counted in hintcache FilterRejects) — directory
	// memory stays O(R/N) no matter what arrives on the wire.
	n.hints.SetInsertFilter(func(h uint64) bool {
		return n.overlay.View().IsOwner(h, n.machineID)
	})
}

// noteSendOutcome feeds one hint-batch delivery result into the liveness
// tracker: success is contact; failure (after the sender's full retry
// budget) counts toward deadAfterFails.
func (n *Node) noteSendOutcome(target string, ok bool) {
	if !n.partitioned() {
		return
	}
	n.mbr.mu.Lock()
	if ok {
		n.mbr.fails[target] = 0
		n.mbr.contact[target] = n.mbr.gen
	} else {
		n.mbr.fails[target]++
	}
	n.mbr.mu.Unlock()
}

// noteInboundContact records an inbound sign of life from a peer — a
// restarted or healed node re-announces itself by flushing to us, which
// must revive it even if our own probes to it still fail.
func (n *Node) noteInboundContact(fromURL string) {
	if !n.partitioned() || fromURL == "" {
		return
	}
	n.mbr.mu.Lock()
	n.mbr.fails[fromURL] = 0
	n.mbr.contact[fromURL] = n.mbr.gen
	n.mbr.mu.Unlock()
}

// handlePing answers liveness probes: GET /ping -> 204. It goes through
// the node's inbound fault middleware, so a blackholed or stalled node
// fails its peers' probes exactly as it fails their real traffic.
func (n *Node) handlePing(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusNoContent)
}

// ping performs one liveness probe through the node's (fault-injected)
// client.
func (n *Node) ping(baseURL string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), pingTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/ping", nil)
	if err != nil {
		return false
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusNoContent
}

// syncMembership runs at the top of each partition-mode flush round: fold
// the round's liveness evidence into the overlay and re-home against the
// resulting view before any records are routed. Peers with recent contact
// are alive for free; the rest get one bounded-concurrency probe. A peer
// is dead when its consecutive failures reach deadAfterFails or its
// breaker is open (breaker-detected peer death); dead peers keep being
// probed, so revival is symmetric.
func (n *Node) syncMembership() {
	type peerRef struct {
		id  uint64
		url string
	}
	n.peerMu.RLock()
	peers := make([]peerRef, 0, len(n.peerOrder))
	for _, id := range n.peerOrder {
		peers = append(peers, peerRef{id: id, url: n.peers[id]})
	}
	n.peerMu.RUnlock()

	n.mbr.mu.Lock()
	n.mbr.gen++
	gen := n.mbr.gen
	probe := peers[:0:0]
	for _, p := range peers {
		if n.mbr.contact[p.url]+1 >= gen {
			continue // heard from it this round or the last
		}
		probe = append(probe, p)
	}
	n.mbr.mu.Unlock()

	alive := make([]bool, len(probe))
	var wg sync.WaitGroup
	sem := make(chan struct{}, pingFanout)
	for i, p := range probe {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, url string) {
			defer wg.Done()
			defer func() { <-sem }()
			alive[i] = n.ping(url)
		}(i, p.url)
	}
	wg.Wait()

	n.mbr.mu.Lock()
	for i, p := range probe {
		if alive[i] {
			n.mbr.fails[p.url] = 0
			n.mbr.contact[p.url] = gen
		} else {
			n.mbr.fails[p.url]++
		}
	}
	dead := make(map[uint64]bool, len(peers))
	for _, p := range peers {
		dead[p.id] = n.mbr.fails[p.url] >= deadAfterFails
	}
	n.mbr.mu.Unlock()

	for _, p := range peers {
		if !dead[p.id] && n.breakers.Get(p.url).State() == resilience.Open {
			dead[p.id] = true
		}
		if dead[p.id] {
			n.overlay.Leave(p.id)
		} else {
			n.overlay.Join(p.id, p.url)
		}
	}

	view := n.overlay.View()
	old := n.homedView.Load()
	if old != nil && old.Version() == view.Version() {
		return
	}
	n.homedView.Store(view)
	n.rehome(old, view)
}

// rehome is the incremental re-homing pass after a membership change:
// re-announce every locally resident object whose owner set moved (ground
// truth — this is what repopulates a partition whose homes all died),
// forward directory records likewise, and drop records this node no
// longer owns or whose holder died. Work is proportional to ownership
// churn — plaxton.TableDiff gates the whole pass when the embeddings
// agree — never to directory size: objects with unmoved owners produce
// nothing.
func (n *Node) rehome(old, cur *overlay.View) {
	if old == nil || old.Size() == 0 {
		return
	}
	if changed, total := overlay.Diff(old, cur); total > 0 && changed == 0 {
		return
	}
	var count int64
	announce := func(id uint64) {
		if overlay.SameOwners(old, cur, id) {
			return
		}
		count++
		n.enqueueLocal(hintcache.Update{
			Action:  hintcache.ActionInform,
			URLHash: id,
			Machine: n.machineID,
		})
	}
	for _, o := range n.data.Objects() {
		announce(o.ID)
	}
	if n.tier != nil {
		for _, id := range n.tier.DiskIDs() {
			announce(id)
		}
	}
	// Directory records held as a home: forward moved records to their
	// new owners (the pending queue coalesces duplicates with the
	// residency announcements above), then drop what no longer belongs
	// here. Records naming a machine that left the membership are dropped
	// outright — a dead holder's hints must not outlive it.
	var drop []hintcache.Record
	n.hints.Range(func(r hintcache.Record) bool {
		if overlay.SameOwners(old, cur, r.URLHash) {
			return true
		}
		count++
		if r.Machine != n.machineID && !cur.Contains(r.Machine) {
			drop = append(drop, r)
			return true
		}
		n.enqueueLocal(hintcache.Update{
			Action:  hintcache.ActionInform,
			URLHash: r.URLHash,
			Machine: r.Machine,
		})
		if !cur.IsOwner(r.URLHash, n.machineID) {
			drop = append(drop, r)
		}
		return true
	})
	for _, r := range drop {
		n.hints.Delete(r.URLHash, r.Machine)
	}
	if count > 0 {
		n.stats.rehomeObjects.Add(count)
	}
}

// distributePartitioned routes one drained batch to owner sets: records
// this node owns apply straight to the local directory, the rest group
// into per-owner minibatches on the same senders and KindHintBatch frames
// the broadcast path uses. Every known sender contributes a generation to
// the returned barrier, so Flush keeps its delivery contract in both
// modes. The explicit update-target relay list is ignored here: routing
// IS the distribution topology (cachenode rejects the flag combination).
func (n *Node) distributePartitioned(batch []hintcache.Update, stampNs int64) (senders []*peerSender, seqs []int64, records int) {
	view := n.overlay.View()
	var owners [overlay.MaxReplicas]uint64
	var local []hintcache.Update
	var routed map[*peerSender][]hintcache.Update

	n.peerMu.RLock()
	for _, u := range batch {
		for _, m := range view.Owners(u.URLHash, owners[:0]) {
			if m == n.machineID {
				local = append(local, u)
				continue
			}
			s, ok := n.senders[n.peers[m]]
			if !ok {
				continue // owner not in the peer table (yet)
			}
			if routed == nil {
				routed = make(map[*peerSender][]hintcache.Update, len(owners))
			}
			routed[s] = append(routed[s], u)
		}
	}
	senders = make([]*peerSender, 0, len(n.senders))
	for _, s := range n.senders {
		senders = append(senders, s)
	}
	n.peerMu.RUnlock()

	seqs = make([]int64, len(senders))
	for i, s := range senders {
		if mb := routed[s]; len(mb) > 0 {
			seqs[i] = s.enqueue(mb, stampNs)
		} else {
			seqs[i] = s.currentSeq()
		}
	}
	if len(local) > 0 {
		_ = n.hints.ApplyBatch(local)
	}
	return senders, seqs, len(batch)
}

// errHintHomeMiss distinguishes a definitive "no holder" answer (or a
// holder this node cannot use) from a failed consult (errHintHomeFail);
// the two resolve a lost race differently — a clean miss is the home
// working as designed, a failed consult feeds the home's breaker.
var (
	errHintHomeMiss = errors.New("hint home: no holder")
	errHintHomeFail = errors.New("hint home unavailable")
)

// hintHomeFor picks the hint home to consult for object h: the first of
// its owners, in ring order, that is a known peer whose breaker admits the
// call. Empty when this node is itself an owner (the local directory was
// already authoritative — its miss is the answer) or when no owner is
// usable.
func (n *Node) hintHomeFor(h uint64) string {
	var buf [overlay.MaxReplicas]uint64
	owners := n.homedView.Load().Owners(h, buf[:0])
	for _, m := range owners {
		if m == n.machineID {
			return ""
		}
	}
	var home string
	skipped := false
	n.peerMu.RLock()
	for _, m := range owners {
		u, ok := n.peers[m]
		if !ok {
			continue
		}
		if !n.breakers.Get(u).Allow() {
			skipped = true
			continue
		}
		home = u
		break
	}
	n.peerMu.RUnlock()
	if home == "" && skipped {
		// Owners exist but every one was breaker-refused: straight to
		// the origin, same accounting as a breaker-skipped peer probe.
		n.stats.breakerSkips.Add(1)
	}
	return home
}

// queryHintHome asks a hint home which machine holds h: GET
// /hinthome?h=<hex>. 200 carries the holder's hex machine ID; 404 is a
// definitive miss (machine 0, nil error); anything else is a consult
// failure.
func (n *Node) queryHintHome(ctx context.Context, homeURL string, h uint64, reqID string, sampled bool) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, homeURL+"/hinthome?h="+strconv.FormatUint(h, 16), nil)
	if err != nil {
		return 0, err
	}
	if sampled {
		req.Header[headerRequestID] = []string{reqID}
		req.Header[headerTraceSampled] = []string{"1"}
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64))
	if err != nil {
		return 0, err
	}
	switch resp.StatusCode {
	case http.StatusNotFound:
		return 0, nil
	case http.StatusOK:
		machine, err := strconv.ParseUint(strings.TrimSpace(string(body)), 16, 64)
		if err != nil {
			return 0, fmt.Errorf("bad holder id: %w", err)
		}
		return machine, nil
	default:
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
}

// handleHintHome serves this node's directory partition to peers. The
// node's own residency counts (a home may itself hold the object); a
// record naming a machine the current view considers dead is dropped
// lazily instead of served, and a stale self-record with no backing
// residency likewise.
func (n *Node) handleHintHome(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	hv := r.URL.Query().Get("h")
	h, err := strconv.ParseUint(hv, 16, 64)
	if err != nil || h == 0 {
		http.Error(w, "bad h parameter", http.StatusBadRequest)
		return
	}
	start := time.Now()
	machine, ok := n.hints.Lookup(h)
	if ok && n.partitioned() {
		switch {
		case machine == n.machineID:
			if !n.residesLocally(h) {
				n.hints.Delete(h, machine)
				machine, ok = 0, false
			}
		case !n.overlay.View().Contains(machine):
			n.hints.Delete(h, machine)
			machine, ok = 0, false
		}
	}
	if !ok && n.residesLocally(h) {
		machine, ok = n.machineID, true
	}
	elapsed := time.Since(start)
	if !ok {
		n.stats.hintHomeServeMisses.Add(1)
		n.recordPeerSpan(r, "HINT-MISS", elapsed)
		http.Error(w, "no hint", http.StatusNotFound)
		return
	}
	n.stats.hintHomeServes.Add(1)
	n.recordPeerSpan(r, "HINT-SERVE", elapsed)
	w.Header().Set(headerTraceHop,
		obs.Hop{Node: n.label(), Outcome: "HINT-SERVE", Elapsed: elapsed}.Segment())
	io.WriteString(w, strconv.FormatUint(machine, 16))
}

// residesLocally reports residency in either local tier without touching
// recency or promoting.
func (n *Node) residesLocally(h uint64) bool {
	if n.data.Contains(h) {
		return true
	}
	return n.tier != nil && n.tier.Contains(h)
}

// fillViaHome resolves a partition-mode miss through the object's hint
// home. The primary leg performs the directory consult (the HINT-HOME
// hop, under the metadata timeout) and then the cache-to-cache transfer
// it names; the origin is the hedged fallback under the same budget as
// any peer race — a slow or dead home can never make the miss slower than
// going straight to the origin (the paper's principle 1 applied to the
// extra metadata hop).
func (n *Node) fillViaHome(h uint64, url, reqID, homeURL string, sampled bool) fetchOutcome {
	homeHost := hostPortOf(homeURL)
	homeBr := n.breakers.Get(homeURL)
	probeStart := time.Now()
	// Written by the primary goroutine, read at resolution (atomics cover
	// the abandoned-primary case; see fillRaced).
	var probeNS, consultNS atomic.Int64
	var holderMach atomic.Uint64

	primary := func(ctx context.Context) (fetched, error) {
		cctx, cancel := context.WithTimeout(ctx, metadataTimeout)
		machine, err := n.queryHintHome(cctx, homeURL, h, reqID, sampled)
		cancel()
		consult := time.Since(probeStart)
		consultNS.Store(int64(consult))
		probeNS.Store(int64(consult))
		if err != nil {
			return fetched{}, fmt.Errorf("%w: %v", errHintHomeFail, err)
		}
		if machine == 0 || machine == n.machineID {
			// 404, or the home thinks WE hold it — we just checked both
			// tiers, so that record is stale; treat as a miss.
			return fetched{}, errHintHomeMiss
		}
		n.peerMu.RLock()
		holderURL := n.peers[machine]
		n.peerMu.RUnlock()
		if holderURL == "" {
			return fetched{}, errHintHomeMiss
		}
		holderBr := n.breakers.Get(holderURL)
		if !holderBr.Allow() {
			n.stats.breakerSkips.Add(1)
			return fetched{}, errHintHomeMiss
		}
		holderMach.Store(machine)
		pctx, pcancel := context.WithTimeout(ctx, n.peerTimeout)
		defer pcancel()
		got, err := n.fetchPeer(pctx, holderURL, url, reqID, sampled)
		probeNS.Store(int64(time.Since(probeStart)))
		if err != nil {
			if ctx.Err() == nil { // not our own abandonment
				holderBr.Record(false)
			}
			return fetched{}, err
		}
		holderBr.Record(true)
		got.hops = append([]obs.Hop{{Node: homeHost, Outcome: "HINT-HOME", Elapsed: consult}}, got.hops...)
		return got, nil
	}
	fallback := func(ctx context.Context) (fetched, error) {
		octx, cancel := context.WithTimeout(ctx, n.originTimeout)
		defer cancel()
		return n.fetchOrigin(octx, url, reqID, sampled)
	}
	r := resilience.Race(context.Background(), n.hedgeBudget, primary, fallback)
	if r.Hedged {
		n.stats.hedgesStarted.Add(1)
	}
	switch r.Winner {
	case resilience.PrimaryWon:
		homeBr.Record(true)
		n.stats.hintHomeHits.Add(1)
		if r.Hedged {
			n.stats.hedgePeerWins.Add(1)
		}
		n.store(h, r.Value.version, r.Value.body)
		n.stats.remoteHits.Add(1)
		return fetchOutcome{how: "REMOTE", version: r.Value.version, body: r.Value.body, hops: r.Value.hops}

	case resilience.FallbackWon:
		// The consult-then-transfer leg never finished inside the budget.
		n.stats.hedgeOriginWins.Add(1)
		probe := time.Since(probeStart)
		n.hist.falsePositive.Observe(probe)
		if holder := holderMach.Load(); holder != 0 {
			// The home answered in time; the named holder was the slow
			// leg. Demote its record, keep the home healthy.
			homeBr.Record(true)
			n.stats.hintHomeHits.Add(1)
			n.demoteHint(h, holder)
		} else {
			homeBr.Record(false)
			n.stats.hintHomeErrors.Add(1)
		}
		hops := append([]obs.Hop{{Node: homeHost, Outcome: "PEER-ABANDON", Elapsed: probe}}, r.Value.hops...)
		n.store(h, r.Value.version, r.Value.body)
		n.stats.misses.Add(1)
		return fetchOutcome{how: "MISS,HEDGE", version: r.Value.version, body: r.Value.body, hops: hops}

	case resilience.FallbackAfterPrimary:
		if r.Hedged {
			n.stats.hedgeOriginWins.Add(1)
		}
		probe := time.Duration(probeNS.Load())
		var hops []obs.Hop
		how := "MISS"
		switch {
		case errors.Is(r.PrimaryErr, errHintHomeMiss):
			// Clean directory miss: nobody in the fleet holds it. One
			// cheap extra hop, then the origin — working as designed.
			homeBr.Record(true)
			n.stats.hintHomeMisses.Add(1)
			hops = append([]obs.Hop{{Node: homeHost, Outcome: "HINT-HOME-MISS", Elapsed: time.Duration(consultNS.Load())}}, r.Value.hops...)
		case errors.Is(r.PrimaryErr, errHintHomeFail):
			homeBr.Record(false)
			n.stats.hintHomeErrors.Add(1)
			n.hist.falsePositive.Observe(probe)
			hops = append([]obs.Hop{{Node: homeHost, Outcome: "HINT-HOME-FAIL", Elapsed: probe}}, r.Value.hops...)
		default:
			// The home answered, the named holder rejected or errored: a
			// stale record. Pay the wasted probe, demote at the home,
			// never search further (Section 3.1.1).
			homeBr.Record(true)
			n.stats.hintHomeHits.Add(1)
			n.stats.falsePositives.Add(1)
			n.hist.falsePositive.Observe(probe)
			if holder := holderMach.Load(); holder != 0 {
				n.demoteHint(h, holder)
			}
			hops = append([]obs.Hop{
				{Node: homeHost, Outcome: "HINT-HOME", Elapsed: time.Duration(consultNS.Load())},
				{Node: n.holderHost(holderMach.Load()), Outcome: "PEER-REJECT", Elapsed: probe},
			}, r.Value.hops...)
			how = "MISS,STALE-HINT"
		}
		n.store(h, r.Value.version, r.Value.body)
		n.stats.misses.Add(1)
		return fetchOutcome{how: how, version: r.Value.version, body: r.Value.body, hops: hops}

	default: // BothFailed
		homeBr.Record(false)
		n.stats.hintHomeErrors.Add(1)
		return fetchOutcome{err: fmt.Errorf("hint home: %v; origin: %w", r.PrimaryErr, r.Err)}
	}
}

// holderHost resolves a machine ID to its host:port for hop labels
// ("unknown-holder" when the peer table no longer has it).
func (n *Node) holderHost(machine uint64) string {
	n.peerMu.RLock()
	u := n.peers[machine]
	n.peerMu.RUnlock()
	if u == "" {
		return "unknown-holder"
	}
	return hostPortOf(u)
}
