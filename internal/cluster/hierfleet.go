package cluster

import (
	"fmt"
)

// StartHierFleet boots a fleet whose hint updates travel through a
// two-level relay tree instead of a full mesh: each group of
// cfg.Nodes/groups leaves reports to a group relay, the group relays meet
// at a root relay, and the tree fans every update back out to all leaves.
// Data transfers remain direct cache-to-cache — only metadata rides the
// tree, the paper's Figure 4a structure.
//
// groups must divide cfg.Nodes.
func StartHierFleet(cfg FleetConfig, groups int) (*Fleet, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: fleet needs at least one node, got %d", cfg.Nodes)
	}
	if groups < 1 || cfg.Nodes%groups != 0 {
		return nil, fmt.Errorf("cluster: groups (%d) must divide nodes (%d)", groups, cfg.Nodes)
	}
	f := &Fleet{
		Origin: NewOrigin(cfg.ObjectSize),
		client: newClient(nil, nil),
	}
	if err := f.Origin.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}

	// Root relay plus one relay per group.
	root := NewRelay("root")
	if err := root.Start("127.0.0.1:0"); err != nil {
		f.Close()
		return nil, err
	}
	f.Relays = append(f.Relays, root)
	groupRelays := make([]*Relay, groups)
	for g := 0; g < groups; g++ {
		r := NewRelay(fmt.Sprintf("relay-%d", g))
		if err := r.Start("127.0.0.1:0"); err != nil {
			f.Close()
			return nil, err
		}
		groupRelays[g] = r
		f.Relays = append(f.Relays, r)
		r.Subscribe(root.URL())
		root.Subscribe(r.URL())
	}

	perGroup := cfg.Nodes / groups
	for i := 0; i < cfg.Nodes; i++ {
		n, err := NewNode(cfg.nodeConfig(i, f.Origin.URL()))
		if err != nil {
			f.Close()
			return nil, err
		}
		if err := n.Start("127.0.0.1:0"); err != nil {
			f.Close()
			return nil, err
		}
		f.Nodes = append(f.Nodes, n)
		relay := groupRelays[i/perGroup]
		n.AddUpdateTarget(relay.URL())
		relay.Subscribe(n.URL())
	}
	// Data-path peer resolution is still all-to-all: hints can point at
	// any leaf, and transfers go direct.
	for _, a := range f.Nodes {
		for _, b := range f.Nodes {
			if a != b {
				a.AddPeer(b.URL())
			}
		}
	}
	return f, nil
}
