package cluster

import (
	"testing"
	"time"
)

// TestPrototypeTimingShape is the end-to-end timing argument over real
// sockets: with a slow origin, a local hit is much faster than an origin
// miss, and a cache-to-cache remote hit sits near the local end — the
// paper's whole point, measured on the wire.
func TestPrototypeTimingShape(t *testing.T) {
	f := startFleet(t, 2, FleetConfig{ObjectSize: 4096})
	const originLatency = 60 * time.Millisecond
	f.Origin.SetLatency(originLatency)

	const url = "http://example.com/timing"
	miss, err := f.Fetch(0, url)
	if err != nil {
		t.Fatal(err)
	}
	if !miss.Miss() {
		t.Fatalf("first fetch = %+v, want MISS", miss)
	}
	if miss.Elapsed < originLatency {
		t.Errorf("miss took %v, below the injected origin latency %v", miss.Elapsed, originLatency)
	}

	local, err := f.Fetch(0, url)
	if err != nil {
		t.Fatal(err)
	}
	if !local.Local() {
		t.Fatalf("second fetch = %+v, want LOCAL", local)
	}
	if local.Elapsed >= originLatency {
		t.Errorf("local hit took %v, not faster than the origin path", local.Elapsed)
	}

	f.FlushAll()
	remote, err := f.Fetch(1, url)
	if err != nil {
		t.Fatal(err)
	}
	if !remote.Remote() {
		t.Fatalf("peer fetch = %+v, want REMOTE", remote)
	}
	// The cache-to-cache transfer avoids the origin entirely.
	if remote.Elapsed >= originLatency {
		t.Errorf("remote hit took %v, not faster than the origin path", remote.Elapsed)
	}
}

func TestOriginLatencyInjection(t *testing.T) {
	f := startFleet(t, 1, FleetConfig{})
	f.Origin.SetLatency(30 * time.Millisecond)
	res, err := f.Fetch(0, "http://example.com/slow")
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed < 30*time.Millisecond {
		t.Errorf("injected latency not observed: %v", res.Elapsed)
	}
	// Clearing it restores fast fetches.
	f.Origin.SetLatency(0)
	res, err = f.Fetch(0, "http://example.com/fast")
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed > 20*time.Millisecond {
		t.Errorf("zero-latency fetch took %v", res.Elapsed)
	}
}
