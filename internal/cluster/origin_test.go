package cluster

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestOriginBumpEndpoint(t *testing.T) {
	o := NewOrigin(1024)
	if err := o.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := o.Close(); err != nil {
			t.Errorf("origin close: %v", err)
		}
	})
	client := &http.Client{Timeout: 5 * time.Second}

	// Bump twice: version should advance past the initial 1.
	for i := 0; i < 2; i++ {
		resp, err := client.Post(o.URL()+"/bump?url=http://x/y", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("bump status %d", resp.StatusCode)
		}
		if i == 1 && strings.TrimSpace(string(body)) != "3" {
			t.Errorf("second bump returned %q, want 3", body)
		}
	}
	// The object now serves version 3.
	resp, err := client.Get(o.URL() + "/obj?url=http://x/y")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Object-Version"); got != "3" {
		t.Errorf("version header = %q, want 3", got)
	}

	// Parameter validation.
	resp, err = client.Post(o.URL()+"/bump", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bump without url got %d, want 400", resp.StatusCode)
	}
	resp, err = client.Get(o.URL() + "/bump?url=z")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /bump got %d, want 405", resp.StatusCode)
	}
	resp, err = client.Get(o.URL() + "/obj")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET /obj without url got %d, want 400", resp.StatusCode)
	}
}

func TestNodeIdentity(t *testing.T) {
	f := startFleet(t, 2, FleetConfig{})
	n := f.Nodes[0]
	if n.MachineID() == 0 {
		t.Error("zero machine ID")
	}
	if n.MachineID() == f.Nodes[1].MachineID() {
		t.Error("nodes share a machine ID")
	}
	if n.Addr() == "" || !strings.Contains(n.URL(), n.Addr()) {
		t.Errorf("addr/url inconsistent: %q / %q", n.Addr(), n.URL())
	}
	// HintStats reflects activity after a fetch.
	if _, err := f.Fetch(0, "http://example.com/id"); err != nil {
		t.Fatal(err)
	}
	f.FlushAll()
	if _, err := f.Fetch(1, "http://example.com/id"); err != nil {
		t.Fatal(err)
	}
	if st := f.Nodes[1].HintStats(); st.Lookups == 0 {
		t.Errorf("hint stats empty after traffic: %+v", st)
	}
}

func TestReplayStatsHitRatio(t *testing.T) {
	var s ReplayStats
	if s.HitRatio() != 0 {
		t.Error("empty stats nonzero hit ratio")
	}
	s = ReplayStats{Requests: 10, LocalHits: 3, RemoteHits: 2, Misses: 5}
	if s.HitRatio() != 0.5 {
		t.Errorf("hit ratio = %g, want 0.5", s.HitRatio())
	}
}
