package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	neturl "net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testFleet is a fleet served from httptest servers instead of Start's own
// listeners: the stress tests exercise exactly the handlers production
// serves, but with httptest owning every socket.
type testFleet struct {
	origin  *Origin
	originS *httptest.Server
	nodes   []*Node
	servers []*httptest.Server
	client  *http.Client
}

// newTestFleet boots an origin and n meshed nodes over httptest with a long
// batch interval (tests flush explicitly).
func newTestFleet(t *testing.T, n int, objectSize int64) *testFleet {
	t.Helper()
	f := &testFleet{
		origin: NewOrigin(objectSize),
		client: &http.Client{Timeout: 10 * time.Second},
	}
	f.originS = httptest.NewServer(f.origin.Handler())
	t.Cleanup(f.originS.Close)
	for i := 0; i < n; i++ {
		node, err := NewNode(NodeConfig{
			Name:           fmt.Sprintf("stress-%d", i),
			OriginURL:      f.originS.URL,
			UpdateInterval: time.Hour,
			Seed:           int64(i) + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(node.Handler())
		node.Bind(srv.URL)
		f.nodes = append(f.nodes, node)
		f.servers = append(f.servers, srv)
		t.Cleanup(func() {
			if err := node.Close(); err != nil {
				t.Errorf("node close: %v", err)
			}
			srv.Close()
		})
	}
	for _, a := range f.nodes {
		for _, b := range f.nodes {
			if a != b {
				a.AddPeer(b.URL())
			}
		}
	}
	return f
}

func (f *testFleet) flushAll() {
	for _, n := range f.nodes {
		n.Flush()
	}
}

// fetch performs GET /fetch and returns how it was served, the version, and
// the body bytes.
func (f *testFleet) fetch(node int, url string) (how string, version int64, body []byte, err error) {
	resp, err := f.client.Get(f.nodes[node].URL() + "/fetch?url=" + neturl.QueryEscape(url))
	if err != nil {
		return "", 0, nil, err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return "", 0, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return "", 0, nil, fmt.Errorf("fetch status %d: %s", resp.StatusCode, body)
	}
	version, err = strconv.ParseInt(resp.Header.Get(headerVersion), 10, 64)
	if err != nil {
		return "", 0, nil, err
	}
	return resp.Header.Get(headerCache), version, body, nil
}

// purge drops one node's copy, tolerating 404 (no copy cached).
func (f *testFleet) purge(node int, url string) error {
	resp, err := f.client.Post(f.nodes[node].URL()+"/purge?url="+neturl.QueryEscape(url), "", nil)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("purge status %d", resp.StatusCode)
	}
	return nil
}

// expectedBody reproduces the origin's deterministic body for
// (url, version, size) so the stress test can detect a version header ever
// being paired with another version's bytes.
func expectedBody(url string, version int64, size int64) []byte {
	pattern := []byte(fmt.Sprintf("%s#%d|", url, version))
	out := make([]byte, 0, size)
	for int64(len(out)) < size {
		out = append(out, pattern...)
	}
	return out[:size]
}

// TestFleetStressConcurrent hammers a 4-node fleet from 32 goroutines with
// overlapping object IDs while a churn goroutine bumps versions, purges
// copies, and flushes hint batches. It must pass under -race. Asserts:
//
//   - every response's body is byte-exact for its version header (no stale
//     or torn version is ever served),
//   - the stats add up: local + remote + miss == successful requests.
func TestFleetStressConcurrent(t *testing.T) {
	const (
		nodes      = 4
		workers    = 32
		iters      = 40
		objects    = 8
		objectSize = 2048
	)
	f := newTestFleet(t, nodes, objectSize)
	urls := make([]string, objects)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://example.com/stress/%d", i)
	}

	var requests atomic.Int64
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			u := urls[i%len(urls)]
			switch i % 3 {
			case 0:
				f.origin.Bump(u)
			case 1:
				for nd := range f.nodes {
					if err := f.purge(nd, u); err != nil {
						t.Error(err)
						return
					}
				}
			case 2:
				f.flushAll()
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				u := urls[(w+i)%len(urls)]
				node := (w + i) % nodes
				how, version, body, err := f.fetch(node, u)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				requests.Add(1)
				if version < 1 {
					t.Errorf("worker %d: version %d for %s (%s)", w, version, u, how)
					return
				}
				if want := expectedBody(u, version, objectSize); !bytes.Equal(body, want) {
					t.Errorf("worker %d: %s served version %d with bytes of another version (%s)",
						w, u, version, how)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	churn.Wait()

	var total, coalesced, local int64
	for _, n := range f.nodes {
		st := n.Stats()
		total += st.LocalHits + st.RemoteHits + st.Misses
		coalesced += st.CoalescedHits
		local += st.LocalHits
	}
	if total != requests.Load() {
		t.Errorf("stats account for %d fetches, client made %d", total, requests.Load())
	}
	if coalesced > local {
		t.Errorf("coalesced hits %d exceed local hits %d", coalesced, local)
	}
}

// TestSingleflightCollapsesConcurrentMisses asserts the acceptance
// criterion directly: N concurrent misses for one object produce exactly
// one origin fetch; everyone else shares the in-flight result.
func TestSingleflightCollapsesConcurrentMisses(t *testing.T) {
	const concurrent = 16
	f := newTestFleet(t, 1, 4096)
	// A slow origin keeps the fill in flight long enough for every
	// request to pile onto it.
	f.origin.SetLatency(150 * time.Millisecond)
	const url = "http://example.com/herd"

	var wg sync.WaitGroup
	var misses, coalesced atomic.Int64
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			how, _, _, err := f.fetch(0, url)
			if err != nil {
				t.Error(err)
				return
			}
			switch how {
			case "MISS":
				misses.Add(1)
			case "LOCAL,COALESCED":
				coalesced.Add(1)
			case "LOCAL":
				// A straggler that arrived after the fill completed;
				// counts as a plain hit.
			default:
				t.Errorf("unexpected X-Cache %q", how)
			}
		}()
	}
	wg.Wait()

	if got := f.origin.Fetches(); got != 1 {
		t.Errorf("origin fetches = %d, want exactly 1", got)
	}
	st := f.nodes[0].Stats()
	if st.Misses != 1 {
		t.Errorf("node misses = %d, want 1", st.Misses)
	}
	if st.LocalHits+st.Misses != concurrent {
		t.Errorf("local %d + miss %d != %d requests", st.LocalHits, st.Misses, concurrent)
	}
	if coalesced.Load() == 0 {
		t.Error("no request was coalesced onto the in-flight fill")
	}
	if st.CoalescedHits != coalesced.Load() {
		t.Errorf("stats report %d coalesced, clients saw %d", st.CoalescedHits, coalesced.Load())
	}
}

// TestSingleflightDistinctObjectsDoNotSerialize asserts the other half of
// "do not slow down misses": concurrent misses for different objects
// against a slow origin proceed in parallel rather than queueing behind one
// flight (or one lock). 8 fetches at 100 ms origin latency complete in far
// less than 800 ms.
func TestSingleflightDistinctObjectsDoNotSerialize(t *testing.T) {
	const concurrent = 8
	const latency = 100 * time.Millisecond
	f := newTestFleet(t, 1, 1024)
	f.origin.SetLatency(latency)

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, _, err := f.fetch(0, fmt.Sprintf("http://example.com/par/%d", i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if got := f.origin.Fetches(); got != concurrent {
		t.Errorf("origin fetches = %d, want %d", got, concurrent)
	}
	// Serialized fetches would take >= concurrent * latency. Allow a wide
	// margin for scheduling noise: half of that still proves parallelism.
	if limit := time.Duration(concurrent) * latency / 2; elapsed >= limit {
		t.Errorf("%d concurrent misses took %v, want < %v (misses are serializing)",
			concurrent, elapsed, limit)
	}
}

// TestFlightGroupLeaderAndWaiters unit-tests the singleflight primitive
// without HTTP: one leader runs the fill, waiters share it, and the key is
// released after completion.
func TestFlightGroupLeaderAndWaiters(t *testing.T) {
	var g flightGroup[fetchOutcome]
	var fills atomic.Int64
	release := make(chan struct{})

	const waiters = 10
	var wg sync.WaitGroup
	var shared atomic.Int64
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, wasShared := g.do("k", func() fetchOutcome {
				fills.Add(1)
				<-release
				return fetchOutcome{how: "MISS", version: 7}
			})
			if wasShared {
				shared.Add(1)
			}
			if out.version != 7 {
				t.Errorf("outcome version = %d, want 7", out.version)
			}
		}()
	}
	// Let the goroutines pile up on the flight, then release the leader.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if fills.Load() != 1 {
		t.Errorf("fill ran %d times, want 1", fills.Load())
	}
	if shared.Load() != waiters-1 {
		t.Errorf("shared = %d, want %d", shared.Load(), waiters-1)
	}
	// The key is released: a fresh call runs a fresh fill.
	out, wasShared := g.do("k", func() fetchOutcome {
		fills.Add(1)
		return fetchOutcome{version: 9}
	})
	if wasShared || out.version != 9 || fills.Load() != 2 {
		t.Errorf("post-release do = %+v shared=%v fills=%d", out, wasShared, fills.Load())
	}
}
