// Package cluster is the networked prototype of the hint architecture,
// mirroring the paper's Squid modification (Section 3.2): cache nodes speak
// HTTP over TCP, keep 16-byte location-hint records in a set-associative
// table, exchange batched 20-byte hint updates (4-byte action, 8-byte object
// hash, 8-byte machine ID) via periodic POSTs, and serve each other's misses
// with direct cache-to-cache transfers. A miss whose hint turns out stale
// gets an error from the peer and falls through to the origin server — the
// false-positive path of Section 3.1.1.
package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"beyondcache/internal/obs"
)

// Origin is a synthetic origin server: it serves a deterministic body for
// any URL path, with an explicit version that can be bumped to invalidate
// cached copies. It stands in for the live web servers the paper's testbed
// fetched from.
type Origin struct {
	mu       sync.Mutex
	versions map[string]int64
	sizes    map[string]int64
	fetches  int64

	defaultSize int64
	// latency is an artificial service delay per object request,
	// standing in for WAN round trips to far-away servers.
	latency time.Duration
	// serveHist times /obj service, artificial latency included.
	serveHist *obs.Histogram
	srv       *http.Server
	lis       net.Listener
	done      chan struct{}
}

// NewOrigin creates an origin whose objects default to defaultSize bytes.
func NewOrigin(defaultSize int64) *Origin {
	if defaultSize <= 0 {
		defaultSize = 8 << 10
	}
	return &Origin{
		versions:    make(map[string]int64),
		sizes:       make(map[string]int64),
		defaultSize: defaultSize,
		serveHist:   obs.NewHistogram(nil),
		done:        make(chan struct{}),
	}
}

// Handler returns the origin's HTTP handler, for callers that serve the
// origin from their own server (an httptest.Server, typically) instead of
// Start's listener.
func (o *Origin) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/obj", o.handleObj)
	mux.HandleFunc("/bump", o.handleBump)
	mux.HandleFunc("/metrics", o.handleMetrics)
	return mux
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and serves
// until Close.
func (o *Origin) Start(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("origin listen: %w", err)
	}
	o.lis = lis
	o.srv = &http.Server{
		Handler:           o.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       30 * time.Second,
	}
	go func() {
		defer close(o.done)
		// ErrServerClosed is the normal shutdown signal.
		_ = o.srv.Serve(lis)
	}()
	return nil
}

// Addr returns the listening address.
func (o *Origin) Addr() string {
	if o.lis == nil {
		return ""
	}
	return o.lis.Addr().String()
}

// URL returns the base URL of the origin.
func (o *Origin) URL() string { return "http://" + o.Addr() }

// Close shuts the server down.
func (o *Origin) Close() error {
	if o.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	err := o.srv.Shutdown(ctx)
	if err != nil {
		_ = o.srv.Close()
		err = nil
	}
	<-o.done
	return err
}

// SetLatency injects an artificial delay before every object reply,
// modeling the WAN distance to origin servers. Safe to call while serving.
func (o *Origin) SetLatency(d time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.latency = d
}

// SetSize fixes the body size of one URL.
func (o *Origin) SetSize(url string, size int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.sizes[url] = size
}

// Bump increments the version of a URL, changing its body.
func (o *Origin) Bump(url string) int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.versions[url]++
	return o.versions[url] + 1
}

// Fetches returns how many object requests the origin has served.
func (o *Origin) Fetches() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.fetches
}

// lookup returns (version, size) for a URL.
func (o *Origin) lookup(url string) (int64, int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.fetches++
	size, ok := o.sizes[url]
	if !ok {
		size = o.defaultSize
	}
	return o.versions[url] + 1, size
}

// handleObj serves GET /obj?url=U.
func (o *Origin) handleObj(w http.ResponseWriter, r *http.Request) {
	url := queryURL(r)
	if url == "" {
		http.Error(w, "missing url parameter", http.StatusBadRequest)
		return
	}
	start := time.Now()
	version, size := o.lookup(url)
	o.mu.Lock()
	delay := o.latency
	o.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	elapsed := time.Since(start)
	o.serveHist.Observe(elapsed)
	w.Header().Set(headerTraceHop,
		obs.Hop{Node: "origin", Outcome: "ORIGIN-SERVE", Elapsed: elapsed}.Segment())
	w.Header().Set(headerVersion, strconv.FormatInt(version, 10))
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.WriteHeader(http.StatusOK)
	writeBody(w, url, version, size)
}

// handleBump serves POST /bump?url=U, invalidating the current body.
func (o *Origin) handleBump(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	url := queryURL(r)
	if url == "" {
		http.Error(w, "missing url parameter", http.StatusBadRequest)
		return
	}
	v := o.Bump(url)
	fmt.Fprintf(w, "%d", v)
}

// writeBody streams the deterministic body for (url, version, size): a
// repeating pattern derived from both, so any version change is visible in
// the payload.
func writeBody(w http.ResponseWriter, url string, version int64, size int64) {
	pattern := []byte(fmt.Sprintf("%s#%d|", url, version))
	buf := make([]byte, 0, 4096)
	for int64(len(buf)) < 4096 {
		buf = append(buf, pattern...)
	}
	remaining := size
	for remaining > 0 {
		n := int64(len(buf))
		if n > remaining {
			n = remaining
		}
		if _, err := w.Write(buf[:n]); err != nil {
			return
		}
		remaining -= n
	}
}
