package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	neturl "net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"beyondcache/internal/obs"
)

// pullSpans scrapes one node's /debug/spans from the given cursor and
// decodes the binary payload.
func pullSpans(t *testing.T, client *http.Client, base string, since uint64) (spans []obs.Span, next uint64, lost uint64) {
	t.Helper()
	u := base + "/debug/spans"
	if since > 0 {
		u += "?since=" + strconv.FormatUint(since, 10)
	}
	resp, err := client.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/spans status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("/debug/spans Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	spans, err = obs.DecodeSpans(body)
	if err != nil {
		t.Fatalf("span payload does not decode: %v", err)
	}
	next = parseUintHeader(t, resp.Header.Get("X-Span-Cursor"))
	lost = parseUintHeader(t, resp.Header.Get("X-Span-Lost"))
	return spans, next, lost
}

func parseUintHeader(t *testing.T, v string) uint64 {
	t.Helper()
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		t.Fatalf("bad uint header %q: %v", v, err)
	}
	return n
}

// remoteScenario drives the canonical 3-hop fleet trace: node 0 misses to
// the origin, hints flush, node 1 serves the same URL remotely via node 0.
// It returns node 1's REMOTE request ID and raw X-Trace header.
func remoteScenario(t *testing.T, f *testFleet, url string) (reqID, xtrace string) {
	t.Helper()
	if how, _, _ := tracedFetch(t, f, 0, url); how != "MISS" {
		t.Fatalf("warm fetch X-Cache %q, want MISS", how)
	}
	f.flushAll()
	resp, err := f.client.Get(f.nodes[1].URL() + "/fetch?url=" + neturl.QueryEscape(url))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if how := resp.Header.Get(headerCache); how != "REMOTE" {
		t.Fatalf("peer fetch X-Cache %q, want REMOTE", how)
	}
	return resp.Header.Get(headerRequestID), resp.Header.Get(headerTrace)
}

// TestDebugSpansEndpoint checks the scrape contract: binary payload, cursor
// resume, limit trimming, and method/parameter validation.
func TestDebugSpansEndpoint(t *testing.T) {
	f := newObsFleet(t, 2)
	remoteScenario(t, f, "http://example.com/spans")

	spans, next, lost := pullSpans(t, f.client, f.nodes[0].URL(), 0)
	if lost != 0 {
		t.Errorf("fresh ring reports %d lost spans", lost)
	}
	// Node 0 recorded a multi-span MISS group plus a single-span
	// PEER-SERVE group under node 1's forwarded trace ID.
	if len(spans) < 3 {
		t.Fatalf("node 0 has %d spans, want >= 3", len(spans))
	}
	ids := map[uint64]bool{}
	sawPeerServe := false
	for _, s := range spans {
		ids[s.TraceID] = true
		if s.Outcome == "PEER-SERVE" {
			sawPeerServe = true
		}
	}
	if len(ids) != 2 {
		t.Errorf("node 0 spans cover %d trace IDs, want 2 (own MISS + forwarded serve)", len(ids))
	}
	if !sawPeerServe {
		t.Error("node 0 recorded no PEER-SERVE span for the forwarded request")
	}

	// Resuming from the returned cursor is empty until new work arrives.
	if again, _, _ := pullSpans(t, f.client, f.nodes[0].URL(), next); len(again) != 0 {
		t.Errorf("cursor resume returned %d spans, want 0", len(again))
	}
	tracedFetch(t, f, 0, "http://example.com/spans") // LOCAL: one more span
	if again, _, _ := pullSpans(t, f.client, f.nodes[0].URL(), next); len(again) != 1 {
		t.Errorf("incremental pull returned %d spans, want 1", len(again))
	}

	// ?limit trims and the cursor stops with it.
	resp, err := f.client.Get(f.nodes[0].URL() + "/debug/spans?limit=2")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	part, err := obs.DecodeSpans(body)
	if err != nil || len(part) != 2 {
		t.Errorf("limited pull = (%d spans, %v), want 2", len(part), err)
	}
	if cur := parseUintHeader(t, resp.Header.Get("X-Span-Cursor")); cur != 2 {
		t.Errorf("limited pull cursor = %d, want 2", cur)
	}
	if node := resp.Header.Get("X-Span-Node"); node != "obs-0" {
		t.Errorf("X-Span-Node = %q, want obs-0", node)
	}

	// Method and parameter validation.
	if resp, err := f.client.Post(f.nodes[0].URL()+"/debug/spans", "", nil); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST /debug/spans status %d, want 405", resp.StatusCode)
		}
	}
	for _, q := range []string{"?since=abc", "?limit=0", "?limit=-3", "?limit=x"} {
		resp, err := f.client.Get(f.nodes[0].URL() + "/debug/spans" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /debug/spans%s status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestSpanRenderMatchesXTraceHeader pins the source-of-truth inversion: the
// span group a node recorded for a request renders back to the byte-exact
// X-Trace header the response carried.
func TestSpanRenderMatchesXTraceHeader(t *testing.T) {
	f := newObsFleet(t, 2)
	reqID, xtrace := remoteScenario(t, f, "http://example.com/render")
	spans, _, _ := pullSpans(t, f.client, f.nodes[1].URL(), 0)
	tid := obs.TraceID(reqID)
	var group []obs.Span
	for _, s := range spans {
		if s.TraceID == tid {
			group = append(group, s)
		}
	}
	if len(group) < 3 {
		t.Fatalf("REMOTE trace group has %d spans, want >= 3 (terminal + peer round trip + serve)", len(group))
	}
	if got := obs.RenderXTrace(group); got != xtrace {
		t.Errorf("RenderXTrace = %q\nheader        = %q", got, xtrace)
	}
}

// TestAssembledFleetTraceByteStable runs the same deterministic 3-hop
// scenario on two fresh fleets and asserts the assembled, label-renamed
// span forests render to identical bytes — structure does not depend on
// scrape order, port assignment, or timing.
func TestAssembledFleetTraceByteStable(t *testing.T) {
	run := func() string {
		f := newObsFleet(t, 3)
		remoteScenario(t, f, "http://example.com/stable")
		rename := map[string]string{}
		var sources []obs.SpanSource
		for i, n := range f.nodes {
			spans, _, _ := pullSpans(t, f.client, n.URL(), 0)
			src := obs.SpanSource{Label: n.label(), HostPort: hostPortOf(n.URL()), Spans: spans}
			rename[src.HostPort] = src.Label
			sources = append(sources, src)
			_ = i
		}
		trees := obs.Assemble(sources)
		var b strings.Builder
		for _, tree := range trees {
			b.WriteString(tree.Render(rename, false))
		}
		return b.String()
	}
	first := run()
	second := run()
	if first != second {
		t.Fatalf("assembled forest differs across runs:\n--- run 1\n%s--- run 2\n%s", first, second)
	}
	// The REMOTE trace must appear as a complete cross-node tree: node 1's
	// REMOTE root carrying node 0's own PEER-SERVE record.
	want := "  obs-1;REMOTE\n" +
		"    obs-0;PEER\n" +
		"      obs-0;PEER-SERVE\n"
	if !strings.Contains(first, want) {
		t.Errorf("assembled forest lacks the stitched cross-node trace:\n%s", first)
	}
}

// TestDebugTracesLimit checks the ?n= parameter on /debug/traces.
func TestDebugTracesLimit(t *testing.T) {
	f := newObsFleet(t, 1)
	urls := []string{"http://e.com/1", "http://e.com/2", "http://e.com/3"}
	for _, u := range urls {
		tracedFetch(t, f, 0, u)
	}
	get := func(q string) (int, []obs.Trace) {
		resp, err := f.client.Get(f.nodes[0].URL() + "/debug/traces" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			return resp.StatusCode, nil
		}
		var payload struct {
			Traces []obs.Trace `json:"traces"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, payload.Traces
	}
	if _, traces := get(""); len(traces) != 3 {
		t.Errorf("unlimited /debug/traces returned %d, want 3", len(traces))
	}
	_, traces := get("?n=2")
	if len(traces) != 2 {
		t.Fatalf("?n=2 returned %d traces", len(traces))
	}
	// The newest two survive the trim.
	if traces[0].URL != urls[1] || traces[1].URL != urls[2] {
		t.Errorf("?n=2 kept %q, %q; want the newest two", traces[0].URL, traces[1].URL)
	}
	for _, q := range []string{"?n=0", "?n=-1", "?n=x"} {
		if status, _ := get(q); status != http.StatusBadRequest {
			t.Errorf("/debug/traces%s status %d, want 400", q, status)
		}
	}
}

// TestHintPropagationLagRecorded checks metadata-freshness layer 1: a
// delivered hint batch shows up in the receiver's per-peer propagation
// histogram with a plausible lag.
func TestHintPropagationLagRecorded(t *testing.T) {
	f := newTestFleet(t, 2, 512)
	if _, _, _, err := f.fetch(0, "http://example.com/lag"); err != nil {
		t.Fatal(err)
	}
	f.nodes[0].Flush()

	peer := hostPortOf(f.nodes[0].URL())
	h := f.nodes[1].hintLag.Get(peer)
	if h == nil {
		t.Fatalf("node 1 has no propagation histogram for peer %s (labels %v)", peer, f.nodes[1].hintLag.Labels())
	}
	if h.Count() != 1 {
		t.Errorf("propagation observations = %d, want 1", h.Count())
	}
	if lag := h.Sum(); lag <= 0 || lag > 10*time.Second {
		t.Errorf("recorded lag %v implausible", lag)
	}

	// The family is in the exposition: aggregate plus the per-peer series.
	p := scrape(t, f.client, f.nodes[1].URL())
	hists := p.HistogramsOf("beyondcache_hint_propagation_seconds")
	if len(hists) != 2 {
		t.Fatalf("exposition has %d propagation histograms, want 2 (aggregate + peer)", len(hists))
	}
	for _, ph := range hists {
		if ph.Snapshot.Count() != 1 {
			t.Errorf("series %v count = %d, want 1", ph.Labels, ph.Snapshot.Count())
		}
	}
	// An unstamped batch (a bare POST from an unknown relayer) records
	// nothing; the node that never sent us hints has no series.
	if h := f.nodes[1].hintLag.Get(hostPortOf(f.nodes[1].URL())); h != nil {
		t.Error("node 1 recorded propagation lag from itself")
	}
}

// TestHintStampSurvivesRelay checks that a relay forwards the originator's
// freshness stamp untouched, so leaves measure lag back to the original
// enqueue rather than the relay hop.
func TestHintStampSurvivesRelay(t *testing.T) {
	f := newTestFleet(t, 2, 512)
	relay := NewRelay("stamp-relay")
	if err := relay.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	relay.Subscribe(f.nodes[1].URL())

	// Point node 0's metadata at the relay only.
	f.nodes[0].AddUpdateTarget(relay.URL())
	if _, _, _, err := f.fetch(0, "http://example.com/via-relay"); err != nil {
		t.Fatal(err)
	}
	f.nodes[0].Flush()

	// Node 1 heard the batch from the relay; the lag series is keyed by the
	// relay (the X-Relay-From hop) but the stamp is node 0's enqueue time.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if h := f.nodes[1].hintLag.Get(hostPortOf(relay.URL())); h != nil && h.Count() >= 1 {
			if lag := h.Sum(); lag <= 0 || lag > 10*time.Second {
				t.Errorf("relayed lag %v implausible", lag)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("relayed batch never recorded a propagation lag (labels %v)", f.nodes[1].hintLag.Labels())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDigestStalenessRecorded checks metadata-freshness layer 2: replacing
// a pulled digest observes the replaced snapshot's age.
func TestDigestStalenessRecorded(t *testing.T) {
	f := startDigestFleet(t, 2)
	if _, err := f.Fetch(1, "http://example.com/d"); err != nil {
		t.Fatal(err)
	}
	f.Nodes[0].PullDigests()
	if got := f.Nodes[0].digestStale.Labels(); len(got) != 0 {
		t.Fatalf("first pull already observed staleness: %v", got)
	}
	time.Sleep(20 * time.Millisecond)
	f.Nodes[0].PullDigests()

	peer := hostPortOf(f.Nodes[1].URL())
	h := f.Nodes[0].digestStale.Get(peer)
	if h == nil {
		t.Fatalf("no staleness histogram for %s (labels %v)", peer, f.Nodes[0].digestStale.Labels())
	}
	if h.Count() != 1 {
		t.Errorf("staleness observations = %d, want 1", h.Count())
	}
	if age := h.Sum(); age < 20*time.Millisecond || age > 10*time.Second {
		t.Errorf("recorded staleness %v, want >= 20ms (the inter-pull gap)", age)
	}
	p := scrape(t, f.client, f.Nodes[0].URL())
	hists := p.HistogramsOf("beyondcache_digest_staleness_seconds")
	if len(hists) != 2 {
		t.Errorf("exposition has %d staleness histograms, want 2", len(hists))
	}
}

// TestDirectoryLagGauge checks the directory-lag gauge: zero at rest,
// positive while updates sit in the pending queue.
func TestDirectoryLagGauge(t *testing.T) {
	f := newTestFleet(t, 2, 512)
	p := scrape(t, f.client, f.nodes[0].URL())
	if v, ok := p.Value("beyondcache_hint_directory_lag_objects"); !ok || v != 0 {
		t.Errorf("idle directory lag = (%v, %v), want (0, true)", v, ok)
	}
	if _, _, _, err := f.fetch(0, "http://example.com/lagged"); err != nil {
		t.Fatal(err)
	}
	p = scrape(t, f.client, f.nodes[0].URL())
	if v, _ := p.Value("beyondcache_hint_directory_lag_objects"); v < 1 {
		t.Errorf("directory lag with a pending inform = %v, want >= 1", v)
	}
	f.nodes[0].Flush()
	p = scrape(t, f.client, f.nodes[0].URL())
	if v, _ := p.Value("beyondcache_hint_directory_lag_objects"); v != 0 {
		t.Errorf("directory lag after flush = %v, want 0", v)
	}
}
