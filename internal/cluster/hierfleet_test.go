package cluster

import (
	"testing"
	"time"

	"beyondcache/internal/trace"
)

func startHierFleet(t *testing.T, nodes, groups int) *Fleet {
	t.Helper()
	f, err := StartHierFleet(FleetConfig{
		Nodes:          nodes,
		UpdateInterval: time.Hour, // tests flush explicitly
	}, groups)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := f.Close(); err != nil {
			t.Errorf("fleet close: %v", err)
		}
	})
	return f
}

func TestHierFleetValidation(t *testing.T) {
	if _, err := StartHierFleet(FleetConfig{Nodes: 0}, 1); err == nil {
		t.Error("zero-node fleet accepted")
	}
	if _, err := StartHierFleet(FleetConfig{Nodes: 4}, 3); err == nil {
		t.Error("non-divisible grouping accepted")
	}
	if _, err := StartHierFleet(FleetConfig{Nodes: 4}, 0); err == nil {
		t.Error("zero groups accepted")
	}
}

func TestHierFleetPropagatesThroughTree(t *testing.T) {
	// 4 leaves, 2 groups: node 0's update must cross the root to reach
	// nodes 2 and 3 in the other group.
	f := startHierFleet(t, 4, 2)
	const url = "http://example.com/tree"
	if _, err := f.Fetch(0, url); err != nil {
		t.Fatal(err)
	}
	f.FlushAll() // synchronous through the relay tree

	// A leaf in the OTHER group now has the hint: remote hit.
	res, err := f.Fetch(3, url)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Remote() {
		t.Fatalf("cross-group fetch = %+v, want REMOTE", res)
	}
	// The root relay carried the update (one batch of >= 1 update).
	root := f.Relays[0]
	if root.Received() == 0 {
		t.Error("root relay received nothing")
	}
	if root.Forwarded() == 0 {
		t.Error("root relay forwarded nothing")
	}
}

func TestHierFleetSameGroupSkipsRoot(t *testing.T) {
	f := startHierFleet(t, 4, 2)
	const url = "http://example.com/near"
	if _, err := f.Fetch(0, url); err != nil {
		t.Fatal(err)
	}
	f.FlushAll()
	// Node 1 shares node 0's group relay.
	res, err := f.Fetch(1, url)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Remote() {
		t.Fatalf("same-group fetch = %+v, want REMOTE", res)
	}
}

func TestHierFleetNoUpdateLoops(t *testing.T) {
	f := startHierFleet(t, 4, 2)
	if _, err := f.Fetch(0, "http://example.com/loop"); err != nil {
		t.Fatal(err)
	}
	f.FlushAll()
	// One update from node 0: the root sees it exactly once (no echo).
	if got := f.Relays[0].Received(); got != 1 {
		t.Errorf("root received %d updates, want exactly 1 (loop?)", got)
	}
	// Each node received the update at most once: total updates received
	// across leaves is 3 (everyone but the origin leaf).
	var total int64
	for _, n := range f.Nodes {
		total += n.Stats().UpdatesReceived
	}
	if total != 3 {
		t.Errorf("leaves received %d update deliveries, want 3", total)
	}
}

func TestHierFleetReplay(t *testing.T) {
	f := startHierFleet(t, 4, 2)
	p := trace.DECProfile(trace.ScaleSmall)
	p.Requests = 800
	p.DistinctURLs = 150
	p.Clients = 32
	p.MaxSize = 64 << 10
	stats, err := f.Replay(trace.MustGenerator(p), ReplayConfig{FlushEvery: 20, StrongConsistency: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RemoteHits == 0 {
		t.Error("no cache-to-cache hits through the relay tree")
	}
	if stats.HitRatio() <= 0.2 {
		t.Errorf("hit ratio %.3f too low", stats.HitRatio())
	}
}
