package cluster

import (
	"net"
	"net/http"
	"time"

	"beyondcache/internal/faults"
)

// The package's HTTP clients are all built here, in one place, so every
// server kind (Node, Relay, Fleet driver) shares the same tuned transport
// and the fault-injection layer has a single seam to wrap. The bare
// &http.Client{Timeout: 10s} the prototype started with used
// http.DefaultTransport's 2-connections-per-host idle pool, which made
// hot cache-to-cache paths re-dial under load; the tuned transport keeps
// a deep per-host idle pool and bounds dial/TLS setup so a dead peer
// fails a connection attempt in seconds, not minutes.

// clientTimeout is the overall request ceiling. Data-path operations run
// under much tighter per-hop context deadlines (NodeConfig.PeerTimeout,
// OriginTimeout); this is the backstop for everything else.
const clientTimeout = 10 * time.Second

// metadataTimeout bounds one metadata-path attempt (a hint-batch POST or a
// digest pull). Metadata is retried and eventually consistent, so one
// attempt to a dead target should fail fast, not ride out clientTimeout.
const metadataTimeout = 2 * time.Second

// newTransport builds the shared tuned http.Transport.
func newTransport() *http.Transport {
	return &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   2 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:          256,
		MaxIdleConnsPerHost:   32,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   2 * time.Second,
		ExpectContinueTimeout: time.Second,
	}
}

// newClient wraps rt (nil means a fresh tuned transport) in the package's
// standard client. inj, when non-nil, interposes the fault-injecting
// transport between the client and the wire.
func newClient(rt http.RoundTripper, inj *faults.Injector) *http.Client {
	if rt == nil {
		rt = newTransport()
	}
	if inj != nil {
		rt = faults.NewTransport(rt, inj)
	}
	return &http.Client{Transport: rt, Timeout: clientTimeout}
}
