package cluster

import (
	"testing"
	"time"

	"beyondcache/internal/faults"
)

// TestFleetSharedInjectorLiveRespec pins the scenario runner's fault plane:
// one shared injector across the fleet, re-specced live to break a peer and
// heal it again, with client fetches succeeding throughout.
func TestFleetSharedInjectorLiveRespec(t *testing.T) {
	inj, err := faults.New("", 99)
	if err != nil {
		t.Fatal(err)
	}
	f := startFleet(t, 3, FleetConfig{
		Faults:      inj,
		HedgeBudget: 10 * time.Millisecond,
	})

	const url = "http://example.com/respec"
	if _, err := f.Fetch(1, url); err != nil {
		t.Fatal(err)
	}
	f.FlushAll() // node 0 learns node 1 holds it

	// Partition node 1 as a target: node 0's hinted peer fetch now fails,
	// but the client still gets the object via the origin fallback.
	if err := f.SetFaultSpec(hostPortOf(f.Nodes[1].URL()) + ":partition"); err != nil {
		t.Fatal(err)
	}
	res, err := f.Fetch(0, url)
	if err != nil {
		t.Fatalf("fetch under partition failed: %v", err)
	}
	if !res.Miss() {
		t.Errorf("fetch under partition = %q, want a MISS fallback", res.How)
	}

	// Heal and refetch: the peer path works again (hint was demoted by the
	// failed probe, so this may be another miss, but the wire is clean).
	if err := f.SetFaultSpec(""); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Fetch(2, url); err != nil {
		t.Fatalf("fetch after heal failed: %v", err)
	}
	if inj.Counts().Drops == 0 {
		t.Error("shared injector never dropped a request; partition spec had no effect")
	}
}

func TestFleetSetFaultSpecWithoutInjector(t *testing.T) {
	f := startFleet(t, 1, FleetConfig{})
	if err := f.SetFaultSpec("*:partition"); err == nil {
		t.Error("SetFaultSpec on a fault-free fleet must error")
	}
}
