package cluster

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"testing"
	"time"

	"beyondcache/internal/hintcache"
	"beyondcache/internal/overlay"
)

// Partitioned hint directory integration tests (DESIGN.md §14): ownership
// routing over the wire, the ownership admission filter, the hint-home
// consult on the miss path, the partition-vs-broadcast footprint bound the
// PR is accepted on, and re-convergence after killing part of the fleet.

// benchPartitionOut, when set, makes TestRecordPartitionBench run the
// 16-node broadcast-vs-partitioned comparison and merge a "partition"
// section into the JSON file at that path (BENCH_cluster.json):
//
//	go test ./internal/cluster -run TestRecordPartitionBench \
//	    -bench-partition-out ../../BENCH_cluster.json
var benchPartitionOut = flag.String("bench-partition-out", "", "merge the partitioned-directory bench JSON into this file")

// startPartFleet boots a partitioned fleet with manual flushing and runs
// one empty flush round so every node's membership view converges on the
// full mesh before the test's own traffic starts.
func startPartFleet(t *testing.T, nodes int, tweak func(*FleetConfig)) *Fleet {
	t.Helper()
	cfg := FleetConfig{
		Nodes:          nodes,
		HintPartition:  true,
		UpdateInterval: time.Hour,
		ObjectSize:     512,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	f, err := StartFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := f.Close(); err != nil {
			t.Errorf("fleet close: %v", err)
		}
	})
	f.FlushAll()
	for i, n := range f.Nodes {
		if got := n.homedView.Load().Size(); got != nodes {
			t.Fatalf("node %d membership = %d after first sync, want %d", i, got, nodes)
		}
	}
	return f
}

// TestPartitionedRoutingTargetsOwners checks the tentpole's routing
// contract: after one node fills an object and flushes, the hint record
// lands on exactly the object's R owners — nowhere else — and every node
// agrees on who those owners are.
func TestPartitionedRoutingTargetsOwners(t *testing.T) {
	const nodes = 8
	f := startPartFleet(t, nodes, nil)

	for i := 0; i < 12; i++ {
		url := fmt.Sprintf("http://part.example/route-%d", i)
		h := hintcache.HashURL(url)

		var want [overlay.MaxReplicas]uint64
		owners := f.Nodes[0].homedView.Load().Owners(h, want[:0])
		if len(owners) != 2 {
			t.Fatalf("object %d has %d owners, want R=2", i, len(owners))
		}
		for j := 1; j < nodes; j++ {
			var buf [overlay.MaxReplicas]uint64
			got := f.Nodes[j].homedView.Load().Owners(h, buf[:0])
			if len(got) != len(owners) || got[0] != owners[0] || got[1] != owners[1] {
				t.Fatalf("node %d owners(%#x) = %v, node 0 says %v", j, h, got, owners)
			}
		}

		holder := i % nodes
		if _, err := f.Fetch(holder, url); err != nil {
			t.Fatal(err)
		}
		f.FlushAll()

		ownerSet := map[uint64]bool{owners[0]: true, owners[1]: true}
		for j, n := range f.Nodes {
			machine, ok := n.hints.Lookup(h)
			if ownerSet[n.machineID] {
				if !ok {
					t.Errorf("object %d: owner node %d has no record", i, j)
				} else if machine != f.Nodes[holder].machineID {
					t.Errorf("object %d: owner node %d names machine %#x, want holder %d", i, j, machine, holder)
				}
			} else if ok {
				t.Errorf("object %d: non-owner node %d stored a record", i, j)
			}
		}
	}
}

// TestOwnershipFilterRejectsForeignRecords checks the admission side: an
// inform for an object a node does not own, arriving straight over the
// wire, is dropped and counted rather than stored.
func TestOwnershipFilterRejectsForeignRecords(t *testing.T) {
	f := startPartFleet(t, 4, nil)
	n := f.Nodes[0]

	// Find an object node 0 does not own.
	var h uint64
	for i := 0; ; i++ {
		h = hintcache.HashURL(fmt.Sprintf("http://part.example/foreign-%d", i))
		if !n.homedView.Load().IsOwner(h, n.machineID) {
			break
		}
	}
	body := hintcache.EncodeUpdates([]hintcache.Update{
		{Action: hintcache.ActionInform, URLHash: h, Machine: f.Nodes[1].machineID},
	})
	resp, err := http.Post(n.URL()+"/updates", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("POST /updates = %d, want 204", resp.StatusCode)
	}
	if _, ok := n.hints.Lookup(h); ok {
		t.Error("non-owned record was stored")
	}
	if got := n.hints.Stats().FilterRejects; got < 1 {
		t.Errorf("FilterRejects = %d, want >= 1", got)
	}
}

// TestHintHomeConsultResolvesMiss checks the extra metadata hop: a node
// that is not an owner of a missed object consults the object's hint home
// and completes a cache-to-cache transfer, with the consult accounted on
// both ends.
func TestHintHomeConsultResolvesMiss(t *testing.T) {
	const nodes = 8
	f := startPartFleet(t, nodes, nil)

	// Find an object whose owner set excludes both the holder (node 0) and
	// the fetcher (node 1), so the fetch must take the consult path.
	var url string
	var h uint64
	for i := 0; ; i++ {
		url = fmt.Sprintf("http://part.example/consult-%d", i)
		h = hintcache.HashURL(url)
		v := f.Nodes[0].homedView.Load()
		if !v.IsOwner(h, f.Nodes[0].machineID) && !v.IsOwner(h, f.Nodes[1].machineID) {
			break
		}
	}
	if _, err := f.Fetch(0, url); err != nil {
		t.Fatal(err)
	}
	f.FlushAll()

	res, err := f.Fetch(1, url)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Remote() {
		t.Fatalf("consult fetch = %+v, want REMOTE", res)
	}
	if got := f.Nodes[1].Stats().HintHomeHits; got != 1 {
		t.Errorf("fetcher HintHomeHits = %d, want 1", got)
	}
	var serves int64
	for _, n := range f.Nodes {
		serves += n.Stats().HintHomeServes
	}
	if serves != 1 {
		t.Errorf("fleet HintHomeServes = %d, want 1", serves)
	}
}

// partitionFootprint drives the same workload through a 16-node fleet in
// one hint-distribution mode and reports the per-node averages the
// acceptance bound is written against: hint wire bytes per flush round and
// occupied hint-directory entries.
func partitionFootprint(t *testing.T, partitioned bool, objects, rounds int) (wireBytesPerRound, entries float64) {
	t.Helper()
	cfg := FleetConfig{
		Nodes:          16,
		HintPartition:  partitioned,
		HintReplicas:   2,
		UpdateInterval: time.Hour,
		ObjectSize:     512,
	}
	f, err := StartFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := f.Close(); err != nil {
			t.Errorf("fleet close: %v", err)
		}
	}()
	if partitioned {
		f.FlushAll() // converge membership before measuring
	}
	for r := 0; r < rounds; r++ {
		for i := 0; i < objects/rounds; i++ {
			obj := r*objects/rounds + i
			url := fmt.Sprintf("http://part.example/bench-%d", obj)
			if _, err := f.Fetch(obj%cfg.Nodes, url); err != nil {
				t.Fatal(err)
			}
		}
		f.FlushAll()
	}
	var bytes, occupied int64
	for _, n := range f.Nodes {
		st := n.Stats()
		if partitioned {
			bytes += st.WireHintBytesPartitioned
		} else {
			bytes += st.WireHintBytes
		}
		occupied += int64(n.hints.Occupied())
	}
	nodes := float64(cfg.Nodes)
	return float64(bytes) / float64(rounds) / nodes, float64(occupied) / nodes
}

// TestPartitionBytesBound is the PR's acceptance bound, enforced in CI: on
// a 16-node fleet at R=2, the partitioned directory must cost each node at
// most 25% of the broadcast baseline in BOTH hint wire bytes per round and
// stored directory entries (theory: R/(N-1) ~ 13%).
func TestPartitionBytesBound(t *testing.T) {
	const objects, rounds = 96, 2
	bcastBytes, bcastEntries := partitionFootprint(t, false, objects, rounds)
	partBytes, partEntries := partitionFootprint(t, true, objects, rounds)

	t.Logf("per-node wire bytes/round: broadcast %.0f, partitioned %.0f (%.1f%%)",
		bcastBytes, partBytes, 100*partBytes/bcastBytes)
	t.Logf("per-node directory entries: broadcast %.1f, partitioned %.1f (%.1f%%)",
		bcastEntries, partEntries, 100*partEntries/bcastEntries)

	if partBytes > 0.25*bcastBytes {
		t.Errorf("partitioned wire bytes/round %.0f exceeds 25%% of broadcast %.0f", partBytes, bcastBytes)
	}
	if partEntries > 0.25*bcastEntries {
		t.Errorf("partitioned directory entries %.1f exceed 25%% of broadcast %.1f", partEntries, bcastEntries)
	}
}

// TestRecordPartitionBench records the broadcast-vs-partitioned footprint
// comparison as a "partition" section merged into the existing
// BENCH_cluster.json (other sections untouched). Skipped unless
// -bench-partition-out is set.
func TestRecordPartitionBench(t *testing.T) {
	if *benchPartitionOut == "" {
		t.Skip("set -bench-partition-out to record the partition bench")
	}
	const objects, rounds = 96, 2
	bcastBytes, bcastEntries := partitionFootprint(t, false, objects, rounds)
	partBytes, partEntries := partitionFootprint(t, true, objects, rounds)

	doc := map[string]any{}
	if prev, err := os.ReadFile(*benchPartitionOut); err == nil {
		if err := json.Unmarshal(prev, &doc); err != nil {
			t.Fatalf("existing %s is not JSON: %v", *benchPartitionOut, err)
		}
	}
	doc["partition"] = map[string]any{
		"description":                          "16-node fleet, 96 objects round-robin: full hint broadcast vs Plaxton-partitioned hint homes at R=2.",
		"nodes":                                16,
		"hint_replicas":                        2,
		"objects":                              objects,
		"flush_rounds":                         rounds,
		"broadcast_wire_bytes_per_node_round":  bcastBytes,
		"partition_wire_bytes_per_node_round":  partBytes,
		"wire_bytes_ratio":                     partBytes / bcastBytes,
		"broadcast_directory_entries_per_node": bcastEntries,
		"partition_directory_entries_per_node": partEntries,
		"directory_entries_ratio":              partEntries / bcastEntries,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchPartitionOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("merged partition section into %s: bytes ratio %.3f, entries ratio %.3f",
		*benchPartitionOut, partBytes/bcastBytes, partEntries/bcastEntries)
}

// TestChaosPartitionedHintsReconverge kills 2 of 16 nodes (12.5% of the
// fleet) and checks the partitioned directory heals itself: survivor
// membership re-converges within a few probe rounds, every object still
// resident on a survivor is reachable cache-to-cache again, and the
// re-homing work each survivor did is proportional to the dead nodes'
// partition share — not to the directory size.
func TestChaosPartitionedHintsReconverge(t *testing.T) {
	const (
		nodes   = 16
		objects = 128
	)
	f := startPartFleet(t, nodes, func(cfg *FleetConfig) {
		// Hedging off: a reconverged fetch must succeed through the consult
		// path on its own, not because the origin hedge papered over it.
		cfg.HedgeBudget = -1
	})

	urls := make([]string, objects)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://part.example/chaos-%d", i)
		if _, err := f.Fetch(i%nodes, urls[i]); err != nil {
			t.Fatal(err)
		}
	}
	f.FlushAll()
	viewBefore := f.Nodes[0].homedView.Load()

	dead := map[int]bool{5: true, 11: true}
	for i := range dead {
		if err := f.KillNode(i); err != nil {
			t.Fatal(err)
		}
	}

	// Dead peers stop answering probes; two consecutive failed contacts
	// evict them. Survivor flush rounds double as probe rounds.
	reconverged := -1
	for round := 1; round <= 5; round++ {
		f.FlushAll()
		ok := true
		for i, n := range f.Nodes {
			if dead[i] {
				continue
			}
			if n.homedView.Load().Size() != nodes-len(dead) {
				ok = false
				break
			}
		}
		if ok {
			reconverged = round
			break
		}
	}
	if reconverged < 0 {
		t.Fatal("survivor membership never re-converged")
	}
	t.Logf("membership re-converged after %d flush rounds", reconverged)
	f.FlushAll() // settle: deliver the re-homed records everywhere

	viewAfter := f.Nodes[0].homedView.Load()
	changedAll, changedSurvivorHeld := 0, 0
	for i, u := range urls {
		if overlay.SameOwners(viewBefore, viewAfter, hintcache.HashURL(u)) {
			continue
		}
		changedAll++
		if !dead[i%nodes] {
			changedSurvivorHeld++
		}
	}
	if changedAll == 0 {
		t.Fatal("no object changed owners after losing 2/16 nodes")
	}

	// Reachability: every survivor-resident object must again land REMOTE
	// from a survivor that is neither its holder nor already caching it.
	for i, u := range urls {
		holder := i % nodes
		if dead[holder] {
			continue // its only replica died with it
		}
		fetcher := (holder + 1) % nodes
		for dead[fetcher] {
			fetcher = (fetcher + 1) % nodes
		}
		res, err := f.Fetch(fetcher, u)
		if err != nil {
			t.Fatalf("object %d from node %d: %v", i, fetcher, err)
		}
		if !res.Remote() {
			t.Errorf("object %d from node %d = %+v, want REMOTE after re-homing", i, fetcher, res)
		}
	}

	// Re-homing work: each changed object is announced once by its
	// surviving holder and forwarded/dropped by at most its R=2 old homes,
	// so the fleet-wide count sits between the survivor-held changed share
	// and a small multiple of all changed objects — never near the full
	// directory size.
	var rehomed int64
	for i, n := range f.Nodes {
		if !dead[i] {
			rehomed += n.Stats().RehomedObjects
		}
	}
	t.Logf("rehomed %d (changed objects: %d total, %d survivor-held, of %d)",
		rehomed, changedAll, changedSurvivorHeld, objects)
	if rehomed < int64(changedSurvivorHeld) {
		t.Errorf("rehomed %d < %d survivor-held changed objects", rehomed, changedSurvivorHeld)
	}
	if max := int64(4*changedAll + 16); rehomed > max {
		t.Errorf("rehomed %d > %d (~4x changed objects): re-home work not proportional to churn", rehomed, max)
	}
}
