package cluster

import (
	"testing"
	"time"

	"beyondcache/internal/trace"
)

// replayProfile is a small workload whose client count matches a 4-node
// fleet nicely.
func replayProfile() trace.Profile {
	p := trace.DECProfile(trace.ScaleSmall)
	p.Requests = 1500
	p.DistinctURLs = 300
	p.Clients = 64
	p.MaxSize = 64 << 10 // keep bodies small for fast HTTP
	return p
}

func TestReplayDrivesFleet(t *testing.T) {
	f := startFleet(t, 4, FleetConfig{})
	g := trace.MustGenerator(replayProfile())
	stats, err := f.Replay(g, ReplayConfig{FlushEvery: 25, StrongConsistency: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests == 0 {
		t.Fatal("nothing replayed")
	}
	if stats.LocalHits == 0 {
		t.Error("no local hits over a Zipf workload")
	}
	if stats.RemoteHits == 0 {
		t.Error("no remote (cache-to-cache) hits; hints not working")
	}
	if stats.Misses == 0 {
		t.Error("no misses; origin never used")
	}
	if stats.Skipped == 0 {
		t.Error("no uncachable/error requests skipped")
	}
	if got := stats.LocalHits + stats.RemoteHits + stats.Misses; got != stats.Requests {
		t.Errorf("outcome sum %d != requests %d", got, stats.Requests)
	}
	if stats.HitRatio() <= 0.2 {
		t.Errorf("hit ratio %.3f suspiciously low", stats.HitRatio())
	}
	// The origin served every miss exactly once-ish: fetches equal
	// misses (strong consistency re-fetches count as misses too).
	if f.Origin.Fetches() != stats.Misses {
		t.Errorf("origin fetches %d != misses %d", f.Origin.Fetches(), stats.Misses)
	}
}

func TestReplayStrongConsistencyPurges(t *testing.T) {
	// A mutable-heavy profile: with strong consistency, version bumps
	// force re-fetches, so misses exceed the distinct-object count.
	p := replayProfile()
	p.Requests = 600
	p.DistinctURLs = 50
	p.MutableFrac = 1.0
	p.MinUpdatePeriod = time.Second
	p.MaxUpdatePeriod = 2 * time.Second

	f := startFleet(t, 2, FleetConfig{})
	stats, err := f.Replay(trace.MustGenerator(p), ReplayConfig{FlushEvery: 10, StrongConsistency: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Misses <= int64(p.DistinctURLs) {
		t.Errorf("misses %d <= distinct %d: version bumps did not force re-fetches",
			stats.Misses, p.DistinctURLs)
	}
}

func TestFleetSurvivesDeadPeer(t *testing.T) {
	f := startFleet(t, 3, FleetConfig{})
	const url = "http://example.com/resilient"
	if _, err := f.Fetch(0, url); err != nil {
		t.Fatal(err)
	}
	f.FlushAll() // nodes 1 and 2 learn node 0 holds it

	// Kill node 0 (outside the fleet's Close bookkeeping: close it now,
	// and replace it so Cleanup's Close is a no-op double call is safe).
	if err := f.Nodes[0].Close(); err != nil {
		t.Fatal(err)
	}

	// Node 1's hint points at the dead node: the peer fetch fails, and
	// the request falls through to the origin — a slow miss, not an
	// error (the same path as a stale hint).
	res, err := f.Fetch(1, url)
	if err != nil {
		t.Fatalf("fetch with dead peer failed: %v", err)
	}
	if !res.Miss() || !res.StaleHint() {
		t.Errorf("fetch with dead peer = %+v, want MISS,STALE-HINT", res)
	}
	// Flushing to the dead peer records send errors but doesn't wedge.
	if _, err := f.Fetch(2, "http://example.com/other"); err != nil {
		t.Fatal(err)
	}
	f.Nodes[2].Flush()
	if f.Nodes[2].Stats().SendErrors == 0 {
		t.Error("no send errors recorded against the dead peer")
	}
}

func TestPurgeAllIgnoresAbsent(t *testing.T) {
	f := startFleet(t, 2, FleetConfig{})
	const url = "http://example.com/pa"
	if _, err := f.Fetch(0, url); err != nil {
		t.Fatal(err)
	}
	// Only node 0 has it; PurgeAll must not error on node 1.
	f.PurgeAll(url)
	res, err := f.Fetch(0, url)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Miss() {
		t.Errorf("after PurgeAll fetch = %+v, want MISS", res)
	}
}
