package cluster

import (
	"testing"

	"beyondcache/internal/hintcache"
)

func inform(h, m uint64) hintcache.Update {
	return hintcache.Update{Action: hintcache.ActionInform, URLHash: h, Machine: m}
}

func invalidate(h, m uint64) hintcache.Update {
	return hintcache.Update{Action: hintcache.ActionInvalidate, URLHash: h, Machine: m}
}

// TestPendqCoalesces checks the coalescing rules: repeated informs for one
// object keep a single record, and inform-then-invalidate collapses to the
// invalidate (last action wins) without losing the record's queue position.
func TestPendqCoalesces(t *testing.T) {
	q := newPendq(0)
	q.add(inform(1, 7))
	q.add(inform(2, 7))
	if c, _ := q.add(inform(1, 7)); !c {
		t.Error("repeat inform for hash 1 did not coalesce")
	}
	if c, _ := q.add(invalidate(1, 7)); !c {
		t.Error("invalidate after inform for hash 1 did not coalesce")
	}
	got, _ := q.drain(nil)
	want := []hintcache.Update{invalidate(1, 7), inform(2, 7)}
	if len(got) != len(want) {
		t.Fatalf("drained %d records, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if q.len() != 0 {
		t.Errorf("queue holds %d records after drain, want 0", q.len())
	}
}

// TestPendqInvalidateThenInform checks the reverse collapse: a re-fill's
// inform overwrites a queued invalidate.
func TestPendqInvalidateThenInform(t *testing.T) {
	q := newPendq(0)
	q.add(invalidate(1, 7))
	q.add(inform(1, 7))
	got, _ := q.drain(nil)
	if len(got) != 1 || got[0] != inform(1, 7) {
		t.Fatalf("drained %v, want single inform(1)", got)
	}
}

// TestPendqBoundDropsOldestInformFirst fills a bounded queue and checks
// that overflow evicts the oldest inform — never an invalidate while an
// inform remains — and that an all-invalidate queue falls back to dropping
// its oldest record.
func TestPendqBoundDropsOldestInformFirst(t *testing.T) {
	q := newPendq(3)
	q.add(invalidate(1, 7))
	q.add(inform(2, 7))
	q.add(inform(3, 7))
	if _, dropped := q.add(inform(4, 7)); !dropped {
		t.Fatal("overflow add reported no drop")
	}
	got, _ := q.drain(nil)
	want := []hintcache.Update{invalidate(1, 7), inform(3, 7), inform(4, 7)}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v (oldest inform should have dropped)", i, got[i], want[i])
		}
	}

	// All invalidates: the oldest one goes.
	q = newPendq(2)
	q.add(invalidate(1, 7))
	q.add(invalidate(2, 7))
	q.add(invalidate(3, 7))
	got, _ = q.drain(nil)
	want = []hintcache.Update{invalidate(2, 7), invalidate(3, 7)}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("all-invalidate overflow: record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestPendqAddBatchCounts checks addBatch's aggregate coalesce/drop
// accounting, which feeds the per-peer metrics.
func TestPendqAddBatchCounts(t *testing.T) {
	q := newPendq(2)
	batch := []hintcache.Update{
		inform(1, 7),
		inform(1, 7), // coalesces
		inform(2, 7),
		inform(3, 7), // overflows: drops hash 1 (oldest inform)
	}
	coalesced, dropped := q.addBatch(batch, 0)
	if coalesced != 1 || dropped != 1 {
		t.Errorf("addBatch = (coalesced %d, dropped %d), want (1, 1)", coalesced, dropped)
	}
	if q.len() != 2 {
		t.Errorf("queue holds %d records, want 2", q.len())
	}
}
