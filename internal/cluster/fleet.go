package cluster

import (
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"strconv"
	"strings"
	"time"

	"beyondcache/internal/faults"
	"beyondcache/internal/obs"
	"beyondcache/internal/resilience"
)

// Fleet is a running set of cache nodes plus their origin server, fully
// meshed for hint exchange — the shape of the paper's prototype deployment.
type Fleet struct {
	Origin *Origin
	Nodes  []*Node
	// Relays are the metadata-relay tree nodes of a hierarchical fleet
	// (empty for a full-mesh fleet).
	Relays []*Relay
	client *http.Client
	faults *faults.Injector
	// cfg remembers the boot configuration so RestartNode can rebuild a
	// node identically (same cache dir, same knobs).
	cfg FleetConfig
	// killed marks slots taken down by KillNode (lazily sized); FlushAll
	// skips them and RestartNode revives them.
	killed []bool
}

// FleetConfig parameterizes StartFleet.
type FleetConfig struct {
	// Nodes is the number of cache nodes (must be >= 1).
	Nodes int
	// CacheBytes per node (<= 0 for the node default).
	CacheBytes int64
	// CacheShards per node (<= 0 for the node default). Tests squeezing
	// CacheBytes use 1 so the byte budget is not split across shards.
	CacheShards int
	// HintEntries per node (<= 0 for the node default).
	HintEntries int
	// UpdateInterval between hint batches or digest pulls (<= 0 for 1s).
	UpdateInterval time.Duration
	// HintQueue bounds each node's pending and per-peer sender queues in
	// records (<= 0 for the node default of 8192).
	HintQueue int
	// DigestWorkers bounds each node's concurrent digest pulls (<= 0 for
	// the node default of 4).
	DigestWorkers int
	// ObjectSize is the origin's default object size (<= 0 for 8 KB).
	ObjectSize int64
	// UseDigests switches every node to Bloom-filter digest exchange.
	// DigestFull and WireCompress pass through to every node's NodeConfig
	// (full-snapshot-only pulls; framed-metadata compression).
	UseDigests   bool
	DigestFull   bool
	WireCompress bool
	// HintPartition switches every node to the partitioned hint directory
	// (Plaxton-routed hint homes; see NodeConfig.HintPartition);
	// HintReplicas is the owner-set size R (<= 0 for the node default
	// of 2).
	HintPartition bool
	HintReplicas  int

	// PeerTimeout, OriginTimeout, HedgeBudget, and Breaker pass through
	// to every node's NodeConfig (see there for semantics and defaults).
	PeerTimeout   time.Duration
	OriginTimeout time.Duration
	HedgeBudget   time.Duration
	Breaker       resilience.BreakerConfig
	// FaultSpec applies the same outbound fault spec to every node;
	// FaultSeed seeds node i with FaultSeed+i so injected randomness is
	// deterministic but not lock-stepped across the fleet.
	FaultSpec string
	FaultSeed int64
	// Faults, when non-nil, shares ONE prebuilt outbound injector across
	// every node instead of per-node injectors built from FaultSpec. A
	// shared injector is the live fault plane of the load scenarios: one
	// SetSpec (see Fleet.SetFaultSpec) breaks or heals targets fleet-wide
	// mid-run. InboundFaults is the serving-side twin.
	Faults        *faults.Injector
	InboundFaults *faults.Injector

	// CacheDirs gives node i a persistent disk tier rooted at
	// CacheDirs[i] (see NodeConfig.CacheDir); nodes beyond the slice —
	// or all nodes, when nil — stay memory-only. DiskCapacity,
	// SpillQueue, CompressMin, and RecoveryWorkers pass through to every
	// disk-tiered node.
	CacheDirs       []string
	DiskCapacity    int64
	SpillQueue      int
	CompressMin     int64
	RecoveryWorkers int
}

// nodeConfig builds node i's NodeConfig from the fleet-wide settings.
func (cfg FleetConfig) nodeConfig(i int, originURL string) NodeConfig {
	var cacheDir string
	if i < len(cfg.CacheDirs) {
		cacheDir = cfg.CacheDirs[i]
	}
	return NodeConfig{
		CacheDir:        cacheDir,
		DiskCapacity:    cfg.DiskCapacity,
		SpillQueue:      cfg.SpillQueue,
		CompressMin:     cfg.CompressMin,
		RecoveryWorkers: cfg.RecoveryWorkers,
		Name:            fmt.Sprintf("node-%d", i),
		CacheBytes:      cfg.CacheBytes,
		CacheShards:     cfg.CacheShards,
		HintEntries:     cfg.HintEntries,
		OriginURL:       originURL,
		UpdateInterval:  cfg.UpdateInterval,
		HintQueue:       cfg.HintQueue,
		DigestWorkers:   cfg.DigestWorkers,
		Seed:            int64(i) + 1,
		UseDigests:      cfg.UseDigests,
		DigestFull:      cfg.DigestFull,
		HintPartition:   cfg.HintPartition,
		HintReplicas:    cfg.HintReplicas,
		WireCompress:    cfg.WireCompress,
		PeerTimeout:     cfg.PeerTimeout,
		OriginTimeout:   cfg.OriginTimeout,
		HedgeBudget:     cfg.HedgeBudget,
		Breaker:         cfg.Breaker,
		FaultSpec:       cfg.FaultSpec,
		FaultSeed:       cfg.FaultSeed + int64(i),
		Faults:          cfg.Faults,
		InboundFaults:   cfg.InboundFaults,
	}
}

// StartFleet boots an origin and n meshed nodes on loopback ephemeral
// ports. Call Close when done.
func StartFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: fleet needs at least one node, got %d", cfg.Nodes)
	}
	f := &Fleet{
		Origin: NewOrigin(cfg.ObjectSize),
		client: newClient(nil, nil),
		faults: cfg.Faults,
		cfg:    cfg,
	}
	if err := f.Origin.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Nodes; i++ {
		n, err := NewNode(cfg.nodeConfig(i, f.Origin.URL()))
		if err != nil {
			f.Close()
			return nil, err
		}
		if err := n.Start("127.0.0.1:0"); err != nil {
			f.Close()
			return nil, err
		}
		f.Nodes = append(f.Nodes, n)
	}
	// Full mesh.
	for _, a := range f.Nodes {
		for _, b := range f.Nodes {
			if a != b {
				a.AddPeer(b.URL())
			}
		}
	}
	return f, nil
}

// RestartNode stops node i and boots a replacement with the same
// configuration on the SAME listen address, so peer tables, hint machine
// IDs, and breaker keys all stay valid — the fleet-level model of a cache
// process restarting. With a CacheDir configured, the replacement runs the
// boot recovery scan over the previous incarnation's files and republishes
// the surviving population; call Nodes[i].WaitRecovery() to wait for it.
func (f *Fleet) RestartNode(i int) error {
	if i < 0 || i >= len(f.Nodes) {
		return fmt.Errorf("cluster: restart: no node %d", i)
	}
	old := f.Nodes[i]
	addr := old.Addr()
	if addr == "" {
		return fmt.Errorf("cluster: restart: node %d does not own its listener", i)
	}
	if i < len(f.killed) {
		f.killed[i] = false
	}
	if err := old.Close(); err != nil {
		return fmt.Errorf("cluster: restart: close node %d: %w", i, err)
	}
	n, err := NewNode(f.cfg.nodeConfig(i, f.Origin.URL()))
	if err != nil {
		return fmt.Errorf("cluster: restart: %w", err)
	}
	// The old listener just closed; give the kernel a few tries to hand
	// the exact port back.
	startErr := n.Start(addr)
	for attempt := 0; startErr != nil && attempt < 50; attempt++ {
		time.Sleep(10 * time.Millisecond)
		startErr = n.Start(addr)
	}
	if startErr != nil {
		return fmt.Errorf("cluster: restart: rebind %s: %w", addr, startErr)
	}
	f.Nodes[i] = n
	for j, p := range f.Nodes {
		if j != i {
			n.AddPeer(p.URL())
		}
	}
	return nil
}

// KillNode shuts node i down and leaves its slot dead — the fleet-level
// model of a crash (RestartNode revives the slot). The dead node's URL
// stays in every survivor's peer table; a partition-mode fleet detects
// the death through failed deliveries and probes within two flush rounds
// and re-homes its directory share.
func (f *Fleet) KillNode(i int) error {
	if i < 0 || i >= len(f.Nodes) {
		return fmt.Errorf("cluster: kill: no node %d", i)
	}
	if f.killed == nil {
		f.killed = make([]bool, len(f.Nodes))
	}
	f.killed[i] = true
	return f.Nodes[i].Close()
}

// Alive reports whether node i has not been killed.
func (f *Fleet) Alive(i int) bool {
	return i >= 0 && i < len(f.Nodes) && (i >= len(f.killed) || !f.killed[i])
}

// NodeURLs returns every node's base URL, in node order.
func (f *Fleet) NodeURLs() []string {
	urls := make([]string, len(f.Nodes))
	for i, n := range f.Nodes {
		urls[i] = n.URL()
	}
	return urls
}

// SetFaultSpec re-specs the fleet's live fault plane: the shared injector
// if the fleet was started with one (FleetConfig.Faults), else every
// node's own outbound injector. Scenario timelines call this to break and
// heal targets mid-run; an empty spec heals everything. It errors when no
// node has an injector to re-spec (the fleet was started without faults).
func (f *Fleet) SetFaultSpec(spec string) error {
	if f.faults != nil {
		return f.faults.SetSpec(spec)
	}
	applied := false
	for _, n := range f.Nodes {
		if inj := n.FaultInjector(); inj != nil {
			if err := inj.SetSpec(spec); err != nil {
				return err
			}
			applied = true
		}
	}
	if !applied {
		return fmt.Errorf("cluster: fleet has no fault injector (start it with FleetConfig.Faults or FaultSpec)")
	}
	return nil
}

// Close shuts down every node, relay, and the origin, returning the first
// error.
func (f *Fleet) Close() error {
	var first error
	for _, n := range f.Nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, r := range f.Relays {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	if f.Origin != nil {
		if err := f.Origin.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// FlushAll forces a metadata round on every node now — a hint-update flush,
// or a digest pull in digest mode. Tests and demos use it instead of
// waiting for the batch timers.
func (f *Fleet) FlushAll() {
	// Partition mode: converge membership across the whole fleet before any
	// node routes records. Without this pre-pass a node flushing early in
	// the loop can deliver re-homed records to a peer whose stale view
	// still rejects them at the ownership filter (in a real deployment the
	// jittered flush timers interleave probe and delivery rounds, which
	// closes the same window).
	for i, n := range f.Nodes {
		if f.Alive(i) && n.partitioned() {
			n.syncMembership()
		}
	}
	for i, n := range f.Nodes {
		if !f.Alive(i) {
			continue
		}
		n.exchange()
	}
}

// FetchResult describes how a /fetch was served.
type FetchResult struct {
	// How is LOCAL, "LOCAL,COALESCED", REMOTE, MISS, "MISS,STALE-HINT",
	// or "MISS,HEDGE".
	How string
	// Version is the object version served.
	Version int64
	// Bytes is the body length.
	Bytes int64
	// Elapsed is the client-observed fetch duration.
	Elapsed time.Duration
	// RequestID is the X-Request-Id the node assigned (or echoed).
	RequestID string
	// Hops is the parsed X-Trace hop chain, upstream hops first; its
	// terminal hop's outcome equals How.
	Hops []obs.Hop
}

// Terminal returns the chain's terminal hop (the serving node's own
// segment), or a zero Hop when the chain is empty.
func (r FetchResult) Terminal() obs.Hop {
	if len(r.Hops) == 0 {
		return obs.Hop{}
	}
	return r.Hops[len(r.Hops)-1]
}

// Local reports whether the fetch was a local cache hit (including hits on
// another request's in-flight fill).
func (r FetchResult) Local() bool { return strings.HasPrefix(r.How, "LOCAL") }

// Coalesced reports whether the fetch shared another request's in-flight
// fill instead of fetching itself (the singleflight path).
func (r FetchResult) Coalesced() bool { return strings.HasSuffix(r.How, "COALESCED") }

// Remote reports whether the fetch was served by a cache-to-cache transfer.
func (r FetchResult) Remote() bool { return r.How == "REMOTE" }

// Miss reports whether the origin served the fetch.
func (r FetchResult) Miss() bool { return strings.HasPrefix(r.How, "MISS") }

// StaleHint reports whether a false positive was paid before the origin
// fetch.
func (r FetchResult) StaleHint() bool { return strings.HasSuffix(r.How, "STALE-HINT") }

// Fetch asks node i of the fleet for a URL.
func (f *Fleet) Fetch(i int, url string) (FetchResult, error) {
	return FetchFrom(f.client, f.Nodes[i].URL(), url)
}

// Purge drops node i's copy of a URL (404 from the node is reported as an
// error).
func (f *Fleet) Purge(i int, url string) error {
	resp, err := f.client.Post(f.Nodes[i].URL()+"/purge?url="+neturl.QueryEscape(url), "", nil)
	if err != nil {
		return fmt.Errorf("purge: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("purge: status %d", resp.StatusCode)
	}
	return nil
}

// FetchFrom asks an arbitrary node (by base URL) for a URL, measuring the
// client-observed duration.
func FetchFrom(client *http.Client, nodeURL, url string) (FetchResult, error) {
	start := time.Now()
	resp, err := client.Get(nodeURL + "/fetch?url=" + neturl.QueryEscape(url))
	if err != nil {
		return FetchResult{}, fmt.Errorf("fetch: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return FetchResult{}, fmt.Errorf("fetch read: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return FetchResult{}, fmt.Errorf("fetch: status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	version, _ := strconv.ParseInt(resp.Header.Get(headerVersion), 10, 64)
	return FetchResult{
		How:       resp.Header.Get(headerCache),
		Version:   version,
		Bytes:     int64(len(body)),
		Elapsed:   time.Since(start),
		RequestID: resp.Header.Get(headerRequestID),
		Hops:      obs.ParseHops(resp.Header.Get(headerTrace)),
	}, nil
}
