package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"beyondcache/internal/hintcache"
	"beyondcache/internal/obs"
	"beyondcache/internal/resilience"
	"beyondcache/internal/wire"
)

// Relay is a metadata-only node of the hint distribution hierarchy: it
// caches no data, only receives batched hint updates and forwards them to
// its subscribers (its children and, optionally, a parent relay). Wiring
// relays into a tree gives the prototype the paper's metadata hierarchy —
// leaves talk to a nearby relay instead of broadcasting to every peer, and
// the tree fans updates out (Figure 4a's metadata path).
//
// Relays forward a batch to every subscriber except the one it arrived
// from, which is loop-free on a tree. Forwards to the subscribers of one
// batch go out concurrently, so one slow subscriber does not delay the
// rest of the tree (the metadata path inherits "do not slow down misses").
type Relay struct {
	name string

	mu          sync.RWMutex
	subscribers []string // base URLs

	received  atomic.Int64
	forwarded atomic.Int64
	// retries counts forward re-attempts spent after a failure.
	retries atomic.Int64
	// forwardHist times one batch's full fan-out.
	forwardHist *obs.Histogram

	lis       net.Listener
	srv       *http.Server
	client    *http.Client
	backoff   *resilience.Backoff
	srvDone   chan struct{}
	closeOnce sync.Once
}

// relayForwardTimeout bounds one forward attempt to one subscriber. Batches
// are small and subscribers are near; a forward that cannot complete in
// this window is retried, then abandoned (the tree re-converges on the next
// batch).
const relayForwardTimeout = 2 * time.Second

// relayBodyLimit bounds one forwarded batch's wire size.
const relayBodyLimit = 1 << 20

// NewRelay builds a relay; call Start to begin serving.
func NewRelay(name string) *Relay {
	return &Relay{
		name:        name,
		forwardHist: obs.NewHistogram(nil),
		client:      newClient(nil, nil),
		backoff:     resilience.NewBackoff(25*time.Millisecond, 200*time.Millisecond, 2, int64(len(name))),
		srvDone:     make(chan struct{}),
	}
}

// Start listens on addr.
func (r *Relay) Start(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: relay %q listen: %w", r.name, err)
	}
	r.lis = lis
	r.srv = &http.Server{
		Handler:           r.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       30 * time.Second,
	}
	go func() {
		defer close(r.srvDone)
		_ = r.srv.Serve(lis)
	}()
	return nil
}

// Handler returns the relay's HTTP mux (what Start serves), so tests and
// embedders can mount it on their own server.
func (r *Relay) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/updates", r.handleUpdates)
	mux.HandleFunc("/metrics", r.handleMetrics)
	return mux
}

// Addr returns the listening address.
func (r *Relay) Addr() string {
	if r.lis == nil {
		return ""
	}
	return r.lis.Addr().String()
}

// URL returns the relay's base URL.
func (r *Relay) URL() string { return "http://" + r.Addr() }

// Subscribe registers a subscriber (a cache node's or another relay's base
// URL) to receive forwarded updates.
func (r *Relay) Subscribe(baseURL string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.subscribers = append(r.subscribers, baseURL)
}

// Received returns the number of updates this relay has received.
func (r *Relay) Received() int64 { return r.received.Load() }

// Forwarded returns the number of update deliveries this relay has made
// (updates x subscribers reached).
func (r *Relay) Forwarded() int64 { return r.forwarded.Load() }

// Close shuts the relay down. Idempotent.
func (r *Relay) Close() error {
	var err error
	r.closeOnce.Do(func() {
		if r.srv == nil {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		err = r.srv.Shutdown(ctx)
		if err != nil {
			_ = r.srv.Close()
			err = nil
		}
		<-r.srvDone
	})
	return err
}

// handleUpdates validates and forwards a batch. The sender identifies
// itself with the X-Relay-From header carrying its base URL so the relay
// can avoid echoing the batch back. The reply is sent once every forward
// has been attempted, so a sender that waits for the 204 knows the batch
// has fanned out.
func (r *Relay) handleUpdates(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	// Oversized batches are refused whole with 413 rather than truncated
	// at the limit, which could shear a 20-byte record mid-encode.
	var body bytes.Buffer
	if status, err := readUpdatesBody(&body, req, relayBodyLimit+wire.HeaderSize); err != nil {
		http.Error(w, err.Error(), status)
		return
	}
	// The batch is decoded only to count and validate it; forwards ship
	// the original bytes verbatim — framed or raw — so the relay never
	// re-encodes (or recompresses) what it fans out.
	msg := body.Bytes()
	records, _, status, err := unframeUpdates(msg, relayBodyLimit, nil)
	if err != nil {
		http.Error(w, err.Error(), status)
		return
	}
	updates, err := hintcache.DecodeUpdates(records)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	from := req.Header.Get("X-Relay-From")
	// The originator's freshness stamp rides through the tree untouched:
	// a leaf receiving the forward measures lag back to the *original*
	// enqueue, so relay hops show up in the propagation histogram instead
	// of resetting it.
	stamp := req.Header.Get(headerHintBatch)
	r.received.Add(int64(len(updates)))

	r.mu.RLock()
	targets := make([]string, 0, len(r.subscribers))
	for _, s := range r.subscribers {
		if s != from {
			targets = append(targets, s)
		}
	}
	r.mu.RUnlock()

	start := time.Now()
	var wg sync.WaitGroup
	for _, t := range targets {
		wg.Add(1)
		go func(t string) {
			defer wg.Done()
			// Forwards are idempotent (hint batches apply by record), so
			// each runs under a tight deadline with jittered backoff
			// retries before the subscriber is given up on.
			retries, err := r.backoff.Retry(req.Context(), 2, func() error {
				ctx, cancel := context.WithTimeout(req.Context(), relayForwardTimeout)
				defer cancel()
				hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, t+"/updates", bytes.NewReader(msg))
				if err != nil {
					return err
				}
				hreq.Header.Set("Content-Type", "application/octet-stream")
				hreq.Header.Set("X-Relay-From", r.URL())
				if stamp != "" {
					hreq.Header.Set(headerHintBatch, stamp)
				}
				resp, err := r.client.Do(hreq)
				if err != nil {
					return err
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				return nil
			})
			r.retries.Add(int64(retries))
			if err != nil {
				return
			}
			r.forwarded.Add(int64(len(updates)))
		}(t)
	}
	wg.Wait()
	r.forwardHist.Observe(time.Since(start))
	w.WriteHeader(http.StatusNoContent)
}
