package cluster

import (
	"sync"

	"beyondcache/internal/obs"
)

// flightGroup collapses duplicate in-flight work for the same key: the
// first caller (the leader) runs the function, everyone else arriving
// before it finishes blocks and shares the result. The paper's second
// design principle — do not slow down misses — is why this exists: without
// it a burst of concurrent requests for one uncached object pays one origin
// round trip per request (thundering herd) instead of one per object. The
// same mechanism coalesces digest-snapshot builds: N concurrent GET
// /digest scrapes marshal the filter once, not N times.
//
// This is a minimal purpose-built singleflight (the repository takes no
// dependencies beyond the standard library). Results are not cached: the
// entry is removed before waiters are released, so a fill that completes
// and is then invalidated cannot be re-served to later arrivals.
type flightGroup[T any] struct {
	mu sync.Mutex
	m  map[string]*flight[T]
}

// flight is one in-progress call.
type flight[T any] struct {
	done chan struct{}
	out  T
}

// fetchOutcome is what a fill produces: how it was served (REMOTE, MISS,
// "MISS,STALE-HINT", or LOCAL when the leader found the object already
// cached), the object version and body, or an error. hops are the upstream
// trace segments the fill accumulated (peer probes, origin round trips);
// they are shared read-only by every request coalesced onto the fill, so
// consumers must copy before appending.
type fetchOutcome struct {
	how     string
	version int64
	body    []byte
	hops    []obs.Hop
	err     error
}

// do runs fn for key, collapsing concurrent calls: exactly one caller
// executes fn; the rest wait and share its outcome. shared reports whether
// the caller was a waiter rather than the leader.
func (g *flightGroup[T]) do(key string, fn func() T) (out T, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight[T])
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-f.done
		return f.out, true
	}
	f := &flight[T]{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.out = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.out, false
}
