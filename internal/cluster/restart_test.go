package cluster

import (
	"fmt"
	"testing"
	"time"

	"beyondcache/internal/obs"
)

// TestRestartRecoveryFleet is the end-to-end restart contract: a 3-node
// fleet, node 0 carrying a disk tier, filled past its memory budget so part
// of its population lives only on disk. After a restart with the same cache
// dir, (a) node 0 serves its whole pre-restart population locally without a
// single origin refetch, (b) peers resolve hinted fetches against the
// recovered population, and (c) hint_directory_lag_objects re-converges to
// zero once the recovery republish has flushed.
func TestRestartRecoveryFleet(t *testing.T) {
	const (
		objects    = 20
		objectSize = 1024
	)
	f, err := StartFleet(FleetConfig{
		Nodes:          3,
		ObjectSize:     objectSize,
		UpdateInterval: time.Hour, // hints move only on explicit FlushAll
		// Memory holds 6 objects (one shard, so the budget is not
		// split); the rest of the population must survive on disk alone.
		CacheBytes:  6 * objectSize,
		CacheShards: 1,
		CacheDirs:   []string{t.TempDir()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	url := func(i int) string { return fmt.Sprintf("http://example.com/restart/%d", i) }

	// Fill node 0 past its memory budget.
	for i := 0; i < objects; i++ {
		r, err := f.Fetch(0, url(i))
		if err != nil {
			t.Fatal(err)
		}
		if !r.Miss() {
			t.Fatalf("fill fetch %d served %s, want a miss", i, r.How)
		}
	}
	f.Nodes[0].tier.Flush() // all evictions on disk before we measure
	f.FlushAll()            // peers learn node 0's population

	// Pre-restart baseline: the whole population is a local hit (memory
	// or disk) and a peer resolves it cache-to-cache.
	localBefore := 0
	for i := 0; i < objects; i++ {
		r, err := f.Fetch(0, url(i))
		if err != nil {
			t.Fatal(err)
		}
		if r.Local() {
			localBefore++
		}
	}
	if localBefore != objects {
		t.Fatalf("pre-restart local hits = %d/%d", localBefore, objects)
	}
	if r, err := f.Fetch(1, url(0)); err != nil || !r.Remote() {
		t.Fatalf("pre-restart peer fetch = %v, %v; want REMOTE", r.How, err)
	}

	originBefore := f.Origin.Fetches()

	// Restart node 0 on the same address and cache dir, and wait out the
	// recovery scan (which republishes the recovered population).
	if err := f.RestartNode(0); err != nil {
		t.Fatal(err)
	}
	f.Nodes[0].WaitRecovery()
	rec := f.Nodes[0].RecoveryStats()
	if rec.Objects < objects {
		t.Fatalf("recovered %d objects, want >= %d", rec.Objects, objects)
	}
	if rec.Duration <= 0 {
		t.Error("recovery duration not measured")
	}

	// The restarted node serves its entire pre-restart population locally
	// — the >= 90%-of-pre-restart-hit-rate acceptance bar, met at 100% —
	// without touching the origin.
	localAfter, diskServed := 0, 0
	for i := 0; i < objects; i++ {
		r, err := f.Fetch(0, url(i))
		if err != nil {
			t.Fatal(err)
		}
		if r.Local() {
			localAfter++
		}
		if r.How == "LOCAL-DISK" {
			diskServed++
		}
	}
	if threshold := (localBefore * 9) / 10; localAfter < threshold {
		t.Fatalf("post-restart local hits = %d/%d, want >= %d (90%% of pre-restart)",
			localAfter, objects, threshold)
	}
	if diskServed == 0 {
		t.Error("no post-restart fetch was served from the disk tier")
	}
	if got := f.Origin.Fetches(); got != originBefore {
		t.Fatalf("origin refetched during recovery: %d fetches, was %d", got, originBefore)
	}

	// Peers resolve hinted fetches against the recovered population. Their
	// hints survived the restart (same machine ID); the republish keeps
	// newly learned peers working too.
	for _, peer := range []int{1, 2} {
		r, err := f.Fetch(peer, url(7+peer))
		if err != nil {
			t.Fatal(err)
		}
		if !r.Remote() {
			t.Errorf("peer %d fetch served %s, want REMOTE from recovered node", peer, r.How)
		}
	}

	// The recovery republish drains: directory lag re-converges to zero
	// after a flush round.
	f.FlushAll()
	p, err := obs.ParseExposition(f.Nodes[0].Metrics().String())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := p.Value("beyondcache_hint_directory_lag_objects"); !ok || v != 0 {
		t.Errorf("hint_directory_lag_objects = %v after flush, want 0", v)
	}
	if v, _ := p.Value("beyondcache_store_recovery_objects"); v < objects {
		t.Errorf("store_recovery_objects = %v, want >= %d", v, objects)
	}
}

// TestRestartRecoveryRepublishReachesNewPeer: a peer whose hint table is
// EMPTY (restarted after node 0 filled, so it never saw the original
// informs) learns the recovered population purely from the boot republish.
func TestRestartRecoveryRepublishReachesNewPeer(t *testing.T) {
	f, err := StartFleet(FleetConfig{
		Nodes:          2,
		ObjectSize:     512,
		UpdateInterval: time.Hour,
		CacheBytes:     1024, // two objects in memory, rest on disk
		CacheShards:    1,
		CacheDirs:      []string{t.TempDir()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const objects = 8
	const pads = 2 // evict the last measured objects out of memory onto disk
	url := func(i int) string { return fmt.Sprintf("http://example.com/repub/%d", i) }
	for i := 0; i < objects+pads; i++ {
		if _, err := f.Fetch(0, url(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Deliver the fill-time informs to the OLD node 1 now, so the boot
	// republish — not node 0's shutdown flush of a still-pending queue —
	// is what teaches the new node 1 below.
	f.FlushAll()
	// Drop the pre-restart informs on the floor: restart node 1 (memory
	// only, no disk) so its hint table is empty.
	if err := f.RestartNode(1); err != nil {
		t.Fatal(err)
	}
	// Restart node 0; its boot republish re-advertises everything it
	// recovered. One flush round later the fresh node 1 resolves the
	// population cache-to-cache.
	if err := f.RestartNode(0); err != nil {
		t.Fatal(err)
	}
	f.Nodes[0].WaitRecovery()
	f.FlushAll()

	remote := 0
	for i := 0; i < objects; i++ {
		r, err := f.Fetch(1, url(i))
		if err != nil {
			t.Fatal(err)
		}
		if r.Remote() {
			remote++
		}
	}
	if remote != objects {
		t.Fatalf("peer resolved %d/%d recovered objects cache-to-cache", remote, objects)
	}
	if got := f.Origin.Fetches(); got != objects+pads {
		t.Errorf("origin fetches = %d, want %d (fill only; recovery must not refetch)", got, objects+pads)
	}
}
