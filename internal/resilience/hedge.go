package resilience

import (
	"context"
	"time"
)

// Winner says how a Race resolved.
type Winner int

const (
	// PrimaryWon: the primary succeeded (the hedge, if it started, was
	// canceled).
	PrimaryWon Winner = iota
	// FallbackWon: the hedge fired and the fallback succeeded while the
	// primary was still in flight — the primary was abandoned (the
	// paper: a cache-to-cache transfer must beat the origin or be
	// abandoned).
	FallbackWon
	// FallbackAfterPrimary: the primary failed outright and the
	// fallback succeeded — the classic stale-hint fall-through.
	FallbackAfterPrimary
	// BothFailed: no path produced a result.
	BothFailed
)

// RaceResult is the outcome of a hedged race.
type RaceResult[T any] struct {
	Value  T
	Winner Winner
	// Hedged reports whether the fallback was launched by the budget
	// timer while the primary was still in flight (as opposed to
	// sequentially after a primary error).
	Hedged bool
	// PrimaryErr is the primary's error when it completed with one.
	PrimaryErr error
	// Err is the terminal error, set only when Winner is BothFailed.
	Err error
}

// Race runs primary and, if it has not succeeded within budget, races the
// fallback against it, returning the first success (the loser's context
// is canceled). A primary failure before the budget fires starts the
// fallback immediately. A negative budget disables hedging entirely: the
// fallback runs only after the primary fails, sequentially — the
// pre-resilience behavior, kept for comparison benchmarks.
//
// The node's hedged miss path is this function with primary = hinted-peer
// fetch and fallback = origin fetch.
func Race[T any](ctx context.Context, budget time.Duration, primary, fallback func(context.Context) (T, error)) RaceResult[T] {
	if budget < 0 {
		v, err := primary(ctx)
		if err == nil {
			return RaceResult[T]{Value: v, Winner: PrimaryWon}
		}
		fv, ferr := fallback(ctx)
		if ferr == nil {
			return RaceResult[T]{Value: fv, Winner: FallbackAfterPrimary, PrimaryErr: err}
		}
		return RaceResult[T]{Winner: BothFailed, PrimaryErr: err, Err: ferr}
	}

	type res struct {
		v   T
		err error
	}
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	fctx, fcancel := context.WithCancel(ctx)
	defer fcancel()

	pch := make(chan res, 1)
	go func() {
		v, err := primary(pctx)
		pch <- res{v, err}
	}()

	timer := time.NewTimer(budget)
	defer timer.Stop()

	var (
		fch          chan res
		hedged       bool
		primaryErr   error
		primaryDone  bool
		fallbackErr  error
		fallbackDead bool
	)
	startFallback := func() {
		fch = make(chan res, 1)
		go func() {
			v, err := fallback(fctx)
			fch <- res{v, err}
		}()
	}

	for {
		select {
		case r := <-pch:
			primaryDone = true
			pch = nil
			if r.err == nil {
				fcancel() // abandon the hedge, if any
				return RaceResult[T]{Value: r.v, Winner: PrimaryWon, Hedged: hedged}
			}
			primaryErr = r.err
			if fallbackDead {
				return RaceResult[T]{Winner: BothFailed, Hedged: hedged, PrimaryErr: primaryErr, Err: fallbackErr}
			}
			if fch == nil {
				startFallback() // sequential fall-through
			}
		case <-timer.C:
			if !primaryDone && fch == nil {
				hedged = true
				startFallback()
			}
		case r := <-fch:
			if r.err == nil {
				pcancel() // abandon the primary, if still running
				w := FallbackWon
				if primaryDone {
					w = FallbackAfterPrimary
				}
				return RaceResult[T]{Value: r.v, Winner: w, Hedged: hedged, PrimaryErr: primaryErr}
			}
			if primaryDone {
				return RaceResult[T]{Winner: BothFailed, Hedged: hedged, PrimaryErr: primaryErr, Err: r.err}
			}
			// The fallback died first; the primary is still in flight
			// and is now the only hope.
			fallbackErr, fallbackDead = r.err, true
			fch = nil
		}
	}
}
