// Package resilience is the prototype's failure-handling toolkit: per-peer
// circuit breakers, exponential backoff with jitter for retryable metadata
// operations, and a hedged race for the data path. It exists to enforce the
// paper's design principles under faults — a stale hint pointing at a dead
// or slow peer must never make a request slower than going straight to the
// origin (principles 1–2: minimize hops, do not slow down misses).
package resilience

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// Closed: requests flow; outcomes feed the failure window.
	Closed BreakerState = iota
	// Open: requests are refused outright until the cooldown elapses.
	Open
	// HalfOpen: a bounded number of probes may test the target; one
	// success closes the breaker, one failure reopens it.
	HalfOpen
)

// String renders the state for logs and metric labels.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig parameterizes a Breaker. The zero value picks defaults.
type BreakerConfig struct {
	// Window is how many recent outcomes feed the failure rate
	// (<= 0 means 10).
	Window int
	// FailureThreshold opens the breaker when the windowed failure
	// rate reaches it (<= 0 means 0.5; > 1 never opens — tests use
	// that to disable breaking without a separate code path).
	FailureThreshold float64
	// MinSamples is the fewest outcomes before the rate is trusted
	// (<= 0 means 3).
	MinSamples int
	// Cooldown is how long an open breaker refuses before allowing
	// half-open probes (<= 0 means 5s).
	Cooldown time.Duration
	// HalfOpenProbes bounds concurrent half-open probes (<= 0 means 1).
	HalfOpenProbes int

	// now overrides the clock (tests).
	now func() time.Time
}

func (c *BreakerConfig) defaults() {
	if c.Window <= 0 {
		c.Window = 10
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// BreakerStats is a snapshot of one breaker.
type BreakerStats struct {
	State       BreakerState `json:"state"`
	Failures    int64        `json:"failures"`
	Successes   int64        `json:"successes"`
	Transitions int64        `json:"transitions"`
	Refusals    int64        `json:"refusals"`
}

// Breaker is a closed/open/half-open circuit breaker over a sliding
// window of recent outcomes. Allow asks permission before an operation;
// Record reports how it went. All methods are safe for concurrent use.
type Breaker struct {
	mu  sync.Mutex
	cfg BreakerConfig

	// window is a ring of recent outcomes (true = failure).
	window []bool
	head   int
	filled int

	state    BreakerState
	openedAt time.Time
	probes   int // in-flight half-open probes

	failures    int64
	successes   int64
	transitions int64
	refusals    int64
}

// NewBreaker builds a breaker in the closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg.defaults()
	return &Breaker{cfg: cfg, window: make([]bool, cfg.Window)}
}

// Allow reports whether an operation may proceed now. An open breaker
// whose cooldown has elapsed moves to half-open and admits a bounded
// number of probes; refusals are counted.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.refusals++
			return false
		}
		b.setState(HalfOpen)
		b.probes = 1
		return true
	default: // HalfOpen
		if b.probes < b.cfg.HalfOpenProbes {
			b.probes++
			return true
		}
		b.refusals++
		return false
	}
}

// Record reports an operation's outcome. In the closed state failures
// accumulate in the window and open the breaker once the failure rate
// reaches the threshold (with enough samples); in half-open, one success
// closes the breaker and one failure reopens it for a fresh cooldown.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.successes++
	} else {
		b.failures++
	}
	switch b.state {
	case HalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if ok {
			b.setState(Closed)
			b.resetWindow()
		} else {
			b.setState(Open)
			b.openedAt = b.cfg.now()
		}
	case Open:
		// A straggler from before the trip; the window restarts when
		// the breaker closes, so ignore it.
	default: // Closed
		b.push(!ok)
		if b.filled >= b.cfg.MinSamples && b.rate() >= b.cfg.FailureThreshold {
			b.setState(Open)
			b.openedAt = b.cfg.now()
		}
	}
}

// State returns the breaker's current position without mutating it.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats snapshots the breaker's counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:       b.state,
		Failures:    b.failures,
		Successes:   b.successes,
		Transitions: b.transitions,
		Refusals:    b.refusals,
	}
}

func (b *Breaker) setState(s BreakerState) {
	if b.state != s {
		b.state = s
		b.transitions++
	}
}

func (b *Breaker) push(failure bool) {
	b.window[b.head] = failure
	b.head = (b.head + 1) % len(b.window)
	if b.filled < len(b.window) {
		b.filled++
	}
}

func (b *Breaker) rate() float64 {
	if b.filled == 0 {
		return 0
	}
	n := 0
	for i := 0; i < b.filled; i++ {
		if b.window[i] {
			n++
		}
	}
	return float64(n) / float64(b.filled)
}

func (b *Breaker) resetWindow() {
	b.head, b.filled = 0, 0
}

// BreakerSet is a keyed collection of breakers sharing one config — one
// breaker per peer, created on first use (or eagerly via Get).
type BreakerSet struct {
	mu  sync.Mutex
	cfg BreakerConfig
	m   map[string]*Breaker
}

// NewBreakerSet builds an empty set whose breakers use cfg.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	cfg.defaults()
	return &BreakerSet{cfg: cfg, m: make(map[string]*Breaker)}
}

// Get returns the breaker for key, creating it (closed) if needed.
func (s *BreakerSet) Get(key string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[key]
	if !ok {
		b = NewBreaker(s.cfg)
		s.m[key] = b
	}
	return b
}

// Snapshot returns per-key breaker stats.
func (s *BreakerSet) Snapshot() map[string]BreakerStats {
	s.mu.Lock()
	keys := make([]*Breaker, 0, len(s.m))
	names := make([]string, 0, len(s.m))
	for k, b := range s.m {
		names = append(names, k)
		keys = append(keys, b)
	}
	s.mu.Unlock()
	out := make(map[string]BreakerStats, len(names))
	for i, k := range names {
		out[k] = keys[i].Stats()
	}
	return out
}
