package resilience

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Backoff computes exponential retry delays with jitter: attempt i waits
// roughly Base * Factor^i, capped at Max, scaled by a uniform factor in
// [0.5, 1.0) drawn from a seeded source (deterministic under a fixed seed
// and call order; the half-range keeps delays meaningful while decorrelating
// synchronized retriers — the same argument the hint batcher's jittered
// interval makes, citing Floyd & Jacobson).
type Backoff struct {
	base   time.Duration
	max    time.Duration
	factor float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewBackoff builds a backoff; base <= 0 means 25ms, max <= 0 means 1s,
// factor <= 1 means 2.
func NewBackoff(base, max time.Duration, factor float64, seed int64) *Backoff {
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	if factor <= 1 {
		factor = 2
	}
	return &Backoff{base: base, max: max, factor: factor, rng: rand.New(rand.NewSource(seed))}
}

// Delay returns the jittered delay before retry attempt i (0-based: the
// delay between the first failure and the second try).
func (b *Backoff) Delay(attempt int) time.Duration {
	d := float64(b.base)
	for i := 0; i < attempt; i++ {
		d *= b.factor
		if d >= float64(b.max) {
			d = float64(b.max)
			break
		}
	}
	b.mu.Lock()
	f := 0.5 + 0.5*b.rng.Float64()
	b.mu.Unlock()
	return time.Duration(d * f)
}

// Retry runs fn up to attempts times, sleeping the jittered backoff
// between tries. It returns how many retries were spent (0 when the first
// try succeeded) and the last error (nil on success). The context cancels
// both the sleeps and further attempts; fn itself is responsible for
// honoring ctx if it blocks.
func (b *Backoff) Retry(ctx context.Context, attempts int, fn func() error) (retries int, err error) {
	if attempts < 1 {
		attempts = 1
	}
	for i := 0; i < attempts; i++ {
		if err = fn(); err == nil {
			return i, nil
		}
		if i == attempts-1 {
			break
		}
		t := time.NewTimer(b.Delay(i))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return i, err
		}
		t.Stop()
	}
	return attempts - 1, err
}
