package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable clock for breaker cooldown tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testBreaker(cfg BreakerConfig, clk *fakeClock) *Breaker {
	cfg.now = clk.now
	return NewBreaker(cfg)
}

func TestBreakerOpensOnFailureRate(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := testBreaker(BreakerConfig{Window: 4, FailureThreshold: 0.5, MinSamples: 2, Cooldown: time.Second}, clk)

	if b.State() != Closed || !b.Allow() {
		t.Fatal("new breaker not closed/allowing")
	}
	b.Record(true)
	b.Record(false)
	// 1 failure in 2 samples = 0.5 >= threshold: open.
	if b.State() != Open {
		t.Fatalf("state after threshold = %v, want open", b.State())
	}
	if b.Allow() {
		t.Error("open breaker allowed a request before cooldown")
	}
	st := b.Stats()
	if st.Refusals != 1 || st.Transitions != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := testBreaker(BreakerConfig{Window: 4, MinSamples: 2, Cooldown: time.Second, HalfOpenProbes: 1}, clk)
	b.Record(false)
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}

	clk.advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe refused")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Error("second concurrent half-open probe allowed")
	}
	// Probe succeeds: closed, with a fresh window (one failure must not
	// re-open it).
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	b.Record(false)
	if b.State() != Closed {
		t.Error("single failure after recovery re-opened the breaker (window not reset)")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := testBreaker(BreakerConfig{MinSamples: 2, Cooldown: time.Second}, clk)
	b.Record(false)
	b.Record(false)
	clk.advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	// The cooldown restarts from the failed probe.
	clk.advance(500 * time.Millisecond)
	if b.Allow() {
		t.Error("reopened breaker allowed before the fresh cooldown elapsed")
	}
}

func TestBreakerThresholdAboveOneNeverOpens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := testBreaker(BreakerConfig{FailureThreshold: 2}, clk)
	for i := 0; i < 50; i++ {
		b.Record(false)
	}
	if b.State() != Closed || !b.Allow() {
		t.Errorf("breaker with threshold > 1 opened: %v", b.State())
	}
}

func TestBreakerSet(t *testing.T) {
	s := NewBreakerSet(BreakerConfig{MinSamples: 1, FailureThreshold: 0.5})
	a := s.Get("peerA")
	if s.Get("peerA") != a {
		t.Error("Get returned a different breaker for the same key")
	}
	a.Record(false)
	snap := s.Snapshot()
	if snap["peerA"].State != Open {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestBackoffGrowthCapAndJitter(t *testing.T) {
	b := NewBackoff(100*time.Millisecond, 400*time.Millisecond, 2, 7)
	for attempt, full := range []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		400 * time.Millisecond, // capped
		400 * time.Millisecond,
	} {
		d := b.Delay(attempt)
		if d < full/2 || d > full {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, d, full/2, full)
		}
	}
}

func TestBackoffDeterministicUnderSeed(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		b := NewBackoff(10*time.Millisecond, time.Second, 2, seed)
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = b.Delay(i)
		}
		return out
	}
	a, b := seq(3), seq(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRetryCountsAndStops(t *testing.T) {
	b := NewBackoff(time.Millisecond, 2*time.Millisecond, 2, 1)
	calls := 0
	retries, err := b.Retry(context.Background(), 3, func() error {
		calls++
		if calls < 3 {
			return errors.New("flaky")
		}
		return nil
	})
	if err != nil || retries != 2 || calls != 3 {
		t.Errorf("retries=%d calls=%d err=%v", retries, calls, err)
	}

	calls = 0
	fail := errors.New("always")
	retries, err = b.Retry(context.Background(), 3, func() error { calls++; return fail })
	if !errors.Is(err, fail) || retries != 2 || calls != 3 {
		t.Errorf("exhausted: retries=%d calls=%d err=%v", retries, calls, err)
	}

	// Context cancellation stops the retry loop during the sleep.
	slow := NewBackoff(time.Hour, time.Hour, 2, 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := slow.Retry(ctx, 5, func() error { return fail })
		if !errors.Is(err, fail) {
			t.Errorf("canceled retry err = %v", err)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Retry did not honor context cancellation")
	}
}

func TestRacePrimaryWins(t *testing.T) {
	r := Race(context.Background(), 50*time.Millisecond,
		func(ctx context.Context) (string, error) { return "peer", nil },
		func(ctx context.Context) (string, error) { t.Error("fallback ran"); return "", nil })
	if r.Winner != PrimaryWon || r.Value != "peer" || r.Hedged {
		t.Errorf("result = %+v", r)
	}
}

func TestRaceHedgeFiresAndFallbackWins(t *testing.T) {
	primaryCanceled := make(chan struct{})
	r := Race(context.Background(), 10*time.Millisecond,
		func(ctx context.Context) (string, error) {
			<-ctx.Done() // a blackholed peer: never answers
			close(primaryCanceled)
			return "", ctx.Err()
		},
		func(ctx context.Context) (string, error) { return "origin", nil })
	if r.Winner != FallbackWon || r.Value != "origin" || !r.Hedged {
		t.Errorf("result = %+v", r)
	}
	select {
	case <-primaryCanceled:
	case <-time.After(2 * time.Second):
		t.Error("losing primary was not canceled")
	}
}

func TestRaceSequentialFallbackOnPrimaryError(t *testing.T) {
	boom := errors.New("peer refused")
	r := Race(context.Background(), time.Hour,
		func(ctx context.Context) (string, error) { return "", boom },
		func(ctx context.Context) (string, error) { return "origin", nil })
	if r.Winner != FallbackAfterPrimary || r.Value != "origin" || r.Hedged || !errors.Is(r.PrimaryErr, boom) {
		t.Errorf("result = %+v", r)
	}
}

func TestRaceBothFail(t *testing.T) {
	p, f := errors.New("p"), errors.New("f")
	r := Race(context.Background(), time.Millisecond,
		func(ctx context.Context) (string, error) {
			time.Sleep(20 * time.Millisecond)
			return "", p
		},
		func(ctx context.Context) (string, error) { return "", f })
	if r.Winner != BothFailed || !errors.Is(r.PrimaryErr, p) || !errors.Is(r.Err, f) {
		t.Errorf("result = %+v", r)
	}
}

func TestRaceNegativeBudgetIsSequential(t *testing.T) {
	var fallbackStarted time.Time
	primaryDone := make(chan time.Time, 1)
	boom := errors.New("down")
	r := Race(context.Background(), -1,
		func(ctx context.Context) (string, error) {
			time.Sleep(20 * time.Millisecond)
			primaryDone <- time.Now()
			return "", boom
		},
		func(ctx context.Context) (string, error) {
			fallbackStarted = time.Now()
			return "origin", nil
		})
	if r.Winner != FallbackAfterPrimary || r.Value != "origin" || r.Hedged {
		t.Errorf("result = %+v", r)
	}
	if fallbackStarted.Before(<-primaryDone) {
		t.Error("negative budget still hedged: fallback started before primary finished")
	}
}
