// Package digest implements Bloom-filter cache digests (Fan et al.'s
// Summary Cache / Squid's Cache Digests, contemporaries of the paper): each
// cache summarizes its contents in a compact bit vector that peers consult
// instead of an exact hint table. Digests trade the paper's 16-byte-exact
// hint records for a few bits per object — at the price of hash false
// positives and, because plain Bloom filters cannot delete, growing
// staleness between periodic rebuilds.
//
// The library provides the filter itself; internal/hints integrates it as
// an alternative metadata scheme so the two designs can be compared under
// identical workloads.
package digest

import (
	"fmt"
	"math"
)

// Filter is a Bloom filter over 64-bit object identifiers. The zero value
// is not usable; call New.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    int    // number of hash functions
	n    int64  // insertions since last reset
}

// New builds a filter with m bits and k hash functions. m is rounded up to
// a multiple of 64.
func New(m uint64, k int) (*Filter, error) {
	if m == 0 {
		return nil, fmt.Errorf("digest: filter needs at least one bit")
	}
	if k < 1 || k > 16 {
		return nil, fmt.Errorf("digest: k must be in [1,16], got %d", k)
	}
	words := (m + 63) / 64
	return &Filter{
		bits: make([]uint64, words),
		m:    words * 64,
		k:    k,
	}, nil
}

// NewForCapacity sizes a filter for n entries at bitsPerEntry bits each,
// with the optimal hash count k = bitsPerEntry * ln2.
func NewForCapacity(n int, bitsPerEntry float64) (*Filter, error) {
	if n < 1 {
		return nil, fmt.Errorf("digest: capacity must be positive, got %d", n)
	}
	if bitsPerEntry <= 0 {
		return nil, fmt.Errorf("digest: bitsPerEntry must be positive, got %g", bitsPerEntry)
	}
	m := uint64(math.Ceil(float64(n) * bitsPerEntry))
	k := int(math.Round(bitsPerEntry * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return New(m, k)
}

// splitmix64 is the hash kernel used to derive the k probe positions.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// probe returns the bit position of the i-th hash of id (double hashing).
func (f *Filter) probe(id uint64, i int) uint64 {
	h1 := splitmix64(id)
	h2 := splitmix64(id ^ 0x5bd1e9955bd1e995)
	return (h1 + uint64(i)*h2) % f.m
}

// Add inserts an identifier.
func (f *Filter) Add(id uint64) {
	for i := 0; i < f.k; i++ {
		p := f.probe(id, i)
		f.bits[p/64] |= 1 << (p % 64)
	}
	f.n++
}

// MayContain reports whether the identifier might be present. False
// positives are possible; false negatives are not (for identifiers Added
// since the last Reset).
func (f *Filter) MayContain(id uint64) bool {
	for i := 0; i < f.k; i++ {
		p := f.probe(id, i)
		if f.bits[p/64]&(1<<(p%64)) == 0 {
			return false
		}
	}
	return true
}

// Reset clears the filter (a digest rebuild starts here).
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n = 0
}

// Bits returns the filter size in bits.
func (f *Filter) Bits() uint64 { return f.m }

// SizeBytes returns the wire/storage size of the filter.
func (f *Filter) SizeBytes() int64 { return int64(f.m / 8) }

// K returns the hash count.
func (f *Filter) K() int { return f.k }

// Insertions returns the number of Adds since the last Reset.
func (f *Filter) Insertions() int64 { return f.n }

// FillRatio returns the fraction of set bits.
func (f *Filter) FillRatio() float64 {
	var set int
	for _, w := range f.bits {
		set += popcount(w)
	}
	return float64(set) / float64(f.m)
}

// EstimatedFPR returns the expected false-positive rate at the current
// fill: fill^k.
func (f *Filter) EstimatedFPR() float64 {
	return math.Pow(f.FillRatio(), float64(f.k))
}

func popcount(x uint64) int {
	// Kernighan's loop is plenty for stats-path use.
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
