package digest

import (
	"encoding/binary"
	"fmt"
)

// Wire format: 8-byte bit count, 4-byte hash count, then the filter words
// little-endian. Digests travel whole (Squid transfers complete digests on
// the order of once an hour), so the format favors simplicity over deltas.

// headerSize is the marshaled header length in bytes.
const headerSize = 12

// MarshalBinary encodes the filter.
func (f *Filter) MarshalBinary() ([]byte, error) {
	out := make([]byte, headerSize+len(f.bits)*8)
	binary.LittleEndian.PutUint64(out[0:8], f.m)
	binary.LittleEndian.PutUint32(out[8:12], uint32(f.k))
	for i, w := range f.bits {
		binary.LittleEndian.PutUint64(out[headerSize+i*8:], w)
	}
	return out, nil
}

// UnmarshalBinary decodes a filter, replacing the receiver's contents.
func (f *Filter) UnmarshalBinary(data []byte) error {
	if len(data) < headerSize {
		return fmt.Errorf("digest: message too short (%d bytes)", len(data))
	}
	m := binary.LittleEndian.Uint64(data[0:8])
	k := int(binary.LittleEndian.Uint32(data[8:12]))
	if k < 1 || k > 16 {
		return fmt.Errorf("digest: bad hash count %d", k)
	}
	if m == 0 || m%64 != 0 {
		return fmt.Errorf("digest: bad bit count %d", m)
	}
	words := int(m / 64)
	if len(data) != headerSize+words*8 {
		return fmt.Errorf("digest: length %d does not match %d bits", len(data), m)
	}
	bits := make([]uint64, words)
	for i := range bits {
		bits[i] = binary.LittleEndian.Uint64(data[headerSize+i*8:])
	}
	f.bits = bits
	f.m = m
	f.k = k
	f.n = 0 // unknown after transfer; only stats are affected
	return nil
}

// Decode parses a marshaled filter into a fresh Filter.
func Decode(data []byte) (*Filter, error) {
	f := &Filter{}
	if err := f.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return f, nil
}
