package digest

import (
	"encoding/binary"
	"fmt"
)

// Wire format: 8-byte bit count, 4-byte hash count, then the filter words
// little-endian. The encoder is append-based so callers that reuse a
// marshal buffer (the cluster's cached digest snapshot, the simulator's
// transfer accounting) pay zero allocations per encode once the buffer has
// grown to the filter's size.

// headerSize is the marshaled header length in bytes.
const headerSize = 12

// AppendBinary encodes the filter onto dst and returns the extended slice.
func (f *Filter) AppendBinary(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, f.m)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.k))
	need := len(dst) + len(f.bits)*8
	if cap(dst) < need {
		grown := make([]byte, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	for _, w := range f.bits {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// MarshalBinary encodes the filter into a fresh buffer.
func (f *Filter) MarshalBinary() ([]byte, error) {
	return f.AppendBinary(make([]byte, 0, headerSize+len(f.bits)*8)), nil
}

// UnmarshalBinary decodes a filter, replacing the receiver's contents. The
// receiver's word slice is reused when its capacity suffices, so a peer
// slot that re-pulls a same-sized digest decodes allocation-free.
func (f *Filter) UnmarshalBinary(data []byte) error {
	if len(data) < headerSize {
		return fmt.Errorf("digest: message too short (%d bytes)", len(data))
	}
	m := binary.LittleEndian.Uint64(data[0:8])
	k := int(binary.LittleEndian.Uint32(data[8:12]))
	if k < 1 || k > 16 {
		return fmt.Errorf("digest: bad hash count %d", k)
	}
	if m == 0 || m%64 != 0 {
		return fmt.Errorf("digest: bad bit count %d", m)
	}
	words := int(m / 64)
	if len(data) != headerSize+words*8 {
		return fmt.Errorf("digest: length %d does not match %d bits", len(data), m)
	}
	bits := f.bits
	if cap(bits) < words {
		bits = make([]uint64, words)
	}
	bits = bits[:words]
	for i := range bits {
		bits[i] = binary.LittleEndian.Uint64(data[headerSize+i*8:])
	}
	f.bits = bits
	f.m = m
	f.k = k
	f.n = 0 // unknown after transfer; only stats are affected
	return nil
}

// UnmarshalFilter decodes a plain-filter encoding (the Filter wire layout
// above) into the counting filter, widening each bit into a counter of 0
// or 1. Filter and Counting probe identical positions for equal m, so the
// widened copy answers MayContain exactly as the source filter would —
// this is how a puller absorbs a digest from a peer that predates the
// counting wire format.
func (c *Counting) UnmarshalFilter(data []byte) error {
	if len(data) < headerSize {
		return fmt.Errorf("digest: message too short (%d bytes)", len(data))
	}
	m := binary.LittleEndian.Uint64(data[0:8])
	k := int(binary.LittleEndian.Uint32(data[8:12]))
	if k < 1 || k > 16 {
		return fmt.Errorf("digest: bad hash count %d", k)
	}
	if m == 0 || m%64 != 0 {
		return fmt.Errorf("digest: bad bit count %d", m)
	}
	// Derive the word count from the body length, not m, so an absurd m
	// cannot overflow the expected-length arithmetic.
	if (len(data)-headerSize)%8 != 0 || m/64 != uint64(len(data)-headerSize)/8 {
		return fmt.Errorf("digest: length %d does not match %d bits", len(data), m)
	}
	counts := c.counts
	if uint64(cap(counts)) < m {
		counts = make([]uint8, m)
	}
	counts = counts[:m]
	for w := uint64(0); w < m/64; w++ {
		word := binary.LittleEndian.Uint64(data[headerSize+w*8:])
		for b := uint64(0); b < 64; b++ {
			counts[w*64+b] = uint8(word >> b & 1)
		}
	}
	c.counts = counts
	c.m = m
	c.k = k
	c.n = 0 // unknown after transfer; only stats are affected
	c.unsound = false
	return nil
}

// Decode parses a marshaled filter into a fresh Filter.
func Decode(data []byte) (*Filter, error) {
	f := &Filter{}
	if err := f.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return f, nil
}
