package digest

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Counting is a counting Bloom filter over 64-bit object identifiers: one
// saturating uint8 counter per position instead of one bit. Counters buy
// what the cluster's incremental digests need and a plain Filter cannot
// give: deletion. The node maintains its own Counting in place on every
// insert/evict transition (no more O(objects) rebuild per GET /digest), and
// peers replay the same add/remove op stream against their pulled copies —
// counters, and therefore membership bits, stay byte-identical to the
// owner's by construction (the delta-equivalence contract, DESIGN.md §13).
//
// Saturation is the scheme's known edge (Fan et al. analyze 4-bit counters;
// overflow probability at 8 bits is negligible): a counter stuck at 255 can
// no longer decrement soundly, so the filter flags itself unsound and the
// owner rebuilds from its exact resident set, invalidating delta cursors.
type Counting struct {
	counts []uint8
	m      uint64 // number of counters
	k      int    // number of hash functions
	n      int64  // live insertions (adds minus removes)
	// unsound is set when a counter saturates (or an unmatched remove
	// hits zero): membership answers may now have false negatives, so
	// the owner must rebuild from exact state.
	unsound bool
}

// counterMax is the saturation ceiling of one counter.
const counterMax = 0xff

// NewCounting builds a counting filter with m counters and k hash
// functions. m is rounded up to a multiple of 64 so a Counting and a Filter
// sized by the same parameters probe identical positions.
func NewCounting(m uint64, k int) (*Counting, error) {
	if m == 0 {
		return nil, fmt.Errorf("digest: counting filter needs at least one counter")
	}
	if k < 1 || k > 16 {
		return nil, fmt.Errorf("digest: k must be in [1,16], got %d", k)
	}
	m = (m + 63) / 64 * 64
	return &Counting{counts: make([]uint8, m), m: m, k: k}, nil
}

// NewCountingForCapacity sizes a counting filter for n entries at
// bitsPerEntry counters each, with the optimal hash count
// k = bitsPerEntry * ln2 — the same geometry as NewForCapacity, spending a
// byte where the plain filter spends a bit.
func NewCountingForCapacity(n int, bitsPerEntry float64) (*Counting, error) {
	if n < 1 {
		return nil, fmt.Errorf("digest: capacity must be positive, got %d", n)
	}
	if bitsPerEntry <= 0 {
		return nil, fmt.Errorf("digest: bitsPerEntry must be positive, got %g", bitsPerEntry)
	}
	m := uint64(math.Ceil(float64(n) * bitsPerEntry))
	k := int(math.Round(bitsPerEntry * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return NewCounting(m, k)
}

// probe returns the counter position of the i-th hash of id (double
// hashing, identical to Filter.probe).
func (c *Counting) probe(id uint64, i int) uint64 {
	h1 := splitmix64(id)
	h2 := splitmix64(id ^ 0x5bd1e9955bd1e995)
	return (h1 + uint64(i)*h2) % c.m
}

// Add inserts an identifier, saturating counters at 255. Saturation marks
// the filter unsound (a later Remove could not be applied exactly).
func (c *Counting) Add(id uint64) {
	for i := 0; i < c.k; i++ {
		p := c.probe(id, i)
		if c.counts[p] == counterMax {
			c.unsound = true
			continue
		}
		c.counts[p]++
	}
	c.n++
}

// Remove deletes an identifier previously Added. Removing an identifier
// that was never added (a counter already at zero) marks the filter
// unsound instead of wrapping.
func (c *Counting) Remove(id uint64) {
	for i := 0; i < c.k; i++ {
		p := c.probe(id, i)
		if c.counts[p] == 0 {
			c.unsound = true
			continue
		}
		c.counts[p]--
	}
	c.n--
}

// MayContain reports whether the identifier might be present. False
// positives are possible; false negatives only once the filter has gone
// unsound.
func (c *Counting) MayContain(id uint64) bool {
	for i := 0; i < c.k; i++ {
		if c.counts[c.probe(id, i)] == 0 {
			return false
		}
	}
	return true
}

// Unsound reports whether a saturating or unmatched operation has been
// absorbed inexactly — the owner's signal to rebuild from exact state.
func (c *Counting) Unsound() bool { return c.unsound }

// Reset clears the filter (a rebuild starts here).
func (c *Counting) Reset() {
	for i := range c.counts {
		c.counts[i] = 0
	}
	c.n = 0
	c.unsound = false
}

// Bits returns the filter size in counter positions.
func (c *Counting) Bits() uint64 { return c.m }

// K returns the hash count.
func (c *Counting) K() int { return c.k }

// Live returns adds minus removes since the last Reset.
func (c *Counting) Live() int64 { return c.n }

// SizeBytes returns the wire/storage size of the counter array.
func (c *Counting) SizeBytes() int64 { return int64(c.m) }

// FillRatio returns the fraction of nonzero counters.
func (c *Counting) FillRatio() float64 {
	var set int
	for _, v := range c.counts {
		if v != 0 {
			set++
		}
	}
	return float64(set) / float64(c.m)
}

// EstimatedFPR returns the expected false-positive rate at the current
// fill: fill^k.
func (c *Counting) EstimatedFPR() float64 {
	return math.Pow(c.FillRatio(), float64(c.k))
}

// countingHeaderSize is the marshaled counting-filter header: 8-byte
// counter count, 4-byte hash count.
const countingHeaderSize = 12

// AppendBinary encodes the filter onto dst (8-byte counter count, 4-byte
// hash count, then the raw counter bytes) and returns the extended slice.
// Steady-state marshals into a buffer that has reached capacity allocate
// nothing.
func (c *Counting) AppendBinary(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, c.m)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(c.k))
	return append(dst, c.counts...)
}

// MarshalBinary encodes the filter into a fresh buffer.
func (c *Counting) MarshalBinary() ([]byte, error) {
	return c.AppendBinary(make([]byte, 0, countingHeaderSize+len(c.counts))), nil
}

// UnmarshalBinary decodes a counting filter, replacing the receiver's
// contents and reusing its counter slice when the capacity suffices.
func (c *Counting) UnmarshalBinary(data []byte) error {
	if len(data) < countingHeaderSize {
		return fmt.Errorf("digest: counting message too short (%d bytes)", len(data))
	}
	m := binary.LittleEndian.Uint64(data[0:8])
	k := int(binary.LittleEndian.Uint32(data[8:12]))
	if k < 1 || k > 16 {
		return fmt.Errorf("digest: bad hash count %d", k)
	}
	if m == 0 || m%64 != 0 {
		return fmt.Errorf("digest: bad counter count %d", m)
	}
	if uint64(len(data)) != countingHeaderSize+m {
		return fmt.Errorf("digest: length %d does not match %d counters", len(data), m)
	}
	counts := c.counts
	if uint64(cap(counts)) < m {
		counts = make([]uint8, m)
	}
	counts = counts[:m]
	copy(counts, data[countingHeaderSize:])
	c.counts = counts
	c.m = m
	c.k = k
	c.n = 0 // unknown after transfer; only stats are affected
	c.unsound = false
	return nil
}

// DecodeCounting parses a marshaled counting filter into a fresh Counting.
func DecodeCounting(data []byte) (*Counting, error) {
	c := &Counting{}
	if err := c.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return c, nil
}
