package digest

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestCountingAddRemove(t *testing.T) {
	c, err := NewCountingForCapacity(1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	ids := make([]uint64, 1000)
	for i := range ids {
		ids[i] = rng.Uint64()
		c.Add(ids[i])
	}
	for _, id := range ids {
		if !c.MayContain(id) {
			t.Fatalf("filter lost %#x after add", id)
		}
	}
	if c.Live() != 1000 {
		t.Fatalf("Live = %d, want 1000", c.Live())
	}
	// Removing every identifier drains the filter back to empty.
	for _, id := range ids {
		c.Remove(id)
	}
	if c.Unsound() {
		t.Fatal("matched removes made the filter unsound")
	}
	if c.Live() != 0 {
		t.Fatalf("Live = %d after full drain", c.Live())
	}
	if c.FillRatio() != 0 {
		t.Fatalf("fill %g after removing everything", c.FillRatio())
	}
	for _, id := range ids {
		if c.MayContain(id) {
			t.Fatalf("%#x still present after remove", id)
		}
	}
}

func TestCountingMatchesFilterGeometry(t *testing.T) {
	// A Counting and a Filter sized identically must answer membership
	// identically (same probes, counters vs bits) while the counting filter
	// is sound — the property that lets the cluster swap one for the other.
	c, err := NewCountingForCapacity(500, 8)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewForCapacity(500, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Bits() != f.Bits() || c.K() != f.K() {
		t.Fatalf("geometry differs: %d/%d vs %d/%d", c.Bits(), c.K(), f.Bits(), f.K())
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		id := rng.Uint64()
		c.Add(id)
		f.Add(id)
	}
	for i := 0; i < 5000; i++ {
		id := rng.Uint64()
		if c.MayContain(id) != f.MayContain(id) {
			t.Fatalf("filters disagree on %#x", id)
		}
	}
}

func TestCountingUnsoundOnUnmatchedRemove(t *testing.T) {
	c, err := NewCounting(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	c.Remove(42)
	if !c.Unsound() {
		t.Fatal("unmatched remove did not flag the filter unsound")
	}
	c.Reset()
	if c.Unsound() {
		t.Fatal("Reset did not clear the unsound flag")
	}
}

func TestCountingUnsoundOnSaturation(t *testing.T) {
	// A tiny filter (64 counters, k=1) saturates a counter after 255
	// same-position adds.
	c, err := NewCounting(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= counterMax; i++ {
		c.Add(7) // same id -> same counter every time
	}
	if !c.Unsound() {
		t.Fatal("counter saturation did not flag the filter unsound")
	}
	// The saturated position still answers present.
	if !c.MayContain(7) {
		t.Fatal("saturated id reported absent")
	}
}

func TestCountingMarshalRoundTrip(t *testing.T) {
	c, err := NewCountingForCapacity(300, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	ids := make([]uint64, 300)
	for i := range ids {
		ids[i] = rng.Uint64()
		c.Add(ids[i])
	}
	data, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := DecodeCounting(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Bits() != c.Bits() || g.K() != c.K() {
		t.Fatalf("shape changed: %d/%d -> %d/%d", c.Bits(), c.K(), g.Bits(), g.K())
	}
	got := g.AppendBinary(nil)
	if !bytes.Equal(got, data) {
		t.Fatal("re-marshal of the decoded filter differs")
	}
	// UnmarshalBinary into a same-sized receiver reuses its counter slice.
	before := &g.counts[0]
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if &g.counts[0] != before {
		t.Error("UnmarshalBinary reallocated despite sufficient capacity")
	}
}

func TestCountingUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 5),                      // short
		{0, 0, 0, 0, 0, 0, 0, 0, 4, 0, 0, 0}, // zero counters
		append(make([]byte, 12), 1, 2, 3),    // length/declared-m mismatch
	}
	for i, data := range cases {
		var c Counting
		if err := c.UnmarshalBinary(data); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	good, _ := NewCountingForCapacity(10, 8)
	data, _ := good.MarshalBinary()
	data[8] = 200
	if _, err := DecodeCounting(data); err == nil {
		t.Error("bad hash count accepted")
	}
}

// BenchmarkDigestMarshal pins the satellite-1 contract: marshaling a filter
// into a reused buffer allocates nothing.
func BenchmarkDigestMarshal(b *testing.B) {
	f, err := NewForCapacity(8192, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 8192; i++ {
		f.Add(rng.Uint64())
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = f.AppendBinary(buf[:0])
	}
	if allocs := testing.AllocsPerRun(100, func() { buf = f.AppendBinary(buf[:0]) }); allocs != 0 {
		b.Fatalf("AppendBinary into a warm buffer allocates %.0f times per op, want 0", allocs)
	}
}

func BenchmarkCountingMarshal(b *testing.B) {
	c, err := NewCountingForCapacity(8192, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 8192; i++ {
		c.Add(rng.Uint64())
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.AppendBinary(buf[:0])
	}
}
