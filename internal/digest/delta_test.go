package digest

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestOpCodecRoundTrip(t *testing.T) {
	ops := []Op{
		{ID: 1},
		{ID: 0xdeadbeefcafef00d, Remove: true},
		{ID: 0, Remove: false},
		{ID: ^uint64(0), Remove: true},
	}
	var buf []byte
	for _, op := range ops {
		buf = AppendOp(buf, op)
	}
	if len(buf) != len(ops)*OpSize {
		t.Fatalf("encoded %d bytes, want %d", len(buf), len(ops)*OpSize)
	}
	got, err := AppendDecodedOps(nil, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, got[i], ops[i])
		}
	}
}

func TestOpCodecRejectsGarbage(t *testing.T) {
	if _, err := AppendDecodedOps(nil, make([]byte, OpSize-1)); err == nil {
		t.Error("misaligned payload accepted")
	}
	bad := AppendOp(nil, Op{ID: 1})
	bad[0] = 0x7f
	if _, err := AppendDecodedOps(nil, bad); err == nil {
		t.Error("unknown action byte accepted")
	}
}

// TestDeltaEquivalence is the core replication contract: a mirror built
// from a full snapshot plus replayed journal deltas is byte-identical to
// the owner's filter at every step.
func TestDeltaEquivalence(t *testing.T) {
	owner, err := NewCountingForCapacity(4096, 8)
	if err != nil {
		t.Fatal(err)
	}
	j := NewJournal(4096)
	rng := rand.New(rand.NewSource(7))

	// Seed the owner, then transfer a full snapshot.
	resident := make([]uint64, 0, 2048)
	for i := 0; i < 2048; i++ {
		id := rng.Uint64()
		resident = append(resident, id)
		owner.Add(id)
		j.Append(Op{ID: id})
	}
	snap := owner.AppendBinary(nil)
	mirror, err := DecodeCounting(snap)
	if err != nil {
		t.Fatal(err)
	}
	cursor := j.Head()

	// Churn in rounds; after each delta pull the mirror must re-marshal to
	// the owner's exact bytes.
	var ownerBuf, mirrorBuf, deltaBuf []byte
	for round := 0; round < 20; round++ {
		for i := 0; i < 64; i++ {
			victim := rng.Intn(len(resident))
			old := resident[victim]
			owner.Remove(old)
			j.Append(Op{ID: old, Remove: true})
			id := rng.Uint64()
			resident[victim] = id
			owner.Add(id)
			j.Append(Op{ID: id})
		}
		delta, ok := j.AppendSince(deltaBuf[:0], cursor)
		if !ok {
			t.Fatalf("round %d: cursor %d fell out of a %d-op journal", round, cursor, 4096)
		}
		deltaBuf = delta
		if len(delta) != 128*OpSize {
			t.Fatalf("round %d: delta is %d bytes, want %d", round, len(delta), 128*OpSize)
		}
		ops, err := AppendDecodedOps(nil, delta)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			mirror.Apply(op)
		}
		cursor = j.Head()

		ownerBuf = owner.AppendBinary(ownerBuf[:0])
		mirrorBuf = mirror.AppendBinary(mirrorBuf[:0])
		if !bytes.Equal(ownerBuf, mirrorBuf) {
			t.Fatalf("round %d: mirror diverged from owner", round)
		}
	}
	if owner.Unsound() {
		t.Fatal("owner went unsound during bounded churn")
	}
}

func TestJournalCursorLoss(t *testing.T) {
	j := NewJournal(8)
	for i := uint64(0); i < 20; i++ {
		j.Append(Op{ID: i})
	}
	// The ring holds ops 12..19; a cursor at 4 is gone.
	if _, ok := j.AppendSince(nil, 4); ok {
		t.Error("evicted cursor served")
	}
	// A cursor inside the retained window still works, in order.
	out, ok := j.AppendSince(nil, 12)
	if !ok {
		t.Fatal("retained cursor refused")
	}
	ops, err := AppendDecodedOps(nil, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 8 {
		t.Fatalf("%d ops from cursor 12, want 8", len(ops))
	}
	for i, op := range ops {
		if op.ID != uint64(12+i) {
			t.Fatalf("op %d: id %d, want %d", i, op.ID, 12+i)
		}
	}
	// A cursor ahead of the head is nonsense.
	if _, ok := j.AppendSince(nil, j.Head()+1); ok {
		t.Error("future cursor served")
	}
	// A cursor exactly at the head yields an empty, valid delta.
	out, ok = j.AppendSince(nil, j.Head())
	if !ok || len(out) != 0 {
		t.Errorf("head cursor: ok=%v len=%d, want true/0", ok, len(out))
	}
}

func TestJournalInvalidate(t *testing.T) {
	j := NewJournal(16)
	for i := uint64(0); i < 5; i++ {
		j.Append(Op{ID: i})
	}
	head := j.Head()
	j.Invalidate()
	// Every pre-invalidate cursor — including one exactly at the old head —
	// must be refused: a replica that replayed the old ops diverges from
	// the rebuilt owner.
	for _, since := range []uint64{0, 3, head} {
		if _, ok := j.AppendSince(nil, since); ok {
			t.Errorf("cursor %d served after Invalidate", since)
		}
	}
	// New ops after the rebuild are servable from the new head.
	cursor := j.Head()
	j.Append(Op{ID: 99})
	out, ok := j.AppendSince(nil, cursor)
	if !ok {
		t.Fatal("post-invalidate cursor refused")
	}
	ops, err := AppendDecodedOps(nil, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || ops[0].ID != 99 {
		t.Fatalf("post-invalidate delta = %+v", ops)
	}
}
