package digest

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Error("zero bits accepted")
	}
	if _, err := New(100, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(100, 17); err == nil {
		t.Error("k=17 accepted")
	}
	if _, err := NewForCapacity(0, 8); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewForCapacity(100, 0); err == nil {
		t.Error("zero bits/entry accepted")
	}
}

func TestNoFalseNegatives(t *testing.T) {
	f, err := NewForCapacity(1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	ids := make([]uint64, 1000)
	for i := range ids {
		ids[i] = rng.Uint64()
		f.Add(ids[i])
	}
	for _, id := range ids {
		if !f.MayContain(id) {
			t.Fatalf("false negative for %#x", id)
		}
	}
}

func TestFalsePositiveRateNearTheory(t *testing.T) {
	f, err := NewForCapacity(10_000, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10_000; i++ {
		f.Add(rng.Uint64())
	}
	// Probe fresh identifiers; at 10 bits/entry theory predicts ~0.8%.
	fp := 0
	const probes = 50_000
	for i := 0; i < probes; i++ {
		if f.MayContain(rng.Uint64()) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Errorf("false-positive rate %.4f, want ~0.008 at 10 bits/entry", rate)
	}
	est := f.EstimatedFPR()
	if est <= 0 || est > 0.05 {
		t.Errorf("estimated FPR %.4f implausible", est)
	}
}

func TestResetClears(t *testing.T) {
	f, err := New(1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	f.Add(42)
	if !f.MayContain(42) {
		t.Fatal("added id missing")
	}
	f.Reset()
	if f.MayContain(42) {
		t.Error("id survived reset")
	}
	if f.FillRatio() != 0 || f.Insertions() != 0 {
		t.Error("reset did not clear stats")
	}
}

func TestSizing(t *testing.T) {
	f, err := New(100, 4) // rounds up to 128 bits
	if err != nil {
		t.Fatal(err)
	}
	if f.Bits() != 128 || f.SizeBytes() != 16 {
		t.Errorf("bits=%d size=%d, want 128/16", f.Bits(), f.SizeBytes())
	}
	f2, err := NewForCapacity(1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	// k = round(8 ln2) = 6.
	if f2.K() != 6 {
		t.Errorf("k = %d, want 6", f2.K())
	}
	if f2.Bits() < 8000 {
		t.Errorf("bits = %d, want >= 8000", f2.Bits())
	}
}

func TestFillRatioGrows(t *testing.T) {
	f, err := NewForCapacity(1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	prev := f.FillRatio()
	for round := 0; round < 4; round++ {
		for i := 0; i < 250; i++ {
			f.Add(rng.Uint64())
		}
		cur := f.FillRatio()
		if cur <= prev {
			t.Errorf("fill ratio did not grow: %g -> %g", prev, cur)
		}
		prev = cur
	}
	if prev >= 1 {
		t.Errorf("fill ratio %g saturated at design load", prev)
	}
}

// TestAddedAlwaysFoundQuick: anything added is always reported present,
// for arbitrary ids and filter shapes.
func TestAddedAlwaysFoundQuick(t *testing.T) {
	f := func(ids []uint64, mRaw uint16, kRaw uint8) bool {
		m := uint64(mRaw)%4096 + 64
		k := int(kRaw)%8 + 1
		fl, err := New(m, k)
		if err != nil {
			return false
		}
		for _, id := range ids {
			fl.Add(id)
		}
		for _, id := range ids {
			if !fl.MayContain(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
