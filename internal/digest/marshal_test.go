package digest

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMarshalRoundTrip(t *testing.T) {
	f, err := NewForCapacity(500, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	ids := make([]uint64, 500)
	for i := range ids {
		ids[i] = rng.Uint64()
		f.Add(ids[i])
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Bits() != f.Bits() || g.K() != f.K() {
		t.Fatalf("shape changed: %d/%d -> %d/%d", f.Bits(), f.K(), g.Bits(), g.K())
	}
	for _, id := range ids {
		if !g.MayContain(id) {
			t.Fatalf("decoded filter lost %#x", id)
		}
	}
	// Membership answers agree exactly on arbitrary probes.
	for i := 0; i < 5000; i++ {
		id := rng.Uint64()
		if f.MayContain(id) != g.MayContain(id) {
			t.Fatalf("filters disagree on %#x", id)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 5),                      // short
		{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // zero bits
		append(make([]byte, 12), 1, 2, 3),    // misaligned body
	}
	for i, data := range cases {
		var f Filter
		if err := f.UnmarshalBinary(data); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Bad hash count.
	good, _ := NewForCapacity(10, 8)
	data, _ := good.MarshalBinary()
	data[8] = 200
	if _, err := Decode(data); err == nil {
		t.Error("bad hash count accepted")
	}
}

// TestUnmarshalFilterWidensExactly decodes a plain-filter encoding into a
// Counting and checks the widened copy answers MayContain identically —
// the legacy-peer fallback path of the cluster's digest puller.
func TestUnmarshalFilterWidensExactly(t *testing.T) {
	f, err := NewForCapacity(500, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	ids := make([]uint64, 500)
	for i := range ids {
		ids[i] = rng.Uint64()
		f.Add(ids[i])
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var c Counting
	if err := c.UnmarshalFilter(data); err != nil {
		t.Fatal(err)
	}
	if c.Bits() != f.Bits() || c.K() != f.K() {
		t.Fatalf("shape changed: %d/%d -> %d/%d", f.Bits(), f.K(), c.Bits(), c.K())
	}
	for _, id := range ids {
		if !c.MayContain(id) {
			t.Fatalf("widened copy lost %#x", id)
		}
	}
	for i := 0; i < 5000; i++ {
		id := rng.Uint64()
		if f.MayContain(id) != c.MayContain(id) {
			t.Fatalf("filter and widened copy disagree on %#x", id)
		}
	}

	// The same garbage the plain decoder rejects must be rejected here.
	for i, bad := range [][]byte{
		nil,
		make([]byte, 5),
		{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		append(make([]byte, 12), 1, 2, 3),
	} {
		var g Counting
		if err := g.UnmarshalFilter(bad); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	data[8] = 200 // bad hash count
	var g Counting
	if err := g.UnmarshalFilter(data); err == nil {
		t.Error("bad hash count accepted")
	}
}

func TestMarshalRoundTripQuick(t *testing.T) {
	f := func(ids []uint64) bool {
		fl, err := NewForCapacity(len(ids)+1, 8)
		if err != nil {
			return false
		}
		for _, id := range ids {
			fl.Add(id)
		}
		data, err := fl.MarshalBinary()
		if err != nil {
			return false
		}
		g, err := Decode(data)
		if err != nil {
			return false
		}
		for _, id := range ids {
			if !g.MayContain(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
