package digest

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDigestMarshalRoundTrip checks the two wire-format properties the
// prototype relies on when pulling digests from untrusted peers:
//
//  1. Unmarshal never panics on arbitrary bytes (it may only error), and
//     any message it accepts re-marshals to the identical bytes.
//  2. A filter built from arbitrary insertions survives a
//     Marshal -> Unmarshal round trip bit-for-bit.
func FuzzDigestMarshalRoundTrip(f *testing.F) {
	// Valid marshaled filters, truncations, and garbage as seeds.
	valid, _ := mustFilter(f, 256, 4)
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, headerSize))
	short := make([]byte, headerSize)
	binary.LittleEndian.PutUint64(short[0:8], 64)
	binary.LittleEndian.PutUint32(short[8:12], 3)
	f.Add(short)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Property 1: Decode must never panic; accepted input must
		// re-encode to the same bytes.
		fl, err := Decode(data)
		if err == nil {
			out, err := fl.MarshalBinary()
			if err != nil {
				t.Fatalf("re-marshal of accepted message failed: %v", err)
			}
			if !bytes.Equal(out, data) {
				t.Fatalf("re-marshal differs: in %d bytes, out %d bytes", len(data), len(out))
			}
		}

		// Property 2: a filter fed with IDs derived from the fuzz input
		// round-trips exactly, and membership answers survive.
		src, err := NewForCapacity(64, 8)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]uint64, 0, len(data)/2+1)
		for i := 0; i+1 < len(data); i += 2 {
			id := uint64(data[i])<<8 | uint64(data[i+1])
			src.Add(id)
			ids = append(ids, id)
		}
		wire, err := src.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(wire)
		if err != nil {
			t.Fatalf("decode of our own encoding failed: %v", err)
		}
		if got.Bits() != src.Bits() || got.K() != src.K() {
			t.Fatalf("shape changed: %d/%d bits, %d/%d hashes",
				got.Bits(), src.Bits(), got.K(), src.K())
		}
		rewire, err := got.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wire, rewire) {
			t.Fatal("Marshal(Unmarshal(Marshal(d))) != Marshal(d)")
		}
		for _, id := range ids {
			if !got.MayContain(id) {
				t.Fatalf("decoded filter lost id %d (false negative)", id)
			}
		}
	})
}

// mustFilter marshals a small filter with a few entries for seeding.
func mustFilter(f *testing.F, m uint64, k int) ([]byte, *Filter) {
	f.Helper()
	fl, err := New(m, k)
	if err != nil {
		f.Fatal(err)
	}
	fl.Add(1)
	fl.Add(1 << 40)
	data, err := fl.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	return data, fl
}
