package digest

import (
	"encoding/binary"
	"fmt"
)

// Delta replication: instead of re-shipping the whole counter array every
// pull, the digest owner journals each membership transition (object became
// resident / object left) and serves peers only the ops past their cursor.
// A peer replaying the op stream against its pulled Counting produces a
// byte-identical copy of the owner's filter — saturating adds and guarded
// removes are deterministic — so delta pulls and full pulls converge to the
// same bits. Metadata bytes per round become proportional to churn, not to
// cache size (ISSUE 9's delta-proportional bound).

// Op is one membership transition: an object identifier entering
// (Remove=false) or leaving (Remove=true) the owner's resident set.
type Op struct {
	ID     uint64
	Remove bool
}

// OpSize is the wire size of one encoded op: a 1-byte action followed by
// the 8-byte little-endian identifier.
const OpSize = 9

const (
	opAdd    = 0x01
	opRemove = 0x02
)

// AppendOp encodes one op onto dst.
func AppendOp(dst []byte, op Op) []byte {
	action := byte(opAdd)
	if op.Remove {
		action = opRemove
	}
	dst = append(dst, action)
	return binary.LittleEndian.AppendUint64(dst, op.ID)
}

// AppendDecodedOps parses a delta payload (a bare concatenation of ops, no
// count prefix — the frame length delimits it) onto ops and returns the
// extended slice.
func AppendDecodedOps(ops []Op, data []byte) ([]Op, error) {
	if len(data)%OpSize != 0 {
		return ops, fmt.Errorf("digest: delta payload length %d is not a multiple of %d", len(data), OpSize)
	}
	for len(data) > 0 {
		var op Op
		switch data[0] {
		case opAdd:
		case opRemove:
			op.Remove = true
		default:
			return ops, fmt.Errorf("digest: bad delta action 0x%02x", data[0])
		}
		op.ID = binary.LittleEndian.Uint64(data[1:OpSize])
		ops = append(ops, op)
		data = data[OpSize:]
	}
	return ops, nil
}

// Apply replays one op against the filter.
func (c *Counting) Apply(op Op) {
	if op.Remove {
		c.Remove(op.ID)
	} else {
		c.Add(op.ID)
	}
}

// Journal is a fixed-capacity ring of membership ops with a monotonically
// increasing head sequence. Cursors are sequence numbers: a peer that last
// saw head s asks for everything since s; the journal serves the request
// only while those ops are still in the ring. It carries no lock of its
// own — the cluster guards it with the same mutex as the filter it
// describes, so op order and filter state can never diverge.
type Journal struct {
	ring  []Op
	head  uint64 // sequence of the next op to be appended
	start uint64 // oldest sequence still in the ring
}

// NewJournal builds a journal holding the most recent capacity ops.
func NewJournal(capacity int) *Journal {
	if capacity < 1 {
		capacity = 1
	}
	return &Journal{ring: make([]Op, capacity)}
}

// Append records one op, evicting the oldest when the ring is full.
func (j *Journal) Append(op Op) {
	j.ring[j.head%uint64(len(j.ring))] = op
	j.head++
	if j.head-j.start > uint64(len(j.ring)) {
		j.start = j.head - uint64(len(j.ring))
	}
}

// Head returns the current cursor: the sequence a reader that has seen
// everything should present next.
func (j *Journal) Head() uint64 { return j.head }

// AppendSince encodes every op in (since, head] onto dst. ok is false when
// the cursor has fallen out of the ring (or runs ahead of it) — the caller
// must fall back to a full transfer.
func (j *Journal) AppendSince(dst []byte, since uint64) (out []byte, ok bool) {
	if since < j.start || since > j.head {
		return dst, false
	}
	for s := since; s < j.head; s++ {
		dst = AppendOp(dst, j.ring[s%uint64(len(j.ring))])
	}
	return dst, true
}

// Invalidate makes every outstanding cursor unservable — including one
// exactly at the head — forcing full transfers. Called when the owner
// rebuilds its filter: the journaled history no longer describes the
// filter's contents, and even an up-to-date replica diverges (its replayed
// copy carries the saturation artifacts the rebuild just erased).
func (j *Journal) Invalidate() {
	j.head++
	j.start = j.head
}
