package push

import (
	"fmt"

	"beyondcache/internal/hints"
	"beyondcache/internal/trace"
)

// Crawler implements the extension the paper leaves as future work
// (Section 4.1): "one could imagine having the cache hierarchy 'crawl' the
// Internet in the background, looking for new pages. Clearly such an
// algorithm could further improve performance by reducing the number of
// complete misses endured by the system."
//
// This crawler exploits spatial locality: when a node suffers a compulsory
// miss on some object, the crawler prefetches up to Fanout sibling objects
// from the same server into that node's cache, speculatively. Unlike the
// paper's push algorithms it fetches data not yet stored anywhere in the
// cache system — so it is the only mechanism here that can reduce
// compulsory misses, at the cost of extra load on origin servers.
type Crawler struct {
	sim     *hints.Simulator
	profile trace.Profile
	fanout  int

	// crawled remembers servers already crawled by a node, so each
	// (node, server) pair is crawled once.
	crawled map[crawlKey]struct{}

	prefetched     int64
	prefetchedByte int64
	used           int64
	usedByte       int64
	pending        map[pushKey]int64
}

type crawlKey struct {
	node   int
	server uint64
}

var _ hints.Pusher = (*Crawler)(nil)

// objectsPerServer mirrors trace.ObjectURL's grouping of object IDs onto
// synthetic servers.
const objectsPerServer = 64

// NewCrawler builds a crawler that prefetches up to fanout same-server
// siblings per compulsory miss. The profile supplies deterministic object
// sizes and versions (the crawler fetches real objects, so it needs their
// real attributes).
func NewCrawler(profile trace.Profile, fanout int) (*Crawler, error) {
	if fanout < 1 {
		return nil, fmt.Errorf("push: crawler fanout must be positive, got %d", fanout)
	}
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	return &Crawler{
		profile: profile,
		fanout:  fanout,
		crawled: make(map[crawlKey]struct{}),
		pending: make(map[pushKey]int64),
	}, nil
}

// Bind attaches the crawler to its simulator. Must be called before the
// simulation runs.
func (c *Crawler) Bind(s *hints.Simulator) { c.sim = s }

// OnMiss implements hints.Pusher: the crawl trigger.
func (c *Crawler) OnMiss(node int, req trace.Request) {
	server := req.Object / objectsPerServer
	key := crawlKey{node: node, server: server}
	if _, done := c.crawled[key]; done {
		return
	}
	c.crawled[key] = struct{}{}

	base := server * objectsPerServer
	prefetched := 0
	for off := uint64(0); off < objectsPerServer && prefetched < c.fanout; off++ {
		obj := base + off
		if obj == req.Object || obj >= uint64(c.profile.DistinctURLs) {
			continue
		}
		sibling := trace.Request{
			Time:    req.Time,
			Client:  req.Client,
			Object:  obj,
			Size:    c.profile.ObjectSize(obj),
			Version: c.profile.ObjectVersionAt(obj, req.Time),
		}
		if c.sim.InjectCopy(node, sibling, false) {
			prefetched++
			c.prefetched++
			c.prefetchedByte += sibling.Size
			c.pending[pushKey{node: node, object: obj}] = sibling.Size
		}
	}
}

// OnLocalHit implements hints.Pusher: credits used prefetches.
func (c *Crawler) OnLocalHit(node int, req trace.Request) {
	k := pushKey{node: node, object: req.Object}
	if size, ok := c.pending[k]; ok {
		delete(c.pending, k)
		c.used++
		c.usedByte += size
	}
}

// OnEvict implements hints.Pusher: an evicted prefetch is wasted.
func (c *Crawler) OnEvict(node int, object uint64) {
	delete(c.pending, pushKey{node: node, object: object})
}

// OnRemoteHit implements hints.Pusher (no-op: the crawler only acts on
// compulsory misses).
func (c *Crawler) OnRemoteHit(int, int, trace.Request, bool) {}

// OnVersionChange implements hints.Pusher: invalidated prefetches die.
func (c *Crawler) OnVersionChange(prevHolders []int, req trace.Request) {
	for _, n := range prevHolders {
		delete(c.pending, pushKey{node: n, object: req.Object})
	}
}

// CrawlStats reports the crawler's activity.
type CrawlStats struct {
	Prefetched      int64
	PrefetchedBytes int64
	Used            int64
	UsedBytes       int64
}

// Stats returns the counters.
func (c *Crawler) Stats() CrawlStats {
	return CrawlStats{
		Prefetched:      c.prefetched,
		PrefetchedBytes: c.prefetchedByte,
		Used:            c.used,
		UsedBytes:       c.usedByte,
	}
}

// Efficiency is the fraction of prefetched bytes later referenced.
func (c *Crawler) Efficiency() float64 {
	if c.prefetchedByte == 0 {
		return 0
	}
	return float64(c.usedByte) / float64(c.prefetchedByte)
}
