// Package push implements the push-caching algorithms of Section 4, which
// move copies of data toward clients that have not yet requested them:
//
//   - Update push (Section 4.1.2): when a new version of an object enters
//     the system, push it to the caches that held the previous version.
//   - Hierarchical push on miss (Section 4.1.3): when a cache fetches an
//     object from a cousin whose least common ancestor is at level k, push
//     a copy into each level-(k-1) subtree under that ancestor. Variants
//     push-1, push-half, and push-all control how many nodes per subtree
//     receive a copy.
//
// The push-ideal upper bound (all remote hits become local hits, replicas
// are free) is implemented by the hints simulator's IdealPush flag.
//
// The package also accounts for push efficiency (the fraction of pushed
// bytes later accessed, Figure 11a) and push bandwidth (Figure 11b).
package push

import (
	"fmt"
	"math/rand"

	"beyondcache/internal/hints"
	"beyondcache/internal/trace"
)

// Strategy selects a push algorithm.
type Strategy int

// Strategies.
const (
	// UpdatePush pushes fresh versions to holders of the old version.
	UpdatePush Strategy = iota + 1
	// Hier1 pushes one copy per eligible subtree.
	Hier1
	// HierHalf pushes copies to half the nodes of each eligible subtree.
	HierHalf
	// HierAll pushes copies to every node of each eligible subtree.
	HierAll
)

// String labels the strategy the way Figure 10 does.
func (s Strategy) String() string {
	switch s {
	case UpdatePush:
		return "Update Push"
	case Hier1:
		return "Push-1"
	case HierHalf:
		return "Push-half"
	case HierAll:
		return "Push-all"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// pushKey identifies one pushed replica.
type pushKey struct {
	node   int
	object uint64
}

// Push is a hints.Pusher implementing one strategy. Attach it to a
// hints.Simulator via hints.Config.Pusher and call Bind before running.
type Push struct {
	strategy Strategy
	sim      *hints.Simulator
	rng      *rand.Rand

	pending map[pushKey]int64 // pushed, not yet referenced -> size

	// fired records hierarchical-push triggers already acted on: the
	// paper's rule is "once two subtrees fetch object A, push A" — one
	// push per (object, version, ancestor level), not one per remote
	// hit. Without this, eviction-refetch cycles re-push the same object
	// indefinitely and the bandwidth overhead explodes.
	fired map[firedKey]struct{}

	pushedBytes int64
	usedBytes   int64
	pushedCount int64
	usedCount   int64
}

var _ hints.Pusher = (*Push)(nil)

// New builds a pusher with a deterministic random source for the "random
// node in each subtree" choices.
func New(strategy Strategy, seed int64) (*Push, error) {
	switch strategy {
	case UpdatePush, Hier1, HierHalf, HierAll:
	default:
		return nil, fmt.Errorf("push: unknown strategy %d", int(strategy))
	}
	return &Push{
		strategy: strategy,
		rng:      rand.New(rand.NewSource(seed)),
		pending:  make(map[pushKey]int64),
		fired:    make(map[firedKey]struct{}),
	}, nil
}

// firedKey identifies one hierarchical-push trigger.
type firedKey struct {
	object  uint64
	version int64
	near    bool
}

// Bind attaches the pusher to the simulator whose events it will receive.
// It must be called exactly once, before the simulation runs.
func (p *Push) Bind(s *hints.Simulator) { p.sim = s }

// Strategy returns the configured strategy.
func (p *Push) Strategy() Strategy { return p.strategy }

// OnRemoteHit implements hints.Pusher: the hierarchical push trigger.
func (p *Push) OnRemoteHit(requester, holder int, req trace.Request, near bool) {
	switch p.strategy {
	case Hier1, HierHalf, HierAll:
	default:
		return
	}
	fk := firedKey{object: req.Object, version: req.Version, near: near}
	if _, done := p.fired[fk]; done {
		return
	}
	p.fired[fk] = struct{}{}
	topo := p.sim.Topology()
	if near {
		// LCA is the shared L2: the level-1 subtrees are the individual
		// L1 caches under it. Push-1 and push-all cover every node;
		// push-half covers a random half.
		group := topo.L2OfL1(requester)
		nodes := p.l1sOfL2(group)
		if p.strategy == HierHalf {
			nodes = p.sample(nodes, (len(nodes)+1)/2)
		}
		for _, n := range nodes {
			if n != requester && n != holder {
				p.inject(n, req)
			}
		}
		return
	}
	// LCA is the root: eligible subtrees are all L2 groups. Per subtree,
	// push-1 picks one random node, push-half a random half, push-all
	// every node.
	for g := 0; g < topo.NumL2(); g++ {
		nodes := p.l1sOfL2(g)
		switch p.strategy {
		case Hier1:
			nodes = p.sample(nodes, 1)
		case HierHalf:
			nodes = p.sample(nodes, (len(nodes)+1)/2)
		}
		for _, n := range nodes {
			if n != requester && n != holder {
				p.inject(n, req)
			}
		}
	}
}

// OnVersionChange implements hints.Pusher: the update-push trigger.
func (p *Push) OnVersionChange(prevHolders []int, req trace.Request) {
	// The pushed old copies are now invalid: their pending records are
	// wasted (the map entry is simply overwritten or left to die).
	for _, n := range prevHolders {
		delete(p.pending, pushKey{node: n, object: req.Object})
	}
	if p.strategy != UpdatePush {
		return
	}
	for _, n := range prevHolders {
		// The holder had demonstrated interest (it demand-cached the
		// previous version), so the refresh keeps demand standing —
		// but is aged so that objects updated many times without
		// being read fall out of the cache (Section 4.1.2).
		if !p.sim.InjectRefresh(n, req) {
			continue
		}
		p.sim.AgeObject(n, req.Object)
		p.pushedBytes += req.Size
		p.pushedCount++
		p.pending[pushKey{node: n, object: req.Object}] = req.Size
	}
}

// OnLocalHit implements hints.Pusher: marks a pushed replica as used.
func (p *Push) OnLocalHit(node int, req trace.Request) {
	k := pushKey{node: node, object: req.Object}
	if size, ok := p.pending[k]; ok {
		delete(p.pending, k)
		p.usedBytes += size
		p.usedCount++
	}
}

// OnEvict implements hints.Pusher: a pushed replica evicted before use is
// wasted.
func (p *Push) OnEvict(node int, object uint64) {
	delete(p.pending, pushKey{node: node, object: object})
}

// OnMiss implements hints.Pusher. The paper's push algorithms only
// replicate data already inside the cache system ("we limit pushing or
// prefetching to increasing the number of copies of data that are already
// stored at least once"), so server fetches trigger nothing here; see
// Crawler for the future-work extension that does act on them.
func (p *Push) OnMiss(int, trace.Request) {}

// inject pushes one replica and records it for efficiency accounting.
func (p *Push) inject(node int, req trace.Request) bool {
	if !p.sim.InjectCopy(node, req, false) {
		return false
	}
	p.pushedBytes += req.Size
	p.pushedCount++
	p.pending[pushKey{node: node, object: req.Object}] = req.Size
	return true
}

// l1sOfL2 lists the leaf caches under L2 group g.
func (p *Push) l1sOfL2(g int) []int {
	topo := p.sim.Topology()
	out := make([]int, 0, topo.L1PerL2)
	for n := g * topo.L1PerL2; n < (g+1)*topo.L1PerL2; n++ {
		out = append(out, n)
	}
	return out
}

// sample returns k random elements of nodes (order unspecified). It mutates
// a copy, not the input.
func (p *Push) sample(nodes []int, k int) []int {
	if k >= len(nodes) {
		return nodes
	}
	cp := append([]int(nil), nodes...)
	p.rng.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
	return cp[:k]
}

// Stats reports the push accounting used by Figure 11.
type Stats struct {
	PushedBytes int64
	UsedBytes   int64
	PushedCount int64
	UsedCount   int64
}

// Stats returns the accumulated counters.
func (p *Push) Stats() Stats {
	return Stats{
		PushedBytes: p.pushedBytes,
		UsedBytes:   p.usedBytes,
		PushedCount: p.pushedCount,
		UsedCount:   p.usedCount,
	}
}

// Efficiency returns the fraction of pushed bytes later accessed
// (Figure 11a). It returns 0 when nothing was pushed.
func (p *Push) Efficiency() float64 {
	if p.pushedBytes == 0 {
		return 0
	}
	return float64(p.usedBytes) / float64(p.pushedBytes)
}

// Strategies lists the pushing strategies in Figure 10/11 order.
func Strategies() []Strategy {
	return []Strategy{UpdatePush, Hier1, HierHalf, HierAll}
}
