package push

import (
	"testing"
	"time"

	"beyondcache/internal/hints"
	"beyondcache/internal/netmodel"
	"beyondcache/internal/sim"
	"beyondcache/internal/trace"
)

func crawlerProfile() trace.Profile {
	p := trace.DECProfile(trace.ScaleSmall)
	p.Requests = 30_000
	p.DistinctURLs = 6_000
	return p
}

func newCrawlerSim(t *testing.T, p trace.Profile, fanout int) (*hints.Simulator, *Crawler) {
	t.Helper()
	c, err := NewCrawler(p, fanout)
	if err != nil {
		t.Fatal(err)
	}
	s, err := hints.New(hints.Config{
		Model:  netmodel.NewTestbed(),
		Pusher: c, // no warmup: hand-built scenarios record everything
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Bind(s)
	return s, c
}

func TestNewCrawlerValidation(t *testing.T) {
	p := crawlerProfile()
	if _, err := NewCrawler(p, 0); err == nil {
		t.Error("zero fanout accepted")
	}
	p.Requests = 0
	if _, err := NewCrawler(p, 4); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestCrawlerPrefetchesSiblings(t *testing.T) {
	p := crawlerProfile()
	s, c := newCrawlerSim(t, p, 4)
	// One compulsory miss on object 130 (server 2): the crawler should
	// pull sibling objects 128.. into node 0's cache.
	req := trace.Request{
		Time: time.Second, Client: 0, Object: 130,
		Size: p.ObjectSize(130), Version: 1,
	}
	s.Process(req)
	st := c.Stats()
	if st.Prefetched != 4 {
		t.Fatalf("prefetched %d siblings, want 4", st.Prefetched)
	}
	// A later access to a prefetched sibling at the same node is a local
	// hit and counts as used.
	sib := trace.Request{
		Seq: 1, Time: 2 * time.Second, Client: 0, Object: 128,
		Size: p.ObjectSize(128), Version: p.ObjectVersionAt(128, 2*time.Second),
	}
	s.Process(sib)
	if got := s.Stats().Count(sim.OutcomeLocal); got != 1 {
		t.Errorf("local hits = %d, want 1 (prefetched sibling)", got)
	}
	if c.Stats().Used != 1 {
		t.Errorf("used = %d, want 1", c.Stats().Used)
	}
	if c.Efficiency() <= 0 || c.Efficiency() > 1 {
		t.Errorf("efficiency = %g", c.Efficiency())
	}
}

func TestCrawlerCrawlsServerOncePerNode(t *testing.T) {
	p := crawlerProfile()
	s, c := newCrawlerSim(t, p, 2)
	r1 := trace.Request{Time: time.Second, Client: 0, Object: 200, Size: 100, Version: 1}
	s.Process(r1)
	first := c.Stats().Prefetched
	// A second compulsory miss on the same server (object 201 was
	// prefetched? pick one that was not) must not re-crawl.
	r2 := trace.Request{Seq: 1, Time: 2 * time.Second, Client: 0, Object: 250, Size: 100, Version: 1}
	s.Process(r2)
	if c.Stats().Prefetched != first {
		t.Errorf("server re-crawled: %d -> %d", first, c.Stats().Prefetched)
	}
}

func TestCrawlerReducesCompulsoryMisses(t *testing.T) {
	// The future-work claim: crawling reduces complete misses. Compare
	// the system-wide miss fraction with and without the crawler.
	p := crawlerProfile()

	run := func(withCrawler bool) (missFrac float64, prefetchBytes int64) {
		var crawler *Crawler
		cfg := hints.Config{Model: netmodel.NewTestbed(), Warmup: p.Warmup()}
		if withCrawler {
			var err error
			crawler, err = NewCrawler(p, 8)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Pusher = crawler
		}
		s, err := hints.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if crawler != nil {
			crawler.Bind(s)
		}
		if _, err := sim.Run(trace.MustGenerator(p), s); err != nil {
			t.Fatal(err)
		}
		if crawler != nil {
			prefetchBytes = crawler.Stats().PrefetchedBytes
		}
		return s.Stats().FracAny(sim.OutcomeMiss, sim.OutcomeFalsePos), prefetchBytes
	}

	plainMiss, _ := run(false)
	crawlMiss, prefetched := run(true)
	if prefetched == 0 {
		t.Fatal("crawler prefetched nothing")
	}
	if crawlMiss >= plainMiss {
		t.Errorf("crawler did not reduce misses: %.3f -> %.3f", plainMiss, crawlMiss)
	}
}
