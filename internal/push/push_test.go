package push

import (
	"testing"
	"time"

	"beyondcache/internal/hints"
	"beyondcache/internal/netmodel"
	"beyondcache/internal/sim"
	"beyondcache/internal/trace"
)

// topo: 8 L1s, 4 per L2 (two subtrees).
func topo() sim.Topology {
	return sim.Topology{NumL1: 8, ClientsPerL1: 2, L1PerL2: 4}
}

func newSim(t *testing.T, strategy Strategy, capacity int64) (*hints.Simulator, *Push) {
	t.Helper()
	p, err := New(strategy, 42)
	if err != nil {
		t.Fatal(err)
	}
	s, err := hints.New(hints.Config{
		Topology:   topo(),
		Model:      netmodel.NewRousskovMin(),
		L1Capacity: capacity,
		Pusher:     p,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Bind(s)
	return s, p
}

func req(seq int64, client int, object uint64, size int64) trace.Request {
	return trace.Request{
		Seq: seq, Time: time.Duration(seq) * time.Second,
		Client: client, Object: object, Size: size, Version: 1,
	}
}

func TestNewRejectsUnknownStrategy(t *testing.T) {
	if _, err := New(Strategy(0), 1); err == nil {
		t.Error("strategy 0 accepted")
	}
	if _, err := New(Strategy(99), 1); err == nil {
		t.Error("strategy 99 accepted")
	}
}

func TestStrategyStrings(t *testing.T) {
	want := map[Strategy]string{
		UpdatePush: "Update Push",
		Hier1:      "Push-1",
		HierHalf:   "Push-half",
		HierAll:    "Push-all",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
	if Strategy(7).String() != "Strategy(7)" {
		t.Error("unknown strategy label wrong")
	}
}

func TestHierPushFarHitReplicatesIntoAllSubtrees(t *testing.T) {
	s, p := newSim(t, HierAll, 0)
	// Node 0 (client 0) fetches; node 4 (client 4, other subtree)
	// far-hits -> push-all should copy into every node of both subtrees.
	s.Process(req(0, 0, 1, 100))
	s.Process(req(1, 4, 1, 100))
	if got := s.Stats().Count(sim.OutcomeFar); got != 1 {
		t.Fatalf("far hits = %d, want 1", got)
	}
	if p.Stats().PushedCount == 0 {
		t.Fatal("push-all pushed nothing on a far hit")
	}
	// Every node should now hold a copy: all later requests are local.
	for c := 0; c < 8; c++ {
		s.Process(req(int64(10+c), c, 1, 100))
	}
	if got := s.Stats().Count(sim.OutcomeLocal); got != 8 {
		t.Errorf("local hits after push-all = %d, want 8", got)
	}
}

func TestHier1PushesOnePerSubtree(t *testing.T) {
	s, p := newSim(t, Hier1, 0)
	s.Process(req(0, 0, 1, 100))
	s.Process(req(1, 4, 1, 100)) // far hit
	// Eligible: 2 subtrees x 1 node each, minus requester/holder
	// collisions: at most 2 pushes.
	if got := p.Stats().PushedCount; got > 2 || got < 1 {
		t.Errorf("push-1 pushed %d copies, want 1-2", got)
	}
}

func TestHierPushNearHitReplicatesWithinSubtree(t *testing.T) {
	s, p := newSim(t, HierAll, 0)
	s.Process(req(0, 0, 1, 100))
	s.Process(req(1, 1, 1, 100)) // near hit within subtree {0,1,2,3}
	// Push-all on a near hit fills the rest of the subtree (nodes 2, 3).
	if got := p.Stats().PushedCount; got != 2 {
		t.Errorf("pushed %d, want 2 (nodes 2 and 3)", got)
	}
	s.Process(req(2, 2, 1, 100))
	s.Process(req(3, 3, 1, 100))
	if got := s.Stats().Count(sim.OutcomeLocal); got != 2 {
		t.Errorf("local hits = %d, want 2 (pushed copies)", got)
	}
	// Other subtree must NOT have received copies on a near hit.
	for n := 4; n < 8; n++ {
		if s.HasCopy(n, 1, 1) {
			t.Errorf("near hit pushed into the other subtree (node %d)", n)
		}
	}
}

func TestUpdatePushRefreshesOldHolders(t *testing.T) {
	s, p := newSim(t, UpdatePush, 0)
	s.Process(req(0, 0, 1, 100))
	s.Process(req(1, 1, 1, 100)) // near hit: nodes 0,1 hold v1
	r := req(2, 4, 1, 100)
	r.Version = 2
	s.Process(r) // v2 fetched; update push refreshes nodes 0 and 1
	if got := p.Stats().PushedCount; got != 2 {
		t.Fatalf("update push pushed %d copies, want 2", got)
	}
	// Nodes 0 and 1 now hit locally on v2.
	r2 := req(3, 0, 1, 100)
	r2.Version = 2
	s.Process(r2)
	r3 := req(4, 1, 1, 100)
	r3.Version = 2
	s.Process(r3)
	if got := s.Stats().Count(sim.OutcomeLocal); got != 2 {
		t.Errorf("local hits on pushed updates = %d, want 2", got)
	}
	// Both pushes were used: efficiency 1.0.
	if eff := p.Efficiency(); eff != 1.0 {
		t.Errorf("efficiency = %.2f, want 1.0", eff)
	}
}

func TestUpdatePushDoesNothingOnRemoteHits(t *testing.T) {
	s, p := newSim(t, UpdatePush, 0)
	s.Process(req(0, 0, 1, 100))
	s.Process(req(1, 4, 1, 100)) // far hit: no version change
	if got := p.Stats().PushedCount; got != 0 {
		t.Errorf("update push pushed %d on a plain remote hit, want 0", got)
	}
}

func TestEfficiencyCountsOnlyUsedBytes(t *testing.T) {
	s, p := newSim(t, HierAll, 0)
	s.Process(req(0, 0, 1, 100))
	s.Process(req(1, 4, 1, 100)) // far hit -> pushes to 6 other nodes
	pushed := p.Stats().PushedCount
	if pushed == 0 {
		t.Fatal("nothing pushed")
	}
	// Only node 1 (client 1) references it.
	s.Process(req(2, 1, 1, 100))
	st := p.Stats()
	if st.UsedCount != 1 {
		t.Errorf("used count = %d, want 1", st.UsedCount)
	}
	wantEff := float64(st.UsedBytes) / float64(st.PushedBytes)
	if got := p.Efficiency(); got != wantEff {
		t.Errorf("Efficiency = %g, want %g", got, wantEff)
	}
	if p.Efficiency() >= 1 {
		t.Errorf("efficiency = %g, want < 1 when pushes go unused", p.Efficiency())
	}
	// A second local hit must not double-count.
	s.Process(req(3, 1, 1, 100))
	if p.Stats().UsedCount != 1 {
		t.Error("repeated local hit double-counted push usage")
	}
}

func TestEvictionWastesPush(t *testing.T) {
	s, p := newSim(t, HierAll, 150)
	s.Process(req(0, 0, 1, 100))
	s.Process(req(1, 4, 1, 100)) // pushes object 1 everywhere
	// Node 1 caches object 2, evicting the pushed object 1 (150B cap).
	s.Process(req(2, 1, 2, 100))
	s.Process(req(3, 5, 2, 100))
	// Node 1 re-requests object 1: the pushed copy is gone; usage must
	// not be credited.
	used := p.Stats().UsedCount
	s.Process(req(4, 1, 1, 100))
	if p.Stats().UsedCount != used {
		t.Error("evicted push credited as used")
	}
}

func TestEfficiencyZeroWhenNothingPushed(t *testing.T) {
	_, p := newSim(t, Hier1, 0)
	if p.Efficiency() != 0 {
		t.Error("efficiency nonzero with no pushes")
	}
}

func TestPushBandwidthAccounted(t *testing.T) {
	s, p := newSim(t, HierAll, 0)
	s.Process(req(0, 0, 1, 100))
	s.Process(req(1, 4, 1, 100))
	pushBytes := s.Bandwidth().Bytes("push")
	if pushBytes != p.Stats().PushedBytes {
		t.Errorf("sim push bytes %d != pusher bytes %d", pushBytes, p.Stats().PushedBytes)
	}
	if s.Bandwidth().Bytes("demand") == 0 {
		t.Error("no demand bytes recorded")
	}
}

// TestPushOrderingOnDECTrace verifies the Figure 10 ordering on a real
// workload: ideal <= push-all <= hints-no-push in mean response time, and
// hierarchical pushes improve on plain hints.
func TestPushOrderingOnDECTrace(t *testing.T) {
	p := trace.DECProfile(trace.ScaleSmall)
	p.Requests = 50_000
	p.DistinctURLs = 10_000
	m := netmodel.NewRousskovMax()

	// Space-constrained per Section 4.2: 5 GB per L1 at full scale.
	fullCap := int64(5) << 30
	capBytes := int64(float64(fullCap) * float64(trace.ScaleSmall))

	run := func(strategy Strategy, ideal bool) time.Duration {
		var pusher *Push
		cfg := hints.Config{
			Topology:   sim.Default(),
			Model:      m,
			IdealPush:  ideal,
			L1Capacity: capBytes,
			Warmup:     p.Warmup(),
		}
		if strategy != 0 {
			var err error
			pusher, err = New(strategy, 7)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Pusher = pusher
		}
		s, err := hints.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if pusher != nil {
			pusher.Bind(s)
		}
		if _, err := sim.Run(trace.MustGenerator(p), s); err != nil {
			t.Fatal(err)
		}
		return s.MeanResponse()
	}

	noPush := run(0, false)
	pushAll := run(HierAll, false)
	ideal := run(0, true)

	if !(ideal <= pushAll) {
		t.Errorf("ideal (%v) should lower-bound push-all (%v)", ideal, pushAll)
	}
	if !(pushAll < noPush) {
		t.Errorf("push-all (%v) should beat no-push hints (%v)", pushAll, noPush)
	}
	speedup := float64(noPush) / float64(pushAll)
	if speedup > 2.0 {
		t.Errorf("push-all speedup %.2f implausibly high (paper: up to 1.25)", speedup)
	}
}

func TestStrategiesOrder(t *testing.T) {
	ss := Strategies()
	if len(ss) != 4 || ss[0] != UpdatePush || ss[3] != HierAll {
		t.Errorf("Strategies() = %v", ss)
	}
}
