package trace

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Materialized is a trace generated once and held in memory as a columnar
// (struct-of-arrays) buffer, so that the many simulation cells of an
// experiment grid can replay the identical request stream without each
// paying the generator's cost again. The arrays are written once by
// Materialize and read-only afterwards, which makes a Materialized safe to
// share across goroutines; each reader owns its own Cursor.
//
// The layout costs 37 bytes per request (8 time + 4 client + 8 object +
// 8 size + 8 version + 1 flags); Seq is implicit in the index. A full
// three-workload set at scale 0.05 (~1.8M requests) is ~65 MB.
type Materialized struct {
	p        Profile
	times    []time.Duration
	clients  []int32
	objects  []uint64
	sizes    []int64
	versions []int64
	flags    []uint8
}

// Request flag bits.
const (
	flagUncachable uint8 = 1 << 0
	flagError      uint8 = 1 << 1
)

// Materialize drains a fresh Generator for p into a columnar buffer. The
// replay is request-for-request identical to streaming the generator
// directly (the equivalence is locked in by tests).
func Materialize(p Profile) (*Materialized, error) {
	g, err := NewGenerator(p)
	if err != nil {
		return nil, err
	}
	n := int(p.Requests)
	m := &Materialized{
		p:        p,
		times:    make([]time.Duration, 0, n),
		clients:  make([]int32, 0, n),
		objects:  make([]uint64, 0, n),
		sizes:    make([]int64, 0, n),
		versions: make([]int64, 0, n),
		flags:    make([]uint8, 0, n),
	}
	for {
		req, err := g.Next()
		if err == io.EOF {
			return m, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: materialize %s: %w", p.Name, err)
		}
		var f uint8
		if req.Uncachable {
			f |= flagUncachable
		}
		if req.Error {
			f |= flagError
		}
		m.times = append(m.times, req.Time)
		m.clients = append(m.clients, int32(req.Client))
		m.objects = append(m.objects, req.Object)
		m.sizes = append(m.sizes, req.Size)
		m.versions = append(m.versions, req.Version)
		m.flags = append(m.flags, f)
	}
}

// Profile returns the profile the trace was generated from.
func (m *Materialized) Profile() Profile { return m.p }

// Len returns the number of requests in the trace.
func (m *Materialized) Len() int { return len(m.times) }

// At reconstructs request i. i must be in [0, Len()).
func (m *Materialized) At(i int) Request {
	return Request{
		Seq:        int64(i),
		Time:       m.times[i],
		Client:     int(m.clients[i]),
		Object:     m.objects[i],
		Size:       m.sizes[i],
		Version:    m.versions[i],
		Uncachable: m.flags[i]&flagUncachable != 0,
		Error:      m.flags[i]&flagError != 0,
	}
}

// Reader returns a fresh Cursor positioned at the start. Cursors are
// independent: many may read the same Materialized concurrently.
func (m *Materialized) Reader() *Cursor { return &Cursor{m: m} }

// Cursor streams a Materialized trace through the Reader interface.
type Cursor struct {
	m   *Materialized
	pos int
}

// Next returns the next request or io.EOF.
func (c *Cursor) Next() (Request, error) {
	if c.pos >= c.m.Len() {
		return Request{}, errEOF
	}
	r := c.m.At(c.pos)
	c.pos++
	return r, nil
}

// Reset rewinds the cursor to the start of the trace.
func (c *Cursor) Reset() { c.pos = 0 }

// matEntry is one memo slot; its once gates generation so that concurrent
// first requests for the same profile materialize exactly once.
type matEntry struct {
	once sync.Once
	m    *Materialized
	err  error
}

var (
	matMu    sync.Mutex
	matCache = map[Profile]*matEntry{}
)

// MaterializedFor returns the memoized Materialized trace for p, generating
// it on first use. The memo is keyed on the full Profile value (which
// embeds scale-derived counts and the seed), so every experiment in a
// process shares one buffer per distinct workload. Concurrent callers for
// the same profile block on a single generation.
func MaterializedFor(p Profile) (*Materialized, error) {
	matMu.Lock()
	e, ok := matCache[p]
	if !ok {
		e = &matEntry{}
		matCache[p] = e
	}
	matMu.Unlock()
	e.once.Do(func() {
		e.m, e.err = Materialize(p)
	})
	if e.err != nil {
		// Drop failed entries so a later (fixed) retry is possible.
		matMu.Lock()
		if matCache[p] == e {
			delete(matCache, p)
		}
		matMu.Unlock()
	}
	return e.m, e.err
}

// ResetMaterializedCache drops every memoized trace. Tests and benchmarks
// use it to measure cold-path cost and to bound memory across many scales.
func ResetMaterializedCache() {
	matMu.Lock()
	matCache = map[Profile]*matEntry{}
	matMu.Unlock()
}
