package trace

import (
	"fmt"
	"time"
)

// Profile parameterizes a synthetic workload. The three constructors below
// (DECProfile, BerkeleyProfile, ProdigyProfile) reproduce the published
// characteristics of the paper's traces (Table 4) at a configurable scale.
type Profile struct {
	// Name labels the workload in reports ("DEC", "Berkeley", "Prodigy").
	Name string

	// Requests is the number of requests in the trace.
	Requests int64

	// DistinctURLs is the size of the object population. The ratio
	// DistinctURLs/Requests sets the compulsory-miss floor: the paper
	// reports 19% for DEC (4.15M/22.1M).
	DistinctURLs int

	// Clients is the number of distinct client IDs.
	Clients int

	// Days is the virtual span of the trace.
	Days float64

	// WarmupDays is the prefix used to warm caches before statistics are
	// gathered (the paper uses the first two days of each trace).
	WarmupDays float64

	// ZipfAlpha is the popularity skew.
	ZipfAlpha float64

	// MedianSize, SizeSigma, MinSize, MaxSize parameterize the lognormal
	// object-size distribution.
	MedianSize int64
	SizeSigma  float64
	MinSize    int64
	MaxSize    int64

	// MutableFrac is the fraction of objects that ever change;
	// Min/MaxUpdatePeriod bound the log-uniform update period of mutable
	// objects. Together they set the communication-miss rate.
	MutableFrac     float64
	MinUpdatePeriod time.Duration
	MaxUpdatePeriod time.Duration

	// UncachableFrac is the fraction of objects that are uncachable
	// (CGI, non-GET, dynamic). ErrorFrac is the per-request probability
	// of an error reply.
	UncachableFrac float64
	ErrorFrac      float64

	// DynamicClientIDs models Prodigy's dial-up ID binding: a request's
	// client ID is drawn per session rather than per user, so per-client
	// request streams are short.
	DynamicClientIDs bool

	// LocalityFrac is the probability that a request revisits an object
	// from the client's own recent history instead of drawing from the
	// global popularity distribution. Real proxy traces show strong
	// per-client revisit locality; it is what gives leaf proxies their
	// ~50% hit rates in Figure 3.
	LocalityFrac float64

	// HistorySize bounds each client's revisit history (0 means 64).
	HistorySize int

	// Seed makes the trace reproducible.
	Seed int64
}

// Validate reports the first configuration error, or nil.
func (p Profile) Validate() error {
	switch {
	case p.Requests <= 0:
		return fmt.Errorf("trace: profile %q: Requests must be positive, got %d", p.Name, p.Requests)
	case p.DistinctURLs <= 0:
		return fmt.Errorf("trace: profile %q: DistinctURLs must be positive, got %d", p.Name, p.DistinctURLs)
	case p.Clients <= 0:
		return fmt.Errorf("trace: profile %q: Clients must be positive, got %d", p.Name, p.Clients)
	case p.Days <= 0:
		return fmt.Errorf("trace: profile %q: Days must be positive, got %g", p.Name, p.Days)
	case p.WarmupDays < 0 || p.WarmupDays >= p.Days:
		return fmt.Errorf("trace: profile %q: WarmupDays must be in [0, Days), got %g", p.Name, p.WarmupDays)
	case p.ZipfAlpha < 0:
		return fmt.Errorf("trace: profile %q: ZipfAlpha must be non-negative, got %g", p.Name, p.ZipfAlpha)
	case p.MedianSize <= 0 || p.MinSize <= 0 || p.MaxSize < p.MinSize:
		return fmt.Errorf("trace: profile %q: invalid size parameters (median %d, min %d, max %d)",
			p.Name, p.MedianSize, p.MinSize, p.MaxSize)
	case p.SizeSigma < 0:
		return fmt.Errorf("trace: profile %q: SizeSigma must be non-negative, got %g", p.Name, p.SizeSigma)
	case p.MutableFrac < 0 || p.MutableFrac > 1:
		return fmt.Errorf("trace: profile %q: MutableFrac must be in [0,1], got %g", p.Name, p.MutableFrac)
	case p.MutableFrac > 0 && (p.MinUpdatePeriod <= 0 || p.MaxUpdatePeriod < p.MinUpdatePeriod):
		return fmt.Errorf("trace: profile %q: invalid update periods (min %v, max %v)",
			p.Name, p.MinUpdatePeriod, p.MaxUpdatePeriod)
	case p.UncachableFrac < 0 || p.UncachableFrac > 1:
		return fmt.Errorf("trace: profile %q: UncachableFrac must be in [0,1], got %g", p.Name, p.UncachableFrac)
	case p.ErrorFrac < 0 || p.ErrorFrac > 1:
		return fmt.Errorf("trace: profile %q: ErrorFrac must be in [0,1], got %g", p.Name, p.ErrorFrac)
	case p.LocalityFrac < 0 || p.LocalityFrac > 1:
		return fmt.Errorf("trace: profile %q: LocalityFrac must be in [0,1], got %g", p.Name, p.LocalityFrac)
	case p.HistorySize < 0:
		return fmt.Errorf("trace: profile %q: HistorySize must be non-negative, got %d", p.Name, p.HistorySize)
	}
	return nil
}

// Span returns the virtual duration of the whole trace.
func (p Profile) Span() time.Duration {
	return time.Duration(p.Days * float64(24*time.Hour))
}

// Warmup returns the virtual duration of the warmup prefix.
func (p Profile) Warmup() time.Duration {
	return time.Duration(p.WarmupDays * float64(24*time.Hour))
}

// Scale is the fraction of the real trace's request count a profile models.
// Scale 1.0 means full published size.
type Scale float64

// Default scales used by the experiment harness. The "laptop" scale keeps
// each trace replay to a few seconds; "paper" is the published size.
const (
	ScaleLaptop Scale = 0.02
	ScaleSmall  Scale = 0.005
	ScaleFull   Scale = 1.0
)

// baseProfile carries the shared defaults of all three workloads.
func baseProfile() Profile {
	return Profile{
		ZipfAlpha:       0.80,
		MedianSize:      4 << 10,
		SizeSigma:       1.3,
		MinSize:         256,
		MaxSize:         8 << 20,
		MinUpdatePeriod: 2 * time.Hour,
		MaxUpdatePeriod: 45 * 24 * time.Hour,
		WarmupDays:      2,
		LocalityFrac:    0.45,
		HistorySize:     64,
	}
}

// scaleCount scales a published count, holding a sane floor.
func scaleCount(published int64, s Scale) int64 {
	n := int64(float64(published) * float64(s))
	if n < 1000 {
		n = 1000
	}
	return n
}

// scaleDays compresses the trace's virtual span by the same factor as its
// request count, so that the request arrival RATE matches the published
// trace at any scale. This keeps every rate-dependent quantity comparable
// to the paper: hint-propagation delays expressed in minutes (Figure 6),
// root update rates in updates/second (Table 5), and the interleaving of
// object updates with re-reads (communication misses, update-push
// efficiency).
func scaleDays(published float64, s Scale) float64 {
	d := published * float64(s)
	const minDays = 0.01 // ~15 minutes, keeps tiny scales well-formed
	if d < minDays {
		d = minDays
	}
	return d
}

// scaleDuration compresses an absolute duration (e.g. an object update
// period) by the scale factor, so that its ratio to inter-read gaps — and
// therefore the communication-miss rate — is invariant across scales.
func scaleDuration(published time.Duration, s Scale) time.Duration {
	d := time.Duration(float64(published) * float64(s))
	if d < time.Second {
		d = time.Second
	}
	return d
}

// populationFactor converts a published observed-distinct-URL count into
// the generator's underlying object population. With revisit locality only
// ~2/3 of draws come from the global distribution and popular ranks repeat,
// so the population must exceed the observed count for the measured
// first-access fraction to match the published distinct/request ratio
// (0.19 for DEC). Calibrated against Table 4.
const populationFactor = 2.0

func populationFor(publishedDistinct int64) int64 {
	return int64(float64(publishedDistinct) * populationFactor)
}

// DECProfile models Digital's proxy trace: 16,660 clients, 22.1M accesses,
// 4.15M distinct URLs over 21 days (Table 4). Client IDs are stable.
func DECProfile(s Scale) Profile {
	p := baseProfile()
	p.Name = "DEC"
	p.Requests = scaleCount(22_100_000, s)
	p.DistinctURLs = int(scaleCount(populationFor(4_150_000), s))
	p.Clients = 16_660
	p.Days = scaleDays(21, s)
	p.WarmupDays = p.Days * (2.0 / 21)
	p.MinUpdatePeriod = scaleDuration(p.MinUpdatePeriod, s)
	p.MaxUpdatePeriod = scaleDuration(p.MaxUpdatePeriod, s)
	p.MutableFrac = 0.08
	p.UncachableFrac = 0.06
	p.ErrorFrac = 0.02
	p.Seed = 0xDEC
	return p
}

// BerkeleyProfile models the UC Berkeley Home-IP trace: 8,372 clients, 8.8M
// accesses, 1.8M distinct URLs over 19 days (Table 4). The Berkeley workload
// shows noticeably more uncachable requests and communication misses than
// DEC (Figure 2).
func BerkeleyProfile(s Scale) Profile {
	p := baseProfile()
	p.Name = "Berkeley"
	p.Requests = scaleCount(8_800_000, s)
	p.DistinctURLs = int(scaleCount(populationFor(1_800_000), s))
	p.Clients = 8_372
	p.Days = scaleDays(19, s)
	p.WarmupDays = p.Days * (2.0 / 19)
	p.MinUpdatePeriod = scaleDuration(p.MinUpdatePeriod, s)
	p.MaxUpdatePeriod = scaleDuration(p.MaxUpdatePeriod, s)
	p.MutableFrac = 0.14
	p.UncachableFrac = 0.13
	p.ErrorFrac = 0.03
	p.Seed = 0xBE4C
	return p
}

// ProdigyProfile models the Prodigy ISP dial-up trace: 35,354 dynamic client
// IDs, 4.2M accesses, 1.2M distinct URLs over 3 days (Table 4).
func ProdigyProfile(s Scale) Profile {
	p := baseProfile()
	p.Name = "Prodigy"
	p.Requests = scaleCount(4_200_000, s)
	p.DistinctURLs = int(scaleCount(populationFor(1_200_000), s))
	p.Clients = 35_354
	p.Days = scaleDays(3, s)
	p.WarmupDays = p.Days * (0.5 / 3)
	p.MinUpdatePeriod = scaleDuration(p.MinUpdatePeriod, s)
	p.MaxUpdatePeriod = scaleDuration(p.MaxUpdatePeriod, s)
	p.MutableFrac = 0.12
	p.UncachableFrac = 0.11
	p.ErrorFrac = 0.03
	p.DynamicClientIDs = true
	p.Seed = 0x9D0D
	return p
}

// Profiles returns the paper's three workloads at a common scale, in the
// order the paper reports them.
func Profiles(s Scale) []Profile {
	return []Profile{DECProfile(s), BerkeleyProfile(s), ProdigyProfile(s)}
}
