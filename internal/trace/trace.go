// Package trace models web-proxy request traces and provides seeded
// synthetic generators calibrated to the three workloads the paper studies
// (Table 4): Digital Equipment Corporation's proxy trace, UC Berkeley's
// Home-IP service trace, and Prodigy ISP's dial-up trace.
//
// The original traces are proprietary and far too large for a laptop-scale
// reproduction (4.2-22.1 million requests), so the generators reproduce the
// statistical structure the simulation results depend on: the ratio of
// distinct URLs to requests (which sets the compulsory-miss rate), a
// Zipf-like popularity skew (which sets how hit rate grows with sharing),
// heavy-tailed object sizes around a 10 KB mean, a per-object modification
// process (communication misses), and per-workload uncachable and error
// fractions. Every generator is deterministic given its seed.
package trace

import (
	"fmt"
	"io"
	"time"
)

// errEOF is the sentinel returned by readers when the trace is exhausted.
var errEOF = io.EOF

// Request is a single entry in a proxy trace: one client asking for one
// object at one instant of virtual time.
type Request struct {
	// Seq is the zero-based position of the request in the trace.
	Seq int64

	// Time is the virtual time of the request measured from trace start.
	Time time.Duration

	// Client identifies the requesting client. Clients are dense integers
	// in [0, Profile.Clients).
	Client int

	// Object identifies the requested object. Objects are dense integers
	// in [0, Profile.DistinctURLs), ordered by popularity rank (object 0
	// is the most popular).
	Object uint64

	// Size is the object's transfer size in bytes.
	Size int64

	// Version is the object's version at request time. A version change
	// between two accesses means the object was modified in between, so a
	// cached copy of the older version must be treated as a
	// communication miss.
	Version int64

	// Uncachable marks requests the cache must forward to the origin
	// server (CGI, non-GET, cache-control: no-cache, ...).
	Uncachable bool

	// Error marks requests whose reply is an error and therefore not
	// cachable.
	Error bool
}

// URL renders the canonical URL for the request's object. Object IDs are
// spread over a population of synthetic servers so that URL hashing (MD5 in
// the hint protocol) sees realistic host diversity.
func (r Request) URL() string {
	return ObjectURL(r.Object)
}

// ObjectURL renders the canonical URL for an object ID.
func ObjectURL(object uint64) string {
	// ~1 server per 64 objects mirrors the many-servers shape of real
	// traces without tracking server state.
	server := object / 64
	return fmt.Sprintf("http://server-%d.example.com/obj/%d", server, object)
}

// Cachable reports whether a cache may store the reply to this request.
func (r Request) Cachable() bool {
	return !r.Uncachable && !r.Error
}

// Reader is a stream of trace requests. Next returns io.EOF after the last
// request.
type Reader interface {
	Next() (Request, error)
}

// SliceReader adapts an in-memory request slice to the Reader interface.
type SliceReader struct {
	reqs []Request
	pos  int
}

// NewSliceReader returns a Reader over reqs. The slice is not copied; the
// caller must not mutate it while reading.
func NewSliceReader(reqs []Request) *SliceReader {
	return &SliceReader{reqs: reqs}
}

// Next returns the next request or io.EOF.
func (s *SliceReader) Next() (Request, error) {
	if s.pos >= len(s.reqs) {
		return Request{}, errEOF
	}
	r := s.reqs[s.pos]
	s.pos++
	return r, nil
}

// Reset rewinds the reader to the start of the slice.
func (s *SliceReader) Reset() { s.pos = 0 }

// ReadAll drains a Reader into a slice.
func ReadAll(r Reader) ([]Request, error) {
	var out []Request
	for {
		req, err := r.Next()
		if err != nil {
			if err == errEOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, req)
	}
}
