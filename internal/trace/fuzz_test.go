package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// FuzzTraceTextIO fuzzes the text trace parser with arbitrary input: Next
// must never panic, and whatever it accepts must survive a
// write -> re-read round trip exactly (the format's contract: "the format
// round-trips exactly and is what cmd/tracegen emits").
func FuzzTraceTextIO(f *testing.F) {
	f.Add("0 0 0 0 0 1 -\n")
	f.Add("1 1000 3 42 8192 2 u\n5 2000 4 43 16384 1 e\n")
	f.Add("# comment\n\n2 5 1 2 3 4 ue\n")
	f.Add("nonsense line\n")
	f.Add("1 2 3 4 5 6 7 8\n")
	f.Add("-1 -2 -3 18446744073709551615 -5 -6 eu\n")
	f.Add(strings.Repeat("9", 40) + " 0 0 0 0 1 -\n")

	f.Fuzz(func(t *testing.T, data string) {
		// Parse whatever the fuzzer produced. The reader stops at the
		// first malformed line; everything before it must round-trip.
		reqs := readAllLenient(t, strings.NewReader(data))

		var buf bytes.Buffer
		n, err := WriteText(&buf, NewSliceReader(reqs))
		if err != nil {
			t.Fatalf("WriteText of parsed requests failed: %v", err)
		}
		if n != int64(len(reqs)) {
			t.Fatalf("WriteText wrote %d of %d requests", n, len(reqs))
		}
		first := buf.String()

		back, err := ReadAll(NewTextReader(&buf))
		if err != nil {
			t.Fatalf("re-read of our own output failed: %v", err)
		}
		if len(back) != len(reqs) {
			t.Fatalf("round trip lost requests: %d -> %d", len(reqs), len(back))
		}
		for i := range reqs {
			if back[i] != reqs[i] {
				t.Fatalf("request %d changed in round trip:\n in: %+v\nout: %+v",
					i, reqs[i], back[i])
			}
		}

		// Second write is byte-identical (the canonical form is a fixed
		// point).
		var buf2 bytes.Buffer
		if _, err := WriteText(&buf2, NewSliceReader(back)); err != nil {
			t.Fatal(err)
		}
		if buf2.String() != first {
			t.Fatal("canonical text form is not a fixed point")
		}
	})
}

// readAllLenient drains a TextReader, stopping (without failing) at the
// first malformed line — fuzz inputs are mostly garbage, and the property
// under test is "no panic, and accepted lines round-trip".
func readAllLenient(t *testing.T, r io.Reader) []Request {
	t.Helper()
	tr := NewTextReader(r)
	var reqs []Request
	for {
		req, err := tr.Next()
		if err != nil {
			return reqs // io.EOF or a parse error: either ends the prefix
		}
		reqs = append(reqs, req)
	}
}
