package trace

import (
	"fmt"
	"io"
	"math/rand"
	"time"
)

// Generator produces a synthetic trace for a Profile. It implements Reader.
// Generators are deterministic: two generators built from equal profiles
// yield identical request streams. A Generator is not safe for concurrent
// use.
type Generator struct {
	p    Profile
	rng  *rand.Rand
	zipf *Zipf
	span time.Duration
	seq  int64

	// Dynamic client-ID session state (Prodigy).
	sessionClient    int
	sessionRemaining int

	// history holds each client's recent objects (a bounded ring) for
	// the revisit-locality process.
	history map[int]*clientHistory
}

// clientHistory is a bounded ring of a client's recent objects.
type clientHistory struct {
	ring []uint64
	next int
	full bool
}

func (h *clientHistory) add(obj uint64) {
	if len(h.ring) == 0 {
		return
	}
	h.ring[h.next] = obj
	h.next++
	if h.next == len(h.ring) {
		h.next = 0
		h.full = true
	}
}

func (h *clientHistory) len() int {
	if h.full {
		return len(h.ring)
	}
	return h.next
}

// pick returns the i-th most recent object (0 = most recent). i must be in
// [0, len()).
func (h *clientHistory) pick(i int) uint64 {
	idx := h.next - 1 - i
	for idx < 0 {
		idx += len(h.ring)
	}
	return h.ring[idx]
}

// meanSessionLength is the mean number of requests a dial-up client issues
// under one dynamically bound ID before reconnecting under a new one.
const meanSessionLength = 24

// NewGenerator validates the profile and builds its generator. The Zipf CDF
// costs 8 bytes per distinct URL; everything else is O(1).
func NewGenerator(p Profile) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Generator{
		p:       p,
		rng:     rand.New(rand.NewSource(p.Seed)),
		zipf:    NewZipf(p.DistinctURLs, p.ZipfAlpha),
		span:    p.Span(),
		history: make(map[int]*clientHistory),
	}, nil
}

// MustGenerator is NewGenerator for profiles known statically valid; it
// panics on error. Intended for tests and the experiment harness.
func MustGenerator(p Profile) *Generator {
	g, err := NewGenerator(p)
	if err != nil {
		panic(err)
	}
	return g
}

// Profile returns the profile the generator was built from.
func (g *Generator) Profile() Profile { return g.p }

// Next returns the next request, or io.EOF once Profile.Requests have been
// produced.
func (g *Generator) Next() (Request, error) {
	if g.seq >= g.p.Requests {
		return Request{}, io.EOF
	}
	seq := g.seq
	g.seq++

	// Requests are evenly spaced across the trace span. The simulators
	// only need plausible inter-arrival times (for hint-staleness windows
	// and update-rate accounting), not diurnal structure.
	t := time.Duration(float64(g.span) * float64(seq) / float64(g.p.Requests))

	client := g.nextClient()
	object := g.nextObject(client)
	attrs := g.p.attrsFor(object)

	req := Request{
		Seq:        seq,
		Time:       t,
		Client:     client,
		Object:     object,
		Size:       attrs.size,
		Version:    attrs.versionAt(t),
		Uncachable: attrs.uncachable,
		Error:      g.rng.Float64() < g.p.ErrorFrac,
	}
	return req, nil
}

// nextObject draws the object for a request: with probability LocalityFrac
// a revisit of one of the client's recent objects (biased toward the most
// recent), otherwise a fresh draw from the global popularity distribution.
// Either way the object enters the client's history.
func (g *Generator) nextObject(client int) uint64 {
	h := g.history[client]
	if h == nil {
		size := g.p.HistorySize
		if size == 0 {
			size = 64
		}
		h = &clientHistory{ring: make([]uint64, size)}
		g.history[client] = h
	}

	var object uint64
	if n := h.len(); n > 0 && g.rng.Float64() < g.p.LocalityFrac {
		// Recency-biased pick: halve the window a few times so the
		// most recent objects dominate, as in LRU-stack reference
		// models.
		window := n
		for window > 1 && g.rng.Float64() < 0.5 {
			window = (window + 1) / 2
		}
		object = h.pick(g.rng.Intn(window))
	} else {
		object = uint64(g.zipf.Sample(g.rng))
	}
	h.add(object)
	return object
}

// nextClient draws the client ID for the next request. With stable IDs every
// request draws independently; with dynamic IDs, runs of requests share a
// session-bound ID.
func (g *Generator) nextClient() int {
	if !g.p.DynamicClientIDs {
		return g.rng.Intn(g.p.Clients)
	}
	if g.sessionRemaining == 0 {
		g.sessionClient = g.rng.Intn(g.p.Clients)
		// Geometric session length with the configured mean.
		g.sessionRemaining = 1
		for g.rng.Float64() > 1.0/meanSessionLength {
			g.sessionRemaining++
		}
	}
	g.sessionRemaining--
	return g.sessionClient
}

// Characteristics summarizes a trace the way Table 4 does, plus the derived
// quantities the analysis in Section 2.2 relies on.
type Characteristics struct {
	Name            string
	Requests        int64
	DistinctObjects int
	DistinctClients int
	Days            float64
	TotalBytes      int64
	MeanSize        int64
	FirstAccessFrac float64 // compulsory-miss floor
	UncachableFrac  float64
	ErrorFrac       float64
}

// Measure drains a reader and computes its characteristics. name and days
// label the result.
func Measure(name string, days float64, r Reader) (Characteristics, error) {
	c := Characteristics{Name: name, Days: days}
	seenObjects := make(map[uint64]struct{})
	seenClients := make(map[int]struct{})
	var firstAccesses, uncachable, errors int64
	for {
		req, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return c, fmt.Errorf("measure %s: %w", name, err)
		}
		c.Requests++
		c.TotalBytes += req.Size
		if _, ok := seenObjects[req.Object]; !ok {
			seenObjects[req.Object] = struct{}{}
			firstAccesses++
		}
		seenClients[req.Client] = struct{}{}
		if req.Uncachable {
			uncachable++
		}
		if req.Error {
			errors++
		}
	}
	c.DistinctObjects = len(seenObjects)
	c.DistinctClients = len(seenClients)
	if c.Requests > 0 {
		c.MeanSize = c.TotalBytes / c.Requests
		c.FirstAccessFrac = float64(firstAccesses) / float64(c.Requests)
		c.UncachableFrac = float64(uncachable) / float64(c.Requests)
		c.ErrorFrac = float64(errors) / float64(c.Requests)
	}
	return c, nil
}
