package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^alpha. Unlike math/rand's Zipf it supports alpha <= 1, which is
// the regime measured for web-object popularity (alpha around 0.7-0.9).
//
// The sampler precomputes the cumulative mass function once (O(n) space) and
// samples by binary search (O(log n) per draw). It is not safe for concurrent
// use with a shared *rand.Rand.
type Zipf struct {
	cdf   []float64
	alpha float64
}

// NewZipf builds a sampler over n ranks with skew alpha. It panics if n <= 0
// or alpha < 0; both indicate programmer error when wiring a workload.
func NewZipf(n int, alpha float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("trace: NewZipf n must be positive, got %d", n))
	}
	if alpha < 0 {
		panic(fmt.Sprintf("trace: NewZipf alpha must be non-negative, got %g", alpha))
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -alpha)
		cdf[i] = sum
	}
	// Normalize so the final entry is exactly 1: makes Sample's upper
	// bound airtight against float rounding.
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1
	return &Zipf{cdf: cdf, alpha: alpha}
}

// N returns the number of ranks the sampler draws from.
func (z *Zipf) N() int { return len(z.cdf) }

// Alpha returns the configured skew.
func (z *Zipf) Alpha() float64 { return z.alpha }

// Sample draws one rank using rng.
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Mass returns the probability of a given rank. It panics if rank is out of
// range.
func (z *Zipf) Mass(rank int) float64 {
	if rank == 0 {
		return z.cdf[0]
	}
	return z.cdf[rank] - z.cdf[rank-1]
}
