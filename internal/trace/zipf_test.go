package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZipfSampleInRange(t *testing.T) {
	z := NewZipf(100, 0.8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10_000; i++ {
		r := z.Sample(rng)
		if r < 0 || r >= 100 {
			t.Fatalf("sample %d out of range [0,100)", r)
		}
	}
}

func TestZipfSkewOrdersRanks(t *testing.T) {
	z := NewZipf(1000, 0.8)
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, 1000)
	for i := 0; i < 200_000; i++ {
		counts[z.Sample(rng)]++
	}
	if counts[0] <= counts[10] {
		t.Errorf("rank 0 (%d draws) should beat rank 10 (%d draws)", counts[0], counts[10])
	}
	if counts[0] <= counts[500] {
		t.Errorf("rank 0 (%d draws) should beat rank 500 (%d draws)", counts[0], counts[500])
	}
	// With alpha=0.8 over 1000 ranks, rank 0 carries about 6.4% of the
	// mass (1/H_{1000,0.8}); verify the empirical share is in the right
	// ballpark.
	share := float64(counts[0]) / 200_000
	if share < 0.045 || share > 0.085 {
		t.Errorf("rank-0 share = %.4f, want around 0.064", share)
	}
}

func TestZipfMassSumsToOne(t *testing.T) {
	for _, alpha := range []float64{0, 0.5, 0.8, 1.0, 1.5} {
		z := NewZipf(257, alpha)
		sum := 0.0
		for i := 0; i < z.N(); i++ {
			sum += z.Mass(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("alpha=%g: total mass = %.12f, want 1", alpha, sum)
		}
	}
}

func TestZipfAlphaZeroIsUniform(t *testing.T) {
	z := NewZipf(10, 0)
	for i := 0; i < 10; i++ {
		if math.Abs(z.Mass(i)-0.1) > 1e-9 {
			t.Errorf("mass(%d) = %g, want 0.1", i, z.Mass(i))
		}
	}
}

func TestZipfPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct {
		name  string
		n     int
		alpha float64
	}{
		{"zero n", 0, 1},
		{"negative n", -5, 1},
		{"negative alpha", 10, -0.1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %g) did not panic", tc.n, tc.alpha)
				}
			}()
			NewZipf(tc.n, tc.alpha)
		})
	}
}

func TestZipfSampleAlwaysInRangeQuick(t *testing.T) {
	f := func(seed int64, nRaw uint16, alphaRaw uint8) bool {
		n := int(nRaw%5000) + 1
		alpha := float64(alphaRaw) / 64.0 // 0..~4
		z := NewZipf(n, alpha)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			if r := z.Sample(rng); r < 0 || r >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
