package trace

import (
	"io"
	"sync"
	"testing"
)

// TestMaterializedMatchesGenerator locks in the tentpole equivalence: a
// materialized replay must be request-for-request identical to streaming
// the generator, for all three workloads.
func TestMaterializedMatchesGenerator(t *testing.T) {
	for _, p := range Profiles(0.002) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			m, err := Materialize(p)
			if err != nil {
				t.Fatal(err)
			}
			if int64(m.Len()) != p.Requests {
				t.Fatalf("Len = %d, want %d", m.Len(), p.Requests)
			}
			g, err := NewGenerator(p)
			if err != nil {
				t.Fatal(err)
			}
			cur := m.Reader()
			for i := 0; ; i++ {
				want, werr := g.Next()
				got, gerr := cur.Next()
				if werr != gerr {
					t.Fatalf("request %d: err %v vs generator err %v", i, gerr, werr)
				}
				if werr == io.EOF {
					break
				}
				if got != want {
					t.Fatalf("request %d: materialized %+v != generator %+v", i, got, want)
				}
			}
		})
	}
}

func TestMaterializedCursorReset(t *testing.T) {
	p := DECProfile(0.001)
	m, err := Materialize(p)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Reader()
	first, err := c.Next()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := c.Next(); err == io.EOF {
			break
		}
	}
	c.Reset()
	again, err := c.Next()
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatalf("after Reset, first request %+v != original %+v", again, first)
	}
}

// TestMaterializedForMemo asserts the memo returns the identical buffer for
// equal profiles and distinct buffers for distinct profiles.
func TestMaterializedForMemo(t *testing.T) {
	ResetMaterializedCache()
	defer ResetMaterializedCache()

	p := DECProfile(0.001)
	a, err := MaterializedFor(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MaterializedFor(p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("equal profiles returned distinct materialized buffers")
	}
	q, err := MaterializedFor(BerkeleyProfile(0.001))
	if err != nil {
		t.Fatal(err)
	}
	if q == a {
		t.Fatal("distinct profiles shared a materialized buffer")
	}
}

func TestMaterializedForInvalidProfile(t *testing.T) {
	ResetMaterializedCache()
	defer ResetMaterializedCache()
	var bad Profile // zero value fails validation
	if _, err := MaterializedFor(bad); err == nil {
		t.Fatal("expected error for invalid profile")
	}
}

// TestMaterializedForConcurrent hammers the memo from many goroutines (run
// under -race in CI): generation must happen once and every reader must see
// the same request stream.
func TestMaterializedForConcurrent(t *testing.T) {
	ResetMaterializedCache()
	defer ResetMaterializedCache()

	p := DECProfile(0.001)
	const workers = 8
	bufs := make([]*Materialized, workers)
	firsts := make([]Request, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m, err := MaterializedFor(p)
			if err != nil {
				t.Error(err)
				return
			}
			bufs[w] = m
			r, err := m.Reader().Next()
			if err != nil {
				t.Error(err)
				return
			}
			firsts[w] = r
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if bufs[w] != bufs[0] {
			t.Fatalf("worker %d got a different buffer", w)
		}
		if firsts[w] != firsts[0] {
			t.Fatalf("worker %d read a different first request", w)
		}
	}
}
