package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	p := smallProfile()
	p.Requests = 2_000
	orig, err := ReadAll(MustGenerator(p))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	n, err := WriteText(&buf, NewSliceReader(orig))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(orig)) {
		t.Fatalf("wrote %d requests, want %d", n, len(orig))
	}

	parsed, err := ReadAll(NewTextReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(orig) {
		t.Fatalf("parsed %d requests, want %d", len(parsed), len(orig))
	}
	for i := range orig {
		if parsed[i] != orig[i] {
			t.Fatalf("request %d: parsed %+v != original %+v", i, parsed[i], orig[i])
		}
	}
}

func TestTextReaderSkipsCommentsAndBlank(t *testing.T) {
	in := "# header comment\n\n0 0 1 2 100 1 -\n# mid comment\n1 5 3 4 200 2 ue\n"
	reqs, err := ReadAll(NewTextReader(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("got %d requests, want 2", len(reqs))
	}
	if !reqs[1].Uncachable || !reqs[1].Error {
		t.Errorf("flags not parsed: %+v", reqs[1])
	}
}

func TestTextReaderErrors(t *testing.T) {
	cases := []string{
		"1 2 3\n",               // too few fields
		"x 0 1 2 100 1 -\n",     // bad seq
		"0 y 1 2 100 1 -\n",     // bad time
		"0 0 z 2 100 1 -\n",     // bad client
		"0 0 1 q 100 1 -\n",     // bad object
		"0 0 1 2 sz 1 -\n",      // bad size
		"0 0 1 2 100 vv -\n",    // bad version
		"0 0 1 2 100 1 weird\n", // bad flags
	}
	for _, in := range cases {
		r := NewTextReader(strings.NewReader(in))
		if _, err := r.Next(); err == nil || err == io.EOF {
			t.Errorf("input %q: expected a parse error, got %v", in, err)
		}
	}
}

func TestSliceReaderReset(t *testing.T) {
	reqs := []Request{{Seq: 0}, {Seq: 1}}
	r := NewSliceReader(reqs)
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
	r.Reset()
	got, err := r.Next()
	if err != nil || got.Seq != 0 {
		t.Fatalf("after reset got (%+v, %v), want seq 0", got, err)
	}
}

func TestObjectURLStable(t *testing.T) {
	if ObjectURL(7) != ObjectURL(7) {
		t.Error("ObjectURL not deterministic")
	}
	if ObjectURL(7) == ObjectURL(8) {
		t.Error("distinct objects share a URL")
	}
	if ObjectURL(0) == "" || !strings.HasPrefix(ObjectURL(0), "http://") {
		t.Errorf("unexpected URL form: %q", ObjectURL(0))
	}
}
