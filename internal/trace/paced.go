package trace

import (
	"fmt"
	"time"
)

// Paced maps a materialized trace's virtual timeline onto a wall-clock
// replay window: request i's intended arrival is Offset(i) after the
// replay's start. The mapping rescales the trace's own inter-arrival
// pattern linearly, so bursts and lulls in the generated workload survive
// compression — a trace spanning 21 virtual days replayed over 10 wall
// seconds keeps the same relative arrival shape.
//
// Paced is the open-loop half of the wire-level load driver: the driver
// issues request i at start+Offset(i) regardless of whether earlier
// requests have completed, which is what keeps recorded latencies honest
// about queueing delay (no coordinated omission).
type Paced struct {
	m     *Materialized
	span  time.Duration
	vspan time.Duration
}

// NewPaced rescales m's virtual timeline to the wall-clock window span.
// The trace's virtual span is taken from its last request's timestamp; a
// degenerate trace whose requests all share one timestamp is spread
// uniformly over the window instead.
func NewPaced(m *Materialized, span time.Duration) (*Paced, error) {
	if m == nil || m.Len() == 0 {
		return nil, fmt.Errorf("trace: paced replay needs a non-empty trace")
	}
	if span <= 0 {
		return nil, fmt.Errorf("trace: paced replay window must be positive, got %v", span)
	}
	return &Paced{m: m, span: span, vspan: m.times[m.Len()-1]}, nil
}

// Len returns the number of requests in the underlying trace.
func (p *Paced) Len() int { return p.m.Len() }

// Span returns the wall-clock replay window.
func (p *Paced) Span() time.Duration { return p.span }

// Offset returns request i's intended wall-clock arrival measured from the
// replay's start. Offsets are non-decreasing and the last request lands at
// or before Span. i must be in [0, Len()).
func (p *Paced) Offset(i int) time.Duration {
	if p.vspan <= 0 {
		// All requests share one virtual instant: spread them uniformly.
		return time.Duration(int64(p.span) * int64(i) / int64(p.m.Len()))
	}
	return time.Duration(float64(p.m.times[i]) * float64(p.span) / float64(p.vspan))
}

// At returns request i of the underlying trace.
func (p *Paced) At(i int) Request { return p.m.At(i) }
