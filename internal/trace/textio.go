package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// The text trace format is one request per line:
//
//	seq timeNanos client object size version flags
//
// where flags is a combination of "u" (uncachable) and "e" (error), or "-"
// when neither applies. The format round-trips exactly and is what
// cmd/tracegen emits.

// WriteText writes all requests from r to w in the text format. It returns
// the number of requests written.
func WriteText(w io.Writer, r Reader) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for {
		req, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, fmt.Errorf("write trace: %w", err)
		}
		if _, err := fmt.Fprintf(bw, "%d %d %d %d %d %d %s\n",
			req.Seq, int64(req.Time), req.Client, req.Object,
			req.Size, req.Version, flagString(req)); err != nil {
			return n, fmt.Errorf("write trace: %w", err)
		}
		n++
	}
	if err := bw.Flush(); err != nil {
		return n, fmt.Errorf("write trace: %w", err)
	}
	return n, nil
}

func flagString(r Request) string {
	switch {
	case r.Uncachable && r.Error:
		return "ue"
	case r.Uncachable:
		return "u"
	case r.Error:
		return "e"
	default:
		return "-"
	}
}

// TextReader parses the text trace format. It implements Reader.
type TextReader struct {
	sc   *bufio.Scanner
	line int
}

// NewTextReader wraps an io.Reader producing text-format trace lines.
func NewTextReader(r io.Reader) *TextReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	return &TextReader{sc: sc}
}

// Next parses the next line. It returns io.EOF at end of input.
func (t *TextReader) Next() (Request, error) {
	for t.sc.Scan() {
		t.line++
		line := strings.TrimSpace(t.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		req, err := parseLine(line)
		if err != nil {
			return Request{}, fmt.Errorf("trace line %d: %w", t.line, err)
		}
		return req, nil
	}
	if err := t.sc.Err(); err != nil {
		return Request{}, fmt.Errorf("trace line %d: %w", t.line, err)
	}
	return Request{}, io.EOF
}

func parseLine(line string) (Request, error) {
	fields := strings.Fields(line)
	if len(fields) != 7 {
		return Request{}, fmt.Errorf("want 7 fields, got %d", len(fields))
	}
	var (
		req Request
		err error
	)
	if req.Seq, err = strconv.ParseInt(fields[0], 10, 64); err != nil {
		return Request{}, fmt.Errorf("seq: %w", err)
	}
	ns, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Request{}, fmt.Errorf("time: %w", err)
	}
	req.Time = time.Duration(ns)
	if req.Client, err = strconv.Atoi(fields[2]); err != nil {
		return Request{}, fmt.Errorf("client: %w", err)
	}
	if req.Object, err = strconv.ParseUint(fields[3], 10, 64); err != nil {
		return Request{}, fmt.Errorf("object: %w", err)
	}
	if req.Size, err = strconv.ParseInt(fields[4], 10, 64); err != nil {
		return Request{}, fmt.Errorf("size: %w", err)
	}
	if req.Version, err = strconv.ParseInt(fields[5], 10, 64); err != nil {
		return Request{}, fmt.Errorf("version: %w", err)
	}
	switch fields[6] {
	case "-":
	case "u":
		req.Uncachable = true
	case "e":
		req.Error = true
	case "ue", "eu":
		req.Uncachable = true
		req.Error = true
	default:
		return Request{}, fmt.Errorf("unknown flags %q", fields[6])
	}
	return req, nil
}
