package trace

import (
	"math"
	"time"
)

// Per-object attributes (size, mutability, update period, cachability) are
// pure functions of (profile seed, object ID) computed through a splitmix64
// hash. This keeps the generator O(1) in memory regardless of how many
// distinct objects the workload touches and guarantees that two readers over
// the same profile agree on every attribute.

// splitmix64 is the finalizer of the SplitMix64 PRNG: a fast, well-mixed
// 64-bit hash used to derive per-object attribute streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashFloat maps a 64-bit hash to a uniform float64 in [0, 1).
func hashFloat(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// hashNormal derives a standard normal deviate from two hash lanes via the
// Box-Muller transform.
func hashNormal(h1, h2 uint64) float64 {
	u1 := hashFloat(h1)
	u2 := hashFloat(h2)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// objectAttrs captures the deterministic per-object properties.
type objectAttrs struct {
	size         int64
	mutable      bool
	updatePeriod time.Duration // valid only when mutable
	uncachable   bool
}

// attrsFor computes the attributes of an object under a profile.
func (p Profile) attrsFor(object uint64) objectAttrs {
	base := splitmix64(uint64(p.Seed)*0x9e3779b97f4a7c15 + object + 1)
	h1 := splitmix64(base + 1)
	h2 := splitmix64(base + 2)
	h3 := splitmix64(base + 3)
	h4 := splitmix64(base + 4)
	h5 := splitmix64(base + 5)

	var a objectAttrs

	// Sizes are lognormal: median MedianSize, shape SizeSigma, clamped to
	// [MinSize, MaxSize]. With the default median 4 KB and sigma 1.3 the
	// mean lands near the ~10 KB average object size reported for web
	// caches (Arlitt & Williamson, cited in the paper).
	mu := math.Log(float64(p.MedianSize))
	sz := math.Exp(mu + p.SizeSigma*hashNormal(h1, h2))
	if sz < float64(p.MinSize) {
		sz = float64(p.MinSize)
	}
	if sz > float64(p.MaxSize) {
		sz = float64(p.MaxSize)
	}
	a.size = int64(sz)

	// A fixed fraction of objects is mutable; each mutable object updates
	// with a log-uniform period between MinUpdatePeriod and
	// MaxUpdatePeriod. Deterministic versioning (version = elapsed/period)
	// means any two observers agree on the version at a given time.
	a.mutable = hashFloat(h3) < p.MutableFrac
	if a.mutable {
		lo := math.Log(float64(p.MinUpdatePeriod))
		hi := math.Log(float64(p.MaxUpdatePeriod))
		a.updatePeriod = time.Duration(math.Exp(lo + (hi-lo)*hashFloat(h4)))
	}

	// Uncachability is a property of the object (CGI endpoints, dynamic
	// pages), not of the individual request.
	a.uncachable = hashFloat(h5) < p.UncachableFrac
	return a
}

// versionAt returns the object's version at virtual time t.
func (a objectAttrs) versionAt(t time.Duration) int64 {
	if !a.mutable || a.updatePeriod <= 0 {
		return 1
	}
	return 1 + int64(t/a.updatePeriod)
}

// ObjectSize returns the deterministic size of an object under the profile.
func (p Profile) ObjectSize(object uint64) int64 {
	return p.attrsFor(object).size
}

// ObjectVersionAt returns the deterministic version of an object at time t.
func (p Profile) ObjectVersionAt(object uint64, t time.Duration) int64 {
	return p.attrsFor(object).versionAt(t)
}
