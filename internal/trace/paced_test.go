package trace

import (
	"testing"
	"time"
)

func pacedTestProfile() Profile {
	p := DECProfile(ScaleSmall)
	p.Requests = 2000
	p.DistinctURLs = 400
	p.Clients = 32
	return p
}

func TestPacedRescalesVirtualSpan(t *testing.T) {
	m, err := Materialize(pacedTestProfile())
	if err != nil {
		t.Fatal(err)
	}
	const window = 10 * time.Second
	p, err := NewPaced(m, window)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != m.Len() {
		t.Fatalf("paced len %d != trace len %d", p.Len(), m.Len())
	}
	prev := time.Duration(-1)
	for i := 0; i < p.Len(); i++ {
		off := p.Offset(i)
		if off < prev {
			t.Fatalf("offset %d (%v) < offset %d (%v): offsets must be non-decreasing", i, off, i-1, prev)
		}
		if off < 0 || off > window {
			t.Fatalf("offset %d = %v outside [0, %v]", i, off, window)
		}
		prev = off
	}
	if got := p.Offset(p.Len() - 1); got != window {
		t.Errorf("last offset = %v, want exactly the window %v", got, window)
	}
	// The rescale is linear: a request halfway through virtual time lands
	// halfway through the window (within a bucket of float rounding).
	mid := m.At(m.Len()-1).Time / 2
	for i := 0; i < m.Len(); i++ {
		if m.At(i).Time >= mid {
			off := p.Offset(i)
			if off < window/2-window/100 {
				t.Errorf("virtual-midpoint request %d at %v, want ~%v", i, off, window/2)
			}
			break
		}
	}
}

func TestPacedDegenerateTimesSpreadUniformly(t *testing.T) {
	m := &Materialized{
		times:    make([]time.Duration, 10),
		clients:  make([]int32, 10),
		objects:  make([]uint64, 10),
		sizes:    make([]int64, 10),
		versions: make([]int64, 10),
		flags:    make([]uint8, 10),
	}
	p, err := NewPaced(m, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Offset(0); got != 0 {
		t.Errorf("first offset = %v, want 0", got)
	}
	if got := p.Offset(5); got != 500*time.Millisecond {
		t.Errorf("middle offset = %v, want 500ms", got)
	}
}

func TestPacedRejectsBadInputs(t *testing.T) {
	if _, err := NewPaced(nil, time.Second); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := NewPaced(&Materialized{}, time.Second); err == nil {
		t.Error("empty trace accepted")
	}
	m, err := Materialize(pacedTestProfile())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPaced(m, 0); err == nil {
		t.Error("zero window accepted")
	}
}
