package trace

import (
	"io"
	"testing"
	"testing/quick"
	"time"
)

// smallProfile returns a quick-to-generate DEC-like profile for tests.
func smallProfile() Profile {
	p := DECProfile(ScaleSmall)
	p.Requests = 20_000
	p.DistinctURLs = 4_000
	return p
}

func TestGeneratorDeterminism(t *testing.T) {
	p := smallProfile()
	a, err := ReadAll(MustGenerator(p))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadAll(MustGenerator(p))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorSeedChangesTrace(t *testing.T) {
	p1 := smallProfile()
	p2 := smallProfile()
	p2.Seed++
	a, _ := ReadAll(MustGenerator(p1))
	b, _ := ReadAll(MustGenerator(p2))
	same := 0
	for i := range a {
		if a[i].Object == b[i].Object {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical object streams")
	}
}

func TestGeneratorRequestCount(t *testing.T) {
	p := smallProfile()
	g := MustGenerator(p)
	var n int64
	for {
		_, err := g.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != p.Requests {
		t.Errorf("generated %d requests, want %d", n, p.Requests)
	}
	// EOF must be sticky.
	if _, err := g.Next(); err != io.EOF {
		t.Errorf("after exhaustion got err=%v, want io.EOF", err)
	}
}

func TestGeneratorTimesMonotonicWithinSpan(t *testing.T) {
	p := smallProfile()
	g := MustGenerator(p)
	var prev time.Duration = -1
	span := p.Span()
	for {
		req, err := g.Next()
		if err == io.EOF {
			break
		}
		if req.Time < prev {
			t.Fatalf("time went backwards at seq %d: %v < %v", req.Seq, req.Time, prev)
		}
		if req.Time < 0 || req.Time >= span {
			t.Fatalf("time %v outside [0, %v)", req.Time, span)
		}
		prev = req.Time
	}
}

func TestGeneratorFieldRanges(t *testing.T) {
	p := smallProfile()
	g := MustGenerator(p)
	for {
		req, err := g.Next()
		if err == io.EOF {
			break
		}
		if req.Client < 0 || req.Client >= p.Clients {
			t.Fatalf("client %d out of range", req.Client)
		}
		if req.Object >= uint64(p.DistinctURLs) {
			t.Fatalf("object %d out of range", req.Object)
		}
		if req.Size < p.MinSize || req.Size > p.MaxSize {
			t.Fatalf("size %d outside [%d, %d]", req.Size, p.MinSize, p.MaxSize)
		}
		if req.Version < 1 {
			t.Fatalf("version %d < 1", req.Version)
		}
	}
}

func TestGeneratorAttributesStablePerObject(t *testing.T) {
	p := smallProfile()
	reqs, _ := ReadAll(MustGenerator(p))
	size := make(map[uint64]int64)
	uncach := make(map[uint64]bool)
	for _, r := range reqs {
		if s, ok := size[r.Object]; ok && s != r.Size {
			t.Fatalf("object %d size changed %d -> %d", r.Object, s, r.Size)
		}
		size[r.Object] = r.Size
		if u, ok := uncach[r.Object]; ok && u != r.Uncachable {
			t.Fatalf("object %d uncachable flag changed", r.Object)
		}
		uncach[r.Object] = r.Uncachable
	}
}

func TestGeneratorVersionsMonotonicPerObject(t *testing.T) {
	p := smallProfile()
	reqs, _ := ReadAll(MustGenerator(p))
	last := make(map[uint64]int64)
	for _, r := range reqs {
		if v, ok := last[r.Object]; ok && r.Version < v {
			t.Fatalf("object %d version went backwards %d -> %d", r.Object, v, r.Version)
		}
		last[r.Object] = r.Version
	}
}

func TestMeasureMatchesProfile(t *testing.T) {
	p := smallProfile()
	c, err := Measure(p.Name, p.Days, MustGenerator(p))
	if err != nil {
		t.Fatal(err)
	}
	if c.Requests != p.Requests {
		t.Errorf("Requests = %d, want %d", c.Requests, p.Requests)
	}
	// First-access fraction should be near DistinctObjects/Requests.
	want := float64(c.DistinctObjects) / float64(c.Requests)
	if c.FirstAccessFrac != want {
		t.Errorf("FirstAccessFrac = %g, want %g", c.FirstAccessFrac, want)
	}
	// The uncachable fraction of requests should be within a factor of 2.5
	// of the object-level fraction (popular objects bias it).
	if c.UncachableFrac > 2.5*p.UncachableFrac+0.02 {
		t.Errorf("UncachableFrac = %g, far above object-level %g", c.UncachableFrac, p.UncachableFrac)
	}
	// Mean size should land within a factor of a few of the ~10 KB target.
	if c.MeanSize < 3<<10 || c.MeanSize > 64<<10 {
		t.Errorf("MeanSize = %d, want a few KB to a few tens of KB", c.MeanSize)
	}
}

func TestDynamicClientIDsProduceSessions(t *testing.T) {
	p := ProdigyProfile(ScaleSmall)
	p.Requests = 10_000
	p.DistinctURLs = 2_000
	reqs, _ := ReadAll(MustGenerator(p))
	// Sessions mean consecutive requests frequently share a client.
	sameAsPrev := 0
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Client == reqs[i-1].Client {
			sameAsPrev++
		}
	}
	frac := float64(sameAsPrev) / float64(len(reqs)-1)
	if frac < 0.5 {
		t.Errorf("consecutive same-client fraction = %.3f, want >= 0.5 with sessions", frac)
	}

	// A stable-ID workload should not show that clustering.
	p2 := smallProfile()
	reqs2, _ := ReadAll(MustGenerator(p2))
	sameAsPrev = 0
	for i := 1; i < len(reqs2); i++ {
		if reqs2[i].Client == reqs2[i-1].Client {
			sameAsPrev++
		}
	}
	frac2 := float64(sameAsPrev) / float64(len(reqs2)-1)
	if frac2 > 0.05 {
		t.Errorf("stable IDs: consecutive same-client fraction = %.3f, want near 0", frac2)
	}
}

func TestProfileValidate(t *testing.T) {
	good := smallProfile()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	mutate := []func(*Profile){
		func(p *Profile) { p.Requests = 0 },
		func(p *Profile) { p.DistinctURLs = 0 },
		func(p *Profile) { p.Clients = -1 },
		func(p *Profile) { p.Days = 0 },
		func(p *Profile) { p.WarmupDays = p.Days },
		func(p *Profile) { p.ZipfAlpha = -1 },
		func(p *Profile) { p.MedianSize = 0 },
		func(p *Profile) { p.MaxSize = p.MinSize - 1 },
		func(p *Profile) { p.SizeSigma = -0.1 },
		func(p *Profile) { p.MutableFrac = 1.5 },
		func(p *Profile) { p.MutableFrac = 0.5; p.MinUpdatePeriod = 0 },
		func(p *Profile) { p.UncachableFrac = -0.2 },
		func(p *Profile) { p.ErrorFrac = 2 },
	}
	for i, m := range mutate {
		p := smallProfile()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: invalid profile accepted", i)
		}
	}
}

func TestPublishedProfilesValid(t *testing.T) {
	for _, s := range []Scale{ScaleSmall, ScaleLaptop, ScaleFull} {
		for _, p := range Profiles(s) {
			if err := p.Validate(); err != nil {
				t.Errorf("%s @%g: %v", p.Name, s, err)
			}
		}
	}
}

func TestProfilesTable4Shape(t *testing.T) {
	ps := Profiles(ScaleFull)
	if len(ps) != 3 {
		t.Fatalf("want 3 profiles, got %d", len(ps))
	}
	dec, brk, pr := ps[0], ps[1], ps[2]
	if dec.Clients != 16_660 || brk.Clients != 8_372 || pr.Clients != 35_354 {
		t.Errorf("client counts do not match Table 4: %d %d %d", dec.Clients, brk.Clients, pr.Clients)
	}
	if dec.Requests != 22_100_000 || brk.Requests != 8_800_000 || pr.Requests != 4_200_000 {
		t.Errorf("request counts do not match Table 4 at full scale")
	}
	if !pr.DynamicClientIDs || dec.DynamicClientIDs || brk.DynamicClientIDs {
		t.Errorf("only Prodigy should have dynamic client IDs")
	}
	// DEC's measured first-access fraction should be near the 19% the
	// paper reports (distinct/requests = 4.15M/22.1M). Measure on a
	// small-scale generation; the ratio is approximately scale-free.
	small := DECProfile(ScaleSmall)
	c, err := Measure(small.Name, small.Days, MustGenerator(small))
	if err != nil {
		t.Fatal(err)
	}
	if c.FirstAccessFrac < 0.15 || c.FirstAccessFrac > 0.25 {
		t.Errorf("DEC first-access fraction = %.3f, want around 0.19", c.FirstAccessFrac)
	}
}

func TestLocalityProducesRevisits(t *testing.T) {
	// Few clients so each issues enough requests for history to matter.
	withLoc := smallProfile()
	withLoc.Clients = 200
	withLoc.LocalityFrac = 0.5
	noLoc := smallProfile()
	noLoc.Clients = 200
	noLoc.LocalityFrac = 0

	revisitFrac := func(p Profile) float64 {
		reqs, _ := ReadAll(MustGenerator(p))
		seen := make(map[[2]uint64]bool)
		revisits := 0
		for _, r := range reqs {
			key := [2]uint64{uint64(r.Client), r.Object}
			if seen[key] {
				revisits++
			}
			seen[key] = true
		}
		return float64(revisits) / float64(len(reqs))
	}
	with, without := revisitFrac(withLoc), revisitFrac(noLoc)
	if with <= without {
		t.Errorf("locality did not raise per-client revisits: %.3f vs %.3f", with, without)
	}
	if with < 0.3 {
		t.Errorf("revisit fraction %.3f too low for LocalityFrac=0.5", with)
	}
}

func TestObjectAttrsQuick(t *testing.T) {
	p := smallProfile()
	f := func(obj uint64) bool {
		a := p.attrsFor(obj)
		if a.size < p.MinSize || a.size > p.MaxSize {
			return false
		}
		if a.mutable && a.updatePeriod <= 0 {
			return false
		}
		// Version must be non-decreasing in time.
		v1 := a.versionAt(time.Hour)
		v2 := a.versionAt(48 * time.Hour)
		return v2 >= v1 && v1 >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
