package experiments

import (
	"fmt"
	"testing"

	"beyondcache/internal/core"
	"beyondcache/internal/netmodel"
	"beyondcache/internal/trace"
)

// BenchmarkAllPoliciesCell measures one grand-comparison cell — the hint
// architecture on the DEC trace under the testbed model — end to end,
// including allocations. This is the unit of work the parallel scheduler
// distributes; BENCH_sim.json tracks it across optimization rounds.
func BenchmarkAllPoliciesCell(b *testing.B) {
	p := trace.DECProfile(trace.Scale(0.005))
	if _, err := trace.MaterializedFor(p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(core.Config{
			Policy: core.PolicyHints,
			Model:  netmodel.NewTestbed(),
			Warmup: p.Warmup(),
			Seed:   1,
		})
		if err != nil {
			b.Fatal(err)
		}
		g, err := traceFor(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Run(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentParallel runs the full 24-cell grand comparison at
// 1/2/4 workers. On a multi-core machine the scaling shows up directly; on
// one core the three sub-benchmarks should match, confirming the scheduler
// adds no serial overhead.
func BenchmarkExperimentParallel(b *testing.B) {
	scale := trace.Scale(0.002)
	if _, err := trace.MaterializedFor(trace.DECProfile(scale)); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			o := Options{Scale: scale, Parallel: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := AllPolicies(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
