package experiments

import (
	"fmt"
	"strings"
	"time"

	"beyondcache/internal/hintcache"
	"beyondcache/internal/hints"
	"beyondcache/internal/metrics"
	"beyondcache/internal/netmodel"
	"beyondcache/internal/sim"
	"beyondcache/internal/trace"
)

// DigestRow is one metadata scheme's measurements.
type DigestRow struct {
	Scheme string
	// BytesPerNode is the metadata memory each node spends.
	BytesPerNode int64
	Mean         time.Duration
	HitRatio     float64
	FalsePos     int64
	FalseNeg     int64
}

// DigestsResult compares the paper's exact 16-byte hint records against
// Bloom-filter cache digests (Summary Cache / Squid Cache Digests, the
// contemporaneous alternative) at matched metadata budgets on the DEC
// workload. Exact records pay 16 bytes per object but never hash-collide;
// digests pay a few bits per object but suffer hash false positives plus
// rebuild-interval staleness.
type DigestsResult struct {
	Scale trace.Scale
	Rows  []DigestRow
}

// Digests runs the comparison. Each node caches ~entries objects
// (space-constrained at the paper's 5 GB-equivalent); the hint table is
// sized to index the whole system, and digests are swept over bits/entry.
func Digests(o Options) (*DigestsResult, error) {
	p := trace.DECProfile(o.Scale)
	capBytes := scaledBytes(5*GB, o.Scale)
	// Entries each digest must cover: the node's object capacity at the
	// ~10 KB mean size.
	entriesPerNode := int(capBytes / (10 << 10))
	if entriesPerNode < 64 {
		entriesPerNode = 64
	}
	topo := sim.Default()

	r := &DigestsResult{Scale: o.Scale}

	type variant struct {
		scheme string
		cfg    hints.Config
		bytes  func(s *hints.Simulator) int64
	}
	// The exact hint table must index the whole system's contents:
	// NumL1 x entriesPerNode records of 16 bytes.
	hintEntries := topo.NumL1 * entriesPerNode
	variants := []variant{
		{
			scheme: "Exact hints (16B records)",
			cfg:    hints.Config{Mode: hints.ModeHints, HintEntries: hintEntries},
			bytes: func(s *hints.Simulator) int64 {
				return int64(hintEntries) * hintcache.RecordSize
			},
		},
	}
	for _, bpe := range []float64{4, 8, 16} {
		bpe := bpe
		variants = append(variants, variant{
			scheme: fmt.Sprintf("Digests (%g bits/entry)", bpe),
			cfg: hints.Config{
				Mode:               hints.ModeDigests,
				DigestEntries:      entriesPerNode,
				DigestBitsPerEntry: bpe,
				DigestRebuild:      10 * time.Minute,
			},
			bytes: func(s *hints.Simulator) int64 {
				// A node stores every peer's digest.
				return s.DigestSizePerNode() * int64(topo.NumL1-1)
			},
		})
	}

	r.Rows = make([]DigestRow, len(variants))
	err := runCells(o, len(variants), func(i int) error {
		v := variants[i]
		cfg := v.cfg
		cfg.Topology = topo
		cfg.Model = netmodel.NewTestbed()
		cfg.L1Capacity = capBytes
		cfg.Warmup = p.Warmup()
		s, err := hints.New(cfg)
		if err != nil {
			return err
		}
		g, err := traceFor(p)
		if err != nil {
			return err
		}
		if _, err := sim.Run(g, s); err != nil {
			return err
		}
		r.Rows[i] = DigestRow{
			Scheme:       v.scheme,
			BytesPerNode: v.bytes(s),
			Mean:         s.MeanResponse(),
			HitRatio:     s.HitRatio(),
			FalsePos:     s.FalsePositives(),
			FalseNeg:     s.FalseNegatives(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Render implements Result.
func (r *DigestsResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Metadata-scheme extension: exact hints vs Bloom-filter digests, DEC trace (scale %g)\n",
		float64(r.Scale))
	t := metrics.NewTable("Scheme", "Metadata/node", "Mean", "Hit ratio", "False pos", "False neg")
	for _, row := range r.Rows {
		t.AddRow(row.Scheme,
			fmt.Sprintf("%dKB", row.BytesPerNode>>10),
			metrics.Ms(row.Mean),
			metrics.F3(row.HitRatio),
			fmt.Sprintf("%d", row.FalsePos),
			fmt.Sprintf("%d", row.FalseNeg))
	}
	sb.WriteString(t.String())
	sb.WriteString("Digests cut per-node metadata by an order of magnitude but pay wasted\n" +
		"probes for hash and staleness false positives; the paper's exact records\n" +
		"buy precision with 16 bytes per object.\n")
	return sb.String()
}
