package experiments

import (
	"fmt"
	"strings"
	"time"

	"beyondcache/internal/core"
	"beyondcache/internal/metrics"
	"beyondcache/internal/netmodel"
	"beyondcache/internal/trace"
)

// LoadRow is one utilization point.
type LoadRow struct {
	Rho       float64
	Hierarchy time.Duration
	Hints     time.Duration
	Speedup   float64
	// Gap is the absolute advantage of hints.
	Gap time.Duration
}

// LoadResult quantifies the Section 2.1.1 footnote: the paper measured its
// testbed idle and notes that queuing at busy caches "would probably
// increase the importance of reducing the number of hops". Sweeping cache
// utilization under an M/M/1-style queuing decorator shows the hint
// architecture's absolute advantage growing with load.
type LoadResult struct {
	Scale trace.Scale
	Rows  []LoadRow
}

// Load sweeps utilization on the DEC trace over the testbed model.
func Load(o Options) (*LoadResult, error) {
	p := trace.DECProfile(o.Scale)
	rhos := []float64{0, 0.3, 0.6, 0.8, 0.9}
	policies := []core.Policy{core.PolicyHierarchy, core.PolicyHints}
	r := &LoadResult{Scale: o.Scale, Rows: make([]LoadRow, len(rhos))}
	means := make([]time.Duration, len(rhos)*len(policies))
	err := runCells(o, len(means), func(i int) error {
		rho := rhos[i/len(policies)]
		pol := policies[i%len(policies)]
		m, err := netmodel.NewLoaded(netmodel.NewTestbed(), rho, 0)
		if err != nil {
			return err
		}
		sys, err := core.NewSystem(core.Config{Policy: pol, Model: m, Warmup: p.Warmup()})
		if err != nil {
			return err
		}
		g, err := traceFor(p)
		if err != nil {
			return err
		}
		rep, err := sys.Run(g)
		if err != nil {
			return err
		}
		means[i] = rep.MeanResponse
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ri, rho := range rhos {
		row := LoadRow{
			Rho:       rho,
			Hierarchy: means[ri*len(policies)],
			Hints:     means[ri*len(policies)+1],
		}
		if row.Hints > 0 {
			row.Speedup = float64(row.Hierarchy) / float64(row.Hints)
		}
		row.Gap = row.Hierarchy - row.Hints
		r.Rows[ri] = row
	}
	return r, nil
}

// Render implements Result.
func (r *LoadResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Load extension (Section 2.1.1 note), DEC trace, testbed model (scale %g)\n",
		float64(r.Scale))
	t := metrics.NewTable("Utilization", "Hierarchy", "Hints", "Speedup", "Absolute gap")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%.0f%%", row.Rho*100),
			metrics.Ms(row.Hierarchy), metrics.Ms(row.Hints),
			metrics.F2(row.Speedup), metrics.Ms(row.Gap))
	}
	sb.WriteString(t.String())
	sb.WriteString("Queuing at busy caches charges every hop, and the hierarchy traverses\n" +
		"more hops per request: its absolute disadvantage grows with load (the\n" +
		"paper's prediction), while the ratio drifts toward the mean-hop-count\n" +
		"ratio as queuing dominates the idle-network costs.\n")
	return sb.String()
}
