// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment has a constructor returning a result object
// that carries both the structured data (for tests and downstream tooling)
// and a Render method that prints the same rows/series the paper reports.
//
// The experiments run the synthetic workloads of internal/trace at a
// configurable scale; capacities quoted in the paper (e.g. 5 GB per cache)
// are scaled by the same factor so that the capacity-to-workload ratio
// matches the original setup.
package experiments

import (
	"fmt"
	"sort"

	"beyondcache/internal/trace"
)

// Options control experiment scale and scheduling.
type Options struct {
	// Scale is the fraction of the published trace sizes to generate.
	Scale trace.Scale

	// Parallel bounds how many of an experiment's independent simulation
	// cells run concurrently; <= 0 means GOMAXPROCS. Results are merged
	// in enumeration order, so output is byte-identical at any setting.
	Parallel int
}

// DefaultOptions runs at a scale where the full suite completes in tens of
// seconds on a laptop, with one worker per available CPU.
func DefaultOptions() Options {
	return Options{Scale: trace.ScaleSmall}
}

// scaledBytes scales a capacity quoted for the full-size traces down to the
// experiment scale, with a floor of 64 KB so tiny scales stay meaningful.
func scaledBytes(published int64, s trace.Scale) int64 {
	b := int64(float64(published) * float64(s))
	if b < 64<<10 {
		b = 64 << 10
	}
	return b
}

// GB is one gigabyte in bytes.
const GB = int64(1) << 30

// MB is one megabyte in bytes.
const MB = int64(1) << 20

// Result is what every experiment returns: a renderable report.
type Result interface {
	// Render formats the experiment's rows/series as the paper reports
	// them.
	Render() string
}

// runner produces a Result.
type runner func(Options) (Result, error)

// registry maps experiment IDs ("fig8", "table5", ...) to runners.
var registry = map[string]struct {
	title string
	run   runner
}{
	"fig1":   {"Figure 1: testbed access times vs object size", func(o Options) (Result, error) { return Figure1() }},
	"table3": {"Table 3: Squid hierarchy performance bounds (Rousskov)", func(o Options) (Result, error) { return Table3() }},
	"table4": {"Table 4: trace workload characteristics", func(o Options) (Result, error) { return Table4(o) }},
	"fig4":   {"Figure 4 / Section 3.3: proxy-hint vs client-hint configurations", func(o Options) (Result, error) { return Figure4(o) }},
	"fig2":   {"Figure 2: miss-class breakdown vs cache size", func(o Options) (Result, error) { return Figure2(o) }},
	"fig3":   {"Figure 3: hit ratio vs sharing level", func(o Options) (Result, error) { return Figure3(o) }},
	"fig5":   {"Figure 5: hit rate vs hint-cache size (DEC)", func(o Options) (Result, error) { return Figure5(o) }},
	"fig6":   {"Figure 6: hit rate vs hint propagation delay (DEC)", func(o Options) (Result, error) { return Figure6(o) }},
	"table5": {"Table 5: root update load, centralized vs hierarchy (DEC)", func(o Options) (Result, error) { return Table5(o) }},
	"fig8":   {"Figure 8: response times, hierarchy vs directory vs hints", func(o Options) (Result, error) { return Figure8(o) }},
	"table6": {"Table 6: hierarchy/hints speedup ratios", func(o Options) (Result, error) { return Table6(o) }},
	"fig10":  {"Figure 10: push algorithm response times (DEC)", func(o Options) (Result, error) { return Figure10(o) }},
	"fig11":  {"Figure 11: push efficiency and bandwidth (DEC)", func(o Options) (Result, error) { return Figure11(o) }},
	"icp":    {"Extension: ICP sibling queries vs hints (Section 3.1.1 quantified)", func(o Options) (Result, error) { return ICP(o) }},
	"plaxton": {"Extension: Plaxton metadata-tree properties (Section 3.1.3 quantified)",
		func(o Options) (Result, error) { return Plaxton(o) }},
	"consistency": {"Extension: consistency protocols (Section 2.2.1 quantified)",
		func(o Options) (Result, error) { return Consistency(o) }},
	"replacement": {"Extension: replacement-policy ablation (LRU vs LFU vs SIZE vs GDS)",
		func(o Options) (Result, error) { return Replacement(o) }},
	"crawl": {"Extension: crawler prefetch of compulsory misses (Section 4.1 future work)",
		func(o Options) (Result, error) { return Crawl(o) }},
	"load": {"Extension: cache utilization sweep (Section 2.1.1 note quantified)",
		func(o Options) (Result, error) { return Load(o) }},
	"digests": {"Extension: exact hint records vs Bloom-filter cache digests",
		func(o Options) (Result, error) { return Digests(o) }},
	"allpolicies": {"Extension: grand comparison of every cache organization",
		func(o Options) (Result, error) { return AllPolicies(o) }},
}

// IDs lists the experiment identifiers in a stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns the human-readable title of an experiment.
func Title(id string) (string, bool) {
	e, ok := registry[id]
	if !ok {
		return "", false
	}
	return e.title, true
}

// Run executes one experiment by ID.
func Run(id string, o Options) (Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return e.run(o)
}
