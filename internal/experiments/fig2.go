package experiments

import (
	"fmt"
	"io"
	"strings"

	"beyondcache/internal/metrics"
	"beyondcache/internal/missclass"
	"beyondcache/internal/trace"
)

// Table4Result reports the generated traces' characteristics alongside the
// published ones (Table 4).
type Table4Result struct {
	Scale trace.Scale
	Chars []trace.Characteristics
}

// Table4 measures the synthetic traces.
func Table4(o Options) (*Table4Result, error) {
	profiles := trace.Profiles(o.Scale)
	r := &Table4Result{Scale: o.Scale, Chars: make([]trace.Characteristics, len(profiles))}
	err := runCells(o, len(profiles), func(i int) error {
		p := profiles[i]
		g, err := traceFor(p)
		if err != nil {
			return err
		}
		c, err := trace.Measure(p.Name, p.Days, g)
		if err != nil {
			return err
		}
		r.Chars[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Render implements Result.
func (r *Table4Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 4: trace characteristics (synthetic, scale %g of published size)\n", float64(r.Scale))
	t := metrics.NewTable("Trace", "Clients", "Accesses", "Distinct URLs",
		"Days", "First-access", "Uncachable", "Error", "Mean size")
	for _, c := range r.Chars {
		t.AddRow(c.Name,
			fmt.Sprintf("%d", c.DistinctClients),
			fmt.Sprintf("%d", c.Requests),
			fmt.Sprintf("%d", c.DistinctObjects),
			fmt.Sprintf("%g", c.Days),
			metrics.F3(c.FirstAccessFrac),
			metrics.F3(c.UncachableFrac),
			metrics.F3(c.ErrorFrac),
			fmt.Sprintf("%dB", c.MeanSize))
	}
	sb.WriteString(t.String())
	return sb.String()
}

// Figure2Point is one cache size in the Figure 2 sweep.
type Figure2Point struct {
	// CacheBytes is the global cache capacity (scaled).
	CacheBytes int64
	// EquivalentGB is the capacity expressed in full-scale gigabytes.
	EquivalentGB float64
	// MissRatio and ByteMissRatio per miss kind, plus totals.
	MissRatio     map[missclass.Kind]float64
	ByteMissRatio map[missclass.Kind]float64
	TotalMiss     float64
}

// Figure2Result is the per-trace miss-class breakdown versus cache size.
type Figure2Result struct {
	Scale  trace.Scale
	Traces []string
	// Points[trace] is the sweep for that trace.
	Points map[string][]Figure2Point
}

// figure2GBs is the swept capacity grid in full-scale gigabytes
// (Figure 2's x axis runs to 35 GB).
var figure2GBs = []float64{0.5, 1, 2, 4, 8, 16, 32}

// Figure2 replays each trace through a single shared cache per capacity
// point, classifying every miss.
func Figure2(o Options) (*Figure2Result, error) {
	profiles := trace.Profiles(o.Scale)
	r := &Figure2Result{
		Scale:  o.Scale,
		Points: make(map[string][]Figure2Point),
	}
	pts := make([]Figure2Point, len(profiles)*len(figure2GBs))
	err := runCells(o, len(pts), func(i int) error {
		p := profiles[i/len(figure2GBs)]
		gb := figure2GBs[i%len(figure2GBs)]
		capBytes := scaledBytes(int64(gb*float64(GB)), o.Scale)
		pt, err := figure2Point(p, capBytes, gb)
		if err != nil {
			return err
		}
		pts[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, p := range profiles {
		r.Traces = append(r.Traces, p.Name)
		r.Points[p.Name] = pts[pi*len(figure2GBs) : (pi+1)*len(figure2GBs)]
	}
	return r, nil
}

func figure2Point(p trace.Profile, capBytes int64, gb float64) (Figure2Point, error) {
	g, err := traceFor(p)
	if err != nil {
		return Figure2Point{}, err
	}
	cl := missclass.NewClassifier(capBytes)
	warm := p.Warmup()
	warmed := false
	for {
		req, err := g.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Figure2Point{}, err
		}
		if !warmed && req.Time >= warm {
			cl.Reset()
			warmed = true
		}
		cl.Observe(req)
	}
	counts := cl.Counts()
	pt := Figure2Point{
		CacheBytes:    capBytes,
		EquivalentGB:  gb,
		MissRatio:     make(map[missclass.Kind]float64),
		ByteMissRatio: make(map[missclass.Kind]float64),
		TotalMiss:     counts.TotalMissRatio(),
	}
	for _, k := range missclass.MissKinds() {
		pt.MissRatio[k] = counts.MissRatio(k)
		pt.ByteMissRatio[k] = counts.ByteMissRatio(k)
	}
	return pt, nil
}

// Render implements Result.
func (r *Figure2Result) Render() string {
	var sb strings.Builder
	for _, name := range r.Traces {
		fmt.Fprintf(&sb, "Figure 2 (%s): miss ratios vs global cache size (scale %g)\n",
			name, float64(r.Scale))
		t := metrics.NewTable("Cache", "Total", "Compulsory", "Capacity",
			"Communication", "Error", "Uncachable")
		for _, pt := range r.Points[name] {
			t.AddRow(fmt.Sprintf("%gGB", pt.EquivalentGB),
				metrics.F3(pt.TotalMiss),
				metrics.F3(pt.MissRatio[missclass.Compulsory]),
				metrics.F3(pt.MissRatio[missclass.Capacity]),
				metrics.F3(pt.MissRatio[missclass.Communication]),
				metrics.F3(pt.MissRatio[missclass.Error]),
				metrics.F3(pt.MissRatio[missclass.Uncachable]))
		}
		sb.WriteString(t.String())
		fmt.Fprintf(&sb, "Figure 2 (%s): byte miss ratios\n", name)
		bt := metrics.NewTable("Cache", "Compulsory", "Capacity", "Communication")
		for _, pt := range r.Points[name] {
			bt.AddRow(fmt.Sprintf("%gGB", pt.EquivalentGB),
				metrics.F3(pt.ByteMissRatio[missclass.Compulsory]),
				metrics.F3(pt.ByteMissRatio[missclass.Capacity]),
				metrics.F3(pt.ByteMissRatio[missclass.Communication]))
		}
		sb.WriteString(bt.String())
		sb.WriteString("\n")
	}
	return sb.String()
}
