package experiments

import (
	"fmt"
	"strings"
	"time"

	"beyondcache/internal/hintcache"
	"beyondcache/internal/hints"
	"beyondcache/internal/metrics"
	"beyondcache/internal/netmodel"
	"beyondcache/internal/sim"
	"beyondcache/internal/trace"
)

// Figure5Point is one hint-cache size in the sweep.
type Figure5Point struct {
	// Entries is the hint table's entry count (0 = unbounded).
	Entries int
	// EquivalentMB is the table size in full-scale megabytes (16-byte
	// records).
	EquivalentMB float64
	// HitRatio is the global hit rate achieved.
	HitRatio float64
	// LocalHitRatio is the local-only component.
	LocalHitRatio float64
	// FalseNegatives counts misses caused purely by hint-table eviction.
	FalseNegatives int64
}

// Figure5Result reproduces Figure 5: global hit rate as a function of
// hint-cache size for the DEC workload (groups of 256 clients per infinite
// proxy cache).
type Figure5Result struct {
	Scale  trace.Scale
	Points []Figure5Point
}

// figure5MBs is the swept hint-table size grid in full-scale megabytes
// (Figure 5's x axis runs 0.1 MB to infinite).
var figure5MBs = []float64{0.1, 0.5, 1, 5, 10, 50, 100, 0}

// Figure5 sweeps the hint-table size.
func Figure5(o Options) (*Figure5Result, error) {
	p := trace.DECProfile(o.Scale)
	r := &Figure5Result{Scale: o.Scale, Points: make([]Figure5Point, len(figure5MBs))}
	err := runCells(o, len(figure5MBs), func(i int) error {
		mb := figure5MBs[i]
		entries := 0
		if mb > 0 {
			// Scale the table with the workload, but without the
			// general capacity floor: the sweep's whole point is
			// tables too small to index the population.
			bytes := int64(mb * float64(MB) * float64(o.Scale))
			if bytes < 4*hintcache.RecordSize {
				bytes = 4 * hintcache.RecordSize
			}
			entries = hintcache.EntriesForBytes(bytes)
		}
		h, err := hints.New(hints.Config{
			Model:       netmodel.NewTestbed(),
			HintEntries: entries,
			Warmup:      p.Warmup(),
		})
		if err != nil {
			return err
		}
		g, err := traceFor(p)
		if err != nil {
			return err
		}
		if _, err := sim.Run(g, h); err != nil {
			return err
		}
		r.Points[i] = Figure5Point{
			Entries:        entries,
			EquivalentMB:   mb,
			HitRatio:       h.HitRatio(),
			LocalHitRatio:  h.LocalHitRatio(),
			FalseNegatives: h.FalseNegatives(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Render implements Result.
func (r *Figure5Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5: hit rate vs hint-cache size, DEC trace (scale %g)\n", float64(r.Scale))
	t := metrics.NewTable("Hint cache", "Entries", "Hit ratio", "Local-only", "False negatives")
	for _, pt := range r.Points {
		label := "Inf"
		if pt.EquivalentMB > 0 {
			label = fmt.Sprintf("%gMB", pt.EquivalentMB)
		}
		t.AddRow(label,
			fmt.Sprintf("%d", pt.Entries),
			metrics.F3(pt.HitRatio),
			metrics.F3(pt.LocalHitRatio),
			fmt.Sprintf("%d", pt.FalseNegatives))
	}
	sb.WriteString(t.String())
	return sb.String()
}

// Figure6Point is one propagation delay in the sweep.
type Figure6Point struct {
	Delay          time.Duration
	HitRatio       float64
	FalsePositives int64
}

// Figure6Result reproduces Figure 6: global hit rate as a function of the
// hint-propagation delay, DEC trace.
type Figure6Result struct {
	Scale  trace.Scale
	Points []Figure6Point
}

// figure6Delays mirrors Figure 6's x axis (minutes, log scale).
var figure6Delays = []time.Duration{
	0,
	time.Minute,
	10 * time.Minute,
	100 * time.Minute,
	1000 * time.Minute,
}

// Figure6 sweeps the propagation delay.
func Figure6(o Options) (*Figure6Result, error) {
	p := trace.DECProfile(o.Scale)
	r := &Figure6Result{Scale: o.Scale, Points: make([]Figure6Point, len(figure6Delays))}
	err := runCells(o, len(figure6Delays), func(i int) error {
		d := figure6Delays[i]
		h, err := hints.New(hints.Config{
			Model:            netmodel.NewTestbed(),
			PropagationDelay: d,
			Warmup:           p.Warmup(),
		})
		if err != nil {
			return err
		}
		g, err := traceFor(p)
		if err != nil {
			return err
		}
		if _, err := sim.Run(g, h); err != nil {
			return err
		}
		r.Points[i] = Figure6Point{
			Delay:          d,
			HitRatio:       h.HitRatio(),
			FalsePositives: h.FalsePositives(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Render implements Result.
func (r *Figure6Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 6: hit rate vs hint propagation delay, DEC trace (scale %g)\n", float64(r.Scale))
	t := metrics.NewTable("Delay", "Hit ratio", "False positives")
	for _, pt := range r.Points {
		t.AddRow(fmt.Sprintf("%gmin", pt.Delay.Minutes()),
			metrics.F3(pt.HitRatio),
			fmt.Sprintf("%d", pt.FalsePositives))
	}
	sb.WriteString(t.String())
	return sb.String()
}

// Table5Result reproduces Table 5: the average hint-update load at the root
// of the metadata hierarchy versus a centralized directory.
type Table5Result struct {
	Scale trace.Scale
	// Rates are updates/second of virtual trace time.
	HierarchyRate   float64
	CentralizedRate float64
	// Counts are the raw update totals.
	HierarchyCount   int64
	CentralizedCount int64
	// Reduction is centralized/hierarchy.
	Reduction float64
}

// Table5 replays DEC through the hint simulator with space-constrained
// caches (updates require evictions as well as adds) and reads the
// filtering counters.
func Table5(o Options) (*Table5Result, error) {
	p := trace.DECProfile(o.Scale)
	h, err := hints.New(hints.Config{
		Model:      netmodel.NewTestbed(),
		L1Capacity: scaledBytes(5*GB, o.Scale),
		Warmup:     p.Warmup(),
	})
	if err != nil {
		return nil, err
	}
	g, err := traceFor(p)
	if err != nil {
		return nil, err
	}
	if _, err := sim.Run(g, h); err != nil {
		return nil, err
	}
	r := &Table5Result{
		Scale:            o.Scale,
		HierarchyCount:   h.RootUpdates(),
		CentralizedCount: h.CentralUpdates(),
		HierarchyRate:    h.UpdateRate(h.RootUpdates()),
		CentralizedRate:  h.UpdateRate(h.CentralUpdates()),
	}
	if r.HierarchyCount > 0 {
		r.Reduction = float64(r.CentralizedCount) / float64(r.HierarchyCount)
	}
	return r, nil
}

// Render implements Result.
func (r *Table5Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 5: hint updates reaching the root, DEC trace (scale %g)\n", float64(r.Scale))
	t := metrics.NewTable("Organization", "Updates", "Avg rate (upd/s)")
	t.AddRow("Centralized directory", fmt.Sprintf("%d", r.CentralizedCount), metrics.F2(r.CentralizedRate))
	t.AddRow("Hierarchy", fmt.Sprintf("%d", r.HierarchyCount), metrics.F2(r.HierarchyRate))
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "Reduction: %.2fx (paper: 5.7 vs 1.9 upd/s = 3.0x)\n", r.Reduction)
	return sb.String()
}
