package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"beyondcache/internal/core"
	"beyondcache/internal/hintcache"
	"beyondcache/internal/hints"
	"beyondcache/internal/metrics"
	"beyondcache/internal/netmodel"
	"beyondcache/internal/plaxton"
	"beyondcache/internal/sim"
	"beyondcache/internal/trace"
)

// The experiments in this file go beyond the paper's figures: they
// quantify arguments the paper makes qualitatively. Section 3.1.1 argues
// that multicast queries (ICP) slow down misses and limit sharing; the
// "icp" experiment measures it. Section 3.1.3 claims the Plaxton embedding
// distributes root load and keeps low-level parents nearby; the "plaxton"
// experiment measures that.

// ICPRow is one cost model's comparison.
type ICPRow struct {
	Model string
	// Mean response time per policy.
	Hierarchy, ICP, Hints time.Duration
	// MissPenalty is the extra time ICP adds to a request that misses
	// everywhere, relative to the plain hierarchy.
	MissPenalty time.Duration
}

// ICPResult compares the plain hierarchy, the hierarchy with ICP sibling
// queries, and the hint architecture on the DEC trace.
type ICPResult struct {
	Scale trace.Scale
	Rows  []ICPRow
}

// icpPolicies are the three organizations the ICP extension compares.
var icpPolicies = []core.Policy{core.PolicyHierarchy, core.PolicyHierarchyICP, core.PolicyHints}

// ICP runs the comparison.
func ICP(o Options) (*ICPResult, error) {
	p := trace.DECProfile(o.Scale)
	models := netmodel.Models()
	r := &ICPResult{Scale: o.Scale, Rows: make([]ICPRow, len(models))}
	means := make([]time.Duration, len(models)*len(icpPolicies))
	err := runCells(o, len(means), func(i int) error {
		m := models[i/len(icpPolicies)]
		pol := icpPolicies[i%len(icpPolicies)]
		sys, err := core.NewSystem(core.Config{
			Policy: pol,
			Model:  m,
			Warmup: p.Warmup(),
		})
		if err != nil {
			return err
		}
		g, err := traceFor(p)
		if err != nil {
			return err
		}
		rep, err := sys.Run(g)
		if err != nil {
			return err
		}
		means[i] = rep.MeanResponse
		return nil
	})
	if err != nil {
		return nil, err
	}
	for mi, m := range models {
		r.Rows[mi] = ICPRow{
			Model:       m.Name(),
			Hierarchy:   means[mi*len(icpPolicies)],
			ICP:         means[mi*len(icpPolicies)+1],
			Hints:       means[mi*len(icpPolicies)+2],
			MissPenalty: m.FalsePositive(netmodel.L2),
		}
	}
	return r, nil
}

// Render implements Result.
func (r *ICPResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ICP extension: sibling multicast queries vs hints, DEC trace (scale %g)\n", float64(r.Scale))
	t := metrics.NewTable("Model", "Hierarchy", "Hierarchy+ICP", "Hints", "ICP miss penalty")
	for _, row := range r.Rows {
		t.AddRow(row.Model,
			metrics.Ms(row.Hierarchy), metrics.Ms(row.ICP),
			metrics.Ms(row.Hints), metrics.Ms(row.MissPenalty))
	}
	sb.WriteString(t.String())
	sb.WriteString("ICP converts some upper-level hits into direct sibling transfers but\n" +
		"charges every local miss a query round trip; hints keep the lookup local\n" +
		"and still beat it (Section 3.1.1's argument, quantified).\n")
	return sb.String()
}

// PlaxtonRow is one tree arity's measurements.
type PlaxtonRow struct {
	Arity int
	// MeanPathLen is the mean number of metadata hops from a random
	// leaf to an object's root.
	MeanPathLen float64
	// MaxRootShare is the largest fraction of objects rooted at any one
	// node (1/NumL1 would be perfectly even; a fixed hierarchy scores
	// 1.0 because one node roots everything).
	MaxRootShare float64
	// Level0Dist and TopDist are the mean parent distances at the
	// lowest and highest used levels (locality: low levels are closer).
	Level0Dist float64
	TopDist    float64
}

// PlaxtonResult measures the self-configuration properties of Section
// 3.1.3 over the default 64-proxy population, using a distance function
// derived from the simulation topology (same L2 subtree: near; otherwise
// far).
type PlaxtonResult struct {
	Rows []PlaxtonRow
	// FixedRootShare is the comparison point: a fixed hierarchy roots
	// every object at the same node.
	FixedRootShare float64

	// Trace-driven measurement: metadata load when the DEC trace's hint
	// updates are routed over Plaxton trees versus the fixed hierarchy.
	TraceLoad hints.MetaLoad
	// FixedMaxShare is the busiest fixed-hierarchy metadata node's share
	// of update messages (the root, or the busiest L2).
	FixedMaxShare float64
}

// Plaxton runs the measurement.
func Plaxton(o Options) (*PlaxtonResult, error) {
	topo := sim.Default()
	rng := rand.New(rand.NewSource(42))
	nodes := make([]plaxton.Node, topo.NumL1)
	used := map[uint64]bool{}
	for i := range nodes {
		addr := fmt.Sprintf("10.0.%d.%d:3128", i/topo.L1PerL2, i%topo.L1PerL2)
		id := hintcache.HashMachine(addr)
		for used[id] {
			id = rng.Uint64()
		}
		used[id] = true
		nodes[i] = plaxton.Node{ID: id, Addr: addr}
	}
	dist := func(a, b int) float64 {
		if a == b {
			return 0
		}
		if topo.SameL2(a, b) {
			return 1
		}
		return 3
	}

	r := &PlaxtonResult{FixedRootShare: 1.0}
	const objects = 20000
	for _, bits := range []uint{1, 2, 4} {
		nw, err := plaxton.New(nodes, bits, dist)
		if err != nil {
			return nil, err
		}
		row := PlaxtonRow{Arity: nw.Arity()}
		rootCount := make([]int, nw.Len())
		var pathSum float64
		var l0Sum, l0N, topSum, topN float64
		objRng := rand.New(rand.NewSource(7))
		for i := 0; i < objects; i++ {
			obj := objRng.Uint64()
			from := objRng.Intn(nw.Len())
			path := nw.Path(obj, from)
			pathSum += float64(len(path))
			rootCount[path[len(path)-1]]++
			if d := nw.ParentDistance(obj, from, 0); d > 0 {
				l0Sum += d
				l0N++
			}
			top := nw.Levels() - 1
			if top > 0 {
				if d := nw.ParentDistance(obj, from, top); d > 0 {
					topSum += d
					topN++
				}
			}
		}
		row.MeanPathLen = pathSum / objects
		maxCount := 0
		for _, c := range rootCount {
			if c > maxCount {
				maxCount = c
			}
		}
		row.MaxRootShare = float64(maxCount) / objects
		if l0N > 0 {
			row.Level0Dist = l0Sum / l0N
		}
		if topN > 0 {
			row.TopDist = topSum / topN
		}
		r.Rows = append(r.Rows, row)
	}

	// Trace-driven metadata load: replay DEC with the Plaxton router
	// mirroring every hint update, under space pressure so that
	// removals flow too.
	p := trace.DECProfile(o.Scale)
	h, err := hints.New(hints.Config{
		Model:          netmodel.NewTestbed(),
		L1Capacity:     scaledBytes(5*GB, o.Scale),
		Warmup:         p.Warmup(),
		MetaRouterBits: 2,
	})
	if err != nil {
		return nil, err
	}
	g, err := traceFor(p)
	if err != nil {
		return nil, err
	}
	if _, err := sim.Run(g, h); err != nil {
		return nil, err
	}
	load, ok := h.MetaLoad()
	if !ok {
		return nil, fmt.Errorf("experiments: meta router not active")
	}
	r.TraceLoad = load

	// Fixed hierarchy comparison: leaves send to their L2 parents, the
	// filtered stream reaches the root; the busiest node is the root or
	// the busiest L2.
	fixedTotal := h.LeafUpdates() + h.RootUpdates()
	perL2 := float64(h.LeafUpdates()) / float64(topo.NumL2())
	busiest := float64(h.RootUpdates())
	if perL2 > busiest {
		busiest = perL2
	}
	if fixedTotal > 0 {
		r.FixedMaxShare = busiest / float64(fixedTotal)
	}
	return r, nil
}

// Render implements Result.
func (r *PlaxtonResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Plaxton self-configuring metadata hierarchy (Section 3.1.3), 64 proxies\n")
	t := metrics.NewTable("Arity", "Mean path len", "Max root share", "L0 parent dist", "Top parent dist")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", row.Arity),
			metrics.F2(row.MeanPathLen),
			metrics.F3(row.MaxRootShare),
			metrics.F2(row.Level0Dist),
			metrics.F2(row.TopDist))
	}
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "Fixed hierarchy max root share: %.3f (every object roots at the same node).\n",
		r.FixedRootShare)
	fmt.Fprintf(&sb, "\nTrace-driven metadata load (DEC, arity-4 trees): %d updates routed,\n"+
		"%.2f mean hops each; busiest node carries %.3f of messages\n"+
		"(fixed hierarchy's busiest node: %.3f).\n",
		r.TraceLoad.Updates, r.TraceLoad.MeanHops, r.TraceLoad.MaxShare, r.FixedMaxShare)
	sb.WriteString("Load distribution: no node roots more than a few percent of objects.\n" +
		"Locality: low-level parents are nearer than top-level parents.\n")
	return sb.String()
}
