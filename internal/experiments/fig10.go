package experiments

import (
	"fmt"
	"strings"
	"time"

	"beyondcache/internal/core"
	"beyondcache/internal/metrics"
	"beyondcache/internal/netmodel"
	"beyondcache/internal/push"
	"beyondcache/internal/trace"
)

// pushVariant is one bar group of Figure 10.
type pushVariant struct {
	label    string
	policy   core.Policy
	strategy push.Strategy
}

// figure10Variants lists Figure 10's algorithms in bar order.
var figure10Variants = []pushVariant{
	{label: "Hierarchy", policy: core.PolicyHierarchy},
	{label: "Hints", policy: core.PolicyHints},
	{label: "Update Push", policy: core.PolicyHintsPush, strategy: push.UpdatePush},
	{label: "Push-1", policy: core.PolicyHintsPush, strategy: push.Hier1},
	{label: "Push-half", policy: core.PolicyHintsPush, strategy: push.HierHalf},
	{label: "Push-all", policy: core.PolicyHintsPush, strategy: push.HierAll},
	{label: "Push-ideal", policy: core.PolicyHintsIdeal},
}

// Figure10Cell is one (model, algorithm) mean response time.
type Figure10Cell struct {
	Model     string
	Algorithm string
	Mean      time.Duration
}

// Figure10Result reproduces Figure 10: simulated response time for the DEC
// trace under the push options, space-constrained (5 GB-equivalent per L1).
type Figure10Result struct {
	Scale trace.Scale
	Cells []Figure10Cell
	// reports keeps the full run reports for Figure 11.
	reports map[string]core.Report
}

// Figure10 runs the sweep. All runs use the space-constrained configuration
// of Section 4.2 (64 L1 caches with 5 GB each, scaled).
func Figure10(o Options) (*Figure10Result, error) {
	p := trace.DECProfile(o.Scale)
	models := netmodel.Models()
	capBytes := scaledBytes(5*GB, o.Scale)
	n := len(models) * len(figure10Variants)
	r := &Figure10Result{Scale: o.Scale, Cells: make([]Figure10Cell, n), reports: make(map[string]core.Report, n)}
	reps := make([]core.Report, n)
	err := runCells(o, n, func(i int) error {
		m := models[i/len(figure10Variants)]
		v := figure10Variants[i%len(figure10Variants)]
		cfg := core.Config{
			Policy:       v.policy,
			PushStrategy: v.strategy,
			Model:        m,
			Warmup:       p.Warmup(),
			L1Capacity:   capBytes,
			Seed:         1,
		}
		if v.policy == core.PolicyHierarchy {
			cfg.L2Capacity = capBytes
			cfg.L3Capacity = capBytes
		}
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return err
		}
		g, err := traceFor(p)
		if err != nil {
			return err
		}
		rep, err := sys.Run(g)
		if err != nil {
			return err
		}
		r.Cells[i] = Figure10Cell{
			Model:     m.Name(),
			Algorithm: v.label,
			Mean:      rep.MeanResponse,
		}
		reps[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, rep := range reps {
		m := models[i/len(figure10Variants)]
		v := figure10Variants[i%len(figure10Variants)]
		r.reports[m.Name()+"/"+v.label] = rep
	}
	return r, nil
}

// Find returns the cell for (model, algorithm).
func (r *Figure10Result) Find(model, algorithm string) (Figure10Cell, bool) {
	for _, c := range r.Cells {
		if c.Model == model && c.Algorithm == algorithm {
			return c, true
		}
	}
	return Figure10Cell{}, false
}

// Report returns the full run report for (model, algorithm).
func (r *Figure10Result) Report(model, algorithm string) (core.Report, bool) {
	rep, ok := r.reports[model+"/"+algorithm]
	return rep, ok
}

// Render implements Result.
func (r *Figure10Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 10: mean response time, DEC trace, push options (scale %g)\n", float64(r.Scale))
	cols := []string{"Algorithm", "Max", "Min", "Testbed"}
	t := metrics.NewTable(cols...)
	for _, v := range figure10Variants {
		row := []string{v.label}
		for _, mdl := range []string{"Max", "Min", "Testbed"} {
			if c, ok := r.Find(mdl, v.label); ok {
				row = append(row, metrics.Ms(c.Mean))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	sb.WriteString(t.String())
	return sb.String()
}

// Figure11Row is one push algorithm's efficiency and bandwidth.
type Figure11Row struct {
	Algorithm string
	// Efficiency is the fraction of pushed bytes later accessed.
	Efficiency float64
	// PushRate and DemandRate are KB/s of virtual trace time.
	PushRate   float64
	DemandRate float64
}

// Figure11Result reproduces Figure 11: (a) efficiency and (b) bandwidth of
// the push algorithms, DEC trace, testbed model.
type Figure11Result struct {
	Scale trace.Scale
	Rows  []Figure11Row
}

// Figure11 derives its numbers from a Figure 10-style run under the testbed
// model.
func Figure11(o Options) (*Figure11Result, error) {
	fig10, err := Figure10(o)
	if err != nil {
		return nil, err
	}
	return figure11From(fig10, o)
}

func figure11From(fig10 *Figure10Result, o Options) (*Figure11Result, error) {
	p := trace.DECProfile(o.Scale)
	span := p.Span() - p.Warmup()
	if span <= 0 {
		return nil, fmt.Errorf("experiments: empty post-warmup span")
	}
	r := &Figure11Result{Scale: o.Scale}
	for _, alg := range []string{"Update Push", "Push-1", "Push-half", "Push-all"} {
		rep, ok := fig10.Report("Testbed", alg)
		if !ok {
			return nil, fmt.Errorf("experiments: missing figure 10 report for %s", alg)
		}
		r.Rows = append(r.Rows, Figure11Row{
			Algorithm:  alg,
			Efficiency: rep.PushEfficiency,
			PushRate:   float64(rep.PushBytes) / span.Seconds() / 1024,
			DemandRate: float64(rep.DemandBytes) / span.Seconds() / 1024,
		})
	}
	return r, nil
}

// Render implements Result.
func (r *Figure11Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 11: push efficiency and bandwidth, DEC trace (scale %g)\n", float64(r.Scale))
	t := metrics.NewTable("Algorithm", "Efficiency", "Pushed KB/s", "Demand KB/s")
	for _, row := range r.Rows {
		t.AddRow(row.Algorithm,
			metrics.F3(row.Efficiency),
			metrics.F2(row.PushRate),
			metrics.F2(row.DemandRate))
	}
	sb.WriteString(t.String())
	sb.WriteString("Paper: update push ~1/3 efficient; hierarchical pushes 4-13% efficient,\n" +
		"bandwidth up to 4x demand-only.\n")
	return sb.String()
}
