package experiments

import (
	"strings"
	"testing"

	"beyondcache/internal/missclass"
	"beyondcache/internal/trace"
)

// tinyOpts keeps experiment tests fast.
func tinyOpts() Options { return Options{Scale: trace.Scale(0.002)} }

// TestEveryExperimentRunsAndRenders drives each registered experiment
// through the public Run entry point and checks it renders non-empty
// output — the path cmd/cachesim exercises.
func TestEveryExperimentRunsAndRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	opts := Options{Scale: trace.Scale(0.001)}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, opts)
			if err != nil {
				t.Fatal(err)
			}
			out := res.Render()
			if len(out) < 40 {
				t.Errorf("render suspiciously short: %q", out)
			}
		})
	}
	if DefaultOptions().Scale <= 0 {
		t.Error("default scale not positive")
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 21 {
		t.Errorf("registry has %d experiments, want 21: %v", len(ids), ids)
	}
	for _, id := range ids {
		title, ok := Title(id)
		if !ok || title == "" {
			t.Errorf("experiment %q has no title", id)
		}
	}
	if _, ok := Title("nope"); ok {
		t.Error("unknown experiment has a title")
	}
	if _, err := Run("nope", tinyOpts()); err == nil {
		t.Error("unknown experiment ran")
	}
}

func TestFigure1Shape(t *testing.T) {
	r, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sizes) != 10 { // 2KB..1024KB
		t.Fatalf("swept %d sizes, want 10", len(r.Sizes))
	}
	for i := range r.Sizes {
		a, b := r.PanelA[i], r.PanelB[i]
		// Within a size: deeper hierarchy paths cost more.
		if !(a[0] < a[1] && a[1] < a[2] && a[2] < a[3]) {
			t.Errorf("size %d: panel A not increasing: %v", r.Sizes[i], a)
		}
		// Hierarchical L3 access costs more than direct L3 access.
		if a[2] <= b[2] {
			t.Errorf("size %d: hierarchy (%v) not slower than direct (%v)", r.Sizes[i], a[2], b[2])
		}
		// Larger objects cost more on every path.
		if i > 0 && r.PanelA[i][3] <= r.PanelA[i-1][3] {
			t.Errorf("panel A miss time not increasing with size")
		}
	}
	out := r.Render()
	for _, want := range []string{"Figure 1(a)", "Figure 1(b)", "Figure 1(c)", "2KB", "1024KB"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable3Render(t *testing.T) {
	r, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	// Spot-check the paper's published values appear.
	for _, want := range []string{"163ms", "271ms", "531ms", "981ms", "550ms", "641ms", "7217ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 render missing %q:\n%s", want, out)
		}
	}
}

func TestTable4Characteristics(t *testing.T) {
	r, err := Table4(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Chars) != 3 {
		t.Fatalf("measured %d traces, want 3", len(r.Chars))
	}
	for _, c := range r.Chars {
		if c.Requests == 0 || c.DistinctObjects == 0 || c.DistinctClients == 0 {
			t.Errorf("%s: empty characteristics %+v", c.Name, c)
		}
		if c.FirstAccessFrac <= 0 || c.FirstAccessFrac >= 1 {
			t.Errorf("%s: first-access fraction %g", c.Name, c.FirstAccessFrac)
		}
	}
	if !strings.Contains(r.Render(), "DEC") {
		t.Error("render missing trace name")
	}
}

func TestFigure2Shape(t *testing.T) {
	r, err := Figure2(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range r.Traces {
		pts := r.Points[name]
		if len(pts) != len(figure2GBs) {
			t.Fatalf("%s: %d points, want %d", name, len(pts), len(figure2GBs))
		}
		// Capacity misses shrink as the cache grows; compulsory misses
		// are capacity-independent.
		first, last := pts[0], pts[len(pts)-1]
		if last.MissRatio[missclass.Capacity] > first.MissRatio[missclass.Capacity] {
			t.Errorf("%s: capacity misses grew with cache size", name)
		}
		comp0 := first.MissRatio[missclass.Compulsory]
		compN := last.MissRatio[missclass.Compulsory]
		if comp0 < 0.5*compN || comp0 > 2*compN {
			t.Errorf("%s: compulsory rate varies wildly with capacity: %g vs %g", name, comp0, compN)
		}
		// For multi-gigabyte caches, capacity misses are minor relative
		// to compulsory misses (Section 2.2.2).
		if last.MissRatio[missclass.Capacity] > last.MissRatio[missclass.Compulsory] {
			t.Errorf("%s: at the largest cache, capacity (%g) > compulsory (%g)",
				name, last.MissRatio[missclass.Capacity], last.MissRatio[missclass.Compulsory])
		}
		if last.TotalMiss <= 0 || last.TotalMiss > 1 {
			t.Errorf("%s: total miss ratio %g", name, last.TotalMiss)
		}
	}
	if !strings.Contains(r.Render(), "Compulsory") {
		t.Error("render missing column")
	}
}

func TestFigure3Shape(t *testing.T) {
	r, err := Figure3(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !(row.HitRatio[0] < row.HitRatio[1] && row.HitRatio[1] < row.HitRatio[2]) {
			t.Errorf("%s: hit ratio not increasing with sharing: %v", row.Trace, row.HitRatio)
		}
	}
	if !strings.Contains(r.Render(), "L3 hit") {
		t.Error("render missing column")
	}
}

func TestFigure4Shape(t *testing.T) {
	r, err := Figure4(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != len(figure4ClientMBs) {
		t.Fatalf("%d points, want %d", len(r.Points), len(figure4ClientMBs))
	}
	// Unbounded client tables beat the proxy configuration (skip the L1
	// hop); tiny tables lose to it (false negatives dominate).
	inf := r.Points[len(r.Points)-1]
	if inf.Ratio <= 1.0 {
		t.Errorf("unbounded client hints ratio = %.2f, want > 1 (paper: ~1.2)", inf.Ratio)
	}
	if inf.Ratio > 1.6 {
		t.Errorf("unbounded client hints ratio = %.2f implausibly high", inf.Ratio)
	}
	smallest := r.Points[0]
	if smallest.Ratio >= 1.0 {
		t.Errorf("tiny client table ratio = %.2f, want < 1 (false negatives dominate)", smallest.Ratio)
	}
	if smallest.FalseNegRate <= inf.FalseNegRate {
		t.Error("false-negative rate did not fall with table size")
	}
	// Client mean response improves monotonically-ish with table size.
	if r.Points[0].ClientMean < r.Points[len(r.Points)-1].ClientMean {
		t.Error("bigger client table made things slower")
	}
	if !strings.Contains(r.Render(), "Proxy/Client") {
		t.Error("render missing ratio column")
	}
}

func TestFigure5Shape(t *testing.T) {
	r, err := Figure5(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != len(figure5MBs) {
		t.Fatalf("%d points, want %d", len(r.Points), len(figure5MBs))
	}
	// The unbounded point (last) must dominate every bounded point.
	inf := r.Points[len(r.Points)-1]
	for _, pt := range r.Points[:len(r.Points)-1] {
		if pt.HitRatio > inf.HitRatio+1e-9 {
			t.Errorf("bounded table (%gMB) beats unbounded: %g > %g",
				pt.EquivalentMB, pt.HitRatio, inf.HitRatio)
		}
	}
	// Tiny tables must lose reach: the smallest table's hit ratio is
	// strictly below unbounded, with false negatives recorded.
	small := r.Points[0]
	if small.HitRatio >= inf.HitRatio {
		t.Errorf("smallest table ties unbounded (%g); sweep shows nothing", small.HitRatio)
	}
	if small.FalseNegatives == 0 {
		t.Error("smallest table produced no false negatives")
	}
	// Large tables approach the unbounded hit rate (Figure 5's plateau).
	big := r.Points[len(r.Points)-2]
	if inf.HitRatio-big.HitRatio > 0.05 {
		t.Errorf("largest bounded table %g still far from unbounded %g", big.HitRatio, inf.HitRatio)
	}
}

func TestFigure6Shape(t *testing.T) {
	r, err := Figure6(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != len(figure6Delays) {
		t.Fatalf("%d points, want %d", len(r.Points), len(figure6Delays))
	}
	first := r.Points[0]
	last := r.Points[len(r.Points)-1]
	if last.HitRatio > first.HitRatio+1e-9 {
		t.Errorf("hit ratio grew with delay: %g -> %g", first.HitRatio, last.HitRatio)
	}
	// A 1000-minute delay must hurt noticeably; a 1-minute delay barely.
	minute := r.Points[1]
	if first.HitRatio-minute.HitRatio > 0.05 {
		t.Errorf("1-minute delay cost %.3f hit ratio; should be minor",
			first.HitRatio-minute.HitRatio)
	}
	if first.HitRatio-last.HitRatio < 0.02 {
		t.Errorf("1000-minute delay cost only %.3f hit ratio; should be visible",
			first.HitRatio-last.HitRatio)
	}
}

func TestTable5Shape(t *testing.T) {
	r, err := Table5(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.HierarchyCount == 0 || r.CentralizedCount == 0 {
		t.Fatal("no update traffic")
	}
	if r.Reduction < 1.5 {
		t.Errorf("filtering reduction = %.2f, want >= 1.5 (paper: ~3)", r.Reduction)
	}
	if !strings.Contains(r.Render(), "Centralized") {
		t.Error("render missing row")
	}
}

func TestFigure8AndTable6Shape(t *testing.T) {
	fig8, err := Figure8(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig8.Cells) != 3*3*2*3 {
		t.Fatalf("%d cells, want 54", len(fig8.Cells))
	}
	// Hints beat the hierarchy in every configuration.
	for _, tr := range []string{"DEC", "Berkeley", "Prodigy"} {
		for _, mdl := range []string{"Max", "Min", "Testbed"} {
			for _, constrained := range []bool{false, true} {
				hier, ok1 := fig8.Find(tr, mdl, "Hierarchy", constrained)
				hint, ok2 := fig8.Find(tr, mdl, "Hints", constrained)
				if !ok1 || !ok2 {
					t.Fatalf("missing cells for %s/%s", tr, mdl)
				}
				if hint.Mean >= hier.Mean {
					t.Errorf("%s/%s constrained=%v: hints (%v) not faster than hierarchy (%v)",
						tr, mdl, constrained, hint.Mean, hier.Mean)
				}
			}
		}
	}

	t6, err := table6From(fig8)
	if err != nil {
		t.Fatal(err)
	}
	for tr, byModel := range t6.Speedup {
		for mdl, sp := range byModel {
			if sp < 1.1 || sp > 5 {
				t.Errorf("%s/%s: speedup %.2f outside plausible band (paper: 1.28-2.79)", tr, mdl, sp)
			}
		}
	}
	if !strings.Contains(t6.Render(), "Paper reports") {
		t.Error("table 6 render missing reference line")
	}
}

func TestICPShape(t *testing.T) {
	r, err := ICP(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Hints beat both hierarchy variants under every model.
		if row.Hints >= row.Hierarchy || row.Hints >= row.ICP {
			t.Errorf("%s: hints (%v) not fastest (hier %v, icp %v)",
				row.Model, row.Hints, row.Hierarchy, row.ICP)
		}
		if row.MissPenalty <= 0 {
			t.Errorf("%s: zero miss penalty", row.Model)
		}
	}
	if !strings.Contains(r.Render(), "Hierarchy+ICP") {
		t.Error("render missing column")
	}
}

func TestPlaxtonShape(t *testing.T) {
	r, err := Plaxton(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Load distribution: far below the fixed hierarchy's 1.0.
		if row.MaxRootShare >= 0.3 {
			t.Errorf("arity %d: max root share %.3f, want well below fixed-root 1.0",
				row.Arity, row.MaxRootShare)
		}
		// Locality: low-level parents no farther than top-level ones.
		if row.Level0Dist > row.TopDist {
			t.Errorf("arity %d: level-0 parent distance %.2f > top %.2f",
				row.Arity, row.Level0Dist, row.TopDist)
		}
		if row.MeanPathLen < 1 {
			t.Errorf("arity %d: mean path length %.2f < 1", row.Arity, row.MeanPathLen)
		}
	}
	// Wider trees are flatter.
	if r.Rows[0].MeanPathLen < r.Rows[len(r.Rows)-1].MeanPathLen {
		t.Error("path length did not shrink with arity")
	}
	// Trace-driven load: the Plaxton fabric spreads metadata far better
	// than the fixed hierarchy's single root.
	if r.TraceLoad.Updates == 0 || r.TraceLoad.TotalReceived == 0 {
		t.Fatal("no trace-driven metadata traffic recorded")
	}
	if r.TraceLoad.MaxShare >= r.FixedMaxShare {
		t.Errorf("plaxton busiest-node share %.3f not below fixed hierarchy's %.3f",
			r.TraceLoad.MaxShare, r.FixedMaxShare)
	}
	if r.TraceLoad.MeanHops <= 0 {
		t.Error("zero mean hops")
	}
}

func TestReplacementShape(t *testing.T) {
	r, err := Replacement(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3*4 {
		t.Fatalf("%d rows, want 12", len(r.Rows))
	}
	byKey := map[string]ReplacementRow{}
	for _, row := range r.Rows {
		byKey[row.Trace+"/"+row.Policy] = row
		if row.HitRatio < 0 || row.HitRatio > 1 || row.ByteHit < 0 || row.ByteHit > 1 {
			t.Errorf("%s/%s: ratios out of range: %+v", row.Trace, row.Policy, row)
		}
	}
	// The classic result: GreedyDual-Size matches or beats LRU on
	// per-request hit ratio for every trace.
	for _, tr := range []string{"DEC", "Berkeley", "Prodigy"} {
		lru := byKey[tr+"/LRU"]
		gds := byKey[tr+"/GreedyDual-Size"]
		if gds.HitRatio < lru.HitRatio-0.01 {
			t.Errorf("%s: GDS hit ratio %.3f below LRU %.3f", tr, gds.HitRatio, lru.HitRatio)
		}
	}
	if !strings.Contains(r.Render(), "GreedyDual-Size") {
		t.Error("render missing policy")
	}
}

func TestAllPoliciesShape(t *testing.T) {
	r, err := AllPolicies(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 3*len(r.Order) {
		t.Fatalf("%d cells, want %d", len(r.Cells), 3*len(r.Order))
	}
	for _, mdl := range []string{"Max", "Min", "Testbed"} {
		hier, _ := r.Find("Hierarchy", mdl)
		hints, _ := r.Find("Hints (paper)", mdl)
		ideal, _ := r.Find("Push-ideal (bound)", mdl)
		icp, _ := r.Find("Hierarchy+ICP", mdl)
		if hier.Mean == 0 || hints.Mean == 0 || ideal.Mean == 0 {
			t.Fatalf("%s: missing cells", mdl)
		}
		// The anchors of the ordering: ideal <= hints < hierarchy <= ICP.
		if !(ideal.Mean <= hints.Mean && hints.Mean < hier.Mean && hier.Mean <= icp.Mean) {
			t.Errorf("%s: ordering broken: ideal %v, hints %v, hier %v, icp %v",
				mdl, ideal.Mean, hints.Mean, hier.Mean, icp.Mean)
		}
	}
	if !strings.Contains(r.Render(), "Grand comparison") {
		t.Error("render missing title")
	}
}

func TestDigestsShape(t *testing.T) {
	r, err := Digests(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(r.Rows))
	}
	exact := r.Rows[0]
	if exact.FalsePos != 0 || exact.FalseNeg != 0 {
		t.Errorf("exact hints produced false pos/neg: %+v", exact)
	}
	for _, row := range r.Rows[1:] {
		// Digests spend far less metadata...
		if row.BytesPerNode >= exact.BytesPerNode {
			t.Errorf("%s: metadata %d not below exact %d", row.Scheme, row.BytesPerNode, exact.BytesPerNode)
		}
		// ...and never miss what exists (no false negatives)...
		if row.FalseNeg != 0 {
			t.Errorf("%s: digest false negatives %d", row.Scheme, row.FalseNeg)
		}
		// ...but pay wasted probes.
		if row.FalsePos == 0 {
			t.Errorf("%s: no false positives; staleness not modeled?", row.Scheme)
		}
		// Latency stays in the same neighborhood as exact hints.
		if float64(row.Mean) > 1.25*float64(exact.Mean) {
			t.Errorf("%s: mean %v far above exact %v", row.Scheme, row.Mean, exact.Mean)
		}
	}
	// More bits per entry means fewer hash false positives.
	if r.Rows[1].FalsePos < r.Rows[3].FalsePos {
		t.Errorf("false positives did not fall with bits/entry: %d -> %d",
			r.Rows[1].FalsePos, r.Rows[3].FalsePos)
	}
	if !strings.Contains(r.Render(), "Metadata/node") {
		t.Error("render missing column")
	}
}

func TestLoadShape(t *testing.T) {
	r, err := Load(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(r.Rows))
	}
	for i := 1; i < len(r.Rows); i++ {
		prev, cur := r.Rows[i-1], r.Rows[i]
		// Load slows everyone down...
		if cur.Hierarchy <= prev.Hierarchy || cur.Hints <= prev.Hints {
			t.Errorf("rho %.1f: response did not grow with load", cur.Rho)
		}
		// ...and widens the hint architecture's absolute lead.
		if cur.Gap <= prev.Gap {
			t.Errorf("rho %.1f: absolute gap shrank (%v -> %v)", cur.Rho, prev.Gap, cur.Gap)
		}
		// Hints always win.
		if cur.Speedup <= 1 {
			t.Errorf("rho %.1f: speedup %.2f <= 1", cur.Rho, cur.Speedup)
		}
	}
	if !strings.Contains(r.Render(), "Utilization") {
		t.Error("render missing column")
	}
}

func TestCrawlShape(t *testing.T) {
	r, err := Crawl(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(r.Rows))
	}
	base := r.Rows[0]
	if base.Fanout != 0 || base.Efficiency != 0 {
		t.Fatalf("first row should be the no-crawler baseline: %+v", base)
	}
	widest := r.Rows[len(r.Rows)-1]
	if widest.MissFrac >= base.MissFrac {
		t.Errorf("crawling did not reduce misses: %.3f -> %.3f", base.MissFrac, widest.MissFrac)
	}
	if widest.Mean >= base.Mean {
		t.Errorf("crawling did not improve response time: %v -> %v", base.Mean, widest.Mean)
	}
	if widest.PrefetchKBs <= r.Rows[1].PrefetchKBs {
		t.Error("wider fanout did not cost more bandwidth")
	}
	if !strings.Contains(r.Render(), "Fanout") {
		t.Error("render missing column")
	}
}

func TestConsistencyShape(t *testing.T) {
	r, err := Consistency(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(r.Rows))
	}
	byName := map[string]ConsistencyRow{}
	for _, row := range r.Rows {
		byName[row.Protocol] = row
	}
	strong := byName["Strong (invalidate)"]
	ttl := byName["TTL"]
	poll := byName["Poll every access"]
	lease := byName["Leases"]
	// Strong, poll, and leases never serve stale data.
	for _, row := range []ConsistencyRow{strong, poll, lease} {
		if row.StaleRate != 0 {
			t.Errorf("%s served stale data (rate %.3f)", row.Protocol, row.StaleRate)
		}
	}
	// TTL distorts: stale hits and/or discarded-good.
	if ttl.StaleRate == 0 && ttl.DiscardedGood == 0 {
		t.Error("TTL showed no distortion")
	}
	// Leases cost fewer messages than polling.
	if lease.MsgsPerReq >= poll.MsgsPerReq {
		t.Errorf("leases (%.3f msgs/req) not cheaper than poll (%.3f)",
			lease.MsgsPerReq, poll.MsgsPerReq)
	}
	if !strings.Contains(r.Render(), "Msgs/req") {
		t.Error("render missing column")
	}
}

func TestFigure10And11Shape(t *testing.T) {
	fig10, err := Figure10(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, mdl := range []string{"Max", "Min", "Testbed"} {
		hier, _ := fig10.Find(mdl, "Hierarchy")
		hints, _ := fig10.Find(mdl, "Hints")
		ideal, _ := fig10.Find(mdl, "Push-ideal")
		pushAll, _ := fig10.Find(mdl, "Push-all")
		if hier.Mean == 0 || hints.Mean == 0 || ideal.Mean == 0 || pushAll.Mean == 0 {
			t.Fatalf("%s: missing cells", mdl)
		}
		if !(ideal.Mean <= pushAll.Mean) {
			t.Errorf("%s: ideal (%v) not <= push-all (%v)", mdl, ideal.Mean, pushAll.Mean)
		}
		if !(pushAll.Mean <= hints.Mean) {
			t.Errorf("%s: push-all (%v) not <= hints (%v)", mdl, pushAll.Mean, hints.Mean)
		}
		if !(hints.Mean < hier.Mean) {
			t.Errorf("%s: hints (%v) not < hierarchy (%v)", mdl, hints.Mean, hier.Mean)
		}
	}

	fig11, err := figure11From(fig10, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig11.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(fig11.Rows))
	}
	var update, pushAll Figure11Row
	for _, row := range fig11.Rows {
		if row.Efficiency < 0 || row.Efficiency > 1 {
			t.Errorf("%s: efficiency %g outside [0,1]", row.Algorithm, row.Efficiency)
		}
		switch row.Algorithm {
		case "Update Push":
			update = row
		case "Push-all":
			pushAll = row
		}
	}
	// Update push is the selective algorithm: more efficient but less
	// bandwidth-hungry than push-all (Figure 11's shape).
	if pushAll.Efficiency > 0 && update.Efficiency > 0 && update.Efficiency < pushAll.Efficiency {
		t.Errorf("update push efficiency (%g) below push-all (%g); selectivity lost",
			update.Efficiency, pushAll.Efficiency)
	}
	if pushAll.PushRate <= update.PushRate {
		t.Errorf("push-all bandwidth (%g) not above update push (%g)",
			pushAll.PushRate, update.PushRate)
	}
}
