package experiments

import (
	"fmt"
	"strings"
	"time"

	"beyondcache/internal/metrics"
	"beyondcache/internal/netmodel"
)

// Figure1Result reproduces the three panels of Figure 1: access time versus
// object size for (a) the full hierarchy path, (b) direct accesses, and
// (c) accesses through the L1 proxy, under the testbed cost model.
type Figure1Result struct {
	// Sizes are the object sizes swept (bytes), 2 KB to 1 MB as in the
	// paper.
	Sizes []int64
	// PanelA[i] is {CLN-L1, CLN-L1-L2, CLN-L1-L2-L3, CLN-L1-L2-L3-SRV}
	// at Sizes[i].
	PanelA [][4]time.Duration
	// PanelB[i] is {CLN-L1, CLN-L2, CLN-L3, CLN-SRV} at Sizes[i].
	PanelB [][4]time.Duration
	// PanelC[i] is {CLN-L1, CLN-L1-L2, CLN-L1-L3, CLN-L1-SRV} at
	// Sizes[i].
	PanelC [][4]time.Duration
}

// Figure1 computes the three panels from the testbed model.
func Figure1() (*Figure1Result, error) {
	m := netmodel.NewTestbed()
	r := &Figure1Result{}
	for kb := int64(2); kb <= 1024; kb *= 2 {
		size := kb << 10
		r.Sizes = append(r.Sizes, size)
		r.PanelA = append(r.PanelA, [4]time.Duration{
			m.HierHit(netmodel.L1, size),
			m.HierHit(netmodel.L2, size),
			m.HierHit(netmodel.L3, size),
			m.HierMiss(size),
		})
		r.PanelB = append(r.PanelB, [4]time.Duration{
			m.DirectHit(netmodel.L1, size),
			m.DirectHit(netmodel.L2, size),
			m.DirectHit(netmodel.L3, size),
			m.DirectMiss(size),
		})
		r.PanelC = append(r.PanelC, [4]time.Duration{
			m.ViaL1Hit(netmodel.L1, size),
			m.ViaL1Hit(netmodel.L2, size),
			m.ViaL1Hit(netmodel.L3, size),
			m.ViaL1Miss(size),
		})
	}
	return r, nil
}

// Render implements Result.
func (r *Figure1Result) Render() string {
	var sb strings.Builder
	panel := func(name string, cols [4]string, data [][4]time.Duration) {
		fmt.Fprintf(&sb, "Figure 1(%s): response time (ms) vs object size, testbed model\n", name)
		t := metrics.NewTable("Size", cols[0], cols[1], cols[2], cols[3])
		for i, size := range r.Sizes {
			t.AddRow(fmt.Sprintf("%dKB", size>>10),
				metrics.Ms(data[i][0]), metrics.Ms(data[i][1]),
				metrics.Ms(data[i][2]), metrics.Ms(data[i][3]))
		}
		sb.WriteString(t.String())
		sb.WriteString("\n")
	}
	panel("a", [4]string{"CLN-L1", "CLN-L1-L2", "CLN-L1-L2-L3", "CLN-..-SRV"}, r.PanelA)
	panel("b", [4]string{"CLN-L1", "CLN-L2", "CLN-L3", "CLN-SRV"}, r.PanelB)
	panel("c", [4]string{"CLN-L1", "CLN-L1-L2", "CLN-L1-L3", "CLN-L1-SRV"}, r.PanelC)
	return sb.String()
}

// Table3Result prints the Rousskov-derived bounds exactly as Table 3 does.
type Table3Result struct {
	// Rows are [level][column] durations: columns are hierarchical,
	// direct, via-L1 for min and max models; levels are leaf,
	// intermediate, root, miss.
	MinHier, MaxHier, MinDirect, MaxDirect, MinVia, MaxVia [4]time.Duration
}

// Table3 evaluates the Rousskov models at each level.
func Table3() (*Table3Result, error) {
	min := netmodel.NewRousskovMin()
	max := netmodel.NewRousskovMax()
	r := &Table3Result{}
	for i, lvl := range []netmodel.Level{netmodel.L1, netmodel.L2, netmodel.L3} {
		r.MinHier[i] = min.HierHit(lvl, 0)
		r.MaxHier[i] = max.HierHit(lvl, 0)
		r.MinDirect[i] = min.DirectHit(lvl, 0)
		r.MaxDirect[i] = max.DirectHit(lvl, 0)
		r.MinVia[i] = min.ViaL1Hit(lvl, 0)
		r.MaxVia[i] = max.ViaL1Hit(lvl, 0)
	}
	r.MinHier[3] = min.HierMiss(0)
	r.MaxHier[3] = max.HierMiss(0)
	r.MinDirect[3] = min.DirectMiss(0)
	r.MaxDirect[3] = max.DirectMiss(0)
	r.MinVia[3] = min.ViaL1Miss(0)
	r.MaxVia[3] = max.ViaL1Miss(0)
	return r, nil
}

// Render implements Result.
func (r *Table3Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 3: Squid cache hierarchy performance (Rousskov-derived)\n")
	t := metrics.NewTable("Level",
		"Hier min", "Hier max",
		"Direct min", "Direct max",
		"ViaL1 min", "ViaL1 max")
	names := []string{"Leaf", "Intermediate", "Root", "Miss"}
	for i, name := range names {
		t.AddRow(name,
			metrics.Ms(r.MinHier[i]), metrics.Ms(r.MaxHier[i]),
			metrics.Ms(r.MinDirect[i]), metrics.Ms(r.MaxDirect[i]),
			metrics.Ms(r.MinVia[i]), metrics.Ms(r.MaxVia[i]))
	}
	sb.WriteString(t.String())
	return sb.String()
}
