package experiments

import (
	"fmt"
	"strings"
	"time"

	"beyondcache/internal/core"
	"beyondcache/internal/hintcache"
	"beyondcache/internal/metrics"
	"beyondcache/internal/netmodel"
	"beyondcache/internal/trace"
)

// Figure8Cell is one bar of Figure 8: a (trace, model, policy, config)
// mean response time.
type Figure8Cell struct {
	Trace       string
	Model       string
	Policy      string
	Constrained bool
	Mean        time.Duration
	HitRatio    float64
}

// Figure8Result holds all bars of Figure 8 (a: infinite disk, b: space
// constrained).
type Figure8Result struct {
	Scale trace.Scale
	Cells []Figure8Cell
}

// figure8Policies are the three systems compared, in bar order.
var figure8Policies = []core.Policy{core.PolicyHierarchy, core.PolicyDirectory, core.PolicyHints}

// Figure8 runs the full 3 traces x 3 models x 2 configs x 3 policies grid.
func Figure8(o Options) (*Figure8Result, error) {
	type gridCell struct {
		p           trace.Profile
		m           netmodel.Model
		pol         core.Policy
		constrained bool
	}
	var grid []gridCell
	for _, p := range trace.Profiles(o.Scale) {
		for _, m := range netmodel.Models() {
			for _, constrained := range []bool{false, true} {
				for _, pol := range figure8Policies {
					grid = append(grid, gridCell{p, m, pol, constrained})
				}
			}
		}
	}
	r := &Figure8Result{Scale: o.Scale, Cells: make([]Figure8Cell, len(grid))}
	err := runCells(o, len(grid), func(i int) error {
		c := grid[i]
		cell, err := figure8Cell(o, c.p, c.m, c.pol, c.constrained)
		if err != nil {
			return err
		}
		r.Cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// figure8Cell runs one bar. In the space-constrained configuration each
// node of the traditional hierarchy gets 5 GB for objects, while hint-
// architecture L1s get 4.5 GB for objects plus a 500 MB hint table — the
// paper's arrangement, which gives the hierarchy strictly more object
// space.
func figure8Cell(o Options, p trace.Profile, m netmodel.Model, pol core.Policy, constrained bool) (Figure8Cell, error) {
	cfg := core.Config{
		Policy: pol,
		Model:  m,
		Warmup: p.Warmup(),
	}
	if constrained {
		if pol == core.PolicyHierarchy {
			cfg.L1Capacity = scaledBytes(5*GB, o.Scale)
			cfg.L2Capacity = scaledBytes(5*GB, o.Scale)
			cfg.L3Capacity = scaledBytes(5*GB, o.Scale)
		} else {
			cfg.L1Capacity = scaledBytes(9*GB/2, o.Scale)
			cfg.HintEntries = hintcache.EntriesForBytes(scaledBytes(500*MB, o.Scale))
		}
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return Figure8Cell{}, err
	}
	g, err := traceFor(p)
	if err != nil {
		return Figure8Cell{}, err
	}
	rep, err := sys.Run(g)
	if err != nil {
		return Figure8Cell{}, err
	}
	return Figure8Cell{
		Trace:       p.Name,
		Model:       m.Name(),
		Policy:      pol.String(),
		Constrained: constrained,
		Mean:        rep.MeanResponse,
		HitRatio:    rep.HitRatio,
	}, nil
}

// Find returns the cell matching the key, or false.
func (r *Figure8Result) Find(traceName, model, policy string, constrained bool) (Figure8Cell, bool) {
	for _, c := range r.Cells {
		if c.Trace == traceName && c.Model == model && c.Policy == policy && c.Constrained == constrained {
			return c, true
		}
	}
	return Figure8Cell{}, false
}

// Render implements Result.
func (r *Figure8Result) Render() string {
	var sb strings.Builder
	for _, constrained := range []bool{false, true} {
		label := "(a) infinite disk"
		if constrained {
			label = "(b) space constrained (5GB-equivalent per node)"
		}
		fmt.Fprintf(&sb, "Figure 8 %s: mean response time (scale %g)\n", label, float64(r.Scale))
		t := metrics.NewTable("Trace", "Model", "Hierarchy", "Directory", "Hints")
		for _, tr := range []string{"DEC", "Berkeley", "Prodigy"} {
			for _, mdl := range []string{"Max", "Min", "Testbed"} {
				row := []string{tr, mdl}
				for _, pol := range figure8Policies {
					if c, ok := r.Find(tr, mdl, pol.String(), constrained); ok {
						row = append(row, metrics.Ms(c.Mean))
					} else {
						row = append(row, "-")
					}
				}
				t.AddRow(row...)
			}
		}
		sb.WriteString(t.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// Table6Result derives the hierarchy-to-hints speedup ratios of Table 6
// from the infinite-disk Figure 8 cells.
type Table6Result struct {
	Scale trace.Scale
	// Speedup[trace][model] is hierarchy mean / hints mean.
	Speedup map[string]map[string]float64
}

// Table6 computes the ratios.
func Table6(o Options) (*Table6Result, error) {
	fig8, err := Figure8(o)
	if err != nil {
		return nil, err
	}
	return table6From(fig8)
}

func table6From(fig8 *Figure8Result) (*Table6Result, error) {
	r := &Table6Result{Scale: fig8.Scale, Speedup: make(map[string]map[string]float64)}
	for _, tr := range []string{"DEC", "Berkeley", "Prodigy"} {
		r.Speedup[tr] = make(map[string]float64)
		for _, mdl := range []string{"Max", "Min", "Testbed"} {
			hier, ok1 := fig8.Find(tr, mdl, "Hierarchy", false)
			hint, ok2 := fig8.Find(tr, mdl, "Hints", false)
			if !ok1 || !ok2 || hint.Mean == 0 {
				return nil, fmt.Errorf("experiments: missing figure 8 cell for %s/%s", tr, mdl)
			}
			r.Speedup[tr][mdl] = float64(hier.Mean) / float64(hint.Mean)
		}
	}
	return r, nil
}

// Render implements Result.
func (r *Table6Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 6: response-time ratio, hierarchy / hints (scale %g)\n", float64(r.Scale))
	t := metrics.NewTable("Trace", "Max", "Min", "Testbed")
	for _, tr := range []string{"Prodigy", "Berkeley", "DEC"} {
		t.AddRow(tr,
			metrics.F2(r.Speedup[tr]["Max"]),
			metrics.F2(r.Speedup[tr]["Min"]),
			metrics.F2(r.Speedup[tr]["Testbed"]))
	}
	sb.WriteString(t.String())
	sb.WriteString("Paper reports: Prodigy 1.80/1.38/2.31, Berkeley 1.79/1.32/2.79, DEC 1.62/1.28/1.99\n")
	return sb.String()
}
