package experiments

import (
	"fmt"
	"io"
	"strings"

	"beyondcache/internal/metrics"
	"beyondcache/internal/replacement"
	"beyondcache/internal/trace"
)

// ReplacementRow is one (trace, policy) measurement.
type ReplacementRow struct {
	Trace     string
	Policy    string
	HitRatio  float64
	ByteHit   float64
	Evictions int64
}

// ReplacementResult ablates the paper's LRU assumption: hit ratios of LRU,
// LFU, SIZE, and GreedyDual-Size for a shared cache at the paper's 5
// GB-equivalent capacity.
type ReplacementResult struct {
	Scale trace.Scale
	Rows  []ReplacementRow
}

// Replacement runs the ablation over all three traces.
func Replacement(o Options) (*ReplacementResult, error) {
	capBytes := scaledBytes(5*GB, o.Scale)
	profiles := trace.Profiles(o.Scale)
	policies := replacement.Policies()
	r := &ReplacementResult{Scale: o.Scale, Rows: make([]ReplacementRow, len(profiles)*len(policies))}
	err := runCells(o, len(r.Rows), func(i int) error {
		p := profiles[i/len(policies)]
		pol := policies[i%len(policies)]
		row, err := replacementRow(p, pol, capBytes)
		if err != nil {
			return err
		}
		r.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

func replacementRow(p trace.Profile, pol replacement.Policy, capBytes int64) (ReplacementRow, error) {
	c, err := replacement.New(pol, capBytes)
	if err != nil {
		return ReplacementRow{}, err
	}
	g, err := traceFor(p)
	if err != nil {
		return ReplacementRow{}, err
	}
	warm := p.Warmup()
	var hits, total, hitBytes, totalBytes int64
	for {
		req, err := g.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return ReplacementRow{}, err
		}
		if !req.Cachable() {
			continue
		}
		record := req.Time >= warm
		if record {
			total++
			totalBytes += req.Size
		}
		if _, ok := c.GetVersion(req.Object, req.Version); ok {
			if record {
				hits++
				hitBytes += req.Size
			}
			continue
		}
		c.Put(replacement.Object{ID: req.Object, Size: req.Size, Version: req.Version})
	}
	row := ReplacementRow{
		Trace:     p.Name,
		Policy:    pol.String(),
		Evictions: c.Evictions(),
	}
	if total > 0 {
		row.HitRatio = float64(hits) / float64(total)
		row.ByteHit = float64(hitBytes) / float64(totalBytes)
	}
	return row, nil
}

// Render implements Result.
func (r *ReplacementResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Replacement-policy ablation, 5GB-equivalent shared cache (scale %g)\n",
		float64(r.Scale))
	t := metrics.NewTable("Trace", "Policy", "Hit ratio", "Byte hit", "Evictions")
	for _, row := range r.Rows {
		t.AddRow(row.Trace, row.Policy,
			metrics.F3(row.HitRatio), metrics.F3(row.ByteHit),
			fmt.Sprintf("%d", row.Evictions))
	}
	sb.WriteString(t.String())
	sb.WriteString("Size-aware policies raise per-request hit ratios (many small objects\n" +
		"survive per big eviction) at some cost in byte hit ratio; the paper's LRU\n" +
		"results are therefore conservative for the hint architecture.\n")
	return sb.String()
}
