package experiments

import (
	"fmt"
	"strings"

	"beyondcache/internal/hierarchy"
	"beyondcache/internal/metrics"
	"beyondcache/internal/netmodel"
	"beyondcache/internal/sim"
	"beyondcache/internal/trace"
)

// Figure3Row is one trace's hit ratios at each sharing level.
type Figure3Row struct {
	Trace        string
	HitRatio     [3]float64 // L1 (256 clients), L2 (2048), L3 (all)
	ByteHitRatio [3]float64
}

// Figure3Result reproduces Figure 3: per-read and per-byte hit rates within
// infinite L1/L2/L3 caches as sharing widens.
type Figure3Result struct {
	Scale trace.Scale
	Rows  []Figure3Row
}

// Figure3 replays each trace through the infinite three-level hierarchy.
func Figure3(o Options) (*Figure3Result, error) {
	profiles := trace.Profiles(o.Scale)
	r := &Figure3Result{Scale: o.Scale, Rows: make([]Figure3Row, len(profiles))}
	err := runCells(o, len(profiles), func(i int) error {
		p := profiles[i]
		h, err := hierarchy.New(hierarchy.Config{
			Model:  netmodel.NewTestbed(),
			Warmup: p.Warmup(),
		})
		if err != nil {
			return err
		}
		g, err := traceFor(p)
		if err != nil {
			return err
		}
		if _, err := sim.Run(g, h); err != nil {
			return err
		}
		row := Figure3Row{Trace: p.Name}
		for lv, lvl := range []netmodel.Level{netmodel.L1, netmodel.L2, netmodel.L3} {
			row.HitRatio[lv] = h.HitRatio(lvl)
			row.ByteHitRatio[lv] = h.ByteHitRatio(lvl)
		}
		r.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Render implements Result.
func (r *Figure3Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3: hit ratio vs sharing level, infinite caches (scale %g)\n", float64(r.Scale))
	t := metrics.NewTable("Trace", "L1 hit", "L2 hit", "L3 hit",
		"L1 byte", "L2 byte", "L3 byte")
	for _, row := range r.Rows {
		t.AddRow(row.Trace,
			metrics.F3(row.HitRatio[0]), metrics.F3(row.HitRatio[1]), metrics.F3(row.HitRatio[2]),
			metrics.F3(row.ByteHitRatio[0]), metrics.F3(row.ByteHitRatio[1]), metrics.F3(row.ByteHitRatio[2]))
	}
	sb.WriteString(t.String())
	return sb.String()
}
