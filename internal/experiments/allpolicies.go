package experiments

import (
	"fmt"
	"strings"
	"time"

	"beyondcache/internal/core"
	"beyondcache/internal/metrics"
	"beyondcache/internal/netmodel"
	"beyondcache/internal/push"
	"beyondcache/internal/trace"
)

// AllPoliciesCell is one (policy, model) response-time summary: the mean
// the paper reports plus tail percentiles from the shared histogram type.
type AllPoliciesCell struct {
	Policy string
	Model  string
	Mean   time.Duration
	P50    time.Duration
	P95    time.Duration
	P99    time.Duration
}

// AllPoliciesResult is the grand comparison: every cache organization in
// the repository — the paper's systems, its baselines, and the era's
// alternatives — on the DEC workload under all three cost models.
type AllPoliciesResult struct {
	Scale trace.Scale
	Cells []AllPoliciesCell
	// Order lists policies fastest-last for the Testbed model.
	Order []string
}

// allPolicyVariants lists the organizations compared, roughly slowest
// first.
var allPolicyVariants = []struct {
	label    string
	policy   core.Policy
	strategy push.Strategy
}{
	{label: "Hierarchy+ICP", policy: core.PolicyHierarchyICP},
	{label: "Hierarchy", policy: core.PolicyHierarchy},
	{label: "Directory (CRISP)", policy: core.PolicyDirectory},
	{label: "Digests (Summary Cache)", policy: core.PolicyDigests},
	{label: "Hints (paper)", policy: core.PolicyHints},
	{label: "Client hints (Fig 4b)", policy: core.PolicyClientHints},
	{label: "Hints + push-all", policy: core.PolicyHintsPush, strategy: push.HierAll},
	{label: "Push-ideal (bound)", policy: core.PolicyHintsIdeal},
}

// AllPolicies runs the grand comparison.
func AllPolicies(o Options) (*AllPoliciesResult, error) {
	p := trace.DECProfile(o.Scale)
	models := netmodel.Models()
	r := &AllPoliciesResult{Scale: o.Scale}
	r.Cells = make([]AllPoliciesCell, len(models)*len(allPolicyVariants))
	err := runCells(o, len(r.Cells), func(i int) error {
		m := models[i/len(allPolicyVariants)]
		v := allPolicyVariants[i%len(allPolicyVariants)]
		sys, err := core.NewSystem(core.Config{
			Policy:       v.policy,
			PushStrategy: v.strategy,
			Model:        m,
			Warmup:       p.Warmup(),
			Seed:         1,
		})
		if err != nil {
			return err
		}
		g, err := traceFor(p)
		if err != nil {
			return err
		}
		rep, err := sys.Run(g)
		if err != nil {
			return err
		}
		r.Cells[i] = AllPoliciesCell{
			Policy: v.label,
			Model:  m.Name(),
			Mean:   rep.MeanResponse,
			P50:    rep.P50Response,
			P95:    rep.P95Response,
			P99:    rep.P99Response,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, v := range allPolicyVariants {
		r.Order = append(r.Order, v.label)
	}
	return r, nil
}

// Find returns the cell for (policy label, model name).
func (r *AllPoliciesResult) Find(policy, model string) (AllPoliciesCell, bool) {
	for _, c := range r.Cells {
		if c.Policy == policy && c.Model == model {
			return c, true
		}
	}
	return AllPoliciesCell{}, false
}

// Render implements Result.
func (r *AllPoliciesResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Grand comparison: every cache organization, DEC trace (scale %g)\n", float64(r.Scale))
	t := metrics.NewTable("Organization", "Max", "Min", "Testbed", "p50", "p95", "p99")
	for _, label := range r.Order {
		row := []string{label}
		for _, mdl := range []string{"Max", "Min", "Testbed"} {
			if c, ok := r.Find(label, mdl); ok {
				row = append(row, metrics.Ms(c.Mean))
			} else {
				row = append(row, "-")
			}
		}
		// Tail percentiles for the Testbed model (the realistic one).
		if c, ok := r.Find(label, "Testbed"); ok {
			row = append(row, metrics.Ms(c.P50), metrics.Ms(c.P95), metrics.Ms(c.P99))
		} else {
			row = append(row, "-", "-", "-")
		}
		t.AddRow(row...)
	}
	sb.WriteString(t.String())
	sb.WriteString("Mean columns per cost model; p50/p95/p99 are Testbed-model tail\n" +
		"percentiles from the shared histogram type (bucket interpolation).\n" +
		"Top to bottom: multicast queries, the data hierarchy, a central\n" +
		"directory, Bloom digests, the paper's hints, client-side hints, hints\n" +
		"with push caching, and the push-ideal lower bound.\n")
	return sb.String()
}
