package experiments

import (
	"fmt"
	"strings"
	"time"

	"beyondcache/internal/hints"
	"beyondcache/internal/metrics"
	"beyondcache/internal/netmodel"
	"beyondcache/internal/push"
	"beyondcache/internal/sim"
	"beyondcache/internal/trace"
)

// CrawlRow is one crawler fanout's measurements.
type CrawlRow struct {
	Fanout int // 0 = no crawler
	// MissFrac is the fraction of requests that went to the origin.
	MissFrac float64
	// Mean is the mean response time.
	Mean time.Duration
	// Efficiency is the fraction of prefetched bytes later referenced.
	Efficiency float64
	// PrefetchKBs is the crawl bandwidth in KB/s of virtual time.
	PrefetchKBs float64
}

// CrawlResult measures the future-work extension the paper sketches in
// Section 4.1: a crawler that prefetches objects not yet stored anywhere in
// the cache system (same-server siblings of compulsory misses), the only
// mechanism that can cut compulsory misses — at the price of extra origin
// load, which the paper's own algorithms deliberately avoid.
type CrawlResult struct {
	Scale trace.Scale
	Rows  []CrawlRow
}

// Crawl sweeps the crawler fanout on the DEC trace.
func Crawl(o Options) (*CrawlResult, error) {
	p := trace.DECProfile(o.Scale)
	span := p.Span() - p.Warmup()
	fanouts := []int{0, 2, 8, 24}
	r := &CrawlResult{Scale: o.Scale, Rows: make([]CrawlRow, len(fanouts))}
	err := runCells(o, len(fanouts), func(i int) error {
		fanout := fanouts[i]
		var crawler *push.Crawler
		cfg := hints.Config{
			Model:  netmodel.NewTestbed(),
			Warmup: p.Warmup(),
		}
		if fanout > 0 {
			var err error
			crawler, err = push.NewCrawler(p, fanout)
			if err != nil {
				return err
			}
			cfg.Pusher = crawler
		}
		h, err := hints.New(cfg)
		if err != nil {
			return err
		}
		if crawler != nil {
			crawler.Bind(h)
		}
		g, err := traceFor(p)
		if err != nil {
			return err
		}
		if _, err := sim.Run(g, h); err != nil {
			return err
		}
		row := CrawlRow{
			Fanout:   fanout,
			MissFrac: h.Stats().FracAny(sim.OutcomeMiss, sim.OutcomeFalsePos),
			Mean:     h.MeanResponse(),
		}
		if crawler != nil {
			row.Efficiency = crawler.Efficiency()
			if span > 0 {
				row.PrefetchKBs = float64(crawler.Stats().PrefetchedBytes) / span.Seconds() / 1024
			}
		}
		r.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Render implements Result.
func (r *CrawlResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Crawler extension (Section 4.1 future work), DEC trace (scale %g)\n", float64(r.Scale))
	t := metrics.NewTable("Fanout", "Miss fraction", "Mean response", "Efficiency", "Crawl KB/s")
	for _, row := range r.Rows {
		label := "none"
		if row.Fanout > 0 {
			label = fmt.Sprintf("%d", row.Fanout)
		}
		t.AddRow(label,
			metrics.F3(row.MissFrac),
			metrics.Ms(row.Mean),
			metrics.F3(row.Efficiency),
			metrics.F2(row.PrefetchKBs))
	}
	sb.WriteString(t.String())
	sb.WriteString("Crawling same-server siblings of compulsory misses is the only mechanism\n" +
		"here that reduces complete misses; the paper's push algorithms cannot (they\n" +
		"only replicate data already in the system).\n")
	return sb.String()
}
