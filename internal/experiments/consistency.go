package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"beyondcache/internal/consistency"
	"beyondcache/internal/metrics"
	"beyondcache/internal/trace"
)

// ConsistencyRow is one protocol's measurements.
type ConsistencyRow struct {
	Protocol      string
	TrueHit       float64
	ApparentHit   float64
	StaleRate     float64
	DiscardedGood int64
	MsgsPerReq    float64
}

// ConsistencyResult quantifies Section 2.2.1's methodology argument: weak
// consistency (TTL) distorts hit rates in both directions, polling is
// accurate but message-expensive, and leases deliver strong semantics at a
// fraction of poll's cost — which is why the paper's simulations may assume
// strong consistency without losing realism.
type ConsistencyResult struct {
	Scale trace.Scale
	Trace string
	Rows  []ConsistencyRow
}

// Consistency replays the Berkeley workload (the update-heavy one) under
// each protocol. The TTL is Squid's two days and the lease term one hour,
// both compressed with the trace clock.
func Consistency(o Options) (*ConsistencyResult, error) {
	p := trace.BerkeleyProfile(o.Scale)
	r := &ConsistencyResult{Scale: o.Scale, Trace: p.Name}

	squidTTL := time.Duration(float64(48*time.Hour) * float64(o.Scale))
	leaseTerm := time.Duration(float64(time.Hour) * float64(o.Scale))
	if squidTTL < time.Second {
		squidTTL = time.Second
	}
	if leaseTerm < 100*time.Millisecond {
		leaseTerm = 100 * time.Millisecond
	}

	cfgs := []consistency.Config{
		{Kind: consistency.Strong},
		{Kind: consistency.TTL, TTL: squidTTL},
		{Kind: consistency.Poll},
		{Kind: consistency.Lease, LeaseDuration: leaseTerm},
	}
	r.Rows = make([]ConsistencyRow, len(cfgs))
	err := runCells(o, len(cfgs), func(i int) error {
		cfg := cfgs[i]
		s, err := consistency.New(cfg)
		if err != nil {
			return err
		}
		g, err := traceFor(p)
		if err != nil {
			return err
		}
		for {
			req, err := g.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			s.Process(req)
		}
		st := s.Stats()
		r.Rows[i] = ConsistencyRow{
			Protocol:      cfg.Kind.String(),
			TrueHit:       st.TrueHitRatio(),
			ApparentHit:   st.ApparentHitRatio(),
			StaleRate:     st.StaleRate(),
			DiscardedGood: st.DiscardedGood,
			MsgsPerReq:    st.MessagesPerRequest(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Render implements Result.
func (r *ConsistencyResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Consistency extension (Section 2.2.1), %s trace (scale %g)\n",
		r.Trace, float64(r.Scale))
	t := metrics.NewTable("Protocol", "True hit", "Apparent hit", "Stale rate",
		"Discarded good", "Msgs/req")
	for _, row := range r.Rows {
		t.AddRow(row.Protocol,
			metrics.F3(row.TrueHit),
			metrics.F3(row.ApparentHit),
			metrics.F3(row.StaleRate),
			fmt.Sprintf("%d", row.DiscardedGood),
			metrics.F3(row.MsgsPerReq))
	}
	sb.WriteString(t.String())
	sb.WriteString("TTL (Squid's 2-day rule) serves stale data and/or discards good data;\n" +
		"polling never lies but pays a validation on every hit; leases match strong\n" +
		"consistency at a fraction of the messages — supporting the paper's choice\n" +
		"to simulate strong consistency.\n")
	return sb.String()
}
