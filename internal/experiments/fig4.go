package experiments

import (
	"fmt"
	"strings"
	"time"

	"beyondcache/internal/hintcache"
	"beyondcache/internal/hints"
	"beyondcache/internal/metrics"
	"beyondcache/internal/netmodel"
	"beyondcache/internal/sim"
	"beyondcache/internal/trace"
)

// Figure4Point compares the two hint-hierarchy configurations of Figure 4
// at one client-hint-table size.
type Figure4Point struct {
	// EquivalentMB is the client hint table size in full-scale MB
	// (0 = unbounded).
	EquivalentMB float64
	// ClientMean is the Figure 4b configuration's mean response time.
	ClientMean time.Duration
	// FalseNegRate is the fraction of requests lost to client-table
	// false negatives.
	FalseNegRate float64
	// Ratio is proxyMean / clientMean (> 1 means the client
	// configuration wins).
	Ratio float64
}

// Figure4Result reproduces the Section 3.3 comparison between the basic
// (proxy-hint, Figure 4a) and alternate (client-hint, Figure 4b)
// configurations for the testbed parameters and the DEC trace: with ample
// client tables the alternate configuration wins by skipping the L1 hop
// (~20% in the paper); once the client tables are small enough that false
// negatives dominate, it loses.
type Figure4Result struct {
	Scale     trace.Scale
	ProxyMean time.Duration
	Points    []Figure4Point
}

// figure4ClientMBs sweeps the client hint-table size (full-scale MB;
// 0 = unbounded).
var figure4ClientMBs = []float64{0.25, 1, 4, 16, 64, 0}

// Figure4 runs the comparison.
func Figure4(o Options) (*Figure4Result, error) {
	p := trace.DECProfile(o.Scale)
	model := netmodel.NewTestbed()

	runCfg := func(cfg hints.Config) (*hints.Simulator, error) {
		cfg.Model = model
		cfg.Warmup = p.Warmup()
		h, err := hints.New(cfg)
		if err != nil {
			return nil, err
		}
		g, err := traceFor(p)
		if err != nil {
			return nil, err
		}
		if _, err := sim.Run(g, h); err != nil {
			return nil, err
		}
		return h, nil
	}

	// Cell 0 is the proxy-hint run; cells 1..N are the client-table sweep.
	// The proxy/client ratio needs the proxy mean, so it is derived after
	// the merge rather than inside the cells.
	r := &Figure4Result{Scale: o.Scale, Points: make([]Figure4Point, len(figure4ClientMBs))}
	err := runCells(o, 1+len(figure4ClientMBs), func(i int) error {
		if i == 0 {
			proxy, err := runCfg(hints.Config{Mode: hints.ModeHints})
			if err != nil {
				return err
			}
			r.ProxyMean = proxy.MeanResponse()
			return nil
		}
		mb := figure4ClientMBs[i-1]
		entries := 0
		if mb > 0 {
			bytes := int64(mb * float64(MB) * float64(o.Scale))
			if bytes < 4*hintcache.RecordSize {
				bytes = 4 * hintcache.RecordSize
			}
			entries = hintcache.EntriesForBytes(bytes)
		}
		client, err := runCfg(hints.Config{
			Mode:        hints.ModeClientHints,
			HintEntries: entries,
		})
		if err != nil {
			return err
		}
		pt := Figure4Point{
			EquivalentMB: mb,
			ClientMean:   client.MeanResponse(),
		}
		if n := client.Stats().N(); n > 0 {
			pt.FalseNegRate = float64(client.FalseNegatives()) / float64(n)
		}
		r.Points[i-1] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range r.Points {
		if pt := &r.Points[i]; pt.ClientMean > 0 {
			pt.Ratio = float64(r.ProxyMean) / float64(pt.ClientMean)
		}
	}
	return r, nil
}

// Render implements Result.
func (r *Figure4Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4 configurations: proxy hints (4a) vs client hints (4b), DEC trace, testbed model (scale %g)\n",
		float64(r.Scale))
	fmt.Fprintf(&sb, "Proxy-hint configuration mean response: %s\n", metrics.Ms(r.ProxyMean))
	t := metrics.NewTable("Client table", "Client mean", "False-neg rate", "Proxy/Client ratio")
	for _, pt := range r.Points {
		label := "Inf"
		if pt.EquivalentMB > 0 {
			label = fmt.Sprintf("%gMB", pt.EquivalentMB)
		}
		t.AddRow(label,
			metrics.Ms(pt.ClientMean),
			metrics.F3(pt.FalseNegRate),
			metrics.F2(pt.Ratio))
	}
	sb.WriteString(t.String())
	sb.WriteString("Paper (Section 3.3): client hints win ~20% when their tables match the\n" +
		"proxy's hit rate; they lose once the false-negative rate passes ~50%.\n")
	return sb.String()
}
