package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"beyondcache/internal/trace"
)

// traceFor returns a fresh reader over the memoized materialized trace for
// p. Every cell of every experiment in a process replays the same shared
// buffer instead of regenerating the workload, which both removes the
// generator from the per-cell cost and lets cells run concurrently (the
// buffer is read-only; each reader owns its cursor).
func traceFor(p trace.Profile) (trace.Reader, error) {
	m, err := trace.MaterializedFor(p)
	if err != nil {
		return nil, err
	}
	return m.Reader(), nil
}

// runCells executes fn(0..n-1) — one call per independent simulation cell —
// on a bounded worker pool of o.Parallel goroutines (<= 0: GOMAXPROCS).
// Each fn(i) must write its result only into slot i of a caller-owned
// slice, so merged output is in enumeration order and byte-identical to a
// serial run regardless of worker count or completion order. The first
// error in enumeration order is returned.
func runCells(o Options, n int, fn func(i int) error) error {
	workers := o.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
