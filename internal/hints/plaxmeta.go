package hints

import (
	"fmt"

	"beyondcache/internal/hintcache"
	"beyondcache/internal/plaxton"
)

// MetaRouter routes hint updates over Plaxton virtual trees instead of the
// fixed L2/L3 hierarchy, with the same subtree filtering: an update climbs
// an object's tree only until it reaches a metadata node that already knew
// of another copy. It measures how the self-configuring hierarchy of
// Section 3.1.3 spreads metadata load across nodes, where a fixed hierarchy
// concentrates all top-level traffic on one root.
type MetaRouter struct {
	nw *plaxton.Network

	// copies[n] maps object -> number of copies this metadata node has
	// been told about (from its subtree).
	copies []map[uint64]int32

	// received[n] counts hint updates that arrived at metadata node n.
	received []int64
	// hops counts total metadata hops taken by all updates.
	hops int64
	// updates counts add/remove events routed.
	updates int64
}

// NewMetaRouter embeds virtual trees over the simulator's leaf nodes.
// Node IDs derive from synthetic addresses; distance reflects the topology
// (same L2 subtree near, otherwise far). bits is the tree digit width.
func NewMetaRouter(s *Simulator, bits uint) (*MetaRouter, error) {
	topo := s.Topology()
	nodes := make([]plaxton.Node, topo.NumL1)
	seen := make(map[uint64]bool, topo.NumL1)
	for i := range nodes {
		addr := fmt.Sprintf("l1-%d.cache.example.com:3128", i)
		id := hashAddr(addr)
		// Regenerate on the astronomically unlikely collision.
		for bump := uint64(1); seen[id]; bump++ {
			id = hashAddr(fmt.Sprintf("%s#%d", addr, bump))
		}
		seen[id] = true
		nodes[i] = plaxton.Node{ID: id, Addr: addr}
	}
	dist := func(a, b int) float64 {
		switch {
		case a == b:
			return 0
		case topo.SameL2(a, b):
			return 1
		default:
			return 3
		}
	}
	nw, err := plaxton.New(nodes, bits, dist)
	if err != nil {
		return nil, fmt.Errorf("hints: meta router: %w", err)
	}
	m := &MetaRouter{
		nw:       nw,
		copies:   make([]map[uint64]int32, topo.NumL1),
		received: make([]int64, topo.NumL1),
	}
	for i := range m.copies {
		m.copies[i] = make(map[uint64]int32)
	}
	return m, nil
}

// hashAddr derives a node ID from an address (the prototype's MD5-based
// machine identifier).
func hashAddr(addr string) uint64 {
	return hintcache.HashMachine(addr)
}

// Add routes an inform for object from leaf node up its virtual tree,
// stopping at the first metadata node that already knew of a copy.
func (m *MetaRouter) Add(node int, object uint64) {
	m.updates++
	path := m.nw.Path(object, node)
	for i, metaNode := range path {
		if i == 0 {
			// The leaf itself: its knowledge comes from its data
			// cache, not a metadata message.
			m.copies[metaNode][object]++
			continue
		}
		m.received[metaNode]++
		m.hops++
		prev := m.copies[metaNode][object]
		m.copies[metaNode][object] = prev + 1
		if prev > 0 {
			return // the filter: this subtree already knew a copy
		}
	}
}

// Remove routes an invalidate for object from leaf node up its tree,
// stopping once a metadata node still knows of another copy.
func (m *MetaRouter) Remove(node int, object uint64) {
	m.updates++
	path := m.nw.Path(object, node)
	for i, metaNode := range path {
		c := m.copies[metaNode][object]
		if c <= 0 {
			return // nothing known here; nothing to retract
		}
		if i == 0 {
			m.copies[metaNode][object] = c - 1
			continue
		}
		m.received[metaNode]++
		m.hops++
		m.copies[metaNode][object] = c - 1
		if c-1 > 0 {
			return
		}
	}
}

// MetaLoad summarizes the per-node metadata traffic.
type MetaLoad struct {
	// Updates is the number of add/remove events routed.
	Updates int64
	// TotalReceived is the total metadata messages delivered.
	TotalReceived int64
	// MeanHops is the mean metadata hops per update (after filtering).
	MeanHops float64
	// MaxShare is the largest fraction of all metadata messages any one
	// node received (a fixed hierarchy's root approaches the whole
	// top-level load).
	MaxShare float64
	// MaxNode is the node holding MaxShare.
	MaxNode int
}

// Load computes the summary.
func (m *MetaRouter) Load() MetaLoad {
	l := MetaLoad{Updates: m.updates}
	var max int64
	for n, c := range m.received {
		l.TotalReceived += c
		if c > max {
			max = c
			l.MaxNode = n
		}
	}
	if m.updates > 0 {
		l.MeanHops = float64(m.hops) / float64(m.updates)
	}
	if l.TotalReceived > 0 {
		l.MaxShare = float64(max) / float64(l.TotalReceived)
	}
	return l
}
