package hints

import (
	"testing"
	"time"

	"beyondcache/internal/hierarchy"
	"beyondcache/internal/netmodel"
)

// newHierarchyForTest builds the traditional-hierarchy baseline used by the
// comparative tests.
func newHierarchyForTest(t *testing.T, m netmodel.Model, warmup time.Duration) *hierarchy.Simulator {
	t.Helper()
	h, err := hierarchy.New(hierarchy.Config{Model: m, Warmup: warmup})
	if err != nil {
		t.Fatal(err)
	}
	return h
}
