package hints

import (
	"fmt"
	"time"

	"beyondcache/internal/digest"
	"beyondcache/internal/netmodel"
	"beyondcache/internal/sim"
	"beyondcache/internal/trace"
)

// digestState implements the Summary-Cache / Cache-Digests alternative to
// the paper's exact hint records: every node summarizes its contents in a
// Bloom filter that peers consult on a miss. Insertions enter a digest
// immediately; deletions only disappear when the digest is periodically
// rebuilt from the cache's true contents — the scheme's defining staleness,
// on top of its hash false positives.
type digestState struct {
	filters   []*digest.Filter
	rebuiltAt []time.Duration
	interval  time.Duration

	rebuilds int64
}

// newDigestState sizes one filter per node for entriesPerNode objects at
// bitsPerEntry bits.
func newDigestState(nodes int, entriesPerNode int, bitsPerEntry float64, interval time.Duration) (*digestState, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("hints: digest rebuild interval must be positive")
	}
	ds := &digestState{
		filters:   make([]*digest.Filter, nodes),
		rebuiltAt: make([]time.Duration, nodes),
		interval:  interval,
	}
	for i := range ds.filters {
		f, err := digest.NewForCapacity(entriesPerNode, bitsPerEntry)
		if err != nil {
			return nil, fmt.Errorf("hints: digest: %w", err)
		}
		ds.filters[i] = f
		// Stagger rebuild phases so the fleet doesn't rebuild in
		// lockstep.
		ds.rebuiltAt[i] = -time.Duration(float64(interval) * float64(i) / float64(nodes))
	}
	return ds, nil
}

// add records an insertion at node.
func (ds *digestState) add(node int, object uint64) {
	ds.filters[node].Add(object)
}

// maybeRebuild refreshes any digests whose rebuild interval has elapsed,
// using contents to enumerate each node's true cache contents.
func (ds *digestState) maybeRebuild(now time.Duration, contents func(node int) []uint64) {
	for n, f := range ds.filters {
		if now-ds.rebuiltAt[n] < ds.interval {
			continue
		}
		f.Reset()
		for _, id := range contents(n) {
			f.Add(id)
		}
		ds.rebuiltAt[n] = now
		ds.rebuilds++
	}
}

// SizePerNode returns one digest's size in bytes.
func (ds *digestState) SizePerNode() int64 {
	if len(ds.filters) == 0 {
		return 0
	}
	return ds.filters[0].SizeBytes()
}

// processDigests handles an L1 miss under ModeDigests: scan peers'
// digests near-first, probe the first positive one, fall through to the
// origin on a false positive (never keep searching — same rule as hints).
func (s *Simulator) processDigests(req trace.Request, n, reqS2 int) {
	s.digests.maybeRebuild(s.clock.Now(), func(node int) []uint64 {
		objs := s.l1[node].Objects()
		ids := make([]uint64, len(objs))
		for i, o := range objs {
			ids[i] = o.ID
		}
		return ids
	})

	candidate, near, found := s.scanDigests(req.Object, n, reqS2)
	if !found {
		s.miss(req, n, sim.OutcomeMiss, 0)
		return
	}
	if s.HasCopy(candidate, req.Object, req.Version) {
		s.remoteHit(req, n, lookupResult{found: true, genuine: true, node: int32(candidate), near: near})
		return
	}
	class := netmodel.L3
	if near {
		class = netmodel.L2
	}
	s.digestFalsePos++
	s.miss(req, n, sim.OutcomeFalsePos, s.model.FalsePositive(class))
}

// scanDigests finds the first digest-positive peer, preferring the
// requester's own L2 subtree.
func (s *Simulator) scanDigests(object uint64, requester, reqS2 int) (node int, near, found bool) {
	group := reqS2 * s.topo.L1PerL2
	for p := group; p < group+s.topo.L1PerL2; p++ {
		if p != requester && s.digests.filters[p].MayContain(object) {
			return p, true, true
		}
	}
	for p := 0; p < s.topo.NumL1; p++ {
		if s.topo.L2OfL1(p) == reqS2 || p == requester {
			continue
		}
		if s.digests.filters[p].MayContain(object) {
			return p, false, true
		}
	}
	return 0, false, false
}

// DigestSizePerNode returns the per-node digest size in bytes (0 when
// digests are not in use).
func (s *Simulator) DigestSizePerNode() int64 {
	if s.digests == nil {
		return 0
	}
	return s.digests.SizePerNode()
}

// DigestRebuilds returns how many digest rebuilds have happened.
func (s *Simulator) DigestRebuilds() int64 {
	if s.digests == nil {
		return 0
	}
	return s.digests.rebuilds
}
