// Package hints implements the paper's primary contribution (Section 3):
// a distributed cache that separates data paths from metadata paths. Data
// lives only in the leaf (L1) proxy caches; a metadata hierarchy propagates
// compact location hints so that an L1 miss is resolved locally — either
// into a direct cache-to-cache transfer from the nearest holder, or into a
// direct fetch from the origin server. The simulator models bounded
// set-associative hint tables (Figure 5), hint-propagation delay and the
// false positives/negatives it causes (Figure 6), the update-filtering
// metadata hierarchy versus a centralized directory (Table 5), and hosts
// the push-caching hooks of Section 4.
package hints

import (
	"fmt"
	"time"

	"beyondcache/internal/cache"
	"beyondcache/internal/hintcache"
	"beyondcache/internal/metrics"
	"beyondcache/internal/netmodel"
	"beyondcache/internal/sim"
	"beyondcache/internal/trace"
)

// Mode selects how L1 misses locate remote copies.
type Mode int

// Modes.
const (
	// ModeHints uses per-proxy location-hint caches fed by the metadata
	// hierarchy (the paper's basic design, Figure 4a).
	ModeHints Mode = iota + 1
	// ModeCentralDirectory uses an always-accurate centralized directory
	// (CRISP-style): no stale hints, but every L1 miss pays a directory
	// round trip before going anywhere.
	ModeCentralDirectory
	// ModeClientHints is the alternate configuration of Figure 4b: the
	// metadata hierarchy extends to the clients, so remote accesses skip
	// the L1 proxy hop (direct rather than via-L1 paths) — but the
	// client hint tables are typically smaller, and a false negative
	// sends the request straight to the server even when a nearby cache
	// has the data (the Section 3.3 trade-off).
	ModeClientHints
	// ModeDigests replaces the exact hint records with Bloom-filter
	// cache digests (Summary Cache / Squid Cache Digests): compact but
	// subject to hash false positives and rebuild-interval staleness.
	ModeDigests
)

// Pusher receives the events push-caching algorithms act on (Section 4).
// All callbacks run synchronously during Process.
type Pusher interface {
	// OnRemoteHit fires after requester fetched the object from holder
	// via a cache-to-cache transfer. near reports whether they share an
	// L2 subtree.
	OnRemoteHit(requester, holder int, req trace.Request, near bool)
	// OnVersionChange fires when a new version of an object is fetched,
	// with the nodes that held the previous version.
	OnVersionChange(prevHolders []int, req trace.Request)
	// OnLocalHit fires when a node hits in its own cache.
	OnLocalHit(node int, req trace.Request)
	// OnEvict fires when a node's cache evicts an object for space.
	OnEvict(node int, object uint64)
	// OnMiss fires after node fetched the object from the origin server
	// (nothing in the cache system had it). Prefetching extensions hook
	// here; the paper's push algorithms ignore it.
	OnMiss(node int, req trace.Request)
}

// Config parameterizes the simulator.
type Config struct {
	// Topology is the 3-level layout; zero value means sim.Default().
	// Its L2 grouping defines network distance classes and the metadata
	// hierarchy; data is cached only at L1 (Figure 4a).
	Topology sim.Topology

	// Model prices each access path.
	Model netmodel.Model

	// L1Capacity bounds each leaf data cache in bytes; <= 0 is infinite.
	L1Capacity int64

	// HintEntries bounds each node's hint table (total entries in the
	// k-way set-associative array); 0 means unbounded (a perfect index).
	HintEntries int
	// HintWays is the hint-table associativity; 0 means 4 (the
	// prototype's choice, Section 3.2.1).
	HintWays int

	// PropagationDelay is how long a hint add/remove takes to become
	// visible at other nodes (Figure 6). Zero means instantaneous.
	PropagationDelay time.Duration

	// Mode selects hint caches or a centralized directory.
	Mode Mode

	// IdealPush, when true, applies the push-ideal bound of Section
	// 4.1.1: every remote (L2/L3-distance) hit is charged as a local hit.
	IdealPush bool

	// Warmup discards statistics for requests before this virtual time.
	Warmup time.Duration

	// Pusher, if non-nil, receives push events.
	Pusher Pusher

	// MetaRouterBits, when non-zero, additionally routes every hint
	// update over Plaxton virtual trees of the given digit width and
	// records per-node metadata load (Section 3.1.3's self-configuring
	// hierarchy). Purely observational: response times still use the
	// fixed metadata hierarchy's accounting.
	MetaRouterBits uint

	// DigestBitsPerEntry and DigestEntries size each node's Bloom-filter
	// digest for ModeDigests (defaults: 8 bits/entry, 4096 entries).
	// DigestRebuild is the periodic rebuild interval that flushes
	// deleted entries out of the filters (default: 10 minutes of virtual
	// time, Squid rebuilds on the order of an hour).
	DigestBitsPerEntry float64
	DigestEntries      int
	DigestRebuild      time.Duration
}

// Simulator replays a trace against the hint architecture.
type Simulator struct {
	cfg   Config
	topo  sim.Topology
	model netmodel.Model

	l1  []*cache.LRU
	dir *directory

	// hintIndex models the bounded, shared-content hint table each node
	// keeps (nil when unbounded). Because updates are broadcast to every
	// node, all nodes' tables converge to the same contents, so one
	// structure stands in for all of them.
	hintIndex *hintcache.Cache

	// metaRouter, when configured, mirrors update traffic onto Plaxton
	// virtual trees for load measurement.
	metaRouter *MetaRouter

	// digests holds the per-node Bloom filters of ModeDigests.
	digests        *digestState
	digestFalsePos int64

	stats *metrics.Response
	bw    *metrics.Bandwidth
	clock sim.Clock

	falseNegatives int64
	firstTime      time.Duration
	lastTime       time.Duration
	sawRequest     bool

	// staleScratch is the per-request buffer holdersOlderThan appends
	// into; reused across requests so the consistency sweep on the hot
	// path never allocates.
	staleScratch []int32
}

var _ sim.Processor = (*Simulator)(nil)

// New builds the simulator.
func New(cfg Config) (*Simulator, error) {
	if cfg.Topology == (sim.Topology{}) {
		cfg.Topology = sim.Default()
	}
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("hints: nil cost model")
	}
	if cfg.Mode == 0 {
		cfg.Mode = ModeHints
	}
	if cfg.Topology.NumL2() > 64 {
		return nil, fmt.Errorf("hints: at most 64 L2 subtrees supported, got %d", cfg.Topology.NumL2())
	}
	if cfg.HintWays == 0 {
		cfg.HintWays = 4
	}

	s := &Simulator{
		cfg:   cfg,
		topo:  cfg.Topology,
		model: cfg.Model,
		l1:    make([]*cache.LRU, cfg.Topology.NumL1),
		dir:   newDirectory(cfg.Topology.NumL2()),
		stats: metrics.NewResponse(),
		bw:    metrics.NewBandwidth(),
	}
	if cfg.HintEntries > 0 {
		s.hintIndex = hintcache.NewMem(cfg.HintEntries, cfg.HintWays)
	}
	if cfg.MetaRouterBits > 0 {
		mr, err := NewMetaRouter(s, cfg.MetaRouterBits)
		if err != nil {
			return nil, err
		}
		s.metaRouter = mr
	}
	if cfg.Mode == ModeDigests {
		if cfg.DigestBitsPerEntry <= 0 {
			cfg.DigestBitsPerEntry = 8
		}
		if cfg.DigestEntries <= 0 {
			cfg.DigestEntries = 4096
		}
		if cfg.DigestRebuild <= 0 {
			cfg.DigestRebuild = 10 * time.Minute
		}
		s.cfg = cfg
		ds, err := newDigestState(cfg.Topology.NumL1, cfg.DigestEntries,
			cfg.DigestBitsPerEntry, cfg.DigestRebuild)
		if err != nil {
			return nil, err
		}
		s.digests = ds
	}
	for i := range s.l1 {
		node := i
		// Trace object IDs are dense popularity ranks, so the paged
		// dense index replaces per-request map hashing.
		c := cache.NewDenseLRU(cfg.L1Capacity)
		c.OnEvict(func(o cache.Object) {
			s.noteRemoved(node, o.ID)
			if s.cfg.Pusher != nil {
				s.cfg.Pusher.OnEvict(node, o.ID)
			}
		})
		s.l1[i] = c
	}
	return s, nil
}

// machineOf encodes a node index as a non-zero hint machine ID.
func machineOf(node int) uint64 { return uint64(node) + 1 }

// noteAdded records a new copy in the directory and the hint index.
func (s *Simulator) noteAdded(node int, object uint64, version int64) {
	s.dir.addCopy(object, int32(node), s.topo.L2OfL1(node), version, s.clock.Now())
	if s.hintIndex != nil {
		// Errors are impossible for the memory store; ignore defensively.
		_ = s.hintIndex.Insert(object, machineOf(node))
	}
	if s.metaRouter != nil {
		s.metaRouter.Add(node, object)
	}
	if s.digests != nil {
		s.digests.add(node, object)
	}
}

// noteRemoved records a removed copy, repointing the hint index at a
// surviving holder when one exists.
func (s *Simulator) noteRemoved(node int, object uint64) {
	s.dir.removeCopy(object, int32(node), s.topo.L2OfL1(node), s.clock.Now())
	if s.hintIndex != nil {
		if s.hintIndex.Delete(object, machineOf(node)) {
			if other := s.dir.anyHolder(object); other >= 0 {
				_ = s.hintIndex.Insert(object, machineOf(int(other)))
			}
		}
	}
	if s.metaRouter != nil {
		s.metaRouter.Remove(node, object)
	}
}

// InjectCopy places a copy of the request's object at node without charging
// any response time: the mechanism push algorithms use. When pinned is true
// the copy consumes no cache space (the push-ideal accounting). It reports
// whether the copy was cached, and charges the transfer to the "push"
// bandwidth flow.
func (s *Simulator) InjectCopy(node int, req trace.Request, pinned bool) bool {
	if s.l1[node].Contains(req.Object) {
		if _, ok := s.l1[node].GetVersion(req.Object, req.Version); ok {
			return false // already has a current copy; nothing pushed
		}
		// Stale copy was invalidated by GetVersion's side effect; its
		// eviction callback already ran.
	}
	obj := cache.Object{ID: req.Object, Size: req.Size, Version: req.Version}
	var ok bool
	if pinned {
		ok = s.l1[node].PutPinned(obj)
	} else {
		// Pushed copies are speculative: they fill slack space and are
		// evicted before demand-fetched data, converting to demand on
		// first reference.
		ok = s.l1[node].PutSpeculative(obj)
	}
	if ok {
		s.bw.Add("push", req.Size)
		s.noteAdded(node, req.Object, req.Version)
	}
	return ok
}

// InjectRefresh places a demand-standing copy of the request's object at
// node: the update-push path, where the node had already demonstrated
// interest by caching the previous version. It reports whether the copy was
// cached and charges the transfer to the "push" flow.
func (s *Simulator) InjectRefresh(node int, req trace.Request) bool {
	if s.HasCopy(node, req.Object, req.Version) {
		return false
	}
	obj := cache.Object{ID: req.Object, Size: req.Size, Version: req.Version}
	if !s.l1[node].Put(obj) {
		return false
	}
	s.bw.Add("push", req.Size)
	s.noteAdded(node, req.Object, req.Version)
	return true
}

// SetEvictDemandFirst disables the speculative-second-class eviction
// preference on every leaf cache, treating pushed copies as ordinary LRU
// entries. Exposed for the ablation benchmarks.
func (s *Simulator) SetEvictDemandFirst(v bool) {
	for _, c := range s.l1 {
		c.EvictDemandFirst = v
	}
}

// AgeObject demotes node's copy of object toward eviction without removing
// it. The update-push algorithm ages pushed updates so that objects updated
// many times without being read fall out of the cache (Section 4.1.2).
func (s *Simulator) AgeObject(node int, object uint64) {
	s.l1[node].Age(object)
}

// HasCopy reports whether node currently caches a current-or-newer version.
func (s *Simulator) HasCopy(node int, object uint64, version int64) bool {
	o, ok := s.l1[node].Peek(object)
	return ok && o.Version >= version
}

// Process implements sim.Processor.
func (s *Simulator) Process(req trace.Request) {
	if !req.Cachable() {
		return
	}
	s.clock.Advance(req.Time)
	if !s.sawRequest {
		s.firstTime = req.Time
		s.sawRequest = true
	}
	s.lastTime = req.Time

	n := s.topo.L1OfClient(req.Client)
	reqS2 := s.topo.L2OfL1(n)

	// Strong consistency: a version bump invalidates every cached copy
	// of the previous version (Section 2.2.1).
	s.staleScratch = s.dir.holdersOlderThan(req.Object, req.Version, s.staleScratch[:0])
	if staleHolders := s.staleScratch; len(staleHolders) > 0 {
		var prev []int
		if s.cfg.Pusher != nil {
			prev = make([]int, len(staleHolders))
		}
		for i, h := range staleHolders {
			if prev != nil {
				prev[i] = int(h)
			}
			s.l1[h].RemoveQuiet(req.Object)
			s.noteRemoved(int(h), req.Object)
		}
		if s.cfg.Pusher != nil {
			defer func() { s.cfg.Pusher.OnVersionChange(prev, req) }()
		}
	}

	// In the client-hints configuration (Figure 4b) the client consults
	// its own hint table before contacting ANY cache: a false negative
	// sends the request straight to the server even when the client's
	// own L1 proxy holds the data — the Section 3.3 trade-off.
	if s.cfg.Mode == ModeClientHints && s.hintIndex != nil {
		if _, ok := s.hintIndex.Lookup(req.Object); !ok {
			if s.dir.anyHolder(req.Object) >= 0 {
				s.falseNegatives++
			}
			s.miss(req, n, sim.OutcomeMiss, 0)
			return
		}
	}

	// Local hit?
	if _, ok := s.l1[n].GetVersion(req.Object, req.Version); ok {
		s.record(req, sim.OutcomeLocal, s.model.ViaL1Hit(netmodel.L1, req.Size))
		if s.cfg.Pusher != nil {
			s.cfg.Pusher.OnLocalHit(n, req)
		}
		return
	}

	if s.cfg.Mode == ModeCentralDirectory {
		s.processCentral(req, n, reqS2)
		return
	}
	if s.cfg.Mode == ModeDigests {
		s.processDigests(req, n, reqS2)
		return
	}

	// Bounded proxy hint table: an evicted hint entry means the node
	// cannot know about remote copies — a false negative sends it
	// straight to the server (the design never searches further on a
	// hint miss, Section 3.1.1).
	if s.cfg.Mode == ModeHints && s.hintIndex != nil {
		if _, ok := s.hintIndex.Lookup(req.Object); !ok {
			if s.dir.anyHolder(req.Object) >= 0 {
				s.falseNegatives++
			}
			s.miss(req, n, sim.OutcomeMiss, 0)
			return
		}
	}

	res := s.dir.lookup(req.Object, int32(n), reqS2, func(nd int32) int {
		return s.topo.L2OfL1(int(nd))
	}, s.clock.Now(), s.cfg.PropagationDelay)

	switch {
	case !res.found:
		s.miss(req, n, sim.OutcomeMiss, 0)
	case res.genuine:
		s.remoteHit(req, n, res)
	default:
		// False positive: one wasted round trip, then the server.
		class := netmodel.L3
		if res.near {
			class = netmodel.L2
		}
		s.miss(req, n, sim.OutcomeFalsePos, s.model.FalsePositive(class))
	}
}

// processCentral handles an L1 miss in centralized-directory mode: a
// directory round trip, then either a direct cache-to-cache transfer or a
// server fetch. The directory is always accurate.
func (s *Simulator) processCentral(req trace.Request, n, reqS2 int) {
	dirCost := s.model.FalsePositive(netmodel.L2) // one metadata round trip

	res := s.dir.lookup(req.Object, int32(n), reqS2, func(nd int32) int {
		return s.topo.L2OfL1(int(nd))
	}, s.clock.Now(), 0)
	if res.found && res.genuine {
		s.remoteHitExtra(req, n, res, dirCost)
		return
	}
	s.miss(req, n, sim.OutcomeMiss, dirCost)
}

// remoteHit completes a cache-to-cache transfer.
func (s *Simulator) remoteHit(req trace.Request, n int, res lookupResult) {
	s.remoteHitExtra(req, n, res, 0)
}

func (s *Simulator) remoteHitExtra(req trace.Request, n int, res lookupResult, extra time.Duration) {
	class := netmodel.L3
	outcome := sim.OutcomeFar
	if res.near {
		class = netmodel.L2
		outcome = sim.OutcomeNear
	}
	cost := s.remoteCost(class, req.Size) + extra
	if s.cfg.IdealPush {
		// Push-ideal bound: the copy would already have been local.
		cost = s.model.ViaL1Hit(netmodel.L1, req.Size) + extra
		outcome = sim.OutcomeLocal
	}
	// Serving promotes the copy at the holder.
	s.l1[res.node].Get(req.Object)
	s.bw.Add("demand", req.Size)
	s.fill(n, req)
	s.record(req, outcome, cost)
	if s.cfg.Pusher != nil {
		s.cfg.Pusher.OnRemoteHit(n, int(res.node), req, res.near)
	}
}

// remoteCost prices a cache-to-cache hit: through the L1 proxy in the basic
// configuration, or direct from the client in the Figure 4b configuration.
func (s *Simulator) remoteCost(class netmodel.Level, size int64) time.Duration {
	if s.cfg.Mode == ModeClientHints {
		return s.model.DirectHit(class, size)
	}
	return s.model.ViaL1Hit(class, size)
}

// missCostOf prices a server fetch under the configured mode.
func (s *Simulator) missCostOf(size int64) time.Duration {
	if s.cfg.Mode == ModeClientHints {
		return s.model.DirectMiss(size)
	}
	return s.model.ViaL1Miss(size)
}

// miss completes a server fetch, with an optional wasted-probe penalty.
func (s *Simulator) miss(req trace.Request, n int, outcome string, penalty time.Duration) {
	cost := s.missCostOf(req.Size) + penalty
	s.bw.Add("demand", req.Size)
	s.fill(n, req)
	s.record(req, outcome, cost)
	if s.cfg.Pusher != nil {
		s.cfg.Pusher.OnMiss(n, req)
	}
}

// fill caches the fetched object at the requesting node.
func (s *Simulator) fill(n int, req trace.Request) {
	obj := cache.Object{ID: req.Object, Size: req.Size, Version: req.Version}
	if s.l1[n].Put(obj) {
		s.noteAdded(n, req.Object, req.Version)
	}
}

func (s *Simulator) record(req trace.Request, outcome string, cost time.Duration) {
	if req.Time >= s.cfg.Warmup {
		s.stats.Add(outcome, cost, req.Size)
	}
}

// Stats returns the post-warmup response statistics.
func (s *Simulator) Stats() *metrics.Response { return s.stats }

// Bandwidth returns the byte-flow counters ("demand", "push").
func (s *Simulator) Bandwidth() *metrics.Bandwidth { return s.bw }

// MeanResponse returns the mean response time over recorded requests.
func (s *Simulator) MeanResponse() time.Duration { return s.stats.Mean() }

// HitRatio returns the fraction of recorded requests served from some cache
// in the system (local or remote).
func (s *Simulator) HitRatio() float64 {
	return s.stats.FracAny(sim.OutcomeLocal, sim.OutcomeNear, sim.OutcomeFar)
}

// LocalHitRatio returns the fraction served from the requester's own L1.
func (s *Simulator) LocalHitRatio() float64 { return s.stats.Frac(sim.OutcomeLocal) }

// FalseNegatives returns how many requests missed only because the bounded
// hint table had evicted the entry.
func (s *Simulator) FalseNegatives() int64 { return s.falseNegatives }

// FalsePositives returns how many requests wasted a probe on a stale hint.
func (s *Simulator) FalsePositives() int64 { return s.stats.Count(sim.OutcomeFalsePos) }

// Span returns the virtual time covered by processed requests.
func (s *Simulator) Span() time.Duration {
	if !s.sawRequest {
		return 0
	}
	return s.lastTime - s.firstTime
}

// RootUpdates returns the number of hint updates that reached the root of
// the filtering metadata hierarchy (Table 5).
func (s *Simulator) RootUpdates() int64 { return s.dir.rootUpdates }

// CentralUpdates returns the number a centralized directory would have
// received (every add and remove from every leaf).
func (s *Simulator) CentralUpdates() int64 { return s.dir.centralUpdates }

// LeafUpdates returns the number of updates leaf caches emitted.
func (s *Simulator) LeafUpdates() int64 { return s.dir.leafUpdates }

// UpdateRate converts an update count to updates/second of virtual time.
func (s *Simulator) UpdateRate(count int64) float64 {
	span := s.Span()
	if span <= 0 {
		return 0
	}
	return float64(count) / span.Seconds()
}

// HolderNodes exposes the live holders of an object (for push algorithms
// and tests).
func (s *Simulator) HolderNodes(object uint64) []int {
	hs := s.dir.holderNodes(object)
	out := make([]int, len(hs))
	for i, h := range hs {
		out[i] = int(h)
	}
	return out
}

// Topology returns the simulator's topology.
func (s *Simulator) Topology() sim.Topology { return s.topo }

// MetaLoad returns the Plaxton metadata-load summary, or false when no
// meta router was configured.
func (s *Simulator) MetaLoad() (MetaLoad, bool) {
	if s.metaRouter == nil {
		return MetaLoad{}, false
	}
	return s.metaRouter.Load(), true
}

// HintTableStats returns the bounded hint table's counters, or zero stats
// when unbounded.
func (s *Simulator) HintTableStats() hintcache.Stats {
	if s.hintIndex == nil {
		return hintcache.Stats{}
	}
	return s.hintIndex.Stats()
}
