package hints

import (
	"testing"
	"time"

	"beyondcache/internal/netmodel"
	"beyondcache/internal/sim"
	"beyondcache/internal/trace"
)

// smallTopo: 4 L1s, 2 per L2 (two subtrees), 2 clients per L1.
// Clients map round-robin: client c -> L1 c%4.
func smallTopo() sim.Topology {
	return sim.Topology{NumL1: 4, ClientsPerL1: 2, L1PerL2: 2}
}

func mustSim(t *testing.T, cfg Config) *Simulator {
	t.Helper()
	if cfg.Model == nil {
		cfg.Model = netmodel.NewRousskovMin()
	}
	if cfg.Topology == (sim.Topology{}) {
		cfg.Topology = smallTopo()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func req(seq int64, client int, object uint64, size int64) trace.Request {
	return trace.Request{
		Seq: seq, Time: time.Duration(seq) * time.Second,
		Client: client, Object: object, Size: size, Version: 1,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := New(Config{Model: netmodel.NewTestbed(),
		Topology: sim.Topology{NumL1: 3, ClientsPerL1: 1, L1PerL2: 2}}); err == nil {
		t.Error("invalid topology accepted")
	}
	if _, err := New(Config{Model: netmodel.NewTestbed(),
		Topology: sim.Topology{NumL1: 130, ClientsPerL1: 1, L1PerL2: 1}}); err == nil {
		t.Error("more than 64 L2 subtrees accepted")
	}
}

func TestMissThenLocalHit(t *testing.T) {
	s := mustSim(t, Config{})
	s.Process(req(0, 0, 1, 100))
	s.Process(req(1, 0, 1, 100))
	if got := s.Stats().Count(sim.OutcomeMiss); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if got := s.Stats().Count(sim.OutcomeLocal); got != 1 {
		t.Errorf("local hits = %d, want 1", got)
	}
}

func TestRemoteHitNearAndFar(t *testing.T) {
	m := netmodel.NewRousskovMin()
	s := mustSim(t, Config{Model: m})
	// Client 0 -> L1 0 fetches object 1.
	s.Process(req(0, 0, 1, 100))
	// Client 1 -> L1 1 shares L2 subtree {0,1}: near cache-to-cache hit.
	s.Process(req(1, 1, 1, 100))
	if got := s.Stats().Count(sim.OutcomeNear); got != 1 {
		t.Fatalf("near hits = %d, want 1 (outcomes %v)", got, s.Stats().Outcomes())
	}
	if got := s.Stats().MeanOf(sim.OutcomeNear); got != m.ViaL1Hit(netmodel.L2, 100) {
		t.Errorf("near cost = %v, want ViaL1Hit(L2)", got)
	}
	// Client 2 -> L1 2 in the other subtree: far hit.
	s.Process(req(2, 2, 1, 100))
	if got := s.Stats().Count(sim.OutcomeFar); got != 1 {
		t.Fatalf("far hits = %d, want 1", got)
	}
	if got := s.Stats().MeanOf(sim.OutcomeFar); got != m.ViaL1Hit(netmodel.L3, 100) {
		t.Errorf("far cost = %v, want ViaL1Hit(L3)", got)
	}
	// The fetches replicate: client 3 -> L1 3 shares subtree with L1 2,
	// so now it sees a near copy.
	s.Process(req(3, 3, 1, 100))
	if got := s.Stats().Count(sim.OutcomeNear); got != 2 {
		t.Errorf("near hits = %d, want 2", got)
	}
}

func TestMissUsesDirectServerPath(t *testing.T) {
	m := netmodel.NewRousskovMin()
	s := mustSim(t, Config{Model: m})
	s.Process(req(0, 0, 1, 100))
	if got := s.Stats().MeanOf(sim.OutcomeMiss); got != m.ViaL1Miss(100) {
		t.Errorf("miss cost = %v, want ViaL1Miss = %v (do not slow down misses)", got, m.ViaL1Miss(100))
	}
}

func TestVersionChangeInvalidatesEverywhere(t *testing.T) {
	s := mustSim(t, Config{})
	s.Process(req(0, 0, 1, 100))
	s.Process(req(1, 1, 1, 100)) // near hit; two copies now
	r := req(2, 2, 1, 100)
	r.Version = 2
	s.Process(r) // version bump: both copies invalid -> server miss
	if got := s.Stats().Count(sim.OutcomeMiss); got != 2 {
		t.Errorf("misses = %d, want 2 (stale remote copies must not serve)", got)
	}
	// Old holders must be gone from the directory.
	for _, n := range s.HolderNodes(1) {
		if !s.HasCopy(n, 1, 2) {
			t.Errorf("node %d holds a stale copy per directory", n)
		}
	}
}

func TestPropagationDelayCausesFalseNegatives(t *testing.T) {
	// With a huge delay, node 1 cannot learn about node 0's copy.
	s := mustSim(t, Config{PropagationDelay: time.Hour})
	s.Process(req(0, 0, 1, 100))
	s.Process(req(1, 1, 1, 100)) // 1s later: hint not yet visible
	if got := s.Stats().Count(sim.OutcomeMiss); got != 2 {
		t.Errorf("misses = %d, want 2 (hint invisible within delay)", got)
	}
	// After the delay has passed, hints work.
	late := req(2, 2, 1, 100)
	late.Time = 2 * time.Hour
	s.Process(late)
	if got := s.Stats().FracAny(sim.OutcomeNear, sim.OutcomeFar); got == 0 {
		t.Error("no remote hit even after the delay elapsed")
	}
}

func TestStaleHintCausesFalsePositive(t *testing.T) {
	m := netmodel.NewRousskovMin()
	// Tiny data caches: node 0's copy of object 1 is evicted by object 2.
	s := mustSim(t, Config{Model: m, L1Capacity: 150, PropagationDelay: time.Minute})
	s.Process(req(0, 0, 1, 100))
	s.Process(req(1, 0, 2, 100)) // evicts object 1 at node 0
	// 1s later node 1 still sees the stale hint (delay 1min): false
	// positive -> wasted probe + server fetch.
	s.Process(req(2, 1, 1, 100))
	if got := s.Stats().Count(sim.OutcomeFalsePos); got != 1 {
		t.Fatalf("false positives = %d, want 1 (outcomes %v)", got, s.Stats().Outcomes())
	}
	want := m.ViaL1Miss(100) + m.FalsePositive(netmodel.L2)
	if got := s.Stats().MeanOf(sim.OutcomeFalsePos); got != want {
		t.Errorf("false-positive cost = %v, want %v", got, want)
	}
	if s.FalsePositives() != 1 {
		t.Errorf("FalsePositives() = %d, want 1", s.FalsePositives())
	}
}

func TestBoundedHintTableFalseNegatives(t *testing.T) {
	// A 4-entry hint table over many objects loses most entries.
	topo := sim.Topology{NumL1: 8, ClientsPerL1: 2, L1PerL2: 4}
	s := mustSim(t, Config{Topology: topo, HintEntries: 4, HintWays: 2})
	// Node 0 (client 0) fetches 50 objects.
	for i := int64(0); i < 50; i++ {
		s.Process(req(i, 0, uint64(i+1), 100))
	}
	// Client 1 -> node 1 re-requests them; most hints were evicted.
	var before = s.FalseNegatives()
	for i := int64(0); i < 50; i++ {
		s.Process(req(100+i, 1, uint64(i+1), 100))
	}
	if got := s.FalseNegatives() - before; got < 30 {
		t.Errorf("false negatives = %d, want most of 50 with a 4-entry table", got)
	}

	// Unbounded table: same scenario, no false negatives.
	s2 := mustSim(t, Config{Topology: topo})
	for i := int64(0); i < 50; i++ {
		s2.Process(req(i, 0, uint64(i+1), 100))
	}
	for i := int64(0); i < 50; i++ {
		s2.Process(req(100+i, 1, uint64(i+1), 100))
	}
	if s2.FalseNegatives() != 0 {
		t.Errorf("unbounded table produced %d false negatives", s2.FalseNegatives())
	}
	if got := s2.Stats().FracAny(sim.OutcomeNear, sim.OutcomeFar); got < 0.4 {
		t.Errorf("unbounded remote-hit fraction = %.3f, want ~0.5", got)
	}
}

func TestCentralDirectoryMode(t *testing.T) {
	m := netmodel.NewRousskovMin()
	s := mustSim(t, Config{Model: m, Mode: ModeCentralDirectory})
	s.Process(req(0, 0, 1, 100))
	s.Process(req(1, 1, 1, 100)) // near remote hit + directory RTT
	wantHit := m.ViaL1Hit(netmodel.L2, 100) + m.FalsePositive(netmodel.L2)
	if got := s.Stats().MeanOf(sim.OutcomeNear); got != wantHit {
		t.Errorf("central-directory hit cost = %v, want %v", got, wantHit)
	}
	wantMiss := m.ViaL1Miss(100) + m.FalsePositive(netmodel.L2)
	if got := s.Stats().MeanOf(sim.OutcomeMiss); got != wantMiss {
		t.Errorf("central-directory miss cost = %v, want %v", got, wantMiss)
	}
	// Local hits pay no directory cost.
	s.Process(req(2, 1, 1, 100))
	if got := s.Stats().MeanOf(sim.OutcomeLocal); got != m.ViaL1Hit(netmodel.L1, 100) {
		t.Errorf("central-directory local hit cost = %v", got)
	}
}

func TestIdealPushChargesLocal(t *testing.T) {
	m := netmodel.NewRousskovMin()
	s := mustSim(t, Config{Model: m, IdealPush: true})
	s.Process(req(0, 0, 1, 100))
	s.Process(req(1, 2, 1, 100)) // would be a far hit; charged local
	if got := s.Stats().Count(sim.OutcomeLocal); got != 1 {
		t.Fatalf("ideal-push local hits = %d, want 1", got)
	}
	if got := s.Stats().MeanOf(sim.OutcomeLocal); got != m.ViaL1Hit(netmodel.L1, 100) {
		t.Errorf("ideal-push hit cost = %v, want local cost", got)
	}
}

func TestTable5FilteringReducesRootLoad(t *testing.T) {
	p := trace.DECProfile(trace.ScaleSmall)
	p.Requests = 40_000
	p.DistinctURLs = 8_000
	g := trace.MustGenerator(p)
	s := mustSim(t, Config{Topology: sim.Default(), L1Capacity: 4 << 20})
	if _, err := sim.Run(g, s); err != nil {
		t.Fatal(err)
	}
	root := s.RootUpdates()
	central := s.CentralUpdates()
	if root == 0 || central == 0 {
		t.Fatalf("no update traffic recorded (root %d, central %d)", root, central)
	}
	if root >= central {
		t.Errorf("filtered root load (%d) not below centralized load (%d)", root, central)
	}
	// Table 5 reports roughly a 3x reduction; accept 1.5x-20x.
	ratio := float64(central) / float64(root)
	if ratio < 1.5 {
		t.Errorf("central/root ratio = %.2f, want >= 1.5 (paper: ~3)", ratio)
	}
	if s.UpdateRate(root) <= 0 {
		t.Error("UpdateRate returned 0 for a nonzero count")
	}
}

func TestInjectCopyCreatesLocalHit(t *testing.T) {
	s := mustSim(t, Config{})
	r := req(0, 0, 1, 100)
	s.Process(r) // node 0 has it
	// Push a copy to node 3 (client 3's L1).
	if !s.InjectCopy(3, r, false) {
		t.Fatal("InjectCopy failed")
	}
	if got := s.Bandwidth().Bytes("push"); got != 100 {
		t.Errorf("push bytes = %d, want 100", got)
	}
	s.Process(req(1, 3, 1, 100))
	if got := s.Stats().Count(sim.OutcomeLocal); got != 1 {
		t.Errorf("local hits after push = %d, want 1", got)
	}
	// Injecting again is a no-op (already current).
	if s.InjectCopy(3, r, false) {
		t.Error("duplicate InjectCopy succeeded")
	}
}

func TestInjectPinnedDoesNotChargeSpace(t *testing.T) {
	s := mustSim(t, Config{L1Capacity: 150})
	r := req(0, 0, 1, 100)
	s.Process(r)
	if !s.InjectCopy(3, r, true) {
		t.Fatal("pinned InjectCopy failed")
	}
	// Node 3 can still cache another object without evicting the pinned
	// replica.
	s.Process(req(1, 3, 2, 100))
	if !s.HasCopy(3, 1, 1) || !s.HasCopy(3, 2, 1) {
		t.Error("pinned copy charged capacity")
	}
}

func TestWarmupExcludedFromStats(t *testing.T) {
	s := mustSim(t, Config{Warmup: time.Hour})
	early := req(0, 0, 1, 100)
	early.Time = time.Minute
	s.Process(early)
	if s.Stats().N() != 0 {
		t.Error("warmup request recorded")
	}
	late := req(1, 0, 1, 100)
	late.Time = 2 * time.Hour
	s.Process(late)
	if s.Stats().Count(sim.OutcomeLocal) != 1 {
		t.Error("cache not warm after warmup")
	}
}

func TestHintsBeatHierarchyOnDECTrace(t *testing.T) {
	// The headline result (Figure 8 / Table 6): hints outperform the
	// traditional data hierarchy for every cost model.
	p := trace.DECProfile(trace.ScaleSmall)
	p.Requests = 60_000
	p.DistinctURLs = 12_000

	for _, m := range netmodel.Models() {
		g := trace.MustGenerator(p)
		hs := mustSim(t, Config{Topology: sim.Default(), Model: m, Warmup: p.Warmup()})
		if _, err := sim.Run(g, hs); err != nil {
			t.Fatal(err)
		}
		hintMean := hs.MeanResponse()

		g2 := trace.MustGenerator(p)
		hier := newHierarchyForTest(t, m, p.Warmup())
		if _, err := sim.Run(g2, hier); err != nil {
			t.Fatal(err)
		}
		hierMean := hier.MeanResponse()

		speedup := float64(hierMean) / float64(hintMean)
		if speedup < 1.1 {
			t.Errorf("%s: hierarchy/hints speedup = %.2f, want > 1.1 (paper: 1.28-2.79)",
				m.Name(), speedup)
		}
		if speedup > 5 {
			t.Errorf("%s: speedup = %.2f implausibly high", m.Name(), speedup)
		}
	}
}

func TestSpanTracksVirtualTime(t *testing.T) {
	s := mustSim(t, Config{})
	s.Process(req(0, 0, 1, 100))
	s.Process(req(10, 0, 2, 100))
	if got := s.Span(); got != 10*time.Second {
		t.Errorf("Span = %v, want 10s", got)
	}
}
