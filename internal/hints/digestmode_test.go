package hints

import (
	"testing"
	"time"

	"beyondcache/internal/netmodel"
	"beyondcache/internal/sim"
	"beyondcache/internal/trace"
)

func TestDigestModeRemoteHit(t *testing.T) {
	s := mustSim(t, Config{Mode: ModeDigests})
	s.Process(req(0, 0, 1, 100))
	// Node 1 consults node 0's digest: positive, genuine -> remote hit.
	s.Process(req(1, 1, 1, 100))
	if got := s.Stats().Count(sim.OutcomeNear); got != 1 {
		t.Fatalf("near hits = %d, want 1 (outcomes %v)", got, s.Stats().Outcomes())
	}
	// And a far hit from the other subtree.
	s.Process(req(2, 2, 1, 100))
	if got := s.Stats().Count(sim.OutcomeFar); got != 1 {
		t.Fatalf("far hits = %d, want 1", got)
	}
}

func TestDigestStalenessCausesFalsePositives(t *testing.T) {
	m := netmodel.NewRousskovMin()
	// Tiny caches and an hour-long rebuild interval: evictions leave
	// dangling digest bits.
	s := mustSim(t, Config{
		Mode:          ModeDigests,
		Model:         m,
		L1Capacity:    150,
		DigestRebuild: time.Hour,
	})
	s.Process(req(0, 0, 1, 100))
	s.Process(req(1, 0, 2, 100)) // evicts object 1 at node 0
	// Node 1 still sees object 1 in node 0's digest: false positive.
	s.Process(req(2, 1, 1, 100))
	if got := s.Stats().Count(sim.OutcomeFalsePos); got != 1 {
		t.Fatalf("false positives = %d, want 1 (outcomes %v)", got, s.Stats().Outcomes())
	}
	want := m.ViaL1Miss(100) + m.FalsePositive(netmodel.L2)
	if got := s.Stats().MeanOf(sim.OutcomeFalsePos); got != want {
		t.Errorf("false-positive cost = %v, want %v", got, want)
	}
}

func TestDigestRebuildClearsStaleEntries(t *testing.T) {
	s := mustSim(t, Config{
		Mode:          ModeDigests,
		L1Capacity:    150,
		DigestRebuild: time.Minute,
	})
	s.Process(req(0, 0, 1, 100))
	s.Process(req(1, 0, 2, 100)) // evicts object 1 at node 0
	// Two minutes later every digest has been rebuilt: clean miss, no
	// wasted probe.
	late := req(2, 1, 1, 100)
	late.Time = 2 * time.Minute
	s.Process(late)
	if got := s.Stats().Count(sim.OutcomeFalsePos); got != 0 {
		t.Errorf("false positives = %d after rebuild, want 0", got)
	}
	if s.DigestRebuilds() == 0 {
		t.Error("no rebuilds recorded")
	}
}

func TestDigestSizing(t *testing.T) {
	s := mustSim(t, Config{
		Mode:               ModeDigests,
		DigestEntries:      1000,
		DigestBitsPerEntry: 8,
	})
	// 1000 entries x 8 bits = ~1 KB per node.
	if got := s.DigestSizePerNode(); got < 1000 || got > 1100 {
		t.Errorf("digest size = %d bytes, want ~1000", got)
	}
	// Non-digest simulators report zero.
	plain := mustSim(t, Config{})
	if plain.DigestSizePerNode() != 0 || plain.DigestRebuilds() != 0 {
		t.Error("plain simulator reports digest stats")
	}
}

func TestDigestModeComparableHitRatio(t *testing.T) {
	// With generous digests, the digest scheme should find nearly the
	// same remote copies as exact hints.
	p := trace.DECProfile(trace.ScaleSmall)
	p.Requests = 30_000
	p.DistinctURLs = 6_000

	run := func(mode Mode) float64 {
		cfg := Config{
			Topology: sim.Default(),
			Model:    netmodel.NewTestbed(),
			Mode:     mode,
			Warmup:   p.Warmup(),
		}
		if mode == ModeDigests {
			cfg.DigestEntries = 8192
			cfg.DigestBitsPerEntry = 10
			cfg.DigestRebuild = time.Minute
		}
		s := mustSim(t, cfg)
		if _, err := sim.Run(trace.MustGenerator(p), s); err != nil {
			t.Fatal(err)
		}
		return s.HitRatio()
	}
	exact := run(ModeHints)
	digests := run(ModeDigests)
	if d := exact - digests; d > 0.05 || d < -0.05 {
		t.Errorf("hit ratios diverge: exact %.3f vs digests %.3f", exact, digests)
	}
}
