package hints

import (
	"testing"

	"beyondcache/internal/netmodel"
	"beyondcache/internal/sim"
)

func TestClientHintsSkipL1Hop(t *testing.T) {
	m := netmodel.NewRousskovMin()
	s := mustSim(t, Config{Model: m, Mode: ModeClientHints})
	s.Process(req(0, 0, 1, 100))
	// Far remote hit goes direct: DirectHit(L3), not ViaL1Hit(L3).
	s.Process(req(1, 2, 1, 100))
	if got := s.Stats().MeanOf(sim.OutcomeFar); got != m.DirectHit(netmodel.L3, 100) {
		t.Errorf("client-hints far hit cost = %v, want DirectHit(L3) = %v",
			got, m.DirectHit(netmodel.L3, 100))
	}
	// Misses go direct to the server.
	if got := s.Stats().MeanOf(sim.OutcomeMiss); got != m.DirectMiss(100) {
		t.Errorf("client-hints miss cost = %v, want DirectMiss = %v", got, m.DirectMiss(100))
	}
}

func TestClientHintsFalseNegativeSkipsOwnL1(t *testing.T) {
	// A one-set client table that loses entries: even the client's OWN
	// L1 copy is unreachable on a false negative (Section 3.3's hazard).
	m := netmodel.NewRousskovMin()
	s := mustSim(t, Config{Model: m, Mode: ModeClientHints, HintEntries: 2, HintWays: 2})
	// Node 0 caches objects 1..10; the 2-entry table forgets most.
	for i := int64(1); i <= 10; i++ {
		s.Process(req(i, 0, uint64(i), 100))
	}
	before := s.FalseNegatives()
	missesBefore := s.Stats().Count(sim.OutcomeMiss)
	// Re-request them all from the same client: despite every object
	// being in its own L1, most requests go to the server.
	for i := int64(1); i <= 10; i++ {
		s.Process(req(100+i, 0, uint64(i), 100))
	}
	fns := s.FalseNegatives() - before
	if fns < 5 {
		t.Errorf("false negatives = %d, want most of 10 with a 2-entry client table", fns)
	}
	extraMisses := s.Stats().Count(sim.OutcomeMiss) - missesBefore
	if extraMisses != fns {
		t.Errorf("misses (%d) != false negatives (%d): FN should bypass the local L1", extraMisses, fns)
	}
}

func TestClientHintsUnboundedMatchesHintsHitRatio(t *testing.T) {
	// With unbounded tables the two configurations serve the same
	// requests from the same caches; only the path costs differ.
	runMode := func(mode Mode) (*Simulator, float64) {
		s := mustSim(t, Config{Mode: mode})
		for i := int64(0); i < 200; i++ {
			s.Process(req(i, int(i)%8, uint64(i)%40, 100))
		}
		return s, s.HitRatio()
	}
	proxySim, proxyHit := runMode(ModeHints)
	clientSim, clientHit := runMode(ModeClientHints)
	if proxyHit != clientHit {
		t.Errorf("hit ratios differ: proxy %.3f vs client %.3f", proxyHit, clientHit)
	}
	// And the client configuration is at least as fast per request.
	if clientSim.MeanResponse() > proxySim.MeanResponse() {
		t.Errorf("client config slower (%v) than proxy config (%v) with unbounded tables",
			clientSim.MeanResponse(), proxySim.MeanResponse())
	}
}
