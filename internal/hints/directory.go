package hints

import (
	"time"
)

// maxStaleRecords bounds how many recent removals are remembered per object.
// Older stale hints have almost always expired (propagation delay) before
// they would matter, so the bound only trims pathological tails.
const maxStaleRecords = 8

// holderRec records a live copy of an object at a leaf cache.
type holderRec struct {
	node    int32
	version int64
	addedAt time.Duration
}

// staleRec records a recently removed copy whose hint may still be visible
// to other nodes (the source of false positives).
type staleRec struct {
	node      int32
	removedAt time.Duration
}

// objState is the global directory's knowledge about one object, plus the
// metadata-hierarchy filtering state used for Table 5 accounting.
type objState struct {
	holders []holderRec
	stales  []staleRec

	// ownCount[s] is the number of copies currently inside L2 subtree s.
	ownCount []int16
	// knownRemote is a bitmask over L2 subtrees: bit s set means subtree
	// s has been informed (by the root) of a copy outside itself.
	knownRemote uint64
	// rootHolder is the subtree whose copy the root currently advertises,
	// or -1.
	rootHolder int16
}

func newObjState(numL2 int) *objState {
	return &objState{
		ownCount:   make([]int16, numL2),
		rootHolder: -1,
	}
}

// directory tracks every copy in the system together with visibility
// windows, and simulates the hint-update traffic through both a metadata
// hierarchy (with subtree filtering, Section 3.1.2) and a centralized
// directory, counting the updates each root receives (Table 5).
type directory struct {
	objs  map[uint64]*objState
	numL2 int

	// Table 5 counters.
	rootUpdates    int64 // updates reaching the hierarchy root, post-filter
	centralUpdates int64 // updates reaching a centralized directory
	leafUpdates    int64 // updates leaving leaf caches (L1 -> parent hops)
}

func newDirectory(numL2 int) *directory {
	return &directory{
		objs:  make(map[uint64]*objState),
		numL2: numL2,
	}
}

func (d *directory) state(object uint64) *objState {
	st, ok := d.objs[object]
	if !ok {
		st = newObjState(d.numL2)
		d.objs[object] = st
	}
	return st
}

// addCopy records a new copy of object at node (in subtree s2) at time t.
func (d *directory) addCopy(object uint64, node int32, s2 int, version int64, t time.Duration) {
	st := d.state(object)

	// Drop any stale record for this node: the copy is back.
	for i := 0; i < len(st.stales); i++ {
		if st.stales[i].node == node {
			st.stales = append(st.stales[:i], st.stales[i+1:]...)
			i--
		}
	}
	// Replace an existing holder record (version refresh) or append.
	for i := range st.holders {
		if st.holders[i].node == node {
			st.holders[i].version = version
			st.holders[i].addedAt = t
			d.leafUpdates++
			d.centralUpdates++
			return
		}
	}
	st.holders = append(st.holders, holderRec{node: node, version: version, addedAt: t})

	// Update traffic accounting.
	d.leafUpdates++
	d.centralUpdates++

	// Metadata-hierarchy filter: the L2 parent forwards the add to the
	// root only if it previously knew of no copy at all — neither in its
	// own subtree nor via a root broadcast.
	hadOwn := st.ownCount[s2] > 0
	st.ownCount[s2]++
	if !hadOwn && st.knownRemote&(1<<uint(s2)) == 0 {
		d.rootUpdates++
		st.rootHolder = int16(s2)
		// The root broadcasts the new location down to every other
		// subtree.
		for s := 0; s < d.numL2; s++ {
			if s != s2 {
				st.knownRemote |= 1 << uint(s)
			}
		}
	}
}

// removeCopy records that node's copy is gone (evicted or invalidated).
func (d *directory) removeCopy(object uint64, node int32, s2 int, t time.Duration) {
	st, ok := d.objs[object]
	if !ok {
		return
	}
	found := false
	for i := range st.holders {
		if st.holders[i].node == node {
			st.holders = append(st.holders[:i], st.holders[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return
	}
	st.stales = append(st.stales, staleRec{node: node, removedAt: t})
	if len(st.stales) > maxStaleRecords {
		st.stales = st.stales[len(st.stales)-maxStaleRecords:]
	}

	d.leafUpdates++
	d.centralUpdates++

	if st.ownCount[s2] > 0 {
		st.ownCount[s2]--
	}
	// The removal climbs to the root only when the subtree lost its last
	// copy and the root was advertising that subtree.
	if st.ownCount[s2] == 0 && st.rootHolder == int16(s2) {
		d.rootUpdates++
		st.rootHolder = -1
		st.knownRemote = 0
		// Another subtree with live copies re-advertises to the root,
		// which re-broadcasts ("use the next best location").
		for s := 0; s < d.numL2; s++ {
			if st.ownCount[s] > 0 {
				d.rootUpdates++
				st.rootHolder = int16(s)
				for o := 0; o < d.numL2; o++ {
					if o != s {
						st.knownRemote |= 1 << uint(o)
					}
				}
				break
			}
		}
	}
}

// holdersOlderThan returns the nodes holding a version older than v.
func (d *directory) holdersOlderThan(object uint64, v int64) []int32 {
	st, ok := d.objs[object]
	if !ok {
		return nil
	}
	var out []int32
	for _, h := range st.holders {
		if h.version < v {
			out = append(out, h.node)
		}
	}
	return out
}

// purgeExpiredStales drops stale records whose hint visibility window has
// closed.
func (st *objState) purgeExpiredStales(t, delay time.Duration) {
	kept := st.stales[:0]
	for _, s := range st.stales {
		if s.removedAt+delay > t {
			kept = append(kept, s)
		}
	}
	st.stales = kept
}

// lookupResult is what a hint query returns.
type lookupResult struct {
	// found is false when no candidate is visible (true miss / false
	// negative).
	found bool
	// genuine is true when the chosen candidate actually holds the data.
	genuine bool
	// node is the chosen candidate.
	node int32
	// near is true when the candidate shares the requester's L2 subtree.
	near bool
}

// lookup finds the nearest visible candidate copy of object for requester
// (in subtree reqS2) at time t, under a hint-propagation delay. Additions
// become visible to other nodes delay after they happen; removals likewise,
// during which window the dangling hint is a false-positive candidate.
// Genuine candidates win over stale ones within the same distance class
// because a genuine copy's hint is at least as fresh as the stale record it
// replaced.
func (d *directory) lookup(object uint64, requester int32, reqS2 int, l2OfNode func(int32) int,
	t, delay time.Duration) lookupResult {

	st, ok := d.objs[object]
	if !ok {
		return lookupResult{}
	}
	st.purgeExpiredStales(t, delay)

	var nearGenuine, farGenuine, nearStale, farStale *int32
	for i := range st.holders {
		h := &st.holders[i]
		if h.node == requester || h.addedAt+delay > t {
			continue
		}
		if l2OfNode(h.node) == reqS2 {
			if nearGenuine == nil {
				nearGenuine = &h.node
			}
		} else if farGenuine == nil {
			farGenuine = &h.node
		}
	}
	for i := range st.stales {
		s := &st.stales[i]
		if s.node == requester {
			continue
		}
		if l2OfNode(s.node) == reqS2 {
			if nearStale == nil {
				nearStale = &s.node
			}
		} else if farStale == nil {
			farStale = &s.node
		}
	}

	switch {
	case nearGenuine != nil:
		return lookupResult{found: true, genuine: true, node: *nearGenuine, near: true}
	case nearStale != nil:
		return lookupResult{found: true, genuine: false, node: *nearStale, near: true}
	case farGenuine != nil:
		return lookupResult{found: true, genuine: true, node: *farGenuine, near: false}
	case farStale != nil:
		return lookupResult{found: true, genuine: false, node: *farStale, near: false}
	default:
		return lookupResult{}
	}
}

// anyHolder returns some live holder of the object, or -1.
func (d *directory) anyHolder(object uint64) int32 {
	st, ok := d.objs[object]
	if !ok || len(st.holders) == 0 {
		return -1
	}
	return st.holders[0].node
}

// holderNodes returns the nodes currently holding the object.
func (d *directory) holderNodes(object uint64) []int32 {
	st, ok := d.objs[object]
	if !ok {
		return nil
	}
	out := make([]int32, len(st.holders))
	for i, h := range st.holders {
		out[i] = h.node
	}
	return out
}
