package hints

import (
	"time"
)

// maxStaleRecords bounds how many recent removals are remembered per object.
// Older stale hints have almost always expired (propagation delay) before
// they would matter, so the bound only trims pathological tails.
const maxStaleRecords = 8

// holderRec records a live copy of an object at a leaf cache.
type holderRec struct {
	node    int32
	version int64
	addedAt time.Duration
}

// staleRec records a recently removed copy whose hint may still be visible
// to other nodes (the source of false positives).
type staleRec struct {
	node      int32
	removedAt time.Duration
}

// objState is the global directory's knowledge about one object, plus the
// metadata-hierarchy filtering state used for Table 5 accounting. States
// live by value inside directory pages; ownCount == nil marks a slot whose
// object has never been seen (initialized states always carve a non-empty
// ownCount, since every topology has at least one L2 subtree).
type objState struct {
	holders []holderRec
	stales  []staleRec

	// ownCount[s] is the number of copies currently inside L2 subtree s.
	ownCount []int16
	// knownRemote is a bitmask over L2 subtrees: bit s set means subtree
	// s has been informed (by the root) of a copy outside itself.
	knownRemote uint64
	// minVersion is a conservative lower bound on the versions held (never
	// above the true minimum; exact after removals). The per-request
	// consistency sweep compares it first and skips scanning holders when
	// no copy can be stale — the overwhelmingly common case.
	minVersion int64
	// rootHolder is the subtree whose copy the root currently advertises,
	// or -1.
	rootHolder int16
}

// maxDirSlots bounds the flat state table at 8M slots. Object IDs are dense
// popularity ranks, so this is never reached by the trace simulators; a
// stray huge ID spills to a map instead of allocating the whole ID space.
const maxDirSlots = 1 << 23

// ownCountSlabLen sizes the chunk new ownCount slices are carved from.
// Chunks are never reallocated, so carved slices stay valid forever.
const ownCountSlabLen = 1 << 14

// directory tracks every copy in the system together with visibility
// windows, and simulates the hint-update traffic through both a metadata
// hierarchy (with subtree filtering, Section 3.1.2) and a centralized
// directory, counting the updates each root receives (Table 5).
type directory struct {
	slots    []objState
	overflow map[uint64]*objState
	slab     []int16
	numL2    int

	// Table 5 counters.
	rootUpdates    int64 // updates reaching the hierarchy root, post-filter
	centralUpdates int64 // updates reaching a centralized directory
	leafUpdates    int64 // updates leaving leaf caches (L1 -> parent hops)
}

func newDirectory(numL2 int) *directory {
	return &directory{numL2: numL2}
}

// carveOwnCount hands out a zeroed []int16 of numL2 entries from the slab.
func (d *directory) carveOwnCount() []int16 {
	if len(d.slab) < d.numL2 {
		d.slab = make([]int16, ownCountSlabLen)
	}
	oc := d.slab[:d.numL2:d.numL2]
	d.slab = d.slab[d.numL2:]
	return oc
}

// peek returns the state for object if it has ever been initialized, else
// nil. It never allocates: one bounds check and one load on the hot path.
func (d *directory) peek(object uint64) *objState {
	if object < uint64(len(d.slots)) {
		st := &d.slots[object]
		if st.ownCount == nil {
			return nil
		}
		return st
	}
	if object < maxDirSlots {
		return nil
	}
	return d.overflow[object]
}

// state returns the state for object, initializing its slot on first touch.
// Returned pointers are valid until the next state() call for a new object
// (which may grow the table); no caller retains them across updates.
func (d *directory) state(object uint64) *objState {
	if object >= maxDirSlots {
		st := d.overflow[object]
		if st == nil {
			st = &objState{ownCount: d.carveOwnCount(), rootHolder: -1}
			if d.overflow == nil {
				d.overflow = make(map[uint64]*objState)
			}
			d.overflow[object] = st
		}
		return st
	}
	if object >= uint64(len(d.slots)) {
		n := uint64(512)
		for n <= object {
			n *= 2
		}
		grown := make([]objState, n)
		copy(grown, d.slots)
		d.slots = grown
	}
	st := &d.slots[object]
	if st.ownCount == nil {
		st.ownCount = d.carveOwnCount()
		st.rootHolder = -1
	}
	return st
}

// addCopy records a new copy of object at node (in subtree s2) at time t.
func (d *directory) addCopy(object uint64, node int32, s2 int, version int64, t time.Duration) {
	st := d.state(object)

	// Drop any stale record for this node: the copy is back.
	for i := 0; i < len(st.stales); i++ {
		if st.stales[i].node == node {
			st.stales = append(st.stales[:i], st.stales[i+1:]...)
			i--
		}
	}
	// Replace an existing holder record (version refresh) or append.
	for i := range st.holders {
		if st.holders[i].node == node {
			st.holders[i].version = version
			st.holders[i].addedAt = t
			d.leafUpdates++
			d.centralUpdates++
			return
		}
	}
	if st.holders == nil {
		// Most objects accumulate a few holders; starting at capacity 4
		// skips the 1->2->4 growth reallocations on every fresh object.
		st.holders = make([]holderRec, 0, 4)
	}
	if len(st.holders) == 0 || version < st.minVersion {
		st.minVersion = version
	}
	st.holders = append(st.holders, holderRec{node: node, version: version, addedAt: t})

	// Update traffic accounting.
	d.leafUpdates++
	d.centralUpdates++

	// Metadata-hierarchy filter: the L2 parent forwards the add to the
	// root only if it previously knew of no copy at all — neither in its
	// own subtree nor via a root broadcast.
	hadOwn := st.ownCount[s2] > 0
	st.ownCount[s2]++
	if !hadOwn && st.knownRemote&(1<<uint(s2)) == 0 {
		d.rootUpdates++
		st.rootHolder = int16(s2)
		// The root broadcasts the new location down to every other
		// subtree.
		for s := 0; s < d.numL2; s++ {
			if s != s2 {
				st.knownRemote |= 1 << uint(s)
			}
		}
	}
}

// removeCopy records that node's copy is gone (evicted or invalidated).
func (d *directory) removeCopy(object uint64, node int32, s2 int, t time.Duration) {
	st := d.peek(object)
	if st == nil {
		return
	}
	found := false
	for i := range st.holders {
		if st.holders[i].node == node {
			st.holders = append(st.holders[:i], st.holders[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return
	}
	if st.stales == nil {
		st.stales = make([]staleRec, 0, maxStaleRecords)
	}
	st.stales = append(st.stales, staleRec{node: node, removedAt: t})
	if len(st.stales) > maxStaleRecords {
		st.stales = append(st.stales[:0], st.stales[len(st.stales)-maxStaleRecords:]...)
	}
	// Removals are rare next to reads: recompute the exact version floor.
	if len(st.holders) > 0 {
		m := st.holders[0].version
		for _, h := range st.holders[1:] {
			if h.version < m {
				m = h.version
			}
		}
		st.minVersion = m
	} else {
		st.minVersion = 0
	}

	d.leafUpdates++
	d.centralUpdates++

	if st.ownCount[s2] > 0 {
		st.ownCount[s2]--
	}
	// The removal climbs to the root only when the subtree lost its last
	// copy and the root was advertising that subtree.
	if st.ownCount[s2] == 0 && st.rootHolder == int16(s2) {
		d.rootUpdates++
		st.rootHolder = -1
		st.knownRemote = 0
		// Another subtree with live copies re-advertises to the root,
		// which re-broadcasts ("use the next best location").
		for s := 0; s < d.numL2; s++ {
			if st.ownCount[s] > 0 {
				d.rootUpdates++
				st.rootHolder = int16(s)
				for o := 0; o < d.numL2; o++ {
					if o != s {
						st.knownRemote |= 1 << uint(o)
					}
				}
				break
			}
		}
	}
}

// holdersOlderThan appends the nodes holding a version older than v to dst
// and returns it. Callers pass a reused scratch slice: this runs on every
// request, so it must not allocate on the (overwhelmingly common) path
// where no holder is stale.
func (d *directory) holdersOlderThan(object uint64, v int64, dst []int32) []int32 {
	st := d.peek(object)
	if st == nil || st.minVersion >= v || len(st.holders) == 0 {
		return dst
	}
	for _, h := range st.holders {
		if h.version < v {
			dst = append(dst, h.node)
		}
	}
	return dst
}

// purgeExpiredStales drops stale records whose hint visibility window has
// closed.
func (st *objState) purgeExpiredStales(t, delay time.Duration) {
	kept := st.stales[:0]
	for _, s := range st.stales {
		if s.removedAt+delay > t {
			kept = append(kept, s)
		}
	}
	st.stales = kept
}

// lookupResult is what a hint query returns.
type lookupResult struct {
	// found is false when no candidate is visible (true miss / false
	// negative).
	found bool
	// genuine is true when the chosen candidate actually holds the data.
	genuine bool
	// node is the chosen candidate.
	node int32
	// near is true when the candidate shares the requester's L2 subtree.
	near bool
}

// lookup finds the nearest visible candidate copy of object for requester
// (in subtree reqS2) at time t, under a hint-propagation delay. Additions
// become visible to other nodes delay after they happen; removals likewise,
// during which window the dangling hint is a false-positive candidate.
// Genuine candidates win over stale ones within the same distance class
// because a genuine copy's hint is at least as fresh as the stale record it
// replaced.
func (d *directory) lookup(object uint64, requester int32, reqS2 int, l2OfNode func(int32) int,
	t, delay time.Duration) lookupResult {

	st := d.peek(object)
	if st == nil {
		return lookupResult{}
	}
	st.purgeExpiredStales(t, delay)

	var nearGenuine, farGenuine, nearStale, farStale *int32
	for i := range st.holders {
		h := &st.holders[i]
		if h.node == requester || h.addedAt+delay > t {
			continue
		}
		if l2OfNode(h.node) == reqS2 {
			if nearGenuine == nil {
				nearGenuine = &h.node
			}
		} else if farGenuine == nil {
			farGenuine = &h.node
		}
	}
	for i := range st.stales {
		s := &st.stales[i]
		if s.node == requester {
			continue
		}
		if l2OfNode(s.node) == reqS2 {
			if nearStale == nil {
				nearStale = &s.node
			}
		} else if farStale == nil {
			farStale = &s.node
		}
	}

	switch {
	case nearGenuine != nil:
		return lookupResult{found: true, genuine: true, node: *nearGenuine, near: true}
	case nearStale != nil:
		return lookupResult{found: true, genuine: false, node: *nearStale, near: true}
	case farGenuine != nil:
		return lookupResult{found: true, genuine: true, node: *farGenuine, near: false}
	case farStale != nil:
		return lookupResult{found: true, genuine: false, node: *farStale, near: false}
	default:
		return lookupResult{}
	}
}

// anyHolder returns some live holder of the object, or -1.
func (d *directory) anyHolder(object uint64) int32 {
	st := d.peek(object)
	if st == nil || len(st.holders) == 0 {
		return -1
	}
	return st.holders[0].node
}

// holderNodes returns the nodes currently holding the object.
func (d *directory) holderNodes(object uint64) []int32 {
	st := d.peek(object)
	if st == nil {
		return nil
	}
	out := make([]int32, len(st.holders))
	for i, h := range st.holders {
		out[i] = h.node
	}
	return out
}
