package hints

import (
	"testing"
	"testing/quick"
	"time"
)

// l2of maps nodes to subtrees of 2 for directory-level tests.
func l2of(n int32) int { return int(n) / 2 }

func TestDirectoryAddRemoveInvariants(t *testing.T) {
	d := newDirectory(4)
	d.addCopy(1, 0, 0, 1, 0)
	d.addCopy(1, 1, 0, 1, time.Second)
	d.addCopy(1, 4, 2, 1, 2*time.Second)

	holders := d.holderNodes(1)
	if len(holders) != 3 {
		t.Fatalf("holders = %v, want 3", holders)
	}
	// Re-adding the same node refreshes, not duplicates.
	d.addCopy(1, 0, 0, 2, 3*time.Second)
	if got := len(d.holderNodes(1)); got != 3 {
		t.Errorf("after refresh: %d holders, want 3", got)
	}
	d.removeCopy(1, 1, 0, 4*time.Second)
	if got := len(d.holderNodes(1)); got != 2 {
		t.Errorf("after remove: %d holders, want 2", got)
	}
	// Removing an absent node is a no-op.
	before := d.centralUpdates
	d.removeCopy(1, 9, 3, 5*time.Second)
	if d.centralUpdates != before {
		t.Error("phantom removal counted as an update")
	}
}

func TestDirectoryFilteringCounters(t *testing.T) {
	d := newDirectory(4)
	// First copy anywhere: reaches the root.
	d.addCopy(1, 0, 0, 1, 0)
	if d.rootUpdates != 1 {
		t.Fatalf("root updates = %d, want 1", d.rootUpdates)
	}
	// Second copy in a DIFFERENT subtree: filtered (that subtree already
	// learned of the first copy via the root broadcast).
	d.addCopy(1, 4, 2, 1, time.Second)
	if d.rootUpdates != 1 {
		t.Errorf("root updates = %d after filtered add, want 1", d.rootUpdates)
	}
	// Copy in the SAME subtree as the first: also filtered.
	d.addCopy(1, 1, 0, 1, 2*time.Second)
	if d.rootUpdates != 1 {
		t.Errorf("root updates = %d, want 1", d.rootUpdates)
	}
	// Centralized directory saw every one of the three adds.
	if d.centralUpdates != 3 {
		t.Errorf("central updates = %d, want 3", d.centralUpdates)
	}

	// Removing the root-advertised subtree's copies: the removal climbs,
	// and the surviving subtree re-advertises.
	d.removeCopy(1, 1, 0, 3*time.Second)
	d.removeCopy(1, 0, 0, 4*time.Second)
	// root received: the removal (+1) and the re-advertisement (+1).
	if d.rootUpdates != 3 {
		t.Errorf("root updates = %d after failover, want 3", d.rootUpdates)
	}
	st := d.peek(1)
	if st.rootHolder != 2 {
		t.Errorf("rootHolder = %d, want subtree 2", st.rootHolder)
	}
}

func TestDirectoryLookupPreference(t *testing.T) {
	d := newDirectory(4)
	// Requester is node 0 (subtree 0). A far copy exists at node 6.
	d.addCopy(1, 6, 3, 1, 0)
	res := d.lookup(1, 0, 0, l2of, time.Minute, 0)
	if !res.found || !res.genuine || res.near {
		t.Fatalf("far lookup = %+v", res)
	}
	// A near copy appears at node 1: preferred over the far one.
	d.addCopy(1, 1, 0, 1, time.Minute)
	res = d.lookup(1, 0, 0, l2of, 2*time.Minute, 0)
	if !res.near || res.node != 1 {
		t.Errorf("near copy not preferred: %+v", res)
	}
	// The requester's own copy is never a candidate.
	d.addCopy(1, 0, 0, 1, 2*time.Minute)
	res = d.lookup(1, 0, 0, l2of, 3*time.Minute, 0)
	if res.node == 0 {
		t.Error("lookup returned the requester itself")
	}
}

func TestDirectoryStaleWindow(t *testing.T) {
	const delay = time.Minute
	d := newDirectory(4)
	d.addCopy(1, 2, 1, 1, 0)
	d.removeCopy(1, 2, 1, 10*time.Minute)
	// Within the propagation window the dangling hint is a false-positive
	// candidate.
	res := d.lookup(1, 0, 0, l2of, 10*time.Minute+30*time.Second, delay)
	if !res.found || res.genuine {
		t.Fatalf("within window: %+v, want stale candidate", res)
	}
	// After the window the record expires: clean miss.
	res = d.lookup(1, 0, 0, l2of, 12*time.Minute, delay)
	if res.found {
		t.Errorf("after window: %+v, want nothing", res)
	}
}

func TestDirectoryAddVisibilityDelay(t *testing.T) {
	const delay = time.Minute
	d := newDirectory(4)
	d.addCopy(1, 2, 1, 1, 0)
	// 10 seconds later, other nodes have not heard yet.
	if res := d.lookup(1, 0, 0, l2of, 10*time.Second, delay); res.found {
		t.Errorf("add visible before delay: %+v", res)
	}
	// After the delay it is.
	if res := d.lookup(1, 0, 0, l2of, 2*time.Minute, delay); !res.found || !res.genuine {
		t.Errorf("add not visible after delay: %+v", res)
	}
}

func TestDirectoryHoldersOlderThan(t *testing.T) {
	d := newDirectory(4)
	d.addCopy(1, 0, 0, 1, 0)
	d.addCopy(1, 2, 1, 2, 0)
	old := d.holdersOlderThan(1, 2, nil)
	if len(old) != 1 || old[0] != 0 {
		t.Errorf("holdersOlderThan = %v, want [0]", old)
	}
	if got := d.holdersOlderThan(99, 5, nil); got != nil {
		t.Errorf("unknown object returned %v", got)
	}
	// Scratch reuse: results append to the passed buffer.
	scratch := make([]int32, 0, 4)
	if got := d.holdersOlderThan(1, 2, scratch[:0]); len(got) != 1 || got[0] != 0 {
		t.Errorf("holdersOlderThan with scratch = %v, want [0]", got)
	}
}

func TestDirectoryStaleRecordsBounded(t *testing.T) {
	d := newDirectory(4)
	for i := 0; i < 50; i++ {
		node := int32(i % 8)
		d.addCopy(1, node, int(node)/2, 1, time.Duration(2*i)*time.Second)
		d.removeCopy(1, node, int(node)/2, time.Duration(2*i+1)*time.Second)
	}
	if got := len(d.peek(1).stales); got > maxStaleRecords {
		t.Errorf("stale records = %d, want <= %d", got, maxStaleRecords)
	}
}

// TestDirectoryQuickInvariants drives random add/remove sequences and
// checks structural invariants: no duplicate holders, subtree counts match
// holder placement, and a valid rootHolder always has copies.
func TestDirectoryQuickInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		d := newDirectory(4)
		var now time.Duration
		for _, op := range ops {
			now += time.Second
			node := int32(op % 8)
			s2 := int(node) / 2
			obj := uint64(op % 5)
			if op%3 == 0 {
				d.removeCopy(obj, node, s2, now)
			} else {
				d.addCopy(obj, node, s2, int64(op%4)+1, now)
			}
			st := d.peek(obj)
			if st == nil {
				continue
			}
			seen := map[int32]bool{}
			counts := make([]int16, 4)
			for _, h := range st.holders {
				if seen[h.node] {
					return false // duplicate holder
				}
				seen[h.node] = true
				counts[h.node/2]++
			}
			for s := 0; s < 4; s++ {
				if counts[s] != st.ownCount[s] {
					return false // subtree bookkeeping drifted
				}
			}
			if st.rootHolder >= 0 && st.ownCount[st.rootHolder] == 0 {
				return false // root advertises an empty subtree
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
