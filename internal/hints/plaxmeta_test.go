package hints

import (
	"testing"

	"beyondcache/internal/sim"
	"beyondcache/internal/trace"
)

func TestMetaRouterFiltersAndCounts(t *testing.T) {
	s := mustSim(t, Config{
		Topology:       sim.Topology{NumL1: 8, ClientsPerL1: 2, L1PerL2: 4},
		MetaRouterBits: 2,
	})
	// First copy of object 1 at node 0: routes to the object's root.
	s.Process(req(0, 0, 1, 100))
	load1, ok := s.MetaLoad()
	if !ok {
		t.Fatal("meta router not active")
	}
	if load1.Updates != 1 || load1.TotalReceived == 0 {
		t.Fatalf("first add load = %+v", load1)
	}
	// Second copy elsewhere: the filter should terminate the climb at
	// the first metadata node that already knew a copy, so per-update
	// hops do not grow with copies.
	s.Process(req(1, 1, 1, 100))
	load2, _ := s.MetaLoad()
	if load2.Updates != 2 {
		t.Fatalf("updates = %d, want 2", load2.Updates)
	}
	if load2.MeanHops > load1.MeanHops {
		t.Errorf("mean hops grew after a filtered add: %.2f -> %.2f",
			load1.MeanHops, load2.MeanHops)
	}
}

func TestMetaRouterRemoveRetracts(t *testing.T) {
	s := mustSim(t, Config{
		Topology:       sim.Topology{NumL1: 8, ClientsPerL1: 2, L1PerL2: 4},
		MetaRouterBits: 1,
		L1Capacity:     150,
	})
	s.Process(req(0, 0, 1, 100))
	before, _ := s.MetaLoad()
	// Object 2 evicts object 1 at node 0: the removal routes up too.
	s.Process(req(1, 0, 2, 100))
	after, _ := s.MetaLoad()
	if after.Updates <= before.Updates+1 {
		t.Errorf("eviction did not route a removal: %d -> %d updates",
			before.Updates, after.Updates)
	}
}

func TestMetaLoadInactive(t *testing.T) {
	s := mustSim(t, Config{})
	if _, ok := s.MetaLoad(); ok {
		t.Error("MetaLoad active without configuration")
	}
}

func TestAccessorsAndRefresh(t *testing.T) {
	s := mustSim(t, Config{HintEntries: 64})
	if got := s.Topology(); got != smallTopo() {
		t.Errorf("Topology() = %+v", got)
	}
	r := req(0, 0, 1, 100)
	s.Process(r)
	s.Process(req(1, 0, 1, 100)) // local hit
	if s.LocalHitRatio() != 0.5 {
		t.Errorf("LocalHitRatio = %g, want 0.5", s.LocalHitRatio())
	}
	if st := s.HintTableStats(); st.Inserts == 0 {
		t.Errorf("hint table stats empty: %+v", st)
	}

	// InjectRefresh places a demand-standing copy at another node.
	r2 := trace.Request{Object: 1, Size: 100, Version: 1}
	if !s.InjectRefresh(3, r2) {
		t.Fatal("InjectRefresh failed")
	}
	if s.InjectRefresh(3, r2) {
		t.Error("duplicate InjectRefresh succeeded")
	}
	if !s.HasCopy(3, 1, 1) {
		t.Error("refreshed copy missing")
	}
	s.AgeObject(3, 1)   // demote; must not remove
	s.AgeObject(3, 999) // absent: no-op
	if !s.HasCopy(3, 1, 1) {
		t.Error("AgeObject removed the copy")
	}
	// The unbounded simulator reports zero hint-table stats.
	plain := mustSim(t, Config{})
	if st := plain.HintTableStats(); st.Inserts != 0 || st.Lookups != 0 {
		t.Errorf("unbounded table stats nonzero: %+v", st)
	}
	if plain.LeafUpdates() != 0 {
		t.Error("fresh sim has leaf updates")
	}
}
