package faults

import (
	"context"
	"fmt"
	"sort"
	"time"
)

// TimelineEvent is one timed re-spec of the fault plane: at At after the
// run starts, Spec replaces the active rules (an empty Spec heals
// everything). Specs are written in the same DSL as the -inject flag, so a
// scenario file can break and heal exactly what a hand-driven test would.
type TimelineEvent struct {
	At   time.Duration
	Spec string
}

// Timeline is a validated, time-ordered sequence of fault re-specs. Load
// scenarios use it to model partitions that heal, brownouts that lift, and
// flapping links: the scenario parser builds one per run, and Run applies
// it against the live fleet's injector while the load driver replays.
type Timeline struct {
	events []TimelineEvent
}

// NewTimeline validates every event's spec (so scenario typos surface at
// parse time, not minutes into a run) and orders events by offset. Offsets
// must be non-negative; equal offsets keep their given order.
func NewTimeline(events []TimelineEvent) (*Timeline, error) {
	own := make([]TimelineEvent, len(events))
	copy(own, events)
	for _, e := range own {
		if e.At < 0 {
			return nil, fmt.Errorf("faults: timeline offset %v is negative", e.At)
		}
		if _, err := ParseSpec(e.Spec); err != nil {
			return nil, fmt.Errorf("faults: timeline at %v: %w", e.At, err)
		}
	}
	sort.SliceStable(own, func(i, j int) bool { return own[i].At < own[j].At })
	return &Timeline{events: own}, nil
}

// Events returns a copy of the ordered events.
func (t *Timeline) Events() []TimelineEvent {
	out := make([]TimelineEvent, len(t.events))
	copy(out, t.events)
	return out
}

// Len returns the number of events.
func (t *Timeline) Len() int { return len(t.events) }

// Run sleeps to each event's offset (measured from the moment Run is
// called) and hands its spec to apply — normally an Injector.SetSpec
// closure, possibly fanned out across a fleet. Run returns the first apply
// error, or ctx's error if the context ends first; events already due when
// reached apply immediately.
func (t *Timeline) Run(ctx context.Context, apply func(spec string) error) error {
	start := time.Now()
	for _, e := range t.events {
		if d := e.At - time.Since(start); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			}
		}
		if err := apply(e.Spec); err != nil {
			return fmt.Errorf("faults: timeline at %v: %w", e.At, err)
		}
	}
	return nil
}
