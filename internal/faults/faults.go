// Package faults is the prototype's deterministic fault-injection layer:
// a seedable injector that can add latency, drop or hang requests, return
// synthetic 5xx responses, partition peer pairs, and flap a target down/up
// on a schedule. Faults are configured per target through a small text DSL
// (the -inject flag of cmd/cachenode), so fleets, tests, and examples can
// all run the exact same chaos.
//
// The DSL grammar (see DESIGN.md §8):
//
//	spec   := rule *( ";" rule )
//	rule   := target ":" opt *( "," opt )
//	target := "*" | host | host ":" port | name
//	opt    := "latency=" DUR        add DUR before the request proceeds
//	        | "jitter=" DUR         add uniform [0,DUR) on top of latency
//	        | "errrate=" FLOAT      probability of a synthetic 5xx reply
//	        | "errcode=" INT        status for injected errors (default 503)
//	        | "droprate=" FLOAT     probability of a connection-level drop
//	        | "timeout=" DUR        hang for DUR, then fail (slow-peer model)
//	        | "blackhole"           hang until the caller's deadline fires
//	        | "partition"           every request to target fails at once
//	        | "flap=" DUR "/" DUR   cycle: down for the first DUR, up for
//	                                the second, repeating
//
// Example: "peerB:latency=200ms,errrate=0.1;*:jitter=5ms". The first rule
// whose target matches wins; later rules (including "*") are fallbacks.
//
// Determinism: all randomness comes from one seeded source, so a fixed
// seed and request order replays the same fault sequence. The flap
// schedule is driven by a clock that tests can pin.
package faults

import (
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Rule is one parsed fault rule for one target.
type Rule struct {
	// Target is "*", a host, a host:port, or a node name.
	Target string
	// Latency is added before the request proceeds; Jitter adds a
	// uniform [0, Jitter) on top.
	Latency time.Duration
	Jitter  time.Duration
	// ErrRate is the probability of replying with ErrCode instead of
	// forwarding; ErrCode defaults to 503.
	ErrRate float64
	ErrCode int
	// DropRate is the probability of a connection-level failure.
	DropRate float64
	// Hang holds the request for this long and then fails it — the
	// slow-or-dead peer the hedged miss path exists for. "blackhole"
	// parses to a Hang far beyond any sane deadline.
	Hang time.Duration
	// Partition fails every request to the target immediately,
	// modeling a network partition between this node and the target.
	Partition bool
	// FlapDown/FlapUp cycle the target down (requests drop) for
	// FlapDown, then up for FlapUp, repeating from the injector's
	// start time.
	FlapDown time.Duration
	FlapUp   time.Duration
}

// blackholeHang is the Hang used for "blackhole": effectively forever —
// the caller's context deadline always fires first.
const blackholeHang = time.Hour

// Decision is the injector's verdict for one request, applied in order:
// wait Delay, then hang/drop/reply-with-Code, or pass through untouched.
type Decision struct {
	// Delay is added latency (possibly zero).
	Delay time.Duration
	// Hang > 0 holds the request for Hang (or the context deadline,
	// whichever first) and then fails it.
	Hang time.Duration
	// Drop fails the request with a connection-level error.
	Drop bool
	// Code > 0 replies with a synthetic response of this status.
	Code int
}

// Counts is a snapshot of how many faults of each kind were injected.
type Counts struct {
	Latency int64 `json:"latency"`
	Errors  int64 `json:"errors"`
	Drops   int64 `json:"drops"`
	Hangs   int64 `json:"hangs"`
	Flaps   int64 `json:"flaps"`
}

// Injector evaluates a parsed fault spec against request targets. It is
// safe for concurrent use; all randomness flows from the seed given to
// New, so identical request sequences replay identical faults.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []Rule
	now   func() time.Time
	start time.Time

	latency atomic.Int64
	errors  atomic.Int64
	drops   atomic.Int64
	hangs   atomic.Int64
	flaps   atomic.Int64
}

// New parses spec and builds an injector seeded with seed. An empty spec
// is valid and injects nothing.
func New(spec string, seed int64) (*Injector, error) {
	rules, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	i := &Injector{
		rng: rand.New(rand.NewSource(seed)),
		now: time.Now,
	}
	i.start = i.now()
	i.rules = rules
	return i, nil
}

// SetSpec replaces the injector's rules at runtime (tests and demos heal
// or break targets mid-run). The flap schedule restarts from now.
func (i *Injector) SetSpec(spec string) error {
	rules, err := ParseSpec(spec)
	if err != nil {
		return err
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules = rules
	i.start = i.now()
	return nil
}

// SetClock pins the injector's clock (tests drive the flap schedule
// deterministically). The flap schedule restarts at the new clock's now.
func (i *Injector) SetClock(now func() time.Time) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.now = now
	i.start = now()
}

// Rules returns a copy of the active rules.
func (i *Injector) Rules() []Rule {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]Rule, len(i.rules))
	copy(out, i.rules)
	return out
}

// Counts snapshots the injected-fault counters.
func (i *Injector) Counts() Counts {
	return Counts{
		Latency: i.latency.Load(),
		Errors:  i.errors.Load(),
		Drops:   i.drops.Load(),
		Hangs:   i.hangs.Load(),
		Flaps:   i.flaps.Load(),
	}
}

// match returns the first rule whose target matches, or nil. target is
// normally a host:port; a rule naming just the host matches any port.
func (i *Injector) match(target string) *Rule {
	for idx := range i.rules {
		r := &i.rules[idx]
		if r.Target == "*" || r.Target == target {
			return r
		}
		if host, _, err := net.SplitHostPort(target); err == nil && host == r.Target {
			return r
		}
	}
	return nil
}

// Decide evaluates the spec for one request to target. Fault kinds are
// checked in severity order — flap window, partition, random drop, hang —
// so a downed target never also pays injected latency; latency and error
// injection combine (a slow 503 is a realistic failure).
func (i *Injector) Decide(target string) Decision {
	i.mu.Lock()
	r := i.match(target)
	if r == nil {
		i.mu.Unlock()
		return Decision{}
	}
	var d Decision
	if r.FlapDown > 0 {
		cycle := r.FlapDown + r.FlapUp
		if cycle > 0 && i.now().Sub(i.start)%cycle < r.FlapDown {
			i.mu.Unlock()
			i.flaps.Add(1)
			return Decision{Drop: true}
		}
	}
	if r.Partition {
		i.mu.Unlock()
		i.drops.Add(1)
		return Decision{Drop: true}
	}
	if r.DropRate > 0 && i.rng.Float64() < r.DropRate {
		i.mu.Unlock()
		i.drops.Add(1)
		return Decision{Drop: true}
	}
	if r.Latency > 0 || r.Jitter > 0 {
		d.Delay = r.Latency
		if r.Jitter > 0 {
			d.Delay += time.Duration(i.rng.Int63n(int64(r.Jitter)))
		}
	}
	if r.Hang > 0 {
		d.Hang = r.Hang
		i.mu.Unlock()
		i.hangs.Add(1)
		return d
	}
	if r.ErrRate > 0 && i.rng.Float64() < r.ErrRate {
		d.Code = r.ErrCode
		if d.Code == 0 {
			d.Code = 503
		}
	}
	i.mu.Unlock()
	if d.Delay > 0 {
		i.latency.Add(1)
	}
	if d.Code > 0 {
		i.errors.Add(1)
	}
	return d
}

// ParseSpec parses the fault DSL. An empty spec yields no rules.
func ParseSpec(spec string) ([]Rule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		r, err := parseRule(raw)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// parseRule parses "target:opt,opt,...". Options never contain ':', so
// the last colon splits target (which may itself be host:port) from the
// option list.
func parseRule(raw string) (Rule, error) {
	cut := strings.LastIndexByte(raw, ':')
	if cut <= 0 || cut == len(raw)-1 {
		return Rule{}, fmt.Errorf("faults: rule %q: want target:opts", raw)
	}
	r := Rule{Target: strings.TrimSpace(raw[:cut])}
	for _, opt := range strings.Split(raw[cut+1:], ",") {
		opt = strings.TrimSpace(opt)
		if opt == "" {
			continue
		}
		key, val, hasVal := strings.Cut(opt, "=")
		var err error
		switch key {
		case "latency":
			r.Latency, err = parseDur(key, val, hasVal)
		case "jitter":
			r.Jitter, err = parseDur(key, val, hasVal)
		case "timeout":
			r.Hang, err = parseDur(key, val, hasVal)
		case "errrate":
			r.ErrRate, err = parseRate(key, val, hasVal)
		case "droprate":
			r.DropRate, err = parseRate(key, val, hasVal)
		case "errcode":
			if !hasVal {
				return Rule{}, fmt.Errorf("faults: %s needs a value", key)
			}
			r.ErrCode, err = strconv.Atoi(val)
			if err == nil && (r.ErrCode < 400 || r.ErrCode > 599) {
				err = fmt.Errorf("faults: errcode %d outside 400..599", r.ErrCode)
			}
		case "blackhole":
			if hasVal {
				return Rule{}, fmt.Errorf("faults: blackhole takes no value")
			}
			r.Hang = blackholeHang
		case "partition":
			if hasVal {
				return Rule{}, fmt.Errorf("faults: partition takes no value")
			}
			r.Partition = true
		case "flap":
			if !hasVal {
				return Rule{}, fmt.Errorf("faults: flap needs down/up durations")
			}
			down, up, ok := strings.Cut(val, "/")
			if !ok {
				return Rule{}, fmt.Errorf("faults: flap %q: want down/up", val)
			}
			r.FlapDown, err = time.ParseDuration(down)
			if err == nil {
				r.FlapUp, err = time.ParseDuration(up)
			}
			if err == nil && (r.FlapDown <= 0 || r.FlapUp <= 0) {
				err = fmt.Errorf("faults: flap durations must be positive")
			}
		default:
			return Rule{}, fmt.Errorf("faults: unknown option %q in rule %q", key, raw)
		}
		if err != nil {
			return Rule{}, err
		}
	}
	return r, nil
}

func parseDur(key, val string, hasVal bool) (time.Duration, error) {
	if !hasVal {
		return 0, fmt.Errorf("faults: %s needs a duration", key)
	}
	d, err := time.ParseDuration(val)
	if err != nil {
		return 0, fmt.Errorf("faults: %s: %w", key, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("faults: %s must be >= 0", key)
	}
	return d, nil
}

func parseRate(key, val string, hasVal bool) (float64, error) {
	if !hasVal {
		return 0, fmt.Errorf("faults: %s needs a value", key)
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("faults: %s: %w", key, err)
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("faults: %s %g outside [0,1]", key, f)
	}
	return f, nil
}
