package faults

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// InjectedError is the connection-level failure the injector produces for
// drops, partitions, flap-down windows, and expired hangs. Callers can
// errors.As on it to tell injected faults from real ones.
type InjectedError struct {
	Target string
	Kind   string // "drop", "timeout"
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected %s for %s", e.Kind, e.Target)
}

// Timeout reports whether the fault models a timeout, mirroring net.Error
// so generic retry logic treats injected hangs like real deadline misses.
func (e *InjectedError) Timeout() bool { return e.Kind == "timeout" }

// Transport is a fault-injecting http.RoundTripper: every outbound
// request is first judged by the injector (keyed on the request's
// host:port), then forwarded to the inner transport if it survives.
type Transport struct {
	inner http.RoundTripper
	inj   *Injector
}

// NewTransport wraps inner (nil means http.DefaultTransport) with inj.
// A nil injector passes everything through untouched.
func NewTransport(inner http.RoundTripper, inj *Injector) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{inner: inner, inj: inj}
}

// RoundTrip applies the injector's decision: delay, then hang/drop/
// synthetic status, then the real round trip. Delays and hangs respect
// the request context, so per-hop deadlines still bound a faulted call.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.inj == nil {
		return t.inner.RoundTrip(req)
	}
	target := req.URL.Host
	d := t.inj.Decide(target)
	if d.Delay > 0 {
		if err := sleepCtx(req.Context(), d.Delay); err != nil {
			return nil, err
		}
	}
	if d.Hang > 0 {
		if err := sleepCtx(req.Context(), d.Hang); err != nil {
			return nil, err
		}
		return nil, &InjectedError{Target: target, Kind: "timeout"}
	}
	if d.Drop {
		return nil, &InjectedError{Target: target, Kind: "drop"}
	}
	if d.Code > 0 {
		return syntheticResponse(req, d.Code), nil
	}
	return t.inner.RoundTrip(req)
}

// syntheticResponse builds the injected 5xx reply without touching the
// network. X-Injected marks it so traces and tests can tell it apart.
func syntheticResponse(req *http.Request, code int) *http.Response {
	body := fmt.Sprintf("injected %d for %s\n", code, req.URL.Host)
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", code, http.StatusText(code)),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"X-Injected": []string{"true"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// Middleware is the server-side twin of Transport: inbound requests to a
// node running under chaos are judged against the node's own label (its
// name or host:port), so a spec like "peerB:latency=50ms" can make peerB
// serve slowly instead of (or as well as) making calls *to* peerB slow.
// Drops and expired hangs abort the connection mid-response, which the
// client sees as an EOF — the closest handler-level stand-in for a reset.
func Middleware(inj *Injector, self string, next http.Handler) http.Handler {
	if inj == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := inj.Decide(self)
		if d.Delay > 0 {
			if sleepCtx(r.Context(), d.Delay) != nil {
				return
			}
		}
		if d.Hang > 0 {
			if sleepCtx(r.Context(), d.Hang) != nil {
				return
			}
			panic(http.ErrAbortHandler)
		}
		if d.Drop {
			panic(http.ErrAbortHandler)
		}
		if d.Code > 0 {
			http.Error(w, fmt.Sprintf("injected %d", d.Code), d.Code)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// sleepCtx sleeps for d or until ctx is done, returning the context error
// in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
