package faults

import (
	"context"
	"testing"
	"time"
)

func TestTimelineValidatesAndOrders(t *testing.T) {
	tl, err := NewTimeline([]TimelineEvent{
		{At: 30 * time.Millisecond, Spec: ""},
		{At: 10 * time.Millisecond, Spec: "peerA:partition"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := tl.Events()
	if len(ev) != 2 || ev[0].At != 10*time.Millisecond || ev[1].At != 30*time.Millisecond {
		t.Errorf("events not ordered by offset: %+v", ev)
	}

	if _, err := NewTimeline([]TimelineEvent{{At: -time.Second, Spec: ""}}); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := NewTimeline([]TimelineEvent{{At: 0, Spec: "peerA:bogus=1"}}); err == nil {
		t.Error("unparsable spec accepted at construction")
	}
}

func TestTimelineRunAppliesInOrder(t *testing.T) {
	tl, err := NewTimeline([]TimelineEvent{
		{At: 0, Spec: "a:partition"},
		{At: 20 * time.Millisecond, Spec: "b:partition"},
		{At: 40 * time.Millisecond, Spec: ""},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	start := time.Now()
	var at []time.Duration
	err = tl.Run(context.Background(), func(spec string) error {
		got = append(got, spec)
		at = append(at, time.Since(start))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a:partition", "b:partition", ""}
	if len(got) != len(want) {
		t.Fatalf("applied %d specs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("apply %d = %q, want %q", i, got[i], want[i])
		}
	}
	// Events must not fire early (sleeps may overshoot, never undershoot).
	if at[1] < 20*time.Millisecond || at[2] < 40*time.Millisecond {
		t.Errorf("events fired early: %v", at)
	}
}

func TestTimelineRunDrivesInjector(t *testing.T) {
	inj, err := New("", 1)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := NewTimeline([]TimelineEvent{
		{At: 0, Spec: "peerA:partition"},
		{At: 15 * time.Millisecond, Spec: ""},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- tl.Run(context.Background(), inj.SetSpec) }()

	deadline := time.Now().Add(2 * time.Second)
	for !inj.Decide("peerA:80").Drop {
		if time.Now().After(deadline) {
			t.Fatal("partition never applied")
		}
		time.Sleep(time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if d := inj.Decide("peerA:80"); d.Drop {
		t.Error("partition still active after heal event")
	}
}

func TestTimelineRunHonorsContext(t *testing.T) {
	tl, err := NewTimeline([]TimelineEvent{{At: time.Hour, Spec: ""}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := tl.Run(ctx, func(string) error { return nil }); err != context.DeadlineExceeded {
		t.Errorf("Run under expired context = %v, want DeadlineExceeded", err)
	}
}
