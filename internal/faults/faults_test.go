package faults

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseSpecGrammar(t *testing.T) {
	rules, err := ParseSpec("peerB:latency=200ms,errrate=0.1; 127.0.0.1:8002:jitter=5ms,errcode=502,droprate=0.25 ; *:flap=1s/2s")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("got %d rules: %+v", len(rules), rules)
	}
	r := rules[0]
	if r.Target != "peerB" || r.Latency != 200*time.Millisecond || r.ErrRate != 0.1 {
		t.Errorf("rule 0 = %+v", r)
	}
	r = rules[1]
	if r.Target != "127.0.0.1:8002" || r.Jitter != 5*time.Millisecond || r.ErrCode != 502 || r.DropRate != 0.25 {
		t.Errorf("rule 1 = %+v", r)
	}
	r = rules[2]
	if r.Target != "*" || r.FlapDown != time.Second || r.FlapUp != 2*time.Second {
		t.Errorf("rule 2 = %+v", r)
	}

	if rules, err := ParseSpec(""); err != nil || rules != nil {
		t.Errorf("empty spec = %v, %v; want nil, nil", rules, err)
	}
	if rules, err := ParseSpec("x:partition"); err != nil || !rules[0].Partition {
		t.Errorf("partition spec = %+v, %v", rules, err)
	}
	if rules, err := ParseSpec("x:blackhole"); err != nil || rules[0].Hang < time.Minute {
		t.Errorf("blackhole spec = %+v, %v", rules, err)
	}
	if rules, err := ParseSpec("x:timeout=3s"); err != nil || rules[0].Hang != 3*time.Second {
		t.Errorf("timeout spec = %+v, %v", rules, err)
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"noopts",          // no colon
		"x:",              // empty opts
		"x:latency",       // missing value
		"x:latency=fast",  // bad duration
		"x:errrate=1.5",   // rate out of range
		"x:errrate=-0.1",  // negative rate
		"x:errcode=200",   // not an error code
		"x:flap=1s",       // missing up duration
		"x:flap=0s/1s",    // non-positive
		"x:wobble=1",      // unknown key
		"x:partition=yes", // flag with value
		"x:latency=-5ms",  // negative duration
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestDecideMatchesFirstRule(t *testing.T) {
	inj, err := New("127.0.0.1:9001:partition;*:latency=5ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := inj.Decide("127.0.0.1:9001"); !d.Drop {
		t.Errorf("specific rule not applied: %+v", d)
	}
	if d := inj.Decide("127.0.0.1:9999"); d.Drop || d.Delay != 5*time.Millisecond {
		t.Errorf("wildcard fallback not applied: %+v", d)
	}
	// Host-only targets match any port.
	inj2, _ := New("10.0.0.1:partition", 1)
	if d := inj2.Decide("10.0.0.1:8080"); !d.Drop {
		t.Errorf("host rule did not match host:port: %+v", d)
	}
	if d := inj2.Decide("10.0.0.2:8080"); d.Drop {
		t.Errorf("host rule matched wrong host: %+v", d)
	}
}

func TestDecideDeterministicUnderSeed(t *testing.T) {
	run := func(seed int64) []bool {
		inj, err := New("*:errrate=0.5", seed)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = inj.Decide("a:1").Code != 0
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical sequences (suspicious)")
	}
}

func TestFlapSchedule(t *testing.T) {
	inj, err := New("peer:flap=100ms/200ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1000, 0)
	now := base
	inj.SetClock(func() time.Time { return now })

	at := func(offset time.Duration) bool {
		now = base.Add(offset)
		return inj.Decide("peer").Drop
	}
	cases := []struct {
		off  time.Duration
		down bool
	}{
		{0, true}, // start of first down window
		{50 * time.Millisecond, true},
		{150 * time.Millisecond, false}, // up window
		{299 * time.Millisecond, false},
		{300 * time.Millisecond, true}, // second cycle
		{350 * time.Millisecond, true},
		{450 * time.Millisecond, false},
	}
	for _, c := range cases {
		if got := at(c.off); got != c.down {
			t.Errorf("at %v: down=%v, want %v", c.off, got, c.down)
		}
	}
	if n := inj.Counts().Flaps; n == 0 {
		t.Error("flap counter never incremented")
	}
}

func TestTransportInjectsErrorAndDrop(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "real")
	}))
	defer backend.Close()

	inj, err := New("*:errrate=1,errcode=503", 1)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: NewTransport(nil, inj)}
	resp, err := client.Get(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 || resp.Header.Get("X-Injected") != "true" {
		t.Errorf("status %d, X-Injected %q; want injected 503", resp.StatusCode, resp.Header.Get("X-Injected"))
	}
	if !strings.Contains(string(body), "injected") {
		t.Errorf("body %q", body)
	}
	if inj.Counts().Errors != 1 {
		t.Errorf("counts = %+v", inj.Counts())
	}

	if err := inj.SetSpec("*:droprate=1"); err != nil {
		t.Fatal(err)
	}
	_, err = client.Get(backend.URL)
	var ie *InjectedError
	if err == nil || !errors.As(err, &ie) || ie.Kind != "drop" {
		t.Errorf("drop not injected: %v", err)
	}

	// Healing the spec restores real responses.
	if err := inj.SetSpec(""); err != nil {
		t.Fatal(err)
	}
	resp, err = client.Get(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "real" {
		t.Errorf("healed body %q", body)
	}
}

func TestTransportHangRespectsContext(t *testing.T) {
	inj, err := New("*:blackhole", 1)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewTransport(nil, inj)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://192.0.2.1:9/x", nil)
	start := time.Now()
	_, err = rt.RoundTrip(req)
	if err == nil {
		t.Fatal("blackholed request succeeded")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("blackhole ignored context deadline: took %v", elapsed)
	}
	if inj.Counts().Hangs != 1 {
		t.Errorf("counts = %+v", inj.Counts())
	}
}

func TestTransportAddsLatency(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer backend.Close()
	inj, err := New("*:latency=40ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: NewTransport(nil, inj)}
	start := time.Now()
	resp, err := client.Get(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("latency not injected: %v", elapsed)
	}
	if inj.Counts().Latency != 1 {
		t.Errorf("counts = %+v", inj.Counts())
	}
}

func TestMiddlewareInjectsServerSide(t *testing.T) {
	inj, err := New("me:errrate=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	var served bool
	h := Middleware(inj, "me", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served = true
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 || served {
		t.Errorf("status %d served=%v; want injected 503", resp.StatusCode, served)
	}

	// Drop aborts the connection: the client sees a transport error.
	if err := inj.SetSpec("me:partition"); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(srv.URL); err == nil {
		t.Error("server-side drop produced a clean response")
	}

	// A label the spec does not mention passes straight through.
	if err := inj.SetSpec("someone-else:errrate=1"); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || !served {
		t.Errorf("untargeted request: status %d served=%v", resp.StatusCode, served)
	}
}
