package replacement

import (
	"io"
	"testing"
	"testing/quick"

	"beyondcache/internal/trace"
)

func mustCache(t *testing.T, p Policy, capacity int64) *Cache {
	t.Helper()
	c, err := New(p, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Policy(0), 100); err == nil {
		t.Error("zero policy accepted")
	}
	if _, err := New(Policy(9), 100); err == nil {
		t.Error("unknown policy accepted")
	}
	for _, p := range Policies() {
		if _, err := New(p, 100); err != nil {
			t.Errorf("%v rejected: %v", p, err)
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	want := map[Policy]string{
		LRU: "LRU", LFU: "LFU", Size: "SIZE", GreedyDualSize: "GreedyDual-Size",
	}
	for p, w := range want {
		if p.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), w)
		}
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	c := mustCache(t, LRU, 30)
	c.Put(Object{ID: 1, Size: 10})
	c.Put(Object{ID: 2, Size: 10})
	c.Put(Object{ID: 3, Size: 10})
	c.Get(1) // refresh 1; 2 is now the LRU victim
	c.Put(Object{ID: 4, Size: 10})
	if c.Contains(2) {
		t.Error("LRU kept the least recently used entry")
	}
	for _, id := range []uint64{1, 3, 4} {
		if !c.Contains(id) {
			t.Errorf("entry %d wrongly evicted", id)
		}
	}
}

func TestLFUEvictsColdest(t *testing.T) {
	c := mustCache(t, LFU, 30)
	c.Put(Object{ID: 1, Size: 10})
	c.Put(Object{ID: 2, Size: 10})
	c.Put(Object{ID: 3, Size: 10})
	// Heat up 1 and 3.
	c.Get(1)
	c.Get(1)
	c.Get(3)
	c.Put(Object{ID: 4, Size: 10}) // 2 has freq 1: the victim
	if c.Contains(2) {
		t.Error("LFU kept the least frequently used entry")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Error("hot entries evicted")
	}
}

func TestSizeEvictsLargest(t *testing.T) {
	c := mustCache(t, Size, 100)
	c.Put(Object{ID: 1, Size: 60})
	c.Put(Object{ID: 2, Size: 30})
	c.Put(Object{ID: 3, Size: 30}) // over: evicts the 60-byte object
	if c.Contains(1) {
		t.Error("SIZE kept the largest object")
	}
	if !c.Contains(2) || !c.Contains(3) {
		t.Error("small objects evicted")
	}
}

func TestGDSAgesUnreferenced(t *testing.T) {
	c := mustCache(t, GreedyDualSize, 30)
	c.Put(Object{ID: 1, Size: 10})
	c.Put(Object{ID: 2, Size: 10})
	c.Put(Object{ID: 3, Size: 10})
	// Force evictions to raise the inflation floor; freshly inserted
	// objects then outrank the untouched survivors.
	c.Put(Object{ID: 4, Size: 10})
	c.Put(Object{ID: 5, Size: 10})
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	if !c.Contains(5) {
		t.Error("newest entry evicted despite inflation aging")
	}
	if c.Evictions() != 2 {
		t.Errorf("evictions = %d, want 2", c.Evictions())
	}
}

func TestVersioningAndRemove(t *testing.T) {
	c := mustCache(t, LRU, 0)
	c.Put(Object{ID: 1, Size: 10, Version: 1})
	if _, ok := c.GetVersion(1, 2); ok {
		t.Error("stale version served")
	}
	if c.Contains(1) {
		t.Error("stale copy not invalidated")
	}
	c.Put(Object{ID: 2, Size: 10, Version: 3})
	if _, ok := c.GetVersion(2, 3); !ok {
		t.Error("current version missed")
	}
	if !c.Remove(2) || c.Remove(2) {
		t.Error("Remove semantics wrong")
	}
}

func TestOversizedRejected(t *testing.T) {
	for _, p := range Policies() {
		c := mustCache(t, p, 10)
		if c.Put(Object{ID: 1, Size: 11}) {
			t.Errorf("%v: oversized object accepted", p)
		}
	}
}

func TestRefreshAdjustsBytes(t *testing.T) {
	c := mustCache(t, LRU, 100)
	c.Put(Object{ID: 1, Size: 10})
	c.Put(Object{ID: 1, Size: 50})
	if c.Used() != 50 || c.Len() != 1 {
		t.Errorf("used=%d len=%d, want 50/1", c.Used(), c.Len())
	}
}

// TestCapacityNeverExceededQuick: under arbitrary operation sequences every
// policy respects its byte budget and keeps index/heap consistent.
func TestCapacityNeverExceededQuick(t *testing.T) {
	for _, p := range Policies() {
		p := p
		f := func(ops []uint16) bool {
			const capBytes = 400
			c, err := New(p, capBytes)
			if err != nil {
				return false
			}
			for _, op := range ops {
				id := uint64(op % 40)
				size := int64(op%127) + 1
				switch op % 3 {
				case 0:
					c.Put(Object{ID: id, Size: size})
				case 1:
					c.Get(id)
				case 2:
					c.Remove(id)
				}
				if c.Used() > capBytes {
					return false
				}
				if c.Len() != len(c.heap) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
			t.Errorf("%v: %v", p, err)
		}
	}
}

// TestPoliciesOnWorkload replays a trace through each policy and checks the
// classic result: size-aware policies (GDS, SIZE) beat plain LRU on
// per-request hit ratio under tight capacity, because evicting one big
// object saves many small ones.
func TestPoliciesOnWorkload(t *testing.T) {
	p := trace.DECProfile(trace.ScaleSmall)
	p.Requests = 40_000
	p.DistinctURLs = 8_000

	hitRatio := func(pol Policy) float64 {
		c := mustCache(t, pol, 8<<20)
		g := trace.MustGenerator(p)
		var hits, total int64
		for {
			r, err := g.Next()
			if err == io.EOF {
				break
			}
			if !r.Cachable() {
				continue
			}
			total++
			if _, ok := c.GetVersion(r.Object, r.Version); ok {
				hits++
				continue
			}
			c.Put(Object{ID: r.Object, Size: r.Size, Version: r.Version})
		}
		return float64(hits) / float64(total)
	}

	lru := hitRatio(LRU)
	gds := hitRatio(GreedyDualSize)
	if lru <= 0.1 {
		t.Fatalf("LRU hit ratio %.3f degenerate", lru)
	}
	if gds <= lru {
		t.Errorf("GreedyDual-Size (%.3f) did not beat LRU (%.3f) on per-request hits", gds, lru)
	}
}
