// Package replacement implements alternative cache-replacement policies as
// an ablation of the paper's LRU choice (every cache in the paper's
// simulations uses LRU). Besides LRU it provides LFU (evict the least
// frequently used), SIZE (evict the largest object first), and
// GreedyDual-Size (Cao & Irani 1997, contemporary with the paper), which
// balances recency, size, and retrieval cost.
//
// The policies share one implementation: a byte-capacity cache whose
// entries carry a priority; eviction removes the minimum-priority entry via
// a heap. Each policy is a priority rule.
package replacement

import (
	"container/heap"
	"fmt"
)

// Policy identifies a replacement rule.
type Policy int

// Policies.
const (
	LRU Policy = iota + 1
	LFU
	Size
	GreedyDualSize
)

// String labels the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case LFU:
		return "LFU"
	case Size:
		return "SIZE"
	case GreedyDualSize:
		return "GreedyDual-Size"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Object is a cached item.
type Object struct {
	ID      uint64
	Size    int64
	Version int64
}

// entry is a heap element.
type entry struct {
	obj      Object
	priority float64
	// tieBreak orders equal priorities FIFO so eviction is
	// deterministic.
	tieBreak uint64
	freq     int64
	index    int // heap index
}

// evictHeap is a min-heap over priority.
type evictHeap []*entry

func (h evictHeap) Len() int { return len(h) }
func (h evictHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority < h[j].priority
	}
	return h[i].tieBreak < h[j].tieBreak
}
func (h evictHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *evictHeap) Push(x any) {
	e := x.(*entry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *evictHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Cache is a byte-capacity cache with a pluggable replacement policy. Not
// safe for concurrent use.
type Cache struct {
	policy   Policy
	capacity int64
	used     int64
	index    map[uint64]*entry
	heap     evictHeap

	// clock is the virtual access counter used by LRU recency and tie
	// breaking.
	clock uint64
	// inflation is GreedyDual-Size's L value: the priority floor rises
	// to the last evicted entry's priority, aging older entries.
	inflation float64

	evictions int64
}

// New builds a cache. capacity <= 0 means unbounded.
func New(policy Policy, capacity int64) (*Cache, error) {
	switch policy {
	case LRU, LFU, Size, GreedyDualSize:
	default:
		return nil, fmt.Errorf("replacement: unknown policy %d", int(policy))
	}
	return &Cache{
		policy:   policy,
		capacity: capacity,
		index:    make(map[uint64]*entry),
	}, nil
}

// Policy returns the configured policy.
func (c *Cache) Policy() Policy { return c.policy }

// Len returns the number of cached objects.
func (c *Cache) Len() int { return len(c.index) }

// Used returns the bytes in use.
func (c *Cache) Used() int64 { return c.used }

// Evictions returns the eviction count.
func (c *Cache) Evictions() int64 { return c.evictions }

// priorityOf computes an entry's priority under the policy. Higher values
// survive longer.
func (c *Cache) priorityOf(e *entry) float64 {
	switch c.policy {
	case LRU:
		return float64(c.clock)
	case LFU:
		return float64(e.freq)
	case Size:
		// Bigger objects evict first: priority is inverse size.
		return 1.0 / float64(e.obj.Size+1)
	case GreedyDualSize:
		// H = L + cost/size with uniform cost: favors small objects,
		// and the rising floor L ages unreferenced entries out.
		return c.inflation + 1.0/float64(e.obj.Size+1)
	default:
		return 0
	}
}

// touch refreshes an entry's priority after an access or insert.
func (c *Cache) touch(e *entry) {
	c.clock++
	e.freq++
	e.tieBreak = c.clock
	e.priority = c.priorityOf(e)
	heap.Fix(&c.heap, e.index)
}

// Get returns the object, refreshing its standing.
func (c *Cache) Get(id uint64) (Object, bool) {
	e, ok := c.index[id]
	if !ok {
		return Object{}, false
	}
	c.touch(e)
	return e.obj, true
}

// GetVersion returns the object only if its version is >= version,
// invalidating stale copies.
func (c *Cache) GetVersion(id uint64, version int64) (Object, bool) {
	e, ok := c.index[id]
	if !ok {
		return Object{}, false
	}
	if e.obj.Version < version {
		c.remove(e)
		return Object{}, false
	}
	c.touch(e)
	return e.obj, true
}

// Contains reports presence without touching standings.
func (c *Cache) Contains(id uint64) bool {
	_, ok := c.index[id]
	return ok
}

// Put inserts or refreshes an object, evicting as needed. It reports
// whether the object is cached afterwards.
func (c *Cache) Put(obj Object) bool {
	if obj.Size < 0 {
		panic(fmt.Sprintf("replacement: negative size %d", obj.Size))
	}
	if e, ok := c.index[obj.ID]; ok {
		c.used += obj.Size - e.obj.Size
		e.obj = obj
		c.touch(e)
		c.evictForSpace(e)
		return c.Contains(obj.ID)
	}
	if c.capacity > 0 && obj.Size > c.capacity {
		return false
	}
	c.clock++
	e := &entry{obj: obj, tieBreak: c.clock, freq: 1}
	e.priority = c.priorityOf(e)
	c.index[obj.ID] = e
	heap.Push(&c.heap, e)
	c.used += obj.Size
	c.evictForSpace(e)
	return c.Contains(obj.ID)
}

// evictForSpace evicts minimum-priority entries until used fits capacity.
// keep is evicted last if nothing else can make room.
func (c *Cache) evictForSpace(keep *entry) {
	if c.capacity <= 0 {
		return
	}
	for c.used > c.capacity && len(c.heap) > 0 {
		victim := c.heap[0]
		if victim == keep {
			if len(c.heap) == 1 {
				c.remove(keep)
				c.evictions++
				return
			}
			// Evict the next-worst instead; swap-free approach:
			// temporarily pop keep, evict the new minimum, push
			// keep back.
			heap.Pop(&c.heap)
			next := c.heap[0]
			c.evictOne(next)
			heap.Push(&c.heap, keep)
			continue
		}
		c.evictOne(victim)
	}
}

// evictOne removes a victim, updating GreedyDual-Size's inflation floor.
func (c *Cache) evictOne(victim *entry) {
	if c.policy == GreedyDualSize && victim.priority > c.inflation {
		c.inflation = victim.priority
	}
	c.remove(victim)
	c.evictions++
}

// remove deletes an entry entirely.
func (c *Cache) remove(e *entry) {
	heap.Remove(&c.heap, e.index)
	delete(c.index, e.obj.ID)
	c.used -= e.obj.Size
}

// Remove deletes an object by ID.
func (c *Cache) Remove(id uint64) bool {
	e, ok := c.index[id]
	if !ok {
		return false
	}
	c.remove(e)
	return true
}

// Policies lists all replacement policies in report order.
func Policies() []Policy {
	return []Policy{LRU, LFU, Size, GreedyDualSize}
}
