// Package metrics aggregates simulation outcomes: response-time totals per
// outcome class, hit/byte-hit ratios, and bandwidth counters, plus the
// fixed-width table formatting the experiment harness uses to print the
// paper's tables and figures.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"beyondcache/internal/obs"
)

// responseBounds covers simulated response times — sub-millisecond local
// hits through multi-minute worst cases — in 23 power-of-two buckets
// (100µs ... ~420s). The same obs.Histogram type instruments the live
// prototype, so simulated and measured percentiles are directly comparable.
func responseBounds() []time.Duration {
	return obs.ExpBounds(100*time.Microsecond, 2, 23)
}

// outcomeAgg is the per-outcome accumulator. The handful of outcome labels
// (≤ 8) live in a slice scanned linearly: every call site passes the same
// string constants, so the label comparison usually short-circuits on
// pointer equality, and Add stays allocation- and hash-free — it runs once
// per simulated request.
type outcomeAgg struct {
	label string
	count int64
	time  time.Duration
	bytes int64
	hist  *obs.Histogram
}

// Response aggregates per-request outcomes.
type Response struct {
	n     int64
	total time.Duration
	bytes int64
	aggs  []outcomeAgg
	hist  *obs.Histogram
}

// NewResponse returns an empty aggregator.
func NewResponse() *Response {
	return &Response{
		aggs: make([]outcomeAgg, 0, 8),
		hist: obs.NewHistogram(responseBounds()),
	}
}

// find returns the accumulator for outcome, or nil if never recorded.
func (r *Response) find(outcome string) *outcomeAgg {
	for i := range r.aggs {
		if r.aggs[i].label == outcome {
			return &r.aggs[i]
		}
	}
	return nil
}

// agg returns the accumulator for outcome, creating it on first use.
func (r *Response) agg(outcome string) *outcomeAgg {
	if a := r.find(outcome); a != nil {
		return a
	}
	r.aggs = append(r.aggs, outcomeAgg{
		label: outcome,
		hist:  obs.NewHistogram(responseBounds()),
	})
	return &r.aggs[len(r.aggs)-1]
}

// Add records one request with the given outcome label, response time, and
// transfer size.
func (r *Response) Add(outcome string, d time.Duration, size int64) {
	r.n++
	r.total += d
	r.bytes += size
	a := r.agg(outcome)
	a.count++
	a.time += d
	a.bytes += size
	r.hist.Observe(d)
	a.hist.Observe(d)
}

// Quantile estimates the q-quantile of the response-time distribution by
// bucket interpolation (see obs.Histogram.Quantile).
func (r *Response) Quantile(q float64) time.Duration {
	return r.hist.Quantile(q)
}

// QuantileOf estimates the q-quantile of one outcome class, or 0 when the
// outcome was never recorded.
func (r *Response) QuantileOf(outcome string, q float64) time.Duration {
	a := r.find(outcome)
	if a == nil {
		return 0
	}
	return a.hist.Quantile(q)
}

// N returns the number of recorded requests.
func (r *Response) N() int64 { return r.n }

// Bytes returns the total bytes recorded.
func (r *Response) Bytes() int64 { return r.bytes }

// Mean returns the mean response time, or 0 when empty.
func (r *Response) Mean() time.Duration {
	if r.n == 0 {
		return 0
	}
	return r.total / time.Duration(r.n)
}

// Total returns the summed response time.
func (r *Response) Total() time.Duration { return r.total }

// Count returns the number of requests with the given outcome.
func (r *Response) Count(outcome string) int64 {
	if a := r.find(outcome); a != nil {
		return a.count
	}
	return 0
}

// SizeOf returns the bytes recorded under the given outcome.
func (r *Response) SizeOf(outcome string) int64 {
	if a := r.find(outcome); a != nil {
		return a.bytes
	}
	return 0
}

// MeanOf returns the mean response time of one outcome class.
func (r *Response) MeanOf(outcome string) time.Duration {
	a := r.find(outcome)
	if a == nil || a.count == 0 {
		return 0
	}
	return a.time / time.Duration(a.count)
}

// Frac returns the fraction of requests with the given outcome.
func (r *Response) Frac(outcome string) float64 {
	if r.n == 0 {
		return 0
	}
	return float64(r.Count(outcome)) / float64(r.n)
}

// ByteFrac returns the fraction of bytes with the given outcome.
func (r *Response) ByteFrac(outcome string) float64 {
	if r.bytes == 0 {
		return 0
	}
	return float64(r.SizeOf(outcome)) / float64(r.bytes)
}

// FracAny sums Frac over several outcomes.
func (r *Response) FracAny(outcomes ...string) float64 {
	f := 0.0
	for _, o := range outcomes {
		f += r.Frac(o)
	}
	return f
}

// ByteFracAny sums ByteFrac over several outcomes.
func (r *Response) ByteFracAny(outcomes ...string) float64 {
	f := 0.0
	for _, o := range outcomes {
		f += r.ByteFrac(o)
	}
	return f
}

// Outcomes returns the recorded outcome labels, sorted.
func (r *Response) Outcomes() []string {
	out := make([]string, 0, len(r.aggs))
	for i := range r.aggs {
		out = append(out, r.aggs[i].label)
	}
	sort.Strings(out)
	return out
}

// Bandwidth tracks byte flows over a virtual time span.
type Bandwidth struct {
	counters map[string]int64
}

// NewBandwidth returns an empty bandwidth tracker.
func NewBandwidth() *Bandwidth {
	return &Bandwidth{counters: make(map[string]int64, 4)}
}

// Add charges size bytes to the named flow.
func (b *Bandwidth) Add(flow string, size int64) { b.counters[flow] += size }

// Bytes returns the bytes charged to a flow.
func (b *Bandwidth) Bytes(flow string) int64 { return b.counters[flow] }

// Rate returns the flow's average rate in bytes/second over span.
func (b *Bandwidth) Rate(flow string, span time.Duration) float64 {
	if span <= 0 {
		return 0
	}
	return float64(b.counters[flow]) / span.Seconds()
}

// Table is a simple fixed-width text table builder for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row. A row wider than the header used to be silently
// truncated, dropping data from rendered tables; now the header grows
// unnamed columns to fit the widest row.
func (t *Table) AddRow(cells ...string) {
	for len(t.header) < len(cells) {
		t.header = append(t.header, "")
	}
	t.rows = append(t.rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i := range t.header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// Ms formats a duration as whole milliseconds ("1270ms").
func Ms(d time.Duration) string {
	return fmt.Sprintf("%dms", d.Milliseconds())
}

// F3 formats a float with 3 decimals.
func F3(v float64) string { return fmt.Sprintf("%.3f", v) }

// F2 formats a float with 2 decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }
