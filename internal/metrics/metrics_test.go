package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestResponseAggregation(t *testing.T) {
	r := NewResponse()
	r.Add("hit", 100*time.Millisecond, 1000)
	r.Add("hit", 200*time.Millisecond, 3000)
	r.Add("miss", 600*time.Millisecond, 4000)

	if r.N() != 3 {
		t.Errorf("N = %d, want 3", r.N())
	}
	if r.Bytes() != 8000 {
		t.Errorf("Bytes = %d, want 8000", r.Bytes())
	}
	if r.Mean() != 300*time.Millisecond {
		t.Errorf("Mean = %v, want 300ms", r.Mean())
	}
	if r.MeanOf("hit") != 150*time.Millisecond {
		t.Errorf("MeanOf(hit) = %v, want 150ms", r.MeanOf("hit"))
	}
	if r.MeanOf("absent") != 0 {
		t.Errorf("MeanOf(absent) = %v, want 0", r.MeanOf("absent"))
	}
	if r.Count("hit") != 2 || r.Count("miss") != 1 {
		t.Error("counts wrong")
	}
	if got := r.Frac("hit"); got != 2.0/3 {
		t.Errorf("Frac(hit) = %g", got)
	}
	if got := r.ByteFrac("miss"); got != 0.5 {
		t.Errorf("ByteFrac(miss) = %g, want 0.5", got)
	}
	if got := r.FracAny("hit", "miss"); got != 1.0 {
		t.Errorf("FracAny = %g, want 1", got)
	}
	if got := r.ByteFracAny("hit", "miss"); got != 1.0 {
		t.Errorf("ByteFracAny = %g, want 1", got)
	}
	if r.SizeOf("hit") != 4000 {
		t.Errorf("SizeOf(hit) = %d", r.SizeOf("hit"))
	}
	if r.Total() != 900*time.Millisecond {
		t.Errorf("Total = %v", r.Total())
	}
	outs := r.Outcomes()
	if len(outs) != 2 || outs[0] != "hit" || outs[1] != "miss" {
		t.Errorf("Outcomes = %v", outs)
	}
}

func TestResponseEmpty(t *testing.T) {
	r := NewResponse()
	if r.Mean() != 0 || r.Frac("x") != 0 || r.ByteFrac("x") != 0 {
		t.Error("empty aggregator returned nonzero stats")
	}
}

func TestBandwidth(t *testing.T) {
	b := NewBandwidth()
	b.Add("push", 1000)
	b.Add("push", 500)
	b.Add("demand", 300)
	if b.Bytes("push") != 1500 {
		t.Errorf("push bytes = %d", b.Bytes("push"))
	}
	if got := b.Rate("push", 10*time.Second); got != 150 {
		t.Errorf("rate = %g, want 150 B/s", got)
	}
	if b.Rate("push", 0) != 0 {
		t.Error("zero-span rate should be 0")
	}
	if b.Bytes("unknown") != 0 {
		t.Error("unknown flow nonzero")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Trace", "Mean", "Speedup")
	tb.AddRow("DEC", "1270ms", "1.99")
	tb.AddRow("Berkeley", "845ms", "2.79")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "Trace") || !strings.Contains(lines[0], "Speedup") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "-") {
		t.Errorf("separator missing: %q", lines[1])
	}
	if !strings.Contains(lines[2], "DEC") || !strings.Contains(lines[3], "Berkeley") {
		t.Error("rows missing")
	}
	// Columns align: "Mean" column starts at the same offset everywhere.
	idx := strings.Index(lines[0], "Mean")
	if !strings.HasPrefix(lines[2][idx:], "1270ms") {
		t.Errorf("column misaligned:\n%s", out)
	}
}

// Regression: AddRow used to silently drop cells beyond the header width;
// now the header grows unnamed columns so no data is lost.
func TestTableExtraCellsWidenHeader(t *testing.T) {
	tb := NewTable("A", "B")
	tb.AddRow("1", "2", "3")
	tb.AddRow("only")
	out := tb.String()
	if !strings.Contains(out, "3") {
		t.Errorf("extra cell dropped:\n%s", out)
	}
	if !strings.Contains(out, "only") {
		t.Error("short row missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want header+separator+2 rows:\n%s", len(lines), out)
	}
	// The widened third column gets a separator segment too.
	if got := strings.Count(lines[1], "-"); got < 3 {
		t.Errorf("separator not widened: %q", lines[1])
	}
	// Later rows align against the widened width.
	if !strings.HasPrefix(lines[2][strings.Index(lines[0], "B"):], "2") {
		t.Errorf("column misaligned:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if Ms(1270*time.Millisecond) != "1270ms" {
		t.Errorf("Ms = %q", Ms(1270*time.Millisecond))
	}
	if F3(0.12345) != "0.123" {
		t.Errorf("F3 = %q", F3(0.12345))
	}
	if F2(1.999) != "2.00" {
		t.Errorf("F2 = %q", F2(1.999))
	}
}
