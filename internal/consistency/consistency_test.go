package consistency

import (
	"io"
	"testing"
	"time"

	"beyondcache/internal/trace"
)

func req(seq int64, t time.Duration, object uint64, version int64) trace.Request {
	return trace.Request{Seq: seq, Time: t, Object: object, Size: 100, Version: version}
}

func mustNew(t *testing.T, cfg Config) *Simulator {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := New(Config{Kind: TTL}); err == nil {
		t.Error("TTL without duration accepted")
	}
	if _, err := New(Config{Kind: Lease}); err == nil {
		t.Error("lease without duration accepted")
	}
	if _, err := New(Config{Kind: Kind(99)}); err == nil {
		t.Error("unknown protocol accepted")
	}
	for _, k := range []Kind{Strong, Poll} {
		if _, err := New(Config{Kind: k}); err != nil {
			t.Errorf("%v rejected: %v", k, err)
		}
	}
}

func TestStrongNeverServesStale(t *testing.T) {
	s := mustNew(t, Config{Kind: Strong})
	s.Process(req(0, 0, 1, 1))
	s.Process(req(1, time.Second, 1, 1)) // fresh hit
	s.Process(req(2, 2*time.Second, 1, 2))
	st := s.Stats()
	if st.StaleHits != 0 {
		t.Errorf("strong protocol served %d stale hits", st.StaleHits)
	}
	if st.FreshHits != 1 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
}

func TestTTLServesStaleWithinWindow(t *testing.T) {
	s := mustNew(t, Config{Kind: TTL, TTL: time.Hour})
	s.Process(req(0, 0, 1, 1))
	// The object changed (version 2) but the copy is younger than the
	// TTL: a weakly consistent cache serves it anyway.
	s.Process(req(1, time.Minute, 1, 2))
	if st := s.Stats(); st.StaleHits != 1 {
		t.Errorf("TTL stale hits = %d, want 1 (stats %+v)", st.StaleHits, st)
	}
}

func TestTTLDiscardsGoodData(t *testing.T) {
	s := mustNew(t, Config{Kind: TTL, TTL: time.Hour})
	s.Process(req(0, 0, 1, 1))
	// Two hours later the object is unchanged, but the TTL discarded it.
	s.Process(req(1, 2*time.Hour, 1, 1))
	st := s.Stats()
	if st.DiscardedGood != 1 {
		t.Errorf("discarded-good = %d, want 1 (stats %+v)", st.DiscardedGood, st)
	}
	if st.Misses != 2 {
		t.Errorf("misses = %d, want 2", st.Misses)
	}
}

func TestPollValidatesEveryHit(t *testing.T) {
	s := mustNew(t, Config{Kind: Poll})
	s.Process(req(0, 0, 1, 1))
	s.Process(req(1, time.Second, 1, 1))
	s.Process(req(2, 2*time.Second, 1, 2)) // changed: validation + refetch
	st := s.Stats()
	if st.Validations != 2 {
		t.Errorf("validations = %d, want 2", st.Validations)
	}
	if st.StaleHits != 0 {
		t.Error("poll served stale data")
	}
	if st.FreshHits != 1 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLeaseFreeWithinTermRenewsAfter(t *testing.T) {
	s := mustNew(t, Config{Kind: Lease, LeaseDuration: time.Minute})
	s.Process(req(0, 0, 1, 1))
	// Within the lease: fresh hit, no validation.
	s.Process(req(1, 30*time.Second, 1, 1))
	if st := s.Stats(); st.Validations != 0 || st.FreshHits != 1 {
		t.Errorf("within-lease stats = %+v", st)
	}
	// After expiry: renewal costs one validation.
	s.Process(req(2, 2*time.Minute, 1, 1))
	if st := s.Stats(); st.Validations != 1 || st.FreshHits != 2 {
		t.Errorf("post-expiry stats = %+v", st)
	}
	// A change within a valid lease is an invalidation, never stale.
	s.Process(req(3, 2*time.Minute+time.Second, 1, 2))
	st := s.Stats()
	if st.StaleHits != 0 {
		t.Error("lease served stale data within term")
	}
	if st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
}

func TestLeaseCheaperThanPollSafeAsStrong(t *testing.T) {
	// The design point of leases: strong-consistency semantics at a
	// fraction of poll's message cost.
	p := trace.DECProfile(trace.ScaleSmall)
	p.Requests = 30_000
	p.DistinctURLs = 6_000

	run := func(cfg Config) Stats {
		s := mustNew(t, cfg)
		g := trace.MustGenerator(p)
		for {
			r, err := g.Next()
			if err == io.EOF {
				break
			}
			s.Process(r)
		}
		return s.Stats()
	}
	poll := run(Config{Kind: Poll})
	lease := run(Config{Kind: Lease, LeaseDuration: scaledLease(p)})
	strong := run(Config{Kind: Strong})

	if lease.StaleHits != 0 || poll.StaleHits != 0 || strong.StaleHits != 0 {
		t.Error("a strongly consistent protocol served stale data")
	}
	if lease.MessagesPerRequest() >= poll.MessagesPerRequest() {
		t.Errorf("lease messages/request (%.3f) not below poll (%.3f)",
			lease.MessagesPerRequest(), poll.MessagesPerRequest())
	}
	// All three serve the same fresh data (true hit ratios agree).
	if d := lease.TrueHitRatio() - strong.TrueHitRatio(); d > 0.01 || d < -0.01 {
		t.Errorf("lease true hit ratio %.3f != strong %.3f", lease.TrueHitRatio(), strong.TrueHitRatio())
	}
}

// scaledLease picks a lease term proportional to the compressed trace span.
func scaledLease(p trace.Profile) time.Duration {
	return p.Span() / 200
}

func TestWeakConsistencyDistortsHitRates(t *testing.T) {
	// The Section 2.2.1 claim: TTL either inflates apparent hit rates
	// (stale hits) or deflates true ones (discarded good data).
	p := trace.BerkeleyProfile(trace.ScaleSmall) // update-heavy
	p.Requests = 30_000
	p.DistinctURLs = 6_000

	run := func(cfg Config) Stats {
		s := mustNew(t, cfg)
		g := trace.MustGenerator(p)
		for {
			r, err := g.Next()
			if err == io.EOF {
				break
			}
			s.Process(r)
		}
		return s.Stats()
	}
	strong := run(Config{Kind: Strong})
	// A long TTL on an update-heavy trace: stale hits inflate the
	// apparent hit rate above strong's true rate.
	longTTL := run(Config{Kind: TTL, TTL: p.Span()})
	if longTTL.StaleHits == 0 {
		t.Fatal("long TTL produced no stale hits on an update-heavy trace")
	}
	if longTTL.ApparentHitRatio() <= strong.TrueHitRatio() {
		t.Errorf("long-TTL apparent hit ratio %.3f not above strong %.3f",
			longTTL.ApparentHitRatio(), strong.TrueHitRatio())
	}
	// A short TTL: discarded-good requests deflate the true hit rate
	// below strong's.
	shortTTL := run(Config{Kind: TTL, TTL: p.Span() / 500})
	if shortTTL.DiscardedGood == 0 {
		t.Fatal("short TTL discarded nothing")
	}
	if shortTTL.TrueHitRatio() >= strong.TrueHitRatio() {
		t.Errorf("short-TTL true hit ratio %.3f not below strong %.3f",
			shortTTL.TrueHitRatio(), strong.TrueHitRatio())
	}
}

func TestStatsDerivedMetrics(t *testing.T) {
	s := Stats{Requests: 10, FreshHits: 4, StaleHits: 2, Validations: 5, Invalidations: 5}
	if s.ApparentHitRatio() != 0.6 {
		t.Errorf("apparent = %g", s.ApparentHitRatio())
	}
	if s.TrueHitRatio() != 0.4 {
		t.Errorf("true = %g", s.TrueHitRatio())
	}
	if s.StaleRate() != 0.2 {
		t.Errorf("stale = %g", s.StaleRate())
	}
	if s.MessagesPerRequest() != 1.0 {
		t.Errorf("messages = %g", s.MessagesPerRequest())
	}
	var empty Stats
	if empty.ApparentHitRatio() != 0 || empty.MessagesPerRequest() != 0 {
		t.Error("empty stats nonzero")
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range Kinds() {
		if k.String() == "" {
			t.Errorf("kind %d has empty label", int(k))
		}
	}
	if Kind(42).String() != "Kind(42)" {
		t.Error("unknown kind label")
	}
}
