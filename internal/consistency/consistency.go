// Package consistency implements the cache-consistency protocols the paper
// weighs in Section 2.2.1. The simulations assume strong consistency
// (invalidating every cached copy when data changes) because weak
// consistency "distorts cache performance either by increasing apparent hit
// rates by counting hits to stale data or by reducing apparent hit rates by
// discarding perfectly good data". This package makes that distortion
// measurable by replaying a workload under:
//
//   - Strong: server-driven invalidation (the paper's assumption).
//   - TTL: discard anything older than a fixed age — Squid's ad hoc rule
//     ("current Squid caches discard any data older than two days").
//   - Poll: validate with the server (if-modified-since) on every access.
//   - Lease: server-granted leases (Yin et al., cited as [41]): reads
//     within a lease are fresh for free; expired leases are renewed with a
//     validation; the server invalidates lease holders on writes.
package consistency

import (
	"fmt"
	"time"

	"beyondcache/internal/trace"
)

// Kind selects a protocol.
type Kind int

// Protocols.
const (
	Strong Kind = iota + 1
	TTL
	Poll
	Lease
)

// String labels the protocol.
func (k Kind) String() string {
	switch k {
	case Strong:
		return "Strong (invalidate)"
	case TTL:
		return "TTL"
	case Poll:
		return "Poll every access"
	case Lease:
		return "Leases"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config parameterizes a protocol run.
type Config struct {
	// Kind selects the protocol.
	Kind Kind
	// TTL is the discard age for the TTL protocol (Squid's rule is two
	// days; scale it with compressed traces).
	TTL time.Duration
	// LeaseDuration is the lease term for the Lease protocol.
	LeaseDuration time.Duration
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch c.Kind {
	case Strong, Poll:
		return nil
	case TTL:
		if c.TTL <= 0 {
			return fmt.Errorf("consistency: TTL protocol needs a positive TTL")
		}
		return nil
	case Lease:
		if c.LeaseDuration <= 0 {
			return fmt.Errorf("consistency: lease protocol needs a positive duration")
		}
		return nil
	default:
		return fmt.Errorf("consistency: unknown protocol %d", int(c.Kind))
	}
}

// Stats counts what each protocol serves and what it costs.
type Stats struct {
	// Requests is the number of cachable requests replayed.
	Requests int64
	// FreshHits served current data from the cache.
	FreshHits int64
	// StaleHits served outdated data from the cache (weak consistency's
	// first distortion).
	StaleHits int64
	// DiscardedGood counts requests that re-fetched data the cache had
	// discarded even though it was still current (the second
	// distortion).
	DiscardedGood int64
	// Misses fetched from the server for any other reason (first
	// access, genuine update).
	Misses int64
	// Validations counts round trips that only checked freshness.
	Validations int64
	// Invalidations counts server-to-cache invalidation messages.
	Invalidations int64
}

// ApparentHitRatio counts stale hits as hits, as a weakly consistent cache
// would report.
func (s Stats) ApparentHitRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.FreshHits+s.StaleHits) / float64(s.Requests)
}

// TrueHitRatio counts only fresh data served from the cache.
func (s Stats) TrueHitRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.FreshHits) / float64(s.Requests)
}

// StaleRate is the fraction of requests served stale data.
func (s Stats) StaleRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.StaleHits) / float64(s.Requests)
}

// MessagesPerRequest is the control-message overhead (validations plus
// invalidations) per request.
func (s Stats) MessagesPerRequest() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Validations+s.Invalidations) / float64(s.Requests)
}

// entry is a cached copy's consistency state.
type entry struct {
	version     int64
	fetchedAt   time.Duration
	leaseExpiry time.Duration
}

// Simulator replays a workload against an infinite shared cache under one
// consistency protocol. (Infinite capacity isolates consistency effects
// from replacement effects.)
type Simulator struct {
	cfg     Config
	entries map[uint64]*entry
	stats   Stats
}

// New builds a simulator.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{
		cfg:     cfg,
		entries: make(map[uint64]*entry),
	}, nil
}

// Process replays one request. Error and uncachable requests are skipped.
func (s *Simulator) Process(req trace.Request) {
	if !req.Cachable() {
		return
	}
	s.stats.Requests++
	now := req.Time

	e, cached := s.entries[req.Object]
	if !cached {
		s.stats.Misses++
		s.fetch(req, now)
		return
	}
	fresh := e.version >= req.Version

	switch s.cfg.Kind {
	case Strong:
		// The server invalidated the copy the moment the object
		// changed; a stale entry is simply gone.
		if !fresh {
			s.stats.Invalidations++
			s.stats.Misses++
			s.fetch(req, now)
			return
		}
		s.stats.FreshHits++

	case TTL:
		if now-e.fetchedAt > s.cfg.TTL {
			// Discarded by age, current or not.
			if fresh {
				s.stats.DiscardedGood++
			}
			s.stats.Misses++
			s.fetch(req, now)
			return
		}
		if fresh {
			s.stats.FreshHits++
		} else {
			s.stats.StaleHits++
		}

	case Poll:
		s.stats.Validations++
		if !fresh {
			s.stats.Misses++
			s.fetch(req, now)
			return
		}
		s.stats.FreshHits++

	case Lease:
		if now < e.leaseExpiry {
			// Within the lease the server would have invalidated us
			// on a write: a stale version means exactly that.
			if !fresh {
				s.stats.Invalidations++
				s.stats.Misses++
				s.fetch(req, now)
				return
			}
			s.stats.FreshHits++
			return
		}
		// Lease expired: renew with a validation round trip.
		s.stats.Validations++
		e.leaseExpiry = now + s.cfg.LeaseDuration
		if !fresh {
			s.stats.Misses++
			s.fetch(req, now)
			return
		}
		s.stats.FreshHits++
	}
}

// fetch installs the current version.
func (s *Simulator) fetch(req trace.Request, now time.Duration) {
	e := s.entries[req.Object]
	if e == nil {
		e = &entry{}
		s.entries[req.Object] = e
	}
	e.version = req.Version
	e.fetchedAt = now
	if s.cfg.Kind == Lease {
		e.leaseExpiry = now + s.cfg.LeaseDuration
	}
}

// Stats returns the accumulated counters.
func (s *Simulator) Stats() Stats { return s.stats }

// Kinds lists the protocols in report order.
func Kinds() []Kind { return []Kind{Strong, TTL, Poll, Lease} }
