package store

import (
	"container/list"
	"sync"
	"sync/atomic"

	"beyondcache/internal/cache"
)

// Spiller is the bounded write-behind queue between the memory tier's
// eviction callback and the disk store. Enqueue never blocks on disk I/O:
// items coalesce by id (a re-evicted object replaces its queued copy) and
// when the bound is hit the OLDEST queued item is dropped — under sustained
// pressure the freshest evictions are the ones most worth persisting, and a
// dropped item's object has now left both tiers, so the drop callback fires
// to advertise non-presence.
type Spiller struct {
	st     *Store
	limit  int
	onDrop func(cache.Object)

	mu       sync.Mutex
	cond     *sync.Cond
	items    *list.List // of *spillItem; front = oldest
	byID     map[uint64]*list.Element
	inFlight bool
	closed   bool
	done     chan struct{}

	spilled   atomic.Int64
	drops     atomic.Int64
	coalesced atomic.Int64
	errs      atomic.Int64
}

type spillItem struct {
	obj  cache.Object
	body []byte
}

// NewSpiller starts a spiller draining into st with the given queue bound
// (<= 0 picks a default of 1024 items). onDrop fires — with no spiller lock
// held — for every item that fails to reach disk (bound overflow or write
// error); it may be nil.
func NewSpiller(st *Store, limit int, onDrop func(cache.Object)) *Spiller {
	if limit <= 0 {
		limit = 1024
	}
	s := &Spiller{
		st:     st,
		limit:  limit,
		onDrop: onDrop,
		items:  list.New(),
		byID:   make(map[uint64]*list.Element),
		done:   make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.run()
	return s
}

// Enqueue queues one evicted object for write-behind. Safe to call from the
// cache eviction callback: it takes only the spiller mutex and never waits
// on disk.
func (s *Spiller) Enqueue(obj cache.Object, body []byte) {
	var dropped cache.Object
	drop := false

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if e, ok := s.byID[obj.ID]; ok {
		it := e.Value.(*spillItem)
		if obj.Version >= it.obj.Version {
			it.obj, it.body = obj, body
		}
		s.coalesced.Add(1)
		s.mu.Unlock()
		return
	}
	if s.items.Len() >= s.limit {
		front := s.items.Front()
		it := front.Value.(*spillItem)
		s.items.Remove(front)
		delete(s.byID, it.obj.ID)
		dropped, drop = it.obj, true
		s.drops.Add(1)
	}
	s.byID[obj.ID] = s.items.PushBack(&spillItem{obj: obj, body: body})
	s.cond.Broadcast()
	s.mu.Unlock()

	if drop && s.onDrop != nil {
		s.onDrop(dropped)
	}
}

// peek returns the queued copy of an object, if any — the in-between state
// where an object has left memory but not yet reached disk. The returned
// body aliases the queued slice; bodies are immutable throughout the node.
func (s *Spiller) peek(id uint64) (cache.Object, []byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.byID[id]; ok {
		it := e.Value.(*spillItem)
		return it.obj, it.body, true
	}
	return cache.Object{}, nil, false
}

// Discard removes a queued spill without firing the drop callback (the
// purge path owns its own invalidate). It reports whether an item was
// queued.
func (s *Spiller) Discard(id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byID[id]
	if ok {
		s.items.Remove(e)
		delete(s.byID, id)
		if s.items.Len() == 0 && !s.inFlight {
			s.cond.Broadcast()
		}
	}
	return ok
}

// Flush blocks until every item queued before the call has been written
// (or dropped).
func (s *Spiller) Flush() {
	s.mu.Lock()
	for s.items.Len() > 0 || s.inFlight {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Close drains the remaining queue, then stops the worker. Enqueues after
// Close are ignored.
func (s *Spiller) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.done
}

// Depth returns the current queue length.
func (s *Spiller) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.items.Len()
}

// SpillStats is a point-in-time snapshot of spill counters.
type SpillStats struct {
	Depth     int
	Limit     int
	Spilled   int64
	Drops     int64
	Coalesced int64
	Errors    int64
}

// StatsSnapshot returns current counters and depth.
func (s *Spiller) StatsSnapshot() SpillStats {
	return SpillStats{
		Depth:     s.Depth(),
		Limit:     s.limit,
		Spilled:   s.spilled.Load(),
		Drops:     s.drops.Load(),
		Coalesced: s.coalesced.Load(),
		Errors:    s.errs.Load(),
	}
}

func (s *Spiller) run() {
	defer close(s.done)
	s.mu.Lock()
	for {
		for s.items.Len() == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.items.Len() == 0 {
			// closed and drained
			s.mu.Unlock()
			return
		}
		front := s.items.Front()
		it := front.Value.(*spillItem)
		s.items.Remove(front)
		delete(s.byID, it.obj.ID)
		s.inFlight = true
		s.mu.Unlock()

		err := s.st.Put(it.obj, it.body)
		if err == nil {
			s.spilled.Add(1)
		} else {
			s.errs.Add(1)
			if s.onDrop != nil {
				s.onDrop(it.obj)
			}
		}

		s.mu.Lock()
		s.inFlight = false
		if s.items.Len() == 0 {
			s.cond.Broadcast() // wake Flush waiters
		}
	}
}
