package store

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"sort"
	"testing"
	"time"

	"beyondcache/internal/cache"
)

// Run with -bench-store-out to record the disk tier's read-latency and
// recovery-time curves (the BENCH_store.json the repo ships):
//
//	go test ./internal/store -run TestRecordStoreBench \
//	    -bench-store-out ../../BENCH_store.json
var benchStoreOut = flag.String("bench-store-out", "", "write the store tier bench JSON to this path")

type storeBenchRead struct {
	Tier  string  `json:"tier"`
	P50Us float64 `json:"p50_us"`
	P99Us float64 `json:"p99_us"`
}

type storeBenchRecovery struct {
	Objects    int     `json:"objects"`
	Bytes      int64   `json:"bytes"`
	RecoveryMs float64 `json:"recovery_ms"`
}

type storeBenchFile struct {
	Description string               `json:"description"`
	ObjectBytes int                  `json:"object_bytes"`
	Reads       []storeBenchRead     `json:"reads"`
	Recovery    []storeBenchRecovery `json:"recovery"`
}

// quantileUS sorts durations in place and returns the q-quantile in
// fractional microseconds.
func quantileUS(d []time.Duration, q float64) float64 {
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	i := int(q * float64(len(d)-1))
	return float64(d[i]) / float64(time.Microsecond)
}

// TestRecordStoreBench measures serve latency per tier — memory hit, disk
// hit, compressed disk hit — and the boot recovery scan's duration as the
// on-disk population grows, then writes the curves to -bench-store-out.
// Skipped without the flag (CI runs the cheap Benchmark* smokes instead).
func TestRecordStoreBench(t *testing.T) {
	if *benchStoreOut == "" {
		t.Skip("set -bench-store-out to record the store bench")
	}
	const (
		objectBytes = 4096
		population  = 512
		reads       = 4000
	)
	// Repetitive content so the compressed case actually compresses, like
	// the HTML the paper's workloads fetched.
	body := bytes.Repeat([]byte("<li><a href=/doc>doc</a></li>\n"), objectBytes/30+1)[:objectBytes]

	doc := storeBenchFile{
		Description: "Persistent disk tier (internal/store): serve latency per tier on a 4 KiB object (p50/p99 over sequential reads), and boot recovery-scan duration vs on-disk population (1 KiB objects, 8 workers). Memory is the sharded cache hit; disk is a verify-on-read store hit; disk-compressed adds flate decompression.",
		ObjectBytes: objectBytes,
	}

	// Memory tier: the sharded cache's Get.
	mem := cache.NewSharded(1, int64(population*2*objectBytes))
	for i := 1; i <= population; i++ {
		mem.Put(cache.Object{ID: uint64(i), Size: int64(objectBytes), Version: 1}, body)
	}
	lat := make([]time.Duration, 0, reads)
	for i := 0; i < reads; i++ {
		id := uint64(i%population + 1)
		start := time.Now()
		if _, _, ok := mem.Get(id); !ok {
			t.Fatal("memory miss")
		}
		lat = append(lat, time.Since(start))
	}
	doc.Reads = append(doc.Reads, storeBenchRead{Tier: "memory", P50Us: quantileUS(lat, 0.50), P99Us: quantileUS(lat, 0.99)})

	// Disk tiers, plain and compressed.
	for _, c := range []struct {
		tier string
		opts Options
	}{
		{"disk", Options{}},
		{"disk-compressed", Options{CompressMin: 1024}},
	} {
		s := openT(t, c.opts)
		for i := 1; i <= population; i++ {
			if err := s.Put(cache.Object{ID: uint64(i), Size: int64(objectBytes), Version: 1}, body); err != nil {
				t.Fatal(err)
			}
		}
		if c.tier == "disk-compressed" && s.StatsSnapshot().Compressed == 0 {
			t.Fatal("compressed case stored nothing compressed")
		}
		lat = lat[:0]
		for i := 0; i < reads; i++ {
			id := uint64(i%population + 1)
			start := time.Now()
			if _, _, ok := s.Get(id); !ok {
				t.Fatal("disk miss")
			}
			lat = append(lat, time.Since(start))
		}
		doc.Reads = append(doc.Reads, storeBenchRead{Tier: c.tier, P50Us: quantileUS(lat, 0.50), P99Us: quantileUS(lat, 0.99)})
	}

	// Recovery time vs cache size: same store dir reopened at each step.
	small := bytes.Repeat([]byte("r"), 1024)
	for _, n := range []int{256, 1024, 4096} {
		dir := t.TempDir()
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= n; i++ {
			if err := s.Put(cache.Object{ID: uint64(i), Size: int64(len(small)), Version: 1}, small); err != nil {
				t.Fatal(err)
			}
		}
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		st := s2.Recover(8, nil)
		if st.Objects != n {
			t.Fatalf("recovered %d of %d", st.Objects, n)
		}
		doc.Recovery = append(doc.Recovery, storeBenchRecovery{Objects: n, Bytes: st.Bytes, RecoveryMs: float64(st.Duration) / float64(time.Millisecond)})
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchStoreOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", *benchStoreOut, data)
}
