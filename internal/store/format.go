package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// On-disk object format: a fixed 40-byte header followed by the stored body
// (possibly flate-compressed). Everything is little-endian.
//
//	[0:4)   magic "BCS1"
//	[4:8)   flags (bit 0: body is flate-compressed)
//	[8:16)  object id (the url hash — files are content-addressed by it)
//	[16:24) object version
//	[24:32) uncompressed body length
//	[32:36) CRC-32C of the stored body bytes (post-compression)
//	[36:40) CRC-32C of header bytes [0:36)
//
// The header checksum lets the recovery scan validate a file without reading
// its body; the body checksum is verified on every read so a torn write
// (files are not fsynced) or bit rot is caught before the object is served.
const (
	magic     = 0x42435331 // "BCS1"
	headerLen = 40

	flagFlate = 1 << 0
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	errBadHeader = errors.New("store: bad object header")
	errCorrupt   = errors.New("store: body checksum mismatch")
	errTruncated = errors.New("store: truncated object file")
)

type header struct {
	flags   uint32
	id      uint64
	version int64
	size    int64  // uncompressed body length
	bodyCRC uint32 // CRC-32C over the stored (possibly compressed) body
}

func (h header) encode(buf *[headerLen]byte) {
	binary.LittleEndian.PutUint32(buf[0:4], magic)
	binary.LittleEndian.PutUint32(buf[4:8], h.flags)
	binary.LittleEndian.PutUint64(buf[8:16], h.id)
	binary.LittleEndian.PutUint64(buf[16:24], uint64(h.version))
	binary.LittleEndian.PutUint64(buf[24:32], uint64(h.size))
	binary.LittleEndian.PutUint32(buf[32:36], h.bodyCRC)
	binary.LittleEndian.PutUint32(buf[36:40], crc32.Checksum(buf[0:36], castagnoli))
}

func decodeHeader(buf []byte) (header, error) {
	if len(buf) < headerLen {
		return header{}, errBadHeader
	}
	if binary.LittleEndian.Uint32(buf[36:40]) != crc32.Checksum(buf[0:36], castagnoli) {
		return header{}, errBadHeader
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != magic {
		return header{}, errBadHeader
	}
	h := header{
		flags:   binary.LittleEndian.Uint32(buf[4:8]),
		id:      binary.LittleEndian.Uint64(buf[8:16]),
		version: int64(binary.LittleEndian.Uint64(buf[16:24])),
		size:    int64(binary.LittleEndian.Uint64(buf[24:32])),
		bodyCRC: binary.LittleEndian.Uint32(buf[32:36]),
	}
	if h.size < 0 {
		return header{}, errBadHeader
	}
	return h, nil
}
