package store

import (
	"sync/atomic"

	"beyondcache/internal/cache"
)

// Tier composes the memory cache and the disk store into the node's
// two-tier placement: memory evictions spill to disk through the write-
// behind queue, disk hits promote back into memory, and an object is
// "locally resident" — its hints stay valid — as long as it lives in
// EITHER tier (or in the spill queue between them).
type Tier struct {
	mem  *cache.Sharded
	disk *Store
	sp   *Spiller

	promotions atomic.Int64
}

// NewTier wires mem and disk together. spillQueue bounds the write-behind
// queue (<= 0 for the Spiller default). onDrop fires whenever an object
// involuntarily leaves BOTH tiers — spill-queue overflow, failed spill
// write, disk eviction, or quarantine — and is the seam the node uses to
// queue invalidate hints; it runs with no tier locks held and may be nil.
func NewTier(mem *cache.Sharded, disk *Store, spillQueue int, onDrop func(cache.Object)) *Tier {
	disk.OnDrop(onDrop)
	return &Tier{
		mem:  mem,
		disk: disk,
		sp:   NewSpiller(disk, spillQueue, onDrop),
	}
}

// Spill queues a memory-tier eviction for write-behind. Called from the
// cache's eviction callback (outside the shard lock); never blocks on disk.
func (t *Tier) Spill(obj cache.Object, body []byte) {
	t.sp.Enqueue(obj, body)
}

// Get serves an object from the disk tier (or the spill queue, for the
// window where an eviction has not yet reached disk), promoting it back
// into the memory tier. PutNewer promotion means a concurrent fill of a
// fresher version is never clobbered.
func (t *Tier) Get(id uint64) (cache.Object, []byte, bool) {
	obj, body, ok := t.sp.peek(id)
	if !ok {
		obj, body, ok = t.disk.Get(id)
		if !ok {
			return cache.Object{}, nil, false
		}
	}
	if t.mem.PutNewer(obj, body) {
		t.promotions.Add(1)
	}
	return obj, body, true
}

// Contains reports residency in the disk tier or the spill queue, without
// touching recency or promoting.
func (t *Tier) Contains(id uint64) bool {
	if _, _, ok := t.sp.peek(id); ok {
		return true
	}
	return t.disk.Contains(id)
}

// DiskIDs snapshots the IDs indexed on the disk store — the re-homing
// scan's view of spilled residency. Objects still in flight on the spill
// queue are missed by one scan and picked up by the next (the queue
// drains between flush rounds); hints are advisory either way.
func (t *Tier) DiskIDs() []uint64 { return t.disk.IDs() }

// Discard removes an object from the spill queue and the disk store
// without firing the drop callback — the purge path queues its own
// invalidate. It reports whether either layer held the object.
func (t *Tier) Discard(id uint64) bool {
	a := t.sp.Discard(id)
	b := t.disk.Remove(id)
	return a || b
}

// Recover rebuilds the disk index from a previous run (see Store.Recover)
// and publishes each recovered object.
func (t *Tier) Recover(workers int, publish func(cache.Object)) RecoverStats {
	return t.disk.Recover(workers, publish)
}

// Flush blocks until the spill queue is drained to disk.
func (t *Tier) Flush() { t.sp.Flush() }

// Close drains the spill queue and stops the write-behind worker.
func (t *Tier) Close() { t.sp.Close() }

// Promotions returns the number of disk hits promoted into memory.
func (t *Tier) Promotions() int64 { return t.promotions.Load() }

// DiskStats returns the disk store's counter snapshot.
func (t *Tier) DiskStats() Stats { return t.disk.StatsSnapshot() }

// SpillStats returns the write-behind queue's counter snapshot.
func (t *Tier) SpillStats() SpillStats { return t.sp.StatsSnapshot() }
